package ccer

import (
	"testing"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	src := []string{"golden dragon bistro", "blue harbor grill", "old oak tavern"}
	dst := []string{"golden dragon bistro", "blue harbour grill", "crimson star cafe"}
	g, err := BuildGraph(src, dst, TokenJaccard, 0)
	if err != nil {
		t.Fatal(err)
	}
	pairs, err := Match(g, "UMC", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 {
		t.Fatal("no pairs matched")
	}
	found := false
	for _, p := range pairs {
		if p.U == 0 && p.V == 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("identical entities not matched: %v", pairs)
	}
}

func TestFacadeAlgorithms(t *testing.T) {
	if len(Algorithms()) != 8 {
		t.Fatalf("Algorithms: %d, want 8", len(Algorithms()))
	}
	for _, name := range append(Algorithms(), "HUN", "AUC") {
		m, err := NewMatcher(name, 3)
		if err != nil {
			t.Fatal(err)
		}
		if m.Name() != name {
			t.Fatalf("NewMatcher(%q).Name() = %q", name, m.Name())
		}
	}
	if _, err := NewMatcher("XXX", 0); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if _, err := Match(nil, "XXX", 0.5); err == nil {
		t.Fatal("Match with unknown algorithm accepted")
	}
}

func TestFacadeStringSimilarities(t *testing.T) {
	sims := StringSimilarities()
	if len(sims) != 16 {
		t.Fatalf("StringSimilarities: %d, want 16", len(sims))
	}
	if JaroSimilarity("martha", "marhta") <= 0.9 {
		t.Fatal("Jaro broken")
	}
	if TokenJaccard("red apple pie", "red apple tart") != 0.5 {
		t.Fatalf("TokenJaccard = %v", TokenJaccard("red apple pie", "red apple tart"))
	}
}

func TestFacadeDatasetsAndGraphs(t *testing.T) {
	ids := Datasets()
	if len(ids) != 10 || ids[0] != "D1" || ids[9] != "D10" {
		t.Fatalf("Datasets = %v", ids)
	}
	task, err := GenerateDataset("D2", 7, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	attrs, err := KeyAttributes("D2")
	if err != nil || len(attrs) == 0 {
		t.Fatalf("KeyAttributes: %v, %v", attrs, err)
	}
	graphs := GenerateGraphs(task, attrs, []WeightFamily{WeightFamilies()[0]})
	if len(graphs) == 0 {
		t.Fatal("no graphs generated")
	}
	m, _ := NewMatcher("UMC", 1)
	res := SweepThreshold(graphs[0].G, task.GT, m, 1)
	if res.Best.F1 <= 0 {
		t.Fatalf("sweep found no signal: %+v", res.Best)
	}
	if _, err := GenerateDataset("D99", 1, 1); err == nil {
		t.Fatal("unknown dataset accepted")
	}
	if _, err := KeyAttributes("D99"); err == nil {
		t.Fatal("unknown dataset accepted by KeyAttributes")
	}
}

func TestFacadeEvaluate(t *testing.T) {
	gt := NewGroundTruth([][2]int32{{0, 0}, {1, 1}})
	m := Evaluate([]Pair{{U: 0, V: 0, W: 0.9}}, gt)
	if m.Precision != 1 || m.Recall != 0.5 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestFacadeBAHConfig(t *testing.T) {
	m := BAHConfig(5, 100, 0)
	if m.Name() != "BAH" {
		t.Fatalf("BAHConfig name = %q", m.Name())
	}
}

func TestFacadePipeline(t *testing.T) {
	task, err := GenerateDataset("D1", 3, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	blocks := TokenBlocking(task.V1, task.V2)
	if len(blocks) == 0 {
		t.Fatal("no blocks")
	}
	blocks = FilterBlocks(PurgeBlocks(blocks, task.Comparisons()/4), 0.6)
	cands := BlockCandidates(blocks)
	q := EvaluateBlocking(cands, task.GT, task.V1.Len(), task.V2.Len())
	if q.PairCompleteness < 0.8 {
		t.Fatalf("pair completeness %.2f too low", q.PairCompleteness)
	}
	if q.ReductionRatio <= 0 {
		t.Fatalf("no reduction: %v", q.ReductionRatio)
	}
	g, err := BuildGraphFromCandidates(task.V1.Texts(), task.V2.Texts(), cands, TokenJaccard, 0)
	if err != nil {
		t.Fatal(err)
	}
	g = g.NormalizeMinMax()
	th := EstimateThreshold(g)
	if th < 0.05 || th > 0.95 {
		t.Fatalf("estimated threshold %v out of range", th)
	}
	pairs, err := Match(g, "EXC", th)
	if err != nil {
		t.Fatal(err)
	}
	if m := Evaluate(pairs, task.GT); m.F1 <= 0.3 {
		t.Fatalf("pipeline F1 = %v, want useful signal", m.F1)
	}
}

func TestFacadeAttributeBlockingAndMeta(t *testing.T) {
	task, err := GenerateDataset("D1", 3, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	blocks := AttributeBlocking(task.V1, task.V2, "city")
	if len(blocks) == 0 {
		t.Fatal("no attribute blocks")
	}
	all := BlockCandidates(blocks)
	pruned := MetaBlocking(blocks)
	if len(pruned) > len(all) {
		t.Fatal("meta-blocking added pairs")
	}
}

func TestFacadeQLearningMatcher(t *testing.T) {
	m := NewQLearningMatcher(5)
	if m.Name() != "QLM" {
		t.Fatalf("name = %q", m.Name())
	}
	g, err := BuildGraph([]string{"alpha beta"}, []string{"alpha beta"}, TokenJaccard, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pairs := m.Match(g, 0.5); len(pairs) != 1 {
		t.Fatalf("QLM pairs = %v", pairs)
	}
}
