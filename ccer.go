// Package ccer is the public API of a Go implementation of the bipartite
// graph matching study of Papadakis, Efthymiou, Thanos and Hassanzadeh,
// "Bipartite Graph Matching Algorithms for Clean-Clean Entity Resolution:
// An Empirical Evaluation" (EDBT 2022).
//
// The package covers the full Clean-Clean ER matching step: build a
// weighted bipartite similarity graph between two clean entity
// collections, run one of the paper's eight matching algorithms (or the
// exact Hungarian / auction baselines) at a similarity threshold, and
// evaluate the resulting 1-1 matching against a ground truth. It also
// exposes the paper's string/vector/graph/embedding similarity functions,
// the synthetic analogs of its ten benchmark datasets, and the threshold
// sweep used to tune every algorithm.
//
// Quick start:
//
//	b := ccer.NewGraphBuilder(len(src), len(dst))
//	for i, s := range src {
//		for j, d := range dst {
//			if sim := ccer.JaroSimilarity(s, d); sim > 0 {
//				b.Add(int32(i), int32(j), sim)
//			}
//		}
//	}
//	g, err := b.Build()
//	// ...
//	pairs, err := ccer.Match(g, "UMC", 0.5)
//
// The subpackages under internal/ contain the full machinery; this
// package re-exports the pieces a downstream user needs.
package ccer

import (
	"context"
	"fmt"
	"time"

	"github.com/ccer-go/ccer/internal/algo"
	"github.com/ccer-go/ccer/internal/core"
	"github.com/ccer-go/ccer/internal/datagen"
	"github.com/ccer-go/ccer/internal/dataset"
	"github.com/ccer-go/ccer/internal/eval"
	"github.com/ccer-go/ccer/internal/graph"
	"github.com/ccer-go/ccer/internal/par"
	"github.com/ccer-go/ccer/internal/simgraph"
	"github.com/ccer-go/ccer/internal/strsim"
)

// Core graph and matching types, re-exported from the implementation
// packages.
type (
	// Graph is a weighted bipartite similarity graph between two clean
	// entity collections.
	Graph = graph.Bipartite
	// GraphBuilder accumulates edges for a Graph.
	GraphBuilder = graph.Builder
	// Edge is a weighted edge of a similarity graph.
	Edge = graph.Edge
	// NodeID indexes a node within one side of the graph.
	NodeID = graph.NodeID
	// Pair is one matched entity pair.
	Pair = core.Pair
	// Matcher is a bipartite graph matching algorithm.
	Matcher = core.Matcher
	// Metrics holds precision, recall and F-measure.
	Metrics = eval.Metrics
	// SweepResult is the outcome of tuning a matcher's threshold.
	SweepResult = eval.SweepResult
	// Profile is an entity profile (attribute-value pairs).
	Profile = dataset.Profile
	// Collection is a clean, duplicate-free entity collection.
	Collection = dataset.Collection
	// GroundTruth is the set of true matches between two collections.
	GroundTruth = dataset.GroundTruth
	// Task bundles two collections with their ground truth.
	Task = dataset.Task
)

// NewGraphBuilder returns a builder for a bipartite graph with n1 and n2
// nodes on the two sides.
func NewGraphBuilder(n1, n2 int) *GraphBuilder { return graph.NewBuilder(n1, n2) }

// NewGroundTruth builds a ground truth from (i, j) index pairs.
func NewGroundTruth(pairs [][2]int32) *GroundTruth { return dataset.NewGroundTruth(pairs) }

// Algorithms lists the paper's eight algorithm names in presentation
// order: CNC, RSR, RCA, BAH, BMC, EXC, KRC, UMC.
func Algorithms() []string { return core.Names() }

// NewMatcher returns the named matching algorithm with its default
// configuration. Besides the paper's eight, "HUN" (Hungarian) and "AUC"
// (auction) exact baselines and "QLM" (the future-work Q-learning
// matcher) are available. seed configures the stochastic BAH and QLM
// algorithms and is ignored by the others. Resolution goes through the
// internal/algo registry, the same one the erserve service uses, so the
// two never drift.
func NewMatcher(name string, seed int64) (Matcher, error) {
	m, err := algo.ByName(name, seed)
	if err != nil {
		return nil, fmt.Errorf("ccer: %w", err)
	}
	return m, nil
}

// Match runs the named algorithm on the graph with similarity threshold
// t, returning a 1-1 matching that only uses edges with weight above t.
func Match(g *Graph, algorithm string, t float64) ([]Pair, error) {
	m, err := NewMatcher(algorithm, 1)
	if err != nil {
		return nil, err
	}
	return m.Match(g, t), nil
}

// Evaluate scores a matching against the ground truth.
func Evaluate(pairs []Pair, gt *GroundTruth) Metrics { return eval.Evaluate(pairs, gt) }

// SweepThreshold tunes the matcher over the paper's threshold grid
// (0.05..1.00, step 0.05), selecting the largest threshold with the best
// F-measure. repeats controls run-time averaging (use 1 unless timing).
func SweepThreshold(g *Graph, gt *GroundTruth, m Matcher, repeats int) SweepResult {
	return eval.Sweep(g, gt, m, repeats)
}

// Options configures the concurrent entry points SweepAll and
// MatchConcurrent.
type Options struct {
	// Parallelism is the number of worker goroutines. 0 means
	// runtime.NumCPU(); 1 or any negative value runs serially.
	// Effectiveness results are identical at any parallelism as long as
	// BAH's step cap binds before its wall-clock cap (true for the
	// defaults; a binding deadline makes BAH timing-dependent even
	// serially). Run-time measurements pick up scheduler noise from
	// concurrent workers, so use 1 when timing.
	Parallelism int
	// Repeats is the number of timed executions per threshold in
	// SweepAll (values below 1 mean 1). Ignored by MatchConcurrent.
	Repeats int
	// Seed configures the stochastic BAH algorithm (and the Q-learning
	// matcher, if requested by name); 0 means 1, matching Match.
	Seed int64
	// Context, when non-nil, cancels the concurrent entry points: once
	// it is done no further Match call starts (in-flight ones finish,
	// bounding cancellation latency to one matching) and the entry point
	// returns the context's error instead of partial results. A nil
	// Context never cancels. The erserve job queue relies on this to
	// abort sweeps on job cancellation and server shutdown.
	Context context.Context
}

// stop adapts the optional Context to the polling Stop hook of the
// internal/par pool.
func (o Options) stop() func() bool {
	if o.Context == nil {
		return nil
	}
	return func() bool { return o.Context.Err() != nil }
}

// err returns the context's cancellation error, if any.
func (o Options) err() error {
	if o.Context == nil {
		return nil
	}
	return o.Context.Err()
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

// matchersByName resolves algorithm names, failing on the first unknown
// one.
func matchersByName(algorithms []string, seed int64) ([]Matcher, error) {
	ms := make([]Matcher, len(algorithms))
	for i, name := range algorithms {
		m, err := NewMatcher(name, seed)
		if err != nil {
			return nil, err
		}
		ms[i] = m
	}
	return ms, nil
}

// SweepAll tunes every named algorithm on the graph, fanning the full
// (algorithm × threshold) grid over opts.Parallelism workers. Results
// come back in input order with sweep points in threshold order, and are
// identical to the serial path at a fixed seed: each worker operates on a
// private clone of the stochastic matchers, and the timed repeat runs
// stay sequential inside one worker so SweepResult.Runtime remains a
// per-execution mean.
func SweepAll(g *Graph, gt *GroundTruth, algorithms []string, opts Options) ([]SweepResult, error) {
	ms, err := matchersByName(algorithms, opts.seed())
	if err != nil {
		return nil, err
	}
	results := eval.SweepAllOpts(g, gt, ms, eval.SweepOptions{
		Repeats:     opts.Repeats,
		Parallelism: opts.Parallelism,
		Stop:        opts.stop(),
	})
	if err := opts.err(); err != nil {
		// A cut-short sweep holds partial, misleading results; drop them.
		return nil, err
	}
	return results, nil
}

// MatchResult couples one algorithm with its matching.
type MatchResult struct {
	Algorithm string
	Pairs     []Pair
}

// MatchConcurrent runs the named algorithms on the graph at threshold t
// across opts.Parallelism workers, returning one result per algorithm in
// input order. Output is deterministic: every matcher in this module
// keeps its mutable state local to a Match call, and each algorithm runs
// on exactly one worker, so the pairs are identical to len(algorithms)
// sequential Match calls.
func MatchConcurrent(g *Graph, algorithms []string, t float64, opts Options) ([]MatchResult, error) {
	ms, err := matchersByName(algorithms, opts.seed())
	if err != nil {
		return nil, err
	}
	out := make([]MatchResult, len(ms))
	// ms is private to this call and each index runs on exactly one
	// worker, so no cloning is needed here.
	par.For(len(ms), par.Workers(opts.Parallelism), opts.stop(), func(_, i int) {
		out[i] = MatchResult{Algorithm: ms[i].Name(), Pairs: ms[i].Match(g, t)}
	})
	if err := opts.err(); err != nil {
		return nil, err
	}
	return out, nil
}

// SimilarityFunc scores the similarity of two strings in [0,1].
type SimilarityFunc = strsim.Func

// StringSimilarities returns the paper's sixteen schema-based syntactic
// similarity measures by name (seven character-level, nine token-level).
func StringSimilarities() map[string]SimilarityFunc { return strsim.AllMeasures() }

// JaroSimilarity is the Jaro similarity, a convenient default for short
// names.
func JaroSimilarity(a, b string) float64 { return strsim.Jaro(a, b) }

// TokenJaccard is the Jaccard similarity over lower-cased word tokens, a
// convenient default for titles and descriptions.
func TokenJaccard(a, b string) float64 {
	return strsim.Jaccard(strsim.Tokenize(a), strsim.Tokenize(b))
}

// BuildGraph constructs a similarity graph by applying sim to every
// cross-pair of the two text slices and keeping scores above minSim.
// For large collections prefer the representation-model pipelines (see
// GenerateGraphs), which use inverted indexes instead of all pairs.
func BuildGraph(texts1, texts2 []string, sim SimilarityFunc, minSim float64) (*Graph, error) {
	b := graph.NewBuilder(len(texts1), len(texts2))
	for i, s := range texts1 {
		for j, d := range texts2 {
			if w := sim(s, d); w > minSim {
				b.Add(int32(i), int32(j), w)
			}
		}
	}
	return b.Build()
}

// Dataset identifiers of the paper's ten benchmarks, reproduced as
// synthetic analogs (see DESIGN.md for the substitution rationale).
func Datasets() []string {
	ids := make([]string, 0, 10)
	for _, s := range datagen.Specs() {
		ids = append(ids, s.ID)
	}
	return ids
}

// GenerateDataset builds the synthetic analog of the identified dataset
// ("D1".."D10") at the given scale (1.0 = the paper's full Table 2
// sizes). The same (seed, scale) always yields the same task.
func GenerateDataset(id string, seed int64, scale float64) (*Task, error) {
	spec, err := datagen.SpecByID(id)
	if err != nil {
		return nil, err
	}
	return spec.Generate(seed, scale), nil
}

// KeyAttributes returns the high-coverage, high-distinctiveness
// attributes the paper uses for schema-based similarity on the dataset.
func KeyAttributes(id string) ([]string, error) {
	spec, err := datagen.SpecByID(id)
	if err != nil {
		return nil, err
	}
	return spec.KeyAttrs, nil
}

// WeightFamily identifies one of the paper's four types of edge weights.
type WeightFamily = simgraph.Family

// WeightFamilies returns the four families: schema-based syntactic,
// schema-agnostic syntactic, schema-based semantic, schema-agnostic
// semantic.
func WeightFamilies() []WeightFamily { return simgraph.Families() }

// SimilarityGraph is one generated similarity graph with its provenance.
type SimilarityGraph = simgraph.SimGraph

// GenerateGraphs applies the paper's full similarity-function taxonomy to
// a task, producing the min-max-normalized similarity graph corpus
// (Section 4-5). keyAttrs selects the schema-based attributes; families
// restricts the weight families (nil = all four).
func GenerateGraphs(task *Task, keyAttrs []string, families []WeightFamily) []SimilarityGraph {
	return simgraph.Generate(task, keyAttrs, simgraph.Options{Families: families})
}

// BAHConfig returns a Best Assignment Heuristic matcher with explicit
// caps, for callers that need tighter bounds than the paper's defaults
// of 10,000 steps and 2 minutes.
func BAHConfig(seed int64, maxSteps int, maxDuration time.Duration) Matcher {
	return core.BAH{Seed: seed, MaxSteps: maxSteps, MaxDuration: maxDuration}
}
