package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/ccer-go/ccer/internal/graph"
)

// testMatchers returns the paper's algorithms configured for fast tests
// (BAH with a small step budget) plus the exact baselines.
func testMatchers() []Matcher {
	return []Matcher{
		CNC{}, RSR{}, RCA{},
		BAH{Seed: 99, MaxSteps: 500},
		BMC{Basis: BasisAuto}, BMC{Basis: BasisV1}, BMC{Basis: BasisV2},
		EXC{}, KRC{}, UMC{}, Hungarian{}, Auction{},
	}
}

// Every algorithm must emit a valid 1-1 matching above the threshold on
// arbitrary random graphs and thresholds.
func TestPropertyAllMatchersValid(t *testing.T) {
	f := func(seed int64, tRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBipartite(rng, rng.Intn(25)+1, rng.Intn(25)+1, rng.Intn(150))
		th := math.Mod(math.Abs(tRaw), 1)
		for _, m := range testMatchers() {
			if err := ValidateMatching(g, m.Match(g, th), th); err != nil {
				t.Logf("%s: %v", m.Name(), err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// All algorithms are deterministic (BAH given a fixed seed).
func TestPropertyDeterminism(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBipartite(rng, 15, 15, 80)
		for _, m := range testMatchers() {
			if !reflect.DeepEqual(m.Match(g, 0.3), m.Match(g, 0.3)) {
				t.Logf("%s not deterministic", m.Name())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// CNC's pairs are isolated mutual-only neighbors, hence always a subset of
// EXC's mutual best matches.
func TestPropertyCNCSubsetOfEXC(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBipartite(rng, 20, 20, 100)
		th := rng.Float64()
		exc := make(map[[2]graph.NodeID]bool)
		for _, p := range (EXC{}).Match(g, th) {
			exc[[2]graph.NodeID{p.U, p.V}] = true
		}
		for _, p := range (CNC{}).Match(g, th) {
			if !exc[[2]graph.NodeID{p.U, p.V}] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// The strictly heaviest edge above the threshold is matched by the greedy
// and best-match families.
func TestPropertyTopEdgeAlwaysMatched(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBipartite(rng, 15, 15, 60)
		if g.NumEdges() == 0 {
			return true
		}
		top := g.Edge(g.EdgesByWeight()[0])
		// Ensure strict maximality (random floats collide with
		// negligible probability, but be explicit).
		if g.NumEdges() > 1 && g.Edge(g.EdgesByWeight()[1]).W == top.W {
			return true
		}
		th := top.W / 2
		// BMC is excluded: an earlier basis node can claim the top
		// edge's partner with a lighter edge first.
		for _, m := range []Matcher{UMC{}, EXC{}, KRC{}} {
			found := false
			for _, p := range m.Match(g, th) {
				if p.U == top.U && p.V == top.V {
					found = true
					break
				}
			}
			if !found {
				t.Logf("%s missed the top edge", m.Name())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// UMC is a 1/2-approximation of maximum weight matching; Hungarian is the
// exact reference.
func TestPropertyUMCHalfApprox(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBipartite(rng, 12, 12, 70)
		opt := TotalWeight(Hungarian{}.Match(g, 0))
		umc := TotalWeight(UMC{}.Match(g, 0))
		return umc >= opt/2-1e-9 && umc <= opt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// The auction baseline is within persons*epsFinal of the Hungarian
// optimum.
func TestPropertyAuctionNearOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBipartite(rng, 12, 14, 80)
		opt := TotalWeight(Hungarian{}.Match(g, 0))
		auc := TotalWeight(Auction{Eps: 1e-7}.Match(g, 0))
		slack := 12 * 1e-7
		return auc >= opt-slack-1e-9 && auc <= opt+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Hungarian agrees with brute-force enumeration on tiny graphs.
func TestPropertyHungarianExact(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n1, n2 := rng.Intn(5)+1, rng.Intn(5)+1
		g := randomBipartite(rng, n1, n2, rng.Intn(20))
		opt := bruteForceMaxWeight(g)
		hun := TotalWeight(Hungarian{}.Match(g, 0))
		return math.Abs(opt-hun) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// bruteForceMaxWeight enumerates all matchings of a tiny graph.
func bruteForceMaxWeight(g *graph.Bipartite) float64 {
	edges := g.Edges()
	best := 0.0
	var rec func(i int, used1, used2 uint32, w float64)
	rec = func(i int, used1, used2 uint32, w float64) {
		if w > best {
			best = w
		}
		for j := i; j < len(edges); j++ {
			e := edges[j]
			if used1&(1<<uint(e.U)) != 0 || used2&(1<<uint(e.V)) != 0 {
				continue
			}
			rec(j+1, used1|1<<uint(e.U), used2|1<<uint(e.V), w+e.W)
		}
	}
	rec(0, 0, 0, 0)
	return best
}

// KRC is a 3/2-approximation to maximum stable marriage by size; as a
// weaker sanity property, it must match at least as many pairs as EXC
// (every mutual-best pair is engaged by some man eventually) on graphs
// with distinct weights.
func TestPropertyKRCAtLeastEXCSize(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBipartite(rng, 18, 18, 90)
		th := rng.Float64() * 0.5
		return len(KRC{}.Match(g, th)) >= len(EXC{}.Match(g, th))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// UMC matches a maximal matching of the pruned graph: no edge above t can
// have both endpoints unmatched.
func TestPropertyUMCMaximal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBipartite(rng, 15, 15, 80)
		th := rng.Float64() * 0.8
		pairs := UMC{}.Match(g, th)
		used1 := map[graph.NodeID]bool{}
		used2 := map[graph.NodeID]bool{}
		for _, p := range pairs {
			used1[p.U] = true
			used2[p.V] = true
		}
		for _, e := range g.Edges() {
			if e.W > th && !used1[e.U] && !used2[e.V] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// KRC leaves no man unmatched if he has an above-threshold edge to an
// unmatched woman (stability-flavoured maximality).
func TestPropertyKRCMaximal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBipartite(rng, 15, 15, 80)
		th := rng.Float64() * 0.8
		pairs := KRC{}.Match(g, th)
		used1 := map[graph.NodeID]bool{}
		used2 := map[graph.NodeID]bool{}
		for _, p := range pairs {
			used1[p.U] = true
			used2[p.V] = true
		}
		for _, e := range g.Edges() {
			if e.W > th && !used1[e.U] && !used2[e.V] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Hopcroft-Karp finds a maximum cardinality matching: it never emits
// fewer pairs than any other valid matcher and agrees with brute-force
// maximum cardinality on tiny graphs.
func TestPropertyHopcroftKarpMaximum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBipartite(rng, rng.Intn(6)+1, rng.Intn(6)+1, rng.Intn(25))
		th := rng.Float64() * 0.5
		hk := HopcroftKarp{}.Match(g, th)
		if err := ValidateMatching(g, hk, th); err != nil {
			t.Log(err)
			return false
		}
		if len(hk) != bruteForceMaxCardinality(g, th) {
			return false
		}
		for _, m := range testMatchers() {
			if len(m.Match(g, th)) > len(hk) {
				t.Logf("%s emitted more pairs than maximum cardinality", m.Name())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// Maximal matchings (UMC, KRC) have at least half the maximum
// cardinality.
func TestPropertyMaximalHalfOfMaximum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomBipartite(rng, 20, 20, 120)
		th := rng.Float64() * 0.6
		max := len(HopcroftKarp{}.Match(g, th))
		for _, m := range []Matcher{UMC{}, KRC{}} {
			if 2*len(m.Match(g, th)) < max {
				t.Logf("%s below half of maximum cardinality", m.Name())
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// bruteForceMaxCardinality enumerates matchings of a tiny graph.
func bruteForceMaxCardinality(g *graph.Bipartite, th float64) int {
	var edges []graph.Edge
	for _, e := range g.Edges() {
		if e.W > th {
			edges = append(edges, e)
		}
	}
	best := 0
	var rec func(i int, used1, used2 uint32, size int)
	rec = func(i int, used1, used2 uint32, size int) {
		if size > best {
			best = size
		}
		for j := i; j < len(edges); j++ {
			e := edges[j]
			if used1&(1<<uint(e.U)) != 0 || used2&(1<<uint(e.V)) != 0 {
				continue
			}
			rec(j+1, used1|1<<uint(e.U), used2|1<<uint(e.V), size+1)
		}
	}
	rec(0, 0, 0, 0)
	return best
}
