package core

import (
	"testing"
	"time"

	"github.com/ccer-go/ccer/internal/graph"
)

func build(t *testing.T, n1, n2 int, edges [][3]float64) *graph.Bipartite {
	t.Helper()
	b := graph.NewBuilder(n1, n2)
	for _, e := range edges {
		b.Add(graph.NodeID(e[0]), graph.NodeID(e[1]), e[2])
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// KRC: A0 proposes to B0 first (his best), gets dumped when A1 arrives
// with a better offer, and must continue down his list to B1.
func TestKRCDumpAndContinue(t *testing.T) {
	g := build(t, 2, 2, [][3]float64{
		{0, 0, 0.8}, // A0-B0
		{0, 1, 0.6}, // A0-B1 (fallback)
		{1, 0, 0.9}, // A1-B0 (steals B0)
	})
	got := KRC{}.Match(g, 0.5)
	wantPairs(t, got, [][2]graph.NodeID{{0, 1}, {1, 0}})
}

// KRC second chance: when A0 exhausts his list while engaged men hold all
// women, his lastChance pass lets him win a tie.
func TestKRCSecondChanceTieBreak(t *testing.T) {
	// A0 and A1 both value B0 at 0.8; A1 also has B1. Order: A0 proposes
	// B0 (engaged), A1 proposes B0 -> tie, A1 not lastChance -> rejected,
	// A1 proposes B1 -> engaged. Everyone matched.
	g := build(t, 2, 2, [][3]float64{
		{0, 0, 0.8},
		{1, 0, 0.8},
		{1, 1, 0.6},
	})
	got := KRC{}.Match(g, 0.5)
	wantPairs(t, got, [][2]graph.NodeID{{0, 0}, {1, 1}})
}

// KRC must terminate when a man's whole list is below the threshold.
func TestKRCAllBelowThreshold(t *testing.T) {
	g := build(t, 2, 2, [][3]float64{{0, 0, 0.3}, {1, 1, 0.9}})
	got := KRC{}.Match(g, 0.5)
	wantPairs(t, got, [][2]graph.NodeID{{1, 1}})
}

// RSR rippling: when a stronger seed steals a member, the orphaned center
// re-joins its best available singleton.
func TestRSRRipple(t *testing.T) {
	// B0 is claimed by A0 (0.6) first? Seed order is by average weight:
	// A1 (0.9) seeds first and takes B0; A0 (avg (0.6+0.5)/2=0.55) seeds
	// next; B0 is taken by a center's partition but A0 can still claim
	// B1 (0.5).
	g := build(t, 2, 2, [][3]float64{
		{0, 0, 0.6},
		{0, 1, 0.5},
		{1, 0, 0.9},
	})
	got := RSR{}.Match(g, 0.4)
	wantPairs(t, got, [][2]graph.NodeID{{0, 1}, {1, 0}})
}

// RSR with an isolated high-degree node regression: nodes without
// above-threshold edges never join partitions.
func TestRSRIsolatedNodes(t *testing.T) {
	g := build(t, 3, 3, [][3]float64{
		{0, 0, 0.9},
		{1, 1, 0.2}, // below threshold
	})
	got := RSR{}.Match(g, 0.5)
	wantPairs(t, got, [][2]graph.NodeID{{0, 0}})
}

// RCA picks the pass with the larger total weight: here the V2 pass is
// strictly better.
func TestRCAPassSelection(t *testing.T) {
	// V1 pass: A0 takes B0 (0.9), A1 left with B1 (0.1): total 1.0.
	// V2 pass: B0 takes A1? B0's best is A0 (0.9)... construct so that
	// scanning from V2 yields a higher sum: B0's best is A0 (0.9), B1's
	// best unmatched is A1 (0.1). Same. Make asymmetric:
	g := build(t, 2, 2, [][3]float64{
		{0, 0, 0.9},
		{0, 1, 0.8},
		{1, 0, 0.7},
	})
	// V1 pass: A0->B0 (0.9), A1->nothing left but B0 taken; A1 has only
	// B0 -> unmatched. Total 0.9.
	// V2 pass: B0->A0 (0.9), B1->A0 taken, B1 has only A0 -> unmatched.
	// Total 0.9. Tie -> keep pass 1.
	got := RCA{}.Match(g, 0.5)
	wantPairs(t, got, [][2]graph.NodeID{{0, 0}})

	// Now a graph where the V2 pass wins: A0's greedy choice in pass 1
	// blocks a heavy edge; scanning from V2 avoids it.
	g2 := build(t, 2, 2, [][3]float64{
		{0, 0, 0.6}, // A0-B0
		{1, 0, 0.9}, // A1-B0
		{1, 1, 0.1}, // A1-B1 (sub-threshold filler)
	})
	// V1 pass: A0 takes B0 (0.6); A1 takes B1 (0.1): total 0.7, but the
	// 0.1 pair is dropped by t. V2 pass: B0 takes A1 (0.9); B1 takes A0?
	// no edge -> unmatched. Total 0.9 > 0.7, so pass 2 wins.
	got2 := RCA{}.Match(g2, 0.5)
	wantPairs(t, got2, [][2]graph.NodeID{{1, 0}})
}

// RCA assigns pairs below the threshold during the scan (the assignment
// formulation) but discards them from the output.
func TestRCADiscardsBelowThreshold(t *testing.T) {
	g := build(t, 1, 1, [][3]float64{{0, 0, 0.2}})
	if got := (RCA{}).Match(g, 0.5); len(got) != 0 {
		t.Fatalf("sub-threshold pair emitted: %v", got)
	}
}

// BAH orients correctly when V1 is smaller than V2 (the algorithm
// permutes the larger side).
func TestBAHSwappedOrientation(t *testing.T) {
	g := build(t, 2, 4, [][3]float64{
		{0, 2, 0.9},
		{1, 3, 0.8},
		{0, 0, 0.3},
	})
	got := BAH{Seed: 3, MaxSteps: 5000}.Match(g, 0.5)
	wantPairs(t, got, [][2]graph.NodeID{{0, 2}, {1, 3}})
	if err := ValidateMatching(g, got, 0.5); err != nil {
		t.Fatal(err)
	}
}

// BAH honors its wall-clock cap.
func TestBAHTimeCap(t *testing.T) {
	g := build(t, 50, 50, [][3]float64{{0, 0, 0.9}})
	m := BAH{Seed: 1, MaxSteps: 1 << 30, MaxDuration: 10 * time.Millisecond}
	start := time.Now()
	m.Match(g, 0.5)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("BAH ran %v despite 10ms cap", elapsed)
	}
}

// EXC ties: when a node's two best edges tie, the deterministic
// tie-breaking (lower opposite id) decides the mutual best.
func TestEXCTieBreaking(t *testing.T) {
	g := build(t, 2, 2, [][3]float64{
		{0, 0, 0.8},
		{0, 1, 0.8},
		{1, 1, 0.8},
	})
	// A0's best: tie B0/B1 -> B0 (lower id). B0's best: only A0. Mutual.
	// B1's best: tie A0/A1 -> A0, but A0's best is B0, so A1-B1 is not
	// mutual (A1's best is B1, B1's best is A0): no pair for A1.
	got := EXC{}.Match(g, 0.5)
	wantPairs(t, got, [][2]graph.NodeID{{0, 0}})
}

// CNC drops components larger than two nodes even when they contain a
// valid pair.
func TestCNCDropsLargeComponents(t *testing.T) {
	g := build(t, 2, 1, [][3]float64{
		{0, 0, 0.9},
		{1, 0, 0.8},
	})
	if got := (CNC{}).Match(g, 0.5); len(got) != 0 {
		t.Fatalf("CNC kept a 3-node component: %v", got)
	}
}

// UMC tie-breaking is deterministic: equal weights resolve by node ids.
func TestUMCDeterministicTies(t *testing.T) {
	g := build(t, 2, 2, [][3]float64{
		{0, 0, 0.7},
		{0, 1, 0.7},
		{1, 0, 0.7},
		{1, 1, 0.7},
	})
	got := UMC{}.Match(g, 0.5)
	wantPairs(t, got, [][2]graph.NodeID{{0, 0}, {1, 1}})
}

// BMC basis auto equals the better of the two fixed bases.
func TestBMCAutoPicksBetter(t *testing.T) {
	g := figure1(t)
	auto := TotalWeight(BMC{Basis: BasisAuto}.Match(g, 0.5))
	v1 := TotalWeight(BMC{Basis: BasisV1}.Match(g, 0.5))
	v2 := TotalWeight(BMC{Basis: BasisV2}.Match(g, 0.5))
	want := v1
	if v2 > want {
		want = v2
	}
	if auto != want {
		t.Fatalf("auto = %v, want max(%v, %v)", auto, v1, v2)
	}
}

// Hungarian handles rectangular graphs in both orientations.
func TestHungarianRectangular(t *testing.T) {
	tall := build(t, 1, 3, [][3]float64{{0, 0, 0.3}, {0, 1, 0.9}, {0, 2, 0.5}})
	got := Hungarian{}.Match(tall, 0.1)
	wantPairs(t, got, [][2]graph.NodeID{{0, 1}})
	wide := build(t, 3, 1, [][3]float64{{0, 0, 0.3}, {1, 0, 0.9}, {2, 0, 0.5}})
	got = Hungarian{}.Match(wide, 0.1)
	wantPairs(t, got, [][2]graph.NodeID{{1, 0}})
}

// Auction with duplicate top choices: contested objects go to the bidder
// that values them most.
func TestAuctionContention(t *testing.T) {
	g := build(t, 2, 2, [][3]float64{
		{0, 0, 0.9},
		{1, 0, 0.8},
		{1, 1, 0.5},
	})
	got := Auction{}.Match(g, 0.1)
	wantPairs(t, got, [][2]graph.NodeID{{0, 0}, {1, 1}})
}
