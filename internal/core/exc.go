package core

import "github.com/ccer-go/ccer/internal/graph"

// EXC is Exact Clustering (Algorithm 6 of the paper), inspired by the
// Exact strategy of Similarity Flooding: two entities are matched only if
// they are mutually each other's best match among the edges above the
// threshold. It is the stricter, symmetric version of BMC and a strict
// form of the MinoanER reciprocity filter.
//
// Mutual best match is a symmetric, functional relation, so the output is
// inherently a 1-1 matching. Ties are broken deterministically by the
// adjacency order of the graph (descending weight, then ascending node
// id). Per the paper, EXC trades a little recall for precision relative to
// BMC and is the best effectiveness/efficiency compromise overall.
type EXC struct{}

// Name implements Matcher.
func (EXC) Name() string { return "EXC" }

// Match implements Matcher.
func (EXC) Match(g *graph.Bipartite, t float64) []Pair {
	// best2[v] is the best partner of v in V2, or -1.
	var bbuf [512]graph.NodeID
	best2 := scratch(bbuf[:], g.N2())
	for v := range best2 {
		best2[v] = -1
		opp, ws := g.AdjList2(graph.NodeID(v))
		if len(ws) > 0 && ws[0] > t {
			best2[v] = opp[0]
		}
	}
	var pairs []Pair
	for u := graph.NodeID(0); int(u) < g.N1(); u++ {
		opp, ws := g.AdjList1(u)
		if len(ws) == 0 || ws[0] <= t {
			continue
		}
		if v := opp[0]; best2[v] == u { // u's best edge
			pairs = append(pairs, Pair{U: u, V: v, W: ws[0]})
		}
	}
	SortPairs(pairs)
	return pairs
}
