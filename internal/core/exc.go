package core

import "github.com/ccer-go/ccer/internal/graph"

// EXC is Exact Clustering (Algorithm 6 of the paper), inspired by the
// Exact strategy of Similarity Flooding: two entities are matched only if
// they are mutually each other's best match among the edges above the
// threshold. It is the stricter, symmetric version of BMC and a strict
// form of the MinoanER reciprocity filter.
//
// Mutual best match is a symmetric, functional relation, so the output is
// inherently a 1-1 matching. Ties are broken deterministically by the
// adjacency order of the graph (descending weight, then ascending node
// id). Per the paper, EXC trades a little recall for precision relative to
// BMC and is the best effectiveness/efficiency compromise overall.
type EXC struct{}

// Name implements Matcher.
func (EXC) Name() string { return "EXC" }

// Match implements Matcher.
func (EXC) Match(g *graph.Bipartite, t float64) []Pair {
	// best2[v] is the best partner of v in V2, or -1.
	best2 := make([]graph.NodeID, g.N2())
	for v := range best2 {
		best2[v] = -1
		adj := g.Adj2(graph.NodeID(v))
		if len(adj) > 0 {
			if e := g.Edge(adj[0]); e.W > t {
				best2[v] = e.U
			}
		}
	}
	var pairs []Pair
	for u := graph.NodeID(0); int(u) < g.N1(); u++ {
		adj := g.Adj1(u)
		if len(adj) == 0 {
			continue
		}
		e := g.Edge(adj[0]) // u's best edge
		if e.W <= t {
			continue
		}
		if best2[e.V] == u {
			pairs = append(pairs, Pair{U: u, V: e.V, W: e.W})
		}
	}
	SortPairs(pairs)
	return pairs
}
