package core

import "github.com/ccer-go/ccer/internal/graph"

// Auction is the Bertsekas forward auction algorithm for maximum weight
// bipartite matching on sparse graphs. Persons (the smaller side)
// repeatedly bid for their most valuable object — weight minus current
// price — raising its price by the bid increment plus ε; a person whose
// best available value drops below zero stays unmatched, which makes the
// algorithm solve maximum weight matching (with an outside option worth 0)
// rather than perfect assignment.
//
// Because prices start at zero and only rise, a single ε-phase terminates
// and yields a matching whose total weight is within |persons|·ε of the
// optimum; the tests verify this against Hungarian. Note that ε-scaling
// phases are deliberately not used: with the outside option, carrying
// inflated prices from a large-ε phase into the next would permanently
// lock persons out.
//
// Auction serves, like Hungarian, as an optimality baseline outside the
// paper's eight algorithms.
type Auction struct {
	// Eps is the bid increment; if zero, 1e-4 is used. The matching is
	// within |persons|·Eps of the maximum weight.
	Eps float64
}

// Name implements Matcher.
func (Auction) Name() string { return "AUC" }

// Match implements Matcher.
func (a Auction) Match(g *graph.Bipartite, t float64) []Pair {
	eps := a.Eps
	if eps <= 0 {
		eps = 1e-4
	}

	// Persons are the smaller side.
	swapped := g.N1() > g.N2()
	nPersons, nObjects := g.N1(), g.N2()
	if swapped {
		nPersons, nObjects = nObjects, nPersons
	}
	if nPersons == 0 {
		return nil
	}

	// cand[i] lists (object, weight) for person i, weights above t.
	type cand struct {
		obj int32
		w   float64
	}
	cands := make([][]cand, nPersons)
	for _, e := range g.Edges() {
		if e.W <= t {
			continue
		}
		p, o := int32(e.U), int32(e.V)
		if swapped {
			p, o = o, p
		}
		cands[p] = append(cands[p], cand{obj: o, w: e.W})
	}

	prices := make([]float64, nObjects)
	owner := make([]int32, nObjects) // person owning the object, or -1
	for o := range owner {
		owner[o] = -1
	}

	q := fifo{}
	for p := range cands {
		if len(cands[p]) > 0 {
			q.push(int32(p))
		}
	}
	for !q.empty() {
		p := q.pop()
		best, second := -1.0, 0.0
		bestObj := int32(-1)
		for _, cd := range cands[p] {
			val := cd.w - prices[cd.obj]
			if val > best {
				second = best
				best = val
				bestObj = cd.obj
			} else if val > second {
				second = val
			}
		}
		// Staying unmatched is worth 0; strictly below that, drop out.
		// Prices only rise, so the person can never profit later.
		if bestObj < 0 || best < 0 {
			continue
		}
		if second < 0 {
			second = 0
		}
		prices[bestObj] += best - second + eps
		if prev := owner[bestObj]; prev >= 0 {
			q.push(prev)
		}
		owner[bestObj] = p
	}

	var pairs []Pair
	for o := int32(0); int(o) < nObjects; o++ {
		p := owner[o]
		if p < 0 {
			continue
		}
		u, v := graph.NodeID(p), graph.NodeID(o)
		if swapped {
			u, v = v, u
		}
		if w, ok := g.Weight(u, v); ok && w > t {
			pairs = append(pairs, Pair{U: u, V: v, W: w})
		}
	}
	SortPairs(pairs)
	return pairs
}

// fifo is a simple queue of person ids.
type fifo struct {
	items []int32
	head  int
}

func (q *fifo) push(x int32) { q.items = append(q.items, x) }
func (q *fifo) empty() bool  { return q.head >= len(q.items) }
func (q *fifo) pop() int32 {
	x := q.items[q.head]
	q.head++
	return x
}
