package core

import "github.com/ccer-go/ccer/internal/graph"

// UMC is Unique Mapping Clustering (Algorithm 8 of the paper): it sorts
// the edges with weight above the threshold in decreasing order and
// greedily matches the top-weighted pair whose entities are both still
// unmatched. This enforces the unique mapping constraint of Clean-Clean ER
// directly and equals FAMER's CLIP clustering in the two-source case.
//
// UMC is the classic 1/2-approximation to maximum weight bipartite
// matching. Per the paper it offers the best precision-recall balance and
// is the best choice for balanced entity collections. Time complexity
// O(m log m).
type UMC struct{}

// Name implements Matcher.
func (UMC) Name() string { return "UMC" }

// Match implements Matcher.
func (UMC) Match(g *graph.Bipartite, t float64) []Pair {
	var b1, b2 [512]bool
	matched1, matched2 := scratch(b1[:], g.N1()), scratch(b2[:], g.N2())
	var pairs []Pair
	for _, ei := range g.EdgesByWeight() {
		e := g.Edge(ei)
		if e.W <= t {
			break // descending order: everything after is also pruned
		}
		if matched1[e.U] || matched2[e.V] {
			continue
		}
		matched1[e.U], matched2[e.V] = true, true
		pairs = append(pairs, Pair{U: e.U, V: e.V, W: e.W})
	}
	SortPairs(pairs)
	return pairs
}
