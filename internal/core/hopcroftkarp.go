package core

import "github.com/ccer-go/ccer/internal/graph"

// HopcroftKarp computes a maximum cardinality matching of the edges above
// the threshold in O(m√n), ignoring weights. It is not one of the paper's
// algorithms — CCER optimizes weighted quality, not size — but it bounds
// how many pairs any 1-1 matcher can possibly emit, which the tests use
// to check the maximality guarantees of UMC and KRC (every maximal
// matching has at least half the maximum cardinality).
type HopcroftKarp struct{}

// Name implements Matcher.
func (HopcroftKarp) Name() string { return "HK" }

// Match implements Matcher.
func (HopcroftKarp) Match(g *graph.Bipartite, t float64) []Pair {
	n1, n2 := g.N1(), g.N2()
	if n1 == 0 || n2 == 0 {
		return nil
	}

	// Filtered adjacency: above-threshold neighbors per V1 node, taken
	// from the weight-sorted prefix of each adjacency list.
	adj := make([][]int32, n1)
	for u := 0; u < n1; u++ {
		for _, ei := range g.Adj1(graph.NodeID(u)) {
			e := g.Edge(ei)
			if e.W <= t {
				break
			}
			adj[u] = append(adj[u], e.V)
		}
	}

	const inf = int32(1) << 30
	matchU := make([]int32, n1) // partner of u in V2, or -1
	matchV := make([]int32, n2) // partner of v in V1, or -1
	for i := range matchU {
		matchU[i] = -1
	}
	for i := range matchV {
		matchV[i] = -1
	}
	dist := make([]int32, n1)
	queue := make([]int32, 0, n1)

	bfs := func() bool {
		queue = queue[:0]
		for u := int32(0); int(u) < n1; u++ {
			if matchU[u] < 0 {
				dist[u] = 0
				queue = append(queue, u)
			} else {
				dist[u] = inf
			}
		}
		found := false
		for head := 0; head < len(queue); head++ {
			u := queue[head]
			for _, v := range adj[u] {
				w := matchV[v]
				if w < 0 {
					found = true
				} else if dist[w] == inf {
					dist[w] = dist[u] + 1
					queue = append(queue, w)
				}
			}
		}
		return found
	}

	var dfs func(u int32) bool
	dfs = func(u int32) bool {
		for _, v := range adj[u] {
			w := matchV[v]
			if w < 0 || (dist[w] == dist[u]+1 && dfs(w)) {
				matchU[u] = v
				matchV[v] = u
				return true
			}
		}
		dist[u] = inf
		return false
	}

	for bfs() {
		for u := int32(0); int(u) < n1; u++ {
			if matchU[u] < 0 {
				dfs(u)
			}
		}
	}

	var pairs []Pair
	for u := int32(0); int(u) < n1; u++ {
		if v := matchU[u]; v >= 0 {
			if w, ok := g.Weight(u, v); ok {
				pairs = append(pairs, Pair{U: u, V: v, W: w})
			}
		}
	}
	SortPairs(pairs)
	return pairs
}
