package core

import "github.com/ccer-go/ccer/internal/graph"

// CNC is Connected Components clustering (Algorithm 2 of the paper): it
// discards all edges with weight not above the similarity threshold,
// computes the transitive closure of the pruned graph, and keeps only the
// components that contain exactly two entities, one from each collection.
//
// The implementation runs union-find directly over the filtered edge list
// instead of materializing the pruned graph, which keeps CNC the fastest
// algorithm of the eight, as the paper reports. A two-node component
// always consists of one node per side (edges cross sides) and contains
// exactly one edge, so the output pairs are the edges whose component has
// size two. Time complexity O(n + m α(n)).
type CNC struct{}

// Name implements Matcher.
func (CNC) Name() string { return "CNC" }

// Match implements Matcher.
func (CNC) Match(g *graph.Bipartite, t float64) []Pair {
	n1 := int32(g.N1())
	n := g.NumNodes()
	var pbuf, sbuf [512]int32
	parent, size := scratch(pbuf[:], n), scratch(sbuf[:], n)
	for i := range parent {
		parent[i] = int32(i)
		size[i] = 1
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	// Iterating the descending-weight permutation touches only the
	// above-threshold edges: everything after the first pruned edge is
	// pruned too.
	byWeight := g.EdgesByWeight()
	above := len(byWeight)
	for k, ei := range byWeight {
		e := g.Edge(ei)
		if e.W <= t {
			above = k
			break
		}
		ra, rb := find(int32(e.U)), find(n1+int32(e.V))
		if ra == rb {
			continue
		}
		if size[ra] < size[rb] {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		size[ra] += size[rb]
	}
	var pairs []Pair
	for _, ei := range byWeight[:above] {
		e := g.Edge(ei)
		if size[find(int32(e.U))] == 2 {
			pairs = append(pairs, Pair{U: e.U, V: e.V, W: e.W})
		}
	}
	SortPairs(pairs)
	return pairs
}
