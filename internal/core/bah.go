package core

import (
	"math/rand"
	"time"

	"github.com/ccer-go/ccer/internal/graph"
)

// Default BAH configuration used throughout the paper's experiments
// (Table 1): 10,000 search steps capped at 2 minutes of run-time.
const (
	DefaultBAHSteps    = 10000
	DefaultBAHDuration = 2 * time.Minute
)

// BAH is the Best Assignment Heuristic (Algorithm 4 of the paper): a
// swap-based random search that heuristically solves maximum weight
// bipartite matching. Every entity of the smaller collection starts
// connected to an entity of the larger one; each step picks two random
// entities of the larger collection and swaps their partners if the sum of
// the new pair weights is at least the old sum. Only pairs whose edge
// weight exceeds the threshold are emitted.
//
// BAH is stochastic: the paper finds it the least robust algorithm and by
// far the slowest under the default caps, while occasionally achieving the
// best F-measure on balanced collections.
type BAH struct {
	// Seed seeds the random number generator, making a run reproducible.
	Seed int64
	// MaxSteps caps the number of search steps; if zero,
	// DefaultBAHSteps is used.
	MaxSteps int
	// MaxDuration caps the wall-clock run-time; if zero,
	// DefaultBAHDuration is used.
	MaxDuration time.Duration
}

// NewBAH returns a BAH matcher with the paper's default step and time caps.
func NewBAH(seed int64) BAH {
	return BAH{Seed: seed, MaxSteps: DefaultBAHSteps, MaxDuration: DefaultBAHDuration}
}

// Name implements Matcher.
func (BAH) Name() string { return "BAH" }

// CloneMatcher implements Cloner. BAH's random state lives inside Match
// (a fresh rand.Rand per call), so the value copy is a fully independent
// matcher that reproduces the original's output for the same seed.
func (b BAH) CloneMatcher() Matcher { return b }

// Match implements Matcher.
func (b BAH) Match(g *graph.Bipartite, t float64) []Pair {
	maxSteps := b.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultBAHSteps
	}
	maxDur := b.MaxDuration
	if maxDur <= 0 {
		maxDur = DefaultBAHDuration
	}

	// Orient so that "large" is the side the random search permutes
	// (the paper's V1 with |V1| > |V2|).
	swapped := g.N1() < g.N2()
	nLarge, nSmall := g.N1(), g.N2()
	if swapped {
		nLarge, nSmall = nSmall, nLarge
	}
	if nLarge == 0 || nSmall == 0 {
		return nil
	}

	lookup := g.WeightLookup()
	// d returns the pair contribution: the edge weight if the edge exists
	// and exceeds t, else 0 (Algorithm 4, lines 3-6).
	d := func(large, small graph.NodeID) float64 {
		var w float64
		var ok bool
		if swapped {
			w, ok = lookup(small, large)
		} else {
			w, ok = lookup(large, small)
		}
		if ok && w > t {
			return w
		}
		return 0
	}

	// p[i] is the small-side partner of large-side node i, or -1.
	p := make([]graph.NodeID, nLarge)
	for i := range p {
		if i < nSmall {
			p[i] = graph.NodeID(i)
		} else {
			p[i] = -1
		}
	}

	rng := rand.New(rand.NewSource(b.Seed))
	deadline := time.Now().Add(maxDur)
	for step := 0; step < maxSteps; step++ {
		if step%256 == 0 && time.Now().After(deadline) {
			break
		}
		i := graph.NodeID(rng.Intn(nLarge))
		j := graph.NodeID(rng.Intn(nLarge))
		if i == j {
			continue
		}
		delta := 0.0
		if p[i] >= 0 {
			delta += d(j, p[i]) - d(i, p[i])
		}
		if p[j] >= 0 {
			delta += d(i, p[j]) - d(j, p[j])
		}
		if delta >= 0 {
			p[i], p[j] = p[j], p[i]
		}
	}

	var pairs []Pair
	for i := range p {
		if p[i] < 0 {
			continue
		}
		if w := d(graph.NodeID(i), p[i]); w > 0 {
			if swapped {
				pairs = append(pairs, Pair{U: p[i], V: graph.NodeID(i), W: w})
			} else {
				pairs = append(pairs, Pair{U: graph.NodeID(i), V: p[i], W: w})
			}
		}
	}
	SortPairs(pairs)
	return pairs
}
