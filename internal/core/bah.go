package core

import (
	"time"

	"github.com/ccer-go/ccer/internal/graph"
)

// Default BAH configuration used throughout the paper's experiments
// (Table 1): 10,000 search steps capped at 2 minutes of run-time.
const (
	DefaultBAHSteps    = 10000
	DefaultBAHDuration = 2 * time.Minute
)

// BAH is the Best Assignment Heuristic (Algorithm 4 of the paper): a
// swap-based random search that heuristically solves maximum weight
// bipartite matching. Every entity of the smaller collection starts
// connected to an entity of the larger one; each step picks two random
// entities of the larger collection and swaps their partners if the sum of
// the new pair weights is at least the old sum. Only pairs whose edge
// weight exceeds the threshold are emitted.
//
// BAH is stochastic: the paper finds it the least robust algorithm and by
// far the slowest under the default caps, while occasionally achieving the
// best F-measure on balanced collections.
type BAH struct {
	// Seed seeds the random number generator, making a run reproducible.
	Seed int64
	// MaxSteps caps the number of search steps; if zero,
	// DefaultBAHSteps is used.
	MaxSteps int
	// MaxDuration caps the wall-clock run-time; if zero,
	// DefaultBAHDuration is used.
	MaxDuration time.Duration
}

// NewBAH returns a BAH matcher with the paper's default step and time caps.
func NewBAH(seed int64) BAH {
	return BAH{Seed: seed, MaxSteps: DefaultBAHSteps, MaxDuration: DefaultBAHDuration}
}

// Name implements Matcher.
func (BAH) Name() string { return "BAH" }

// CloneMatcher implements Cloner. BAH's random state lives inside Match
// (a fresh rand.Rand per call), so the value copy is a fully independent
// matcher that reproduces the original's output for the same seed.
func (b BAH) CloneMatcher() Matcher { return b }

// Match implements Matcher.
func (b BAH) Match(g *graph.Bipartite, t float64) []Pair {
	maxSteps := b.MaxSteps
	if maxSteps <= 0 {
		maxSteps = DefaultBAHSteps
	}
	maxDur := b.MaxDuration
	if maxDur <= 0 {
		maxDur = DefaultBAHDuration
	}

	// Orient so that "large" is the side the random search permutes
	// (the paper's V1 with |V1| > |V2|).
	swapped := g.N1() < g.N2()
	nLarge, nSmall := g.N1(), g.N2()
	if swapped {
		nLarge, nSmall = nSmall, nLarge
	}
	if nLarge == 0 || nSmall == 0 {
		return nil
	}
	// No edge exceeds the threshold: every pair contribution is 0, so
	// the random walk cannot change the (empty) output — skip it.
	if g.MaxWeight() <= t {
		return nil
	}

	// p[i] is the small-side partner of large-side node i, or -1. Small
	// graphs keep it on the stack.
	var pbuf [512]graph.NodeID
	p := scratch(pbuf[:], nLarge)
	for i := range p {
		if i < nSmall {
			p[i] = graph.NodeID(i)
		} else {
			p[i] = -1
		}
	}

	// The seeded draw sequence is cached and replayed (see
	// randstream.go): values match rand.New(rand.NewSource(b.Seed)) and
	// Intn(nLarge) exactly, so results are unchanged. The walk consumes
	// precisely two draws per step, acquired in deadline-check-sized
	// chunks so a binding time cap stops the stream growth too.
	src := newDrawSource(b.Seed, nLarge, 2*maxSteps)
	deadline := time.Now().Add(maxDur)
	const chunk = 256 // steps between deadline checks, as in the classic loop

	// pairW(large, small) is the pair contribution: the edge weight if
	// the edge exists and exceeds t, else 0 (Algorithm 4, lines 3-6).
	var pairW func(large, small graph.NodeID) float64

	stride := nSmall + 1
	if cells := nLarge * stride; cells <= 2*maxSteps {
		// Dense graphs small relative to the step budget: materialize
		// the thresholded, large-oriented contribution matrix once from
		// the edge list — wt[large*(nSmall+1) + small+1], with column 0
		// absorbing the "no partner" sentinel — so a step is four
		// unconditional loads. The cells <= 2*maxSteps bound keeps the
		// O(cells) build amortized below one write per probe.
		wt := make([]float64, cells)
		if swapped {
			for _, e := range g.Edges() {
				if e.W > t {
					wt[int(e.V)*stride+int(e.U)+1] = e.W
				}
			}
		} else {
			for _, e := range g.Edges() {
				if e.W > t {
					wt[int(e.U)*stride+int(e.V)+1] = e.W
				}
			}
		}
		for base := 0; base < maxSteps; base += chunk {
			if time.Now().After(deadline) {
				break
			}
			end := base + chunk
			if end > maxSteps {
				end = maxSteps
			}
			draws := src.pairs(base, end)
			for s := 0; s < end-base; s++ {
				i := draws[2*s]
				j := draws[2*s+1]
				if i == j {
					continue
				}
				pi, pj := int(p[i])+1, int(p[j])+1
				ri, rj := int(i)*stride, int(j)*stride
				// Same association as the two-step accumulation of the
				// general path: (gain_i) + (gain_j).
				delta := (wt[rj+pi] - wt[ri+pi]) + (wt[ri+pj] - wt[rj+pj])
				if delta >= 0 {
					p[i], p[j] = p[j], p[i]
				}
			}
		}
		pairW = func(large, small graph.NodeID) float64 {
			return wt[int(large)*stride+int(small)+1]
		}
	} else {
		// General path over the graph's cached pair index (built once
		// per graph, shared by the whole sweep): a direct strided probe
		// of the cached dense matrix when the graph has one, else the
		// hash map. WeightOrZero semantics fold the existence check
		// into the weight: an absent edge reads as 0, which contributes
		// 0 exactly like a present edge failing w > t.
		lookup := g.PairWeights()
		if dense, dn2 := lookup.DenseMatrix(); dense != nil {
			strideL, strideS := dn2, 1
			if swapped {
				strideL, strideS = 1, dn2
			}
			pairW = func(large, small graph.NodeID) float64 {
				if w := dense[int(large)*strideL+int(small)*strideS]; w > t {
					return w
				}
				return 0
			}
		} else {
			pairW = func(large, small graph.NodeID) float64 {
				var w float64
				if swapped {
					w = lookup.WeightOrZero(small, large)
				} else {
					w = lookup.WeightOrZero(large, small)
				}
				if w > t {
					return w
				}
				return 0
			}
		}
		for base := 0; base < maxSteps; base += chunk {
			if time.Now().After(deadline) {
				break
			}
			end := base + chunk
			if end > maxSteps {
				end = maxSteps
			}
			draws := src.pairs(base, end)
			for s := 0; s < end-base; s++ {
				i := graph.NodeID(draws[2*s])
				j := graph.NodeID(draws[2*s+1])
				if i == j {
					continue
				}
				delta := 0.0
				if p[i] >= 0 {
					delta += pairW(j, p[i]) - pairW(i, p[i])
				}
				if p[j] >= 0 {
					delta += pairW(i, p[j]) - pairW(j, p[j])
				}
				if delta >= 0 {
					p[i], p[j] = p[j], p[i]
				}
			}
		}
	}

	var pairs []Pair
	for i := range p {
		if p[i] < 0 {
			continue
		}
		if w := pairW(graph.NodeID(i), p[i]); w > 0 {
			if swapped {
				pairs = append(pairs, Pair{U: p[i], V: graph.NodeID(i), W: w})
			} else {
				pairs = append(pairs, Pair{U: graph.NodeID(i), V: p[i], W: w})
			}
		}
	}
	SortPairs(pairs)
	return pairs
}
