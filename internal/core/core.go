// Package core implements the eight bipartite graph matching algorithms
// evaluated by Papadakis et al., "Bipartite Graph Matching Algorithms for
// Clean-Clean Entity Resolution: An Empirical Evaluation" (EDBT 2022),
// plus two exact/near-exact maximum-weight baselines (Hungarian and the
// Bertsekas auction algorithm) that the paper excludes by its complexity
// criterion but that are useful as optimality references.
//
// Every algorithm receives a weighted bipartite similarity graph
// (internal/graph) and a similarity threshold t, and returns a 1-1
// matching: a set of (u,v) pairs such that no node appears twice.
// Entities not present in any pair are implicitly singletons, which is how
// the paper's clustering output (partitions of size one or two) maps onto
// a pair list.
//
// All algorithms are deterministic given their configuration; BAH is
// stochastic by design and takes an explicit seed.
package core

import (
	"fmt"
	"slices"

	"github.com/ccer-go/ccer/internal/graph"
)

// Pair is a matched entity pair: node U of V1 with node V of V2, connected
// by an edge of weight W in the input graph.
type Pair struct {
	U graph.NodeID
	V graph.NodeID
	W float64
}

// Matcher is a bipartite graph matching algorithm. Match must return a 1-1
// matching of the input graph, only using edges with weight strictly
// greater than t (the paper's pruning rule "e.sim > t").
//
// Goroutine safety: every matcher in this package keeps its mutable
// working state local to the Match call, so a single matcher value may be
// shared by concurrent Match calls on the same or different graphs. The
// stochastic matchers (BAH here, the Q-learning matcher in internal/rl)
// additionally implement Cloner so that parallel harnesses can hand each
// worker its own copy and keep that guarantee explicit; Clone respects it
// for both kinds.
type Matcher interface {
	// Name returns the short algorithm identifier used throughout the
	// paper, e.g. "UMC".
	Name() string
	// Match computes the matching.
	Match(g *graph.Bipartite, t float64) []Pair
}

// Cloner is implemented by matchers that carry per-instance configuration
// (seeds, caps) a parallel harness should copy per worker rather than
// share. CloneMatcher must return an independent matcher that produces
// the same output as the original for the same input.
type Cloner interface {
	CloneMatcher() Matcher
}

// Clone returns a per-worker copy of m: the CloneMatcher result when m
// implements Cloner, and m itself otherwise (the stateless matchers in
// this package are safe to share).
func Clone(m Matcher) Matcher {
	if c, ok := m.(Cloner); ok {
		return c.CloneMatcher()
	}
	return m
}

// CloneCache lazily hands each worker of a parallel harness its own
// clone of every matcher in a list. It is safe for concurrent use as
// long as each worker index is owned by exactly one goroutine (the
// par.For contract).
type CloneCache struct {
	matchers []Matcher
	clones   [][]Matcher
}

// NewCloneCache returns a cache for the matcher list across `workers`
// worker slots.
func NewCloneCache(matchers []Matcher, workers int) *CloneCache {
	if workers < 1 {
		workers = 1
	}
	return &CloneCache{matchers: matchers, clones: make([][]Matcher, workers)}
}

// Get returns worker w's private clone of matcher mi, creating it on
// first use.
func (c *CloneCache) Get(w, mi int) Matcher {
	if c.clones[w] == nil {
		c.clones[w] = make([]Matcher, len(c.matchers))
	}
	if c.clones[w][mi] == nil {
		c.clones[w][mi] = Clone(c.matchers[mi])
	}
	return c.clones[w][mi]
}

// scratch returns buf[:n] when the caller's stack buffer is large
// enough, else a heap slice. The matchers' per-call working arrays go
// through it: a threshold sweep makes thousands of Match calls, and on
// the small graphs of a corpus the arrays then never leave the stack.
// buf must be freshly zeroed (a `var` array is).
func scratch[T any](buf []T, n int) []T {
	if n <= len(buf) {
		return buf[:n]
	}
	return make([]T, n)
}

// SortPairs orders pairs by (U, V), giving a canonical form for
// comparisons and deterministic output. Matchers that emit in node
// order (e.g. BAH's unswapped orientation) hit the O(n) sorted check
// and skip the sort.
func SortPairs(pairs []Pair) {
	sorted := true
	for i := 1; i < len(pairs); i++ {
		if pairs[i-1].U > pairs[i].U ||
			(pairs[i-1].U == pairs[i].U && pairs[i-1].V > pairs[i].V) {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	slices.SortFunc(pairs, func(a, b Pair) int {
		if a.U != b.U {
			return int(a.U) - int(b.U)
		}
		return int(a.V) - int(b.V)
	})
}

// TotalWeight sums the edge weights of a matching.
func TotalWeight(pairs []Pair) float64 {
	s := 0.0
	for _, p := range pairs {
		s += p.W
	}
	return s
}

// ValidateMatching checks that pairs form a valid 1-1 matching of g with
// every pair weight strictly above t: no node is used twice, every pair is
// an existing edge, and recorded weights agree with the graph.
func ValidateMatching(g *graph.Bipartite, pairs []Pair, t float64) error {
	used1 := make(map[graph.NodeID]bool, len(pairs))
	used2 := make(map[graph.NodeID]bool, len(pairs))
	for _, p := range pairs {
		if p.U < 0 || int(p.U) >= g.N1() || p.V < 0 || int(p.V) >= g.N2() {
			return fmt.Errorf("core: pair (%d,%d) out of range", p.U, p.V)
		}
		if used1[p.U] {
			return fmt.Errorf("core: node %d of V1 matched twice", p.U)
		}
		if used2[p.V] {
			return fmt.Errorf("core: node %d of V2 matched twice", p.V)
		}
		used1[p.U], used2[p.V] = true, true
		w, ok := g.Weight(p.U, p.V)
		if !ok {
			return fmt.Errorf("core: pair (%d,%d) is not an edge", p.U, p.V)
		}
		if w != p.W {
			return fmt.Errorf("core: pair (%d,%d) weight %v, graph has %v", p.U, p.V, p.W, w)
		}
		if w <= t {
			return fmt.Errorf("core: pair (%d,%d) weight %v not above threshold %v", p.U, p.V, w, t)
		}
	}
	return nil
}

// All returns one instance of each of the paper's eight algorithms with
// their default configurations, in the paper's presentation order
// (Table 1): CNC, RSR, RCA, BAH, BMC, EXC, KRC, UMC.
//
// BAH uses the given seed and its default step cap; BMC uses BasisAuto,
// which tries both sides and keeps the heavier matching, mirroring the
// paper's "examine both options and retain the best one".
func All(bahSeed int64) []Matcher {
	return []Matcher{
		CNC{},
		RSR{},
		RCA{},
		NewBAH(bahSeed),
		BMC{Basis: BasisAuto},
		EXC{},
		KRC{},
		UMC{},
	}
}

// ByName returns the matcher with the given paper identifier, or nil.
// Recognized names: CNC, RSR, RCA, BAH, BMC, EXC, KRC, UMC, HUN, AUC.
func ByName(name string, bahSeed int64) Matcher {
	switch name {
	case "CNC":
		return CNC{}
	case "RSR":
		return RSR{}
	case "RCA":
		return RCA{}
	case "BAH":
		return NewBAH(bahSeed)
	case "BMC":
		return BMC{Basis: BasisAuto}
	case "EXC":
		return EXC{}
	case "KRC":
		return KRC{}
	case "UMC":
		return UMC{}
	case "HUN":
		return Hungarian{}
	case "AUC":
		return Auction{}
	}
	return nil
}

// Names lists the paper's eight algorithm identifiers in presentation
// order.
func Names() []string {
	return []string{"CNC", "RSR", "RCA", "BAH", "BMC", "EXC", "KRC", "UMC"}
}
