package core

import (
	"slices"

	"github.com/ccer-go/ccer/internal/graph"
)

// RSR is Ricochet Sequential Rippling clustering (Algorithm 1 of the
// paper), the Clean-Clean adaptation of the homonymous Dirty-ER algorithm
// of Wijaya & Bressan: partitions hold at most one entity from each
// collection.
//
// After pruning edges not above the threshold, nodes of both sides are
// sorted by descending average adjacent-edge weight and processed as
// candidate seeds. A seed claims the first adjacent vertex that is
// unassigned or closer to the seed than to its current partition's center;
// a center whose partition is thereby reduced to a singleton is re-placed
// into its nearest single-node cluster ("rippling").
//
// The pruning is implemented as a filtered view: adjacency lists are
// sorted by descending weight, so the above-threshold edges of a node are
// a prefix and no pruned graph copy is materialized.
//
// Two points the paper's pseudocode leaves implicit are resolved here the
// way the accompanying text describes them: (i) stealing an unassigned
// vertex does not schedule that vertex itself for re-assignment (only a
// center that actually lost its single member ripples), and (ii) a rippled
// center may join any adjacent node whose current cluster holds fewer than
// two entities, forming a pair with it ("placed in its nearest single-node
// cluster"). Time complexity O(nm).
type RSR struct{}

// Name implements Matcher.
func (RSR) Name() string { return "RSR" }

// rsrState tracks cluster membership over global node ids: V1 node u is
// id u, V2 node v is id n1+v.
type rsrState struct {
	n1       int
	isCenter []bool
	centerOf []int32   // global id of the center a node is attached to, or -1
	simWith  []float64 // similarity to the current center
	member   []int32   // single member attached to a center, or -1
}

func (s *rsrState) clusterSize(x int32) int {
	if s.isCenter[x] {
		if s.member[x] >= 0 {
			return 2
		}
		return 1
	}
	if s.centerOf[x] >= 0 {
		return 2 // member of a center's cluster
	}
	return 1 // unassigned singleton
}

// Match implements Matcher.
func (RSR) Match(g *graph.Bipartite, t float64) []Pair {
	n1, n2 := g.N1(), g.N2()
	n := n1 + n2

	var (
		icBuf [512]bool
		coBuf [512]int32
		swBuf [512]float64
		meBuf [512]int32
	)
	s := &rsrState{n1: n1}
	s.isCenter = scratch(icBuf[:], n)
	s.centerOf = scratch(coBuf[:], n)
	s.simWith = scratch(swBuf[:], n)
	s.member = scratch(meBuf[:], n)
	for i := range s.centerOf {
		s.centerOf[i] = -1
		s.member[i] = -1
	}

	// avgAbove computes the mean weight of the above-threshold prefix of
	// an adjacency list (lists are sorted by descending weight).
	avgAbove := func(ws []float64) float64 {
		sum, cnt := 0.0, 0
		for _, w := range ws {
			if w <= t {
				break
			}
			sum += w
			cnt++
		}
		if cnt == 0 {
			return 0
		}
		return sum / float64(cnt)
	}

	// Seed order: descending average adjacent weight, ties by id.
	var orBuf [512]int32
	var avBuf [512]float64
	order, avg := scratch(orBuf[:], n), scratch(avBuf[:], n)
	for i := 0; i < n1; i++ {
		order[i] = int32(i)
		_, ws := g.AdjList1(graph.NodeID(i))
		avg[i] = avgAbove(ws)
	}
	for j := 0; j < n2; j++ {
		order[n1+j] = int32(n1 + j)
		_, ws := g.AdjList2(graph.NodeID(j))
		avg[n1+j] = avgAbove(ws)
	}
	// The id tie-break makes this a total order, so an unstable sort
	// yields the same (deterministic) permutation.
	slices.SortFunc(order, func(x, y int32) int {
		switch {
		case avg[x] > avg[y]:
			return -1
		case avg[x] < avg[y]:
			return 1
		default:
			return int(x) - int(y)
		}
	})

	// adjOf returns x's neighbors (as global node ids via the returned
	// offset) and weights in descending weight order.
	adjOf := func(x int32) (opp []int32, ws []float64, oppBase int32) {
		if int(x) < n1 {
			opp, ws = g.AdjList1(x)
			return opp, ws, int32(n1)
		}
		opp, ws = g.AdjList2(x - int32(n1))
		return opp, ws, 0
	}

	for _, vi := range order {
		var toReassign []int32

		// Claim the first eligible adjacent vertex (Lines 11-20).
		claimed := int32(-1)
		opps, ws, base := adjOf(vi)
		for k, sim := range ws {
			if sim <= t {
				break // descending order: prefix exhausted
			}
			vj := base + opps[k]
			if s.isCenter[vj] {
				continue
			}
			if sim > s.simWith[vj] {
				if old := s.centerOf[vj]; old >= 0 && s.member[old] == vj {
					s.member[old] = -1
					toReassign = append(toReassign, old)
				}
				s.simWith[vj] = sim
				s.centerOf[vj] = vi
				claimed = vj
				break
			}
		}

		if claimed >= 0 {
			// vi becomes a center (Lines 21-29); if it was a member
			// elsewhere, its former center ripples.
			if old := s.centerOf[vi]; old >= 0 && old != vi && s.member[old] == vi {
				s.member[old] = -1
				toReassign = append(toReassign, old)
			}
			s.isCenter[vi] = true
			s.member[vi] = claimed
			s.centerOf[vi] = vi
			s.simWith[vi] = 1
		}

		// Ripple: re-place centers reduced to singletons (Lines 30-39).
		for _, vk := range toReassign {
			if s.clusterSize(vk) >= 2 {
				continue // already re-filled by a later steal
			}
			maxSim := 0.0
			cMax := int32(-1)
			kOpps, kWs, kBase := adjOf(vk)
			for k, sim := range kWs {
				if sim <= t {
					break
				}
				vl := kBase + kOpps[k]
				if sim > maxSim && s.clusterSize(vl) < 2 {
					maxSim = sim
					cMax = vl
				}
			}
			if cMax < 0 {
				continue
			}
			// vk joins vl's single-node cluster, forming the pair
			// {vl, vk} with vl as its center.
			s.isCenter[vk] = false
			s.member[vk] = -1
			s.isCenter[cMax] = true
			s.centerOf[cMax] = cMax
			s.member[cMax] = vk
			s.centerOf[vk] = cMax
			s.simWith[vk] = maxSim
		}
	}

	var pairs []Pair
	for x := int32(0); x < int32(n); x++ {
		if !s.isCenter[x] || s.member[x] < 0 {
			continue
		}
		m := s.member[x]
		var u, v graph.NodeID
		if int(x) < n1 {
			u, v = x, m-int32(n1)
		} else {
			u, v = m, x-int32(n1)
		}
		if w, ok := g.Weight(u, v); ok && w > t {
			pairs = append(pairs, Pair{U: u, V: v, W: w})
		}
	}
	SortPairs(pairs)
	return pairs
}
