package core

import (
	"math/rand"
	"sync"
	"testing"
)

// The cached reduced stream must match math/rand's Intn sequence draw
// for draw, for every bound shape (power of two, odd, even, tiny,
// huge) — BAH's reproducibility rides on it.
func TestIntnStreamMatchesMathRand(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 16, 25, 45, 70, 97, 1024, 65537, 1<<31 - 2, 1<<31 - 1} {
		for _, seed := range []int64{0, 1, 42, -7, 1 << 40} {
			ref := rand.New(rand.NewSource(seed))
			vals := newIntnStream(seed, n).grow(3000)
			for k := 0; k < 3000; k++ {
				if want := ref.Intn(n); int(vals[k]) != want {
					t.Fatalf("n=%d seed=%d draw %d: got %d, want %d", n, seed, k, vals[k], want)
				}
			}
		}
	}
}

// Repeated and concurrent growth of the shared stream must replay the
// same prefix.
func TestIntnStreamSharedAndConcurrent(t *testing.T) {
	const seed, n = 99, 97
	ref := rand.New(rand.NewSource(seed))
	want := make([]int32, 4000)
	for i := range want {
		want[i] = int32(ref.Intn(n))
	}
	st := intnStreamFor(seed, n)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vals := st.grow(1000 + 300*g)
			for i := range vals[:1000+300*g] {
				if vals[i] != want[i] {
					t.Errorf("draw %d: got %d, want %d", i, vals[i], want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	// A second lookup must return the same stream object with the same
	// prefix.
	again := intnStreamFor(seed, n).grow(4000)
	for i := range want {
		if again[i] != want[i] {
			t.Fatalf("replayed draw %d: got %d, want %d", i, again[i], want[i])
		}
	}
}

// Filling the registry past capacity must evict (bounding memory) while
// still caching new keys — a long-running service keeps its working set.
func TestIntnStreamRegistryEviction(t *testing.T) {
	for k := 0; k < maxCachedStreams+20; k++ {
		intnStreamFor(int64(1000+k), 33).grow(8)
	}
	streamMu.Lock()
	size := len(streams)
	_, newest := streams[streamKey{int64(1000 + maxCachedStreams + 19), 33}]
	streamMu.Unlock()
	if size > maxCachedStreams {
		t.Fatalf("registry holds %d streams, cap %d", size, maxCachedStreams)
	}
	if !newest {
		t.Fatalf("newest stream was not cached after eviction")
	}
	// Evicted-then-refetched streams must still replay the exact prefix.
	vals := intnStreamFor(1000, 33).grow(8)
	ref := rand.New(rand.NewSource(1000))
	for i := range vals[:8] {
		if int(vals[i]) != ref.Intn(33) {
			t.Fatalf("refetched stream draw %d mismatch", i)
		}
	}
}
