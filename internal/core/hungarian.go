package core

import (
	"math"

	"github.com/ccer-go/ccer/internal/graph"
)

// Hungarian computes an exact maximum weight bipartite matching with the
// Kuhn-Munkres algorithm in its O(n³) shortest-augmenting-path (Jonker-
// Volgenant style) formulation over a dense matrix.
//
// The paper excludes the Hungarian algorithm from its study by the cubic
// time complexity criterion; it is provided here as the optimality
// reference — it realizes the MaxWeight method of Gemmell et al. exactly —
// for validating the approximation quality of RCA, BAH, UMC and the
// auction baseline. Missing edges behave as zero-weight pairs, so pairs
// that do not improve the objective are effectively left unmatched and are
// filtered by the threshold afterwards.
//
// Memory is O(|V1|·|V2|); keep it for small-to-medium graphs.
type Hungarian struct{}

// Name implements Matcher.
func (Hungarian) Name() string { return "HUN" }

// Match implements Matcher.
func (Hungarian) Match(g *graph.Bipartite, t float64) []Pair {
	r, c := g.N1(), g.N2()
	transposed := false
	if r > c {
		r, c = c, r
		transposed = true
	}
	if r == 0 {
		return nil
	}

	// cost[i][j] = -weight so that the minimum-cost assignment maximizes
	// total weight. Missing edges cost 0.
	cost := make([][]float64, r)
	for i := range cost {
		cost[i] = make([]float64, c)
	}
	for _, e := range g.Edges() {
		if transposed {
			cost[e.V][e.U] = -e.W
		} else {
			cost[e.U][e.V] = -e.W
		}
	}

	rowOf := assignMinCost(cost, r, c)

	var pairs []Pair
	for j := 0; j < c; j++ {
		i := rowOf[j]
		if i < 0 {
			continue
		}
		u, v := graph.NodeID(i), graph.NodeID(j)
		if transposed {
			u, v = v, u
		}
		if w, ok := g.Weight(u, v); ok && w > t {
			pairs = append(pairs, Pair{U: u, V: v, W: w})
		}
	}
	SortPairs(pairs)
	return pairs
}

// assignMinCost solves the rectangular assignment problem (r <= c) and
// returns, for each column, the assigned row or -1. It is the classical
// potential-based shortest augmenting path method.
func assignMinCost(cost [][]float64, r, c int) []int {
	const inf = math.MaxFloat64
	u := make([]float64, r+1)
	v := make([]float64, c+1)
	p := make([]int, c+1) // p[j] = row (1-based) assigned to column j; 0 = none
	way := make([]int, c+1)
	minv := make([]float64, c+1)
	used := make([]bool, c+1)

	for i := 1; i <= r; i++ {
		p[0] = i
		j0 := 0
		for j := range minv {
			minv[j] = inf
			used[j] = false
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := inf
			j1 := -1
			for j := 1; j <= c; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= c; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rowOf := make([]int, c)
	for j := 1; j <= c; j++ {
		rowOf[j-1] = p[j] - 1
	}
	return rowOf
}
