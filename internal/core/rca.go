package core

import "github.com/ccer-go/ccer/internal/graph"

// RCA is Row Column Assignment clustering (Algorithm 3 of the paper),
// based on Kurtzberg's row-column scan approximation to the assignment
// problem. It makes two greedy passes over the graph — one assigning each
// V1 entity its most similar unassigned V2 entity, one the other way
// around — keeps the pass with the larger total assigned weight, and
// finally discards the pairs whose similarity does not exceed the
// threshold.
//
// Following the sparse-graph implementations the paper benchmarks, only
// existing edges (similarity > 0) are candidates; in the dense assignment
// formulation the remaining pairs have zero weight and would be discarded
// by the threshold anyway. Time complexity O(|V1||V2|) in the dense
// worst case, O(m) on sparse graphs.
type RCA struct{}

// Name implements Matcher.
func (RCA) Name() string { return "RCA" }

// Match implements Matcher.
func (RCA) Match(g *graph.Bipartite, t float64) []Pair {
	p1, d1 := rcaPass(g, true)
	p2, d2 := rcaPass(g, false)
	best := p1
	if d2 > d1 {
		best = p2
	}
	pairs := best[:0:0]
	for _, p := range best {
		if p.W > t {
			pairs = append(pairs, p)
		}
	}
	SortPairs(pairs)
	return pairs
}

// rcaPass performs one greedy scan. When fromV1 is true every V1 node
// claims its most similar unmatched V2 node; otherwise the roles are
// swapped. It returns the assignment and its total weight.
func rcaPass(g *graph.Bipartite, fromV1 bool) ([]Pair, float64) {
	var pairs []Pair
	total := 0.0
	var mbuf [512]bool
	if fromV1 {
		matched2 := scratch(mbuf[:], g.N2())
		for u := graph.NodeID(0); int(u) < g.N1(); u++ {
			opp, ws := g.AdjList1(u)
			for k, w := range ws {
				v := opp[k]
				if matched2[v] {
					continue
				}
				matched2[v] = true
				pairs = append(pairs, Pair{U: u, V: v, W: w})
				total += w
				break
			}
		}
	} else {
		matched1 := scratch(mbuf[:], g.N1())
		for v := graph.NodeID(0); int(v) < g.N2(); v++ {
			opp, ws := g.AdjList2(v)
			for k, w := range ws {
				u := opp[k]
				if matched1[u] {
					continue
				}
				matched1[u] = true
				pairs = append(pairs, Pair{U: u, V: v, W: w})
				total += w
				break
			}
		}
	}
	return pairs, total
}
