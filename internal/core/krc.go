package core

import "github.com/ccer-go/ccer/internal/graph"

// KRC is Király's Clustering (Algorithm 7 of the paper), the weighted
// Clean-Clean adaptation of Király's linear-time 3/2-approximation to
// maximum stable marriage ("New Algorithm"). Entities of V1 ("men")
// propose down their preference lists — neighbors with edge weight above
// the threshold, in descending weight — and entities of V2 ("women")
// accept a proposal if they are free or strictly prefer the proposer.
// A man who exhausts his list while still free receives one second chance
// and proposes down his list again; on this second pass he also wins ties
// against first-pass fiancés (the "promotion" of Király's second phase).
//
// Time complexity O(n + m log m): the log factor is the preference-list
// ordering, which this implementation inherits pre-sorted from the graph's
// adjacency layout.
type KRC struct{}

// Name implements Matcher.
func (KRC) Name() string { return "KRC" }

// Match implements Matcher.
func (KRC) Match(g *graph.Bipartite, t float64) []Pair {
	n1, n2 := g.N1(), g.N2()

	var (
		ptrBuf  [512]int32
		lastBuf [512]bool
		fiBuf   [512]int32
		fwBuf   [512]float64
		enBuf   [512]int32
	)
	ptr := scratch(ptrBuf[:], n1)         // next preference index per man
	lastChance := scratch(lastBuf[:], n1) // second-pass flag per man
	fiance := scratch(fiBuf[:], n2)       // current man per woman, or -1
	fianceW := scratch(fwBuf[:], n2)      // weight of the current engagement
	engagedTo := scratch(enBuf[:], n1)    // current woman per man, or -1
	for v := range fiance {
		fiance[v] = -1
	}
	for u := range engagedTo {
		engagedTo[u] = -1
	}

	// freeM is a FIFO of free men, seeded in insertion order (Line 6).
	freeM := make([]int32, 0, n1)
	for u := 0; u < n1; u++ {
		freeM = append(freeM, int32(u))
	}

	// prefs returns man u's preference list: the prefix of his adjacency
	// with weight above t (adjacency is already descending by weight).
	prefs := func(u int32) ([]int32, []float64) {
		opp, ws := g.AdjList1(u)
		for i, w := range ws {
			if w <= t {
				return opp[:i], ws[:i]
			}
		}
		return opp, ws
	}

	accepts := func(v int32, u int32, w float64) bool {
		if w > fianceW[v] {
			return true
		}
		return w == fianceW[v] && lastChance[u] && !lastChance[fiance[v]]
	}

	for len(freeM) > 0 {
		u := freeM[0]
		freeM = freeM[1:]
		if engagedTo[u] >= 0 {
			continue // engaged while waiting in the queue
		}
		opps, ws := prefs(u)
		if int(ptr[u]) >= len(ws) {
			if !lastChance[u] {
				lastChance[u] = true
				ptr[u] = 0 // recover the initial queue (Line 29)
				freeM = append(freeM, u)
			}
			continue // out of chances: u stays a singleton
		}
		v, w := opps[ptr[u]], ws[ptr[u]]
		ptr[u]++
		if fiance[v] < 0 {
			fiance[v], fianceW[v], engagedTo[u] = u, w, v
			continue
		}
		if accepts(v, u, w) {
			old := fiance[v]
			engagedTo[old] = -1
			freeM = append(freeM, old) // old fiancé is free again
			fiance[v], fianceW[v], engagedTo[u] = u, w, v
			continue
		}
		freeM = append(freeM, u) // rejected: keep proposing
	}

	var pairs []Pair
	for v := int32(0); v < int32(n2); v++ {
		if fiance[v] >= 0 {
			pairs = append(pairs, Pair{U: fiance[v], V: v, W: fianceW[v]})
		}
	}
	SortPairs(pairs)
	return pairs
}
