package core

import (
	"math/rand"
	"testing"
	"time"

	"github.com/ccer-go/ccer/internal/graph"
)

// seedBAH is the seed implementation of Algorithm 4, kept verbatim as a
// reference: live math/rand draws, map-backed weight lookup, branchy
// delta. Every fast-path tier of BAH.Match must reproduce it exactly.
func seedBAH(g *graph.Bipartite, t float64, seed int64, maxSteps int) []Pair {
	swapped := g.N1() < g.N2()
	nLarge, nSmall := g.N1(), g.N2()
	if swapped {
		nLarge, nSmall = nSmall, nLarge
	}
	if nLarge == 0 || nSmall == 0 {
		return nil
	}
	lookup := g.WeightLookup()
	d := func(large, small graph.NodeID) float64 {
		var w float64
		var ok bool
		if swapped {
			w, ok = lookup(small, large)
		} else {
			w, ok = lookup(large, small)
		}
		if ok && w > t {
			return w
		}
		return 0
	}
	p := make([]graph.NodeID, nLarge)
	for i := range p {
		if i < nSmall {
			p[i] = graph.NodeID(i)
		} else {
			p[i] = -1
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for step := 0; step < maxSteps; step++ {
		i := graph.NodeID(rng.Intn(nLarge))
		j := graph.NodeID(rng.Intn(nLarge))
		if i == j {
			continue
		}
		delta := 0.0
		if p[i] >= 0 {
			delta += d(j, p[i]) - d(i, p[i])
		}
		if p[j] >= 0 {
			delta += d(i, p[j]) - d(j, p[j])
		}
		if delta >= 0 {
			p[i], p[j] = p[j], p[i]
		}
	}
	var pairs []Pair
	for i := range p {
		if p[i] < 0 {
			continue
		}
		if w := d(graph.NodeID(i), p[i]); w > 0 {
			if swapped {
				pairs = append(pairs, Pair{U: p[i], V: graph.NodeID(i), W: w})
			} else {
				pairs = append(pairs, Pair{U: graph.NodeID(i), V: p[i], W: w})
			}
		}
	}
	SortPairs(pairs)
	return pairs
}

func tierGraph(seed int64, n1, n2, edges int) *graph.Bipartite {
	rng := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n1, n2)
	for k := 0; k < edges; k++ {
		b.Add(int32(rng.Intn(n1)), int32(rng.Intn(n2)), rng.Float64())
	}
	return b.MustBuild()
}

// BAH has three walk tiers (thresholded matrix / cached dense probe /
// map probe) selected by graph size vs step budget; all must be
// draw-for-draw identical to the seed implementation.
func TestBAHTiersMatchSeedImplementation(t *testing.T) {
	const steps = 400
	cases := []struct {
		name string
		g    *graph.Bipartite
	}{
		// cells <= 2*steps: thresholded-matrix tier.
		{"wt-matrix", tierGraph(1, 20, 30, 120)},
		// cells > 2*steps but within the dense lookup cap: dense probe.
		{"dense-probe", tierGraph(2, 60, 40, 300)},
		// cells beyond the dense lookup cap: map probe.
		{"map-probe", tierGraph(3, 1<<11, 1<<10, 800)},
		// Swapped orientation (|V1| < |V2|) through the matrix tier.
		{"swapped", tierGraph(4, 12, 25, 90)},
	}
	for _, tc := range cases {
		for _, thr := range []float64{0.1, 0.5, 0.9} {
			m := BAH{Seed: 77, MaxSteps: steps, MaxDuration: time.Minute}
			got := m.Match(tc.g, thr)
			want := seedBAH(tc.g, thr, 77, steps)
			if len(got) != len(want) {
				t.Fatalf("%s t=%v: %d pairs, seed %d", tc.name, thr, len(got), len(want))
			}
			for k := range want {
				if got[k] != want[k] {
					t.Fatalf("%s t=%v pair %d: %+v, seed %+v", tc.name, thr, k, got[k], want[k])
				}
			}
		}
	}
}
