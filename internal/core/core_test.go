package core

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"github.com/ccer-go/ccer/internal/graph"
)

// Node labels of the paper's Figure 1 example.
const (
	a1 = graph.NodeID(0)
	a2 = graph.NodeID(1)
	a3 = graph.NodeID(2)
	a4 = graph.NodeID(3)
	a5 = graph.NodeID(4)
	b1 = graph.NodeID(0)
	b2 = graph.NodeID(1)
	b3 = graph.NodeID(2)
	b4 = graph.NodeID(3)
)

// figure1 builds the similarity graph of Figure 1(a): a 4-node component
// {A1,B1,A5,B3}, the pairs (A2,B2) and (A3,B4), and a sub-threshold edge
// A4-B4.
func figure1(t *testing.T) *graph.Bipartite {
	t.Helper()
	b := graph.NewBuilder(5, 4)
	b.Add(a1, b1, 0.6)
	b.Add(a5, b1, 0.9)
	b.Add(a5, b3, 0.6)
	b.Add(a2, b2, 0.7)
	b.Add(a3, b4, 0.6)
	b.Add(a4, b4, 0.3)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func pairsOf(ps []Pair) [][2]graph.NodeID {
	out := make([][2]graph.NodeID, len(ps))
	for i, p := range ps {
		out[i] = [2]graph.NodeID{p.U, p.V}
	}
	return out
}

func wantPairs(t *testing.T, got []Pair, want [][2]graph.NodeID) {
	t.Helper()
	if !reflect.DeepEqual(pairsOf(got), want) {
		t.Fatalf("pairs = %v, want %v", pairsOf(got), want)
	}
}

// Figure 1(b): CNC keeps only the clean two-node components.
func TestCNCFigure1(t *testing.T) {
	g := figure1(t)
	got := CNC{}.Match(g, 0.5)
	wantPairs(t, got, [][2]graph.NodeID{{a2, b2}, {a3, b4}})
	if err := ValidateMatching(g, got, 0.5); err != nil {
		t.Fatal(err)
	}
}

// Figure 1(d): UMC matches the top-weighted pairs greedily.
func TestUMCFigure1(t *testing.T) {
	g := figure1(t)
	got := UMC{}.Match(g, 0.5)
	wantPairs(t, got, [][2]graph.NodeID{{a2, b2}, {a3, b4}, {a5, b1}})
	if err := ValidateMatching(g, got, 0.5); err != nil {
		t.Fatal(err)
	}
}

// Figure 1(d): EXC agrees with UMC here, as each partner pair is mutually
// best.
func TestEXCFigure1(t *testing.T) {
	g := figure1(t)
	got := EXC{}.Match(g, 0.5)
	wantPairs(t, got, [][2]graph.NodeID{{a2, b2}, {a3, b4}, {a5, b1}})
}

// BMC with V2 as basis reproduces Figure 1(d), per the paper's example;
// with V1 as basis it happens to find the maximum weight assignment, so
// BasisAuto retains that.
func TestBMCFigure1(t *testing.T) {
	g := figure1(t)
	wantPairs(t, BMC{Basis: BasisV2}.Match(g, 0.5),
		[][2]graph.NodeID{{a2, b2}, {a3, b4}, {a5, b1}})
	wantV1 := [][2]graph.NodeID{{a1, b1}, {a2, b2}, {a3, b4}, {a5, b3}}
	wantPairs(t, BMC{Basis: BasisV1}.Match(g, 0.5), wantV1)
	wantPairs(t, BMC{Basis: BasisAuto}.Match(g, 0.5), wantV1)
}

// Figure 1(c): RCA finds the maximum weight assignment, preferring
// A1-B1 + A5-B3 (sum 1.2) over A5-B1 (0.9).
func TestRCAFigure1(t *testing.T) {
	g := figure1(t)
	got := RCA{}.Match(g, 0.5)
	wantPairs(t, got, [][2]graph.NodeID{{a1, b1}, {a2, b2}, {a3, b4}, {a5, b3}})
}

// Figure 1(c): on this small graph the BAH random search converges to the
// optimal assignment within its default step budget.
func TestBAHFigure1(t *testing.T) {
	g := figure1(t)
	got := NewBAH(42).Match(g, 0.5)
	wantPairs(t, got, [][2]graph.NodeID{{a1, b1}, {a2, b2}, {a3, b4}, {a5, b3}})
	if err := ValidateMatching(g, got, 0.5); err != nil {
		t.Fatal(err)
	}
}

// Figure 1(d): KRC's proposals end with A5 winning B1 over A1.
func TestKRCFigure1(t *testing.T) {
	g := figure1(t)
	got := KRC{}.Match(g, 0.5)
	wantPairs(t, got, [][2]graph.NodeID{{a2, b2}, {a3, b4}, {a5, b1}})
}

// RSR under the pseudocode's seed ordering reassigns A5 to B3 and ends at
// the maximum weight configuration of Figure 1(c).
func TestRSRFigure1(t *testing.T) {
	g := figure1(t)
	got := RSR{}.Match(g, 0.5)
	wantPairs(t, got, [][2]graph.NodeID{{a1, b1}, {a2, b2}, {a3, b4}, {a5, b3}})
	if err := ValidateMatching(g, got, 0.5); err != nil {
		t.Fatal(err)
	}
}

// Hungarian and auction find the exact maximum weight matching,
// Figure 1(c), with total weight 2.5.
func TestExactBaselinesFigure1(t *testing.T) {
	g := figure1(t)
	want := [][2]graph.NodeID{{a1, b1}, {a2, b2}, {a3, b4}, {a5, b3}}
	for _, m := range []Matcher{Hungarian{}, Auction{}} {
		got := m.Match(g, 0.5)
		wantPairs(t, got, want)
		if w := TotalWeight(got); math.Abs(w-2.5) > 1e-9 {
			t.Fatalf("%s total weight = %v, want 2.5", m.Name(), w)
		}
	}
}

func TestAllMatchersEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0, 0).MustBuild()
	gOneSided := graph.NewBuilder(5, 0).MustBuild()
	for _, m := range append(All(1), Hungarian{}, Auction{}) {
		if got := m.Match(g, 0.5); len(got) != 0 {
			t.Fatalf("%s on empty graph: %v", m.Name(), got)
		}
		if got := m.Match(gOneSided, 0.5); len(got) != 0 {
			t.Fatalf("%s on one-sided graph: %v", m.Name(), got)
		}
	}
}

func TestAllMatchersThresholdAboveMax(t *testing.T) {
	g := figure1(t)
	for _, m := range append(All(1), Hungarian{}, Auction{}) {
		if got := m.Match(g, 0.95); len(got) != 0 {
			t.Fatalf("%s with t=0.95: %v", m.Name(), got)
		}
	}
}

func TestThresholdStrictlyGreater(t *testing.T) {
	// An edge exactly at the threshold must be pruned by every algorithm.
	b := graph.NewBuilder(1, 1)
	b.Add(0, 0, 0.5)
	g := b.MustBuild()
	for _, m := range append(All(1), Hungarian{}, Auction{}) {
		if got := m.Match(g, 0.5); len(got) != 0 {
			t.Fatalf("%s matched an edge equal to t: %v", m.Name(), got)
		}
		if got := m.Match(g, 0.49); len(got) != 1 {
			t.Fatalf("%s missed the edge above t: %v", m.Name(), got)
		}
	}
}

func TestByNameAndNames(t *testing.T) {
	for _, name := range Names() {
		m := ByName(name, 7)
		if m == nil {
			t.Fatalf("ByName(%q) = nil", name)
		}
		if m.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, m.Name())
		}
	}
	for _, name := range []string{"HUN", "AUC"} {
		if m := ByName(name, 0); m == nil || m.Name() != name {
			t.Fatalf("ByName(%q) broken", name)
		}
	}
	if ByName("nope", 0) != nil {
		t.Fatal("ByName accepted an unknown name")
	}
	if len(All(3)) != 8 {
		t.Fatalf("All returned %d matchers, want 8", len(All(3)))
	}
}

func TestValidateMatchingRejects(t *testing.T) {
	g := figure1(t)
	cases := []struct {
		name  string
		pairs []Pair
	}{
		{"duplicate V1 node", []Pair{{a5, b1, 0.9}, {a5, b3, 0.6}}},
		{"duplicate V2 node", []Pair{{a1, b1, 0.6}, {a5, b1, 0.9}}},
		{"not an edge", []Pair{{a1, b2, 0.6}}},
		{"wrong weight", []Pair{{a5, b1, 0.8}}},
		{"below threshold", []Pair{{a4, b4, 0.3}}},
		{"out of range", []Pair{{9, b1, 0.9}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := ValidateMatching(g, tc.pairs, 0.5); err == nil {
				t.Fatal("invalid matching accepted")
			}
		})
	}
}

func TestBAHDeterministicPerSeed(t *testing.T) {
	g := randomBipartite(rand.New(rand.NewSource(11)), 40, 40, 300)
	m := NewBAH(123)
	r1 := m.Match(g, 0.2)
	r2 := m.Match(g, 0.2)
	if !reflect.DeepEqual(r1, r2) {
		t.Fatal("BAH is not deterministic for a fixed seed")
	}
}

func TestBAHImprovesOverInitial(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := randomBipartite(rng, 30, 50, 400)
	zero := BAH{Seed: 1, MaxSteps: 1}.Match(g, 0.1)
	long := BAH{Seed: 1, MaxSteps: 20000}.Match(g, 0.1)
	if TotalWeight(long) < TotalWeight(zero) {
		t.Fatalf("BAH got worse with more steps: %v < %v",
			TotalWeight(long), TotalWeight(zero))
	}
}

// randomBipartite builds a random graph for property-style tests.
func randomBipartite(rng *rand.Rand, n1, n2, m int) *graph.Bipartite {
	b := graph.NewBuilder(n1, n2)
	for i := 0; i < m; i++ {
		b.Add(graph.NodeID(rng.Intn(n1)), graph.NodeID(rng.Intn(n2)), rng.Float64())
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
