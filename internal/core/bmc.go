package core

import "github.com/ccer-go/ccer/internal/graph"

// Basis selects which entity collection BMC uses as the basis for creating
// partitions (Table 1: "node partition used as basis").
type Basis int

const (
	// BasisAuto runs BMC from both sides and keeps the matching with the
	// larger total weight, mirroring the paper's tuning procedure
	// ("we examine both options and retain the best one").
	BasisAuto Basis = iota
	// BasisV1 iterates over the first collection.
	BasisV1
	// BasisV2 iterates over the second collection.
	BasisV2
)

// BMC is Best Match Clustering (Algorithm 5 of the paper), inspired by the
// Best Match strategy of Similarity Flooding as simplified in BigMat. For
// every entity of the basis collection it claims the most similar
// not-yet-clustered entity of the other collection, provided the edge
// weight exceeds the threshold.
//
// Per the paper it is the second-fastest algorithm and works best when the
// smaller collection is the basis. Time complexity O(m).
type BMC struct {
	Basis Basis
}

// Name implements Matcher.
func (BMC) Name() string { return "BMC" }

// Match implements Matcher.
func (b BMC) Match(g *graph.Bipartite, t float64) []Pair {
	switch b.Basis {
	case BasisV1:
		return bmcFrom(g, t, true)
	case BasisV2:
		return bmcFrom(g, t, false)
	default:
		p1 := bmcFrom(g, t, true)
		p2 := bmcFrom(g, t, false)
		if TotalWeight(p2) > TotalWeight(p1) {
			return p2
		}
		return p1
	}
}

// bmcFrom runs the scan with V1 as basis when fromV1 is true, otherwise
// with V2 as basis.
func bmcFrom(g *graph.Bipartite, t float64, fromV1 bool) []Pair {
	var pairs []Pair
	var mbuf [512]bool
	if fromV1 {
		matched2 := scratch(mbuf[:], g.N2())
		for u := graph.NodeID(0); int(u) < g.N1(); u++ {
			opp, ws := g.AdjList1(u) // descending weight
			for k, w := range ws {
				if w <= t {
					break
				}
				v := opp[k]
				if matched2[v] {
					continue
				}
				matched2[v] = true
				pairs = append(pairs, Pair{U: u, V: v, W: w})
				break
			}
		}
	} else {
		matched1 := scratch(mbuf[:], g.N1())
		for v := graph.NodeID(0); int(v) < g.N2(); v++ {
			opp, ws := g.AdjList2(v)
			for k, w := range ws {
				if w <= t {
					break
				}
				u := opp[k]
				if matched1[u] {
					continue
				}
				matched1[u] = true
				pairs = append(pairs, Pair{U: u, V: v, W: w})
				break
			}
		}
	}
	SortPairs(pairs)
	return pairs
}
