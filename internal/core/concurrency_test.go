package core

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"github.com/ccer-go/ccer/internal/graph"
)

// concurrencyMatchers returns all ten matchers of this package (the
// paper's eight plus the two exact baselines) with fixed configuration.
func concurrencyMatchers() []Matcher {
	return []Matcher{
		CNC{}, RSR{}, RCA{}, NewBAH(3),
		BMC{Basis: BasisAuto}, EXC{}, KRC{}, UMC{},
		Hungarian{}, Auction{},
	}
}

func concurrencyGraph(t *testing.T) *graph.Bipartite {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	n := 40
	b := graph.NewBuilder(n, n)
	for i := 0; i < 500; i++ {
		b.Add(int32(rng.Intn(n)), int32(rng.Intn(n)), rng.Float64())
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestMatchersGoroutineSafe runs every matcher's Match concurrently from
// many goroutines on a shared graph and asserts all outputs equal the
// serial result. Under -race this also proves Match keeps its mutable
// state call-local.
func TestMatchersGoroutineSafe(t *testing.T) {
	g := concurrencyGraph(t)
	const goroutines = 8
	for _, m := range concurrencyMatchers() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			t.Parallel()
			want := m.Match(g, 0.3)
			got := make([][]Pair, goroutines)
			var wg sync.WaitGroup
			for i := 0; i < goroutines; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					// Odd goroutines share the original value, even ones
					// use a per-worker clone: both must be safe.
					w := m
					if i%2 == 0 {
						w = Clone(m)
					}
					got[i] = w.Match(g, 0.3)
				}(i)
			}
			wg.Wait()
			for i, pairs := range got {
				if !reflect.DeepEqual(pairs, want) {
					t.Fatalf("goroutine %d: %d pairs != serial %d pairs",
						i, len(pairs), len(want))
				}
			}
		})
	}
}

// TestClone pins Clone's contract: stochastic matchers come back as
// independent copies with identical behavior, stateless ones come back
// as-is.
func TestClone(t *testing.T) {
	g := concurrencyGraph(t)
	b := NewBAH(17)
	c := Clone(b)
	if _, ok := c.(BAH); !ok {
		t.Fatalf("Clone(BAH) = %T", c)
	}
	if !reflect.DeepEqual(b.Match(g, 0.3), c.Match(g, 0.3)) {
		t.Fatal("BAH clone diverged from original at the same seed")
	}
	u := UMC{}
	if Clone(u) != Matcher(u) {
		t.Fatal("Clone of a stateless matcher should be the matcher itself")
	}
}
