package core

import (
	"math/bits"
	"math/rand"
	"sync"
	"sync/atomic"
)

// BAH restarts a seeded math/rand generator on every Match call, and a
// threshold sweep makes 20 such calls per graph — each one re-running
// the 607-word LFSR seeding and then paying several call layers plus a
// modulo per draw. For a fixed seed AND a fixed bound n, the sequence
// of Intn(n) results never changes, and BAH consumes exactly two draws
// per search step — so the reduced draw sequence is produced once
// (bit-exactly, see below) and replayed as a flat []int32 by every
// subsequent Match with the same (seed, n).
//
// Exactness: raw Int31 values come from a real *rand.Rand, and the
// reduction replicates rand.Rand.Int31n verbatim — power-of-two mask,
// otherwise rejection sampling plus modulo (the modulo via Lemire's
// exact fastmod). TestIntnStreamMatchesMathRand locks this in.

// intnStream is the cached Intn(n) draw prefix of one (seed, n). The
// values slice only ever grows; callers hold immutable-prefix
// snapshots.
type intnStream struct {
	mu    sync.Mutex
	rng   *rand.Rand
	n     uint64
	magic uint64 // ⌊2^64 / n⌋ + 1 (fastmod constant)
	max   int32  // rejection threshold; raw draws above it are redrawn
	mask  int32  // n-1 when n is a power of two, else -1
	vals  []int32
	// cached marks registry membership: only cached streams count
	// toward the global draw budget (and stop counting once evicted).
	// Guarded by mu, so grow's accounting and the evictor's subtraction
	// serialize and the budget counter cannot drift.
	cached bool
}

func newIntnStream(seed int64, n int) *intnStream {
	s := &intnStream{rng: rand.New(rand.NewSource(seed)), n: uint64(n), mask: -1}
	if n&(n-1) == 0 {
		s.mask = int32(n - 1)
	} else {
		s.max = int32((1 << 31) - 1 - (1<<31)%uint32(n))
		s.magic = ^uint64(0)/s.n + 1
	}
	return s
}

// grow returns the draw slice extended to at least k values.
func (s *intnStream) grow(k int) []int32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	grown := 0
	for len(s.vals) < k {
		var v int32
		if s.mask >= 0 {
			v = s.rng.Int31() & s.mask
		} else {
			v = s.rng.Int31()
			for v > s.max {
				v = s.rng.Int31()
			}
			hi, _ := bits.Mul64(s.magic*uint64(v), s.n)
			v = int32(hi)
		}
		s.vals = append(s.vals, v)
		grown++
	}
	if grown > 0 && s.cached {
		registryDraws.Add(int64(grown))
	}
	return s.vals
}

// The registry is bounded two ways so callers cycling seeds or graph
// sizes (e.g. through the erserve sweep API) cannot grow it without
// limit: maxCachedStreams caps the entry count and maxRegistryDraws
// caps the aggregate cached draws (4 bytes each — 16M draws = 64 MiB).
// Over either bound the oldest entries are evicted, so a long-running
// service keeps caching its current working set instead of permanently
// falling back to per-call regeneration.
const (
	maxCachedStreams = 128
	maxRegistryDraws = 16 << 20
)

type streamKey struct {
	seed int64
	n    int
}

var (
	streamMu sync.Mutex
	streams  = map[streamKey]*intnStream{}
	// streamOrder tracks insertion order for eviction (FIFO is enough:
	// the working set of a sweep is a handful of keys reused 20x each).
	streamOrder []streamKey
	// registryDraws counts the draws held by registry members.
	registryDraws atomic.Int64
)

// intnStreamFor returns the shared reduced-draw stream of (seed, n).
func intnStreamFor(seed int64, n int) *intnStream {
	key := streamKey{seed, n}
	streamMu.Lock()
	st, ok := streams[key]
	if !ok {
		st = newIntnStream(seed, n)
		st.cached = true // not yet shared; no lock needed
		for len(streams) >= maxCachedStreams ||
			(registryDraws.Load() > maxRegistryDraws && len(streamOrder) > 0) {
			old := streams[streamOrder[0]]
			delete(streams, streamOrder[0])
			streamOrder = streamOrder[1:]
			if old != nil {
				old.mu.Lock()
				old.cached = false
				registryDraws.Add(-int64(len(old.vals)))
				old.mu.Unlock()
			}
		}
		streams[key] = st
		streamOrder = append(streamOrder, key)
	}
	streamMu.Unlock()
	return st
}

// maxStreamedDraws caps how many reduced draws a walk may materialize
// through the shared cache (8 MiB per stream); beyond it, draws come
// from a live generator in bounded chunks instead.
const maxStreamedDraws = 1 << 21

// drawSource hands a BAH walk its Intn(n) draws chunk by chunk: either
// zero-copy windows of the shared reduced stream, or (for very large
// step caps, where caching whole prefixes would cost gigabytes) a live
// math/rand generator filling a reusable buffer. Both produce the exact
// rand.New(rand.NewSource(seed)).Intn(n) sequence.
type drawSource struct {
	st  *intnStream
	rng *rand.Rand
	n   int
	buf []int32
}

func newDrawSource(seed int64, n, totalDraws int) drawSource {
	if totalDraws <= maxStreamedDraws {
		return drawSource{st: intnStreamFor(seed, n), n: n}
	}
	return drawSource{rng: rand.New(rand.NewSource(seed)), n: n}
}

// pairs returns the draws for steps [base, end): 2*(end-base) values.
// The slice is only valid until the next call.
func (d *drawSource) pairs(base, end int) []int32 {
	if d.st != nil {
		return d.st.grow(2 * end)[2*base : 2*end]
	}
	k := 2 * (end - base)
	if cap(d.buf) < k {
		d.buf = make([]int32, k)
	}
	b := d.buf[:k]
	for i := range b {
		b[i] = int32(d.rng.Intn(d.n))
	}
	return b
}
