package resilience

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Backoff produces retry delays under decorrelated-jitter exponential
// backoff (the AWS architecture blog's variant): each delay is drawn
// uniformly from [Base, 3*previous], capped at Cap. Compared to plain
// exponential backoff with full jitter it decorrelates competing
// retriers faster — two clients shedding off the same overloaded server
// stop colliding after the first draw — while still growing toward the
// cap on persistent failure.
//
// The zero value works (Base 50ms, Cap 5s). A nil *Backoff follows the
// package's nil-receiver contract: Next returns 0 and Sleep returns
// immediately, so "no backoff" needs no branches at call sites.
//
// A Backoff is safe for concurrent use, though the usual shape is one
// per retry loop; Reset returns a shared one to its initial state.
type Backoff struct {
	// Base is the first (and minimum) delay. 0 means 50ms.
	Base time.Duration
	// Cap bounds every delay. 0 means 5s.
	Cap time.Duration
	// Seed fixes the jitter stream for deterministic tests; 0 draws a
	// random seed on first use.
	Seed int64

	mu   sync.Mutex
	rng  *rand.Rand
	prev time.Duration
}

func (b *Backoff) base() time.Duration {
	if b.Base > 0 {
		return b.Base
	}
	return 50 * time.Millisecond
}

func (b *Backoff) cap() time.Duration {
	if b.Cap > 0 {
		return b.Cap
	}
	return 5 * time.Second
}

// Next returns the next delay of the decorrelated-jitter sequence. The
// first call returns Base exactly (a deterministic floor the tests and
// the retry budget math can rely on); later calls jitter upward from it.
func (b *Backoff) Next() time.Duration {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	base, cap := b.base(), b.cap()
	if base > cap {
		base = cap
	}
	if b.prev == 0 {
		b.prev = base
		return base
	}
	if b.rng == nil {
		seed := b.Seed
		if seed == 0 {
			seed = rand.Int63()
		}
		b.rng = rand.New(rand.NewSource(seed))
	}
	span := 3*b.prev - base
	d := base
	if span > 0 {
		d += time.Duration(b.rng.Int63n(int64(span) + 1))
	}
	if d > cap {
		d = cap
	}
	b.prev = d
	return d
}

// Sleep blocks for Next(), returning early with ctx.Err() if the
// context dies first — a retry loop's deadline budget cuts the wait
// short instead of overshooting it. A nil receiver returns nil
// immediately.
func (b *Backoff) Sleep(ctx context.Context) error {
	return SleepCtx(ctx, b.Next())
}

// Reset restarts the sequence: the next Next() returns Base again.
func (b *Backoff) Reset() {
	if b == nil {
		return
	}
	b.mu.Lock()
	b.prev = 0
	b.mu.Unlock()
}

// SleepCtx is a context-aware time.Sleep: it waits d or until ctx is
// done, whichever comes first, returning ctx.Err() in the latter case.
// d <= 0 returns nil without consulting the context, so a zero backoff
// never turns an already-cancelled context into a spurious failure.
func SleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
