package resilience

import "time"

// Pace produces jittered steady-state delays around a target period,
// built on Backoff's decorrelated-jitter draw. Where Backoff answers
// "how long until the next retry" (growing toward its cap on persistent
// failure), Pace answers "how long until the next round of periodic
// work" — health probes, anti-entropy scans — without every worker
// firing in lockstep: each delay is uniform on [period/2, 3*period/2]
// with mean exactly the period, and two Paces with different seeds
// decorrelate immediately.
//
// The construction reuses Backoff directly, with Base = period/2:
// each Pace.Next resets the sequence and takes its SECOND step — a
// uniform draw on [Base, 3*Base] — so successive delays are i.i.d.
// uniform on [period/2, 3*period/2] rather than growing toward a cap
// (Backoff's late-clamp leaves a point mass at the cap, which would
// drag the mean above the period). Reset preserves the seeded rng, so
// a seed still fixes the whole stream. A nil *Pace follows the
// package's nil-receiver contract (Next returns 0).
type Pace struct {
	bo *Backoff
}

// NewPace returns a pacer around period. seed fixes the jitter stream
// (two pacers with distinct seeds drift apart from the first draw);
// 0 draws a random seed. period <= 0 panics — a pacer with no period
// is a programming error, not a configuration.
func NewPace(period time.Duration, seed int64) *Pace {
	if period <= 0 {
		panic("resilience: NewPace with period <= 0")
	}
	return &Pace{bo: &Backoff{Base: period / 2, Cap: period + period/2, Seed: seed}}
}

// Next returns the next jittered delay, uniform on [period/2, 3*period/2].
func (p *Pace) Next() time.Duration {
	if p == nil {
		return 0
	}
	p.bo.Reset()
	p.bo.Next() // deterministic Base floor, discarded
	return p.bo.Next()
}
