// Package resilience is the overload-protection layer of the serving
// path: request coalescing (identical in-flight computations share one
// execution), a two-priority bounded admission queue with a queue-time
// budget, and a fault-injection registry the chaos tests use to stretch
// and break the compute layer on demand.
//
// The package is dependency-free and, like internal/obs, nil-receiver
// safe where it matters: a nil *Limiter admits everything and a nil
// *Faults injects nothing, so the serving code needs no branches —
// construction decides whether the protections are on.
package resilience

import (
	"fmt"
	"time"
)

// ShedError is a load-shedding rejection: the request was refused
// before any work was done, with a machine-readable reason and a hint
// for when to retry. HTTP handlers translate it into a 503 with a
// Retry-After header and a JSON body carrying the reason.
type ShedError struct {
	// Reason is the machine-readable cause, one of "queue_full"
	// (the admission queue for the request's priority class is at
	// capacity) or "queue_timeout" (the request waited its full
	// queue-time budget without being granted a slot).
	Reason string
	// RetryAfter is the shedding side's guess at when capacity frees
	// up; zero means "immediately, if you must".
	RetryAfter time.Duration
}

func (e *ShedError) Error() string {
	return fmt.Sprintf("resilience: request shed (%s)", e.Reason)
}
