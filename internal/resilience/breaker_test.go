package resilience

import (
	"sync"
	"testing"
	"time"
)

// fakeClock drives a breaker through its cooldown without sleeping.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	return &Breaker{Threshold: threshold, Cooldown: cooldown, now: clk.now}, clk
}

func TestBreakerNilAllowsEverything(t *testing.T) {
	var b *Breaker
	if !b.Allow() || !b.Ready() {
		t.Fatal("nil breaker refused a request")
	}
	b.Success()
	b.Failure()
	if s := b.State(); s != BreakerClosed {
		t.Fatalf("nil breaker state = %v, want closed", s)
	}
	if o, h, c := b.Counts(); o != 0 || h != 0 || c != 0 {
		t.Fatal("nil breaker has counts")
	}
}

func TestBreakerOpensOnConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		b.Failure()
		if !b.Allow() {
			t.Fatalf("refused after %d failures, threshold 3", i+1)
		}
	}
	// A success in between resets the run.
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("opened on a non-consecutive run")
	}
	b.Failure() // third consecutive
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v after threshold failures, want open", b.State())
	}
	if b.Allow() || b.Ready() {
		t.Fatal("open breaker allowed a request before cooldown")
	}
	if opens, _, _ := b.Counts(); opens != 1 {
		t.Fatalf("opens = %d, want 1", opens)
	}
}

func TestBreakerHalfOpenProbeCloses(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("threshold-1 breaker did not open on first failure")
	}
	clk.advance(999 * time.Millisecond)
	if b.Allow() {
		t.Fatal("allowed before the cooldown elapsed")
	}
	clk.advance(2 * time.Millisecond)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after cooldown = %v, want half-open", b.State())
	}
	if !b.Allow() {
		t.Fatal("cooldown elapsed but the probe was refused")
	}
	// Exactly one probe: the slot is taken until the outcome lands.
	if b.Allow() {
		t.Fatal("second probe allowed while the first is in flight")
	}
	if b.Ready() {
		t.Fatal("Ready true while the probe slot is taken")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatalf("state after good probe = %v, want closed", b.State())
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a request")
	}
	if _, halfOpens, closes := b.Counts(); halfOpens != 1 || closes != 1 {
		t.Fatalf("halfOpens=%d closes=%d, want 1/1", halfOpens, closes)
	}
}

func TestBreakerFailedProbeReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("probe refused")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	// The cooldown restarted at the failed probe.
	clk.advance(500 * time.Millisecond)
	if b.Allow() {
		t.Fatal("allowed half a cooldown after a failed probe")
	}
	clk.advance(501 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("second probe refused after the restarted cooldown")
	}
	if opens, halfOpens, _ := b.Counts(); opens != 2 || halfOpens != 2 {
		t.Fatalf("opens=%d halfOpens=%d, want 2/2", opens, halfOpens)
	}
}

func TestBreakerStragglersWhileOpenChangeNothing(t *testing.T) {
	b, clk := newTestBreaker(2, time.Second)
	b.Failure()
	b.Failure()
	// Requests sent before the circuit tripped report in late.
	b.Success()
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("straggler moved an open breaker to %v", b.State())
	}
	clk.advance(time.Second)
	if !b.Allow() {
		t.Fatal("stragglers consumed the probe slot")
	}
}

func TestBreakerDefaults(t *testing.T) {
	b := &Breaker{}
	for i := 0; i < 4; i++ {
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatal("default threshold below 5")
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("default threshold above 5")
	}
}

// TestBreakerRaceHammer drives Allow/Success/Failure/State from many
// goroutines under the race detector, with a real (tiny) cooldown so
// every transition is exercised. The invariant checked at the end is
// bookkeeping sanity: closes never exceed half-opens, which never
// exceed opens.
func TestBreakerRaceHammer(t *testing.T) {
	b := &Breaker{Threshold: 3, Cooldown: time.Microsecond}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				if b.Allow() {
					if (i+g)%3 == 0 {
						b.Failure()
					} else {
						b.Success()
					}
				}
				_ = b.State()
				_ = b.Ready()
			}
		}(g)
	}
	wg.Wait()
	opens, halfOpens, closes := b.Counts()
	if closes > halfOpens || halfOpens > opens {
		t.Fatalf("transition counts inconsistent: opens=%d halfOpens=%d closes=%d",
			opens, halfOpens, closes)
	}
}
