package resilience

import (
	"context"
	"sync"
	"time"
)

// fault is one armed injection: added latency, then an optional error,
// for a bounded (or unbounded) number of hits.
type fault struct {
	delay     time.Duration
	err       error
	remaining int // < 0 means every hit
}

// Faults is a registry of named fault points around the compute layer,
// the serving-side sibling of crashtest.FaultFS: the chaos/overload
// tests arm latency and error injection at points like "match" and
// "generate" to stretch computations (forcing queue buildup and
// coalescing windows) or fail them on demand. Production servers carry
// a nil *Faults, which injects nothing at zero cost beyond a nil check.
type Faults struct {
	mu     sync.Mutex
	points map[string]*fault
	hits   map[string]int64
}

// NewFaults returns an empty registry; arm points with Set.
func NewFaults() *Faults {
	return &Faults{points: map[string]*fault{}, hits: map[string]int64{}}
}

// Set arms the named point: every matching Inject sleeps delay (cut
// short by the caller's context) and returns err. count bounds how many
// hits fire; count < 0 keeps the fault armed forever, count == 0
// disarms the point.
func (f *Faults) Set(point string, delay time.Duration, err error, count int) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if count == 0 {
		delete(f.points, point)
		return
	}
	f.points[point] = &fault{delay: delay, err: err, remaining: count}
}

// Inject fires the named point: it sleeps the armed latency (returning
// ctx.Err() early if the context dies first) and returns the armed
// error. An unarmed point — and any point on a nil registry — is free
// and returns nil.
func (f *Faults) Inject(ctx context.Context, point string) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	ft := f.points[point]
	if ft == nil {
		f.mu.Unlock()
		return nil
	}
	f.hits[point]++
	if ft.remaining > 0 {
		ft.remaining--
		if ft.remaining == 0 {
			delete(f.points, point)
		}
	}
	delay, err := ft.delay, ft.err
	f.mu.Unlock()

	if delay > 0 {
		t := time.NewTimer(delay)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return err
}

// Hits is the lifetime armed-hit count of the named point; it survives
// the point disarming or exhausting its count.
func (f *Faults) Hits(point string) int64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.hits[point]
}
