package resilience

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestFaultsInject: an armed point delays and errors for exactly its
// count, then disarms; hits survive the disarm.
func TestFaultsInject(t *testing.T) {
	f := NewFaults()
	boom := errors.New("boom")
	f.Set("match", 0, boom, 2)
	for i := 0; i < 2; i++ {
		if err := f.Inject(context.Background(), "match"); !errors.Is(err, boom) {
			t.Fatalf("hit %d: %v, want boom", i, err)
		}
	}
	if err := f.Inject(context.Background(), "match"); err != nil {
		t.Fatalf("exhausted point still fires: %v", err)
	}
	if f.Hits("match") != 2 {
		t.Fatalf("hits = %d, want 2", f.Hits("match"))
	}
}

// TestFaultsLatency: the armed delay is observed, and a dying context
// cuts it short.
func TestFaultsLatency(t *testing.T) {
	f := NewFaults()
	f.Set("gen", 30*time.Millisecond, nil, -1)
	start := time.Now()
	if err := f.Inject(context.Background(), "gen"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 30*time.Millisecond {
		t.Fatalf("delay not observed: %v", d)
	}

	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start = time.Now()
	if err := f.Inject(ctx, "gen"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("ctx-cut inject: %v", err)
	}
	if d := time.Since(start); d > 25*time.Millisecond {
		t.Fatalf("context did not cut the sleep short: %v", d)
	}
}

// TestFaultsDisarmAndNil: count 0 disarms; the nil registry is free.
func TestFaultsDisarmAndNil(t *testing.T) {
	f := NewFaults()
	f.Set("p", time.Hour, errors.New("x"), -1)
	f.Set("p", 0, nil, 0)
	if err := f.Inject(context.Background(), "p"); err != nil {
		t.Fatalf("disarmed point fired: %v", err)
	}
	var nilF *Faults
	nilF.Set("p", time.Hour, errors.New("x"), -1)
	if err := nilF.Inject(context.Background(), "p"); err != nil {
		t.Fatal(err)
	}
	if nilF.Hits("p") != 0 {
		t.Fatal("nil registry counted hits")
	}
}
