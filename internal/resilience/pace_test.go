package resilience

import (
	"testing"
	"time"
)

func TestPaceBoundsAndMean(t *testing.T) {
	const period = 100 * time.Millisecond
	p := NewPace(period, 7)
	var sum time.Duration
	const n = 2000
	for i := 0; i < n; i++ {
		d := p.Next()
		if d < period/2 || d > 3*period/2 {
			t.Fatalf("draw %d = %v outside [%v, %v]", i, d, period/2, 3*period/2)
		}
		sum += d
	}
	// Uniform on [p/2, 3p/2]: the mean of 2000 draws concentrates hard
	// around p (σ ≈ 0.0065p).
	mean := sum / n
	if mean < 95*time.Millisecond || mean > 105*time.Millisecond {
		t.Fatalf("mean delay %v too far from the %v period", mean, period)
	}
}

func TestPaceSeedsDecorrelate(t *testing.T) {
	a, b := NewPace(time.Second, 1), NewPace(time.Second, 2)
	same := 0
	for i := 0; i < 32; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same == 32 {
		t.Fatal("two pacers with distinct seeds produced identical streams")
	}
	// Same seed reproduces the stream exactly (deterministic tests).
	c, d := NewPace(time.Second, 9), NewPace(time.Second, 9)
	for i := 0; i < 32; i++ {
		if c.Next() != d.Next() {
			t.Fatal("same-seed pacers diverged")
		}
	}
}

func TestPaceNilReceiver(t *testing.T) {
	var p *Pace
	if d := p.Next(); d != 0 {
		t.Fatalf("nil pace Next() = %v, want 0", d)
	}
}

func TestPaceFirstDrawAlreadyJittered(t *testing.T) {
	// The whole point of Pace over a raw Backoff: no deterministic
	// lockstep first delay. Distinct seeds must differ on draw one.
	seen := map[time.Duration]bool{}
	for seed := int64(1); seed <= 8; seed++ {
		seen[NewPace(time.Second, seed).Next()] = true
	}
	if len(seen) < 2 {
		t.Fatalf("first draws identical across 8 seeds: %v", seen)
	}
}
