package resilience

import (
	"context"
	"sync"
	"time"
)

// Priority classes of the admission queue. Interactive work (a user
// waiting on a match response) is always granted a freed slot before
// bulk work (generation, sweeps), so heavy background load degrades
// bulk latency first and interactive p99 last.
type Priority int

const (
	// Interactive is the high-priority class: synchronous match
	// computations a client is blocked on.
	Interactive Priority = iota
	// Bulk is the low-priority class: similarity-graph generation and
	// sweep executions, work that tolerates queueing.
	Bulk
	numPriorities
)

func (p Priority) String() string {
	if p == Interactive {
		return "interactive"
	}
	return "bulk"
}

// Shed reasons, the machine-readable vocabulary of ShedError and the
// shed_total{reason} metric.
const (
	ReasonQueueFull    = "queue_full"
	ReasonQueueTimeout = "queue_timeout"
	// ReasonDegraded is used by the serving layer for mutations refused
	// while the durable log is latched failed; the limiter itself never
	// sheds with it, but the reason lives here so the vocabulary has
	// one home.
	ReasonDegraded = "degraded"
	// ReasonBacklog is used by the serving layer when the async sweep
	// backlog is at capacity.
	ReasonBacklog = "sweep_backlog"
)

// waiter is one queued Acquire. granted flips under the limiter's mutex
// exactly once; whoever flips it owns the handoff (the granter closes
// ready, an abandoning waiter returns the slot it raced into).
type waiter struct {
	ready   chan struct{}
	granted bool
}

// Limiter is a bounded, two-priority admission queue over a fixed pool
// of computation slots: at most slots heavy computations run at once,
// at most depth requests wait per priority class, and no request waits
// longer than its budget. Beyond any of those bounds the request is
// shed immediately with a machine-readable reason — a 503 now instead
// of a timeout later — so p99 degrades gracefully instead of the whole
// process collapsing under a stampede.
//
// A nil Limiter admits everything instantly (the "admission off"
// configuration), mirroring the obs package's nil-receiver contract.
type Limiter struct {
	mu    sync.Mutex
	free  int
	q     [numPriorities][]*waiter
	depth int
	sheds map[string]int64

	admitted int64
	inUse    int
}

// NewLimiter returns a limiter with the given concurrency slots and
// per-priority queue depth. slots < 1 and depth < 0 are clamped to 1
// and 0.
func NewLimiter(slots, depth int) *Limiter {
	if slots < 1 {
		slots = 1
	}
	if depth < 0 {
		depth = 0
	}
	return &Limiter{
		free:  slots,
		depth: depth,
		sheds: map[string]int64{ReasonQueueFull: 0, ReasonQueueTimeout: 0},
	}
}

// Acquire claims a computation slot, waiting in the priority class's
// queue for at most budget (budget <= 0 waits on ctx alone — the
// patient mode async jobs use). It returns nil when a slot is held
// (pair with Release), a *ShedError when the queue is full or the
// budget expired, and ctx.Err() when the caller gave up first.
func (l *Limiter) Acquire(ctx context.Context, p Priority, budget time.Duration) error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	if l.free > 0 {
		l.free--
		l.inUse++
		l.admitted++
		l.mu.Unlock()
		return nil
	}
	if len(l.q[p]) >= l.depth {
		l.sheds[ReasonQueueFull]++
		l.mu.Unlock()
		return &ShedError{Reason: ReasonQueueFull, RetryAfter: time.Second}
	}
	w := &waiter{ready: make(chan struct{})}
	l.q[p] = append(l.q[p], w)
	l.mu.Unlock()

	var timeout <-chan time.Time
	if budget > 0 {
		t := time.NewTimer(budget)
		defer t.Stop()
		timeout = t.C
	}
	select {
	case <-w.ready:
		return nil
	case <-timeout:
		if l.abandon(p, w, ReasonQueueTimeout) {
			return &ShedError{Reason: ReasonQueueTimeout, RetryAfter: time.Second}
		}
		return nil // the grant won the race; the slot is ours
	case <-ctx.Done():
		if !l.abandon(p, w, "") {
			// Granted just as we gave up: the caller will not run, so
			// hand the slot on rather than leak it.
			l.Release()
		}
		return ctx.Err()
	}
}

// abandon removes w from its queue, recording reason when one is given
// (a budget shed; context cancellation is the caller's own doing, not
// load shedding). It reports false when the grant already happened, in
// which case the caller owns a slot after all.
func (l *Limiter) abandon(p Priority, w *waiter, reason string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	if w.granted {
		return false
	}
	w.granted = true // marks the waiter dead; Release skips it defensively
	for i, o := range l.q[p] {
		if o == w {
			l.q[p] = append(l.q[p][:i], l.q[p][i+1:]...)
			break
		}
	}
	if reason != "" {
		l.sheds[reason]++
	}
	return true
}

// Release returns a slot, handing it to the longest-waiting interactive
// request first, then the longest-waiting bulk one.
func (l *Limiter) Release() {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for p := Interactive; p < numPriorities; p++ {
		for len(l.q[p]) > 0 {
			w := l.q[p][0]
			l.q[p] = l.q[p][1:]
			if w.granted {
				continue // abandoned concurrently; already delisted? defensive
			}
			w.granted = true
			l.admitted++
			close(w.ready)
			return
		}
	}
	l.inUse--
	l.free++
}

// Depth is the number of requests currently waiting, across both
// priority classes — the admission_queue_depth gauge.
func (l *Limiter) Depth() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.q[Interactive]) + len(l.q[Bulk])
}

// InUse is the number of slots currently held.
func (l *Limiter) InUse() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inUse
}

// Admitted is the lifetime count of granted slots.
func (l *Limiter) Admitted() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.admitted
}

// ShedCounts is the lifetime shed count per reason. Both limiter
// reasons are always present (zero-valued before any shed), so the
// metric series exist from the first scrape.
func (l *Limiter) ShedCounts() map[string]int64 {
	if l == nil {
		return map[string]int64{ReasonQueueFull: 0, ReasonQueueTimeout: 0}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[string]int64, len(l.sheds))
	for k, v := range l.sheds {
		out[k] = v
	}
	return out
}
