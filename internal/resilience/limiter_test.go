package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func mustAcquire(t *testing.T, l *Limiter, p Priority) {
	t.Helper()
	if err := l.Acquire(context.Background(), p, time.Second); err != nil {
		t.Fatalf("acquire: %v", err)
	}
}

// TestLimiterFastPath: free slots are granted immediately and
// accounted; releases return them.
func TestLimiterFastPath(t *testing.T) {
	l := NewLimiter(2, 4)
	mustAcquire(t, l, Interactive)
	mustAcquire(t, l, Bulk)
	if l.InUse() != 2 || l.Depth() != 0 {
		t.Fatalf("inuse=%d depth=%d, want 2/0", l.InUse(), l.Depth())
	}
	l.Release()
	l.Release()
	if l.InUse() != 0 || l.Admitted() != 2 {
		t.Fatalf("inuse=%d admitted=%d, want 0/2", l.InUse(), l.Admitted())
	}
}

// TestLimiterQueueFullShed: waiters beyond the depth are shed
// immediately with reason queue_full.
func TestLimiterQueueFullShed(t *testing.T) {
	l := NewLimiter(1, 1)
	mustAcquire(t, l, Interactive) // the slot
	queued := make(chan error, 1)
	go func() { queued <- l.Acquire(context.Background(), Interactive, 10*time.Second) }()
	waitDepth(t, l, 1)

	err := l.Acquire(context.Background(), Interactive, 10*time.Second)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonQueueFull {
		t.Fatalf("over-depth acquire: %v, want queue_full shed", err)
	}
	if shed.RetryAfter <= 0 {
		t.Fatalf("shed carries no Retry-After hint: %+v", shed)
	}
	if l.ShedCounts()[ReasonQueueFull] != 1 {
		t.Fatalf("shed counts = %v", l.ShedCounts())
	}

	l.Release() // hands the slot to the queued waiter
	if err := <-queued; err != nil {
		t.Fatalf("queued waiter: %v", err)
	}
	l.Release()
}

// TestLimiterBudgetShed: a waiter that exhausts its queue-time budget
// is shed with reason queue_timeout and removed from the queue.
func TestLimiterBudgetShed(t *testing.T) {
	l := NewLimiter(1, 4)
	mustAcquire(t, l, Interactive)

	start := time.Now()
	err := l.Acquire(context.Background(), Interactive, 20*time.Millisecond)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ReasonQueueTimeout {
		t.Fatalf("budget acquire: %v, want queue_timeout shed", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("shed before the budget elapsed")
	}
	if l.Depth() != 0 {
		t.Fatalf("abandoned waiter still queued: depth=%d", l.Depth())
	}
	// The held slot must still hand off normally afterwards.
	l.Release()
	mustAcquire(t, l, Bulk)
	l.Release()
}

// TestLimiterPriorityOrder: a freed slot goes to the interactive
// waiter even when a bulk waiter queued first.
func TestLimiterPriorityOrder(t *testing.T) {
	l := NewLimiter(1, 4)
	mustAcquire(t, l, Interactive)

	order := make(chan Priority, 2)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if err := l.Acquire(context.Background(), Bulk, 10*time.Second); err != nil {
			t.Errorf("bulk: %v", err)
			return
		}
		order <- Bulk
		l.Release()
	}()
	waitDepth(t, l, 1) // bulk is parked first
	go func() {
		defer wg.Done()
		if err := l.Acquire(context.Background(), Interactive, 10*time.Second); err != nil {
			t.Errorf("interactive: %v", err)
			return
		}
		order <- Interactive
		l.Release()
	}()
	waitDepth(t, l, 2)

	l.Release()
	wg.Wait()
	if first := <-order; first != Interactive {
		t.Fatalf("slot went to %v first, want interactive", first)
	}
}

// TestLimiterContextCancelWhileQueued: the caller's own cancellation
// returns ctx.Err() and is not counted as a shed.
func TestLimiterContextCancelWhileQueued(t *testing.T) {
	l := NewLimiter(1, 4)
	mustAcquire(t, l, Interactive)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.Acquire(ctx, Interactive, time.Minute) }()
	waitDepth(t, l, 1)
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: %v", err)
	}
	counts := l.ShedCounts()
	if counts[ReasonQueueFull] != 0 || counts[ReasonQueueTimeout] != 0 {
		t.Fatalf("cancellation counted as shed: %v", counts)
	}
	l.Release()
}

// TestLimiterNilNoOp: the nil limiter admits everything.
func TestLimiterNilNoOp(t *testing.T) {
	var l *Limiter
	if err := l.Acquire(context.Background(), Interactive, 0); err != nil {
		t.Fatal(err)
	}
	l.Release()
	if l.Depth() != 0 || l.InUse() != 0 || l.Admitted() != 0 {
		t.Fatal("nil limiter reports non-zero state")
	}
	if c := l.ShedCounts(); c[ReasonQueueFull] != 0 {
		t.Fatalf("nil shed counts = %v", c)
	}
}

// TestLimiterHammer drives many goroutines of both classes through a
// small limiter under -race: the concurrency bound must hold at every
// instant, nothing deadlocks, and all slots come back.
func TestLimiterHammer(t *testing.T) {
	const slots = 3
	l := NewLimiter(slots, 8)
	var inUse, maxInUse atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < 40; r++ {
				p := Priority(r % int(numPriorities))
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if (i+r)%11 == 0 {
					ctx, cancel = context.WithTimeout(ctx, 100*time.Microsecond)
				}
				err := l.Acquire(ctx, p, 5*time.Millisecond)
				cancel()
				if err != nil {
					continue // shed or cancelled; both fine under load
				}
				cur := inUse.Add(1)
				for {
					prev := maxInUse.Load()
					if cur <= prev || maxInUse.CompareAndSwap(prev, cur) {
						break
					}
				}
				time.Sleep(20 * time.Microsecond)
				inUse.Add(-1)
				l.Release()
			}
		}(i)
	}
	wg.Wait()
	if maxInUse.Load() > slots {
		t.Fatalf("concurrency bound broken: saw %d holders, limit %d", maxInUse.Load(), slots)
	}
	if l.InUse() != 0 || l.Depth() != 0 {
		t.Fatalf("slots leaked: inuse=%d depth=%d", l.InUse(), l.Depth())
	}
	// With everything released, all slots must be immediately grantable.
	for i := 0; i < slots; i++ {
		mustAcquire(t, l, Interactive)
	}
	for i := 0; i < slots; i++ {
		l.Release()
	}
}

func waitDepth(t *testing.T, l *Limiter, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for l.Depth() < want {
		if time.Now().After(deadline) {
			t.Fatalf("depth stuck at %d, want %d", l.Depth(), want)
		}
		time.Sleep(time.Millisecond)
	}
}
