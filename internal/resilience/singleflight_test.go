package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestGroupCoalesces: N concurrent callers of one key share exactly one
// execution and all see the same value; the hit counter records N-1.
func TestGroupCoalesces(t *testing.T) {
	var g Group[string, int]
	var execs atomic.Int64
	release := make(chan struct{})

	const n = 8
	results := make([]int, n)
	sharedFlags := make([]bool, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
				execs.Add(1)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Errorf("caller %d: %v", i, err)
			}
			results[i], sharedFlags[i] = v, shared
		}(i)
	}
	// Wait until every caller is attached (1 lead + n-1 hits), then let
	// the single execution finish.
	deadline := time.Now().Add(5 * time.Second)
	for g.Hits() < n-1 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d hits registered, want %d", g.Hits(), n-1)
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Fatalf("fn executed %d times, want 1", got)
	}
	shared := 0
	for i := range results {
		if results[i] != 42 {
			t.Fatalf("caller %d got %d, want 42", i, results[i])
		}
		if sharedFlags[i] {
			shared++
		}
	}
	if shared != n-1 {
		t.Fatalf("%d callers report shared, want %d", shared, n-1)
	}
	if g.Hits() != n-1 || g.Leads() != 1 {
		t.Fatalf("hits=%d leads=%d, want %d/1", g.Hits(), g.Leads(), n-1)
	}
	if g.InFlight() != 0 {
		t.Fatalf("%d flights still registered after completion", g.InFlight())
	}
}

// TestGroupSequentialCallsDoNotCoalesce: back-to-back calls each
// execute; nothing stale is served after a flight completes.
func TestGroupSequentialCallsDoNotCoalesce(t *testing.T) {
	var g Group[string, int]
	var execs atomic.Int64
	for i := 0; i < 3; i++ {
		v, shared, err := g.Do(context.Background(), "k", func(context.Context) (int, error) {
			return int(execs.Add(1)), nil
		})
		if err != nil || shared {
			t.Fatalf("call %d: v=%d shared=%v err=%v", i, v, shared, err)
		}
		if v != i+1 {
			t.Fatalf("call %d served stale value %d", i, v)
		}
	}
}

// TestGroupErrorShared: a failing execution delivers the same error to
// every attached caller.
func TestGroupErrorShared(t *testing.T) {
	var g Group[string, int]
	boom := errors.New("boom")
	release := make(chan struct{})
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, errs[i] = g.Do(context.Background(), "k", func(context.Context) (int, error) {
				<-release
				return 0, boom
			})
		}(i)
	}
	for g.Hits() < 3 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	for i, err := range errs {
		if !errors.Is(err, boom) {
			t.Fatalf("caller %d: err = %v, want boom", i, err)
		}
	}
}

// TestGroupWaiterCancelLeavesFlight: a waiter whose context dies gets
// ctx.Err() while the execution completes for the caller that stays.
func TestGroupWaiterCancelLeavesFlight(t *testing.T) {
	var g Group[string, int]
	release := make(chan struct{})
	started := make(chan struct{})

	var stayV int
	var stayErr error
	done := make(chan struct{})
	go func() {
		defer close(done)
		stayV, _, stayErr = g.Do(context.Background(), "k", func(context.Context) (int, error) {
			close(started)
			<-release
			return 7, nil
		})
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for g.Hits() < 1 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	_, shared, err := g.Do(ctx, "k", func(context.Context) (int, error) {
		t.Error("waiter must not lead")
		return 0, nil
	})
	if !shared || !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: shared=%v err=%v", shared, err)
	}

	close(release)
	<-done
	if stayErr != nil || stayV != 7 {
		t.Fatalf("staying caller: v=%d err=%v, want 7/nil", stayV, stayErr)
	}
}

// TestGroupAllCallersGoneCancelsFlight: when the last interested caller
// hangs up, the flight's context is cancelled so the computation can
// stop doing work nobody wants.
func TestGroupAllCallersGoneCancelsFlight(t *testing.T) {
	var g Group[string, int]
	flightCancelled := make(chan struct{})
	started := make(chan struct{})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		<-started
		cancel()
	}()
	_, _, err := g.Do(ctx, "k", func(fctx context.Context) (int, error) {
		close(started)
		<-fctx.Done()
		close(flightCancelled)
		return 0, fctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want canceled", err)
	}
	select {
	case <-flightCancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("flight context never cancelled after last caller left")
	}
}

// TestGroupDistinctKeysRunConcurrently: different keys never share.
func TestGroupDistinctKeysRunConcurrently(t *testing.T) {
	var g Group[int, int]
	var execs atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, shared, err := g.Do(context.Background(), i, func(context.Context) (int, error) {
				execs.Add(1)
				return i * i, nil
			})
			if err != nil || shared || v != i*i {
				t.Errorf("key %d: v=%d shared=%v err=%v", i, v, shared, err)
			}
		}(i)
	}
	wg.Wait()
	if execs.Load() != 4 {
		t.Fatalf("execs = %d, want 4", execs.Load())
	}
}

// TestGroupHammer is the -race workout: many goroutines over few keys,
// with a sprinkling of cancellations.
func TestGroupHammer(t *testing.T) {
	var g Group[int, int]
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < 50; r++ {
				ctx := context.Background()
				var cancel context.CancelFunc = func() {}
				if (i+r)%7 == 0 {
					ctx, cancel = context.WithTimeout(ctx, time.Microsecond)
				}
				key := r % 3
				v, _, err := g.Do(ctx, key, func(fctx context.Context) (int, error) {
					time.Sleep(50 * time.Microsecond)
					return key * 10, nil
				})
				cancel()
				if err == nil && v != key*10 {
					t.Errorf("key %d returned %d", key, v)
				}
			}
		}(i)
	}
	wg.Wait()
	// Every flight must eventually drain from the table.
	deadline := time.Now().Add(5 * time.Second)
	for g.InFlight() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("%d flights leaked", g.InFlight())
		}
		time.Sleep(time.Millisecond)
	}
}
