package resilience

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's position.
type BreakerState int32

const (
	// BreakerClosed passes every request (the healthy state).
	BreakerClosed BreakerState = iota
	// BreakerOpen fails every request fast; after Cooldown the next
	// Allow transitions to half-open.
	BreakerOpen
	// BreakerHalfOpen lets exactly one probe through; its outcome
	// decides between closing (success) and re-opening (failure).
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	default:
		return "half-open"
	}
}

// Breaker is a consecutive-failure circuit breaker: Threshold failures
// in a row open the circuit, every request is then refused without
// touching the backend, and after Cooldown a single half-open probe is
// let through — success closes the circuit, failure re-opens it (and
// restarts the cooldown). The cluster router keeps one per backend, fed
// by both the active /readyz prober and passive per-request outcomes,
// so a crashed backend stops eating requests within a handful of
// failures and a recovered one rejoins on the first good probe.
//
// A nil *Breaker allows everything and records nothing, following the
// package's nil-receiver contract.
type Breaker struct {
	// Threshold is the consecutive-failure count that opens the
	// circuit. 0 means 5.
	Threshold int
	// Cooldown is how long the circuit stays open before the next
	// Allow becomes the half-open probe. 0 means 1s.
	Cooldown time.Duration

	// now is the clock; tests override it. nil means time.Now.
	now func() time.Time

	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the circuit last opened
	probing  bool      // the half-open probe slot is taken

	opens     int64 // lifetime closed/half-open -> open transitions
	halfOpens int64 // lifetime open -> half-open transitions
	closes    int64 // lifetime half-open -> closed transitions
}

func (b *Breaker) threshold() int {
	if b.Threshold > 0 {
		return b.Threshold
	}
	return 5
}

func (b *Breaker) cooldown() time.Duration {
	if b.Cooldown > 0 {
		return b.Cooldown
	}
	return time.Second
}

func (b *Breaker) clock() time.Time {
	if b.now != nil {
		return b.now()
	}
	return time.Now()
}

// Allow reports whether a request may proceed, consuming the half-open
// probe slot when the cooldown has elapsed: the first Allow after the
// cooldown returns true and arms the probe; further Allows return false
// until Success or Failure settles it. Callers that send a request on
// true MUST report its outcome, or an open circuit's probe slot leaks
// until the next cooldown.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.clock().Sub(b.openedAt) < b.cooldown() {
			return false
		}
		b.state = BreakerHalfOpen
		b.halfOpens++
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Ready reports whether a request would currently be allowed, without
// consuming the half-open probe slot — the health view the /v1/cluster
// debug endpoint and replica selection read.
func (b *Breaker) Ready() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		return b.clock().Sub(b.openedAt) >= b.cooldown()
	default:
		return !b.probing
	}
}

// Success records a successful request: it resets the consecutive-
// failure count and, from half-open, closes the circuit. A success
// arriving while the circuit is open (a straggler from before it
// tripped) changes nothing — recovery is the half-open probe's to
// prove.
func (b *Breaker) Success() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures = 0
	case BreakerHalfOpen:
		b.state = BreakerClosed
		b.closes++
		b.failures = 0
		b.probing = false
	case BreakerOpen:
	}
}

// Failure records a failed request: the Threshold'th consecutive
// failure opens the circuit, and a failed half-open probe re-opens it
// (restarting the cooldown).
func (b *Breaker) Failure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold() {
			b.state = BreakerOpen
			b.openedAt = b.clock()
			b.opens++
			b.failures = 0
		}
	case BreakerHalfOpen:
		b.state = BreakerOpen
		b.openedAt = b.clock()
		b.opens++
		b.probing = false
	case BreakerOpen:
		// Stragglers while open change nothing; the cooldown stands.
	}
}

// State returns the breaker's current position, advancing an elapsed
// open cooldown to the half-open view (so a scrape between the cooldown
// elapsing and the probe firing reports the truth).
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen && b.clock().Sub(b.openedAt) >= b.cooldown() {
		return BreakerHalfOpen
	}
	return b.state
}

// Counts returns the lifetime transition counters: opens (to open),
// halfOpens (to half-open), closes (half-open back to closed).
func (b *Breaker) Counts() (opens, halfOpens, closes int64) {
	if b == nil {
		return 0, 0, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens, b.halfOpens, b.closes
}
