package resilience

import (
	"context"
	"sync"
	"testing"
	"time"
)

func TestBackoffNilIsNoOp(t *testing.T) {
	var b *Backoff
	if d := b.Next(); d != 0 {
		t.Fatalf("nil backoff Next = %v, want 0", d)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	// A nil backoff sleeps zero, so even a dead context is not consulted.
	if err := b.Sleep(ctx); err != nil {
		t.Fatalf("nil backoff Sleep = %v, want nil", err)
	}
	b.Reset() // must not panic
}

func TestBackoffFirstDelayIsBase(t *testing.T) {
	b := &Backoff{Base: 10 * time.Millisecond, Cap: time.Second, Seed: 1}
	if d := b.Next(); d != 10*time.Millisecond {
		t.Fatalf("first delay = %v, want Base", d)
	}
	b.Reset()
	if d := b.Next(); d != 10*time.Millisecond {
		t.Fatalf("first delay after Reset = %v, want Base", d)
	}
}

func TestBackoffDecorrelatedJitterBounds(t *testing.T) {
	b := &Backoff{Base: 10 * time.Millisecond, Cap: 200 * time.Millisecond, Seed: 42}
	prev := b.Next()
	sawCap := false
	for i := 0; i < 200; i++ {
		d := b.Next()
		if d < 10*time.Millisecond {
			t.Fatalf("delay %v below base", d)
		}
		if d > 200*time.Millisecond {
			t.Fatalf("delay %v above cap", d)
		}
		if d > 3*prev {
			t.Fatalf("delay %v more than 3x previous %v", d, prev)
		}
		if d == 200*time.Millisecond {
			sawCap = true
		}
		prev = d
	}
	if !sawCap {
		t.Fatal("200 draws never reached the cap; growth is broken")
	}
}

func TestBackoffDeterministicUnderSeed(t *testing.T) {
	draw := func() []time.Duration {
		b := &Backoff{Base: time.Millisecond, Cap: time.Second, Seed: 7}
		out := make([]time.Duration, 20)
		for i := range out {
			out[i] = b.Next()
		}
		return out
	}
	a, c := draw(), draw()
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("draw %d: %v != %v under the same seed", i, a[i], c[i])
		}
	}
}

func TestBackoffCapClampsBase(t *testing.T) {
	b := &Backoff{Base: time.Second, Cap: 10 * time.Millisecond, Seed: 1}
	for i := 0; i < 10; i++ {
		if d := b.Next(); d > 10*time.Millisecond {
			t.Fatalf("delay %v above cap with Base > Cap", d)
		}
	}
}

func TestBackoffSleepHonorsContext(t *testing.T) {
	b := &Backoff{Base: 10 * time.Second, Cap: time.Minute}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- b.Sleep(ctx) }()
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Fatalf("Sleep under cancelled ctx = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Sleep ignored the cancelled context")
	}
}

func TestSleepCtxZeroIgnoresDeadContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := SleepCtx(ctx, 0); err != nil {
		t.Fatalf("SleepCtx(dead, 0) = %v, want nil", err)
	}
	if err := SleepCtx(ctx, time.Second); err != context.Canceled {
		t.Fatalf("SleepCtx(dead, 1s) = %v, want context.Canceled", err)
	}
}

// TestBackoffRaceHammer shares one Backoff across goroutines under the
// race detector: every draw must stay within [0, cap] and the struct
// must not corrupt.
func TestBackoffRaceHammer(t *testing.T) {
	b := &Backoff{Base: time.Microsecond, Cap: time.Millisecond}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if d := b.Next(); d < 0 || d > time.Millisecond {
					t.Errorf("concurrent draw out of range: %v", d)
					return
				}
				if i%100 == 0 {
					b.Reset()
				}
			}
		}()
	}
	wg.Wait()
}
