package resilience

import (
	"context"
	"sync"
	"sync/atomic"
)

// flight is one in-progress execution that concurrent identical callers
// share. val and err are written exactly once, before done is closed;
// the close is the happens-before edge that publishes them to waiters.
type flight[V any] struct {
	cancel context.CancelFunc
	done   chan struct{}
	refs   int // callers currently interested in the result
	val    V
	err    error
}

// Group coalesces identical in-flight work: concurrent Do calls with
// the same key share one execution of fn, so a stampede of identical
// requests costs one computation. The executions this module coalesces
// (matchings at a fixed seed, similarity-graph generation) are
// deterministic, which is what makes sharing byte-safe.
//
// fn runs on its own goroutine under a flight-scoped context that is
// cancelled only when every interested caller has gone — one waiter
// hanging up does not abort the computation for the rest, but when the
// last one leaves, the work is told to stop. A caller whose own ctx
// expires while waiting gets ctx.Err() back; the flight keeps running
// for whoever remains.
//
// The zero value is ready to use.
type Group[K comparable, V any] struct {
	mu      sync.Mutex
	flights map[K]*flight[V]
	hits    atomic.Int64
	leads   atomic.Int64
}

// Do returns the result of fn for key, sharing an in-flight execution
// when one exists. shared reports whether this call attached to another
// caller's execution (a coalesce hit) rather than leading its own.
func (g *Group[K, V]) Do(ctx context.Context, key K, fn func(context.Context) (V, error)) (v V, shared bool, err error) {
	g.mu.Lock()
	if g.flights == nil {
		g.flights = make(map[K]*flight[V])
	}
	f, shared := g.flights[key]
	if !shared {
		fctx, cancel := context.WithCancel(context.Background())
		f = &flight[V]{cancel: cancel, done: make(chan struct{})}
		g.flights[key] = f
		g.leads.Add(1)
		go g.lead(key, f, fctx, fn)
	} else {
		g.hits.Add(1)
	}
	f.refs++
	g.mu.Unlock()

	select {
	case <-f.done:
		g.release(key, f)
		return f.val, shared, f.err
	case <-ctx.Done():
		g.release(key, f)
		var zero V
		return zero, shared, ctx.Err()
	}
}

// lead runs fn and publishes its result. The flight is delisted before
// done is closed, so a caller arriving after completion starts a fresh
// execution instead of reading a stale one.
func (g *Group[K, V]) lead(key K, f *flight[V], fctx context.Context, fn func(context.Context) (V, error)) {
	v, err := fn(fctx)
	g.mu.Lock()
	f.val, f.err = v, err
	if g.flights[key] == f {
		delete(g.flights, key)
	}
	g.mu.Unlock()
	close(f.done)
	f.cancel()
}

// release drops one caller's interest; the last one out cancels a
// still-running flight (nobody wants the answer anymore) and delists it
// so later callers lead anew.
func (g *Group[K, V]) release(key K, f *flight[V]) {
	g.mu.Lock()
	f.refs--
	if f.refs == 0 {
		select {
		case <-f.done:
			// Already finished; lead delisted it.
		default:
			f.cancel()
			if g.flights[key] == f {
				delete(g.flights, key)
			}
		}
	}
	g.mu.Unlock()
}

// Hits is the lifetime count of Do calls that attached to another
// caller's in-flight execution instead of computing themselves.
func (g *Group[K, V]) Hits() int64 { return g.hits.Load() }

// Leads is the lifetime count of executions actually started.
func (g *Group[K, V]) Leads() int64 { return g.leads.Load() }

// InFlight is the number of executions currently running.
func (g *Group[K, V]) InFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.flights)
}
