package dataset

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func sampleProfile() Profile {
	return Profile{
		ID: "p1",
		Attrs: map[string]string{
			"title":   "efficient entity resolution",
			"authors": "jane doe",
			"year":    "2021",
			"venue":   "", // missing
		},
	}
}

func TestProfileAccessors(t *testing.T) {
	p := sampleProfile()
	if p.Get("title") != "efficient entity resolution" {
		t.Fatalf("Get(title) = %q", p.Get("title"))
	}
	if p.Get("nope") != "" {
		t.Fatal("missing attribute should be empty")
	}
	names := p.AttrNames()
	want := []string{"authors", "title", "year"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("AttrNames = %v, want %v", names, want)
	}
	if p.NumPairs() != 3 {
		t.Fatalf("NumPairs = %d, want 3 (empty venue excluded)", p.NumPairs())
	}
	text := p.Text()
	if !strings.Contains(text, "jane doe") || !strings.Contains(text, "2021") {
		t.Fatalf("Text = %q", text)
	}
	// Values follow attribute-name order.
	vals := p.Values()
	if vals[0] != "jane doe" || vals[2] != "2021" {
		t.Fatalf("Values = %v", vals)
	}
}

func sampleCollection() *Collection {
	return &Collection{
		Name: "test",
		Profiles: []Profile{
			sampleProfile(),
			{ID: "p2", Attrs: map[string]string{"title": "another paper"}},
		},
	}
}

func TestCollectionStats(t *testing.T) {
	c := sampleCollection()
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	if c.NumValuePairs() != 4 {
		t.Fatalf("NumValuePairs = %d, want 4", c.NumValuePairs())
	}
	if got := c.AvgPairs(); got != 2 {
		t.Fatalf("AvgPairs = %v, want 2", got)
	}
	attrs := c.AttrSet()
	if !reflect.DeepEqual(attrs, []string{"authors", "title", "year"}) {
		t.Fatalf("AttrSet = %v", attrs)
	}
	empty := &Collection{}
	if empty.AvgPairs() != 0 {
		t.Fatal("empty collection AvgPairs != 0")
	}
}

func TestCollectionTexts(t *testing.T) {
	c := sampleCollection()
	texts := c.Texts()
	if len(texts) != 2 || texts[1] != "another paper" {
		t.Fatalf("Texts = %v", texts)
	}
	at := c.AttrTexts("title", "year")
	if at[0] != "efficient entity resolution 2021" {
		t.Fatalf("AttrTexts = %q", at[0])
	}
	if at[1] != "another paper" {
		t.Fatalf("AttrTexts[1] = %q", at[1])
	}
}

func TestGroundTruth(t *testing.T) {
	gt := NewGroundTruth([][2]int32{{0, 1}, {2, 0}})
	if gt.Len() != 2 {
		t.Fatalf("Len = %d", gt.Len())
	}
	if !gt.IsMatch(0, 1) || !gt.IsMatch(2, 0) {
		t.Fatal("IsMatch missed a pair")
	}
	if gt.IsMatch(1, 0) {
		t.Fatal("IsMatch invented a pair")
	}
	if err := gt.Validate(3, 2); err != nil {
		t.Fatal(err)
	}
}

func TestGroundTruthValidateRejects(t *testing.T) {
	cases := []struct {
		name   string
		pairs  [][2]int32
		n1, n2 int
	}{
		{"out of range i", [][2]int32{{5, 0}}, 3, 3},
		{"out of range j", [][2]int32{{0, 5}}, 3, 3},
		{"negative", [][2]int32{{-1, 0}}, 3, 3},
		{"duplicate V1", [][2]int32{{0, 0}, {0, 1}}, 3, 3},
		{"duplicate V2", [][2]int32{{0, 0}, {1, 0}}, 3, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := NewGroundTruth(tc.pairs).Validate(tc.n1, tc.n2); err == nil {
				t.Fatal("invalid ground truth accepted")
			}
		})
	}
}

func TestTaskJSONErrors(t *testing.T) {
	if _, err := ReadTaskJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadTaskJSON(strings.NewReader(`{"name":"x"}`)); err == nil {
		t.Fatal("incomplete task accepted")
	}
	// Ground truth out of range must be rejected on read.
	bad := `{"name":"x","v1":{"name":"a","profiles":[{"id":"1","attrs":{"a":"b"}}]},` +
		`"v2":{"name":"b","profiles":[{"id":"2","attrs":{"a":"b"}}]},` +
		`"gt":{"pairs":[[5,5]]}}`
	if _, err := ReadTaskJSON(strings.NewReader(bad)); err == nil {
		t.Fatal("out-of-range ground truth accepted")
	}
}

func TestTaskJSONRoundTripPreservesAttrs(t *testing.T) {
	task := &Task{
		Name: "t",
		V1:   sampleCollection(),
		V2:   sampleCollection(),
		GT:   NewGroundTruth([][2]int32{{0, 0}}),
	}
	var buf bytes.Buffer
	if err := task.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTaskJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.V1.Profiles[0].Get("authors") != "jane doe" {
		t.Fatal("attribute lost in round trip")
	}
	if back.Comparisons() != 4 {
		t.Fatalf("Comparisons = %d", back.Comparisons())
	}
	if !back.GT.IsMatch(0, 0) {
		t.Fatal("ground truth set not rebuilt on read")
	}
}
