package dataset

import (
	"sync"
	"testing"
)

// TestIsMatchConcurrentLazyInit exercises the lazy lookup-set build from
// many goroutines on a GroundTruth constructed WITHOUT NewGroundTruth
// (as json.Unmarshal or a struct literal would), the scenario the
// parallel sweep exposes. Under -race this pins that the sync.Once init
// is sound.
func TestIsMatchConcurrentLazyInit(t *testing.T) {
	gt := &GroundTruth{Pairs: [][2]int32{{0, 0}, {1, 1}, {2, 2}}}
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int32(0); i < 100; i++ {
				if got := gt.IsMatch(i%3, i%3); !got {
					errs <- "true match reported false"
					return
				}
				if got := gt.IsMatch(i%3, (i+1)%3); got {
					errs <- "false match reported true"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}
