// Package dataset defines the entity model of the Clean-Clean ER task: an
// entity profile is a set of attribute-value pairs, a collection is a
// duplicate-free list of profiles, and the ground truth lists the matching
// profile pairs across two collections, exactly as in the paper's
// preliminaries (Section 2).
package dataset

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Profile is an entity profile: a description of a real-world object as
// attribute-value pairs. Empty values are treated as missing attributes.
type Profile struct {
	// ID is an opaque identifier, unique within its collection.
	ID string `json:"id"`
	// Attrs maps attribute names to textual values.
	Attrs map[string]string `json:"attrs"`
}

// Get returns the value of the attribute, or "" if missing.
func (p Profile) Get(attr string) string { return p.Attrs[attr] }

// AttrNames returns the profile's non-empty attribute names in sorted
// order, for deterministic iteration.
func (p Profile) AttrNames() []string {
	names := make([]string, 0, len(p.Attrs))
	for k, v := range p.Attrs {
		if v != "" {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	return names
}

// Values returns the profile's non-empty values ordered by attribute
// name.
func (p Profile) Values() []string {
	names := p.AttrNames()
	vals := make([]string, len(names))
	for i, n := range names {
		vals[i] = p.Attrs[n]
	}
	return vals
}

// Text returns the schema-agnostic representation of the profile: all
// attribute values joined by spaces, in attribute-name order.
func (p Profile) Text() string { return strings.Join(p.Values(), " ") }

// NumPairs returns the number of name-value pairs (non-empty values),
// the |NVP| statistic of the paper's Table 2.
func (p Profile) NumPairs() int {
	n := 0
	for _, v := range p.Attrs {
		if v != "" {
			n++
		}
	}
	return n
}

// Collection is a clean (duplicate-free) list of entity profiles.
type Collection struct {
	Name     string    `json:"name"`
	Profiles []Profile `json:"profiles"`
}

// Len returns the number of profiles.
func (c *Collection) Len() int { return len(c.Profiles) }

// NumValuePairs returns the total number of name-value pairs, |NVP| of
// Table 2.
func (c *Collection) NumValuePairs() int {
	n := 0
	for _, p := range c.Profiles {
		n += p.NumPairs()
	}
	return n
}

// AttrSet returns all attribute names that occur with a non-empty value.
func (c *Collection) AttrSet() []string {
	seen := map[string]bool{}
	for _, p := range c.Profiles {
		for k, v := range p.Attrs {
			if v != "" {
				seen[k] = true
			}
		}
	}
	names := make([]string, 0, len(seen))
	for k := range seen {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// AvgPairs returns the average number of name-value pairs per profile,
// |p̄| of Table 2.
func (c *Collection) AvgPairs() float64 {
	if len(c.Profiles) == 0 {
		return 0
	}
	return float64(c.NumValuePairs()) / float64(len(c.Profiles))
}

// Texts returns the schema-agnostic text of every profile.
func (c *Collection) Texts() []string {
	out := make([]string, len(c.Profiles))
	for i, p := range c.Profiles {
		out[i] = p.Text()
	}
	return out
}

// AttrTexts returns, for every profile, the concatenation of the given
// attributes' values (the schema-based representation).
func (c *Collection) AttrTexts(attrs ...string) []string {
	out := make([]string, len(c.Profiles))
	for i, p := range c.Profiles {
		parts := make([]string, 0, len(attrs))
		for _, a := range attrs {
			if v := p.Get(a); v != "" {
				parts = append(parts, v)
			}
		}
		out[i] = strings.Join(parts, " ")
	}
	return out
}

// GroundTruth is the set of known matches between two collections, stored
// as index pairs (i into collection 1, j into collection 2). A
// GroundTruth is safe for concurrent readers (the parallel sweep
// evaluates against one shared instance) even when constructed without
// NewGroundTruth, e.g. via json.Unmarshal or a struct literal: the
// lookup set is built lazily under a sync.Once.
type GroundTruth struct {
	Pairs [][2]int32 `json:"pairs"`

	once sync.Once
	set  map[int64]bool
}

// NewGroundTruth builds a ground truth from index pairs.
func NewGroundTruth(pairs [][2]int32) *GroundTruth {
	gt := &GroundTruth{Pairs: pairs}
	gt.buildSet()
	return gt
}

func (gt *GroundTruth) buildSet() {
	gt.once.Do(func() {
		gt.set = make(map[int64]bool, len(gt.Pairs))
		for _, p := range gt.Pairs {
			gt.set[int64(p[0])<<32|int64(uint32(p[1]))] = true
		}
	})
}

// Len returns the number of true matches, |D(V1∩V2)| of Table 2.
func (gt *GroundTruth) Len() int { return len(gt.Pairs) }

// IsMatch reports whether (i, j) is a true match.
func (gt *GroundTruth) IsMatch(i, j int32) bool {
	gt.buildSet() // no-op after the first call; gives concurrent readers a safe lazy init
	return gt.set[int64(i)<<32|int64(uint32(j))]
}

// Validate checks the clean-clean property of the ground truth: each
// entity participates in at most one match, and indexes are within range.
func (gt *GroundTruth) Validate(n1, n2 int) error {
	seen1 := make(map[int32]bool, len(gt.Pairs))
	seen2 := make(map[int32]bool, len(gt.Pairs))
	for _, p := range gt.Pairs {
		if p[0] < 0 || int(p[0]) >= n1 || p[1] < 0 || int(p[1]) >= n2 {
			return fmt.Errorf("dataset: ground truth pair %v out of range (%d,%d)", p, n1, n2)
		}
		if seen1[p[0]] {
			return fmt.Errorf("dataset: entity %d of V1 matched twice in ground truth", p[0])
		}
		if seen2[p[1]] {
			return fmt.Errorf("dataset: entity %d of V2 matched twice in ground truth", p[1])
		}
		seen1[p[0]], seen2[p[1]] = true, true
	}
	return nil
}

// Task bundles a full Clean-Clean ER input: two collections and the
// ground truth between them.
type Task struct {
	Name string       `json:"name"`
	V1   *Collection  `json:"v1"`
	V2   *Collection  `json:"v2"`
	GT   *GroundTruth `json:"gt"`
}

// Comparisons returns |V1|·|V2|, the brute-force comparison count of
// Table 2.
func (t *Task) Comparisons() int64 {
	return int64(t.V1.Len()) * int64(t.V2.Len())
}

// WriteJSON serializes the task.
func (t *Task) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(t)
}

// ReadTaskJSON deserializes a task written by WriteJSON.
func ReadTaskJSON(r io.Reader) (*Task, error) {
	var t Task
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("dataset: decoding task: %w", err)
	}
	if t.V1 == nil || t.V2 == nil || t.GT == nil {
		return nil, fmt.Errorf("dataset: task is missing collections or ground truth")
	}
	t.GT.buildSet()
	if err := t.GT.Validate(t.V1.Len(), t.V2.Len()); err != nil {
		return nil, err
	}
	return &t, nil
}
