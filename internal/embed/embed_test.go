package embed

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	for _, m := range Models() {
		a := m.Embed("entity resolution with graphs")
		b := m.Embed("entity resolution with graphs")
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: embedding not deterministic at dim %d", m.Name(), i)
			}
		}
	}
}

func TestDimensions(t *testing.T) {
	if d := (FastTextLike{}).Dim(); d != 64 {
		t.Fatalf("fasttext default dim = %d, want 64", d)
	}
	if d := (ContextualLike{}).Dim(); d != 96 {
		t.Fatalf("albert default dim = %d, want 96", d)
	}
	if d := (FastTextLike{Dimension: 32}).Dim(); d != 32 {
		t.Fatalf("custom dim = %d, want 32", d)
	}
	for _, m := range Models() {
		if got := len(m.Embed("hello world")); got != m.Dim() {
			t.Fatalf("%s: vector len %d != Dim %d", m.Name(), got, m.Dim())
		}
	}
}

func TestEmptyText(t *testing.T) {
	for _, m := range Models() {
		v := m.Embed("")
		for _, x := range v {
			if x != 0 {
				t.Fatalf("%s: empty text embedding is non-zero", m.Name())
			}
		}
		vecs, ws := m.TokenVectors("")
		if vecs != nil || ws != nil {
			t.Fatalf("%s: empty text produced token vectors", m.Name())
		}
		for _, meas := range Measures() {
			if s := Sim(m, meas, "", "something"); s != 0 && meas != MeasureEuclidean {
				t.Fatalf("%s/%s with empty text = %v, want 0", m.Name(), meas, s)
			}
		}
	}
}

func TestIdenticalTextsScoreHighest(t *testing.T) {
	texts := []string{
		"apple iphone 12 silver 128gb",
		"samsung galaxy s21 black",
		"introduction to database systems",
	}
	for _, m := range Models() {
		for _, meas := range Measures() {
			for _, a := range texts {
				self := Sim(m, meas, a, a)
				if math.Abs(self-1) > 1e-9 {
					t.Fatalf("%s/%s self-sim(%q) = %v, want 1", m.Name(), meas, a, self)
				}
				for _, b := range texts {
					if a == b {
						continue
					}
					if s := Sim(m, meas, a, b); s >= self {
						t.Fatalf("%s/%s: cross sim %v >= self sim %v", m.Name(), meas, s, self)
					}
				}
			}
		}
	}
}

// Morphologically close tokens must embed closer than unrelated tokens
// under the char-n-gram model (fastText's core property).
func TestFastTextMorphologicalCloseness(t *testing.T) {
	m := FastTextLike{}
	base := m.Embed("resolution")
	typo := m.Embed("resoluton")
	other := m.Embed("zebra")
	if CosineSim(base, typo) <= CosineSim(base, other) {
		t.Fatalf("typo sim %v <= unrelated sim %v",
			CosineSim(base, typo), CosineSim(base, other))
	}
}

// The ALBERT stand-in must assign different vectors to the same token in
// different contexts.
func TestContextualHomonyms(t *testing.T) {
	m := ContextualLike{}
	river := m.Embed("river bank water")
	money := m.Embed("money bank account")
	if CosineSim(river, money) >= 1-1e-9 {
		t.Fatal("contextual model ignored context")
	}
}

// The shared bias must inflate the average pairwise similarity of the
// contextual model above the fastText-like model — the paper's stated
// reason semantic weights hurt all matching algorithms.
func TestContextualBiasInflatesSimilarity(t *testing.T) {
	texts := []string{
		"apple iphone silver", "garden hose reel", "graph matching paper",
		"chocolate cake recipe", "linux kernel module",
	}
	avg := func(m Model) float64 {
		s, n := 0.0, 0
		for i := range texts {
			for j := i + 1; j < len(texts); j++ {
				s += CosineSim(m.Embed(texts[i]), m.Embed(texts[j]))
				n++
			}
		}
		return s / float64(n)
	}
	ft, al := avg(FastTextLike{}), avg(ContextualLike{})
	if al <= ft {
		t.Fatalf("contextual avg sim %v <= fasttext avg sim %v", al, ft)
	}
	if al < 0.6 {
		t.Fatalf("contextual avg sim %v, want inflated (>= 0.6)", al)
	}
}

func TestWordMoversOrdering(t *testing.T) {
	m := FastTextLike{}
	near := WordMoversSim(m, "green apple pie", "green apple tart")
	far := WordMoversSim(m, "green apple pie", "quantum flux generator")
	if near <= far {
		t.Fatalf("WMS near %v <= far %v", near, far)
	}
	if self := WordMoversSim(m, "a b c", "a b c"); math.Abs(self-1) > 1e-9 {
		t.Fatalf("WMS self = %v, want 1", self)
	}
}

// All measures stay in [0,1] on arbitrary token soup.
func TestPropertySemanticRange(t *testing.T) {
	words := []string{"red", "apple", "pie", "york", "bank", "x9", "flux"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gen := func() string {
			n := rng.Intn(5) + 1
			parts := make([]string, n)
			for i := range parts {
				parts[i] = words[rng.Intn(len(words))]
			}
			return strings.Join(parts, " ")
		}
		a, b := gen(), gen()
		for _, m := range Models() {
			for _, meas := range Measures() {
				s := Sim(m, meas, a, b)
				if s < 0 || s > 1+1e-9 || math.IsNaN(s) {
					return false
				}
				// Symmetry.
				if math.Abs(s-Sim(m, meas, b, a)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Cached models must embed bit-identically to their uncached
// counterparts: the cache is a speed knob, never a semantic one.
func TestCachedModelsBitIdentical(t *testing.T) {
	texts := []string{
		"", "galaxy note 10 plus", "galaxy note 10", "entity resolution at scale",
		"galaxy galaxy galaxy", "μια ελληνική φράση",
	}
	plain := Models()
	cached := CachedModels()
	for k := range plain {
		for _, text := range texts {
			a := plain[k].Embed(text)
			b := cached[k].Embed(text)
			b2 := cached[k].Embed(text) // second call served from the cache
			if len(a) != len(b) || len(a) != len(b2) {
				t.Fatalf("%s: dimension mismatch", plain[k].Name())
			}
			for i := range a {
				if math.Float64bits(a[i]) != math.Float64bits(b[i]) ||
					math.Float64bits(a[i]) != math.Float64bits(b2[i]) {
					t.Fatalf("%s: Embed(%q)[%d] differs with cache", plain[k].Name(), text, i)
				}
			}
			va, wa := plain[k].TokenVectors(text)
			vb, wb := cached[k].TokenVectors(text)
			if len(va) != len(vb) || len(wa) != len(wb) {
				t.Fatalf("%s: TokenVectors(%q) shape differs with cache", plain[k].Name(), text)
			}
			for i := range va {
				for d := range va[i] {
					if math.Float64bits(va[i][d]) != math.Float64bits(vb[i][d]) {
						t.Fatalf("%s: token vector %d of %q differs with cache", plain[k].Name(), i, text)
					}
				}
			}
		}
	}
}

// EmbedTokens must reproduce Embed exactly from the token vectors.
func TestEmbedTokensMatchesEmbed(t *testing.T) {
	for _, m := range Models() {
		for _, text := range []string{"", "one", "alpha beta gamma alpha"} {
			vecs, ws := m.TokenVectors(text)
			got := EmbedTokens(m.Dim(), vecs, ws)
			want := m.Embed(text)
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("%s: EmbedTokens(%q)[%d] = %v, Embed %v", m.Name(), text, i, got[i], want[i])
				}
			}
		}
	}
}

// The fused pair kernel must be bit-identical to the standalone
// similarities.
func TestCosineEuclideanFused(t *testing.T) {
	for _, m := range Models() {
		texts := []string{"galaxy note", "galaxy tab pro", "quantum flux", ""}
		for _, ta := range texts {
			for _, tb := range texts {
				a, b := m.Embed(ta), m.Embed(tb)
				cos, euc := CosineEuclidean(a, b, NormSq(a), NormSq(b))
				if math.Float64bits(cos) != math.Float64bits(CosineSim(a, b)) {
					t.Fatalf("%s: fused cosine differs for (%q,%q)", m.Name(), ta, tb)
				}
				if math.Float64bits(euc) != math.Float64bits(EuclideanSim(a, b)) {
					t.Fatalf("%s: fused euclidean differs for (%q,%q)", m.Name(), ta, tb)
				}
			}
		}
	}
}

// TestBuildRepsMatchesPerEntityCalls pins BuildReps (with and without
// shared tokenization, with and without a RepCache) against per-entity
// Embed/TokenVectors.
func TestBuildRepsMatchesPerEntityCalls(t *testing.T) {
	texts := []string{"golden dragon bistro", "", "a", "harbor grill house", "!!!", "café 日本"}
	const maxTokens = 2
	for _, m := range CachedModels() {
		want := struct {
			emb [][]float64
			tv  [][][]float64
			tw  [][]float64
		}{}
		for _, txt := range texts {
			want.emb = append(want.emb, m.Embed(txt))
			v, w := m.TokenVectors(txt)
			if len(v) > maxTokens {
				v, w = v[:maxTokens], w[:maxTokens]
			}
			want.tv = append(want.tv, v)
			want.tw = append(want.tw, w)
		}
		cache := NewRepCache(4)
		for pass := 0; pass < 2; pass++ {
			for _, reps := range []*EntityReps{
				BuildReps(m, texts, nil, maxTokens),
				BuildReps(m, texts, TokenizeAll(texts), maxTokens),
				cache.Reps(m, texts, TokenizeAll(texts), maxTokens),
			} {
				for i := range texts {
					if len(reps.Emb[i]) != len(want.emb[i]) {
						t.Fatalf("%s: emb dim mismatch at %d", m.Name(), i)
					}
					for k := range want.emb[i] {
						if reps.Emb[i][k] != want.emb[i][k] {
							t.Fatalf("%s: emb[%d][%d] %v != %v", m.Name(), i, k, reps.Emb[i][k], want.emb[i][k])
						}
					}
					if reps.NormSq[i] != NormSq(want.emb[i]) {
						t.Fatalf("%s: normSq[%d]", m.Name(), i)
					}
					if len(reps.TV[i]) != len(want.tv[i]) || len(reps.TW[i]) != len(want.tw[i]) {
						t.Fatalf("%s: token vec count mismatch at %d", m.Name(), i)
					}
					for ti := range want.tv[i] {
						if reps.TW[i][ti] != want.tw[i][ti] {
							t.Fatalf("%s: tw[%d][%d]", m.Name(), i, ti)
						}
						for k := range want.tv[i][ti] {
							if reps.TV[i][ti][k] != want.tv[i][ti][k] {
								t.Fatalf("%s: tv[%d][%d][%d]", m.Name(), i, ti, k)
							}
						}
					}
				}
			}
		}
		hits, misses, _ := cache.Stats()
		if misses != 1 || hits != 1 {
			t.Fatalf("%s: cache hits/misses = %d/%d, want 1/1", m.Name(), hits, misses)
		}
	}
}

// TestRepCacheEviction: the cache stays within its entry bound and
// rebuilt entries are byte-identical.
func TestRepCacheEviction(t *testing.T) {
	cache := NewRepCache(2)
	m := cache.Models()[0]
	collections := [][]string{
		{"alpha beta"}, {"gamma delta"}, {"epsilon zeta"}, {"alpha beta"},
	}
	var first *EntityReps
	for i, texts := range collections {
		reps := cache.Reps(m, texts, nil, 6)
		if i == 0 {
			first = reps
		}
		if cache.Len() > 2 {
			t.Fatalf("cache grew to %d entries", cache.Len())
		}
	}
	// "alpha beta" was evicted and rebuilt: values identical.
	again := cache.Reps(m, collections[0], nil, 6)
	for k := range first.Emb[0] {
		if first.Emb[0][k] != again.Emb[0][k] {
			t.Fatal("rebuilt reps differ")
		}
	}
	_, _, evictions := cache.Stats()
	if evictions == 0 {
		t.Fatal("no evictions recorded")
	}
}
