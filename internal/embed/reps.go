package embed

import (
	"github.com/ccer-go/ccer/internal/repcache"
	"github.com/ccer-go/ccer/internal/strsim"
)

// EntityReps holds the per-entity semantic representations of one
// collection under one model: the text embedding with its squared norm
// (for the fused cosine/Euclidean kernel) and the maxTokens-truncated
// token vectors with their weights (for the relaxed Word Mover's
// similarity). One TokenVectors pass per entity feeds both. All slices
// are shared and must be treated as immutable.
type EntityReps struct {
	Emb    [][]float64
	NormSq []float64
	TV     [][][]float64
	TW     [][]float64
}

// tokenVectorizer is the pre-tokenized fast path both concrete models
// implement: callers that already hold strsim.Tokenize(text) skip the
// model's internal tokenization pass.
type tokenVectorizer interface {
	TokenVectorsTokens(tokens []string) ([][]float64, []float64)
}

// BuildReps builds the semantic representations of a collection. tokens,
// when non-nil, must be strsim.Tokenize of each text (entries may be
// nil for token-less texts); it lets the caller share one tokenization
// across models. The result is identical to per-entity Model.Embed +
// Model.TokenVectors.
func BuildReps(m Model, texts []string, tokens [][]string, maxTokens int) *EntityReps {
	r := &EntityReps{
		Emb:    make([][]float64, len(texts)),
		NormSq: make([]float64, len(texts)),
		TV:     make([][][]float64, len(texts)),
		TW:     make([][]float64, len(texts)),
	}
	tv, fast := m.(tokenVectorizer)
	for i, t := range texts {
		var v [][]float64
		var w []float64
		if tokens != nil && fast {
			v, w = tv.TokenVectorsTokens(tokens[i])
		} else {
			v, w = m.TokenVectors(t)
		}
		r.Emb[i] = EmbedTokens(m.Dim(), v, w)
		r.NormSq[i] = NormSq(r.Emb[i])
		if len(v) > maxTokens {
			v, w = v[:maxTokens], w[:maxTokens]
		}
		r.TV[i] = v
		r.TW[i] = w
	}
	return r
}

// TokenizeAll tokenizes every text once, the shared input of BuildReps
// across models.
func TokenizeAll(texts []string) [][]string {
	out := make([][]string, len(texts))
	for i, t := range texts {
		out[i] = strsim.Tokenize(t)
	}
	return out
}

// RepCache is the cross-build semantic representation cache: it owns a
// persistent pair of token-vector-cached models (so repeated tokens hash
// once per process, not once per build) and memoizes whole per-
// collection EntityReps by content hash of the texts. Safe for
// concurrent use; a resident service shares one across requests.
type RepCache struct {
	models []Model
	reps   *repcache.Cache[*EntityReps]
}

// NewRepCache returns a cache bounded to maxEntries resident EntityReps
// (maxEntries < 1 means 1). The persistent models use BOUNDED token-
// vector caches (unlike the build-scoped CachedModels): a resident
// service sees an unbounded stream of distinct tokens and context
// windows, and these caches must not grow with it. The bound scales
// with maxEntries; eviction only ever costs recompute, never changes a
// vector.
func NewRepCache(maxEntries int) *RepCache {
	if maxEntries < 1 {
		maxEntries = 1
	}
	vecBound := 1 << 15 * maxEntries
	return &RepCache{
		models: []Model{
			FastTextLike{Cache: NewBoundedVecCache(vecBound), GramCache: NewBoundedVecCache(vecBound)},
			ContextualLike{Cache: NewBoundedVecCache(vecBound), TokenCache: NewBoundedVecCache(vecBound)},
		},
		reps: repcache.New[*EntityReps](maxEntries),
	}
}

// Models returns the cache's persistent models, in Models() order.
func (c *RepCache) Models() []Model {
	if c == nil {
		return CachedModels()
	}
	return c.models
}

// Reps returns the representations of the texts under the model,
// building them on a miss. tokens follows BuildReps. The key hashes the
// model name, maxTokens and the full text contents.
func (c *RepCache) Reps(m Model, texts []string, tokens [][]string, maxTokens int) *EntityReps {
	if c == nil {
		return BuildReps(m, texts, tokens, maxTokens)
	}
	h := repcache.NewHasher(0x5eed ^ uint64(maxTokens)<<8 ^ uint64(m.Dim())<<32)
	h.String(m.Name())
	h.Strings(texts)
	reps, _ := c.reps.GetOrBuild(h.Key(), func() *EntityReps {
		return BuildReps(m, texts, tokens, maxTokens)
	})
	return reps
}

// Stats returns the reps cache's cumulative hits, misses and evictions.
func (c *RepCache) Stats() (hits, misses, evictions int64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.reps.Stats()
}

// Len returns the resident entry count.
func (c *RepCache) Len() int {
	if c == nil {
		return 0
	}
	return c.reps.Len()
}
