// Package embed provides deterministic synthetic stand-ins for the
// pre-trained semantic representation models the paper uses — fastText
// (character-level pre-trained embeddings) and ALBERT (transformer-based
// contextual embeddings) — plus the three semantic similarity measures it
// applies to them: cosine, Euclidean and (relaxed) Word Mover's
// similarity.
//
// The substitution, recorded in DESIGN.md, keeps the code paths and the
// behavioural properties that drive the paper's findings:
//
//   - FastTextLike composes a token vector as the sum of hashed character
//     n-gram vectors (fastText's architecture with a random instead of a
//     learned basis), so morphologically close tokens get close vectors
//     and there are no out-of-vocabulary failures.
//   - ContextualLike hashes (token, context-window) pairs, so the same
//     token gets different vectors in different contexts, and adds a
//     shared bias component that inflates all-pairs similarity — the
//     property the paper identifies as the reason semantic weights
//     degrade every matching algorithm, especially schema-agnostically.
//
// Everything is seeded and pure: the same text always embeds to the same
// vector.
package embed

import (
	"hash/fnv"
	"math"
	"sync"

	"github.com/ccer-go/ccer/internal/strsim"
)

// Model converts a text into a dense vector.
type Model interface {
	// Name identifies the model, e.g. "fasttext" or "albert".
	Name() string
	// Embed returns the dense vector of the text. Empty text yields a
	// zero vector.
	Embed(text string) []float64
	// Dim returns the vector dimensionality.
	Dim() int
	// TokenVectors returns per-token vectors with TF weights, used by
	// Word Mover's similarity.
	TokenVectors(text string) ([][]float64, []float64)
}

// VecCache memoizes derived vectors by string key (a token, or a
// token-with-context window). Both models are pure, so a cached vector
// is bit-identical to recomputing it; attaching a cache to a model is
// purely a speed knob. Cached slices are shared with callers and must be
// treated as immutable. Safe for concurrent use.
//
// One cache must not be shared between models with different
// configurations (dimension or bias), since the key does not encode
// them.
type VecCache struct {
	mu  sync.RWMutex
	m   map[string][]float64
	max int // 0 = unbounded (per-build scope); > 0 evicts at the bound
}

// NewVecCache returns an empty, unbounded vector cache — the right
// shape for caches scoped to one corpus build.
func NewVecCache() *VecCache { return &VecCache{m: make(map[string][]float64)} }

// NewBoundedVecCache returns a cache that evicts (arbitrary) entries
// once it holds max vectors, for caches that persist for a process
// lifetime (embed.RepCache): the values are pure functions of their
// keys, so eviction never changes results, only recompute cost.
func NewBoundedVecCache(max int) *VecCache {
	if max < 1 {
		max = 1
	}
	return &VecCache{m: make(map[string][]float64, max), max: max}
}

// get returns the cached vector for key, or nil.
func (c *VecCache) get(key string) []float64 {
	if c == nil {
		return nil
	}
	c.mu.RLock()
	v := c.m[key]
	c.mu.RUnlock()
	return v
}

// put stores v under key and returns v.
func (c *VecCache) put(key string, v []float64) []float64 {
	if c == nil {
		return v
	}
	c.mu.Lock()
	if c.max > 0 && len(c.m) >= c.max {
		for k := range c.m {
			delete(c.m, k)
			if len(c.m) < c.max {
				break
			}
		}
	}
	c.m[key] = v
	c.mu.Unlock()
	return v
}

// hashVec fills out with deterministic pseudo-random values in [-1,1]
// derived from the seed string, using a splitmix64 stream.
func hashVec(seed string, out []float64) {
	h := fnv.New64a()
	h.Write([]byte(seed))
	x := h.Sum64()
	for i := range out {
		// splitmix64 step
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		z ^= z >> 31
		out[i] = float64(z)/float64(math.MaxUint64)*2 - 1
	}
}

func addScaled(dst, src []float64, s float64) {
	for i := range dst {
		dst[i] += src[i] * s
	}
}

func normalize(v []float64) {
	n := 0.0
	for _, x := range v {
		n += x * x
	}
	if n == 0 {
		return
	}
	n = math.Sqrt(n)
	for i := range v {
		v[i] /= n
	}
}

// FastTextLike is the fastText stand-in: token vector = normalized sum of
// hashed character n-gram vectors (n = 3..5 plus the whole token), text
// vector = normalized average of token vectors.
type FastTextLike struct {
	// Dimension of the vectors; if zero, 64 is used (the real model uses
	// 300; lower dimensionality keeps experiments fast without changing
	// relative behaviour).
	Dimension int
	// Cache, when non-nil, memoizes per-token vectors across texts (the
	// same token hashes to the same vector regardless of context).
	Cache *VecCache
	// GramCache, when non-nil, memoizes the hashed character n-gram
	// vectors that token vectors sum: distinct tokens share most of
	// their 3..5-gram windows, so interning the per-gram vectors removes
	// the bulk of the hashing on a token-vector MISS. Values are
	// bit-identical with or without it (each gram still hashes through
	// hashVec exactly once). Must not be shared with the token Cache
	// (an interior gram can equal a whole token).
	GramCache *VecCache
}

// Name implements Model.
func (FastTextLike) Name() string { return "fasttext" }

// Dim implements Model.
func (m FastTextLike) Dim() int {
	if m.Dimension <= 0 {
		return 64
	}
	return m.Dimension
}

func (m FastTextLike) gramVec(gram string, buf []float64) []float64 {
	if m.GramCache == nil {
		hashVec(gram, buf)
		return buf
	}
	if v := m.GramCache.get(gram); v != nil {
		return v
	}
	v := make([]float64, len(buf))
	hashVec(gram, v)
	return m.GramCache.put(gram, v)
}

func (m FastTextLike) tokenVec(token string, buf []float64) []float64 {
	if v := m.Cache.get(token); v != nil {
		return v
	}
	d := m.Dim()
	v := make([]float64, d)
	r := []rune("<" + token + ">")
	count := 0
	for n := 3; n <= 5; n++ {
		for i := 0; i+n <= len(r); i++ {
			addScaled(v, m.gramVec(string(r[i:i+n]), buf), 1)
			count++
		}
	}
	hashVec("<word>"+token, buf)
	addScaled(v, buf, 1)
	normalize(v)
	return m.Cache.put(token, v)
}

// TokenVectors implements Model.
func (m FastTextLike) TokenVectors(text string) ([][]float64, []float64) {
	return m.TokenVectorsTokens(strsim.Tokenize(text))
}

// TokenVectorsTokens is TokenVectors over a pre-tokenized text
// (strsim.Tokenize order), the shared-tokenization fast path of
// BuildReps.
func (m FastTextLike) TokenVectorsTokens(tokens []string) ([][]float64, []float64) {
	if len(tokens) == 0 {
		return nil, nil
	}
	buf := make([]float64, m.Dim())
	counts := make(map[string]float64, len(tokens))
	for _, t := range tokens {
		counts[t]++
	}
	vecs := make([][]float64, 0, len(counts))
	ws := make([]float64, 0, len(counts))
	seen := make(map[string]bool, len(counts))
	for _, t := range tokens {
		if seen[t] {
			continue
		}
		seen[t] = true
		vecs = append(vecs, m.tokenVec(t, buf))
		ws = append(ws, counts[t]/float64(len(tokens)))
	}
	return vecs, ws
}

// Embed implements Model.
func (m FastTextLike) Embed(text string) []float64 {
	vecs, ws := m.TokenVectors(text)
	return EmbedTokens(m.Dim(), vecs, ws)
}

// EmbedTokens combines per-token vectors into the model's text
// embedding: the normalized weighted sum. It is exactly the reduction
// both models' Embed applies, exposed so callers that already hold the
// token vectors (e.g. for Word Mover's similarity) can derive the text
// embedding without recomputing them.
func EmbedTokens(dim int, vecs [][]float64, ws []float64) []float64 {
	out := make([]float64, dim)
	for i, v := range vecs {
		addScaled(out, v, ws[i])
	}
	normalize(out)
	return out
}

// ContextualLike is the ALBERT stand-in: token vectors are hashed from
// the token together with its neighbors (window 1), so homonyms in
// different contexts receive different vectors; a shared bias vector is
// mixed into every token, which raises the similarity of arbitrary pairs
// the way the paper observes for transformer embeddings.
type ContextualLike struct {
	// Dimension of the vectors; if zero, 96 is used.
	Dimension int
	// Bias is the mixing weight of the shared component in [0,1); if
	// zero, 0.55 is used.
	Bias float64
	// Cache, when non-nil, memoizes per-(token, context-window) vectors
	// across texts.
	Cache *VecCache
	// TokenCache, when non-nil, memoizes the context-free token hash
	// component, which every context of the same token shares. Values
	// are bit-identical with or without it. Must not be shared with
	// Cache (keys are raw tokens in both).
	TokenCache *VecCache
}

// Name implements Model.
func (ContextualLike) Name() string { return "albert" }

// Dim implements Model.
func (m ContextualLike) Dim() int {
	if m.Dimension <= 0 {
		return 96
	}
	return m.Dimension
}

func (m ContextualLike) bias() float64 {
	if m.Bias <= 0 {
		return 0.55
	}
	return m.Bias
}

// sharedBias returns the model's shared bias component, memoized under a
// reserved cache key when a cache is attached.
func (m ContextualLike) sharedBias() []float64 {
	const key = "\x00<albert-shared-bias>"
	if v := m.Cache.get(key); v != nil {
		return v
	}
	bias := make([]float64, m.Dim())
	hashVec("<albert-shared-bias>", bias)
	normalize(bias)
	return m.Cache.put(key, bias)
}

// TokenVectors implements Model.
func (m ContextualLike) TokenVectors(text string) ([][]float64, []float64) {
	return m.TokenVectorsTokens(strsim.Tokenize(text))
}

// TokenVectorsTokens is TokenVectors over a pre-tokenized text.
func (m ContextualLike) TokenVectorsTokens(tokens []string) ([][]float64, []float64) {
	if len(tokens) == 0 {
		return nil, nil
	}
	d := m.Dim()
	bias := m.sharedBias()
	buf := make([]float64, d)
	vecs := make([][]float64, len(tokens))
	ws := make([]float64, len(tokens))
	for i, t := range tokens {
		prev, next := "<s>", "</s>"
		if i > 0 {
			prev = tokens[i-1]
		}
		if i < len(tokens)-1 {
			next = tokens[i+1]
		}
		ctx := prev + "|" + t + "|" + next
		if v := m.Cache.get(ctx); v != nil {
			vecs[i] = v
		} else {
			v := make([]float64, d)
			if m.TokenCache != nil {
				base := m.TokenCache.get(t)
				if base == nil {
					base = make([]float64, d)
					hashVec(t, base)
					base = m.TokenCache.put(t, base)
				}
				addScaled(v, base, 1)
			} else {
				hashVec(t, buf)
				addScaled(v, buf, 1)
			}
			hashVec(ctx, buf)
			addScaled(v, buf, 0.5) // contextual component
			normalize(v)
			addScaled(v, bias, m.bias()/(1-m.bias()))
			normalize(v)
			vecs[i] = m.Cache.put(ctx, v)
		}
		ws[i] = 1 / float64(len(tokens))
	}
	return vecs, ws
}

// Embed implements Model.
func (m ContextualLike) Embed(text string) []float64 {
	vecs, ws := m.TokenVectors(text)
	return EmbedTokens(m.Dim(), vecs, ws)
}

// CosineSim returns the cosine similarity of two embeddings mapped to
// [0,1] via (1+cos)/2, so downstream graph weights satisfy the paper's
// [0,1] assumption even before min-max normalization. Zero vectors yield
// 0.
func CosineSim(a, b []float64) float64 {
	dot, na, nb := 0.0, 0.0, 0.0
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return (1 + dot/math.Sqrt(na*nb)) / 2
}

// EuclideanSim returns 1/(1+d) for the Euclidean distance d, as defined
// in the paper's Appendix.
func EuclideanSim(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return 1 / (1 + math.Sqrt(s))
}

// NormSq returns Σ v[i]², accumulated in index order — exactly the
// self-product sum CosineSim folds per call, exposed so pairwise loops
// can precompute it per entity.
func NormSq(v []float64) float64 {
	s := 0.0
	for i := range v {
		s += v[i] * v[i]
	}
	return s
}

// CosineEuclidean returns CosineSim and EuclideanSim of a and b in one
// pass over the dimensions, given the entities' precomputed squared
// norms. Values are bit-identical to the standalone functions: the
// unroll accumulates both sums in plain index order.
func CosineEuclidean(a, b []float64, na, nb float64) (cos, euc float64) {
	b = b[:len(a)]
	dot, sq := 0.0, 0.0
	i := 0
	for ; i+2 <= len(a); i += 2 {
		dot += a[i] * b[i]
		d0 := a[i] - b[i]
		sq += d0 * d0
		dot += a[i+1] * b[i+1]
		d1 := a[i+1] - b[i+1]
		sq += d1 * d1
	}
	for ; i < len(a); i++ {
		dot += a[i] * b[i]
		d := a[i] - b[i]
		sq += d * d
	}
	if na != 0 && nb != 0 {
		cos = (1 + dot/math.Sqrt(na*nb)) / 2
	}
	return cos, 1 / (1 + math.Sqrt(sq))
}

// WordMoversSim returns 1/(1+rwmd), where rwmd is the relaxed Word
// Mover's distance: the maximum of the two directional greedy transport
// costs (each token's mass moves to its nearest counterpart), a standard
// lower bound of the exact WMD that preserves its ordering behaviour.
func WordMoversSim(m Model, textA, textB string) float64 {
	va, wa := m.TokenVectors(textA)
	vb, wb := m.TokenVectors(textB)
	if len(va) == 0 || len(vb) == 0 {
		return 0
	}
	d := math.Max(directionalWMD(va, wa, vb), directionalWMD(vb, wb, va))
	return 1 / (1 + d)
}

func directionalWMD(from [][]float64, w []float64, to [][]float64) float64 {
	total := 0.0
	for i, v := range from {
		best := math.Inf(1)
		for _, u := range to {
			s := 0.0
			for k := range v {
				dd := v[k] - u[k]
				s += dd * dd
			}
			if s < best {
				best = s
			}
		}
		total += w[i] * math.Sqrt(best)
	}
	return total
}

// Measure names for the semantic similarities (Appendix B, category 4).
const (
	MeasureCosine     = "Cosine"
	MeasureEuclidean  = "Euclidean"
	MeasureWordMovers = "WordMovers"
)

// Measures returns the three semantic measure names in a stable order.
func Measures() []string {
	return []string{MeasureCosine, MeasureEuclidean, MeasureWordMovers}
}

// Models returns the two semantic representation models the paper uses.
func Models() []Model {
	return []Model{FastTextLike{}, ContextualLike{}}
}

// CachedModels is Models with fresh token-vector (and gram-/token-
// component) caches attached to each model. Embeddings are unchanged
// (the models are pure); repeated tokens across a collection are hashed
// once instead of per entity, and distinct tokens share their hashed
// n-gram windows. The caches live as long as the returned models, so
// callers should scope them to one corpus build (or hold them in an
// embed.RepCache for cross-build reuse).
func CachedModels() []Model {
	return []Model{
		FastTextLike{Cache: NewVecCache(), GramCache: NewVecCache()},
		ContextualLike{Cache: NewVecCache(), TokenCache: NewVecCache()},
	}
}

// Sim computes the named semantic measure between two texts under the
// model. It panics on an unknown measure name.
func Sim(m Model, measure, textA, textB string) float64 {
	switch measure {
	case MeasureCosine:
		return CosineSim(m.Embed(textA), m.Embed(textB))
	case MeasureEuclidean:
		return EuclideanSim(m.Embed(textA), m.Embed(textB))
	case MeasureWordMovers:
		return WordMoversSim(m, textA, textB)
	default:
		panic("embed: unknown measure " + measure)
	}
}
