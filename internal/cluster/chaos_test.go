package cluster_test

// The kill-a-backend chaos harness: three real erserve processes
// (re-execs of this test binary) behind an in-process Router with
// replicas=2, under closed-loop match load. One backend is SIGKILLed
// mid-load, another SIGSTOPped, and the contract is asserted live:
//
//   - zero failed match reads while a quorum of replicas is healthy —
//     every response either succeeds byte-identical to a single-node
//     reference or is an honest shed (503 + Retry-After);
//   - writes placed on the dead backend fail over inside the caller's
//     deadline budget;
//   - the router's breaker opens for the dead backend and the cluster
//     state endpoint reports it;
//   - a restarted backend rejoins via the half-open probe without the
//     router restarting;
//   - router goroutines stay bounded through the whole storm.
//
// CLUSTER_REPORT=<path> writes a JSON artifact with the observed
// failover latency and breaker transition counts (the CI cluster job
// uploads it).

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"github.com/ccer-go/ccer/internal/cluster"
	"github.com/ccer-go/ccer/internal/graph"
	"github.com/ccer-go/ccer/internal/serve"
)

const (
	chaosChildEnv = "ERSERVE_CLUSTER_CHILD"
	chaosAddrEnv  = "ERSERVE_CLUSTER_ADDR"
)

func TestMain(m *testing.M) {
	if os.Getenv(chaosChildEnv) == "1" {
		runChaosChild()
		return
	}
	os.Exit(m.Run())
}

// runChaosChild is a re-exec'd single-node erserve. It binds the
// address given in the env (retrying briefly so a restart can reclaim
// the port of its killed predecessor), announces "ADDR <addr>" on
// stdout, and serves until killed.
func runChaosChild() {
	srv, err := serve.New(serve.Config{JobWorkers: 1, Parallelism: 1})
	if err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	want := os.Getenv(chaosAddrEnv)
	if want == "" {
		want = "127.0.0.1:0"
	}
	var ln net.Listener
	deadline := time.Now().Add(5 * time.Second)
	for {
		ln, err = net.Listen("tcp", want)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			fmt.Println("ERR", err)
			os.Exit(1)
		}
		time.Sleep(50 * time.Millisecond)
	}
	fmt.Println("ADDR", ln.Addr().String())
	if err := http.Serve(ln, srv.Handler()); err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
}

// chaosChild is one running backend process.
type chaosChild struct {
	cmd  *exec.Cmd
	addr string
}

// startChaosChild re-execs the test binary as a backend. addr pins the
// listen address ("" lets the child pick); the child's announced
// address is returned on the struct.
func startChaosChild(t *testing.T, addr string) *chaosChild {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(exe, "-test.run=^$")
	cmd.Env = append(os.Environ(), chaosChildEnv+"=1", chaosAddrEnv+"="+addr)
	var errBuf bytes.Buffer
	cmd.Stderr = &errBuf
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	c := &chaosChild{cmd: cmd}
	t.Cleanup(func() {
		_ = cmd.Process.Signal(syscall.SIGCONT) // in case it died stopped
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	})

	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		if sc.Scan() {
			lines <- sc.Text()
		}
		close(lines)
	}()
	select {
	case line, ok := <-lines:
		if !ok || !strings.HasPrefix(line, "ADDR ") {
			t.Fatalf("chaos child did not announce an address: %q (stderr: %s)", line, errBuf.String())
		}
		c.addr = strings.TrimPrefix(line, "ADDR ")
	case <-time.After(30 * time.Second):
		t.Fatalf("chaos child never started (stderr: %s)", errBuf.String())
	}
	go func() { // keep the pipe drained
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
		}
	}()
	return c
}

func (c *chaosChild) sigkill(t *testing.T) {
	t.Helper()
	if err := c.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	_, _ = c.cmd.Process.Wait()
}

func (c *chaosChild) signal(t *testing.T, sig syscall.Signal) {
	t.Helper()
	if err := c.cmd.Process.Signal(sig); err != nil {
		t.Fatal(err)
	}
}

// clusterState fetches GET /v1/cluster from the router.
type clusterStateJSON struct {
	Backends []cluster.BackendState `json:"backends"`
	Healthy  int                    `json:"healthy_backends"`
}

func chaosClusterState(t *testing.T, routerBase string) clusterStateJSON {
	t.Helper()
	resp, err := http.Get(routerBase + "/v1/cluster")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var cs clusterStateJSON
	if err := json.NewDecoder(resp.Body).Decode(&cs); err != nil {
		t.Fatal(err)
	}
	return cs
}

func backendState(cs clusterStateJSON, base string) (cluster.BackendState, bool) {
	for _, b := range cs.Backends {
		if b.URL == base {
			return b, true
		}
	}
	return cluster.BackendState{}, false
}

// waitBackend polls the cluster endpoint until cond holds for base.
func waitBackend(t *testing.T, routerBase, base string, timeout time.Duration, cond func(cluster.BackendState) bool, what string) cluster.BackendState {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if st, ok := backendState(chaosClusterState(t, routerBase), base); ok && cond(st) {
			return st
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("backend %s never became %s within %v", base, what, timeout)
	return cluster.BackendState{}
}

// chaosPost posts JSON and returns status, Retry-After presence and body.
func chaosPost(base, path string, payload []byte) (int, http.Header, []byte, error) {
	resp, err := http.Post(base+path, "application/json", bytes.NewReader(payload))
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, body, err
}

func TestClusterChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness spawns real child processes")
	}

	// --- Topology: three real backends, replicas=2, router in-process.
	children := map[string]*chaosChild{}
	var bases []string
	for i := 0; i < 3; i++ {
		c := startChaosChild(t, "")
		base := "http://" + c.addr
		children[base] = c
		bases = append(bases, base)
	}
	goroutinesBefore := runtime.NumGoroutine()
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Backends:         bases,
		Replicas:         2,
		ProbeInterval:    25 * time.Millisecond,
		ProbeTimeout:     300 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  200 * time.Millisecond,
		HedgeAfter:       60 * time.Millisecond,
		// Repair off: this scenario proves failover semantics in
		// isolation. With repair on, the restarted (empty) victim would
		// be rebuilt from peers' edge lists — which do not carry the
		// generated ground truth, so its match responses would lack
		// metrics and honestly differ from the single-node reference.
		// TestClusterRepairConvergence covers repair, over uploads.
		RepairInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	// Single-node reference for byte identity: same graphs, same
	// deterministic generation, warmed so the cache flag matches.
	ref, err := serve.New(serve.Config{JobWorkers: 1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close(context.Background())
	refSrv := httptest.NewServer(ref.Handler())
	defer refSrv.Close()

	// --- Seed graphs through the router; mirror them on the reference.
	const graphs = 4
	names := make([]string, graphs)
	matchPayloads := make([][]byte, graphs)
	refBytes := make([][]byte, graphs)
	for i := range names {
		names[i] = fmt.Sprintf("chaos-g%d", i)
		gen := []byte(fmt.Sprintf(`{"name":%q,"dataset":"D2","seed":%d,"scale":0.012}`, names[i], 100+i))
		if code, _, body, err := chaosPost(front.URL, "/v1/graphs", gen); err != nil || code != http.StatusCreated {
			t.Fatalf("seed generate %s: code=%d err=%v body=%s", names[i], code, err, body)
		}
		if code, _, body, err := chaosPost(refSrv.URL, "/v1/graphs", gen); err != nil || code != http.StatusCreated {
			t.Fatalf("reference generate %s: code=%d err=%v body=%s", names[i], code, err, body)
		}
		matchPayloads[i] = []byte(fmt.Sprintf(`{"graph":%q,"algorithms":["UMC","RSR"],"threshold":0.5}`, names[i]))
		// Warm every hosting replica AND the reference so the responses'
		// cache flag agrees from here on; then pin the reference bytes.
		for _, replica := range cluster.Replicas(names[i], bases, 2) {
			if code, _, body, err := chaosPost(replica, "/v1/match", matchPayloads[i]); err != nil || code != http.StatusOK {
				t.Fatalf("warming %s on %s: code=%d err=%v body=%s", names[i], replica, code, err, body)
			}
		}
		if code, _, _, err := chaosPost(refSrv.URL, "/v1/match", matchPayloads[i]); err != nil || code != http.StatusOK {
			t.Fatalf("warming reference %s: code=%d err=%v", names[i], code, err)
		}
		code, _, body, err := chaosPost(refSrv.URL, "/v1/match", matchPayloads[i])
		if err != nil || code != http.StatusOK {
			t.Fatalf("reference match %s: code=%d err=%v", names[i], code, err)
		}
		refBytes[i] = body
	}

	// --- Closed-loop load. A read "fails" unless it is a 200 with bytes
	// identical to the reference, or an honest shed (503 + Retry-After).
	var served, shed, failed atomic.Int64
	var failOnce sync.Once
	var firstFailure string // workers must not touch t; asserted after wg.Wait
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				g := (w + i) % graphs
				code, hdr, body, err := chaosPost(front.URL, "/v1/match", matchPayloads[g])
				switch {
				case err != nil:
					failed.Add(1)
					failOnce.Do(func() { firstFailure = fmt.Sprintf("read transport error under chaos: %v", err) })
				case code == http.StatusOK:
					if !bytes.Equal(body, refBytes[g]) {
						failed.Add(1)
						failOnce.Do(func() {
							firstFailure = fmt.Sprintf("read diverged from single-node reference for %s:\n got %s\nwant %s", names[g], body, refBytes[g])
						})
					} else {
						served.Add(1)
					}
				case code == http.StatusServiceUnavailable && hdr.Get("Retry-After") != "":
					shed.Add(1) // honest shed: not a failure
				default:
					failed.Add(1)
					failOnce.Do(func() { firstFailure = fmt.Sprintf("read failed under chaos: code=%d body=%s", code, body) })
				}
			}
		}(w)
	}
	time.Sleep(250 * time.Millisecond) // steady state before the first fault

	// --- Fault 1: SIGKILL the owner of chaos-g0 mid-load.
	victim := cluster.Replicas(names[0], bases, 2)[0]
	children[victim].sigkill(t)
	killedAt := time.Now()

	// Writes placed on the dead backend must fail over within the
	// caller's deadline budget: pick a name whose replica set contains
	// the victim.
	failName := ""
	for i := 0; failName == ""; i++ {
		n := fmt.Sprintf("chaos-failover-%d", i)
		for _, r := range cluster.Replicas(n, bases, 2) {
			if r == victim {
				failName = n
			}
		}
	}
	gen := []byte(fmt.Sprintf(`{"name":%q,"dataset":"D2","seed":777,"scale":0.012}`, failName))
	writeDeadline := time.Now().Add(5 * time.Second)
	var failoverLatency time.Duration
	for {
		code, _, body, err := chaosPost(front.URL, "/v1/graphs", gen)
		if err == nil && code == http.StatusCreated {
			failoverLatency = time.Since(killedAt)
			break
		}
		if time.Now().After(writeDeadline) {
			t.Fatalf("write targeting dead backend's replica set never failed over: code=%d err=%v body=%s", code, err, body)
		}
		time.Sleep(25 * time.Millisecond)
	}

	// The breaker must open and the cluster endpoint must say so.
	deadState := waitBackend(t, front.URL, victim, 5*time.Second,
		func(st cluster.BackendState) bool { return !st.Ready && st.Opens >= 1 },
		"dead with an open breaker")
	breakerOpenLatency := time.Since(killedAt)
	if cs := chaosClusterState(t, front.URL); cs.Healthy != 2 {
		t.Fatalf("healthy_backends = %d with one backend SIGKILLed, want 2", cs.Healthy)
	}

	// Keep reading through the one-dead window.
	time.Sleep(400 * time.Millisecond)

	// --- Fault 2: SIGSTOP a surviving backend. Its probes time out, it
	// leaves rotation, and hedged reads mask any request already stuck
	// on it. Quorum note: the stopped backend still shares no replica
	// set with the dead one for every graph (replicas=2 of 3), so some
	// graphs now have a single live replica — reads must still succeed.
	var stopped string
	for _, b := range bases {
		if b != victim {
			stopped = b
			break
		}
	}
	children[stopped].signal(t, syscall.SIGSTOP)
	waitBackend(t, front.URL, stopped, 5*time.Second,
		func(st cluster.BackendState) bool { return !st.Ready },
		"not-ready while SIGSTOPped")
	time.Sleep(400 * time.Millisecond) // reads continue against the last healthy replica
	children[stopped].signal(t, syscall.SIGCONT)
	waitBackend(t, front.URL, stopped, 10*time.Second,
		func(st cluster.BackendState) bool { return st.Ready },
		"ready again after SIGCONT")

	// --- Recovery: restart the killed backend on its old address. The
	// router must take it back through the half-open probe without being
	// restarted itself.
	restartAt := time.Now()
	children[victim] = startChaosChild(t, strings.TrimPrefix(victim, "http://"))
	rejoined := waitBackend(t, front.URL, victim, 10*time.Second,
		func(st cluster.BackendState) bool { return st.Ready && st.Breaker == "closed" && st.HalfOpens >= 1 },
		"rejoined through a half-open probe")
	rejoinLatency := time.Since(restartAt)

	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	if failed.Load() != 0 {
		t.Fatalf("%d failed match reads under chaos (served=%d shed=%d), first: %s",
			failed.Load(), served.Load(), shed.Load(), firstFailure)
	}
	if served.Load() < 50 {
		t.Fatalf("only %d reads served under chaos; the load loop barely ran (shed=%d)", served.Load(), shed.Load())
	}
	if cs := chaosClusterState(t, front.URL); cs.Healthy != 3 {
		t.Fatalf("healthy_backends = %d after full recovery, want 3", cs.Healthy)
	}

	// --- Goroutines bounded: hedges were cancelled, probes are the only
	// long-lived router goroutines. Allow transport keep-alive slack.
	deadline := time.Now().Add(10 * time.Second)
	var goroutinesAfter int
	for {
		runtime.GC() // nudges idle conn readLoops parked on finalizers
		goroutinesAfter = runtime.NumGoroutine()
		if goroutinesAfter <= goroutinesBefore+40 || time.Now().After(deadline) {
			break
		}
		time.Sleep(100 * time.Millisecond)
	}
	if goroutinesAfter > goroutinesBefore+40 {
		buf := make([]byte, 1<<20)
		t.Fatalf("goroutines grew %d -> %d under chaos:\n%s",
			goroutinesBefore, goroutinesAfter, buf[:runtime.Stack(buf, true)])
	}

	t.Logf("chaos: served=%d shed=%d failover=%v breaker-open=%v rejoin=%v goroutines %d->%d",
		served.Load(), shed.Load(), failoverLatency, breakerOpenLatency, rejoinLatency,
		goroutinesBefore, goroutinesAfter)

	if path := os.Getenv("CLUSTER_REPORT"); path != "" {
		report := map[string]any{
			"served_reads":          served.Load(),
			"shed_reads":            shed.Load(),
			"failed_reads":          failed.Load(),
			"write_failover_ms":     failoverLatency.Milliseconds(),
			"breaker_open_ms":       breakerOpenLatency.Milliseconds(),
			"rejoin_ms":             rejoinLatency.Milliseconds(),
			"victim_breaker_opens":  deadState.Opens,
			"victim_half_opens":     rejoined.HalfOpens,
			"victim_breaker_closes": rejoined.Closes,
			"goroutines_before":     goroutinesBefore,
			"goroutines_after":      goroutinesAfter,
		}
		raw, _ := json.MarshalIndent(report, "", "  ")
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			t.Logf("writing cluster report: %v", err)
		}
	}
}

// chaosGet fetches a URL, returning status and body.
func chaosGet(url string) (int, []byte, error) {
	resp, err := http.Get(url)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, body, err
}

// chaosSyncView pulls a backend's ?fields=sync listing keyed by name.
// The error is returned (not fataled) so pollers can ride out a
// backend that is mid-restart.
func chaosSyncView(base string) (map[string]string, error) {
	code, body, err := chaosGet(base + "/v1/graphs?fields=sync")
	if err != nil {
		return nil, err
	}
	if code != http.StatusOK {
		return nil, fmt.Errorf("sync listing: status %d", code)
	}
	var listing struct {
		Graphs []struct {
			Name     string `json:"name"`
			Checksum string `json:"checksum"`
		} `json:"graphs"`
	}
	if err := json.Unmarshal(body, &listing); err != nil {
		return nil, err
	}
	view := make(map[string]string, len(listing.Graphs))
	for _, g := range listing.Graphs {
		view[g.Name] = g.Checksum
	}
	return view, nil
}

// chaosUpload stores a deterministic 4x4 graph under name via base,
// returning its listing checksum. Uploads (not generation) on purpose:
// the edge-list codec is also repair's wire format and carries no
// ground truth, so original and repaired copies serve byte-identical
// matches — the property the closed-loop readers assert.
func chaosUpload(t *testing.T, base, name string, seed int64) string {
	t.Helper()
	b := graph.NewBuilder(4, 4)
	for i := int32(0); i < 4; i++ {
		b.Add(i, (i+int32(seed))%4, 0.5+float64(i)/10)
	}
	g := b.MustBuild()
	var wire bytes.Buffer
	if err := g.WriteEdgeList(&wire); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/graphs?name="+name, "text/plain", &wire)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload %s via %s: status %d", name, base, resp.StatusCode)
	}
	return fmt.Sprintf("%016x", g.Checksum())
}

// matchReference pins the two legitimate response byte-strings for a
// match: the cold (first-serve, cache miss) and warm (cached) variants.
// Any replica — original, failed-over-to, or freshly repaired — must
// serve one of the two, byte-identical; the cache flag is the only
// honest difference between a warmed survivor and a just-repaired copy.
type matchReference struct {
	payload []byte
	cold    []byte
	warm    []byte
}

func newMatchReference(t *testing.T, refBase, name string) *matchReference {
	t.Helper()
	mr := &matchReference{
		payload: []byte(fmt.Sprintf(`{"graph":%q,"algorithms":["UMC"],"threshold":0.5}`, name)),
	}
	for _, variant := range []*[]byte{&mr.cold, &mr.warm} {
		code, _, body, err := chaosPost(refBase, "/v1/match", mr.payload)
		if err != nil || code != http.StatusOK {
			t.Fatalf("reference match %s: code=%d err=%v", name, code, err)
		}
		*variant = body
	}
	if bytes.Equal(mr.cold, mr.warm) {
		t.Fatalf("reference cold and warm match bytes for %s are identical; the cache flag is not being exercised", name)
	}
	return mr
}

func (mr *matchReference) accepts(body []byte) bool {
	return bytes.Equal(body, mr.cold) || bytes.Equal(body, mr.warm)
}

// repairLoadLoop runs closed-loop match readers over refs until stop is
// closed. A read fails unless it is byte-identical to a reference
// variant or an honest shed.
func repairLoadLoop(front string, refs []*matchReference, stop chan struct{}, wg *sync.WaitGroup, served, shed, failed *atomic.Int64, failOnce *sync.Once, firstFailure *string) {
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				ref := refs[(w+i)%len(refs)]
				code, hdr, body, err := chaosPost(front, "/v1/match", ref.payload)
				switch {
				case err != nil:
					failed.Add(1)
					failOnce.Do(func() { *firstFailure = fmt.Sprintf("read transport error: %v", err) })
				case code == http.StatusOK && ref.accepts(body):
					served.Add(1)
				case code == http.StatusServiceUnavailable && hdr.Get("Retry-After") != "":
					shed.Add(1)
				default:
					failed.Add(1)
					failOnce.Do(func() { *firstFailure = fmt.Sprintf("read failed: code=%d body=%s", code, body) })
				}
			}
		}(w)
	}
}

// TestClusterRepairConvergence is the anti-entropy proof against real
// processes: SIGKILL a backend, fan writes past it, restart it empty,
// and require checksum convergence within ONE repair interval of the
// rejoin under closed-loop read load — zero failed reads, every
// response byte-identical to a single-node reference (modulo the honest
// cache-warmth flag), repair_graphs_repaired_total > 0 and the
// divergence gauge drained. REPAIR_REPORT=<path> writes the JSON
// artifact CI uploads.
func TestClusterRepairConvergence(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness spawns real child processes")
	}
	const repairInterval = 2 * time.Second

	children := map[string]*chaosChild{}
	var bases []string
	for i := 0; i < 3; i++ {
		c := startChaosChild(t, "")
		base := "http://" + c.addr
		children[base] = c
		bases = append(bases, base)
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Backends:          bases,
		Replicas:          2,
		ProbeInterval:     25 * time.Millisecond,
		ProbeTimeout:      300 * time.Millisecond,
		BreakerThreshold:  3,
		BreakerCooldown:   200 * time.Millisecond,
		HedgeAfter:        60 * time.Millisecond,
		RepairInterval:    repairInterval,
		RepairConcurrency: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	ref, err := serve.New(serve.Config{JobWorkers: 1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close(context.Background())
	refSrv := httptest.NewServer(ref.Handler())
	defer refSrv.Close()

	// --- Seed via the router, mirror on the reference.
	const graphs = 4
	checksums := map[string]string{}
	var refs []*matchReference
	names := make([]string, graphs)
	for i := range names {
		names[i] = fmt.Sprintf("repair-g%d", i)
		checksums[names[i]] = chaosUpload(t, front.URL, names[i], int64(i))
		chaosUpload(t, refSrv.URL, names[i], int64(i))
		refs = append(refs, newMatchReference(t, refSrv.URL, names[i]))
	}

	var served, shed, failed atomic.Int64
	var failOnce sync.Once
	var firstFailure string
	stop := make(chan struct{})
	var wg sync.WaitGroup
	repairLoadLoop(front.URL, refs, stop, &wg, &served, &shed, &failed, &failOnce, &firstFailure)
	time.Sleep(200 * time.Millisecond)

	// --- Kill the owner of repair-g0, then fan writes past the corpse:
	// the surviving replica applies them, the router counts fan misses,
	// and the victim is now guaranteed stale on restart.
	victim := cluster.Replicas(names[0], bases, 2)[0]
	children[victim].sigkill(t)
	missed := 0
	for i := 0; missed < 2; i++ {
		n := fmt.Sprintf("repair-miss-%d", i)
		hosted := false
		for _, r := range cluster.Replicas(n, bases, 2) {
			if r == victim {
				hosted = true
			}
		}
		if !hosted {
			continue
		}
		checksums[n] = chaosUpload(t, front.URL, n, int64(100+i))
		chaosUpload(t, refSrv.URL, n, int64(100+i))
		names = append(names, n)
		missed++
	}
	waitBackend(t, front.URL, victim, 5*time.Second,
		func(st cluster.BackendState) bool { return !st.Ready },
		"marked down after SIGKILL")

	// --- Restart empty on the old address; repair-on-rejoin must
	// rebuild it within one repair interval of the router seeing it.
	children[victim] = startChaosChild(t, strings.TrimPrefix(victim, "http://"))
	waitBackend(t, front.URL, victim, 10*time.Second,
		func(st cluster.BackendState) bool { return st.Ready },
		"ready again after restart")
	rejoinedAt := time.Now()

	wantOnVictim := map[string]string{}
	for n, sum := range checksums {
		for _, r := range cluster.Replicas(n, bases, 2) {
			if r == victim {
				wantOnVictim[n] = sum
			}
		}
	}
	if len(wantOnVictim) < 3 { // repair-g0 + the two fanned-past writes at minimum
		t.Fatalf("victim only places %d graphs; the scenario lost its teeth", len(wantOnVictim))
	}
	var convergeIn time.Duration
	for {
		view, err := chaosSyncView(victim)
		if err == nil {
			converged := true
			for n, sum := range wantOnVictim {
				if view[n] != sum {
					converged = false
					break
				}
			}
			if converged {
				convergeIn = time.Since(rejoinedAt)
				break
			}
		}
		if time.Since(rejoinedAt) > repairInterval {
			t.Fatalf("restarted replica not checksum-converged within one repair interval (%v); view=%v want=%v err=%v",
				repairInterval, func() any { v, _ := chaosSyncView(victim); return v }(), wantOnVictim, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The repair block on /v1/cluster must account for the rebuild.
	var cs struct {
		Repair struct {
			Scans          int64          `json:"scans_total"`
			GraphsRepaired int64          `json:"graphs_repaired_total"`
			Bytes          int64          `json:"bytes_total"`
			Diverged       map[string]int `json:"diverged"`
		} `json:"repair"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body, err := chaosGet(front.URL + "/v1/cluster")
		if err != nil || code != http.StatusOK || json.Unmarshal(body, &cs) != nil {
			t.Fatalf("cluster state: code=%d err=%v", code, err)
		}
		if cs.Repair.GraphsRepaired >= int64(len(wantOnVictim)) && len(cs.Repair.Diverged) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("repair accounting never settled: %+v", cs.Repair)
		}
		time.Sleep(20 * time.Millisecond)
	}

	time.Sleep(200 * time.Millisecond) // post-convergence reads, some served by the repaired copy
	close(stop)
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d failed reads across kill+repair (served=%d shed=%d), first: %s",
			failed.Load(), served.Load(), shed.Load(), firstFailure)
	}
	if served.Load() < 50 {
		t.Fatalf("only %d reads served; the load loop barely ran (shed=%d)", served.Load(), shed.Load())
	}
	t.Logf("repair chaos: converged in %v (budget %v), repaired=%d bytes=%d scans=%d served=%d shed=%d",
		convergeIn, repairInterval, cs.Repair.GraphsRepaired, cs.Repair.Bytes, cs.Repair.Scans, served.Load(), shed.Load())

	if path := os.Getenv("REPAIR_REPORT"); path != "" {
		report := map[string]any{
			"converge_ms":           convergeIn.Milliseconds(),
			"repair_interval_ms":    repairInterval.Milliseconds(),
			"graphs_repaired_total": cs.Repair.GraphsRepaired,
			"repair_bytes_total":    cs.Repair.Bytes,
			"repair_scans_total":    cs.Repair.Scans,
			"served_reads":          served.Load(),
			"shed_reads":            shed.Load(),
			"failed_reads":          failed.Load(),
		}
		raw, _ := json.MarshalIndent(report, "", "  ")
		if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
			t.Logf("writing repair report: %v", err)
		}
	}
}

// TestClusterElasticity removes and re-adds a live backend through the
// admin endpoint while closed-loop readers run, asserting only the
// names whose rendezvous replica set changed actually migrated and
// that reads stay correct throughout.
func TestClusterElasticity(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos harness spawns real child processes")
	}

	children := map[string]*chaosChild{}
	var bases []string
	for i := 0; i < 3; i++ {
		c := startChaosChild(t, "")
		base := "http://" + c.addr
		children[base] = c
		bases = append(bases, base)
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Backends:         bases,
		Replicas:         2,
		ProbeInterval:    25 * time.Millisecond,
		ProbeTimeout:     300 * time.Millisecond,
		BreakerThreshold: 3,
		BreakerCooldown:  200 * time.Millisecond,
		HedgeAfter:       60 * time.Millisecond,
		RepairInterval:   500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	front := httptest.NewServer(rt.Handler())
	defer front.Close()

	ref, err := serve.New(serve.Config{JobWorkers: 1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close(context.Background())
	refSrv := httptest.NewServer(ref.Handler())
	defer refSrv.Close()

	const graphs = 6
	checksums := map[string]string{}
	var refs []*matchReference
	names := make([]string, graphs)
	for i := range names {
		names[i] = fmt.Sprintf("elastic-g%d", i)
		checksums[names[i]] = chaosUpload(t, front.URL, names[i], int64(i))
		chaosUpload(t, refSrv.URL, names[i], int64(i))
		refs = append(refs, newMatchReference(t, refSrv.URL, names[i]))
	}

	var served, shed, failed atomic.Int64
	var failOnce sync.Once
	var firstFailure string
	stop := make(chan struct{})
	var wg sync.WaitGroup
	repairLoadLoop(front.URL, refs, stop, &wg, &served, &shed, &failed, &failOnce, &firstFailure)
	time.Sleep(150 * time.Millisecond)

	mustSyncView := func(base string) map[string]string {
		view, err := chaosSyncView(base)
		if err != nil {
			t.Fatalf("sync view of %s: %v", base, err)
		}
		return view
	}
	before := map[string]map[string]string{}
	for _, base := range bases {
		before[base] = mustSyncView(base)
	}

	// --- Remove a live backend. Exactly the names it hosted must gain a
	// replacement replica; every other backend keeps exactly its
	// pre-removal holdings plus those backfills.
	victim := bases[0]
	req, err := http.NewRequest(http.MethodDelete, front.URL+"/v1/cluster/backends?url="+victim, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("backend remove: status %d", resp.StatusCode)
	}
	displaced := map[string]bool{}
	for _, n := range names {
		for _, r := range cluster.Replicas(n, bases, 2) {
			if r == victim {
				displaced[n] = true
			}
		}
	}
	survivors := bases[1:]
	deadline := time.Now().Add(10 * time.Second)
	for {
		settled := true
		for _, n := range names {
			for _, base := range cluster.Replicas(n, survivors, 2) {
				if view := mustSyncView(base); view[n] != checksums[n] {
					settled = false
				}
			}
		}
		if settled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shrunk placements never re-replicated")
		}
		time.Sleep(25 * time.Millisecond)
	}
	for _, base := range survivors {
		now := mustSyncView(base)
		for n := range now {
			if _, held := before[base][n]; !held && !displaced[n] {
				t.Fatalf("backend %s gained %q, which never counted the removed backend as a replica", base, n)
			}
		}
		for n := range before[base] {
			if _, still := now[n]; !still {
				t.Fatalf("backend %s lost %q on an unrelated membership change", base, n)
			}
		}
	}

	// --- Re-add the same (still running, never wiped) backend. Its
	// placements revert; it already holds every one of its names, so
	// convergence means "nothing needed streaming back": its listing is
	// unchanged and the divergence gauge drains.
	if code, _, body, err := chaosPost(front.URL, "/v1/cluster/backends", []byte(fmt.Sprintf(`{"url":%q}`, victim))); err != nil || code != http.StatusOK {
		t.Fatalf("backend re-add: code=%d err=%v body=%s", code, err, body)
	}
	waitBackend(t, front.URL, victim, 5*time.Second,
		func(st cluster.BackendState) bool { return st.Ready },
		"ready after re-add")
	deadline = time.Now().Add(10 * time.Second)
	for {
		var cs struct {
			Repair struct {
				Diverged map[string]int `json:"diverged"`
				Scans    int64          `json:"scans_total"`
			} `json:"repair"`
		}
		code, body, err := chaosGet(front.URL + "/v1/cluster")
		if err != nil || code != http.StatusOK || json.Unmarshal(body, &cs) != nil {
			t.Fatalf("cluster state: code=%d err=%v", code, err)
		}
		if cs.Repair.Scans >= 1 && len(cs.Repair.Diverged) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("divergence gauge never drained after re-add: %+v", cs.Repair)
		}
		time.Sleep(25 * time.Millisecond)
	}
	after := mustSyncView(victim)
	if len(after) != len(before[victim]) {
		t.Fatalf("re-added backend's holdings changed: %v -> %v (nothing should have streamed)", before[victim], after)
	}
	for n, sum := range before[victim] {
		if after[n] != sum {
			t.Fatalf("re-added backend's copy of %q changed: %s -> %s", n, sum, after[n])
		}
	}

	time.Sleep(150 * time.Millisecond)
	close(stop)
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d failed reads across remove+re-add (served=%d shed=%d), first: %s",
			failed.Load(), served.Load(), shed.Load(), firstFailure)
	}
	if served.Load() < 50 {
		t.Fatalf("only %d reads served; the load loop barely ran (shed=%d)", served.Load(), shed.Load())
	}
	t.Logf("elasticity chaos: displaced=%d of %d names, served=%d shed=%d", len(displaced), graphs, served.Load(), shed.Load())
}
