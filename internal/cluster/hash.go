// Package cluster turns a set of independent erserve nodes into one
// replicated service: a typed retrying client for the erserve JSON API,
// per-backend health probing and circuit breaking, and a Router that
// places graphs on replicas by rendezvous hashing, fans writes to the
// replica set, reads from any healthy replica with hedging, and keeps
// serving through the loss of any single backend.
//
// The placement contract leans on the store's per-name versioning
// (internal/serve): every replica that applies the same write sequence
// to a graph name reports the same version, so a match response is
// byte-identical no matter which replica computed it — the property the
// chaos harness (chaos_test.go) asserts while killing backends.
package cluster

import (
	"hash/fnv"
	"sort"
)

// Replicas returns the r backends responsible for name, most preferred
// first, by rendezvous (highest-random-weight) hashing: every node
// scores (backend, name) with the same hash and picks the top r, so
// placement needs no coordination, is stable under backend-list
// reordering, and loses only 1/len(backends) of names when a backend
// is added or removed. r is clamped to len(backends); the first entry
// is the name's owner.
func Replicas(name string, backends []string, r int) []string {
	if len(backends) == 0 {
		return nil
	}
	if r <= 0 {
		r = 1
	}
	if r > len(backends) {
		r = len(backends)
	}
	type scored struct {
		backend string
		score   uint64
	}
	ranked := make([]scored, len(backends))
	for i, b := range backends {
		ranked[i] = scored{backend: b, score: rendezvousScore(b, name)}
	}
	// Ties (possible only by hash collision) break on the backend
	// string so every node still ranks identically.
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].backend < ranked[j].backend
	})
	out := make([]string, r)
	for i := 0; i < r; i++ {
		out[i] = ranked[i].backend
	}
	return out
}

// rendezvousScore hashes the (backend, name) pair: FNV-1a over each
// string, combined and finished with the splitmix64 avalanche. Raw
// FNV-1a alone is not enough — backend URLs that differ by one
// character produce correlated scores across names (one backend can
// lose every single ranking), and the finalizer's full-avalanche mixing
// restores a uniform win share. Everything here is fixed arithmetic:
// deterministic across processes and Go versions, so placement computed
// by a router, a client, or an operator's script always agrees.
func rendezvousScore(backend, name string) uint64 {
	x := fnv64a(backend) + 0x9E3779B97F4A7C15*fnv64a(name)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

func fnv64a(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	return h.Sum64()
}
