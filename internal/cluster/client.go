package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/ccer-go/ccer/internal/resilience"
)

// APIError is a non-2xx reply from an erserve node, carrying the
// structured error body (message plus the machine-readable shed-reason
// vocabulary: queue_full, queue_timeout, degraded, sweep_backlog,
// shutting_down, deadline) and the server's Retry-After hint when it
// sent one.
type APIError struct {
	Status     int
	Reason     string
	Message    string
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Reason != "" {
		return fmt.Sprintf("cluster: server status %d (%s): %s", e.Status, e.Reason, e.Message)
	}
	return fmt.Sprintf("cluster: server status %d: %s", e.Status, e.Message)
}

// Reply is one raw HTTP exchange: the exact bytes the server sent, the
// unit the router proxies so a routed response is byte-identical to
// asking the backend directly.
type Reply struct {
	Status int
	Header http.Header
	Body   []byte
}

// retryAfter parses the reply's Retry-After header (whole seconds, the
// only form erserve emits); 0 when absent or unparseable.
func (rp *Reply) retryAfter() time.Duration {
	if rp == nil {
		return 0
	}
	secs, err := strconv.Atoi(rp.Header.Get("Retry-After"))
	if err != nil || secs <= 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Client is a typed client for one erserve base URL (a node or a
// router) with deadline-budgeted retries: transient failures — a
// connection that never got a response started, or a 5xx/shed reply —
// are retried under decorrelated-jitter exponential backoff until the
// context expires or MaxRetries is spent, and a server-provided
// Retry-After always overrides the computed backoff (the server knows
// its own recovery horizon better than our jitter does).
//
// Retry safety is per-call: reads (Ready, Metrics, GetGraph, Match —
// deterministic and cached server-side, so re-running one is free)
// retry on any transient failure; mutations (Generate, DeleteGraph)
// retry a transport error only when the connection was refused outright,
// meaning the request provably never reached a server. A mutation that
// died mid-flight is surfaced, not re-sent — server-side singleflight
// makes a duplicate generate cheap, but the caller decides.
type Client struct {
	// Base is the server's base URL, e.g. "http://127.0.0.1:8080".
	Base string
	// HTTP is the transport; nil means http.DefaultClient. Deadlines
	// come from the per-call context, not a client timeout.
	HTTP *http.Client
	// MaxRetries caps retries per call (attempts = MaxRetries+1).
	// 0 means 3; negative disables retries entirely (the router does
	// its own cross-backend failover and wants one attempt per node).
	MaxRetries int
	// RetryBase and RetryCap bound the backoff between attempts;
	// 0 means 25ms base, 1s cap.
	RetryBase time.Duration
	RetryCap  time.Duration
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) maxRetries() int {
	switch {
	case c.MaxRetries < 0:
		return 0
	case c.MaxRetries == 0:
		return 3
	}
	return c.MaxRetries
}

// connRefused reports whether err is a transport error that proves the
// request never reached a server process: the dial was refused (nothing
// listening — the crashed-backend signature) or could not resolve a
// route. Such failures are safe to retry even for mutations.
func connRefused(err error) bool {
	if errors.Is(err, syscall.ECONNREFUSED) || errors.Is(err, syscall.ENETUNREACH) {
		return true
	}
	var op *net.OpError
	return errors.As(err, &op) && op.Op == "dial"
}

// retryable decides whether one attempt's outcome warrants another.
func retryable(reply *Reply, err error, idempotent bool) bool {
	if err != nil {
		if idempotent {
			return true // re-running a read is always safe
		}
		return connRefused(err)
	}
	switch {
	case reply.Status == http.StatusServiceUnavailable:
		// A shed: the server refused before doing the work, so a
		// retry duplicates nothing regardless of idempotency.
		return true
	case reply.Status >= 500:
		return idempotent
	}
	return false
}

// do runs one HTTP exchange against path with retries as described on
// Client. A 2xx (or any non-retryable status, e.g. a 404 the caller
// branches on) returns the reply; exhausted retries return the last
// outcome — the reply for status failures, the error for transport
// failures.
func (c *Client) do(ctx context.Context, method, path, contentType string, body []byte, idempotent bool) (*Reply, error) {
	base, cap := c.RetryBase, c.RetryCap
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	if cap <= 0 {
		cap = time.Second
	}
	bo := &resilience.Backoff{Base: base, Cap: cap}
	var lastReply *Reply
	var lastErr error
	for attempt := 0; ; attempt++ {
		reply, err := c.once(ctx, method, path, contentType, body)
		if err == nil && !retryable(reply, nil, idempotent) {
			return reply, nil
		}
		lastReply, lastErr = reply, err
		if err != nil && !retryable(nil, err, idempotent) {
			return nil, err
		}
		if attempt >= c.maxRetries() || ctx.Err() != nil {
			break
		}
		// The server's Retry-After hint wins over computed backoff.
		if ra := reply.retryAfter(); ra > 0 {
			if resilience.SleepCtx(ctx, ra) != nil {
				break
			}
			bo.Reset()
			continue
		}
		if bo.Sleep(ctx) != nil {
			break
		}
	}
	if lastErr != nil {
		return nil, fmt.Errorf("cluster: %s %s%s: %w", method, c.Base, path, lastErr)
	}
	return lastReply, nil
}

// once runs a single attempt.
func (c *Client) once(ctx context.Context, method, path, contentType string, body []byte) (*Reply, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.Base+path, rd)
	if err != nil {
		return nil, err
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return &Reply{Status: resp.StatusCode, Header: resp.Header, Body: raw}, nil
}

// apiError converts a non-2xx reply into an *APIError.
func apiError(reply *Reply) error {
	var er struct {
		Error  string `json:"error"`
		Reason string `json:"reason"`
	}
	_ = json.Unmarshal(reply.Body, &er)
	if er.Error == "" {
		er.Error = strings.TrimSpace(string(reply.Body))
	}
	return &APIError{
		Status:     reply.Status,
		Reason:     er.Reason,
		Message:    er.Error,
		RetryAfter: reply.retryAfter(),
	}
}

// decode unmarshals a 2xx reply into out (when non-nil), or surfaces
// the structured error.
func decode(reply *Reply, out any) error {
	if reply.Status < 200 || reply.Status > 299 {
		return apiError(reply)
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(reply.Body, out)
}

// GraphInfo mirrors erserve's graph metadata JSON.
type GraphInfo struct {
	Name           string  `json:"name"`
	Version        int64   `json:"version"`
	Checksum       string  `json:"checksum"`
	N1             int     `json:"n1"`
	N2             int     `json:"n2"`
	Edges          int     `json:"edges"`
	Density        float64 `json:"density"`
	HasGroundTruth bool    `json:"has_ground_truth"`
	Source         string  `json:"source"`
	Dataset        string  `json:"dataset,omitempty"`
	Seed           int64   `json:"seed,omitempty"`
	Scale          float64 `json:"scale,omitempty"`
}

// GenerateRequest mirrors the JSON mode of POST /v1/graphs.
type GenerateRequest struct {
	Name    string   `json:"name"`
	Dataset string   `json:"dataset"`
	Seed    int64    `json:"seed,omitempty"`
	Scale   float64  `json:"scale,omitempty"`
	Measure string   `json:"measure,omitempty"`
	Family  string   `json:"family,omitempty"`
	Attrs   []string `json:"attrs,omitempty"`
	MinSim  float64  `json:"min_sim,omitempty"`
}

// MatchRequest mirrors the body of POST /v1/match.
type MatchRequest struct {
	Graph      string   `json:"graph"`
	Algorithms []string `json:"algorithms,omitempty"`
	Threshold  *float64 `json:"threshold,omitempty"`
	Seed       int64    `json:"seed,omitempty"`
}

// MatchPair is one matched pair.
type MatchPair struct {
	U int32   `json:"u"`
	V int32   `json:"v"`
	W float64 `json:"w"`
}

// MatchResult is one algorithm's outcome within a match response.
type MatchResult struct {
	Algorithm string      `json:"algorithm"`
	Cached    bool        `json:"cached"`
	Pairs     []MatchPair `json:"pairs"`
	Metrics   *struct {
		Precision float64 `json:"precision"`
		Recall    float64 `json:"recall"`
		F1        float64 `json:"f1"`
	} `json:"metrics,omitempty"`
}

// MatchResponse mirrors the body of a 200 from POST /v1/match.
type MatchResponse struct {
	Graph     string        `json:"graph"`
	Version   int64         `json:"version"`
	Threshold float64       `json:"threshold"`
	Seed      int64         `json:"seed"`
	Results   []MatchResult `json:"results"`
}

// SyncEntry is one name in a node's cheap sync listing: the
// replica-comparison key (version + hex checksum) for a live graph, or
// just the deletion version for a tombstone.
type SyncEntry struct {
	Name     string `json:"name"`
	Version  int64  `json:"version"`
	Checksum string `json:"checksum,omitempty"`
}

// SyncListing is the body of GET /v1/graphs?fields=sync: every live
// graph's (version, checksum) plus the node's tombstones — everything an
// anti-entropy scan needs to compare replicas without downloading a
// single edge list.
type SyncListing struct {
	Graphs     []SyncEntry `json:"graphs"`
	Tombstones []SyncEntry `json:"tombstones"`
}

// ListSync fetches the node's cheap sync listing.
func (c *Client) ListSync(ctx context.Context) (*SyncListing, error) {
	reply, err := c.do(ctx, http.MethodGet, "/v1/graphs?fields=sync", "", nil, true)
	if err != nil {
		return nil, err
	}
	var out SyncListing
	if err := decode(reply, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// EdgeList downloads a graph in the edge-list wire format — the bytes a
// repair stream forwards verbatim to a stale replica.
func (c *Client) EdgeList(ctx context.Context, name string) ([]byte, error) {
	reply, err := c.do(ctx, http.MethodGet, "/v1/graphs/"+name+"?format=edgelist", "", nil, true)
	if err != nil {
		return nil, err
	}
	if reply.Status != http.StatusOK {
		return nil, apiError(reply)
	}
	return reply.Body, nil
}

// SyncPutEdgeList uploads an edge list as name at exactly version (the
// source replica's), via the conditional sync mode of POST /v1/graphs.
// The server applies it only if it is genuinely newer, so the call is
// idempotent and safe to retry; applied reports whether state changed.
func (c *Client) SyncPutEdgeList(ctx context.Context, name string, version int64, edgeList []byte) (applied bool, err error) {
	path := "/v1/graphs?name=" + url.QueryEscape(name) + "&sync_version=" + strconv.FormatInt(version, 10)
	reply, err := c.do(ctx, http.MethodPost, path, "text/plain", edgeList, true)
	if err != nil {
		return false, err
	}
	if reply.Status == http.StatusCreated {
		return true, nil
	}
	return false, decode(reply, nil)
}

// SyncDelete propagates a tombstone: delete name on the node if its copy
// is at or below version. Conditional like SyncPutEdgeList — "already
// gone" is success, not a 404.
func (c *Client) SyncDelete(ctx context.Context, name string, version int64) (applied bool, err error) {
	path := "/v1/graphs/" + name + "?sync_version=" + strconv.FormatInt(version, 10)
	reply, err := c.do(ctx, http.MethodDelete, path, "", nil, true)
	if err != nil {
		return false, err
	}
	var out struct {
		Applied bool `json:"applied"`
	}
	if err := decode(reply, &out); err != nil {
		return false, err
	}
	return out.Applied, nil
}

// Ready probes GET /readyz once (no retries — a readiness probe wants
// the node's state now, not its state after backoff).
func (c *Client) Ready(ctx context.Context) error {
	reply, err := c.once(ctx, http.MethodGet, "/readyz", "", nil)
	if err != nil {
		return err
	}
	if reply.Status != http.StatusOK {
		return apiError(reply)
	}
	return nil
}

// Generate creates a graph via the JSON mode of POST /v1/graphs.
func (c *Client) Generate(ctx context.Context, req GenerateRequest) (*GraphInfo, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	reply, err := c.do(ctx, http.MethodPost, "/v1/graphs", "application/json", body, false)
	if err != nil {
		return nil, err
	}
	var info GraphInfo
	if err := decode(reply, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// GetGraph fetches one graph's metadata.
func (c *Client) GetGraph(ctx context.Context, name string) (*GraphInfo, error) {
	reply, err := c.do(ctx, http.MethodGet, "/v1/graphs/"+name, "", nil, true)
	if err != nil {
		return nil, err
	}
	var info GraphInfo
	if err := decode(reply, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// DeleteGraph removes a graph.
func (c *Client) DeleteGraph(ctx context.Context, name string) error {
	reply, err := c.do(ctx, http.MethodDelete, "/v1/graphs/"+name, "", nil, false)
	if err != nil {
		return err
	}
	return decode(reply, nil)
}

// Match runs a synchronous match batch.
func (c *Client) Match(ctx context.Context, req MatchRequest) (*MatchResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	reply, err := c.do(ctx, http.MethodPost, "/v1/match", "application/json", body, true)
	if err != nil {
		return nil, err
	}
	var out MatchResponse
	if err := decode(reply, &out); err != nil {
		return nil, err
	}
	return &out, nil
}
