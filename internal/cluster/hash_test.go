package cluster_test

import (
	"fmt"
	"testing"
	"testing/quick"

	"github.com/ccer-go/ccer/internal/cluster"
)

func TestReplicasDeterministicAndClamped(t *testing.T) {
	backends := []string{"http://a", "http://b", "http://c"}
	got := cluster.Replicas("graph-1", backends, 2)
	if len(got) != 2 {
		t.Fatalf("len = %d, want 2", len(got))
	}
	again := cluster.Replicas("graph-1", backends, 2)
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("non-deterministic placement: %v vs %v", got, again)
		}
	}
	if got[0] == got[1] {
		t.Fatalf("duplicate replica: %v", got)
	}
	// Reordering the backend list must not move placements.
	reordered := cluster.Replicas("graph-1", []string{"http://c", "http://a", "http://b"}, 2)
	for i := range got {
		if got[i] != reordered[i] {
			t.Fatalf("placement depends on list order: %v vs %v", got, reordered)
		}
	}
	if n := len(cluster.Replicas("g", backends, 99)); n != 3 {
		t.Fatalf("over-replication not clamped: %d", n)
	}
	if n := len(cluster.Replicas("g", backends, 0)); n != 1 {
		t.Fatalf("r=0 should clamp to 1, got %d", n)
	}
	if cluster.Replicas("g", nil, 2) != nil {
		t.Fatal("no backends should place nowhere")
	}
}

// TestReplicasMinimalDisruption pins the rendezvous property the
// cluster depends on: removing one backend remaps only the names that
// backend hosted — every other name keeps its exact replica set.
func TestReplicasMinimalDisruption(t *testing.T) {
	full := []string{"http://a", "http://b", "http://c", "http://d"}
	without := []string{"http://a", "http://b", "http://d"} // c removed
	moved := 0
	perOwner := map[string]int{}
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("graph-%d", i)
		before := cluster.Replicas(name, full, 2)
		perOwner[before[0]]++
		hostedOnC := before[0] == "http://c" || before[1] == "http://c"
		after := cluster.Replicas(name, without, 2)
		same := before[0] == after[0] && before[1] == after[1]
		if hostedOnC {
			moved++
			continue
		}
		if !same {
			t.Fatalf("%s not hosted on removed backend but moved: %v -> %v", name, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("no name was ever placed on http://c: degenerate hash")
	}
	// Ownership should spread across all four backends.
	for _, b := range full {
		if perOwner[b] == 0 {
			t.Fatalf("backend %s owns nothing across 200 names: %v", b, perOwner)
		}
	}
}

// TestReplicasMinimalMovementUnderChurn is the elasticity contract as a
// testing/quick property: under a random add or remove of one backend,
// rendezvous placement moves only the names whose replica set actually
// changed, and changes each set by at most one member. This is what
// bounds an elasticity event's repair traffic to the displaced names
// instead of a full reshuffle.
func TestReplicasMinimalMovementUnderChurn(t *testing.T) {
	asSet := func(bases []string) map[string]bool {
		set := make(map[string]bool, len(bases))
		for _, b := range bases {
			set[b] = true
		}
		return set
	}
	property := func(worldSeed uint64, countByte, pickByte uint8, removeOp bool) bool {
		nBackends := 3 + int(countByte%5) // 3..7 so a remove keeps >= 2
		backends := make([]string, nBackends)
		for i := range backends {
			backends[i] = fmt.Sprintf("http://node-%d-%d", worldSeed, i)
		}
		var after []string
		changed := "" // the single backend added or removed
		if removeOp {
			changed = backends[int(pickByte)%nBackends]
			for _, b := range backends {
				if b != changed {
					after = append(after, b)
				}
			}
		} else {
			changed = fmt.Sprintf("http://joined-%d", worldSeed)
			after = append(append([]string{}, backends...), changed)
		}
		for i := 0; i < 24; i++ {
			name := fmt.Sprintf("g-%d-%d", worldSeed, i)
			before := asSet(cluster.Replicas(name, backends, 2))
			now := asSet(cluster.Replicas(name, after, 2))
			gained, lost := 0, 0
			for b := range now {
				if !before[b] {
					gained++
					if !removeOp && b != changed {
						return false // a name moved to a backend that was there all along
					}
				}
			}
			for b := range before {
				if !now[b] {
					lost++
					if removeOp && b != changed {
						return false // a surviving replica was displaced
					}
				}
			}
			if gained > 1 || lost > 1 {
				return false // one membership change moved more than one replica
			}
			if gained != lost {
				return false // replica sets stay at full strength (>= 3 backends remain)
			}
		}
		return true
	}
	if err := quick.Check(property, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
