package cluster_test

import (
	"fmt"
	"testing"

	"github.com/ccer-go/ccer/internal/cluster"
)

func TestReplicasDeterministicAndClamped(t *testing.T) {
	backends := []string{"http://a", "http://b", "http://c"}
	got := cluster.Replicas("graph-1", backends, 2)
	if len(got) != 2 {
		t.Fatalf("len = %d, want 2", len(got))
	}
	again := cluster.Replicas("graph-1", backends, 2)
	for i := range got {
		if got[i] != again[i] {
			t.Fatalf("non-deterministic placement: %v vs %v", got, again)
		}
	}
	if got[0] == got[1] {
		t.Fatalf("duplicate replica: %v", got)
	}
	// Reordering the backend list must not move placements.
	reordered := cluster.Replicas("graph-1", []string{"http://c", "http://a", "http://b"}, 2)
	for i := range got {
		if got[i] != reordered[i] {
			t.Fatalf("placement depends on list order: %v vs %v", got, reordered)
		}
	}
	if n := len(cluster.Replicas("g", backends, 99)); n != 3 {
		t.Fatalf("over-replication not clamped: %d", n)
	}
	if n := len(cluster.Replicas("g", backends, 0)); n != 1 {
		t.Fatalf("r=0 should clamp to 1, got %d", n)
	}
	if cluster.Replicas("g", nil, 2) != nil {
		t.Fatal("no backends should place nowhere")
	}
}

// TestReplicasMinimalDisruption pins the rendezvous property the
// cluster depends on: removing one backend remaps only the names that
// backend hosted — every other name keeps its exact replica set.
func TestReplicasMinimalDisruption(t *testing.T) {
	full := []string{"http://a", "http://b", "http://c", "http://d"}
	without := []string{"http://a", "http://b", "http://d"} // c removed
	moved := 0
	perOwner := map[string]int{}
	for i := 0; i < 200; i++ {
		name := fmt.Sprintf("graph-%d", i)
		before := cluster.Replicas(name, full, 2)
		perOwner[before[0]]++
		hostedOnC := before[0] == "http://c" || before[1] == "http://c"
		after := cluster.Replicas(name, without, 2)
		same := before[0] == after[0] && before[1] == after[1]
		if hostedOnC {
			moved++
			continue
		}
		if !same {
			t.Fatalf("%s not hosted on removed backend but moved: %v -> %v", name, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("no name was ever placed on http://c: degenerate hash")
	}
	// Ownership should spread across all four backends.
	for _, b := range full {
		if perOwner[b] == 0 {
			t.Fatalf("backend %s owns nothing across 200 names: %v", b, perOwner)
		}
	}
}
