package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/ccer-go/ccer/internal/cluster"
	"github.com/ccer-go/ccer/internal/resilience"
	"github.com/ccer-go/ccer/internal/serve"
)

// testCluster is a router fronting n real in-process erserve backends.
type testCluster struct {
	router   *cluster.Router
	front    *httptest.Server
	bases    []string
	backends []*httptest.Server
	faults   []*resilience.Faults // per-backend fault registries
}

func newTestCluster(t *testing.T, n int, cfg cluster.RouterConfig) *testCluster {
	t.Helper()
	tc := &testCluster{}
	for i := 0; i < n; i++ {
		faults := resilience.NewFaults()
		srv, err := serve.New(serve.Config{Faults: faults})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		t.Cleanup(func() {
			ts.Close()
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = srv.Close(ctx)
		})
		tc.backends = append(tc.backends, ts)
		tc.bases = append(tc.bases, ts.URL)
		tc.faults = append(tc.faults, faults)
	}
	cfg.Backends = tc.bases
	rt, err := cluster.NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tc.router = rt
	tc.front = httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		tc.front.Close()
		rt.Close()
	})
	return tc
}

func postJSON(t *testing.T, url string, payload any) (int, http.Header, []byte) {
	t.Helper()
	raw, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, body
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// generateVia creates a D2 graph through the router.
func generateVia(t *testing.T, base, name string) {
	t.Helper()
	status, _, body := postJSON(t, base+"/v1/graphs", map[string]any{
		"name": name, "dataset": "D2", "seed": 42, "scale": 0.02,
	})
	if status != http.StatusCreated {
		t.Fatalf("generate %s: status %d (body %s)", name, status, body)
	}
}

// TestRouterReplicatesWrites: a write through the router lands on
// exactly the graph's rendezvous replicas, at the same version on each.
func TestRouterReplicatesWrites(t *testing.T) {
	tc := newTestCluster(t, 3, cluster.RouterConfig{Replicas: 2})
	generateVia(t, tc.front.URL, "alpha")

	want := map[string]bool{}
	for _, base := range cluster.Replicas("alpha", tc.bases, 2) {
		want[base] = true
	}
	versions := map[string]int64{}
	for _, base := range tc.bases {
		var info struct {
			Version int64 `json:"version"`
		}
		status := getJSON(t, base+"/v1/graphs/alpha", &info)
		if want[base] {
			if status != http.StatusOK {
				t.Fatalf("replica %s: status %d, want 200", base, status)
			}
			versions[base] = info.Version
		} else if status != http.StatusNotFound {
			t.Fatalf("non-replica %s holds the graph (status %d)", base, status)
		}
	}
	if len(versions) != 2 {
		t.Fatalf("graph on %d backends, want 2", len(versions))
	}
	for base, v := range versions {
		if v != 1 {
			t.Fatalf("replica %s at version %d, want 1", base, v)
		}
	}
}

// TestRouterMatchByteIdenticalAcrossReplicas: the same match through
// the router and directly against each replica yields identical bytes —
// the property hedging and failover rely on. Responses embed a
// cache-hit flag that depends on request history, so every replica is
// warmed first; from then on the bytes must never differ, no matter
// who serves.
func TestRouterMatchByteIdenticalAcrossReplicas(t *testing.T) {
	tc := newTestCluster(t, 3, cluster.RouterConfig{Replicas: 2})
	generateVia(t, tc.front.URL, "alpha")

	payload := map[string]any{"graph": "alpha", "algorithms": []string{"UMC"}, "threshold": 0.5}
	replicas := cluster.Replicas("alpha", tc.bases, 2)
	for _, base := range replicas {
		if status, _, body := postJSON(t, base+"/v1/match", payload); status != http.StatusOK {
			t.Fatalf("warmup match on %s: status %d (body %s)", base, status, body)
		}
	}
	status, _, viaRouter := postJSON(t, tc.front.URL+"/v1/match", payload)
	if status != http.StatusOK {
		t.Fatalf("routed match: status %d (body %s)", status, viaRouter)
	}
	for _, base := range replicas {
		status, _, direct := postJSON(t, base+"/v1/match", payload)
		if status != http.StatusOK {
			t.Fatalf("direct match on %s: status %d", base, status)
		}
		if !bytes.Equal(viaRouter, direct) {
			t.Fatalf("match via router differs from direct match on %s:\n%s\nvs\n%s", base, viaRouter, direct)
		}
	}
}

// TestRouterRequiresExplicitName: auto-assigned names would diverge
// across replicas, so the router refuses them up front.
func TestRouterRequiresExplicitName(t *testing.T) {
	tc := newTestCluster(t, 2, cluster.RouterConfig{})
	status, _, body := postJSON(t, tc.front.URL+"/v1/graphs", map[string]any{
		"dataset": "D2", "seed": 1, "scale": 0.02,
	})
	if status != http.StatusBadRequest {
		t.Fatalf("nameless write: status %d (body %s), want 400", status, body)
	}
}

// TestRouterFailsOverDeadBackend: with one backend gone, writes and
// reads for graphs it hosted keep succeeding via the surviving
// replica, the breaker opens, and /v1/cluster reports it.
func TestRouterFailsOverDeadBackend(t *testing.T) {
	tc := newTestCluster(t, 3, cluster.RouterConfig{
		Replicas:         2,
		ProbeInterval:    25 * time.Millisecond,
		ProbeTimeout:     250 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  200 * time.Millisecond,
	})
	generateVia(t, tc.front.URL, "alpha")
	replicas := cluster.Replicas("alpha", tc.bases, 2)

	// Kill alpha's owner.
	for i, base := range tc.bases {
		if base == replicas[0] {
			tc.backends[i].Close()
		}
	}
	// Reads fail over immediately — no waiting for the breaker.
	payload := map[string]any{"graph": "alpha", "algorithms": []string{"UMC"}, "threshold": 0.5}
	status, _, body := postJSON(t, tc.front.URL+"/v1/match", payload)
	if status != http.StatusOK {
		t.Fatalf("match with dead owner: status %d (body %s)", status, body)
	}
	// Writes keep landing on the surviving replica.
	status, _, body = postJSON(t, tc.front.URL+"/v1/graphs", map[string]any{
		"name": "alpha", "dataset": "D2", "seed": 43, "scale": 0.02,
	})
	if status != http.StatusCreated {
		t.Fatalf("write with dead owner: status %d (body %s)", status, body)
	}

	// The prober opens the dead backend's breaker.
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st struct {
			Backends []struct {
				URL     string `json:"url"`
				Ready   bool   `json:"ready"`
				Breaker string `json:"breaker"`
				Opens   int64  `json:"breaker_opens_total"`
			} `json:"backends"`
			HealthyBackends int `json:"healthy_backends"`
		}
		if code := getJSON(t, tc.front.URL+"/v1/cluster", &st); code != http.StatusOK {
			t.Fatalf("cluster state: status %d", code)
		}
		var dead *struct {
			URL     string `json:"url"`
			Ready   bool   `json:"ready"`
			Breaker string `json:"breaker"`
			Opens   int64  `json:"breaker_opens_total"`
		}
		for i := range st.Backends {
			if st.Backends[i].URL == replicas[0] {
				dead = &st.Backends[i]
			}
		}
		if dead == nil {
			t.Fatal("dead backend missing from cluster state")
		}
		if !dead.Ready && dead.Opens >= 1 {
			if st.HealthyBackends != 2 {
				t.Fatalf("healthy_backends = %d, want 2", st.HealthyBackends)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("breaker never opened for dead backend: %+v", dead)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRouterHedgesSlowReplica: a replica stalled far past the hedge
// delay loses to the hedged duplicate; the router's counters show the
// hedge and the client sees a fast, correct response.
func TestRouterHedgesSlowReplica(t *testing.T) {
	tc := newTestCluster(t, 3, cluster.RouterConfig{
		Replicas:   2,
		HedgeAfter: 30 * time.Millisecond,
	})
	generateVia(t, tc.front.URL, "alpha")
	// Warm the reference threshold on both replicas so every later
	// response — whoever serves it — reports the same cache state and
	// stays byte-identical.
	payload := map[string]any{"graph": "alpha", "algorithms": []string{"UMC"}, "threshold": 0.5}
	for _, base := range cluster.Replicas("alpha", tc.bases, 2) {
		if status, _, body := postJSON(t, base+"/v1/match", payload); status != http.StatusOK {
			t.Fatalf("warmup on %s: status %d (body %s)", base, status, body)
		}
	}
	status, _, ref := postJSON(t, tc.front.URL+"/v1/match", payload)
	if status != http.StatusOK {
		t.Fatalf("reference match: %d", status)
	}

	// Stall matches on the owner only; the hedge lands on the second
	// replica. Unique threshold per call defeats both servers' result
	// caches... but the owner's cache already holds threshold 0.5, so
	// stall + a fresh threshold forces computation under the fault.
	owner := cluster.Replicas("alpha", tc.bases, 2)[0]
	for i, base := range tc.bases {
		if base == owner {
			tc.faults[i].Set("match", 2*time.Second, nil, -1)
		}
	}
	slow := map[string]any{"graph": "alpha", "algorithms": []string{"UMC"}, "threshold": 0.45}
	start := time.Now()
	status, _, body := postJSON(t, tc.front.URL+"/v1/match", slow)
	elapsed := time.Since(start)
	if status != http.StatusOK {
		t.Fatalf("hedged match: status %d (body %s)", status, body)
	}
	if elapsed > time.Second {
		t.Fatalf("hedged match took %v, stall is 2s — hedge did not win", elapsed)
	}
	var m struct {
		HedgesTotal    int64 `json:"hedges_total"`
		HedgeWinsTotal int64 `json:"hedge_wins_total"`
	}
	if code := getJSON(t, tc.front.URL+"/metrics", &m); code != http.StatusOK {
		t.Fatalf("metrics: %d", code)
	}
	if m.HedgesTotal < 1 || m.HedgeWinsTotal < 1 {
		t.Fatalf("hedges=%d wins=%d, want both >= 1", m.HedgesTotal, m.HedgeWinsTotal)
	}
	// And the quiet-time response is still byte-identical for the
	// original threshold (served by the healthy replica).
	status, _, again := postJSON(t, tc.front.URL+"/v1/match", payload)
	if status != http.StatusOK || !bytes.Equal(again, ref) {
		t.Fatalf("post-stall match: status %d, identical=%v", status, bytes.Equal(again, ref))
	}
}

// TestRouterReadyz: ready with backends up; not ready once all are
// down and probed.
func TestRouterReadyz(t *testing.T) {
	tc := newTestCluster(t, 2, cluster.RouterConfig{
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     200 * time.Millisecond,
		BreakerThreshold: 2,
	})
	if code := getJSON(t, tc.front.URL+"/readyz", nil); code != http.StatusOK {
		t.Fatalf("readyz with live backends: %d", code)
	}
	for _, ts := range tc.backends {
		ts.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := getJSON(t, tc.front.URL+"/readyz", nil); code == http.StatusServiceUnavailable {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("router still ready with every backend dead")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestRouterSweepRouting: sweeps route to a replica holding the graph
// and are retrievable through the router's id fan-out.
func TestRouterSweepRouting(t *testing.T) {
	tc := newTestCluster(t, 3, cluster.RouterConfig{Replicas: 2})
	generateVia(t, tc.front.URL, "alpha")
	status, _, body := postJSON(t, tc.front.URL+"/v1/sweeps", map[string]any{
		"graph": "alpha", "algorithms": []string{"UMC"}, "repeats": 1,
	})
	if status != http.StatusAccepted {
		t.Fatalf("sweep create: status %d (body %s)", status, body)
	}
	var sw struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sw); err != nil || sw.ID == "" {
		t.Fatalf("sweep reply %s: %v", body, err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var got struct {
			State string `json:"state"`
		}
		code := getJSON(t, tc.front.URL+"/v1/sweeps/"+sw.ID, &got)
		if code != http.StatusOK {
			t.Fatalf("sweep get: status %d", code)
		}
		if got.State == "done" {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck in state %q", got.State)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
