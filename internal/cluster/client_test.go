package cluster_test

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ccer-go/ccer/internal/cluster"
)

// flakyBackend answers failStatus for the first fail requests to each
// path, then delegates to ok.
type flakyBackend struct {
	failStatus int
	fails      atomic.Int64
	hits       atomic.Int64
	ok         http.HandlerFunc
	retryAfter string
}

func (f *flakyBackend) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	f.hits.Add(1)
	if f.fails.Load() > 0 {
		f.fails.Add(-1)
		if f.retryAfter != "" {
			w.Header().Set("Retry-After", f.retryAfter)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(f.failStatus)
		_, _ = w.Write([]byte(`{"error":"injected failure","reason":"queue_full"}`))
		return
	}
	f.ok(w, r)
}

func okMatch(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write([]byte(`{"graph":"g","version":1,"threshold":0.5,"seed":1,"results":[]}`))
}

// TestClientRetriesReadOn5xx: a read retries raw 5xx under backoff and
// succeeds once the backend recovers.
func TestClientRetriesReadOn5xx(t *testing.T) {
	fb := &flakyBackend{failStatus: http.StatusInternalServerError, ok: okMatch}
	fb.fails.Store(2)
	ts := httptest.NewServer(fb)
	defer ts.Close()
	c := &cluster.Client{Base: ts.URL, RetryBase: time.Millisecond, RetryCap: 5 * time.Millisecond}
	resp, err := c.Match(context.Background(), cluster.MatchRequest{Graph: "g"})
	if err != nil {
		t.Fatalf("match after transient 500s: %v", err)
	}
	if resp.Graph != "g" || fb.hits.Load() != 3 {
		t.Fatalf("resp %+v after %d hits, want success on 3rd", resp, fb.hits.Load())
	}
}

// TestClientDoesNotRetryMutationOn5xx: a generate that died mid-flight
// (raw 500) is surfaced, not re-sent.
func TestClientDoesNotRetryMutationOn5xx(t *testing.T) {
	fb := &flakyBackend{failStatus: http.StatusInternalServerError, ok: okMatch}
	fb.fails.Store(1)
	ts := httptest.NewServer(fb)
	defer ts.Close()
	c := &cluster.Client{Base: ts.URL, RetryBase: time.Millisecond}
	_, err := c.Generate(context.Background(), cluster.GenerateRequest{Name: "g", Dataset: "D2"})
	var apiErr *cluster.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusInternalServerError {
		t.Fatalf("err = %v, want APIError 500", err)
	}
	if fb.hits.Load() != 1 {
		t.Fatalf("mutation hit the backend %d times, want exactly 1", fb.hits.Load())
	}
}

// TestClientRetriesMutationOnShed: a 503 shed means the server refused
// before doing any work, so even a mutation retries it.
func TestClientRetriesMutationOnShed(t *testing.T) {
	fb := &flakyBackend{failStatus: http.StatusServiceUnavailable, ok: func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusCreated)
		_, _ = w.Write([]byte(`{"name":"g","version":1}`))
	}}
	fb.fails.Store(2)
	ts := httptest.NewServer(fb)
	defer ts.Close()
	c := &cluster.Client{Base: ts.URL, RetryBase: time.Millisecond, RetryCap: 5 * time.Millisecond}
	info, err := c.Generate(context.Background(), cluster.GenerateRequest{Name: "g", Dataset: "D2"})
	if err != nil {
		t.Fatalf("generate after sheds: %v", err)
	}
	if info.Name != "g" || fb.hits.Load() != 3 {
		t.Fatalf("info %+v after %d hits", info, fb.hits.Load())
	}
}

// TestClientHonorsRetryAfterWithinDeadline: the server's Retry-After
// (1s — longer than the caller's budget) is respected, which means the
// call gives up at its deadline instead of hammering sooner with
// computed backoff. The parsed hint must surface on the error.
func TestClientHonorsRetryAfterWithinDeadline(t *testing.T) {
	fb := &flakyBackend{failStatus: http.StatusServiceUnavailable, retryAfter: "1", ok: okMatch}
	fb.fails.Store(100)
	ts := httptest.NewServer(fb)
	defer ts.Close()
	c := &cluster.Client{Base: ts.URL, RetryBase: time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Match(ctx, cluster.MatchRequest{Graph: "g"})
	elapsed := time.Since(start)
	var apiErr *cluster.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want APIError", err)
	}
	if apiErr.RetryAfter != time.Second || apiErr.Reason != "queue_full" {
		t.Fatalf("APIError = %+v, want RetryAfter=1s reason=queue_full", apiErr)
	}
	// Exactly one attempt: the 1s Retry-After exceeded the 200ms budget,
	// so the client waited out its deadline rather than retrying early.
	if fb.hits.Load() != 1 {
		t.Fatalf("backend hit %d times within a 200ms budget against a 1s Retry-After, want 1", fb.hits.Load())
	}
	if elapsed > time.Second {
		t.Fatalf("call outlived its deadline: %v", elapsed)
	}
}

// TestClientRetriesConnRefused: a refused connection provably never
// reached a server, so even mutations retry it — the crashed-backend
// recovery path.
func TestClientRetriesConnRefused(t *testing.T) {
	// Reserve an address with nothing listening.
	ts := httptest.NewServer(http.HandlerFunc(okMatch))
	base := ts.URL
	ts.Close()
	c := &cluster.Client{Base: base, MaxRetries: 2, RetryBase: time.Millisecond, RetryCap: 2 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	start := time.Now()
	_, err := c.Generate(ctx, cluster.GenerateRequest{Name: "g", Dataset: "D2"})
	if err == nil {
		t.Fatal("generate against a dead address succeeded")
	}
	// 3 attempts with ~1-3ms backoffs: fast failure, not a hang.
	if time.Since(start) > time.Second {
		t.Fatalf("refused-connection retries took %v", time.Since(start))
	}
}
