package cluster_test

// In-process tests for the anti-entropy subsystem and live elasticity:
// repair convergence of a planted divergence, tombstone propagation,
// membership changes migrating exactly the names whose replica set
// changed, the honest no_replica verdict when a whole placement set is
// down, and the decorrelated probe stagger. The chaos harness
// (chaos_test.go) re-proves repair and elasticity against real killed
// processes; these tests pin the mechanics fast enough for -short runs.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"
	"time"

	"github.com/ccer-go/ccer/internal/cluster"
	"github.com/ccer-go/ccer/internal/graph"
	"github.com/ccer-go/ccer/internal/serve"
)

// repairStateJSON is the anti-entropy block of GET /v1/cluster.
type repairStateJSON struct {
	Repair struct {
		Enabled        bool           `json:"enabled"`
		Scans          int64          `json:"scans_total"`
		GraphsRepaired int64          `json:"graphs_repaired_total"`
		Bytes          int64          `json:"bytes_total"`
		Failures       int64          `json:"failures_total"`
		Diverged       map[string]int `json:"diverged"`
	} `json:"repair"`
}

// syncView is a backend's ?fields=sync listing, keyed by name.
func syncView(t *testing.T, base string) map[string]struct {
	Version  int64
	Checksum string
} {
	t.Helper()
	var listing struct {
		Graphs []struct {
			Name     string `json:"name"`
			Version  int64  `json:"version"`
			Checksum string `json:"checksum"`
		} `json:"graphs"`
	}
	if status := getJSON(t, base+"/v1/graphs?fields=sync", &listing); status != http.StatusOK {
		t.Fatalf("sync listing from %s: status %d", base, status)
	}
	out := map[string]struct {
		Version  int64
		Checksum string
	}{}
	for _, g := range listing.Graphs {
		out[g.Name] = struct {
			Version  int64
			Checksum string
		}{g.Version, g.Checksum}
	}
	return out
}

// testEdgeList builds a small deterministic graph and returns its wire
// bytes plus checksum (hex, as listings report it).
func testEdgeList(t *testing.T, seed int64) ([]byte, string) {
	t.Helper()
	b := graph.NewBuilder(4, 4)
	for i := int32(0); i < 4; i++ {
		b.Add(i, (i+int32(seed))%4, 0.5+float64(i)/10)
	}
	g := b.MustBuild()
	var wire bytes.Buffer
	if err := g.WriteEdgeList(&wire); err != nil {
		t.Fatal(err)
	}
	return wire.Bytes(), fmt.Sprintf("%016x", g.Checksum())
}

// uploadEdgeList stores wire under name on base (router or backend).
func uploadEdgeList(t *testing.T, base, name string, wire []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/graphs?name="+url.QueryEscape(name), "text/plain", bytes.NewReader(wire))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload %s to %s: status %d", name, base, resp.StatusCode)
	}
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(15 * time.Millisecond)
	}
	t.Fatalf("%s: not reached within %v", what, timeout)
}

// TestRouterRepairConvergesMissingReplica: a graph planted on only one
// of its placement replicas (the divergence a fanned write leaves when
// a replica is down) is streamed to the stale replica by the repair
// loop — same version, same checksum — and the scan leaves the
// divergence gauge empty and the repair counters advanced.
func TestRouterRepairConvergesMissingReplica(t *testing.T) {
	tc := newTestCluster(t, 3, cluster.RouterConfig{
		Replicas:       2,
		ProbeInterval:  25 * time.Millisecond,
		RepairInterval: 100 * time.Millisecond,
	})
	wire, checksum := testEdgeList(t, 1)
	placement := cluster.Replicas("solo", tc.bases, 2)
	uploadEdgeList(t, placement[0], "solo", wire) // bypass the router's fan

	waitFor(t, 5*time.Second, "stale replica repaired", func() bool {
		have, ok := syncView(t, placement[1])["solo"]
		return ok && have.Version == 1 && have.Checksum == checksum
	})
	// Only the placement replicas hold it; repair does not spray copies.
	inPlacement := map[string]bool{placement[0]: true, placement[1]: true}
	for _, base := range tc.bases {
		if _, held := syncView(t, base)["solo"]; held != inPlacement[base] {
			t.Fatalf("backend %s holds solo: %v, want %v", base, held, inPlacement[base])
		}
	}
	var cs repairStateJSON
	getJSON(t, tc.front.URL+"/v1/cluster", &cs)
	if !cs.Repair.Enabled || cs.Repair.Scans < 1 || cs.Repair.GraphsRepaired < 1 || cs.Repair.Bytes < 1 {
		t.Fatalf("repair state after convergence = %+v", cs.Repair)
	}
	waitFor(t, 2*time.Second, "divergence gauge drained", func() bool {
		var cs repairStateJSON
		getJSON(t, tc.front.URL+"/v1/cluster", &cs)
		return len(cs.Repair.Diverged) == 0
	})
}

// TestRouterRepairPropagatesDelete: a delete applied on one replica
// (its peer missed it) propagates as a tombstone — delete wins the
// version tie — instead of the stale peer resurrecting the graph.
func TestRouterRepairPropagatesDelete(t *testing.T) {
	tc := newTestCluster(t, 3, cluster.RouterConfig{
		Replicas:       2,
		ProbeInterval:  25 * time.Millisecond,
		RepairInterval: 100 * time.Millisecond,
	})
	wire, _ := testEdgeList(t, 2)
	uploadEdgeList(t, tc.front.URL, "doomed", wire)
	placement := cluster.Replicas("doomed", tc.bases, 2)

	req, err := http.NewRequest(http.MethodDelete, placement[0]+"/v1/graphs/doomed", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("direct delete: status %d", resp.StatusCode)
	}

	// The admin kick endpoint answers 202 and the tombstone wins on the
	// peer within the repair pace.
	if status, _, body := postJSON(t, tc.front.URL+"/v1/cluster/repair", map[string]any{}); status != http.StatusAccepted {
		t.Fatalf("repair kick: status %d (body %s)", status, body)
	}
	waitFor(t, 5*time.Second, "delete propagated to the peer replica", func() bool {
		_, held := syncView(t, placement[1])["doomed"]
		return !held
	})
}

// newExtraBackend spawns one more real in-process erserve node, for
// elasticity tests that grow the cluster beyond newTestCluster's set.
func newExtraBackend(t *testing.T) string {
	t.Helper()
	srv, err := serve.New(serve.Config{})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Close(ctx)
	})
	return ts.URL
}

// TestRouterElasticityMigratesOnlyMovedNames: adding a backend through
// the admin endpoint migrates exactly the names whose rendezvous
// replica set now includes the newcomer; removing one re-replicates
// exactly the names it hosted. Reads through the router stay correct
// throughout.
func TestRouterElasticityMigratesOnlyMovedNames(t *testing.T) {
	tc := newTestCluster(t, 3, cluster.RouterConfig{
		Replicas:       2,
		ProbeInterval:  25 * time.Millisecond,
		RepairInterval: 100 * time.Millisecond,
	})
	names := make([]string, 6)
	checksums := map[string]string{}
	for i := range names {
		names[i] = fmt.Sprintf("elastic-%d", i)
		wire, sum := testEdgeList(t, int64(10+i))
		uploadEdgeList(t, tc.front.URL, names[i], wire)
		checksums[names[i]] = sum
	}

	// --- Grow: the newcomer must end up holding exactly the names whose
	// new placement includes it.
	extra := newExtraBackend(t)
	if status, _, body := postJSON(t, tc.front.URL+"/v1/cluster/backends", map[string]any{"url": extra}); status != http.StatusOK {
		t.Fatalf("backend add: status %d (body %s)", status, body)
	}
	if status, _, _ := postJSON(t, tc.front.URL+"/v1/cluster/backends", map[string]any{"url": extra}); status != http.StatusConflict {
		t.Fatalf("duplicate backend add: status %d, want 409", status)
	}
	grown := append(append([]string{}, tc.bases...), extra)
	wantOnExtra := map[string]bool{}
	for _, n := range names {
		for _, base := range cluster.Replicas(n, grown, 2) {
			if base == extra {
				wantOnExtra[n] = true
			}
		}
	}
	if len(wantOnExtra) == 0 || len(wantOnExtra) == len(names) {
		t.Fatalf("degenerate placement: %d of %d names moved to the newcomer", len(wantOnExtra), len(names))
	}
	waitFor(t, 5*time.Second, "newcomer caught up", func() bool {
		view := syncView(t, extra)
		if len(view) != len(wantOnExtra) {
			return false
		}
		for n := range wantOnExtra {
			if have, ok := view[n]; !ok || have.Checksum != checksums[n] {
				return false
			}
		}
		return true
	})

	// --- Shrink: drop an original backend; every name must be held by
	// its full new placement set, sourced from surviving copies.
	victim := tc.bases[0]
	req, err := http.NewRequest(http.MethodDelete, tc.front.URL+"/v1/cluster/backends?url="+url.QueryEscape(victim), nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("backend remove: status %d", resp.StatusCode)
	}
	shrunk := make([]string, 0, 3)
	for _, base := range grown {
		if base != victim {
			shrunk = append(shrunk, base)
		}
	}
	waitFor(t, 5*time.Second, "placements re-replicated after shrink", func() bool {
		views := map[string]map[string]struct {
			Version  int64
			Checksum string
		}{}
		for _, base := range shrunk {
			views[base] = syncView(t, base)
		}
		for _, n := range names {
			for _, base := range cluster.Replicas(n, shrunk, 2) {
				if have, ok := views[base][n]; !ok || have.Checksum != checksums[n] {
					return false
				}
			}
		}
		return true
	})

	// Reads through the router resolve every name after both changes.
	for _, n := range names {
		var info struct {
			Checksum string `json:"checksum"`
		}
		if status := getJSON(t, tc.front.URL+"/v1/graphs/"+n, &info); status != http.StatusOK || info.Checksum != checksums[n] {
			t.Fatalf("routed read of %s after elasticity: status %d checksum %s, want %s", n, status, info.Checksum, checksums[n])
		}
	}
}

// TestRouterNoReplicaWhenPlacementSetDown: when every replica of a
// graph's placement set is unhealthy, the router answers an honest
// 503 with reason no_replica and a Retry-After — not a misleading 404
// (a healthy non-replica genuinely does not have the graph) and not a
// raw backend error.
func TestRouterNoReplicaWhenPlacementSetDown(t *testing.T) {
	tc := newTestCluster(t, 3, cluster.RouterConfig{
		Replicas:         2,
		ProbeInterval:    20 * time.Millisecond,
		ProbeTimeout:     200 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  10 * time.Second, // stay open for the test's span
		RepairInterval:   -1,
	})
	generateVia(t, tc.front.URL, "alpha")
	placement := map[string]bool{}
	for _, base := range cluster.Replicas("alpha", tc.bases, 2) {
		placement[base] = true
	}
	for i, base := range tc.bases {
		if placement[base] {
			tc.backends[i].Close()
		}
	}

	// Reads flip to no_replica once the probes register the outage.
	waitFor(t, 5*time.Second, "read answered 503 no_replica", func() bool {
		resp, err := http.Get(tc.front.URL + "/v1/graphs/alpha")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var body struct {
			Reason string `json:"reason"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			return false
		}
		return resp.StatusCode == http.StatusServiceUnavailable &&
			body.Reason == "no_replica" && resp.Header.Get("Retry-After") != ""
	})

	// Writes for the same placement key get the same honest verdict.
	status, hdr, body := postJSON(t, tc.front.URL+"/v1/graphs", map[string]any{
		"name": "alpha", "dataset": "D2", "seed": 42, "scale": 0.02,
	})
	var werr struct {
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(body, &werr); err != nil {
		t.Fatalf("write error body %q: %v", body, err)
	}
	if status != http.StatusServiceUnavailable || werr.Reason != "no_replica" || hdr.Get("Retry-After") == "" {
		t.Fatalf("write with placement set down: status %d reason %q retry-after %q, want 503 no_replica",
			status, werr.Reason, hdr.Get("Retry-After"))
	}

	// The surviving non-replica backend keeps the router's own health
	// endpoints honest: degraded, not dead.
	var h struct {
		Healthy int `json:"healthy_backends"`
	}
	getJSON(t, tc.front.URL+"/v1/cluster", &h)
	if h.Healthy != 1 {
		t.Fatalf("healthy_backends = %d, want 1", h.Healthy)
	}
}

// TestRouterProbeStagger: each backend's prober runs on its own
// decorrelated-jitter pace, so probes neither fire in lockstep across
// backends nor on a fixed metronome per backend — the synchronized
// probe burst would be a thundering herd at exactly the moment a
// struggling cluster least needs one.
func TestRouterProbeStagger(t *testing.T) {
	const n, interval = 3, 60 * time.Millisecond
	var mu sync.Mutex
	hits := make([][]time.Time, n)
	var bases []string
	for i := 0; i < n; i++ {
		i := i
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/readyz" {
				mu.Lock()
				hits[i] = append(hits[i], time.Now())
				mu.Unlock()
			}
			w.WriteHeader(http.StatusOK)
		}))
		t.Cleanup(ts.Close)
		bases = append(bases, ts.URL)
	}
	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Backends:       bases,
		ProbeInterval:  interval,
		RepairInterval: -1,
		DisableObs:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(12 * interval)
	rt.Close()

	mu.Lock()
	defer mu.Unlock()
	for i, stamps := range hits {
		if len(stamps) < 6 {
			t.Fatalf("backend %d: only %d probes in %v", i, len(stamps), 12*interval)
		}
		gaps := make([]time.Duration, 0, len(stamps)-1)
		minGap, maxGap, total := time.Duration(1<<62), time.Duration(0), time.Duration(0)
		for j := 1; j < len(stamps); j++ {
			gap := stamps[j].Sub(stamps[j-1])
			gaps = append(gaps, gap)
			if gap < minGap {
				minGap = gap
			}
			if gap > maxGap {
				maxGap = gap
			}
			total += gap
		}
		// The pace draws uniformly from [interval/2, 3*interval/2]: no
		// gap undershoots the jitter floor (minus scheduling slack), the
		// mean stays near the nominal interval, and the gaps actually
		// vary — a fixed metronome (all gaps equal) fails here.
		if minGap < interval/2-15*time.Millisecond {
			t.Fatalf("backend %d: gap %v below the jitter floor %v", i, minGap, interval/2)
		}
		if mean := total / time.Duration(len(gaps)); mean > 5*interval/2 {
			t.Fatalf("backend %d: mean probe gap %v, want ~%v", i, mean, interval)
		}
		if maxGap-minGap < 5*time.Millisecond {
			t.Fatalf("backend %d: probe gaps %v show no jitter (spread %v)", i, gaps, maxGap-minGap)
		}
	}
}
