package cluster

import (
	"context"
	"errors"
	"net/http"
	"sync/atomic"
	"time"

	"github.com/ccer-go/ccer/internal/resilience"
)

// backend is one erserve node as the router sees it: a retry-free
// client (the router does its own cross-backend failover, so each node
// gets exactly one attempt per routing decision) plus the node's health
// state — the last readiness-probe verdict and a circuit breaker fed by
// both probe outcomes and passive request outcomes.
type backend struct {
	base    string
	client  *Client
	breaker *resilience.Breaker
	// ready is the last /readyz probe verdict. It starts true so a
	// router fronting healthy backends serves immediately; the first
	// probe round corrects it within ProbeInterval if not.
	ready atomic.Bool
	// probes and probeFailures count active health checks.
	probes        atomic.Int64
	probeFailures atomic.Int64
	// stopProbe cancels the backend's dedicated prober goroutine; set by
	// Router.startProber, invoked on RemoveBackend.
	stopProbe context.CancelFunc
}

func newBackend(base string, threshold int, cooldown time.Duration) *backend {
	b := &backend{
		base:    base,
		client:  &Client{Base: base, MaxRetries: -1},
		breaker: &resilience.Breaker{Threshold: threshold, Cooldown: cooldown},
	}
	b.ready.Store(true)
	return b
}

// Healthy reports whether the router should route new work here: the
// last probe said ready and the breaker is not refusing traffic. A
// half-open breaker reports Ready, so a cooled-down backend is eligible
// again — the next probe or request is its trial.
func (b *backend) Healthy() bool {
	return b.ready.Load() && b.breaker.Ready()
}

// observe feeds one request outcome into the breaker. Cancellation of
// our own making — a hedge loser, an abandoned failover branch — is
// not the backend's failure and is dropped on the floor; everything
// else counts. A success also flips ready on: a backend answering real
// traffic is serving no matter what a stale probe said.
func (b *backend) observe(err error) {
	switch {
	case err == nil:
		b.breaker.Success()
		b.ready.Store(true)
	case errors.Is(err, context.Canceled):
		// Our cancel, not their fault.
	default:
		b.breaker.Failure()
	}
}

// probe runs one active health check: GET /readyz under timeout. The
// verdict drives both the ready flag and the breaker — which is what
// lets a recovered backend rejoin without router restarts: once the
// breaker's cooldown elapses it goes half-open, the next probe is the
// trial request, and a 200 closes the circuit. It returns the backend's
// routability after the probe, so the prober can spot the
// unhealthy→healthy rejoin edge and trigger an immediate repair scan.
func (b *backend) probe(ctx context.Context, timeout time.Duration) bool {
	// A non-closed breaker makes this probe its trial request: Allow
	// consumes the half-open slot once the cooldown elapses, so the
	// probe's outcome is what closes or re-opens the circuit. (Success
	// while merely open is defined as a no-op straggler, so without
	// arming the slot here a crashed-and-recovered backend could never
	// rejoin.) While the circuit is still cooling, or another trial is
	// already in flight, there is nothing to learn — skip the round.
	if b.breaker.State() != resilience.BreakerClosed && !b.breaker.Allow() {
		return b.Healthy()
	}
	b.probes.Add(1)
	pctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	err := b.client.Ready(pctx)
	if err == nil {
		b.ready.Store(true)
		b.breaker.Success()
		return b.Healthy()
	}
	b.probeFailures.Add(1)
	b.ready.Store(false)
	// A shutting-down parent cancelling the prober is not a verdict.
	if !errors.Is(err, context.Canceled) {
		b.breaker.Failure()
	}
	return false
}

// BackendState is the debug view of one backend, served on
// GET /v1/cluster and summarized on /metrics.
type BackendState struct {
	URL           string `json:"url"`
	Ready         bool   `json:"ready"`
	Breaker       string `json:"breaker"`
	Opens         int64  `json:"breaker_opens_total"`
	HalfOpens     int64  `json:"breaker_half_opens_total"`
	Closes        int64  `json:"breaker_closes_total"`
	Probes        int64  `json:"probes_total"`
	ProbeFailures int64  `json:"probe_failures_total"`
}

func (b *backend) state() BackendState {
	opens, halfOpens, closes := b.breaker.Counts()
	return BackendState{
		URL:           b.base,
		Ready:         b.ready.Load(),
		Breaker:       b.breaker.State().String(),
		Opens:         opens,
		HalfOpens:     halfOpens,
		Closes:        closes,
		Probes:        b.probes.Load(),
		ProbeFailures: b.probeFailures.Load(),
	}
}

// statusOf classifies a reply for breaker accounting: a 5xx that is not
// a well-formed shed counts as a failure (the node is malfunctioning),
// while sheds, 4xx and 2xx count as the node doing its job. 503 sheds
// carry Retry-After; they mean "healthy but full", and opening the
// breaker on them would turn overload into outage.
func statusOf(reply *Reply) error {
	if reply.Status >= 500 && reply.Status != http.StatusServiceUnavailable {
		return errors.New("cluster: backend 5xx")
	}
	return nil
}
