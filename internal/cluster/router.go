package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"github.com/ccer-go/ccer/internal/obs"
	"github.com/ccer-go/ccer/internal/resilience"
)

// RouterConfig configures a cluster router.
type RouterConfig struct {
	// Backends are the erserve base URLs fronted by this router.
	Backends []string
	// Replicas is how many backends host each graph (rendezvous
	// placement); 0 means 2, clamped to len(Backends).
	Replicas int
	// ProbeInterval is the /readyz probing period; 0 means 250ms.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe; 0 means 1s. A hung backend (e.g.
	// SIGSTOP) fails probes by timeout, which is what opens its breaker
	// — data-plane requests to it are cancelled by hedge winners and
	// deliberately carry no breaker penalty.
	ProbeTimeout time.Duration
	// BreakerThreshold is the consecutive failures that open a
	// backend's circuit; 0 means 3.
	BreakerThreshold int
	// BreakerCooldown is how long an open circuit waits before the
	// half-open trial; 0 means 1s.
	BreakerCooldown time.Duration
	// HedgeAfter is how long a match read waits before a second
	// request is hedged to another replica. 0 means adaptive: the
	// router's observed p95 read latency (with a 25ms floor), falling
	// back to 100ms until enough reads have been observed.
	HedgeAfter time.Duration
	// RepairInterval paces the anti-entropy repair loop (jittered to
	// [interval/2, 3*interval/2] per scan); 0 means 2s, negative
	// disables repair entirely. Fan misses, backend rejoins and
	// elasticity changes also kick an immediate scan.
	RepairInterval time.Duration
	// RepairConcurrency bounds concurrent per-graph repair streams
	// within one scan; 0 means 4.
	RepairConcurrency int
	// DisableObs disables the metrics registry.
	DisableObs bool
}

func (c *RouterConfig) withDefaults() RouterConfig {
	out := *c
	if out.Replicas <= 0 {
		out.Replicas = 2
	}
	// Replicas is deliberately NOT clamped to len(Backends) here: the
	// backend set is live (AddBackend/RemoveBackend), so the clamp
	// happens per placement in Replicas(), against the set of the
	// moment.
	if out.ProbeInterval <= 0 {
		out.ProbeInterval = 250 * time.Millisecond
	}
	if out.ProbeTimeout <= 0 {
		out.ProbeTimeout = time.Second
	}
	if out.BreakerThreshold <= 0 {
		out.BreakerThreshold = 3
	}
	if out.BreakerCooldown <= 0 {
		out.BreakerCooldown = time.Second
	}
	if out.RepairInterval == 0 {
		out.RepairInterval = 2 * time.Second
	}
	if out.RepairConcurrency <= 0 {
		out.RepairConcurrency = 4
	}
	return out
}

// Router fronts a set of erserve nodes as one replicated service.
// Writes fan to every replica of the graph's placement key, reads are
// served by any healthy replica with hedging for slow ones, and
// per-backend health (active /readyz probes + passive request
// outcomes) feeds circuit breakers so a dead backend stops receiving
// traffic within a probe interval and rejoins via a half-open trial
// when it recovers.
type Router struct {
	cfg RouterConfig
	// mu guards the live backend set. bases is copy-on-write: readers
	// snapshot the slice header under RLock and iterate lock-free, so
	// AddBackend/RemoveBackend never stall the data plane.
	mu       sync.RWMutex
	bases    []string
	backends map[string]*backend
	mux      *http.ServeMux
	obs      *obs.Registry

	requests  *obs.Counter
	hedges    *obs.Counter
	hedgeWins *obs.Counter
	failovers *obs.Counter
	fanMisses *obs.Counter
	readDur   *obs.Histogram

	// Anti-entropy state (repair.go).
	repairScans    *obs.Counter
	repairGraphs   *obs.Counter
	repairBytes    *obs.Counter
	repairFailures *obs.Counter
	repairKick     chan struct{}
	divergedMu     sync.Mutex
	diverged       map[string]int // graph -> stale replicas, last scan

	bgCtx    context.Context
	bgCancel context.CancelFunc
	bgWG     sync.WaitGroup
}

// NewRouter returns a started router (its probers, and the repair loop
// unless disabled, are running).
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("cluster: no backends")
	}
	rt := &Router{
		cfg:        cfg,
		bases:      append([]string(nil), cfg.Backends...),
		backends:   make(map[string]*backend, len(cfg.Backends)),
		mux:        http.NewServeMux(),
		repairKick: make(chan struct{}, 1),
		diverged:   map[string]int{},
	}
	for _, base := range rt.bases {
		if rt.backends[base] != nil {
			return nil, fmt.Errorf("cluster: duplicate backend %s", base)
		}
		rt.backends[base] = newBackend(base, cfg.BreakerThreshold, cfg.BreakerCooldown)
	}
	rt.initObs()
	rt.routes()
	rt.bgCtx, rt.bgCancel = context.WithCancel(context.Background())
	for _, base := range rt.bases {
		rt.startProber(rt.backends[base])
	}
	if cfg.RepairInterval > 0 {
		rt.bgWG.Add(1)
		go rt.repairLoop(rt.bgCtx)
	}
	return rt, nil
}

// Close stops the probers and the repair loop.
func (rt *Router) Close() {
	rt.bgCancel()
	rt.bgWG.Wait()
}

// snapshot returns the backend set of the moment: the copy-on-write
// bases slice and the matching *backend list, in the same order.
func (rt *Router) snapshot() ([]string, []*backend) {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	bases := rt.bases
	bs := make([]*backend, len(bases))
	for i, base := range bases {
		bs[i] = rt.backends[base]
	}
	return bases, bs
}

// AddBackend grows the live backend set: the new node starts being
// probed immediately, rendezvous placement recomputes implicitly
// (placement is a pure function of the set), and a repair scan is
// kicked to migrate the names whose replica set now includes the
// newcomer — HRW guarantees those are the only ones that move.
func (rt *Router) AddBackend(base string) error {
	if base == "" {
		return fmt.Errorf("cluster: empty backend URL")
	}
	rt.mu.Lock()
	if rt.backends[base] != nil {
		rt.mu.Unlock()
		return fmt.Errorf("cluster: backend %s already present", base)
	}
	b := newBackend(base, rt.cfg.BreakerThreshold, rt.cfg.BreakerCooldown)
	next := make([]string, len(rt.bases)+1)
	copy(next, rt.bases)
	next[len(rt.bases)] = base
	rt.bases = next
	rt.backends[base] = b
	rt.mu.Unlock()
	rt.startProber(b)
	rt.kickRepair()
	return nil
}

// RemoveBackend shrinks the live backend set. The node's prober stops,
// placement recomputes implicitly, and a repair scan is kicked so the
// names that counted the leaver as a replica re-replicate onto their
// new set from the surviving copies. Removing the last backend is
// refused — a router fronting nothing can only error.
func (rt *Router) RemoveBackend(base string) error {
	rt.mu.Lock()
	b := rt.backends[base]
	if b == nil {
		rt.mu.Unlock()
		return fmt.Errorf("cluster: no backend %s", base)
	}
	if len(rt.bases) == 1 {
		rt.mu.Unlock()
		return fmt.Errorf("cluster: refusing to remove the last backend %s", base)
	}
	next := make([]string, 0, len(rt.bases)-1)
	for _, have := range rt.bases {
		if have != base {
			next = append(next, have)
		}
	}
	rt.bases = next
	delete(rt.backends, base)
	rt.mu.Unlock()
	if b.stopProbe != nil {
		b.stopProbe()
	}
	rt.kickRepair()
	return nil
}

// startProber spawns the backend's dedicated probe goroutine. Each
// backend paces its own probes with decorrelated jitter seeded from its
// URL, so N backends never fire in lockstep (a synchronized probe burst
// every interval is a self-inflicted thundering herd at exactly the
// moment a struggling cluster least needs one). The unhealthy→healthy
// edge kicks an immediate repair scan: a rejoining backend missed every
// write fanned while it was down.
func (rt *Router) startProber(b *backend) {
	ctx, cancel := context.WithCancel(rt.bgCtx)
	b.stopProbe = cancel
	rt.bgWG.Add(1)
	go func() {
		defer rt.bgWG.Done()
		pace := resilience.NewPace(rt.cfg.ProbeInterval, int64(fnv64a(b.base)))
		healthy := b.probe(ctx, rt.cfg.ProbeTimeout)
		for {
			if resilience.SleepCtx(ctx, pace.Next()) != nil {
				return
			}
			now := b.probe(ctx, rt.cfg.ProbeTimeout)
			if now && !healthy {
				rt.kickRepair()
			}
			healthy = now
		}
	}()
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt.requests.Inc()
		rt.mux.ServeHTTP(w, r)
	})
}

func (rt *Router) initObs() {
	if rt.cfg.DisableObs {
		return
	}
	r := obs.NewRegistry()
	rt.obs = r
	rt.requests = r.Counter("ccer_router_requests_total", "Requests received by the cluster router.")
	rt.hedges = r.Counter("ccer_router_hedges_total", "Hedged duplicate reads fired after the hedge delay.")
	rt.hedgeWins = r.Counter("ccer_router_hedge_wins_total", "Reads won by a hedged or failed-over attempt.")
	rt.failovers = r.Counter("ccer_router_failovers_total", "Attempts moved to the next replica after a failure.")
	rt.fanMisses = r.Counter("ccer_router_write_fan_misses_total",
		"Write fan-out attempts that failed on one replica while another succeeded (replica divergence until the node is rebuilt).")
	rt.readDur = r.Histogram("ccer_router_read_seconds", "Routed read latency (feeds the adaptive hedge delay).")
	rt.repairScans = r.Counter("ccer_router_repair_scans_total",
		"Anti-entropy scans run (periodic, fan-miss-kicked, rejoin-kicked, or elasticity-kicked).")
	rt.repairGraphs = r.Counter("ccer_router_repair_graphs_repaired_total",
		"Stale replica copies converged by streaming a peer's edge list or propagating a tombstone.")
	rt.repairBytes = r.Counter("ccer_router_repair_bytes_total",
		"Edge-list bytes streamed to stale replicas by the repair loop.")
	rt.repairFailures = r.Counter("ccer_router_repair_failures_total",
		"Repair attempts that failed (retried on the next scan).")
	r.GaugeFunc("ccer_router_backends", "Live backends.",
		func() float64 {
			bases, _ := rt.snapshot()
			return float64(len(bases))
		})
	r.GaugeFunc("ccer_router_repair_diverged_graphs",
		"Graphs with at least one reachable stale replica, per the last repair scan (0 = converged).",
		func() float64 {
			rt.divergedMu.Lock()
			defer rt.divergedMu.Unlock()
			return float64(len(rt.diverged))
		})
	r.LabeledGaugeFunc("ccer_router_repair_divergence",
		"Reachable stale replicas per graph, per the last repair scan.", "graph",
		func() map[string]int64 {
			rt.divergedMu.Lock()
			defer rt.divergedMu.Unlock()
			out := make(map[string]int64, len(rt.diverged))
			for name, n := range rt.diverged {
				out[name] = int64(n)
			}
			return out
		})
	r.LabeledGaugeFunc("ccer_router_backend_healthy",
		"Per-backend routability: 1 when ready and the circuit allows traffic.", "backend",
		func() map[string]int64 {
			bases, bs := rt.snapshot()
			out := make(map[string]int64, len(bases))
			for i, base := range bases {
				v := int64(0)
				if bs[i].Healthy() {
					v = 1
				}
				out[base] = v
			}
			return out
		})
	r.LabeledCounterFunc("ccer_router_breaker_opens_total",
		"Circuit-breaker open transitions per backend.", "backend",
		func() map[string]int64 {
			bases, bs := rt.snapshot()
			out := make(map[string]int64, len(bases))
			for i, base := range bases {
				opens, _, _ := bs[i].breaker.Counts()
				out[base] = opens
			}
			return out
		})
	r.LabeledCounterFunc("ccer_router_probe_failures_total",
		"Failed /readyz probes per backend.", "backend",
		func() map[string]int64 {
			bases, bs := rt.snapshot()
			out := make(map[string]int64, len(bases))
			for i, base := range bases {
				out[base] = bs[i].probeFailures.Load()
			}
			return out
		})
}

func (rt *Router) routes() {
	rt.mux.HandleFunc("GET /healthz", rt.handleHealthz)
	rt.mux.HandleFunc("GET /readyz", rt.handleReadyz)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux.HandleFunc("GET /v1/cluster", rt.handleCluster)
	rt.mux.HandleFunc("POST /v1/cluster/backends", rt.handleBackendAdd)
	rt.mux.HandleFunc("DELETE /v1/cluster/backends", rt.handleBackendRemove)
	rt.mux.HandleFunc("POST /v1/cluster/repair", rt.handleRepairKick)
	rt.mux.HandleFunc("POST /v1/graphs", rt.handleWrite)
	rt.mux.HandleFunc("GET /v1/graphs", rt.handleGraphList)
	rt.mux.HandleFunc("GET /v1/graphs/{name...}", rt.handleGraphRead)
	rt.mux.HandleFunc("DELETE /v1/graphs/{name...}", rt.handleDelete)
	rt.mux.HandleFunc("POST /v1/match", rt.handleMatch)
	rt.mux.HandleFunc("POST /v1/sweeps", rt.handleSweepCreate)
	rt.mux.HandleFunc("GET /v1/sweeps", rt.handleSweepList)
	rt.mux.HandleFunc("GET /v1/sweeps/{id}", rt.handleSweepFan)
	rt.mux.HandleFunc("DELETE /v1/sweeps/{id}", rt.handleSweepFan)
}

// placementKey maps a graph name to its placement unit: the segment
// before the first "/". Family-mode generation stores a whole weight
// family under "<base>/<function>", and hashing the base keeps every
// graph of the family — and the family write itself, keyed by its
// request name — on the same replica set.
func placementKey(name string) string {
	if i := strings.IndexByte(name, '/'); i >= 0 {
		return name[:i]
	}
	return name
}

// replicasFor returns the backends hosting name, preference-ordered for
// routing: the rendezvous replica set with healthy backends first
// (stable within each class), plus whether ANY replica of the placement
// set is routable. Unhealthy replicas stay in the list as a last resort
// — breakers can be wrong, and trying a suspect backend beats refusing
// a read outright — but an all-unhealthy set means their answers (a 404
// from a stale rejoiner, a refused connection) cannot be trusted as the
// cluster's verdict, and the caller reports 503 no_replica instead.
func (rt *Router) replicasFor(name string) (order []*backend, anyHealthy bool) {
	rt.mu.RLock()
	bases := Replicas(placementKey(name), rt.bases, rt.cfg.Replicas)
	set := make([]*backend, len(bases))
	for i, base := range bases {
		set[i] = rt.backends[base]
	}
	rt.mu.RUnlock()
	order = make([]*backend, 0, len(set))
	for _, b := range set {
		if b.Healthy() {
			order = append(order, b)
		}
	}
	anyHealthy = len(order) > 0
	for _, b := range set {
		if !b.Healthy() {
			order = append(order, b)
		}
	}
	return order, anyHealthy
}

// healthyCount reports how many backends are currently routable.
func (rt *Router) healthyCount() int {
	_, bs := rt.snapshot()
	n := 0
	for _, b := range bs {
		if b.Healthy() {
			n++
		}
	}
	return n
}

func routerJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func routerError(w http.ResponseWriter, status int, reason, format string, args ...any) {
	if status == http.StatusServiceUnavailable {
		w.Header().Set("Retry-After", "1")
	}
	routerJSON(w, status, map[string]string{
		"error":  fmt.Sprintf(format, args...),
		"reason": reason,
	})
}

// proxy relays a backend reply verbatim: status, the content headers
// that matter (Content-Type, Retry-After) and the exact body bytes —
// byte-identical to asking the backend directly.
func proxy(w http.ResponseWriter, reply *Reply) {
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := reply.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(reply.Status)
	_, _ = w.Write(reply.Body)
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	bases, _ := rt.snapshot()
	routerJSON(w, http.StatusOK, map[string]any{"status": "ok", "backends": len(bases)})
}

func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	bases, _ := rt.snapshot()
	healthy := rt.healthyCount()
	status := http.StatusOK
	if healthy == 0 {
		status = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
	}
	routerJSON(w, status, map[string]any{
		"ready":            healthy > 0,
		"healthy_backends": healthy,
		"backends":         len(bases),
	})
}

// repairView is the anti-entropy block of GET /v1/cluster: the repair
// counters plus the per-graph divergence of the last scan — empty means
// every reachable replica set is checksum-identical.
type repairView struct {
	Enabled        bool           `json:"enabled"`
	IntervalMS     float64        `json:"interval_ms"`
	Scans          int64          `json:"scans_total"`
	GraphsRepaired int64          `json:"graphs_repaired_total"`
	Bytes          int64          `json:"bytes_total"`
	Failures       int64          `json:"failures_total"`
	Diverged       map[string]int `json:"diverged"`
}

// clusterState is the GET /v1/cluster debug document.
type clusterState struct {
	Backends        []BackendState `json:"backends"`
	Replicas        int            `json:"replicas"`
	HealthyBackends int            `json:"healthy_backends"`
	HedgeAfterMS    float64        `json:"hedge_after_ms"`
	Repair          repairView     `json:"repair"`
}

func (rt *Router) clusterState() clusterState {
	st := clusterState{
		Replicas:        rt.cfg.Replicas,
		HealthyBackends: rt.healthyCount(),
		HedgeAfterMS:    float64(rt.hedgeDelay()) / float64(time.Millisecond),
		Repair: repairView{
			Enabled:        rt.cfg.RepairInterval > 0,
			IntervalMS:     float64(rt.cfg.RepairInterval) / float64(time.Millisecond),
			Scans:          rt.repairScans.Load(),
			GraphsRepaired: rt.repairGraphs.Load(),
			Bytes:          rt.repairBytes.Load(),
			Failures:       rt.repairFailures.Load(),
			Diverged:       rt.divergedSnapshot(),
		},
	}
	_, bs := rt.snapshot()
	for _, b := range bs {
		st.Backends = append(st.Backends, b.state())
	}
	return st
}

func (rt *Router) divergedSnapshot() map[string]int {
	rt.divergedMu.Lock()
	defer rt.divergedMu.Unlock()
	out := make(map[string]int, len(rt.diverged))
	for name, n := range rt.diverged {
		out[name] = n
	}
	return out
}

func (rt *Router) handleCluster(w http.ResponseWriter, r *http.Request) {
	routerJSON(w, http.StatusOK, rt.clusterState())
}

// handleBackendAdd is POST /v1/cluster/backends {"url": "..."}: live
// elasticity's grow operation. The reply is the fresh cluster state;
// migration of the names whose replica set changed happens via the
// repair scan the add kicked.
func (rt *Router) handleBackendAdd(w http.ResponseWriter, r *http.Request) {
	var req struct {
		URL string `json:"url"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.URL == "" {
		routerError(w, http.StatusBadRequest, "", "bad backend add request: need {\"url\": ...}")
		return
	}
	if err := rt.AddBackend(req.URL); err != nil {
		routerError(w, http.StatusConflict, "", "%v", err)
		return
	}
	routerJSON(w, http.StatusOK, rt.clusterState())
}

// handleBackendRemove is DELETE /v1/cluster/backends?url=...: live
// elasticity's shrink operation.
func (rt *Router) handleBackendRemove(w http.ResponseWriter, r *http.Request) {
	base := r.URL.Query().Get("url")
	if base == "" {
		routerError(w, http.StatusBadRequest, "", "bad backend remove request: need ?url=")
		return
	}
	if err := rt.RemoveBackend(base); err != nil {
		routerError(w, http.StatusConflict, "", "%v", err)
		return
	}
	routerJSON(w, http.StatusOK, rt.clusterState())
}

// handleRepairKick is POST /v1/cluster/repair: ask for an immediate
// anti-entropy scan (it runs asynchronously; poll GET /v1/cluster for
// the outcome).
func (rt *Router) handleRepairKick(w http.ResponseWriter, r *http.Request) {
	if rt.cfg.RepairInterval <= 0 {
		routerError(w, http.StatusConflict, "", "repair is disabled (RepairInterval < 0)")
		return
	}
	rt.kickRepair()
	routerJSON(w, http.StatusAccepted, map[string]any{"kicked": true})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "prometheus" ||
		strings.Contains(r.Header.Get("Accept"), "text/plain") {
		if rt.obs == nil {
			routerError(w, http.StatusNotFound, "", "metrics registry disabled")
			return
		}
		w.Header().Set("Content-Type", obs.ContentType)
		_ = rt.obs.WritePrometheus(w)
		return
	}
	routerJSON(w, http.StatusOK, map[string]any{
		"requests_total":         rt.requests.Load(),
		"hedges_total":           rt.hedges.Load(),
		"hedge_wins_total":       rt.hedgeWins.Load(),
		"failovers_total":        rt.failovers.Load(),
		"write_fan_misses_total": rt.fanMisses.Load(),
		"cluster":                rt.clusterState(),
	})
}

// hedgeDelay is the wait before a read is duplicated to another
// replica: configured, or the observed p95 read latency (floored at
// 25ms so a fast quiet cluster does not hedge every request), or 100ms
// until enough reads have been seen to estimate a p95.
func (rt *Router) hedgeDelay() time.Duration {
	if rt.cfg.HedgeAfter > 0 {
		return rt.cfg.HedgeAfter
	}
	const floor, cold = 25 * time.Millisecond, 100 * time.Millisecond
	if rt.readDur == nil {
		return cold
	}
	snap := rt.readDur.Snapshot()
	if snap.Count < 20 {
		return cold
	}
	p95 := time.Duration(snap.Quantile(0.95))
	if p95 < floor {
		return floor
	}
	return p95
}

// attemptOutcome is one backend's answer within a fan or hedge.
type attemptOutcome struct {
	b     *backend
	reply *Reply
	err   error
}

// fire runs one attempt against b and feeds the outcome into both the
// breaker and ch. The error fed to the breaker distinguishes transport
// failures and raw (non-shed) 5xx — both the backend's fault — from
// sheds and client errors, which are the backend doing its job.
func fire(ctx context.Context, ch chan<- attemptOutcome, b *backend, method, path, contentType string, body []byte) {
	reply, err := b.client.do(ctx, method, path, contentType, body, false)
	if err == nil {
		b.observe(statusOf(reply))
	} else {
		b.observe(err)
	}
	ch <- attemptOutcome{b: b, reply: reply, err: err}
}

// readAccepted reports whether a reply settles a routed read: anything
// the backend answered deliberately except a 404 or a shed — those are
// retried on the next replica, because a freshly rejoined node may
// simply not hold the graph (404) or be momentarily full (503) while
// its peer can answer.
func readAccepted(reply *Reply) bool {
	if reply.Status == http.StatusNotFound || reply.Status == http.StatusServiceUnavailable {
		return false
	}
	return reply.Status < 500
}

// routeRead serves one read with failover and hedging: the preferred
// replica is asked first; a failure fails over immediately, and a slow
// response hedges a duplicate to the next replica after the hedge
// delay. The first accepted reply wins and every other in-flight
// attempt is cancelled (the backends count those as 499 client
// disconnects, not errors). Replies that fail soft (404 from a stale
// replica, a shed) are kept as fallback answers if no replica does
// better.
//
// anyHealthy is the placement set's routability at routing time. When
// the whole set is unhealthy, the attempts still fire (a breaker can be
// wrong), but their failures — and crucially their 404s, which with
// every replica down or freshly rejoined say nothing about whether the
// graph exists — are not trusted as a verdict: the client gets a 503
// with Retry-After and reason no_replica instead of a misleading 404 or
// a raw connection error.
func (rt *Router) routeRead(w http.ResponseWriter, r *http.Request, order []*backend, anyHealthy bool, path, contentType string, body []byte) {
	if len(order) == 0 {
		routerError(w, http.StatusServiceUnavailable, "no_backend", "no backend available")
		return
	}
	start := time.Now()
	hctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	ch := make(chan attemptOutcome, len(order))
	launched := 1
	go fire(hctx, ch, order[0], r.Method, path, contentType, body)
	hedge := time.NewTimer(rt.hedgeDelay())
	defer hedge.Stop()

	var fallback *Reply
	settled := 0
	for {
		select {
		case out := <-ch:
			settled++
			if out.err == nil && readAccepted(out.reply) {
				cancel() // losers die as 499s on their backends
				rt.readDur.Observe(time.Since(start))
				if out.b != order[0] {
					rt.hedgeWins.Inc()
				}
				proxy(w, out.reply)
				return
			}
			// Soft failures keep the best reply for the all-failed case:
			// a shed beats a 404 beats nothing.
			if out.err == nil {
				if fallback == nil || out.reply.Status == http.StatusServiceUnavailable {
					fallback = out.reply
				}
			}
			if launched < len(order) {
				rt.failovers.Inc()
				go fire(hctx, ch, order[launched], r.Method, path, contentType, body)
				launched++
			} else if settled == launched {
				if !anyHealthy {
					routerError(w, http.StatusServiceUnavailable, "no_replica",
						"every replica of this graph's placement set is unhealthy")
					return
				}
				if fallback != nil {
					proxy(w, fallback)
					return
				}
				routerError(w, http.StatusServiceUnavailable, "no_backend",
					"all %d replicas failed", len(order))
				return
			}
		case <-hedge.C:
			if launched < len(order) {
				rt.hedges.Inc()
				go fire(hctx, ch, order[launched], r.Method, path, contentType, body)
				launched++
			}
		case <-r.Context().Done():
			return
		}
	}
}

// maxBodyBytes caps buffered request bodies; the router buffers writes
// to fan them out, matching the backends' own default cap.
const maxBodyBytes = 64 << 20

func readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		routerError(w, http.StatusBadRequest, "", "read body: %v", err)
		return nil, false
	}
	return body, true
}

// handleWrite fans POST /v1/graphs to every replica of the graph's
// placement key. Cluster mode requires an explicit graph name: the
// name IS the placement key, and backend-assigned auto names would
// diverge across replicas. The owner's reply is preferred; with the
// owner down, any succeeding replica's reply is returned (per-name
// versioning makes them agree on everything but the creation
// timestamp). A replica that misses the write while dead serves stale
// state until it is rebuilt — the router counts those misses.
func (rt *Router) handleWrite(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	contentType := r.Header.Get("Content-Type")
	name := r.URL.Query().Get("name")
	if strings.HasPrefix(contentType, "application/json") {
		var req struct {
			Name string `json:"name"`
		}
		if err := json.Unmarshal(body, &req); err != nil {
			routerError(w, http.StatusBadRequest, "", "bad request body: %v", err)
			return
		}
		name = req.Name
	}
	if name == "" {
		routerError(w, http.StatusBadRequest, "",
			"cluster mode requires an explicit graph name (auto-assigned names would diverge across replicas)")
		return
	}
	path := "/v1/graphs"
	if !strings.HasPrefix(contentType, "application/json") && name != "" {
		path += "?name=" + name
	}
	rt.fanWrite(w, r, name, http.MethodPost, path, contentType, body)
}

func (rt *Router) handleDelete(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	rt.fanWrite(w, r, name, http.MethodDelete, "/v1/graphs/"+name, "", nil)
}

// fanWrite sends the mutation to every replica of name concurrently
// and replies with the most-preferred success. All replicas failing
// surfaces the most useful failure (a shed with its Retry-After when
// any backend sent one). Partial failures — some replicas applied the
// write, some did not — succeed (the data is durable and served) and
// are counted as fan misses.
func (rt *Router) fanWrite(w http.ResponseWriter, r *http.Request, name, method, path, contentType string, body []byte) {
	rt.mu.RLock()
	bases := Replicas(placementKey(name), rt.bases, rt.cfg.Replicas)
	set := make([]*backend, len(bases))
	for i, base := range bases {
		set[i] = rt.backends[base]
	}
	rt.mu.RUnlock()
	// Skip replicas whose circuit is open (not routable right now):
	// fanning into a known-dead backend would stall the write on its
	// timeout. If everything is open, try the full set anyway — but an
	// all-unhealthy fan that fails is reported as no_replica, not as a
	// generic backend error.
	attempt := make([]*backend, 0, len(set))
	for _, b := range set {
		if b.Healthy() {
			attempt = append(attempt, b)
		}
	}
	anyHealthy := len(attempt) > 0
	if !anyHealthy {
		attempt = set
	}
	ch := make(chan attemptOutcome, len(attempt))
	for _, b := range attempt {
		go fire(r.Context(), ch, b, method, path, contentType, body)
	}
	outcomes := make(map[*backend]attemptOutcome, len(attempt))
	for range attempt {
		out := <-ch
		outcomes[out.b] = out
	}
	// Preference order: the rendezvous ranking, so the owner's reply
	// wins when the owner succeeded.
	var best *Reply
	var fallback *Reply
	succeeded := 0
	for _, b := range set {
		out, ok := outcomes[b]
		if !ok || out.err != nil {
			continue
		}
		if out.reply.Status < 300 {
			succeeded++
			if best == nil {
				best = out.reply
			}
		} else if fallback == nil || out.reply.Status == http.StatusServiceUnavailable {
			fallback = out.reply
		}
	}
	if best != nil {
		if succeeded < len(attempt) {
			// Replica divergence: some replica missed an acknowledged
			// write. Count it AND schedule its cure — an immediate
			// anti-entropy scan picks the miss up as soon as the stale
			// replica answers listings again.
			rt.fanMisses.Add(int64(len(attempt) - succeeded))
			rt.kickRepair()
		}
		proxy(w, best)
		return
	}
	if fallback != nil {
		proxy(w, fallback)
		return
	}
	if !anyHealthy {
		routerError(w, http.StatusServiceUnavailable, "no_replica",
			"every replica of %q's placement set is unhealthy", name)
		return
	}
	routerError(w, http.StatusServiceUnavailable, "no_backend",
		"write to %q failed on all %d replicas", name, len(attempt))
}

func (rt *Router) handleGraphRead(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	path := "/v1/graphs/" + name
	if q := r.URL.RawQuery; q != "" {
		path += "?" + q
	}
	order, anyHealthy := rt.replicasFor(name)
	rt.routeRead(w, r, order, anyHealthy, path, "", nil)
}

func (rt *Router) handleMatch(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req struct {
		Graph string `json:"graph"`
	}
	if err := json.Unmarshal(body, &req); err != nil || req.Graph == "" {
		routerError(w, http.StatusBadRequest, "", "bad match request: missing graph")
		return
	}
	order, anyHealthy := rt.replicasFor(req.Graph)
	rt.routeRead(w, r, order, anyHealthy, "/v1/match", "application/json", body)
}

// handleGraphList merges the backend listings: replicas report the
// same graph at the same version (per-name versioning), so entries
// dedupe by name keeping the highest version seen (a freshly rejoined
// replica may briefly report a stale one).
func (rt *Router) handleGraphList(w http.ResponseWriter, r *http.Request) {
	type listed struct {
		version int64
		raw     json.RawMessage
	}
	merged := map[string]listed{}
	reached := 0
	_, bs := rt.snapshot()
	for _, b := range bs {
		if !b.Healthy() {
			continue
		}
		reply, err := b.client.do(r.Context(), http.MethodGet, "/v1/graphs", "", nil, false)
		b.observe(err)
		if err != nil || reply.Status != http.StatusOK {
			continue
		}
		reached++
		var page struct {
			Graphs []json.RawMessage `json:"graphs"`
		}
		if json.Unmarshal(reply.Body, &page) != nil {
			continue
		}
		for _, raw := range page.Graphs {
			var id struct {
				Name    string `json:"name"`
				Version int64  `json:"version"`
			}
			if json.Unmarshal(raw, &id) != nil || id.Name == "" {
				continue
			}
			if have, ok := merged[id.Name]; !ok || id.Version > have.version {
				merged[id.Name] = listed{version: id.Version, raw: raw}
			}
		}
	}
	if reached == 0 {
		routerError(w, http.StatusServiceUnavailable, "no_backend", "no backend reachable")
		return
	}
	names := make([]string, 0, len(merged))
	for name := range merged {
		names = append(names, name)
	}
	sort.Strings(names)
	graphs := make([]json.RawMessage, len(names))
	for i, name := range names {
		graphs[i] = merged[name].raw
	}
	routerJSON(w, http.StatusOK, map[string]any{"graphs": graphs})
}

func (rt *Router) handleSweepCreate(w http.ResponseWriter, r *http.Request) {
	body, ok := readBody(w, r)
	if !ok {
		return
	}
	var req struct {
		Graph string `json:"graph"`
	}
	if err := json.Unmarshal(body, &req); err != nil || req.Graph == "" {
		routerError(w, http.StatusBadRequest, "", "bad sweep request: missing graph")
		return
	}
	// A sweep runs on one node (jobs are not replicated); route to the
	// graph's preferred replica, failing over only when the attempt
	// provably did not start a job — a refused connection, a shed, or
	// the replica not holding the graph.
	order, _ := rt.replicasFor(req.Graph)
	var fallback *Reply
	for i, b := range order {
		if i > 0 {
			rt.failovers.Inc()
		}
		reply, err := b.client.do(r.Context(), http.MethodPost, "/v1/sweeps", "application/json", body, false)
		if err != nil {
			b.observe(err)
			if connRefused(err) {
				continue // provably no job started; the next replica is safe
			}
			routerError(w, http.StatusBadGateway, "backend_failed", "sweep create: %v", err)
			return
		}
		b.observe(statusOf(reply))
		if reply.Status == http.StatusNotFound || reply.Status == http.StatusServiceUnavailable {
			fallback = reply
			continue
		}
		proxy(w, reply)
		return
	}
	if fallback != nil {
		proxy(w, fallback)
		return
	}
	routerError(w, http.StatusServiceUnavailable, "no_backend", "no replica accepted the sweep")
}

// handleSweepList merges sweep listings across every reachable backend.
func (rt *Router) handleSweepList(w http.ResponseWriter, r *http.Request) {
	var sweeps []json.RawMessage
	reached := 0
	_, bs := rt.snapshot()
	for _, b := range bs {
		if !b.Healthy() {
			continue
		}
		reply, err := b.client.do(r.Context(), http.MethodGet, "/v1/sweeps", "", nil, false)
		b.observe(err)
		if err != nil || reply.Status != http.StatusOK {
			continue
		}
		reached++
		var page struct {
			Sweeps []json.RawMessage `json:"sweeps"`
		}
		if json.Unmarshal(reply.Body, &page) == nil {
			sweeps = append(sweeps, page.Sweeps...)
		}
	}
	if reached == 0 {
		routerError(w, http.StatusServiceUnavailable, "no_backend", "no backend reachable")
		return
	}
	if sweeps == nil {
		sweeps = []json.RawMessage{}
	}
	routerJSON(w, http.StatusOK, map[string]any{"sweeps": sweeps})
}

// handleSweepFan locates a sweep by id: ids are node-local, so ask
// every backend in turn and relay the first non-404.
func (rt *Router) handleSweepFan(w http.ResponseWriter, r *http.Request) {
	path := "/v1/sweeps/" + r.PathValue("id")
	var fallback *Reply
	_, bs := rt.snapshot()
	for _, b := range bs {
		reply, err := b.client.do(r.Context(), r.Method, path, "", nil, false)
		if err != nil {
			b.observe(err)
			continue
		}
		b.observe(statusOf(reply))
		if reply.Status == http.StatusNotFound {
			fallback = reply
			continue
		}
		proxy(w, reply)
		return
	}
	if fallback != nil {
		proxy(w, fallback)
		return
	}
	routerError(w, http.StatusServiceUnavailable, "no_backend", "no backend reachable")
}
