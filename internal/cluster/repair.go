package cluster

import (
	"context"
	"sync"
	"time"

	"github.com/ccer-go/ccer/internal/resilience"
)

// This file is the anti-entropy subsystem: the repair loop that keeps
// every replica set checksum-identical without restarts.
//
// A replica diverges when a write fans out while it is down (counted as
// ccer_router_write_fan_misses_total), when it restarts and loses its
// in-memory tombstones, or when elasticity moves a name onto a backend
// that never held it. The repair loop closes all three gaps with one
// mechanism: every scan pulls each reachable backend's cheap sync
// listing (per-name version + checksum, plus tombstones — no edge
// lists), elects per name the newest copy anywhere in the cluster, and
// converges that name's CURRENT placement replicas onto it — streaming
// the winner's edge list via the conditional sync upload, or
// propagating the winner's tombstone via the conditional sync delete.
// Both target-side operations apply only if genuinely newer, so a scan
// racing live writes can drop a stream but never clobber fresh data,
// and re-running a scan is free.
//
// Scans run on a jittered period (resilience.Pace) and immediately on
// the three events that create or reveal divergence: a write fan miss,
// a backend's unhealthy→healthy rejoin, and an elasticity change
// (AddBackend/RemoveBackend). Election spans ALL reachable backends,
// not just the placement set, which is what makes elasticity "just
// repair": after a membership change the old holder — possibly no
// longer a replica — is still the newest source, and only the names
// whose replica set actually changed have a stale member to converge.
//
// Known limits, by design: the edge-list codec carries the graph but
// not generation ground truth, so a repaired copy of a generated graph
// serves matches byte-identically (same checksum, same version) but
// without GT-derived metrics; and a restarted backend forgets its
// tombstones, so a delete fanned while the sole tombstone holder is
// down can resurrect — bounded by repair-on-rejoin running as soon as
// the restarted node answers probes.

// kickRepair requests an immediate anti-entropy scan. Non-blocking: a
// scan already pending absorbs any number of kicks.
func (rt *Router) kickRepair() {
	if rt.cfg.RepairInterval <= 0 {
		return
	}
	select {
	case rt.repairKick <- struct{}{}:
	default:
	}
}

// repairLoop paces the scans: a jittered interval draw, cut short by
// kicks. One scan at a time — a kick during a scan runs the next scan
// immediately after, never concurrently.
func (rt *Router) repairLoop(ctx context.Context) {
	defer rt.bgWG.Done()
	pace := resilience.NewPace(rt.cfg.RepairInterval, 0)
	for {
		timer := time.NewTimer(pace.Next())
		select {
		case <-ctx.Done():
			timer.Stop()
			return
		case <-timer.C:
		case <-rt.repairKick:
			timer.Stop()
		}
		rt.repairScan(ctx)
	}
}

// syncCopy is one backend's view of one name: a live (version,
// checksum) or a tombstone at version.
type syncCopy struct {
	version   int64
	checksum  string
	tombstone bool
}

// repairTask converges one graph: stream the winner (or its tombstone)
// to every stale placement replica.
type repairTask struct {
	name    string
	winner  syncCopy
	source  *backend   // newest holder; nil when the winner is a tombstone
	targets []*backend // reachable placement replicas not matching the winner
}

// repairScan runs one full anti-entropy pass. It returns the number of
// graphs that still have a reachable stale replica afterwards (repair
// failures; 0 means the reachable cluster is converged).
func (rt *Router) repairScan(ctx context.Context) int {
	rt.repairScans.Inc()
	bases, bs := rt.snapshot()

	// Pull every reachable backend's sync listing concurrently. An
	// unhealthy or unresponsive backend simply has no vote and is not a
	// repair target this scan; its rejoin kick will cover it.
	views := make([]map[string]syncCopy, len(bs))
	var wg sync.WaitGroup
	for i, b := range bs {
		if !b.Healthy() {
			continue
		}
		wg.Add(1)
		go func(i int, b *backend) {
			defer wg.Done()
			lctx, cancel := context.WithTimeout(ctx, 10*time.Second)
			defer cancel()
			listing, err := b.client.ListSync(lctx)
			b.observe(err)
			if err != nil {
				return
			}
			view := make(map[string]syncCopy, len(listing.Graphs)+len(listing.Tombstones))
			for _, g := range listing.Graphs {
				view[g.Name] = syncCopy{version: g.Version, checksum: g.Checksum}
			}
			for _, t := range listing.Tombstones {
				// A node never reports both; tombstones only exist for
				// names without a live entry.
				view[t.Name] = syncCopy{version: t.Version, tombstone: true}
			}
			views[i] = view
		}(i, b)
	}
	wg.Wait()

	// Elect per name the newest copy anywhere, then diff each name's
	// placement replicas against it. Ties between a tombstone and a live
	// entry at the same version go to the tombstone (the delete
	// happened after the write that version number acknowledges).
	type election struct {
		winner syncCopy
		source *backend
	}
	elected := map[string]election{}
	for i, view := range views {
		for name, c := range view {
			cur, seen := elected[name]
			if !seen || c.version > cur.winner.version ||
				(c.version == cur.winner.version && c.tombstone && !cur.winner.tombstone) {
				elected[name] = election{winner: c, source: bs[i]}
			}
		}
	}

	var tasks []repairTask
	diverged := map[string]int{}
	for name, e := range elected {
		placement := Replicas(placementKey(name), bases, rt.cfg.Replicas)
		var targets []*backend
		for _, base := range placement {
			idx := -1
			for i, have := range bases {
				if have == base {
					idx = i
					break
				}
			}
			if idx < 0 || views[idx] == nil {
				continue // unreachable this scan: not a trusted view, not a target
			}
			have, ok := views[idx][name]
			if e.winner.tombstone {
				// Converged means "no live entry". A missing name or an
				// existing tombstone (any version) needs nothing.
				if ok && !have.tombstone {
					targets = append(targets, bs[idx])
				}
				continue
			}
			if !ok || have.tombstone || have.version != e.winner.version || have.checksum != e.winner.checksum {
				targets = append(targets, bs[idx])
			}
		}
		if len(targets) == 0 {
			continue
		}
		diverged[name] = len(targets)
		tasks = append(tasks, repairTask{name: name, winner: e.winner, source: e.source, targets: targets})
	}

	// Publish the pre-repair divergence so GET /v1/cluster and the
	// divergence gauge reflect what this scan found...
	rt.setDiverged(diverged)

	// ...then burn it down: repair tasks under the concurrency bound,
	// clearing each name's divergence entry as its replicas converge.
	sem := make(chan struct{}, rt.cfg.RepairConcurrency)
	var taskWG sync.WaitGroup
	var remainMu sync.Mutex
	remaining := 0
	for _, task := range tasks {
		taskWG.Add(1)
		sem <- struct{}{}
		go func(task repairTask) {
			defer taskWG.Done()
			defer func() { <-sem }()
			if rt.repairOne(ctx, task) {
				rt.clearDiverged(task.name)
			} else {
				remainMu.Lock()
				remaining++
				remainMu.Unlock()
			}
		}(task)
	}
	taskWG.Wait()
	return remaining
}

// repairOne converges one graph's stale replicas, reporting whether
// every target reached the winner's state.
func (rt *Router) repairOne(ctx context.Context, task repairTask) bool {
	rctx, cancel := context.WithTimeout(ctx, 60*time.Second)
	defer cancel()
	if task.winner.tombstone {
		ok := true
		for _, target := range task.targets {
			applied, err := target.client.SyncDelete(rctx, task.name, task.winner.version)
			target.observe(err)
			if err != nil {
				rt.repairFailures.Inc()
				ok = false
				continue
			}
			if applied {
				rt.repairGraphs.Inc()
			}
		}
		return ok
	}
	// Stream path: one download from the newest holder, fanned to every
	// stale replica. The sync upload is version-pinned and conditional,
	// so a concurrent live write simply wins and the stream no-ops.
	data, err := task.source.client.EdgeList(rctx, task.name)
	task.source.observe(err)
	if err != nil {
		rt.repairFailures.Inc()
		return false
	}
	ok := true
	for _, target := range task.targets {
		applied, err := target.client.SyncPutEdgeList(rctx, task.name, task.winner.version, data)
		target.observe(err)
		if err != nil {
			rt.repairFailures.Inc()
			ok = false
			continue
		}
		rt.repairBytes.Add(int64(len(data)))
		if applied {
			rt.repairGraphs.Inc()
		}
	}
	return ok
}

func (rt *Router) setDiverged(m map[string]int) {
	rt.divergedMu.Lock()
	rt.diverged = m
	rt.divergedMu.Unlock()
}

func (rt *Router) clearDiverged(name string) {
	rt.divergedMu.Lock()
	delete(rt.diverged, name)
	rt.divergedMu.Unlock()
}
