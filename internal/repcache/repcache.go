// Package repcache provides the small content-addressed cache behind the
// cross-build representation caches of internal/vector, internal/ngraph
// and internal/embed: entries are keyed by a 128-bit content hash of the
// inputs they were derived from, bounded by entry count with
// least-recently-used eviction, and safe for concurrent use. A resident
// service (internal/serve) regenerating graphs for the same dataset
// reuses the per-entity representations instead of rebuilding them; the
// representations are pure functions of their inputs, so a hit is
// byte-identical to a rebuild.
package repcache

import (
	"sync"
	"sync/atomic"
)

// Key is a 128-bit content hash. Builders derive it from the full input
// text (not a name), so two inputs only share a key on a hash collision
// — at 128 bits, never in practice.
type Key struct{ Hi, Lo uint64 }

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// Hasher accumulates a Key over length-prefixed byte strings, so
// concatenation ambiguities ("ab","c" vs "a","bc") hash differently.
type Hasher struct{ hi, lo uint64 }

// NewHasher seeds a hasher with a salt separating key spaces (mode,
// model, configuration) that share input texts.
func NewHasher(salt uint64) *Hasher {
	h := &Hasher{hi: fnvOffset, lo: fnvOffset ^ 0x9e3779b97f4a7c15}
	h.Uint64(salt)
	return h
}

func (h *Hasher) byte(b byte) {
	h.hi = (h.hi ^ uint64(b)) * fnvPrime
	h.lo = (h.lo ^ uint64(b)) * (fnvPrime + 2)
}

// Uint64 mixes an 8-byte value.
func (h *Hasher) Uint64(x uint64) {
	for i := 0; i < 8; i++ {
		h.byte(byte(x >> (8 * i)))
	}
}

// String mixes a length-prefixed string.
func (h *Hasher) String(s string) {
	h.Uint64(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.byte(s[i])
	}
}

// Strings mixes a length-prefixed string list.
func (h *Hasher) Strings(ss []string) {
	h.Uint64(uint64(len(ss)))
	for _, s := range ss {
		h.String(s)
	}
}

// StringLists mixes a length-prefixed list of string lists.
func (h *Hasher) StringLists(lists [][]string) {
	h.Uint64(uint64(len(lists)))
	for _, ss := range lists {
		h.Strings(ss)
	}
}

// Key returns the accumulated key.
func (h *Hasher) Key() Key { return Key{Hi: h.hi, Lo: h.lo} }

type entry[V any] struct {
	once sync.Once
	val  V
	ok   bool        // set only after build returned normally
	done atomic.Bool // ok, readable without holding the entry's once
	used int64       // LRU stamp, updated under the cache mutex
}

// Cache is a bounded content-addressed cache. The zero value is not
// usable; call New.
type Cache[V any] struct {
	mu    sync.Mutex
	max   int
	m     map[Key]*entry[V]
	clock int64

	hits, misses, evictions atomic.Int64
}

// New returns a cache retaining at most max entries (max < 1 is treated
// as 1).
func New[V any](max int) *Cache[V] {
	if max < 1 {
		max = 1
	}
	return &Cache[V]{max: max, m: make(map[Key]*entry[V], max)}
}

// GetOrBuild returns the cached value for key, building (and caching) it
// on a miss. build runs outside the cache lock, at most once per key
// (concurrent callers of the same key share one build); the returned
// flag reports whether the value was already resident. Values must be
// treated as immutable by all callers.
//
// A build that panics does not poison the key: the entry is dropped
// (the panic propagates to the builder), and any caller that raced the
// failed build — or arrives later — rebuilds instead of receiving the
// zero value from a consumed sync.Once.
func (c *Cache[V]) GetOrBuild(key Key, build func() V) (V, bool) {
	c.mu.Lock()
	e, hit := c.m[key]
	if !hit {
		e = &entry[V]{}
		c.m[key] = e
		if len(c.m) > c.max {
			c.evictLocked(key)
		}
	}
	c.clock++
	e.used = c.clock
	c.mu.Unlock()
	if hit {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	e.once.Do(func() {
		defer func() {
			if r := recover(); r != nil {
				c.mu.Lock()
				if c.m[key] == e {
					delete(c.m, key)
				}
				c.mu.Unlock()
				panic(r)
			}
		}()
		e.val = build()
		e.ok = true
		e.done.Store(true)
	})
	if !e.ok {
		// The winning builder panicked; its entry is gone. Build
		// uncached so this caller still gets a value (or the panic).
		return build(), false
	}
	return e.val, hit
}

// evictLocked removes the least-recently-used entry other than keep.
func (c *Cache[V]) evictLocked(keep Key) {
	var victim Key
	best := int64(-1)
	for k, e := range c.m {
		if k == keep {
			continue
		}
		if best < 0 || e.used < best {
			victim, best = k, e.used
		}
	}
	if best >= 0 {
		delete(c.m, victim)
		c.evictions.Add(1)
	}
}

// Range calls f with every fully-built resident entry, in no
// particular order, without extending any entry's recency. Entries
// whose build is still in flight are skipped (their value is not yet
// readable); the release/acquire pair on the entry's done flag makes a
// visited value safe to read. Used by the durable layer to spill the
// warm set.
func (c *Cache[V]) Range(f func(Key, V)) {
	c.mu.Lock()
	type kv struct {
		k Key
		e *entry[V]
	}
	resident := make([]kv, 0, len(c.m))
	for k, e := range c.m {
		resident = append(resident, kv{k, e})
	}
	c.mu.Unlock()
	for _, r := range resident {
		if r.e.done.Load() {
			f(r.k, r.e.val)
		}
	}
}

// Len returns the resident entry count.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Stats returns cumulative hit / miss / eviction counts.
func (c *Cache[V]) Stats() (hits, misses, evictions int64) {
	return c.hits.Load(), c.misses.Load(), c.evictions.Load()
}
