package repcache

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestEvictionPrefersLeastRecentlyUsed pins the ordering side of LRU:
// a Get is a touch, so the victim is the stalest entry, not the oldest
// inserted. Build counters distinguish hits from rebuilds.
func TestEvictionPrefersLeastRecentlyUsed(t *testing.T) {
	c := New[uint64](2)
	k := func(i uint64) Key { return NewHasher(i).Key() }
	builds := map[uint64]int{}
	get := func(i uint64) {
		v, _ := c.GetOrBuild(k(i), func() uint64 { builds[i]++; return i })
		if v != i {
			t.Fatalf("get(%d) = %d", i, v)
		}
	}
	get(1)
	get(2)
	get(1) // touch: 2 is now least recently used
	get(3) // must evict 2, not 1
	get(1)
	if builds[1] != 1 {
		t.Fatalf("touched entry was evicted: built %d times", builds[1])
	}
	get(2)
	if builds[2] != 2 {
		t.Fatalf("stale entry survived the eviction: built %d times", builds[2])
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

// TestConcurrentGetRangeBounded hammers GetOrBuild from many goroutines
// over a key space larger than the capacity, with Range and Len readers
// racing the evictions. Under -race this doubles as the memory-safety
// proof for the durable layer's spill path (Range while builds are in
// flight). Invariants: the size bound holds at every observation, every
// value read (via Get or Range) matches its key, and the miss/eviction
// accounting balances to the resident count.
func TestConcurrentGetRangeBounded(t *testing.T) {
	const (
		capacity = 8
		keys     = 32
		workers  = 8
		opsEach  = 2000
	)
	c := New[uint64](capacity)
	k := func(i uint64) Key { return NewHasher(i).Key() }

	var wrong atomic.Int64
	var overflow atomic.Int64
	stop := make(chan struct{})
	var watcher sync.WaitGroup
	watcher.Add(1)
	go func() {
		defer watcher.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			if n := c.Len(); n > capacity {
				overflow.Store(int64(n))
			}
			c.Range(func(key Key, v uint64) {
				if k(v) != key {
					wrong.Add(1)
				}
			})
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			x := uint64(w)*2654435761 + 1
			for i := 0; i < opsEach; i++ {
				x = x*6364136223846793005 + 1442695040888963407 // LCG; no shared rand
				id := (x >> 33) % keys
				v, _ := c.GetOrBuild(k(id), func() uint64 { return id })
				if v != id {
					wrong.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	watcher.Wait()

	if n := wrong.Load(); n != 0 {
		t.Fatalf("%d reads returned a value not matching its key", n)
	}
	if n := overflow.Load(); n != 0 {
		t.Fatalf("size bound violated: observed Len = %d > %d", n, capacity)
	}
	hits, misses, evictions := c.Stats()
	if hits+misses != workers*opsEach {
		t.Fatalf("hits %d + misses %d != %d ops", hits, misses, workers*opsEach)
	}
	// Every miss inserts exactly one entry and every eviction removes
	// one, so the books must balance to the resident count.
	if resident := int64(c.Len()); misses-evictions != resident {
		t.Fatalf("accounting: misses %d - evictions %d != resident %d", misses, evictions, resident)
	}
	if c.Len() > capacity {
		t.Fatalf("final Len = %d > %d", c.Len(), capacity)
	}
}
