package repcache

import (
	"sync"
	"testing"
)

func TestGetOrBuildCachesAndEvicts(t *testing.T) {
	c := New[int](2)
	k := func(i uint64) Key { h := NewHasher(i); return h.Key() }
	builds := 0
	get := func(i uint64) int {
		v, _ := c.GetOrBuild(k(i), func() int { builds++; return int(i) })
		return v
	}
	if get(1) != 1 || get(1) != 1 {
		t.Fatal("wrong value")
	}
	if builds != 1 {
		t.Fatalf("builds = %d", builds)
	}
	get(2)
	get(3) // evicts the LRU entry (1)
	if c.Len() != 2 {
		t.Fatalf("Len = %d", c.Len())
	}
	hits, misses, evictions := c.Stats()
	if hits != 1 || misses != 3 || evictions != 1 {
		t.Fatalf("stats = %d/%d/%d", hits, misses, evictions)
	}
	if get(1) != 1 || builds != 4 {
		t.Fatalf("evicted entry not rebuilt (builds = %d)", builds)
	}
}

// A panicking build must not poison its key: the panic propagates, the
// entry is dropped, and the next caller rebuilds successfully.
func TestGetOrBuildPanicDoesNotPoison(t *testing.T) {
	c := New[*int](4)
	key := NewHasher(7).Key()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("build panic did not propagate")
			}
		}()
		c.GetOrBuild(key, func() *int { panic("transient") })
	}()
	if c.Len() != 0 {
		t.Fatalf("poisoned entry retained: Len = %d", c.Len())
	}
	x := 42
	v, hit := c.GetOrBuild(key, func() *int { return &x })
	if hit || v == nil || *v != 42 {
		t.Fatalf("rebuild after panic: v=%v hit=%v", v, hit)
	}
}

func TestHasherDistinguishesBoundaries(t *testing.T) {
	a := NewHasher(0)
	a.Strings([]string{"ab", "c"})
	b := NewHasher(0)
	b.Strings([]string{"a", "bc"})
	if a.Key() == b.Key() {
		t.Fatal("length prefixes failed to separate concatenations")
	}
	c1 := NewHasher(1)
	c1.Strings([]string{"x"})
	c2 := NewHasher(2)
	c2.Strings([]string{"x"})
	if c1.Key() == c2.Key() {
		t.Fatal("salt ignored")
	}
}

func TestGetOrBuildConcurrentSingleBuild(t *testing.T) {
	c := New[int](8)
	key := NewHasher(3).Key()
	var mu sync.Mutex
	builds := 0
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, _ := c.GetOrBuild(key, func() int {
				mu.Lock()
				builds++
				mu.Unlock()
				return 9
			})
			if v != 9 {
				t.Error("wrong value")
			}
		}()
	}
	wg.Wait()
	if builds != 1 {
		t.Fatalf("concurrent callers built %d times", builds)
	}
}
