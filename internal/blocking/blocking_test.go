package blocking

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/ccer-go/ccer/internal/datagen"
	"github.com/ccer-go/ccer/internal/dataset"
)

func testCollections() (*dataset.Collection, *dataset.Collection) {
	c1 := &dataset.Collection{Name: "a", Profiles: []dataset.Profile{
		{ID: "a0", Attrs: map[string]string{"name": "golden dragon bistro", "city": "boston"}},
		{ID: "a1", Attrs: map[string]string{"name": "blue harbor grill", "city": "chicago"}},
		{ID: "a2", Attrs: map[string]string{"name": "old oak tavern", "city": "denver"}},
	}}
	c2 := &dataset.Collection{Name: "b", Profiles: []dataset.Profile{
		{ID: "b0", Attrs: map[string]string{"name": "golden dragon bistro", "city": "boston"}},
		{ID: "b1", Attrs: map[string]string{"name": "harbor grill house", "city": "chicago"}},
		{ID: "b2", Attrs: map[string]string{"name": "midnight garden", "city": "austin"}},
	}}
	return c1, c2
}

func TestTokenBlocking(t *testing.T) {
	c1, c2 := testCollections()
	blocks := TokenBlocking(c1, c2)
	if len(blocks) == 0 {
		t.Fatal("no blocks")
	}
	keys := map[string]Block{}
	for _, b := range blocks {
		keys[b.Key] = b
		if len(b.V1) == 0 || len(b.V2) == 0 {
			t.Fatalf("one-sided block %q survived", b.Key)
		}
	}
	// "golden" appears on both sides; "midnight" only on one.
	if _, ok := keys["golden"]; !ok {
		t.Fatal("missing block for shared token")
	}
	if _, ok := keys["midnight"]; ok {
		t.Fatal("one-sided token produced a block")
	}
	// Coverage guarantee: the true match (0,0) shares tokens, so it must
	// be a candidate.
	cands := Candidates(blocks)
	if !hasPair(cands, 0, 0) {
		t.Fatal("token blocking missed the identical pair")
	}
}

func TestAttributeBlocking(t *testing.T) {
	c1, c2 := testCollections()
	blocks := AttributeBlocking(c1, c2, "city")
	keys := map[string]bool{}
	for _, b := range blocks {
		keys[b.Key] = true
	}
	if !keys["boston"] || !keys["chicago"] {
		t.Fatalf("city blocks missing: %v", keys)
	}
	if keys["golden"] {
		t.Fatal("attribute blocking leaked other attributes")
	}
}

func hasPair(cands [][2]int32, u, v int32) bool {
	for _, c := range cands {
		if c[0] == u && c[1] == v {
			return true
		}
	}
	return false
}

func TestPurgeBlocks(t *testing.T) {
	blocks := []Block{
		{Key: "small", V1: []int32{0}, V2: []int32{0}},
		{Key: "huge", V1: []int32{0, 1, 2, 3}, V2: []int32{0, 1, 2, 3}},
	}
	purged := PurgeBlocks(blocks, 4)
	if len(purged) != 1 || purged[0].Key != "small" {
		t.Fatalf("purge kept %v", purged)
	}
}

func TestFilterBlocks(t *testing.T) {
	// Entity 0 of V1 is in three blocks of growing size; with ratio 0.34
	// it keeps only its smallest block.
	blocks := []Block{
		{Key: "a", V1: []int32{0}, V2: []int32{0}},
		{Key: "b", V1: []int32{0, 1}, V2: []int32{0, 1}},
		{Key: "c", V1: []int32{0, 1, 2}, V2: []int32{0, 1, 2}},
	}
	filtered := FilterBlocks(blocks, 0.34)
	in := 0
	for _, b := range filtered {
		for _, u := range b.V1 {
			if u == 0 {
				in++
			}
		}
	}
	if in != 1 {
		t.Fatalf("entity 0 kept in %d blocks, want 1", in)
	}
	// ratio 1 is the identity; ratio 0 drops everything.
	if got := FilterBlocks(blocks, 1); len(got) != len(blocks) {
		t.Fatal("ratio 1 changed the blocks")
	}
	if got := FilterBlocks(blocks, 0); got != nil {
		t.Fatal("ratio 0 kept blocks")
	}
}

func TestCandidatesDedup(t *testing.T) {
	blocks := []Block{
		{Key: "x", V1: []int32{0, 1}, V2: []int32{0}},
		{Key: "y", V1: []int32{0}, V2: []int32{0}}, // duplicates (0,0)
	}
	cands := Candidates(blocks)
	if len(cands) != 2 {
		t.Fatalf("candidates = %v, want 2 deduped pairs", cands)
	}
}

func TestMetaBlocking(t *testing.T) {
	// (0,0) co-occurs in two blocks, (1,0) in one: CBS prunes (1,0)
	// (average weight is 1.5).
	blocks := []Block{
		{Key: "x", V1: []int32{0, 1}, V2: []int32{0}},
		{Key: "y", V1: []int32{0}, V2: []int32{0}},
	}
	pruned := MetaBlocking(blocks)
	if !hasPair(pruned, 0, 0) {
		t.Fatal("meta-blocking pruned the strong pair")
	}
	if hasPair(pruned, 1, 0) {
		t.Fatal("meta-blocking kept the weak pair")
	}
	if MetaBlocking(nil) != nil {
		t.Fatal("empty input should give nil")
	}
}

func TestEvaluate(t *testing.T) {
	gt := dataset.NewGroundTruth([][2]int32{{0, 0}, {1, 1}})
	cands := [][2]int32{{0, 0}, {0, 1}, {2, 2}}
	q := Evaluate(cands, gt, 10, 10)
	if q.PairCompleteness != 0.5 {
		t.Fatalf("PC = %v", q.PairCompleteness)
	}
	if q.ReductionRatio != 1-3.0/100.0 {
		t.Fatalf("RR = %v", q.ReductionRatio)
	}
	if q.Candidates != 3 {
		t.Fatalf("Candidates = %d", q.Candidates)
	}
}

// On generated datasets, token blocking must achieve high pair
// completeness with a real reduction — the standard result the blocking
// literature reports.
func TestTokenBlockingOnGeneratedData(t *testing.T) {
	for _, id := range []string{"D1", "D2", "D4"} {
		spec, err := datagen.SpecByID(id)
		if err != nil {
			t.Fatal(err)
		}
		task := spec.Generate(3, 0.03)
		blocks := TokenBlocking(task.V1, task.V2)
		cands := Candidates(blocks)
		q := Evaluate(cands, task.GT, task.V1.Len(), task.V2.Len())
		if q.PairCompleteness < 0.95 {
			t.Errorf("%s: pair completeness %.2f, want >= 0.95", id, q.PairCompleteness)
		}
		// Purging + filtering keep completeness high while cutting
		// comparisons further.
		cleaned := FilterBlocks(PurgeBlocks(blocks, int64(task.V1.Len()*task.V2.Len()/4)), 0.5)
		q2 := Evaluate(Candidates(cleaned), task.GT, task.V1.Len(), task.V2.Len())
		if q2.Candidates > q.Candidates {
			t.Errorf("%s: purge+filter increased candidates", id)
		}
		if q2.PairCompleteness < 0.8 {
			t.Errorf("%s: cleaned pair completeness %.2f too low", id, q2.PairCompleteness)
		}
	}
}

// Property: FilterBlocks never invents entities or pairs, and every
// block it returns is two-sided.
func TestPropertyFilterBlocksSubset(t *testing.T) {
	f := func(seed int64, ratioRaw float64) bool {
		rng := rand.New(rand.NewSource(seed))
		ratio := 0.1 + 0.9*abs1(ratioRaw)
		var blocks []Block
		nb := rng.Intn(10) + 1
		for i := 0; i < nb; i++ {
			b := Block{Key: string(rune('a' + i))}
			for k := 0; k < rng.Intn(5)+1; k++ {
				b.V1 = append(b.V1, int32(rng.Intn(8)))
				b.V2 = append(b.V2, int32(rng.Intn(8)))
			}
			blocks = append(blocks, b)
		}
		before := map[int64]bool{}
		for _, c := range Candidates(blocks) {
			before[int64(c[0])<<32|int64(c[1])] = true
		}
		filtered := FilterBlocks(blocks, ratio)
		for _, b := range filtered {
			if len(b.V1) == 0 || len(b.V2) == 0 {
				return false
			}
		}
		for _, c := range Candidates(filtered) {
			if !before[int64(c[0])<<32|int64(c[1])] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func abs1(x float64) float64 {
	if x < 0 {
		x = -x
	}
	for x > 1 {
		x /= 2
	}
	return x
}
