// Package blocking implements the first step of the paper's CCER pipeline
// (Section 2): (meta-)blocking, the indexing that reduces the quadratic
// comparison space to candidate pairs before matching. The paper's own
// experiments skip blocking — the similarity threshold plays its pruning
// role — but a complete pipeline needs it, and the package follows the
// standard learning-free techniques surveyed in Papadakis et al.,
// "Blocking and Filtering Techniques for Entity Resolution" (reference
// [43] of the paper): token blocking, attribute blocking, block purging,
// block filtering and comparison-level meta-blocking with CBS weights.
package blocking

import (
	"sort"

	"github.com/ccer-go/ccer/internal/dataset"
	"github.com/ccer-go/ccer/internal/strsim"
)

// Block is one blocking-key bucket holding candidate entities from both
// collections. Only blocks with entities on both sides generate
// comparisons.
type Block struct {
	Key string
	V1  []int32
	V2  []int32
}

// Comparisons returns the number of cross-pairs the block generates,
// saturating at MaxInt64 for pathological blocks instead of overflowing.
func (b Block) Comparisons() int64 {
	return mulSat64(int64(len(b.V1)), int64(len(b.V2)))
}

// TokenBlocking builds one block per token appearing in any attribute
// value (schema-agnostic). It guarantees that every pair of entities
// sharing at least one token co-occurs in at least one block.
func TokenBlocking(c1, c2 *dataset.Collection) []Block {
	return keyBlocks(c1, c2, func(p dataset.Profile) []string {
		return strsim.Tokenize(p.Text())
	})
}

// AttributeBlocking builds one block per distinct token of the given
// attribute (schema-based standard blocking).
func AttributeBlocking(c1, c2 *dataset.Collection, attr string) []Block {
	return keyBlocks(c1, c2, func(p dataset.Profile) []string {
		return strsim.Tokenize(p.Get(attr))
	})
}

// keyBlocks indexes both collections by the keys function and keeps the
// blocks with entities on both sides, sorted by key for determinism.
func keyBlocks(c1, c2 *dataset.Collection, keys func(dataset.Profile) []string) []Block {
	type sides struct {
		v1, v2 []int32
	}
	index := map[string]*sides{}
	add := func(c *dataset.Collection, side int) {
		var seen map[string]bool
		for i, p := range c.Profiles {
			ks := keys(p)
			if len(ks) == 0 {
				// Profiles whose attributes are all empty produce no
				// blocking keys at all — in particular no ""-keyed block
				// that would pair every key-less entity with every other.
				continue
			}
			clear(seen)
			if seen == nil {
				seen = make(map[string]bool, len(ks))
			}
			for _, k := range ks {
				if k == "" || seen[k] {
					continue
				}
				seen[k] = true
				s, ok := index[k]
				if !ok {
					s = &sides{}
					index[k] = s
				}
				if side == 1 {
					s.v1 = append(s.v1, int32(i))
				} else {
					s.v2 = append(s.v2, int32(i))
				}
			}
		}
	}
	add(c1, 1)
	add(c2, 2)

	blocks := make([]Block, 0, len(index))
	for k, s := range index {
		if len(s.v1) == 0 || len(s.v2) == 0 {
			continue // no cross-source comparisons
		}
		blocks = append(blocks, Block{Key: k, V1: s.v1, V2: s.v2})
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i].Key < blocks[j].Key })
	return blocks
}

// PurgeBlocks removes oversized blocks: any block whose comparison count
// exceeds maxComparisons. Oversized blocks stem from stop-word-like keys
// and contribute mostly noise.
func PurgeBlocks(blocks []Block, maxComparisons int64) []Block {
	kept := blocks[:0:0]
	for _, b := range blocks {
		if b.Comparisons() <= maxComparisons {
			kept = append(kept, b)
		}
	}
	return kept
}

// FilterBlocks applies block filtering: every entity is retained only in
// the ratio portion of its smallest blocks (by comparison count), with
// ratio in (0,1]. This is the standard block-filtering heuristic of [43].
func FilterBlocks(blocks []Block, ratio float64) []Block {
	if ratio >= 1 || len(blocks) == 0 {
		return blocks
	}
	if ratio <= 0 {
		return nil
	}
	// Order blocks by ascending comparison count.
	order := make([]int, len(blocks))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return blocks[order[a]].Comparisons() < blocks[order[b]].Comparisons()
	})

	// Count each entity's block memberships.
	count1 := map[int32]int{}
	count2 := map[int32]int{}
	for _, b := range blocks {
		for _, u := range b.V1 {
			count1[u]++
		}
		for _, v := range b.V2 {
			count2[v]++
		}
	}
	limit1 := map[int32]int{}
	limit2 := map[int32]int{}
	for u, c := range count1 {
		limit1[u] = atLeastOne(int(ratio * float64(c)))
	}
	for v, c := range count2 {
		limit2[v] = atLeastOne(int(ratio * float64(c)))
	}

	// Walk blocks smallest-first, keeping entities under their limits.
	used1 := map[int32]int{}
	used2 := map[int32]int{}
	out := make([]Block, 0, len(blocks))
	filtered := make([]Block, len(blocks))
	for _, bi := range order {
		b := blocks[bi]
		nb := Block{Key: b.Key}
		for _, u := range b.V1 {
			if used1[u] < limit1[u] {
				used1[u]++
				nb.V1 = append(nb.V1, u)
			}
		}
		for _, v := range b.V2 {
			if used2[v] < limit2[v] {
				used2[v]++
				nb.V2 = append(nb.V2, v)
			}
		}
		filtered[bi] = nb
	}
	for _, b := range filtered {
		if len(b.V1) > 0 && len(b.V2) > 0 {
			out = append(out, b)
		}
	}
	return out
}

func atLeastOne(x int) int {
	if x < 1 {
		return 1
	}
	return x
}

// Candidates deduplicates the cross-pairs of all blocks.
func Candidates(blocks []Block) [][2]int32 {
	seen := map[int64]bool{}
	var out [][2]int32
	for _, b := range blocks {
		for _, u := range b.V1 {
			for _, v := range b.V2 {
				k := int64(u)<<32 | int64(uint32(v))
				if !seen[k] {
					seen[k] = true
					out = append(out, [2]int32{u, v})
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// MetaBlocking applies comparison-level weighting-and-pruning: every
// candidate pair is weighted by CBS (the number of blocks it co-occurs
// in) and pairs below the average weight are pruned — the WEP scheme of
// the meta-blocking literature.
func MetaBlocking(blocks []Block) [][2]int32 {
	cbs := map[int64]int{}
	for _, b := range blocks {
		for _, u := range b.V1 {
			for _, v := range b.V2 {
				cbs[int64(u)<<32|int64(uint32(v))]++
			}
		}
	}
	if len(cbs) == 0 {
		return nil
	}
	total := 0
	for _, c := range cbs {
		total += c
	}
	avg := float64(total) / float64(len(cbs))
	var out [][2]int32
	for k, c := range cbs {
		if float64(c) >= avg {
			out = append(out, [2]int32{int32(k >> 32), int32(uint32(k))})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// Quality measures blocking effectiveness against a ground truth: pair
// completeness (recall of true matches among candidates) and the
// reduction ratio versus the full Cartesian product.
type Quality struct {
	PairCompleteness float64
	ReductionRatio   float64
	Candidates       int
}

// Evaluate computes blocking quality for a candidate set.
func Evaluate(cands [][2]int32, gt *dataset.GroundTruth, n1, n2 int) Quality {
	q := Quality{Candidates: len(cands)}
	if gt.Len() > 0 {
		found := 0
		for _, c := range cands {
			if gt.IsMatch(c[0], c[1]) {
				found++
			}
		}
		q.PairCompleteness = float64(found) / float64(gt.Len())
	}
	if cart := int64(n1) * int64(n2); cart > 0 {
		q.ReductionRatio = 1 - float64(len(cands))/float64(cart)
	}
	return q
}
