package blocking

import (
	"math"
	"math/rand"
	"testing"

	"github.com/ccer-go/ccer/internal/dataset"
	"github.com/ccer-go/ccer/internal/strsim"
)

// randText draws a short string over a split alphabet: even seeds use
// the first half, odd seeds the second, so disjoint-alphabet pairs occur
// often enough to exercise the zero branches.
func randText(rng *rand.Rand, alphabet []rune) string {
	n := rng.Intn(12)
	out := make([]rune, n)
	for i := range out {
		out[i] = alphabet[rng.Intn(len(alphabet))]
	}
	return string(out)
}

// TestSigZeroScoreProperty is the losslessness proof by sampling: for
// random pairs, whenever the raw-rune signatures are disjoint, every
// measure the filter covers must be exactly zero; whenever the
// token-level signatures are disjoint (and the token lists are not both
// empty), all nine token measures must be exactly zero.
func TestSigZeroScoreProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	left := []rune("abcdeABCDE 123日本")
	right := []rune("vwxyzVWXYZ 789éü")
	both := append(append([]rune{}, left...), right...)
	// The covered char measures come from the exported soundness table,
	// resolved against the LIVE measure registry: a renamed measure or a
	// table entry with no registered function fails here, so the table
	// serving the erserve prefilter cannot drift silently.
	charMeasures := map[string]func(a, b string) float64{
		"SmithWaterman": strsim.SmithWaterman, // Monge-Elkan's core, not in AllMeasures
	}
	all := strsim.AllMeasures()
	for _, name := range SigZeroMeasures() {
		f, ok := all[name]
		if !ok {
			t.Fatalf("SigZeroMeasures lists %q, which strsim.AllMeasures does not provide", name)
		}
		charMeasures[name] = f
	}
	disjointSeen, tokDisjointSeen := 0, 0
	for iter := 0; iter < 3000; iter++ {
		var a, b string
		switch iter % 3 {
		case 0:
			a, b = randText(rng, left), randText(rng, right)
		case 1:
			a, b = randText(rng, both), randText(rng, both)
		default:
			a, b = randText(rng, left), randText(rng, both)
		}
		if a == "" || b == "" {
			continue // generation skips empty texts before any filter
		}
		if !Sig128Of(a).Intersects(Sig128Of(b)) {
			disjointSeen++
			for name, f := range charMeasures {
				if sim := f(a, b); sim != 0 {
					t.Fatalf("%s(%q,%q) = %v with disjoint signatures", name, a, b, sim)
				}
			}
		}
		// The folded 64-bit signature is coarser but equally lossless:
		// 64-bit disjoint implies a shared char is impossible too.
		if !SigOf(a).Intersects(SigOf(b)) {
			if Sig128Of(a).Intersects(Sig128Of(b)) {
				t.Fatalf("Sig disjoint but Sig128 intersecting for (%q,%q): 64-bit folding unsound", a, b)
			}
			for name, f := range charMeasures {
				if sim := f(a, b); sim != 0 {
					t.Fatalf("%s(%q,%q) = %v with disjoint 64-bit signatures", name, a, b, sim)
				}
			}
		}
		ta, tb := strsim.Tokenize(a), strsim.Tokenize(b)
		if !Sig128OfTokens(ta).Intersects(Sig128OfTokens(tb)) && !(len(ta) == 0 && len(tb) == 0) {
			tokDisjointSeen++
			sims := strsim.TokenSims(strsim.NewTokenProfile(ta), strsim.NewTokenProfile(tb), nil)
			for k, sim := range sims {
				if sim != 0 {
					t.Fatalf("token measure %d of (%q,%q) = %v with disjoint token signatures", k, a, b, sim)
				}
			}
		}
	}
	if disjointSeen < 100 || tokDisjointSeen < 100 {
		t.Fatalf("too few disjoint pairs sampled (%d raw, %d token) — test is vacuous", disjointSeen, tokDisjointSeen)
	}
}

// Needleman-Wunsch is the documented exception: disjoint alphabets still
// score min/(2·max) > 0, so it must never be behind the signature filter.
func TestSigDoesNotCoverNeedlemanWunsch(t *testing.T) {
	if sim := strsim.NeedlemanWunsch("abc", "xy"); math.Abs(sim-1.0/3.0) > 1e-12 || sim <= 0 {
		t.Fatalf("NW(abc,xy) = %v, want min/(2·max) = 1/3", sim)
	}
}

func TestLengthBound(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	alphabet := []rune("abcdef")
	for iter := 0; iter < 2000; iter++ {
		a, b := randText(rng, alphabet), randText(rng, alphabet)
		bound := LengthBound(len([]rune(a)), len([]rune(b)))
		if sim := strsim.Levenshtein(a, b); sim > bound {
			t.Fatalf("Levenshtein(%q,%q) = %v above LengthBound %v", a, b, sim, bound)
		}
		if sim := strsim.DamerauLevenshtein(a, b); sim > bound {
			t.Fatalf("Damerau(%q,%q) = %v above LengthBound %v", a, b, sim, bound)
		}
	}
	if LengthBound(0, 0) != 1 {
		t.Fatal("LengthBound(0,0) != 1")
	}
	if LengthBound(3, 0) != 0 {
		t.Fatal("LengthBound(3,0) != 0")
	}
}

func TestTokenIndexCandidates(t *testing.T) {
	lists := [][]string{
		{"golden", "dragon"},
		{"blue", "harbor", "harbor"}, // duplicate within a list
		{},                           // token-less entity: never a candidate
		{"dragon", "tavern"},
	}
	ix := NewTokenIndex(lists)
	if ix.Len() != 4 {
		t.Fatalf("Len = %d", ix.Len())
	}
	bits := make([]uint64, (ix.Len()+63)/64)
	var ids, dst []int32
	check := func(query []string, want []int32) {
		t.Helper()
		ids = ix.QueryIDs(query, ids)
		dst = ix.Candidates(ids, bits, dst)
		if len(dst) != len(want) {
			t.Fatalf("Candidates(%v) = %v, want %v", query, dst, want)
		}
		for k := range want {
			if dst[k] != want[k] {
				t.Fatalf("Candidates(%v) = %v, want %v", query, dst, want)
			}
		}
		for _, w := range bits {
			if w != 0 {
				t.Fatal("bitset not cleared")
			}
		}
	}
	check([]string{"dragon"}, []int32{0, 3})
	check([]string{"harbor", "dragon"}, []int32{0, 1, 3})
	check([]string{"unknown"}, nil)
	check(nil, nil)

	// CandidateBits leaves the marks for the caller.
	ids = ix.QueryIDs([]string{"dragon", "golden"}, ids)
	marked := ix.CandidateBits(ids, bits, nil)
	if len(marked) != 2 {
		t.Fatalf("CandidateBits marked %v", marked)
	}
	for _, i := range marked {
		if bits[i>>6]&(1<<(uint(i)&63)) == 0 {
			t.Fatal("mark missing")
		}
		bits[i>>6] &^= 1 << (uint(i) & 63)
	}
}

func TestComparisonsSaturates(t *testing.T) {
	b := Block{V1: make([]int32, 1), V2: make([]int32, 1)}
	if b.Comparisons() != 1 {
		t.Fatalf("Comparisons = %d", b.Comparisons())
	}
	if got := mulSat64(math.MaxInt64/2, 3); got != math.MaxInt64 {
		t.Fatalf("mulSat64 overflowed to %d", got)
	}
	if got := mulSat64(0, math.MaxInt64); got != 0 {
		t.Fatalf("mulSat64(0, max) = %d", got)
	}
}

// Profiles whose attributes are all empty must not produce blocks (in
// particular no empty-key block pairing every such entity).
func TestEmptyAttributeProfilesProduceNoBlocks(t *testing.T) {
	c1 := &dataset.Collection{Name: "a", Profiles: []dataset.Profile{
		{ID: "a0", Attrs: map[string]string{"name": "", "city": ""}},
		{ID: "a1", Attrs: map[string]string{}},
		{ID: "a2", Attrs: map[string]string{"name": "real entity"}},
	}}
	c2 := &dataset.Collection{Name: "b", Profiles: []dataset.Profile{
		{ID: "b0", Attrs: map[string]string{"name": ""}},
		{ID: "b1", Attrs: map[string]string{"name": "real entity"}},
	}}
	for _, blocks := range [][]Block{
		TokenBlocking(c1, c2),
		AttributeBlocking(c1, c2, "name"),
		AttributeBlocking(c1, c2, "missing"),
	} {
		for _, b := range blocks {
			if b.Key == "" {
				t.Fatalf("empty-key block emitted: %+v", b)
			}
			for _, u := range b.V1 {
				if u == 0 || u == 1 {
					t.Fatalf("key-less entity %d appears in block %q", u, b.Key)
				}
			}
		}
	}
	// The real pair must still block together.
	cands := Candidates(TokenBlocking(c1, c2))
	if !hasPair(cands, 2, 1) {
		t.Fatal("token blocking missed the real pair")
	}
}
