// Lossless zero-score filters: cheap per-pair tests and candidate
// indexes that provably never discard a pair whose similarity is
// positive, so similarity-graph generation (internal/simgraph) can skip
// kernel work on the rest of the n1×n2 space with byte-identical output.
//
// Three families of filters live here:
//
//   - Character signatures (Sig, Sig128): each rune of a string hashes to
//     one bit. Disjoint signatures imply disjoint alphabets, and two
//     strings over disjoint alphabets score exactly 0 on Levenshtein,
//     Damerau-Levenshtein, Jaro, q-grams distance, the two LCS variants,
//     Smith-Waterman and on every token measure that requires a shared
//     token or a shared character (hash collisions only ever merge
//     buckets, making the test conservative — never lossy). The one
//     schema-based measure this does NOT hold for is Needleman-Wunsch:
//     with the paper's scoring (match 0, mismatch -1, gap -2) a
//     disjoint-alphabet pair still scores min/(2·max) > 0, so NW must
//     stay dense.
//
//   - Length bounds (LengthBound): an upper bound on the normalized edit
//     similarities from the length difference alone, for pipelines that
//     prune below a positive threshold (the generation pipeline keeps
//     every positive pair, so this only applies to thresholded callers
//     like erserve's min_sim graphs).
//
//   - Token postings (TokenIndex): a CSR inverted index over one
//     collection's token lists, reusing the vector package's postings
//     machinery, enumerating exactly the opposite-side entities that
//     share at least one token — the support set of every
//     shared-token-required measure.
package blocking

import (
	"math"

	"github.com/ccer-go/ccer/internal/vector"
)

// Sig is a 64-bit character signature: one bit per hashed rune bucket.
type Sig uint64

// sigBucket hashes a rune onto a bucket in [0, 128): a Fibonacci-hash
// spread so that dense ASCII ranges do not pile onto neighbouring bits.
func sigBucket(r rune) uint32 { return uint32(r) * 0x9E3779B1 >> 25 }

// SigOf returns the 64-bit signature of the text's runes.
func SigOf(text string) Sig {
	var s Sig
	for _, r := range text {
		s |= 1 << (sigBucket(r) & 63)
	}
	return s
}

// Intersects reports whether the two signatures share a bucket. False
// guarantees the underlying alphabets are disjoint.
func (s Sig) Intersects(o Sig) bool { return s&o != 0 }

// Sig128 is the 128-bit variant of Sig, halving bucket collisions for
// the price of one extra word per test.
type Sig128 [2]uint64

// Sig128Of returns the 128-bit signature of the text's runes.
func Sig128Of(text string) Sig128 {
	var s Sig128
	for _, r := range text {
		b := sigBucket(r)
		s[b>>6&1] |= 1 << (b & 63)
	}
	return s
}

// Sig128OfRunes is Sig128Of over a pre-converted rune slice.
func Sig128OfRunes(rs []rune) Sig128 {
	var s Sig128
	for _, r := range rs {
		b := sigBucket(r)
		s[b>>6&1] |= 1 << (b & 63)
	}
	return s
}

// Sig128OfTokens returns the 128-bit signature of all runes of all
// tokens — the alphabet the token-level measures (and Monge-Elkan's
// Smith-Waterman core) actually see, which differs from the raw text's
// by case folding and separator removal.
func Sig128OfTokens(tokens []string) Sig128 {
	var s Sig128
	for _, tok := range tokens {
		for _, r := range tok {
			b := sigBucket(r)
			s[b>>6&1] |= 1 << (b & 63)
		}
	}
	return s
}

// Intersects reports whether the two signatures share a bucket.
func (s Sig128) Intersects(o Sig128) bool {
	return s[0]&o[0] != 0 || s[1]&o[1] != 0
}

// IsZero reports the signature of an empty (or all-filtered) input.
func (s Sig128) IsZero() bool { return s[0] == 0 && s[1] == 0 }

// Sig128All returns one raw-rune signature per text.
func Sig128All(texts []string) []Sig128 {
	out := make([]Sig128, len(texts))
	for i, t := range texts {
		out[i] = Sig128Of(t)
	}
	return out
}

// LengthBound returns an upper bound on the normalized edit similarity
// 1 - d(a,b)/max(|a|,|b|) of any two strings with rune lengths m and n,
// for every distance d with d(a,b) >= ||a|-|b|| (Levenshtein and
// Damerau-Levenshtein both qualify: each edit changes the length by at
// most one). Both lengths zero bound the similarity by 1. The bound is
// exact for pruning below a positive threshold t: LengthBound(m,n) <= t
// implies sim <= t; it is NOT a zero-score filter (the bound is positive
// whenever min(m,n) > 0).
func LengthBound(m, n int) float64 {
	if m < n {
		m, n = n, m
	}
	if m == 0 {
		return 1
	}
	return 1 - float64(m-n)/float64(m)
}

// SigZeroMeasures returns the strsim.AllMeasures names for which a
// disjoint raw-rune signature proves similarity exactly 0, so callers
// applying the Sig/Sig128 prefilter stay lossless. Needleman-Wunsch is
// excluded (positive for every non-empty pair under the paper's
// scoring), and so are all token measures (their both-token-less case
// is defined as 1, which raw signatures cannot see). The list is
// asserted against the live measure set and the zero property by the
// package tests, so a renamed or newly unsound measure fails loudly
// instead of silently disabling or corrupting the filter.
func SigZeroMeasures() []string {
	return []string{
		"Levenshtein", "DamerauLevenshtein", "Jaro", "QGramsDistance",
		"LongestCommonSubstr", "LongestCommonSubseq",
	}
}

// TokenIndex is a CSR inverted index over the token lists of one entity
// collection: Candidates enumerates the entities sharing at least one
// token with a query list. Built once per collection and safe for
// concurrent readers.
type TokenIndex struct {
	ids  map[string]int32
	off  []int32
	post []int32
	n    int
}

// NewTokenIndex indexes the per-entity token lists (duplicates within a
// list are collapsed).
func NewTokenIndex(lists [][]string) *TokenIndex {
	ix := &TokenIndex{ids: make(map[string]int32), n: len(lists)}
	idLists := make([][]int32, len(lists))
	var buf []int32
	for i, toks := range lists {
		buf = buf[:0]
		for _, tok := range toks {
			id, ok := ix.ids[tok]
			if !ok {
				id = int32(len(ix.ids))
				ix.ids[tok] = id
			}
			dup := false
			for _, prev := range buf {
				if prev == id {
					dup = true
					break
				}
			}
			if !dup {
				buf = append(buf, id)
			}
		}
		idLists[i] = append([]int32(nil), buf...)
	}
	ix.off, ix.post = vector.BuildPostings(idLists, len(ix.ids))
	return ix
}

// Len returns the number of indexed entities.
func (ix *TokenIndex) Len() int { return ix.n }

// Vocab returns the number of distinct indexed tokens.
func (ix *TokenIndex) Vocab() int { return len(ix.ids) }

// QueryIDs appends to dst the index's ids of the given tokens, skipping
// tokens the index has never seen (they cannot contribute candidates).
// Duplicate tokens are collapsed by the bitset in Candidates, so dst may
// contain repeats.
func (ix *TokenIndex) QueryIDs(tokens []string, dst []int32) []int32 {
	dst = dst[:0]
	for _, tok := range tokens {
		if id, ok := ix.ids[tok]; ok {
			dst = append(dst, id)
		}
	}
	return dst
}

// Candidates appends to dst, in ascending order, the indexed entities
// whose token list intersects the query ids (from QueryIDs). bits must
// be a zeroed bitset with at least Len() bits; it is cleared again
// before returning.
func (ix *TokenIndex) Candidates(queryIDs []int32, bits []uint64, dst []int32) []int32 {
	return vector.UnionCandidates(queryIDs, ix.off, ix.post, bits, dst)
}

// CandidateBits marks in bits, without clearing them afterwards, the
// indexed entities whose token list intersects the query ids, returning
// the marked entities (unsorted, for the caller to clear). Row kernels
// that only need membership tests keep the bitset live while scanning
// and clear it through the returned list.
func (ix *TokenIndex) CandidateBits(queryIDs []int32, bits []uint64, marked []int32) []int32 {
	marked = marked[:0]
	for _, id := range queryIDs {
		for _, i := range ix.post[ix.off[id]:ix.off[id+1]] {
			if bits[i>>6]&(1<<(uint(i)&63)) == 0 {
				bits[i>>6] |= 1 << (uint(i) & 63)
				marked = append(marked, i)
			}
		}
	}
	return marked
}

// mulSat64 multiplies two non-negative int64s, saturating at MaxInt64
// instead of overflowing — pathological blocks (every entity under one
// stop-word key on both sides) can overflow a naive product on 64-bit
// counts assembled from streamed inputs.
func mulSat64(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > math.MaxInt64/b {
		return math.MaxInt64
	}
	return a * b
}
