package simgraph

import (
	"github.com/ccer-go/ccer/internal/blocking"
	"github.com/ccer-go/ccer/internal/embed"
	"github.com/ccer-go/ccer/internal/ngraph"
	"github.com/ccer-go/ccer/internal/repcache"
	"github.com/ccer-go/ccer/internal/strsim"
	"github.com/ccer-go/ccer/internal/vector"
)

// RepCaches bundles the cross-build representation caches of every
// family: bag-model spaces (internal/vector), n-gram-graph bundles
// (internal/ngraph), semantic embeddings (internal/embed) and the
// schema-based per-attribute profiles owned by this package. All four
// are content-hash keyed, bounded, and safe for concurrent use, so a
// resident service (internal/serve) shares one RepCaches across
// requests and regenerating a graph for an already-seen dataset skips
// the per-entity representation work entirely — with byte-identical
// output, since every representation is a pure function of the texts.
type RepCaches struct {
	Spaces *vector.SpaceCache
	Grams  *ngraph.EntityCache
	Sems   *embed.RepCache
	attrs  *repcache.Cache[*attrReps]
}

// NewRepCaches returns caches sized to keep the representations of
// `datasets` resident tasks (datasets < 1 means 1): 6 bag spaces and 6
// n-gram bundles per task (one per representation model), 2 semantic
// rep pairs per scope, and one profile bundle per key attribute.
func NewRepCaches(datasets int) *RepCaches {
	if datasets < 1 {
		datasets = 1
	}
	return &RepCaches{
		Spaces: vector.NewSpaceCache(6 * datasets),
		Grams:  ngraph.NewEntityCache(6 * datasets),
		Sems:   embed.NewRepCache(8 * datasets),
		attrs:  repcache.New[*attrReps](4 * datasets),
	}
}

// RepCacheStats aggregates hit/miss/eviction counts across the four
// caches, for /metrics.
type RepCacheStats struct {
	Hits, Misses, Evictions int64
	Entries                 int
}

// Stats sums the four caches' counters. A nil *RepCaches reports zeros.
func (c *RepCaches) Stats() RepCacheStats {
	var s RepCacheStats
	if c == nil {
		return s
	}
	add := func(h, m, e int64, n int) {
		s.Hits += h
		s.Misses += m
		s.Evictions += e
		s.Entries += n
	}
	h, m, e := c.Spaces.Stats()
	add(h, m, e, c.Spaces.Len())
	h, m, e = c.Grams.Stats()
	add(h, m, e, c.Grams.Len())
	h, m, e = c.Sems.Stats()
	add(h, m, e, c.Sems.Len())
	h, m, e = c.attrs.Stats()
	add(h, m, e, c.attrs.Len())
	return s
}

// spaces/grams/sems return the per-kind caches of a possibly-nil
// RepCaches (nil caches build uncached).
func (c *RepCaches) spaces() *vector.SpaceCache {
	if c == nil {
		return nil
	}
	return c.Spaces
}

func (c *RepCaches) grams() *ngraph.EntityCache {
	if c == nil {
		return nil
	}
	return c.Grams
}

func (c *RepCaches) sems() *embed.RepCache {
	if c == nil {
		return nil
	}
	return c.Sems
}

// attrReps is the precomputed per-attribute representation bundle of
// the schema-based syntactic kernel: everything derived from the two
// attribute-text columns that is reused across all n1 rows. Immutable
// after construction; safe for concurrent readers.
type attrReps struct {
	texts1, texts2 []string
	toks1, toks2   [][]string
	prof1, prof2   []*strsim.TokenProfile
	qp1, qp2       []*strsim.QGramIDProfile
	cps1           []*strsim.CharProfile
	runes2         [][]rune
	jaro2          []*strsim.JaroTable

	// Lossless zero-score filter state: raw-rune signatures gate the six
	// non-NW char measures, token-rune signatures gate Monge-Elkan, and
	// the token postings index enumerates the pairs sharing a token (the
	// support of the other eight token measures).
	rawSig1, rawSig2 []blocking.Sig128
	tokSig1, tokSig2 []blocking.Sig128
	tokIndex         *blocking.TokenIndex
	queryIDs1        [][]int32
}

func buildAttrReps(texts1, texts2 []string) *attrReps {
	r := &attrReps{texts1: texts1, texts2: texts2}
	r.toks1 = tokenizeAll(texts1)
	r.toks2 = tokenizeAll(texts2)
	r.prof1 = strsim.ProfileAll(r.toks1)
	r.prof2 = strsim.ProfileAll(r.toks2)
	qv := strsim.NewQGramVocab()
	r.qp1 = qgramProfiles(qv, texts1)
	r.qp2 = qgramProfiles(qv, texts2)
	r.cps1 = strsim.CharProfileAll(texts1)
	r.runes2 = strsim.RunesAll(texts2)
	r.jaro2 = strsim.JaroTableAll(r.runes2)
	r.rawSig1 = blocking.Sig128All(texts1)
	r.rawSig2 = blocking.Sig128All(texts2)
	r.tokSig1 = make([]blocking.Sig128, len(texts1))
	for i, toks := range r.toks1 {
		r.tokSig1[i] = blocking.Sig128OfTokens(toks)
	}
	r.tokSig2 = make([]blocking.Sig128, len(texts2))
	for j, toks := range r.toks2 {
		r.tokSig2[j] = blocking.Sig128OfTokens(toks)
	}
	r.tokIndex = blocking.NewTokenIndex(r.toks2)
	r.queryIDs1 = make([][]int32, len(texts1))
	for i, toks := range r.toks1 {
		r.queryIDs1[i] = r.tokIndex.QueryIDs(toks, nil)
	}
	return r
}

// attrRepsFor returns the bundle for one attribute column pair, through
// the cache when one is attached.
func attrRepsFor(c *RepCaches, texts1, texts2 []string) *attrReps {
	if c == nil {
		return buildAttrReps(texts1, texts2)
	}
	reps, _ := c.attrs.GetOrBuild(AttrKey(texts1, texts2), func() *attrReps {
		return buildAttrReps(texts1, texts2)
	})
	return reps
}

// AttrKey is the content hash keying an attribute-profile bundle in the
// RepCaches: a pure function of the two attribute text columns. The
// durable layer uses it to verify spilled inputs before rewarming.
func AttrKey(texts1, texts2 []string) repcache.Key {
	h := repcache.NewHasher(0xa77)
	h.Strings(texts1)
	h.Strings(texts2)
	return h.Key()
}

// AttrWarm is one warm attribute-profile entry in spillable form: the
// input text columns the bundle is a pure function of, plus their
// content key. Rebuilding from the texts reproduces the bundle
// bit-identically, so spilling inputs (kilobytes) rather than the
// profile structures (suffix automata, postings) loses nothing but the
// rebuild time, which recovery pays once.
type AttrWarm struct {
	Key            repcache.Key
	Texts1, Texts2 []string
}

// WarmAttrEntries snapshots the warm attribute-profile set for
// spilling. Order is unspecified.
func (c *RepCaches) WarmAttrEntries() []AttrWarm {
	if c == nil {
		return nil
	}
	var out []AttrWarm
	c.attrs.Range(func(k repcache.Key, r *attrReps) {
		out = append(out, AttrWarm{Key: k, Texts1: r.texts1, Texts2: r.texts2})
	})
	return out
}

// WarmAttrs rebuilds the attribute-profile bundle of the two text
// columns into the cache (a boot-time reload of a spilled entry). It
// reports whether the entry was actually built now (false: it was
// already resident, or the caches are disabled).
func (c *RepCaches) WarmAttrs(texts1, texts2 []string) bool {
	if c == nil {
		return false
	}
	built := false
	c.attrs.GetOrBuild(AttrKey(texts1, texts2), func() *attrReps {
		built = true
		return buildAttrReps(texts1, texts2)
	})
	return built
}
