package simgraph

import (
	"fmt"
	"testing"

	"github.com/ccer-go/ccer/internal/dataset"
	"github.com/ccer-go/ccer/internal/embed"
	"github.com/ccer-go/ccer/internal/graph"
	"github.com/ccer-go/ccer/internal/ngraph"
	"github.com/ccer-go/ccer/internal/strsim"
	"github.com/ccer-go/ccer/internal/vector"
)

// Golden equivalence: the row-parallel, candidate-enumerating,
// representation-caching fast path must emit graphs byte-identical
// (graph.Checksum over the full edge list at float64 precision) to the
// seed pipeline shape — dense O(n1×n2) double loops recomputing every
// measure per pair through the string/Sim APIs. The reference below is
// the seed Generate ported verbatim minus the family-level goroutines
// (which never affected content).
//
// What this proves, precisely: candidate enumeration misses no
// positive pair, the single-merge-join AllSims/TokenSims kernels agree
// with the per-measure APIs, the per-entity caches are neutral, and
// the slot-ordered assembly is scheduling-independent. The measure
// KERNELS themselves are pinned to the deleted seed implementations
// one level down: internal/strsim's profile_test.go compares every
// token/q-gram measure bit-for-bit against verbatim copies of the old
// map-based code (the string API here routes through the same
// profiles, closing the chain), and the char *Seq funcs are the moved
// seed bodies. The one deliberate deviation is ngraph: the seed
// summed weight ratios in random map-iteration order (nondeterministic
// in the last ulp across processes), so the sorted-edge rewrite fixes
// a canonical order instead of reproducing an unreproducible one; both
// sides of this test share it.

func slowAppend(out []SimGraph, ds string, family Family, name string, b *graph.Builder) []SimGraph {
	g, err := b.Build()
	if err != nil {
		panic(fmt.Sprintf("golden: %v", err))
	}
	return append(out, SimGraph{Dataset: ds, Family: family, Name: name, G: g.NormalizeMinMax()})
}

func slowSchemaBased(task *dataset.Task, keyAttrs []string) []SimGraph {
	charFuncs := strsim.CharMeasures()
	tokenFuncs := map[string]strsim.TokenFunc{
		"Cosine":             strsim.CosineTokens,
		"BlockDistance":      strsim.BlockDistance,
		"Dice":               strsim.Dice,
		"SimonWhite":         strsim.SimonWhite,
		"OverlapCoefficient": strsim.OverlapCoefficient,
		"Euclidean":          strsim.EuclideanTokens,
		"Jaccard":            strsim.Jaccard,
		"GeneralizedJaccard": strsim.GeneralizedJaccard,
		"MongeElkan":         strsim.MongeElkan,
	}
	var out []SimGraph
	n1, n2 := task.V1.Len(), task.V2.Len()
	for _, attr := range keyAttrs {
		texts1 := task.V1.AttrTexts(attr)
		texts2 := task.V2.AttrTexts(attr)
		tokens1 := tokenizeAll(texts1)
		tokens2 := tokenizeAll(texts2)
		builders := make([]*graph.Builder, len(charMeasureNames)+len(tokenMeasureNames))
		for k := range builders {
			builders[k] = graph.NewBuilder(n1, n2)
		}
		for i := 0; i < n1; i++ {
			if texts1[i] == "" {
				continue
			}
			for j := 0; j < n2; j++ {
				if texts2[j] == "" {
					continue
				}
				k := 0
				for _, name := range charMeasureNames {
					if sim := charFuncs[name](texts1[i], texts2[j]); sim > 0 {
						builders[k].Add(int32(i), int32(j), sim)
					}
					k++
				}
				for _, name := range tokenMeasureNames {
					if sim := tokenFuncs[name](tokens1[i], tokens2[j]); sim > 0 {
						builders[k].Add(int32(i), int32(j), sim)
					}
					k++
				}
			}
		}
		k := 0
		for _, name := range charMeasureNames {
			out = slowAppend(out, task.Name, SBSyn, attr+"/"+name, builders[k])
			k++
		}
		for _, name := range tokenMeasureNames {
			out = slowAppend(out, task.Name, SBSyn, attr+"/"+name, builders[k])
			k++
		}
	}
	return out
}

func slowSchemaAgnostic(task *dataset.Task) []SimGraph {
	var out []SimGraph
	texts1 := task.V1.Texts()
	texts2 := task.V2.Texts()
	n1, n2 := len(texts1), len(texts2)
	for _, mode := range vector.Modes() {
		// Bag models: every pair, every measure, through the Sim API.
		space := vector.NewSpace(mode, texts1, texts2)
		for _, name := range vector.Measures() {
			b := graph.NewBuilder(n1, n2)
			for i := 0; i < n1; i++ {
				for j := 0; j < n2; j++ {
					if sim := space.Sim(name, i, j); sim > 0 {
						b.Add(int32(i), int32(j), sim)
					}
				}
			}
			out = slowAppend(out, task.Name, SASyn, mode.String()+"/"+name, b)
		}
		// N-gram graph models: every pair, every measure, via ngraph.Sim.
		vocab := ngraph.NewVocab()
		graphs1 := make([]*ngraph.Graph, n1)
		for i, p := range task.V1.Profiles {
			graphs1[i] = ngraph.FromEntity(vocab, mode, p.Values())
		}
		graphs2 := make([]*ngraph.Graph, n2)
		for j, p := range task.V2.Profiles {
			graphs2[j] = ngraph.FromEntity(vocab, mode, p.Values())
		}
		for _, name := range ngraph.Measures() {
			b := graph.NewBuilder(n1, n2)
			for i := 0; i < n1; i++ {
				for j := 0; j < n2; j++ {
					if sim := ngraph.Sim(name, graphs1[i], graphs2[j]); sim > 0 {
						b.Add(int32(i), int32(j), sim)
					}
				}
			}
			out = slowAppend(out, task.Name, SASyn, mode.String()+"g/"+name, b)
		}
	}
	return out
}

// slowSemantic mirrors the seed semantic family: embeddings via
// model.Embed per entity, token vectors truncated for the relaxed WMS.
func slowSemantic(task *dataset.Task, keyAttrs []string, opts Options, family Family) []SimGraph {
	type scope struct {
		prefix         string
		texts1, texts2 []string
	}
	var scopes []scope
	if family == SBSem {
		for _, attr := range keyAttrs {
			scopes = append(scopes, scope{attr + "/",
				task.V1.AttrTexts(attr), task.V2.AttrTexts(attr)})
		}
	} else {
		scopes = append(scopes, scope{"", task.V1.Texts(), task.V2.Texts()})
	}
	var out []SimGraph
	for _, sc := range scopes {
		for _, model := range embed.Models() {
			out = append(out, slowSemanticGraphs(task.Name, family,
				sc.prefix+model.Name(), model, sc.texts1, sc.texts2, opts)...)
		}
	}
	return out
}

func slowSemanticGraphs(ds string, family Family, prefix string, model embed.Model, texts1, texts2 []string, opts Options) []SimGraph {
	n1, n2 := len(texts1), len(texts2)
	embAll := func(texts []string) [][]float64 {
		out := make([][]float64, len(texts))
		for i, t := range texts {
			out[i] = model.Embed(t)
		}
		return out
	}
	tvAll := func(texts []string) ([][][]float64, [][]float64) {
		vecs := make([][][]float64, len(texts))
		ws := make([][]float64, len(texts))
		for i, t := range texts {
			v, w := model.TokenVectors(t)
			if len(v) > opts.maxWMDTokens() {
				v, w = v[:opts.maxWMDTokens()], w[:opts.maxWMDTokens()]
			}
			vecs[i] = v
			ws[i] = w
		}
		return vecs, ws
	}
	emb1, emb2 := embAll(texts1), embAll(texts2)
	tv1, tw1 := tvAll(texts1)
	tv2, tw2 := tvAll(texts2)

	builders := [3]*graph.Builder{}
	for k := range builders {
		builders[k] = graph.NewBuilder(n1, n2)
	}
	for i := 0; i < n1; i++ {
		if texts1[i] == "" {
			continue
		}
		for j := 0; j < n2; j++ {
			if texts2[j] == "" {
				continue
			}
			if sim := embed.CosineSim(emb1[i], emb2[j]); sim > 0 {
				builders[0].Add(int32(i), int32(j), sim)
			}
			if sim := embed.EuclideanSim(emb1[i], emb2[j]); sim > 0 {
				builders[1].Add(int32(i), int32(j), sim)
			}
			if sim := relaxedWMS(tv1[i], tw1[i], tv2[j], tw2[j]); sim > 0 {
				builders[2].Add(int32(i), int32(j), sim)
			}
		}
	}
	var out []SimGraph
	for k, name := range embed.Measures() {
		out = slowAppend(out, ds, family, prefix+"/"+name, builders[k])
	}
	return out
}

// slowGenerate is the seed Generate: all four families, dense loops,
// per-pair recomputation, no cleaning filter.
func slowGenerate(task *dataset.Task, keyAttrs []string, opts Options) []SimGraph {
	var out []SimGraph
	for _, f := range opts.families() {
		switch f {
		case SBSyn:
			out = append(out, slowSchemaBased(task, keyAttrs)...)
		case SASyn:
			out = append(out, slowSchemaAgnostic(task)...)
		case SBSem:
			out = append(out, slowSemantic(task, keyAttrs, opts, SBSem)...)
		case SASem:
			out = append(out, slowSemantic(task, nil, opts, SASem)...)
		}
	}
	return out
}

func TestGoldenChecksumEquivalence(t *testing.T) {
	task := testTask(t)
	opts := Options{KeepNoMatchGraphs: true}
	fast := Generate(task, []string{"name"}, opts)
	slow := slowGenerate(task, []string{"name"}, opts)
	if len(fast) != len(slow) {
		t.Fatalf("fast path emitted %d graphs, seed path %d", len(fast), len(slow))
	}
	byFamily := map[Family]int{}
	for k := range fast {
		f, s := fast[k], slow[k]
		if f.Family != s.Family || f.Name != s.Name || f.Dataset != s.Dataset {
			t.Fatalf("graph %d is %s|%s, seed path has %s|%s", k, f.Family, f.Name, s.Family, s.Name)
		}
		if f.G.Checksum() != s.G.Checksum() {
			t.Fatalf("%s/%s: fast-path checksum %016x != seed checksum %016x",
				f.Family, f.Name, f.G.Checksum(), s.G.Checksum())
		}
		byFamily[f.Family]++
	}
	for _, fam := range Families() {
		if byFamily[fam] == 0 {
			t.Fatalf("family %s missing from golden comparison", fam)
		}
	}
}
