// Package simgraph implements the paper's similarity-graph generation
// process (Sections 4-5): it applies every similarity function of the
// taxonomy — schema-based syntactic, schema-agnostic syntactic (bag and
// n-gram-graph models), schema-based semantic and schema-agnostic
// semantic — to a Clean-Clean ER task, producing one weighted bipartite
// similarity graph per function. No blocking is applied: every entity
// pair with similarity above zero becomes an edge, and all graphs are
// min-max normalized.
//
// Generation is the front half of every experiment run and of the
// erserve generation path, so it is built for throughput: per-entity
// representations (token profiles, q-gram profiles, sparse vectors,
// n-gram graphs, embeddings) are precomputed once and shared across all
// measures of a family; token and bag measures enumerate candidate
// pairs through inverted indexes instead of dense double loops; and the
// per-row kernels fan out over the shared internal/par pool with
// slot-ordered assembly, so the output is deterministic and identical
// at any worker count.
//
// The package also applies the first of the paper's cleaning rules
// (dropping graphs in which no matching pair has a positive weight); the
// F-measure-based rules need matching results and live in internal/exp.
package simgraph

import (
	"fmt"
	"math"

	"github.com/ccer-go/ccer/internal/dataset"
	"github.com/ccer-go/ccer/internal/embed"
	"github.com/ccer-go/ccer/internal/graph"
	"github.com/ccer-go/ccer/internal/ngraph"
	"github.com/ccer-go/ccer/internal/par"
	"github.com/ccer-go/ccer/internal/strsim"
	"github.com/ccer-go/ccer/internal/vector"
)

// Family is one of the four types of edge weights of the paper's
// taxonomy.
type Family string

const (
	// SBSyn: schema-based syntactic weights (16 string measures per key
	// attribute).
	SBSyn Family = "SB-SYN"
	// SASyn: schema-agnostic syntactic weights (6 bag models × 6
	// measures plus 6 n-gram-graph models × 4 measures).
	SASyn Family = "SA-SYN"
	// SBSem: schema-based semantic weights (2 embedding models × 3
	// measures per key attribute).
	SBSem Family = "SB-SEM"
	// SASem: schema-agnostic semantic weights (2 embedding models × 3
	// measures).
	SASem Family = "SA-SEM"
)

// Families returns the four weight families in the paper's presentation
// order.
func Families() []Family { return []Family{SBSyn, SASyn, SBSem, SASem} }

// SimGraph is one generated similarity graph.
type SimGraph struct {
	// Dataset is the task name, e.g. "D2".
	Dataset string
	// Family is the weight family the graph belongs to.
	Family Family
	// Name identifies the similarity function, e.g. "name/Levenshtein"
	// or "char3/CosineTF".
	Name string
	// G is the min-max normalized similarity graph.
	G *graph.Bipartite
}

// Options tunes corpus generation.
type Options struct {
	// Families selects which weight families to generate; nil means all
	// four.
	Families []Family
	// MaxWMDTokens caps the tokens per entity considered by the relaxed
	// Word Mover's similarity; 0 means 6. WMD cost is quadratic in this.
	MaxWMDTokens int
	// KeepNoMatchGraphs disables the cleaning rule that drops graphs in
	// which every matching pair has zero weight.
	KeepNoMatchGraphs bool
	// Parallelism is the number of workers the per-row generation
	// kernels fan out over (internal/par semantics: 0 means all CPUs,
	// anything below 1 means serial). Output is deterministic and
	// identical at any setting.
	Parallelism int
}

func (o Options) families() []Family {
	if len(o.Families) == 0 {
		return Families()
	}
	return o.Families
}

func (o Options) maxWMDTokens() int {
	if o.MaxWMDTokens <= 0 {
		return 6
	}
	return o.MaxWMDTokens
}

// Ordered measure names, fixed so that generation is deterministic.
var (
	charMeasureNames = []string{
		"Levenshtein", "DamerauLevenshtein", "Jaro", "NeedlemanWunsch",
		"QGramsDistance", "LongestCommonSubstr", "LongestCommonSubseq",
	}
	tokenMeasureNames = []string{
		"Cosine", "BlockDistance", "Dice", "SimonWhite",
		"OverlapCoefficient", "Euclidean", "Jaccard",
		"GeneralizedJaccard", "MongeElkan",
	}
)

// rowEdge is one output of a row kernel: the opposite-side node and the
// weight, tagged with the measure it belongs to. Rows are assembled into
// per-measure builders in slot order, so the edge set never depends on
// worker scheduling.
type rowEdge struct {
	k   int32 // measure index
	opp int32 // opposite-side node
	w   float64
}

// reserveRows sizes each measure's builder for the edges the assembled
// rows are about to Add, avoiding repeated growth.
func reserveRows(builders []*graph.Builder, rows [][]rowEdge) {
	counts := make([]int, len(builders))
	for _, row := range rows {
		for _, e := range row {
			counts[e.k]++
		}
	}
	for k, b := range builders {
		b.Reserve(counts[k])
	}
}

// sealRow stores an exact-size copy of the worker's row buffer in the
// slot and hands the buffer back for reuse, so per-row appends grow one
// buffer per worker instead of reallocating per row.
func sealRow(slot *[]rowEdge, buf []rowEdge) []rowEdge {
	if len(buf) > 0 {
		*slot = append(make([]rowEdge, 0, len(buf)), buf...)
	}
	return buf[:0]
}

// Generate builds the similarity-graph corpus for the task. keyAttrs are
// the schema-based attributes (Spec.KeyAttrs for generated datasets).
//
// Every similarity function is pure and only the matching step is ever
// timed, so generation parallelizes freely: each family's pairwise
// kernel fans its rows over the shared worker pool and the output order
// stays deterministic (families in taxonomy order, graphs in function
// order within each family, identical edges at any parallelism).
func Generate(task *dataset.Task, keyAttrs []string, opts Options) []SimGraph {
	workers := par.Workers(opts.Parallelism)
	var models []embed.Model
	var out []SimGraph
	for _, f := range opts.families() {
		switch f {
		case SBSyn:
			out = append(out, schemaBasedSyntactic(task, keyAttrs, workers)...)
		case SASyn:
			out = append(out, schemaAgnosticSyntactic(task, workers)...)
		case SBSem, SASem:
			if models == nil {
				// One token-vector cache pair serves both semantic
				// families; embeddings are unchanged by it.
				models = embed.CachedModels()
			}
			if f == SBSem {
				out = append(out, semantic(task, keyAttrs, opts, SBSem, workers, models)...)
			} else {
				out = append(out, semantic(task, nil, opts, SASem, workers, models)...)
			}
		}
	}
	if !opts.KeepNoMatchGraphs {
		out = filterNoMatchGraphs(out, task.GT)
	}
	return out
}

// filterNoMatchGraphs drops graphs in which every ground-truth pair has a
// zero weight (no edge), the paper's first cleaning rule.
func filterNoMatchGraphs(graphs []SimGraph, gt *dataset.GroundTruth) []SimGraph {
	kept := graphs[:0:0]
	for _, sg := range graphs {
		if hasMatchEdge(sg.G, gt) {
			kept = append(kept, sg)
		}
	}
	return kept
}

// hasMatchEdge reports whether any ground-truth pair is an edge of g,
// scanning whichever side of the check is smaller: sparse graphs walk
// their own edge set against the GT lookup, dense ones probe the GT
// pairs against the adjacency lists. Either direction exits on the first
// hit. A nil gt panics (as the seed implementation did) rather than
// silently classifying every graph as no-match.
func hasMatchEdge(g *graph.Bipartite, gt *dataset.GroundTruth) bool {
	if g.NumEdges() < gt.Len() {
		for _, e := range g.Edges() {
			if gt.IsMatch(e.U, e.V) {
				return true
			}
		}
		return false
	}
	for _, p := range gt.Pairs {
		if _, exists := g.Weight(p[0], p[1]); exists {
			return true
		}
	}
	return false
}

// schemaBasedSyntactic applies the 16 string measures to each key
// attribute as row kernels: for each left entity, the bit-parallel
// pattern state (strsim.CharProfile: PEQ bitmask tables + suffix
// automaton) is built once and all n2 right rune slices stream through
// it, amortizing kernel setup across the row the same way TokenSims
// amortizes token profiles; Jaro and Needleman-Wunsch stay scalar over
// per-worker integer scratch, q-grams and token measures remain merge
// joins over precomputed profiles. Rows fan over the worker pool.
func schemaBasedSyntactic(task *dataset.Task, keyAttrs []string, workers int) []SimGraph {
	numChar := len(charMeasureNames)
	numMeasures := numChar + len(tokenMeasureNames)

	var out []SimGraph
	n1, n2 := task.V1.Len(), task.V2.Len()
	for _, attr := range keyAttrs {
		texts1 := task.V1.AttrTexts(attr)
		texts2 := task.V2.AttrTexts(attr)
		prof1 := strsim.ProfileAll(tokenizeAll(texts1))
		prof2 := strsim.ProfileAll(tokenizeAll(texts2))
		qp1 := qgramProfiles(texts1)
		qp2 := qgramProfiles(texts2)
		cps1 := strsim.CharProfileAll(texts1)
		runes2 := strsim.RunesAll(texts2)

		rows := make([][]rowEdge, n1)
		rowBufs := make([][]rowEdge, workers)
		swCaches := make([]*strsim.SWCache, workers)
		charScr := make([]*strsim.CharScratch, workers)
		for w := range swCaches {
			swCaches[w] = strsim.NewSWCache()
			charScr[w] = strsim.NewCharScratch()
		}
		par.For(n1, workers, nil, func(w, i int) {
			if texts1[i] == "" {
				return
			}
			cp, scr := cps1[i], charScr[w]
			ra := cp.Runes()
			row := rowBufs[w][:0]
			// Measure indexes follow charMeasureNames order.
			for j := 0; j < n2; j++ {
				if texts2[j] == "" {
					continue
				}
				rb := runes2[j]
				if sim := cp.Levenshtein(rb, scr); sim > 0 {
					row = append(row, rowEdge{0, int32(j), sim})
				}
				if sim := cp.DamerauLevenshtein(rb, scr); sim > 0 {
					row = append(row, rowEdge{1, int32(j), sim})
				}
				if sim := strsim.JaroSeqScratch(ra, rb, scr); sim > 0 {
					row = append(row, rowEdge{2, int32(j), sim})
				}
				if sim := strsim.NeedlemanWunschSeqScratch(ra, rb, scr); sim > 0 {
					row = append(row, rowEdge{3, int32(j), sim})
				}
				if sim := qp1[i].Distance(qp2[j]); sim > 0 {
					row = append(row, rowEdge{4, int32(j), sim})
				}
				if sim := cp.LongestCommonSubstring(rb); sim > 0 {
					row = append(row, rowEdge{5, int32(j), sim})
				}
				if sim := cp.LongestCommonSubsequence(rb, scr); sim > 0 {
					row = append(row, rowEdge{6, int32(j), sim})
				}
				sims := strsim.TokenSims(prof1[i], prof2[j], swCaches[w])
				for k, sim := range sims {
					if sim > 0 {
						row = append(row, rowEdge{int32(numChar + k), int32(j), sim})
					}
				}
			}
			rowBufs[w] = sealRow(&rows[i], row)
		})

		builders := make([]*graph.Builder, numMeasures)
		for k := range builders {
			builders[k] = graph.NewBuilder(n1, n2)
		}
		reserveRows(builders, rows)
		for i, row := range rows {
			for _, e := range row {
				builders[e.k].Add(int32(i), e.opp, e.w)
			}
		}
		for k, name := range charMeasureNames {
			out = appendGraph(out, task.Name, SBSyn, attr+"/"+name, builders[k])
		}
		for k, name := range tokenMeasureNames {
			out = appendGraph(out, task.Name, SBSyn, attr+"/"+name, builders[numChar+k])
		}
	}
	return out
}

func tokenizeAll(texts []string) [][]string {
	out := make([][]string, len(texts))
	for i, t := range texts {
		out[i] = strsim.Tokenize(t)
	}
	return out
}

func qgramProfiles(texts []string) []*strsim.QGramProfile {
	out := make([]*strsim.QGramProfile, len(texts))
	for i, t := range texts {
		out[i] = strsim.NewQGramProfile(t, 3)
	}
	return out
}

// schemaAgnosticSyntactic produces the 36 bag-model graphs and 24
// n-gram-graph-model graphs of Section 4. Representation models run in
// order; within each model the candidate rows fan over the worker pool.
func schemaAgnosticSyntactic(task *dataset.Task, workers int) []SimGraph {
	var out []SimGraph
	for _, mode := range vector.Modes() {
		out = append(out, schemaAgnosticMode(task, mode, workers)...)
	}
	return out
}

// rowScratch is the per-worker reusable state of a candidate-row kernel.
type rowScratch struct {
	bits []uint64
	buf  []int32
	row  []rowEdge
}

// schemaAgnosticMode builds the 6 bag graphs and 4 n-gram-graph graphs of
// one representation model.
func schemaAgnosticMode(task *dataset.Task, mode vector.Mode, workers int) []SimGraph {
	texts1 := task.V1.Texts()
	texts2 := task.V2.Texts()
	n1, n2 := len(texts1), len(texts2)
	var out []SimGraph

	// Bag models: all 6 measures in one merge join per candidate pair,
	// candidates enumerated per collection-2 row through the space's
	// inverted index with a reusable bitset.
	space := vector.NewSpace(mode, texts1, texts2)
	space.CacheTFIDF() // materialize the per-entity caches before fanning out
	bagRows := make([][]rowEdge, n2)
	scratch := make([]rowScratch, workers)
	for w := range scratch {
		scratch[w].bits = make([]uint64, (n1+63)/64)
	}
	par.For(n2, workers, nil, func(w, j int) {
		s := &scratch[w]
		s.buf = space.Candidates(j, s.bits, s.buf)
		row := s.row[:0]
		for _, i := range s.buf {
			sims := space.AllSims(int(i), j)
			for k, sim := range sims {
				if sim > 0 {
					row = append(row, rowEdge{int32(k), i, sim})
				}
			}
		}
		s.row = sealRow(&bagRows[j], row)
	})
	bagBuilders := make([]*graph.Builder, 6)
	for k := range bagBuilders {
		bagBuilders[k] = graph.NewBuilder(n1, n2)
	}
	reserveRows(bagBuilders, bagRows)
	for j, row := range bagRows {
		for _, e := range row {
			bagBuilders[e.k].Add(e.opp, int32(j), e.w)
		}
	}
	for k, name := range vector.Measures() {
		out = appendGraph(out, task.Name, SASyn, mode.String()+"/"+name, bagBuilders[k])
	}

	// N-gram graph models: per-value graphs merged per entity once, all
	// 4 measures in one merge join over pairs sharing at least one gram,
	// enumerated through CSR postings over collection 1.
	vocab := ngraph.NewVocab()
	graphs1 := make([]*ngraph.Graph, n1)
	for i, p := range task.V1.Profiles {
		graphs1[i] = ngraph.FromEntity(vocab, mode, p.Values())
	}
	graphs2 := make([]*ngraph.Graph, n2)
	for j, p := range task.V2.Profiles {
		graphs2[j] = ngraph.FromEntity(vocab, mode, p.Values())
	}
	ids2 := make([][]int32, n2)
	for j, g := range graphs2 {
		ids2[j] = g.GramIDs()
	}
	// Inverted index over the gram nodes of collection 1's graphs: a
	// pair sharing no gram node shares no edge, so the posting union
	// per row is a superset of all non-zero graph similarities.
	ids1 := make([][]int32, n1)
	for i, g := range graphs1 {
		ids1[i] = g.GramIDs()
	}
	postOff, postIDs := vector.BuildPostings(ids1, vocab.Size())
	gramRows := make([][]rowEdge, n2)
	par.For(n2, workers, nil, func(w, j int) {
		s := &scratch[w]
		s.buf = vector.UnionCandidates(ids2[j], postOff, postIDs, s.bits, s.buf)
		row := s.row[:0]
		for _, i := range s.buf {
			sims := ngraph.AllSims(graphs1[i], graphs2[j])
			for k, sim := range sims {
				if sim > 0 {
					row = append(row, rowEdge{int32(k), i, sim})
				}
			}
		}
		s.row = sealRow(&gramRows[j], row)
	})
	gBuilders := make([]*graph.Builder, 4)
	for k := range gBuilders {
		gBuilders[k] = graph.NewBuilder(n1, n2)
	}
	reserveRows(gBuilders, gramRows)
	for j, row := range gramRows {
		for _, e := range row {
			gBuilders[e.k].Add(e.opp, int32(j), e.w)
		}
	}
	for k, name := range ngraph.Measures() {
		out = appendGraph(out, task.Name, SASyn, mode.String()+"g/"+name, gBuilders[k])
	}
	return out
}

// semantic produces embedding-based graphs: schema-based when keyAttrs is
// non-empty (one set per attribute) or schema-agnostic on the full
// profile texts.
func semantic(task *dataset.Task, keyAttrs []string, opts Options, family Family, workers int, models []embed.Model) []SimGraph {
	type scope struct {
		prefix         string
		texts1, texts2 []string
	}
	var scopes []scope
	if family == SBSem {
		for _, attr := range keyAttrs {
			scopes = append(scopes, scope{attr + "/",
				task.V1.AttrTexts(attr), task.V2.AttrTexts(attr)})
		}
	} else {
		scopes = append(scopes, scope{"", task.V1.Texts(), task.V2.Texts()})
	}

	var out []SimGraph
	for _, sc := range scopes {
		for _, model := range models {
			out = append(out, semanticGraphs(task.Name, family,
				sc.prefix+model.Name(), model, sc.texts1, sc.texts2, opts, workers)...)
		}
	}
	return out
}

// entityVecs holds the semantic representations of one collection: the
// text embedding plus the (truncated) token vectors for the relaxed Word
// Mover's similarity. Both derive from one TokenVectors pass per entity.
type entityVecs struct {
	emb    [][]float64
	normSq []float64
	tv     [][][]float64
	tw     [][]float64
}

func semanticVecs(model embed.Model, texts []string, maxTokens int) entityVecs {
	ev := entityVecs{
		emb:    make([][]float64, len(texts)),
		normSq: make([]float64, len(texts)),
		tv:     make([][][]float64, len(texts)),
		tw:     make([][]float64, len(texts)),
	}
	for i, t := range texts {
		v, w := model.TokenVectors(t)
		ev.emb[i] = embed.EmbedTokens(model.Dim(), v, w)
		ev.normSq[i] = embed.NormSq(ev.emb[i])
		if len(v) > maxTokens {
			v, w = v[:maxTokens], w[:maxTokens]
		}
		ev.tv[i] = v
		ev.tw[i] = w
	}
	return ev
}

func semanticGraphs(ds string, family Family, prefix string, model embed.Model, texts1, texts2 []string, opts Options, workers int) []SimGraph {
	n1, n2 := len(texts1), len(texts2)

	// One TokenVectors pass per entity feeds both the text embedding and
	// the truncated token vectors (the seed recomputed them separately).
	ev1 := semanticVecs(model, texts1, opts.maxWMDTokens())
	ev2 := semanticVecs(model, texts2, opts.maxWMDTokens())

	maxTok2 := 0
	for _, vecs := range ev2.tv {
		if len(vecs) > maxTok2 {
			maxTok2 = len(vecs)
		}
	}
	rows := make([][]rowEdge, n1)
	rowBufs := make([][]rowEdge, workers)
	colBests := make([][]float64, workers)
	for w := range colBests {
		colBests[w] = make([]float64, maxTok2)
	}
	par.For(n1, workers, nil, func(w, i int) {
		if texts1[i] == "" {
			return
		}
		row := rowBufs[w][:0]
		colBest := colBests[w]
		va, wa := ev1.tv[i], ev1.tw[i]
		for j := 0; j < n2; j++ {
			if texts2[j] == "" {
				continue
			}
			cos, euc := embed.CosineEuclidean(ev1.emb[i], ev2.emb[j],
				ev1.normSq[i], ev2.normSq[j])
			if cos > 0 {
				row = append(row, rowEdge{0, int32(j), cos})
			}
			if euc > 0 {
				row = append(row, rowEdge{1, int32(j), euc})
			}
			if sim := relaxedWMSFused(va, wa, ev2.tv[j], ev2.tw[j], colBest); sim > 0 {
				row = append(row, rowEdge{2, int32(j), sim})
			}
		}
		rowBufs[w] = sealRow(&rows[i], row)
	})

	builders := [3]*graph.Builder{}
	for k := range builders {
		builders[k] = graph.NewBuilder(n1, n2)
	}
	reserveRows(builders[:], rows)
	for i, row := range rows {
		for _, e := range row {
			builders[e.k].Add(int32(i), e.opp, e.w)
		}
	}
	var out []SimGraph
	for k, name := range embed.Measures() {
		out = appendGraph(out, ds, family, prefix+"/"+name, builders[k])
	}
	return out
}

// relaxedWMS mirrors embed.WordMoversSim over pre-computed token vectors.
func relaxedWMS(va [][]float64, wa []float64, vb [][]float64, wb []float64) float64 {
	if len(va) == 0 || len(vb) == 0 {
		return 0
	}
	d := directional(va, wa, vb)
	if d2 := directional(vb, wb, va); d2 > d {
		d = d2
	}
	return 1 / (1 + d)
}

// relaxedWMSFused is relaxedWMS computing both directional transport
// costs from ONE pass over the |va|×|vb| token distance matrix instead
// of two: iterating (v, u) with u inner tracks each v's row minimum in
// directional's exact comparison order, and updates each u's column
// minimum at ascending v — also directional's scan order for the
// reverse direction, whose distances (u[k]-v[k])² are the bit-exact
// squares of the negated differences computed here. Halves the
// quadratic inner work per pair with bit-identical results.
//
// colBest is caller scratch of at least len(vb) floats.
func relaxedWMSFused(va [][]float64, wa []float64, vb [][]float64, wb []float64, colBest []float64) float64 {
	if len(va) == 0 || len(vb) == 0 {
		return 0
	}
	colBest = colBest[:len(vb)]
	for t := range colBest {
		colBest[t] = -1
	}
	d1 := 0.0
	for ti, v := range va {
		rowBest := -1.0
		for tj, u := range vb {
			s := 0.0
			for k := range v {
				dd := v[k] - u[k]
				s += dd * dd
			}
			if rowBest < 0 || s < rowBest {
				rowBest = s
			}
			if cb := colBest[tj]; cb < 0 || s < cb {
				colBest[tj] = s
			}
		}
		if rowBest > 0 {
			d1 += wa[ti] * math.Sqrt(rowBest)
		}
	}
	d2 := 0.0
	for tj := range colBest {
		if cb := colBest[tj]; cb > 0 {
			d2 += wb[tj] * math.Sqrt(cb)
		}
	}
	if d2 > d1 {
		d1 = d2
	}
	return 1 / (1 + d1)
}

func directional(from [][]float64, w []float64, to [][]float64) float64 {
	total := 0.0
	for i, v := range from {
		best := -1.0
		for _, u := range to {
			s := 0.0
			for k := range v {
				dd := v[k] - u[k]
				s += dd * dd
			}
			if best < 0 || s < best {
				best = s
			}
		}
		if best > 0 {
			total += w[i] * math.Sqrt(best)
		}
	}
	return total
}

func appendGraph(out []SimGraph, ds string, family Family, name string, b *graph.Builder) []SimGraph {
	g, err := b.Build()
	if err != nil {
		// Builders are fed validated indexes; an error here is a bug.
		panic(fmt.Sprintf("simgraph: %v", err))
	}
	return append(out, SimGraph{Dataset: ds, Family: family, Name: name, G: g.NormalizeMinMax()})
}
