// Package simgraph implements the paper's similarity-graph generation
// process (Sections 4-5): it applies every similarity function of the
// taxonomy — schema-based syntactic, schema-agnostic syntactic (bag and
// n-gram-graph models), schema-based semantic and schema-agnostic
// semantic — to a Clean-Clean ER task, producing one weighted bipartite
// similarity graph per function. No blocking is applied: every entity
// pair with similarity above zero becomes an edge, and all graphs are
// min-max normalized.
//
// The package also applies the first of the paper's cleaning rules
// (dropping graphs in which no matching pair has a positive weight); the
// F-measure-based rules need matching results and live in internal/exp.
package simgraph

import (
	"fmt"
	"math"
	"sync"

	"github.com/ccer-go/ccer/internal/dataset"
	"github.com/ccer-go/ccer/internal/embed"
	"github.com/ccer-go/ccer/internal/graph"
	"github.com/ccer-go/ccer/internal/ngraph"
	"github.com/ccer-go/ccer/internal/strsim"
	"github.com/ccer-go/ccer/internal/vector"
)

// Family is one of the four types of edge weights of the paper's
// taxonomy.
type Family string

const (
	// SBSyn: schema-based syntactic weights (16 string measures per key
	// attribute).
	SBSyn Family = "SB-SYN"
	// SASyn: schema-agnostic syntactic weights (6 bag models × 6
	// measures plus 6 n-gram-graph models × 4 measures).
	SASyn Family = "SA-SYN"
	// SBSem: schema-based semantic weights (2 embedding models × 3
	// measures per key attribute).
	SBSem Family = "SB-SEM"
	// SASem: schema-agnostic semantic weights (2 embedding models × 3
	// measures).
	SASem Family = "SA-SEM"
)

// Families returns the four weight families in the paper's presentation
// order.
func Families() []Family { return []Family{SBSyn, SASyn, SBSem, SASem} }

// SimGraph is one generated similarity graph.
type SimGraph struct {
	// Dataset is the task name, e.g. "D2".
	Dataset string
	// Family is the weight family the graph belongs to.
	Family Family
	// Name identifies the similarity function, e.g. "name/Levenshtein"
	// or "char3/CosineTF".
	Name string
	// G is the min-max normalized similarity graph.
	G *graph.Bipartite
}

// Options tunes corpus generation.
type Options struct {
	// Families selects which weight families to generate; nil means all
	// four.
	Families []Family
	// MaxWMDTokens caps the tokens per entity considered by the relaxed
	// Word Mover's similarity; 0 means 6. WMD cost is quadratic in this.
	MaxWMDTokens int
	// KeepNoMatchGraphs disables the cleaning rule that drops graphs in
	// which every matching pair has zero weight.
	KeepNoMatchGraphs bool
}

func (o Options) families() []Family {
	if len(o.Families) == 0 {
		return Families()
	}
	return o.Families
}

func (o Options) maxWMDTokens() int {
	if o.MaxWMDTokens <= 0 {
		return 6
	}
	return o.MaxWMDTokens
}

// Ordered measure names, fixed so that generation is deterministic.
var (
	charMeasureNames = []string{
		"Levenshtein", "DamerauLevenshtein", "Jaro", "NeedlemanWunsch",
		"QGramsDistance", "LongestCommonSubstr", "LongestCommonSubseq",
	}
	tokenMeasureNames = []string{
		"Cosine", "BlockDistance", "Dice", "SimonWhite",
		"OverlapCoefficient", "Euclidean", "Jaccard",
		"GeneralizedJaccard", "MongeElkan",
	}
)

// Generate builds the similarity-graph corpus for the task. keyAttrs are
// the schema-based attributes (Spec.KeyAttrs for generated datasets).
//
// Generation runs the weight families concurrently — every similarity
// function is pure, and only the matching step is ever timed — while the
// output order stays deterministic (families in taxonomy order, graphs
// in function order within each family).
func Generate(task *dataset.Task, keyAttrs []string, opts Options) []SimGraph {
	families := opts.families()
	slots := make([][]SimGraph, len(families))
	var wg sync.WaitGroup
	for i, f := range families {
		wg.Add(1)
		go func(i int, f Family) {
			defer wg.Done()
			switch f {
			case SBSyn:
				slots[i] = schemaBasedSyntactic(task, keyAttrs)
			case SASyn:
				slots[i] = schemaAgnosticSyntactic(task)
			case SBSem:
				slots[i] = semantic(task, keyAttrs, opts, SBSem)
			case SASem:
				slots[i] = semantic(task, nil, opts, SASem)
			}
		}(i, f)
	}
	wg.Wait()
	var out []SimGraph
	for _, s := range slots {
		out = append(out, s...)
	}
	if !opts.KeepNoMatchGraphs {
		out = filterNoMatchGraphs(out, task.GT)
	}
	return out
}

// filterNoMatchGraphs drops graphs in which every ground-truth pair has a
// zero weight (no edge), the paper's first cleaning rule.
func filterNoMatchGraphs(graphs []SimGraph, gt *dataset.GroundTruth) []SimGraph {
	kept := graphs[:0:0]
	for _, sg := range graphs {
		ok := false
		for _, p := range gt.Pairs {
			if _, exists := sg.G.Weight(p[0], p[1]); exists {
				ok = true
				break
			}
		}
		if ok {
			kept = append(kept, sg)
		}
	}
	return kept
}

// schemaBasedSyntactic applies the 16 string measures to each key
// attribute, computing all measures per pair in one pass over the
// pre-tokenized values.
func schemaBasedSyntactic(task *dataset.Task, keyAttrs []string) []SimGraph {
	charFuncs := strsim.CharMeasures()
	tokenFuncs := map[string]strsim.TokenFunc{
		"Cosine":             strsim.CosineTokens,
		"BlockDistance":      strsim.BlockDistance,
		"Dice":               strsim.Dice,
		"SimonWhite":         strsim.SimonWhite,
		"OverlapCoefficient": strsim.OverlapCoefficient,
		"Euclidean":          strsim.EuclideanTokens,
		"Jaccard":            strsim.Jaccard,
		"GeneralizedJaccard": strsim.GeneralizedJaccard,
		"MongeElkan":         strsim.MongeElkan,
	}

	var out []SimGraph
	n1, n2 := task.V1.Len(), task.V2.Len()
	for _, attr := range keyAttrs {
		texts1 := task.V1.AttrTexts(attr)
		texts2 := task.V2.AttrTexts(attr)
		tokens1 := tokenizeAll(texts1)
		tokens2 := tokenizeAll(texts2)

		numMeasures := len(charMeasureNames) + len(tokenMeasureNames)
		builders := make([]*graph.Builder, numMeasures)
		for k := range builders {
			builders[k] = graph.NewBuilder(n1, n2)
		}

		for i := 0; i < n1; i++ {
			if texts1[i] == "" {
				continue
			}
			for j := 0; j < n2; j++ {
				if texts2[j] == "" {
					continue
				}
				k := 0
				for _, name := range charMeasureNames {
					if sim := charFuncs[name](texts1[i], texts2[j]); sim > 0 {
						builders[k].Add(int32(i), int32(j), sim)
					}
					k++
				}
				for _, name := range tokenMeasureNames {
					if sim := tokenFuncs[name](tokens1[i], tokens2[j]); sim > 0 {
						builders[k].Add(int32(i), int32(j), sim)
					}
					k++
				}
			}
		}

		k := 0
		for _, name := range charMeasureNames {
			out = appendGraph(out, task.Name, SBSyn, attr+"/"+name, builders[k])
			k++
		}
		for _, name := range tokenMeasureNames {
			out = appendGraph(out, task.Name, SBSyn, attr+"/"+name, builders[k])
			k++
		}
	}
	return out
}

func tokenizeAll(texts []string) [][]string {
	out := make([][]string, len(texts))
	for i, t := range texts {
		out[i] = strsim.Tokenize(t)
	}
	return out
}

// schemaAgnosticSyntactic produces the 36 bag-model graphs and 24
// n-gram-graph-model graphs of Section 4, one representation model per
// goroutine.
func schemaAgnosticSyntactic(task *dataset.Task) []SimGraph {
	modes := vector.Modes()
	slots := make([][]SimGraph, len(modes))
	var wg sync.WaitGroup
	for i, mode := range modes {
		wg.Add(1)
		go func(i int, mode vector.Mode) {
			defer wg.Done()
			slots[i] = schemaAgnosticMode(task, mode)
		}(i, mode)
	}
	wg.Wait()
	var out []SimGraph
	for _, s := range slots {
		out = append(out, s...)
	}
	return out
}

// schemaAgnosticMode builds the 6 bag graphs and 4 n-gram-graph graphs of
// one representation model.
func schemaAgnosticMode(task *dataset.Task, mode vector.Mode) []SimGraph {
	texts1 := task.V1.Texts()
	texts2 := task.V2.Texts()
	n1, n2 := len(texts1), len(texts2)
	var out []SimGraph

	// Bag models: all 6 measures in one pass over candidate pairs.
	space := vector.NewSpace(mode, texts1, texts2)
	c1, c2 := space.CacheTFIDF()
	cands := space.CandidatePairs()
	bagBuilders := make([]*graph.Builder, 6)
	for k := range bagBuilders {
		bagBuilders[k] = graph.NewBuilder(n1, n2)
	}
	for _, p := range cands {
		sims := space.AllSims(int(p[0]), int(p[1]), c1, c2)
		for k, sim := range sims {
			if sim > 0 {
				bagBuilders[k].Add(p[0], p[1], sim)
			}
		}
	}
	for k, name := range vector.Measures() {
		out = appendGraph(out, task.Name, SASyn, mode.String()+"/"+name, bagBuilders[k])
	}

	// N-gram graph models: per-value graphs merged per entity, all 4
	// measures in one pass over pairs sharing at least one gram.
	vocab := ngraph.NewVocab()
	graphs1 := make([]*ngraph.Graph, n1)
	for i, p := range task.V1.Profiles {
		graphs1[i] = ngraph.FromEntity(vocab, mode, p.Values())
	}
	graphs2 := make([]*ngraph.Graph, n2)
	for j, p := range task.V2.Profiles {
		graphs2[j] = ngraph.FromEntity(vocab, mode, p.Values())
	}
	gBuilders := make([]*graph.Builder, 4)
	for k := range gBuilders {
		gBuilders[k] = graph.NewBuilder(n1, n2)
	}
	for _, p := range gramCandidates(graphs1, graphs2) {
		sims := ngraph.AllSims(graphs1[p[0]], graphs2[p[1]])
		for k, sim := range sims {
			if sim > 0 {
				gBuilders[k].Add(p[0], p[1], sim)
			}
		}
	}
	for k, name := range ngraph.Measures() {
		out = appendGraph(out, task.Name, SASyn, mode.String()+"g/"+name, gBuilders[k])
	}
	return out
}

// gramCandidates returns the pairs of entities whose n-gram graphs share
// at least one gram node — a superset of the pairs with a shared edge,
// hence of all non-zero graph similarities.
func gramCandidates(graphs1, graphs2 []*ngraph.Graph) [][2]int32 {
	index := make(map[int32][]int32)
	for i, g := range graphs1 {
		for _, id := range g.GramIDs() {
			index[id] = append(index[id], int32(i))
		}
	}
	seen := make(map[int64]bool)
	var pairs [][2]int32
	for j, g := range graphs2 {
		for _, id := range g.GramIDs() {
			for _, i := range index[id] {
				key := int64(i)<<32 | int64(j)
				if !seen[key] {
					seen[key] = true
					pairs = append(pairs, [2]int32{i, int32(j)})
				}
			}
		}
	}
	return pairs
}

// semantic produces embedding-based graphs: schema-based when keyAttrs is
// non-empty (one set per attribute) or schema-agnostic on the full
// profile texts.
func semantic(task *dataset.Task, keyAttrs []string, opts Options, family Family) []SimGraph {
	type scope struct {
		prefix         string
		texts1, texts2 []string
	}
	var scopes []scope
	if family == SBSem {
		for _, attr := range keyAttrs {
			scopes = append(scopes, scope{attr + "/",
				task.V1.AttrTexts(attr), task.V2.AttrTexts(attr)})
		}
	} else {
		scopes = append(scopes, scope{"", task.V1.Texts(), task.V2.Texts()})
	}

	var out []SimGraph
	for _, sc := range scopes {
		for _, model := range embed.Models() {
			out = append(out, semanticGraphs(task.Name, family,
				sc.prefix+model.Name(), model, sc.texts1, sc.texts2, opts)...)
		}
	}
	return out
}

func semanticGraphs(ds string, family Family, prefix string, model embed.Model, texts1, texts2 []string, opts Options) []SimGraph {
	n1, n2 := len(texts1), len(texts2)

	// Cache embeddings and (truncated) token vectors once per entity.
	emb1 := embedAll(model, texts1)
	emb2 := embedAll(model, texts2)
	tv1, tw1 := tokenVecsAll(model, texts1, opts.maxWMDTokens())
	tv2, tw2 := tokenVecsAll(model, texts2, opts.maxWMDTokens())

	builders := [3]*graph.Builder{}
	for k := range builders {
		builders[k] = graph.NewBuilder(n1, n2)
	}
	for i := 0; i < n1; i++ {
		if texts1[i] == "" {
			continue
		}
		for j := 0; j < n2; j++ {
			if texts2[j] == "" {
				continue
			}
			if sim := embed.CosineSim(emb1[i], emb2[j]); sim > 0 {
				builders[0].Add(int32(i), int32(j), sim)
			}
			if sim := embed.EuclideanSim(emb1[i], emb2[j]); sim > 0 {
				builders[1].Add(int32(i), int32(j), sim)
			}
			if sim := relaxedWMS(tv1[i], tw1[i], tv2[j], tw2[j]); sim > 0 {
				builders[2].Add(int32(i), int32(j), sim)
			}
		}
	}
	var out []SimGraph
	for k, name := range embed.Measures() {
		out = appendGraph(out, ds, family, prefix+"/"+name, builders[k])
	}
	return out
}

func embedAll(model embed.Model, texts []string) [][]float64 {
	out := make([][]float64, len(texts))
	for i, t := range texts {
		out[i] = model.Embed(t)
	}
	return out
}

func tokenVecsAll(model embed.Model, texts []string, maxTokens int) ([][][]float64, [][]float64) {
	vecs := make([][][]float64, len(texts))
	ws := make([][]float64, len(texts))
	for i, t := range texts {
		v, w := model.TokenVectors(t)
		if len(v) > maxTokens {
			v, w = v[:maxTokens], w[:maxTokens]
		}
		vecs[i] = v
		ws[i] = w
	}
	return vecs, ws
}

// relaxedWMS mirrors embed.WordMoversSim over pre-computed token vectors.
func relaxedWMS(va [][]float64, wa []float64, vb [][]float64, wb []float64) float64 {
	if len(va) == 0 || len(vb) == 0 {
		return 0
	}
	d := directional(va, wa, vb)
	if d2 := directional(vb, wb, va); d2 > d {
		d = d2
	}
	return 1 / (1 + d)
}

func directional(from [][]float64, w []float64, to [][]float64) float64 {
	total := 0.0
	for i, v := range from {
		best := -1.0
		for _, u := range to {
			s := 0.0
			for k := range v {
				dd := v[k] - u[k]
				s += dd * dd
			}
			if best < 0 || s < best {
				best = s
			}
		}
		if best > 0 {
			total += w[i] * math.Sqrt(best)
		}
	}
	return total
}

func appendGraph(out []SimGraph, ds string, family Family, name string, b *graph.Builder) []SimGraph {
	g, err := b.Build()
	if err != nil {
		// Builders are fed validated indexes; an error here is a bug.
		panic(fmt.Sprintf("simgraph: %v", err))
	}
	return append(out, SimGraph{Dataset: ds, Family: family, Name: name, G: g.NormalizeMinMax()})
}
