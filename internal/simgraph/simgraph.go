// Package simgraph implements the paper's similarity-graph generation
// process (Sections 4-5): it applies every similarity function of the
// taxonomy — schema-based syntactic, schema-agnostic syntactic (bag and
// n-gram-graph models), schema-based semantic and schema-agnostic
// semantic — to a Clean-Clean ER task, producing one weighted bipartite
// similarity graph per function. No blocking is applied: every entity
// pair with similarity above zero becomes an edge, and all graphs are
// min-max normalized.
//
// Generation is the front half of every experiment run and of the
// erserve generation path, so it is built for throughput: per-entity
// representations (token profiles, q-gram profiles, sparse vectors,
// n-gram graphs, embeddings) are precomputed once and shared across all
// measures of a family; token and bag measures enumerate candidate
// pairs through inverted indexes instead of dense double loops; and the
// per-row kernels fan out over the shared internal/par pool with
// slot-ordered assembly, so the output is deterministic and identical
// at any worker count.
//
// The package also applies the first of the paper's cleaning rules
// (dropping graphs in which no matching pair has a positive weight); the
// F-measure-based rules need matching results and live in internal/exp.
package simgraph

import (
	"fmt"
	"math"

	"github.com/ccer-go/ccer/internal/dataset"
	"github.com/ccer-go/ccer/internal/embed"
	"github.com/ccer-go/ccer/internal/graph"
	"github.com/ccer-go/ccer/internal/ngraph"
	"github.com/ccer-go/ccer/internal/obs"
	"github.com/ccer-go/ccer/internal/par"
	"github.com/ccer-go/ccer/internal/strsim"
	"github.com/ccer-go/ccer/internal/vector"
)

// Family is one of the four types of edge weights of the paper's
// taxonomy.
type Family string

const (
	// SBSyn: schema-based syntactic weights (16 string measures per key
	// attribute).
	SBSyn Family = "SB-SYN"
	// SASyn: schema-agnostic syntactic weights (6 bag models × 6
	// measures plus 6 n-gram-graph models × 4 measures).
	SASyn Family = "SA-SYN"
	// SBSem: schema-based semantic weights (2 embedding models × 3
	// measures per key attribute).
	SBSem Family = "SB-SEM"
	// SASem: schema-agnostic semantic weights (2 embedding models × 3
	// measures).
	SASem Family = "SA-SEM"
)

// Families returns the four weight families in the paper's presentation
// order.
func Families() []Family { return []Family{SBSyn, SASyn, SBSem, SASem} }

// SimGraph is one generated similarity graph.
type SimGraph struct {
	// Dataset is the task name, e.g. "D2".
	Dataset string
	// Family is the weight family the graph belongs to.
	Family Family
	// Name identifies the similarity function, e.g. "name/Levenshtein"
	// or "char3/CosineTF".
	Name string
	// G is the min-max normalized similarity graph.
	G *graph.Bipartite
}

// Options tunes corpus generation.
type Options struct {
	// Families selects which weight families to generate; nil means all
	// four.
	Families []Family
	// MaxWMDTokens caps the tokens per entity considered by the relaxed
	// Word Mover's similarity; 0 means 6. WMD cost is quadratic in this.
	MaxWMDTokens int
	// KeepNoMatchGraphs disables the cleaning rule that drops graphs in
	// which every matching pair has zero weight.
	KeepNoMatchGraphs bool
	// Parallelism is the number of workers the per-row generation
	// kernels fan out over (internal/par semantics: 0 means all CPUs,
	// anything below 1 means serial). Output is deterministic and
	// identical at any setting.
	Parallelism int
	// Dense disables candidate pruning: every kernel visits every
	// non-empty pair, as the seed pipeline did. The output is byte-
	// identical to the pruned path (the filters are lossless); it exists
	// as the reference side of the equivalence tests and CI run.
	Dense bool
	// Caches, when non-nil, supplies the cross-build representation
	// caches (TF/TF-IDF spaces, n-gram graphs, embeddings, schema-based
	// attribute profiles). Representations are pure functions of the
	// texts, so cached builds are byte-identical to fresh ones; a
	// resident service shares one RepCaches across requests.
	Caches *RepCaches
	// Trace, when non-nil, receives one span per generation stage
	// (representation builds, row-kernel fan-outs, graph assembly),
	// nested under a "generate/<family>" span per family. A nil Trace
	// costs nothing: spans are recorded per stage, never per pair, and
	// every span call is a no-op on nil.
	Trace *obs.Trace
}

// FamilyStats counts candidate-filter decisions of one weight family:
// Visited is the number of kernel-block computations performed, Skipped
// the number proven unnecessary by a lossless zero-score filter (the
// pair could not have produced a positive edge for that block's
// measures). For SB-SYN a pair contributes up to three blocks (char
// measures, token measures, and the always-dense Needleman-Wunsch); for
// SA-SYN one block per representation model (bag and n-gram-graph); the
// semantic families are dense by nature (their measures are positive
// for every non-empty pair), so their Skipped stays 0.
type FamilyStats struct {
	Visited int64
	Skipped int64
}

// SkipRatio returns Skipped / (Visited + Skipped), 0 when nothing ran.
func (s FamilyStats) SkipRatio() float64 {
	if s.Visited+s.Skipped == 0 {
		return 0
	}
	return float64(s.Skipped) / float64(s.Visited+s.Skipped)
}

// GenStats aggregates the per-family filter counters of one generation.
type GenStats struct {
	SBSyn, SASyn, SBSem, SASem FamilyStats
}

// Of returns the stats of one family.
func (s GenStats) Of(f Family) FamilyStats {
	switch f {
	case SBSyn:
		return s.SBSyn
	case SASyn:
		return s.SASyn
	case SBSem:
		return s.SBSem
	default:
		return s.SASem
	}
}

// Add accumulates counters for one family (exported for callers that
// aggregate stats across multiple generations, e.g. internal/exp).
func (s *GenStats) Add(f Family, visited, skipped int64) {
	var fs *FamilyStats
	switch f {
	case SBSyn:
		fs = &s.SBSyn
	case SASyn:
		fs = &s.SASyn
	case SBSem:
		fs = &s.SBSem
	default:
		fs = &s.SASem
	}
	fs.Visited += visited
	fs.Skipped += skipped
}

// Total sums the family counters.
func (s GenStats) Total() FamilyStats {
	return FamilyStats{
		Visited: s.SBSyn.Visited + s.SASyn.Visited + s.SBSem.Visited + s.SASem.Visited,
		Skipped: s.SBSyn.Skipped + s.SASyn.Skipped + s.SBSem.Skipped + s.SASem.Skipped,
	}
}

// famCounters are the per-worker counter slots of one kernel fan-out;
// summed after par.For returns, so no atomics are needed.
type famCounters struct {
	visited, skipped []int64
}

func newFamCounters(workers int) *famCounters {
	return &famCounters{visited: make([]int64, workers), skipped: make([]int64, workers)}
}

func (c *famCounters) sum() (visited, skipped int64) {
	for w := range c.visited {
		visited += c.visited[w]
		skipped += c.skipped[w]
	}
	return visited, skipped
}

func (o Options) families() []Family {
	if len(o.Families) == 0 {
		return Families()
	}
	return o.Families
}

func (o Options) maxWMDTokens() int {
	if o.MaxWMDTokens <= 0 {
		return 6
	}
	return o.MaxWMDTokens
}

// Ordered measure names, fixed so that generation is deterministic.
var (
	charMeasureNames = []string{
		"Levenshtein", "DamerauLevenshtein", "Jaro", "NeedlemanWunsch",
		"QGramsDistance", "LongestCommonSubstr", "LongestCommonSubseq",
	}
	tokenMeasureNames = []string{
		"Cosine", "BlockDistance", "Dice", "SimonWhite",
		"OverlapCoefficient", "Euclidean", "Jaccard",
		"GeneralizedJaccard", "MongeElkan",
	}
)

// rowEdge is one output of a row kernel: the opposite-side node and the
// weight, tagged with the measure it belongs to. Rows are assembled into
// per-measure builders in slot order, so the edge set never depends on
// worker scheduling.
type rowEdge struct {
	k   int32 // measure index
	opp int32 // opposite-side node
	w   float64
}

// reserveRows sizes each measure's builder for the edges the assembled
// rows are about to Add, avoiding repeated growth.
func reserveRows(builders []*graph.Builder, rows [][]rowEdge) {
	counts := make([]int, len(builders))
	for _, row := range rows {
		for _, e := range row {
			counts[e.k]++
		}
	}
	for k, b := range builders {
		b.Reserve(counts[k])
	}
}

// sealRow stores an exact-size copy of the worker's row buffer in the
// slot and hands the buffer back for reuse, so per-row appends grow one
// buffer per worker instead of reallocating per row.
func sealRow(slot *[]rowEdge, buf []rowEdge) []rowEdge {
	if len(buf) > 0 {
		*slot = append(make([]rowEdge, 0, len(buf)), buf...)
	}
	return buf[:0]
}

// Generate builds the similarity-graph corpus for the task. keyAttrs are
// the schema-based attributes (Spec.KeyAttrs for generated datasets).
//
// Every similarity function is pure and only the matching step is ever
// timed, so generation parallelizes freely: each family's pairwise
// kernel fans its rows over the shared worker pool and the output order
// stays deterministic (families in taxonomy order, graphs in function
// order within each family, identical edges at any parallelism).
func Generate(task *dataset.Task, keyAttrs []string, opts Options) []SimGraph {
	out, _ := GenerateStats(task, keyAttrs, opts)
	return out
}

// GenerateStats is Generate, also reporting the per-family candidate-
// filter counters (pairs visited vs. provably skipped).
func GenerateStats(task *dataset.Task, keyAttrs []string, opts Options) ([]SimGraph, GenStats) {
	workers := par.Workers(opts.Parallelism)
	var models []embed.Model
	var out []SimGraph
	var stats GenStats
	for _, f := range opts.families() {
		endFam := opts.Trace.StartSpan("generate/" + string(f))
		switch f {
		case SBSyn:
			out = append(out, schemaBasedSyntactic(task, keyAttrs, workers, opts, &stats)...)
		case SASyn:
			out = append(out, schemaAgnosticSyntactic(task, workers, opts, &stats)...)
		case SBSem, SASem:
			if models == nil {
				// One token-vector cache pair serves both semantic
				// families; embeddings are unchanged by it. With caches
				// attached the models (and their token-vector caches)
				// persist across builds.
				endModels := opts.Trace.StartSpanUnder("generate/"+string(f), "models")
				models = opts.Caches.sems().Models()
				endModels()
			}
			if f == SBSem {
				out = append(out, semantic(task, keyAttrs, opts, SBSem, workers, models, &stats)...)
			} else {
				out = append(out, semantic(task, nil, opts, SASem, workers, models, &stats)...)
			}
		}
		endFam()
	}
	if !opts.KeepNoMatchGraphs {
		endClean := opts.Trace.StartSpan("clean/no-match")
		out = filterNoMatchGraphs(out, task.GT)
		endClean()
	}
	return out, stats
}

// filterNoMatchGraphs drops graphs in which every ground-truth pair has a
// zero weight (no edge), the paper's first cleaning rule.
func filterNoMatchGraphs(graphs []SimGraph, gt *dataset.GroundTruth) []SimGraph {
	kept := graphs[:0:0]
	for _, sg := range graphs {
		if hasMatchEdge(sg.G, gt) {
			kept = append(kept, sg)
		}
	}
	return kept
}

// hasMatchEdge reports whether any ground-truth pair is an edge of g,
// walking the graph's edge set against the GT lookup with an early exit
// on the first hit. It deliberately avoids the adjacency probes: the
// graph's matching indexes are built lazily, and the cleaning filter
// must not force them for graphs whose only consumer is this check. A
// nil gt panics (as the seed implementation did) rather than silently
// classifying every graph as no-match.
func hasMatchEdge(g *graph.Bipartite, gt *dataset.GroundTruth) bool {
	for _, e := range g.Edges() {
		if gt.IsMatch(e.U, e.V) {
			return true
		}
	}
	return false
}

// schemaBasedSyntactic applies the 16 string measures to each key
// attribute as row kernels over the precomputed attrReps bundle. Each
// row streams all n2 right strings through the left entity's
// bit-parallel pattern state, but per pair only the measure blocks that
// can produce a positive edge run:
//
//   - Needleman-Wunsch is computed for every non-empty pair — with the
//     paper's scoring it is positive for EVERY such pair (min/(2·max)
//     even for disjoint alphabets), so its graph is dense by
//     construction and no lossless filter exists; the bit-parallel
//     kernel makes the mandatory dense scan cheap.
//   - The six other char measures run only when the raw-rune signatures
//     intersect (disjoint alphabets provably score 0 on all of them).
//   - The nine token measures run only for pairs sharing a token (the
//     postings index), for pairs whose token profiles are both empty
//     (every token measure defines that case as 1), and — Monge-Elkan
//     alone — for pairs whose token-rune signatures intersect without a
//     shared token (ME's Smith-Waterman core only needs a shared
//     character; the other eight are provably 0 without a shared token).
//
// Rows fan over the worker pool; edges are assembled in slot order, so
// the output is identical at any worker count and equal to the dense
// path.
func schemaBasedSyntactic(task *dataset.Task, keyAttrs []string, workers int, opts Options, stats *GenStats) []SimGraph {
	numChar := len(charMeasureNames)
	numMeasures := numChar + len(tokenMeasureNames)
	meIdx := int32(numChar + 8) // MongeElkan's slot in TokenSims order

	var out []SimGraph
	n1, n2 := task.V1.Len(), task.V2.Len()
	const parent = "generate/" + string(SBSyn)
	for _, attr := range keyAttrs {
		endReps := opts.Trace.StartSpanUnder(parent, "reps/"+attr)
		reps := attrRepsFor(opts.Caches, task.V1.AttrTexts(attr), task.V2.AttrTexts(attr))
		texts1, texts2 := reps.texts1, reps.texts2
		endReps()

		endRows := opts.Trace.StartSpanUnder(parent, "rows/"+attr)
		rows := make([][]rowEdge, n1)
		rowBufs := make([][]rowEdge, workers)
		swCaches := make([]*strsim.SWCache, workers)
		charScr := make([]*strsim.CharScratch, workers)
		candBits := make([][]uint64, workers)
		candLists := make([][]int32, workers)
		ctr := newFamCounters(workers)
		for w := range swCaches {
			swCaches[w] = strsim.NewSWCache()
			charScr[w] = strsim.NewCharScratch()
			candBits[w] = make([]uint64, (n2+63)/64)
		}
		par.For(n1, workers, nil, func(w, i int) {
			if texts1[i] == "" {
				return
			}
			cp, scr := reps.cps1[i], charScr[w]
			ra := cp.Runes()
			row := rowBufs[w][:0]
			rawSig := reps.rawSig1[i]
			tokSig := reps.tokSig1[i]
			leftTokEmpty := reps.prof1[i].Len() == 0
			bits := candBits[w]
			candLists[w] = reps.tokIndex.CandidateBits(reps.queryIDs1[i], bits, candLists[w])
			visited, skipped := int64(0), int64(0)
			// Measure indexes follow charMeasureNames order; within a j,
			// block order is free (edges bucket per measure), but j stays
			// ascending for every measure.
			for j := 0; j < n2; j++ {
				if texts2[j] == "" {
					continue
				}
				rb := reps.runes2[j]
				// NW: dense by construction.
				visited++
				if sim := cp.NeedlemanWunsch(rb, scr); sim > 0 {
					row = append(row, rowEdge{3, int32(j), sim})
				}
				if opts.Dense || rawSig.Intersects(reps.rawSig2[j]) {
					visited++
					if sim := cp.Levenshtein(rb, scr); sim > 0 {
						row = append(row, rowEdge{0, int32(j), sim})
					}
					if sim := cp.DamerauLevenshtein(rb, scr); sim > 0 {
						row = append(row, rowEdge{1, int32(j), sim})
					}
					if sim := strsim.JaroSeqBitpar(ra, rb, reps.jaro2[j], scr); sim > 0 {
						row = append(row, rowEdge{2, int32(j), sim})
					}
					if sim := reps.qp1[i].Distance(reps.qp2[j]); sim > 0 {
						row = append(row, rowEdge{4, int32(j), sim})
					}
					if sim := cp.LongestCommonSubstring(rb); sim > 0 {
						row = append(row, rowEdge{5, int32(j), sim})
					}
					if sim := cp.LongestCommonSubsequence(rb, scr); sim > 0 {
						row = append(row, rowEdge{6, int32(j), sim})
					}
				} else {
					skipped++
				}
				shared := bits[j>>6]&(1<<(uint(j)&63)) != 0
				bothEmpty := leftTokEmpty && reps.prof2[j].Len() == 0
				switch {
				case opts.Dense || shared || bothEmpty:
					visited++
					sims := strsim.TokenSims(reps.prof1[i], reps.prof2[j], swCaches[w])
					for k, sim := range sims {
						if sim > 0 {
							row = append(row, rowEdge{int32(numChar + k), int32(j), sim})
						}
					}
				case tokSig.Intersects(reps.tokSig2[j]):
					// No shared token: the eight merge-join measures are
					// provably 0; only Monge-Elkan can be positive.
					visited++
					if sim := reps.prof1[i].MongeElkan(reps.prof2[j], swCaches[w]); sim > 0 {
						row = append(row, rowEdge{meIdx, int32(j), sim})
					}
				default:
					skipped++
				}
			}
			for _, m := range candLists[w] {
				bits[m>>6] &^= 1 << (uint(m) & 63)
			}
			ctr.visited[w] += visited
			ctr.skipped[w] += skipped
			rowBufs[w] = sealRow(&rows[i], row)
		})
		v, sk := ctr.sum()
		stats.Add(SBSyn, v, sk)
		endRows()

		endAsm := opts.Trace.StartSpanUnder(parent, "assemble/"+attr)
		builders := make([]*graph.Builder, numMeasures)
		for k := range builders {
			builders[k] = graph.NewBuilder(n1, n2)
		}
		reserveRows(builders, rows)
		for i, row := range rows {
			for _, e := range row {
				builders[e.k].Add(int32(i), e.opp, e.w)
			}
		}
		for k, name := range charMeasureNames {
			out = appendGraph(out, task.Name, SBSyn, attr+"/"+name, builders[k])
		}
		for k, name := range tokenMeasureNames {
			out = appendGraph(out, task.Name, SBSyn, attr+"/"+name, builders[numChar+k])
		}
		endAsm()
	}
	return out
}

func tokenizeAll(texts []string) [][]string {
	out := make([][]string, len(texts))
	for i, t := range texts {
		out[i] = strsim.Tokenize(t)
	}
	return out
}

func qgramProfiles(vocab *strsim.QGramVocab, texts []string) []*strsim.QGramIDProfile {
	out := make([]*strsim.QGramIDProfile, len(texts))
	for i, t := range texts {
		out[i] = vocab.Profile(t, 3)
	}
	return out
}

// schemaAgnosticSyntactic produces the 36 bag-model graphs and 24
// n-gram-graph-model graphs of Section 4. Representation models run in
// order; within each model the candidate rows fan over the worker pool.
// The entity texts are tokenized once and shared by the three token
// models (the char models ignore the token lists).
func schemaAgnosticSyntactic(task *dataset.Task, workers int, opts Options, stats *GenStats) []SimGraph {
	endTok := opts.Trace.StartSpanUnder("generate/"+string(SASyn), "tokenize")
	texts1 := task.V1.Texts()
	texts2 := task.V2.Texts()
	toks1 := tokenizeAll(texts1)
	toks2 := tokenizeAll(texts2)
	values1 := profileValues(task.V1)
	values2 := profileValues(task.V2)
	endTok()
	var out []SimGraph
	for _, mode := range vector.Modes() {
		out = append(out, schemaAgnosticMode(task, mode, workers, opts, stats,
			texts1, texts2, toks1, toks2, values1, values2)...)
	}
	return out
}

func profileValues(c *dataset.Collection) [][]string {
	out := make([][]string, len(c.Profiles))
	for i, p := range c.Profiles {
		out[i] = p.Values()
	}
	return out
}

// emptyIndexes returns the ascending indexes for which isEmpty reports
// true — the left-side candidates of an empty right entity: for both bag
// and n-gram-graph models an empty-vs-empty pair scores 1 on the
// measures that define emptiness as identity (Jaccard variants; all four
// graph measures), so candidate enumeration must pair the empties with
// each other or those edges would be lost.
func emptyIndexes(n int, isEmpty func(i int) bool) []int32 {
	var out []int32
	for i := 0; i < n; i++ {
		if isEmpty(i) {
			out = append(out, int32(i))
		}
	}
	return out
}

// denseIndexes is the 0..n-1 candidate list of the dense reference path.
func denseIndexes(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// rowScratch is the per-worker reusable state of a candidate-row kernel.
type rowScratch struct {
	bits []uint64
	buf  []int32
	row  []rowEdge
}

// schemaAgnosticMode builds the 6 bag graphs and 4 n-gram-graph graphs of
// one representation model. Candidate rows visit only the pairs that can
// score positive: pairs sharing a gram (postings) plus — losslessly —
// empty-vs-empty pairs, which the Jaccard-family bag measures and all
// four graph measures define as similarity 1. The dense option visits
// every pair instead (the reference path; identical output).
func schemaAgnosticMode(task *dataset.Task, mode vector.Mode, workers int, opts Options, stats *GenStats,
	texts1, texts2 []string, toks1, toks2 [][]string, values1, values2 [][]string) []SimGraph {
	n1, n2 := len(texts1), len(texts2)
	var out []SimGraph
	const parent = "generate/" + string(SASyn)

	// Bag models: all 6 measures in one merge join per candidate pair,
	// candidates enumerated per collection-2 row through the space's
	// inverted index with a reusable bitset.
	endSpace := opts.Trace.StartSpanUnder(parent, "bag-space/"+mode.String())
	space := opts.Caches.spaces().Get(mode, texts1, texts2, toks1, toks2)
	space.CacheTFIDF() // materialize the per-entity caches before fanning out
	emptyDocs1 := emptyIndexes(n1, func(i int) bool { return space.TF(1, i).Len() == 0 })
	endSpace()
	var dense []int32
	if opts.Dense {
		dense = denseIndexes(n1)
	}
	endBagRows := opts.Trace.StartSpanUnder(parent, "bag-rows/"+mode.String())
	bagRows := make([][]rowEdge, n2)
	scratch := make([]rowScratch, workers)
	ctr := newFamCounters(workers)
	for w := range scratch {
		scratch[w].bits = make([]uint64, (n1+63)/64)
	}
	par.For(n2, workers, nil, func(w, j int) {
		s := &scratch[w]
		cands := dense
		if cands == nil {
			if space.TF(2, j).Len() == 0 {
				cands = emptyDocs1
			} else {
				s.buf = space.Candidates(j, s.bits, s.buf)
				cands = s.buf
			}
		}
		row := s.row[:0]
		for _, i := range cands {
			sims := space.AllSims(int(i), j)
			for k, sim := range sims {
				if sim > 0 {
					row = append(row, rowEdge{int32(k), i, sim})
				}
			}
		}
		ctr.visited[w] += int64(len(cands))
		ctr.skipped[w] += int64(n1 - len(cands))
		s.row = sealRow(&bagRows[j], row)
	})
	v, sk := ctr.sum()
	stats.Add(SASyn, v, sk)
	endBagRows()
	endBagAsm := opts.Trace.StartSpanUnder(parent, "bag-assemble/"+mode.String())
	bagBuilders := make([]*graph.Builder, 6)
	for k := range bagBuilders {
		bagBuilders[k] = graph.NewBuilder(n1, n2)
	}
	reserveRows(bagBuilders, bagRows)
	for j, row := range bagRows {
		for _, e := range row {
			bagBuilders[e.k].Add(e.opp, int32(j), e.w)
		}
	}
	for k, name := range vector.Measures() {
		out = appendGraph(out, task.Name, SASyn, mode.String()+"/"+name, bagBuilders[k])
	}
	endBagAsm()

	// N-gram graph models: per-value graphs merged per entity once, all
	// 4 measures in one merge join over pairs sharing at least one gram
	// node (CSR postings over collection 1), plus the empty-graph pairs
	// (edge-less graphs score 1 against each other on all four
	// measures). The bundle — graphs, node ids, postings — comes from
	// the cross-build cache when one is attached.
	endGramReps := opts.Trace.StartSpanUnder(parent, "gram-reps/"+mode.String())
	reps := opts.Caches.grams().Get(mode, values1, values2)
	emptyGraphs1 := emptyIndexes(n1, func(i int) bool { return reps.Graphs1[i].NumEdges() == 0 })
	endGramReps()
	endGramRows := opts.Trace.StartSpanUnder(parent, "gram-rows/"+mode.String())
	gramRows := make([][]rowEdge, n2)
	gctr := newFamCounters(workers)
	par.For(n2, workers, nil, func(w, j int) {
		s := &scratch[w]
		cands := dense
		if cands == nil {
			if reps.Graphs2[j].NumEdges() == 0 {
				cands = emptyGraphs1
			} else {
				s.buf = vector.UnionCandidates(reps.IDs2[j], reps.Post1Off, reps.Post1IDs, s.bits, s.buf)
				cands = s.buf
			}
		}
		row := s.row[:0]
		for _, i := range cands {
			sims := ngraph.AllSims(reps.Graphs1[i], reps.Graphs2[j])
			for k, sim := range sims {
				if sim > 0 {
					row = append(row, rowEdge{int32(k), i, sim})
				}
			}
		}
		gctr.visited[w] += int64(len(cands))
		gctr.skipped[w] += int64(n1 - len(cands))
		s.row = sealRow(&gramRows[j], row)
	})
	v, sk = gctr.sum()
	stats.Add(SASyn, v, sk)
	endGramRows()
	endGramAsm := opts.Trace.StartSpanUnder(parent, "gram-assemble/"+mode.String())
	gBuilders := make([]*graph.Builder, 4)
	for k := range gBuilders {
		gBuilders[k] = graph.NewBuilder(n1, n2)
	}
	reserveRows(gBuilders, gramRows)
	for j, row := range gramRows {
		for _, e := range row {
			gBuilders[e.k].Add(e.opp, int32(j), e.w)
		}
	}
	for k, name := range ngraph.Measures() {
		out = appendGraph(out, task.Name, SASyn, mode.String()+"g/"+name, gBuilders[k])
	}
	endGramAsm()
	return out
}

// semantic produces embedding-based graphs: schema-based when keyAttrs is
// non-empty (one set per attribute) or schema-agnostic on the full
// profile texts. Every semantic measure is positive for every non-empty
// pair (Euclidean and relaxed-WMS by their 1/(1+d) form, cosine except
// at exactly opposite vectors), so the family is dense by nature and
// only the per-entity representation work can be amortized: each scope
// is tokenized once for both models, and the embeddings come from the
// cross-build cache when one is attached.
func semantic(task *dataset.Task, keyAttrs []string, opts Options, family Family, workers int, models []embed.Model, stats *GenStats) []SimGraph {
	type scope struct {
		prefix         string
		texts1, texts2 []string
	}
	var scopes []scope
	if family == SBSem {
		for _, attr := range keyAttrs {
			scopes = append(scopes, scope{attr + "/",
				task.V1.AttrTexts(attr), task.V2.AttrTexts(attr)})
		}
	} else {
		scopes = append(scopes, scope{"", task.V1.Texts(), task.V2.Texts()})
	}

	var out []SimGraph
	parent := "generate/" + string(family)
	for _, sc := range scopes {
		endTok := opts.Trace.StartSpanUnder(parent, "tokenize/"+sc.prefix+"*")
		toks1 := embed.TokenizeAll(sc.texts1)
		toks2 := embed.TokenizeAll(sc.texts2)
		endTok()
		for _, model := range models {
			out = append(out, semanticGraphs(task.Name, family,
				sc.prefix+model.Name(), model, sc.texts1, sc.texts2, toks1, toks2, opts, workers, stats)...)
		}
	}
	return out
}

func semanticGraphs(ds string, family Family, prefix string, model embed.Model, texts1, texts2 []string, toks1, toks2 [][]string, opts Options, workers int, stats *GenStats) []SimGraph {
	n1, n2 := len(texts1), len(texts2)
	parent := "generate/" + string(family)

	// One TokenVectors pass per entity feeds both the text embedding and
	// the truncated token vectors (the seed recomputed them separately).
	endEmbed := opts.Trace.StartSpanUnder(parent, "embed/"+prefix)
	ev1 := opts.Caches.sems().Reps(model, texts1, toks1, opts.maxWMDTokens())
	ev2 := opts.Caches.sems().Reps(model, texts2, toks2, opts.maxWMDTokens())
	endEmbed()

	endRows := opts.Trace.StartSpanUnder(parent, "rows/"+prefix)
	maxTok2 := 0
	for _, vecs := range ev2.TV {
		if len(vecs) > maxTok2 {
			maxTok2 = len(vecs)
		}
	}
	rows := make([][]rowEdge, n1)
	rowBufs := make([][]rowEdge, workers)
	colBests := make([][]float64, workers)
	ctr := newFamCounters(workers)
	for w := range colBests {
		colBests[w] = make([]float64, maxTok2)
	}
	par.For(n1, workers, nil, func(w, i int) {
		if texts1[i] == "" {
			return
		}
		row := rowBufs[w][:0]
		colBest := colBests[w]
		va, wa := ev1.TV[i], ev1.TW[i]
		for j := 0; j < n2; j++ {
			if texts2[j] == "" {
				continue
			}
			ctr.visited[w]++
			cos, euc := embed.CosineEuclidean(ev1.Emb[i], ev2.Emb[j],
				ev1.NormSq[i], ev2.NormSq[j])
			if cos > 0 {
				row = append(row, rowEdge{0, int32(j), cos})
			}
			if euc > 0 {
				row = append(row, rowEdge{1, int32(j), euc})
			}
			if sim := relaxedWMSFused(va, wa, ev2.TV[j], ev2.TW[j], colBest); sim > 0 {
				row = append(row, rowEdge{2, int32(j), sim})
			}
		}
		rowBufs[w] = sealRow(&rows[i], row)
	})
	v, sk := ctr.sum()
	stats.Add(family, v, sk)
	endRows()

	endAsm := opts.Trace.StartSpanUnder(parent, "assemble/"+prefix)
	builders := [3]*graph.Builder{}
	for k := range builders {
		builders[k] = graph.NewBuilder(n1, n2)
	}
	reserveRows(builders[:], rows)
	for i, row := range rows {
		for _, e := range row {
			builders[e.k].Add(int32(i), e.opp, e.w)
		}
	}
	var out []SimGraph
	for k, name := range embed.Measures() {
		out = appendGraph(out, ds, family, prefix+"/"+name, builders[k])
	}
	endAsm()
	return out
}

// relaxedWMS mirrors embed.WordMoversSim over pre-computed token vectors.
func relaxedWMS(va [][]float64, wa []float64, vb [][]float64, wb []float64) float64 {
	if len(va) == 0 || len(vb) == 0 {
		return 0
	}
	d := directional(va, wa, vb)
	if d2 := directional(vb, wb, va); d2 > d {
		d = d2
	}
	return 1 / (1 + d)
}

// relaxedWMSFused is relaxedWMS computing both directional transport
// costs from ONE pass over the |va|×|vb| token distance matrix instead
// of two: iterating (v, u) with u inner tracks each v's row minimum in
// directional's exact comparison order, and updates each u's column
// minimum at ascending v — also directional's scan order for the
// reverse direction, whose distances (u[k]-v[k])² are the bit-exact
// squares of the negated differences computed here. Halves the
// quadratic inner work per pair with bit-identical results.
//
// colBest is caller scratch of at least len(vb) floats.
func relaxedWMSFused(va [][]float64, wa []float64, vb [][]float64, wb []float64, colBest []float64) float64 {
	if len(va) == 0 || len(vb) == 0 {
		return 0
	}
	colBest = colBest[:len(vb)]
	for t := range colBest {
		colBest[t] = -1
	}
	d1 := 0.0
	for ti, v := range va {
		rowBest := -1.0
		for tj, u := range vb {
			// Reslicing u to v's length lets the compiler drop the
			// bounds check in the dimension loop (both vectors come from
			// the same model, so the lengths are equal), and the 4-way
			// unroll keeps the adds in index order, so the sum is
			// bit-identical to the plain loop.
			u = u[:len(v)]
			s := 0.0
			k := 0
			for ; k+4 <= len(v); k += 4 {
				d0 := v[k] - u[k]
				s += d0 * d0
				d1 := v[k+1] - u[k+1]
				s += d1 * d1
				d2 := v[k+2] - u[k+2]
				s += d2 * d2
				d3 := v[k+3] - u[k+3]
				s += d3 * d3
			}
			for ; k < len(v); k++ {
				dd := v[k] - u[k]
				s += dd * dd
			}
			if rowBest < 0 || s < rowBest {
				rowBest = s
			}
			if cb := colBest[tj]; cb < 0 || s < cb {
				colBest[tj] = s
			}
		}
		if rowBest > 0 {
			d1 += wa[ti] * math.Sqrt(rowBest)
		}
	}
	d2 := 0.0
	for tj := range colBest {
		if cb := colBest[tj]; cb > 0 {
			d2 += wb[tj] * math.Sqrt(cb)
		}
	}
	if d2 > d1 {
		d1 = d2
	}
	return 1 / (1 + d1)
}

func directional(from [][]float64, w []float64, to [][]float64) float64 {
	total := 0.0
	for i, v := range from {
		best := -1.0
		for _, u := range to {
			s := 0.0
			for k := range v {
				dd := v[k] - u[k]
				s += dd * dd
			}
			if best < 0 || s < best {
				best = s
			}
		}
		if best > 0 {
			total += w[i] * math.Sqrt(best)
		}
	}
	return total
}

func appendGraph(out []SimGraph, ds string, family Family, name string, b *graph.Builder) []SimGraph {
	// Build + min-max normalization fused into one graph assembly; the
	// golden tests pin it against the two-step Build().NormalizeMinMax().
	g, err := b.BuildNormalized()
	if err != nil {
		// Builders are fed validated indexes; an error here is a bug.
		panic(fmt.Sprintf("simgraph: %v", err))
	}
	return append(out, SimGraph{Dataset: ds, Family: family, Name: name, G: g})
}
