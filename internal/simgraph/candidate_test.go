package simgraph

import (
	"fmt"
	"strings"
	"testing"

	"github.com/ccer-go/ccer/internal/dataset"
)

// adversarialTask exercises every filter edge: empty texts (skipped
// outright), punctuation-only texts (token-less but character-bearing,
// so token measures hit the both-empty = 1 case), case-flipped pairs
// (raw alphabets disjoint, token alphabets equal), genuinely disjoint
// alphabets, shared-single-character pairs (Monge-Elkan positive with
// zero shared tokens), unicode, and strings crossing the 64-rune
// bit-parallel word boundary.
func adversarialTask() *dataset.Task {
	mk := func(name string, texts []string) *dataset.Collection {
		c := &dataset.Collection{Name: name}
		for k, txt := range texts {
			c.Profiles = append(c.Profiles, dataset.Profile{
				ID:    fmt.Sprintf("%s%d", name, k),
				Attrs: map[string]string{"name": txt},
			})
		}
		return c
	}
	texts1 := []string{
		"golden dragon bistro",
		"",
		"!!!",
		"ABC DEF",
		"xyz",
		"a",
		strings.Repeat("long tail value ", 6), // 96 runes: blocked kernels
		"日本語 カフェ",
		"shared-char zq",
		"???",
	}
	texts2 := []string{
		"golden dragon",
		"",
		"...",
		"abc def",
		"vw",
		"a",
		strings.Repeat("long tail value ", 6),
		"日本語",
		"qz char-shared",
		"12 34",
	}
	return &dataset.Task{
		Name: "ADV",
		V1:   mk("a", texts1),
		V2:   mk("b", texts2),
		GT:   dataset.NewGroundTruth([][2]int32{{0, 0}, {3, 3}, {6, 6}}),
	}
}

func checksums(t *testing.T, graphs []SimGraph) map[string]uint64 {
	t.Helper()
	out := make(map[string]uint64, len(graphs))
	for _, sg := range graphs {
		key := string(sg.Family) + "|" + sg.Name
		if _, dup := out[key]; dup {
			t.Fatalf("duplicate graph %s", key)
		}
		out[key] = sg.G.Checksum()
	}
	return out
}

func compareRuns(t *testing.T, want, got []SimGraph, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d graphs, want %d", label, len(got), len(want))
	}
	wsum := checksums(t, want)
	for k, sg := range got {
		key := string(sg.Family) + "|" + sg.Name
		ref, ok := wsum[key]
		if !ok {
			t.Fatalf("%s: unexpected graph %s", label, key)
		}
		if sg.G.Checksum() != ref {
			t.Fatalf("%s: graph %d (%s) checksum %016x != dense %016x", label, k, key, sg.G.Checksum(), ref)
		}
		if want[k].Name != sg.Name || want[k].Family != sg.Family {
			t.Fatalf("%s: graph order diverged at %d: %s vs %s", label, k, sg.Name, want[k].Name)
		}
	}
}

// TestCandidateVsDenseAllFamilies proves the tentpole claim: the
// candidate-driven kernels emit byte-identical graphs (graph.Checksum)
// to the dense reference for all four families, on a generated dataset
// and on the adversarial task, at several worker counts (run under
// -race in CI).
func TestCandidateVsDenseAllFamilies(t *testing.T) {
	for _, tc := range []struct {
		name string
		task *dataset.Task
	}{
		{"generated", testTask(t)},
		{"adversarial", adversarialTask()},
	} {
		opts := Options{KeepNoMatchGraphs: true}
		denseOpts := opts
		denseOpts.Dense = true
		dense := Generate(tc.task, []string{"name"}, denseOpts)
		if len(dense) == 0 {
			t.Fatalf("%s: dense path produced no graphs", tc.name)
		}
		for _, workers := range []int{1, 2, 4} {
			pruned := opts
			pruned.Parallelism = workers
			got := Generate(tc.task, []string{"name"}, pruned)
			compareRuns(t, dense, got, fmt.Sprintf("%s/w%d", tc.name, workers))
		}
	}
}

// TestAdversarialEmptyEmptyEdges pins the losslessness fix the dense
// comparison relies on: pairs of token-less (or edge-less) entities
// must produce the similarity-1 edges the paper's definitions assign
// them, which pure posting enumeration would drop.
func TestAdversarialEmptyEmptyEdges(t *testing.T) {
	task := adversarialTask()
	graphs := Generate(task, []string{"name"}, Options{KeepNoMatchGraphs: true})
	byName := map[string]SimGraph{}
	for _, sg := range graphs {
		byName[string(sg.Family)+"|"+sg.Name] = sg
	}
	// "!!!" (V1 index 2) and "..." / "12 34"? — "..." (V2 index 2) are
	// token-less under char modes? No: bag char modes gram them. Token
	// mode token1: both token-less -> Jaccard 1 edge must exist.
	sg, ok := byName["SA-SYN|token1/Jaccard"]
	if !ok {
		t.Fatal("missing token1/Jaccard graph")
	}
	if _, exists := sg.G.Weight(2, 2); !exists {
		t.Fatal("token1/Jaccard lost the empty-vs-empty pair (2,2)")
	}
	// SB-SYN token measures: "!!!" vs "..." both tokenize to nothing ->
	// every token measure is 1 for the pair.
	sg, ok = byName["SB-SYN|name/Jaccard"]
	if !ok {
		t.Fatal("missing SB-SYN name/Jaccard graph")
	}
	if _, exists := sg.G.Weight(2, 2); !exists {
		t.Fatal("SB-SYN Jaccard lost the token-less pair (2,2)")
	}
	// Monge-Elkan positive with zero shared tokens: "shared-char zq"
	// (V1 8) vs "qz char-shared" (V2 8) share characters, not tokens.
	sg, ok = byName["SB-SYN|name/MongeElkan"]
	if !ok {
		t.Fatal("missing MongeElkan graph")
	}
	if _, exists := sg.G.Weight(8, 8); !exists {
		t.Fatal("MongeElkan lost the shared-char pair (8,8)")
	}
}

// TestRepCachesByteIdenticalAndHit: generation through a shared
// RepCaches is byte-identical to uncached generation, and a repeat
// build of the same task is served from the caches.
func TestRepCachesByteIdenticalAndHit(t *testing.T) {
	task := testTask(t)
	opts := Options{KeepNoMatchGraphs: true}
	want := Generate(task, []string{"name"}, opts)

	caches := NewRepCaches(1)
	cached := opts
	cached.Caches = caches
	first := Generate(task, []string{"name"}, cached)
	compareRuns(t, want, first, "cached-first")
	st := caches.Stats()
	if st.Misses == 0 {
		t.Fatal("first cached build recorded no misses")
	}
	if st.Hits != 0 {
		t.Fatalf("first cached build recorded %d hits", st.Hits)
	}
	second := Generate(task, []string{"name"}, cached)
	compareRuns(t, want, second, "cached-second")
	st2 := caches.Stats()
	if st2.Hits == 0 {
		t.Fatal("second cached build hit nothing")
	}
	if st2.Misses != st.Misses {
		t.Fatalf("second cached build rebuilt representations: misses %d -> %d", st.Misses, st2.Misses)
	}
}

// TestGenerateStatsShape: the candidate counters add up and the dense
// families report no skips.
func TestGenerateStatsShape(t *testing.T) {
	task := testTask(t)
	_, stats := GenerateStats(task, []string{"name"}, Options{KeepNoMatchGraphs: true})
	if stats.SBSyn.Visited == 0 || stats.SASyn.Visited == 0 {
		t.Fatalf("syntactic families report no visits: %+v", stats)
	}
	if stats.SASyn.Skipped == 0 {
		t.Fatalf("SA-SYN candidate cut skipped nothing on a generated dataset: %+v", stats)
	}
	if stats.SBSem.Skipped != 0 || stats.SASem.Skipped != 0 {
		t.Fatalf("semantic families are dense by nature but report skips: %+v", stats)
	}
	if r := stats.Total().SkipRatio(); r < 0 || r >= 1 {
		t.Fatalf("total skip ratio %v out of range", r)
	}
	_, dense := GenerateStats(task, []string{"name"}, Options{KeepNoMatchGraphs: true, Dense: true})
	if dense.Total().Skipped != 0 {
		t.Fatalf("dense run reported skips: %+v", dense)
	}
}

// FuzzCandidateVsDense drives tiny two-a-side tasks from fuzz strings
// through both paths; any divergence is a filter losslessness bug.
func FuzzCandidateVsDense(f *testing.F) {
	f.Add("golden dragon", "", "!!!", "DRAGON golden")
	f.Add("a", "b", "ab", "ba")
	f.Add("日本", "abc", "...", "xyz")
	f.Fuzz(func(t *testing.T, a1, a2, b1, b2 string) {
		clip := func(s string) string {
			if len(s) > 80 {
				s = s[:80]
			}
			return s
		}
		mk := func(name string, texts ...string) *dataset.Collection {
			c := &dataset.Collection{Name: name}
			for k, txt := range texts {
				c.Profiles = append(c.Profiles, dataset.Profile{
					ID:    fmt.Sprintf("%s%d", name, k),
					Attrs: map[string]string{"name": clip(txt)},
				})
			}
			return c
		}
		task := &dataset.Task{
			Name: "FZ",
			V1:   mk("a", a1, a2),
			V2:   mk("b", b1, b2),
			GT:   dataset.NewGroundTruth([][2]int32{{0, 0}}),
		}
		opts := Options{KeepNoMatchGraphs: true}
		denseOpts := opts
		denseOpts.Dense = true
		dense := Generate(task, []string{"name"}, denseOpts)
		got := Generate(task, []string{"name"}, opts)
		compareRuns(t, dense, got, "fuzz")
	})
}
