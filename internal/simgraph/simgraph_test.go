package simgraph

import (
	"strings"
	"testing"

	"github.com/ccer-go/ccer/internal/datagen"
	"github.com/ccer-go/ccer/internal/dataset"
)

func testTask(t *testing.T) *dataset.Task {
	t.Helper()
	spec, err := datagen.SpecByID("D2")
	if err != nil {
		t.Fatal(err)
	}
	return spec.Generate(3, 0.03)
}

func TestGenerateCounts(t *testing.T) {
	task := testTask(t)
	graphs := Generate(task, []string{"name"}, Options{KeepNoMatchGraphs: true})
	byFamily := map[Family]int{}
	for _, sg := range graphs {
		byFamily[sg.Family]++
	}
	// 16 schema-based measures per key attribute.
	if byFamily[SBSyn] != 16 {
		t.Fatalf("SB-SYN graphs = %d, want 16", byFamily[SBSyn])
	}
	// 6 modes × 6 bag measures + 6 modes × 4 graph measures = 60.
	if byFamily[SASyn] != 60 {
		t.Fatalf("SA-SYN graphs = %d, want 60", byFamily[SASyn])
	}
	// 2 models × 3 measures per key attribute.
	if byFamily[SBSem] != 6 {
		t.Fatalf("SB-SEM graphs = %d, want 6", byFamily[SBSem])
	}
	if byFamily[SASem] != 6 {
		t.Fatalf("SA-SEM graphs = %d, want 6", byFamily[SASem])
	}
}

func TestGenerateTwoKeyAttrs(t *testing.T) {
	task := testTask(t)
	graphs := Generate(task, []string{"name", "price"},
		Options{Families: []Family{SBSyn, SBSem}, KeepNoMatchGraphs: true})
	byFamily := map[Family]int{}
	for _, sg := range graphs {
		byFamily[sg.Family]++
	}
	if byFamily[SBSyn] != 32 {
		t.Fatalf("SB-SYN graphs = %d, want 32", byFamily[SBSyn])
	}
	if byFamily[SBSem] != 12 {
		t.Fatalf("SB-SEM graphs = %d, want 12", byFamily[SBSem])
	}
}

func TestGraphsAreNormalizedAndSized(t *testing.T) {
	task := testTask(t)
	graphs := Generate(task, []string{"name"}, Options{})
	if len(graphs) == 0 {
		t.Fatal("no graphs generated")
	}
	for _, sg := range graphs {
		if sg.G.N1() != task.V1.Len() || sg.G.N2() != task.V2.Len() {
			t.Fatalf("%s: wrong node counts", sg.Name)
		}
		if sg.G.NumEdges() == 0 {
			t.Fatalf("%s: empty graph survived cleaning", sg.Name)
		}
		if sg.G.MinWeight() < 0 || sg.G.MaxWeight() > 1 {
			t.Fatalf("%s: weights out of [0,1]: [%v,%v]",
				sg.Name, sg.G.MinWeight(), sg.G.MaxWeight())
		}
		if err := sg.G.Validate(); err != nil {
			t.Fatalf("%s: %v", sg.Name, err)
		}
		if sg.Dataset != "D2" {
			t.Fatalf("%s: dataset = %q", sg.Name, sg.Dataset)
		}
	}
}

func TestGenerateFamilyFilter(t *testing.T) {
	task := testTask(t)
	graphs := Generate(task, []string{"name"},
		Options{Families: []Family{SASem}, KeepNoMatchGraphs: true})
	for _, sg := range graphs {
		if sg.Family != SASem {
			t.Fatalf("unexpected family %s", sg.Family)
		}
	}
	if len(graphs) != 6 {
		t.Fatalf("graphs = %d, want 6", len(graphs))
	}
}

func TestMatchEdgesPresent(t *testing.T) {
	// The default cleaning keeps only graphs where at least one true
	// match has positive weight; on D2 (products sharing model numbers)
	// most syntactic graphs should retain many match edges.
	task := testTask(t)
	graphs := Generate(task, []string{"name"}, Options{Families: []Family{SASyn}})
	if len(graphs) == 0 {
		t.Fatal("all graphs dropped")
	}
	for _, sg := range graphs {
		found := 0
		for _, p := range task.GT.Pairs {
			if _, ok := sg.G.Weight(p[0], p[1]); ok {
				found++
			}
		}
		if found == 0 {
			t.Fatalf("%s: no match edges despite cleaning", sg.Name)
		}
	}
}

func TestGraphNamesUniqueAndStructured(t *testing.T) {
	task := testTask(t)
	graphs := Generate(task, []string{"name"}, Options{KeepNoMatchGraphs: true})
	seen := map[string]bool{}
	for _, sg := range graphs {
		key := string(sg.Family) + "|" + sg.Name
		if seen[key] {
			t.Fatalf("duplicate graph name %q", key)
		}
		seen[key] = true
		if strings.TrimSpace(sg.Name) == "" {
			t.Fatal("empty graph name")
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	task := testTask(t)
	a := Generate(task, []string{"name"}, Options{Families: []Family{SBSyn, SASem}})
	b := Generate(task, []string{"name"}, Options{Families: []Family{SBSyn, SASem}})
	if len(a) != len(b) {
		t.Fatalf("runs differ in size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].G.NumEdges() != b[i].G.NumEdges() {
			t.Fatalf("graph %d differs between runs", i)
		}
		ea, eb := a[i].G.Edges(), b[i].G.Edges()
		for k := range ea {
			if ea[k] != eb[k] {
				t.Fatalf("graph %s edge %d differs", a[i].Name, k)
			}
		}
	}
}

func TestSemanticGraphsAreDenser(t *testing.T) {
	// The paper observes semantic similarities connect most pairs
	// (Table 3 shows ~100% density for schema-agnostic semantic inputs).
	task := testTask(t)
	sem := Generate(task, nil, Options{Families: []Family{SASem}, KeepNoMatchGraphs: true})
	for _, sg := range sem {
		if sg.G.Density() < 0.9 {
			t.Fatalf("%s: density %.2f, want ~1.0", sg.Name, sg.G.Density())
		}
	}
}
