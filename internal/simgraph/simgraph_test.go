package simgraph

import (
	"strings"
	"testing"

	"github.com/ccer-go/ccer/internal/datagen"
	"github.com/ccer-go/ccer/internal/dataset"
	"github.com/ccer-go/ccer/internal/graph"
)

func testTask(t *testing.T) *dataset.Task {
	t.Helper()
	spec, err := datagen.SpecByID("D2")
	if err != nil {
		t.Fatal(err)
	}
	return spec.Generate(3, 0.03)
}

func TestGenerateCounts(t *testing.T) {
	task := testTask(t)
	graphs := Generate(task, []string{"name"}, Options{KeepNoMatchGraphs: true})
	byFamily := map[Family]int{}
	for _, sg := range graphs {
		byFamily[sg.Family]++
	}
	// 16 schema-based measures per key attribute.
	if byFamily[SBSyn] != 16 {
		t.Fatalf("SB-SYN graphs = %d, want 16", byFamily[SBSyn])
	}
	// 6 modes × 6 bag measures + 6 modes × 4 graph measures = 60.
	if byFamily[SASyn] != 60 {
		t.Fatalf("SA-SYN graphs = %d, want 60", byFamily[SASyn])
	}
	// 2 models × 3 measures per key attribute.
	if byFamily[SBSem] != 6 {
		t.Fatalf("SB-SEM graphs = %d, want 6", byFamily[SBSem])
	}
	if byFamily[SASem] != 6 {
		t.Fatalf("SA-SEM graphs = %d, want 6", byFamily[SASem])
	}
}

func TestGenerateTwoKeyAttrs(t *testing.T) {
	task := testTask(t)
	graphs := Generate(task, []string{"name", "price"},
		Options{Families: []Family{SBSyn, SBSem}, KeepNoMatchGraphs: true})
	byFamily := map[Family]int{}
	for _, sg := range graphs {
		byFamily[sg.Family]++
	}
	if byFamily[SBSyn] != 32 {
		t.Fatalf("SB-SYN graphs = %d, want 32", byFamily[SBSyn])
	}
	if byFamily[SBSem] != 12 {
		t.Fatalf("SB-SEM graphs = %d, want 12", byFamily[SBSem])
	}
}

func TestGraphsAreNormalizedAndSized(t *testing.T) {
	task := testTask(t)
	graphs := Generate(task, []string{"name"}, Options{})
	if len(graphs) == 0 {
		t.Fatal("no graphs generated")
	}
	for _, sg := range graphs {
		if sg.G.N1() != task.V1.Len() || sg.G.N2() != task.V2.Len() {
			t.Fatalf("%s: wrong node counts", sg.Name)
		}
		if sg.G.NumEdges() == 0 {
			t.Fatalf("%s: empty graph survived cleaning", sg.Name)
		}
		if sg.G.MinWeight() < 0 || sg.G.MaxWeight() > 1 {
			t.Fatalf("%s: weights out of [0,1]: [%v,%v]",
				sg.Name, sg.G.MinWeight(), sg.G.MaxWeight())
		}
		if err := sg.G.Validate(); err != nil {
			t.Fatalf("%s: %v", sg.Name, err)
		}
		if sg.Dataset != "D2" {
			t.Fatalf("%s: dataset = %q", sg.Name, sg.Dataset)
		}
	}
}

func TestGenerateFamilyFilter(t *testing.T) {
	task := testTask(t)
	graphs := Generate(task, []string{"name"},
		Options{Families: []Family{SASem}, KeepNoMatchGraphs: true})
	for _, sg := range graphs {
		if sg.Family != SASem {
			t.Fatalf("unexpected family %s", sg.Family)
		}
	}
	if len(graphs) != 6 {
		t.Fatalf("graphs = %d, want 6", len(graphs))
	}
}

func TestMatchEdgesPresent(t *testing.T) {
	// The default cleaning keeps only graphs where at least one true
	// match has positive weight; on D2 (products sharing model numbers)
	// most syntactic graphs should retain many match edges.
	task := testTask(t)
	graphs := Generate(task, []string{"name"}, Options{Families: []Family{SASyn}})
	if len(graphs) == 0 {
		t.Fatal("all graphs dropped")
	}
	for _, sg := range graphs {
		found := 0
		for _, p := range task.GT.Pairs {
			if _, ok := sg.G.Weight(p[0], p[1]); ok {
				found++
			}
		}
		if found == 0 {
			t.Fatalf("%s: no match edges despite cleaning", sg.Name)
		}
	}
}

func TestGraphNamesUniqueAndStructured(t *testing.T) {
	task := testTask(t)
	graphs := Generate(task, []string{"name"}, Options{KeepNoMatchGraphs: true})
	seen := map[string]bool{}
	for _, sg := range graphs {
		key := string(sg.Family) + "|" + sg.Name
		if seen[key] {
			t.Fatalf("duplicate graph name %q", key)
		}
		seen[key] = true
		if strings.TrimSpace(sg.Name) == "" {
			t.Fatal("empty graph name")
		}
	}
}

func TestDeterministicGeneration(t *testing.T) {
	task := testTask(t)
	a := Generate(task, []string{"name"}, Options{Families: []Family{SBSyn, SASem}})
	b := Generate(task, []string{"name"}, Options{Families: []Family{SBSyn, SASem}})
	if len(a) != len(b) {
		t.Fatalf("runs differ in size: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].G.NumEdges() != b[i].G.NumEdges() {
			t.Fatalf("graph %d differs between runs", i)
		}
		ea, eb := a[i].G.Edges(), b[i].G.Edges()
		for k := range ea {
			if ea[k] != eb[k] {
				t.Fatalf("graph %s edge %d differs", a[i].Name, k)
			}
		}
	}
}

func TestSemanticGraphsAreDenser(t *testing.T) {
	// The paper observes semantic similarities connect most pairs
	// (Table 3 shows ~100% density for schema-agnostic semantic inputs).
	task := testTask(t)
	sem := Generate(task, nil, Options{Families: []Family{SASem}, KeepNoMatchGraphs: true})
	for _, sg := range sem {
		if sg.G.Density() < 0.9 {
			t.Fatalf("%s: density %.2f, want ~1.0", sg.Name, sg.G.Density())
		}
	}
}

// Row-parallel generation must be byte-identical to serial generation at
// any worker count (run under -race in CI, this also exercises the
// kernels' goroutine safety).
func TestRowParallelByteIdentical(t *testing.T) {
	task := testTask(t)
	serial := Generate(task, []string{"name"}, Options{Parallelism: 1, KeepNoMatchGraphs: true})
	parallel := Generate(task, []string{"name"}, Options{Parallelism: 8, KeepNoMatchGraphs: true})
	if len(serial) != len(parallel) {
		t.Fatalf("parallel emitted %d graphs, serial %d", len(parallel), len(serial))
	}
	for k := range serial {
		if serial[k].Name != parallel[k].Name {
			t.Fatalf("graph %d name %q vs %q", k, parallel[k].Name, serial[k].Name)
		}
		if serial[k].G.Checksum() != parallel[k].G.Checksum() {
			t.Fatalf("%s: parallel checksum differs from serial", serial[k].Name)
		}
	}
}

// The no-match cleaning rule must drop exactly the graphs in which no
// ground-truth pair has an edge, whichever side of the early-exit check
// (edge scan vs GT scan) gets used.
func TestFilterNoMatchGraphs(t *testing.T) {
	gt := dataset.NewGroundTruth([][2]int32{{0, 0}, {1, 1}})
	build := func(edges [][3]float64) *graph.Bipartite {
		b := graph.NewBuilder(3, 3)
		for _, e := range edges {
			b.Add(int32(e[0]), int32(e[1]), e[2])
		}
		return b.MustBuild()
	}
	gMatch := build([][3]float64{{0, 0, 0.9}, {2, 1, 0.4}})                                                         // edge on GT pair (0,0)
	gNoMatch := build([][3]float64{{0, 1, 0.9}, {2, 2, 0.8}})                                                       // edges, none on GT pairs
	gDenseMatch := build([][3]float64{{0, 0, 1}, {0, 1, 1}, {0, 2, 1}, {1, 0, 1}, {1, 1, 1}, {2, 0, 1}, {2, 2, 1}}) // more edges than GT pairs
	in := []SimGraph{
		{Name: "match", G: gMatch},
		{Name: "nomatch", G: gNoMatch},
		{Name: "densematch", G: gDenseMatch},
	}
	kept := filterNoMatchGraphs(in, gt)
	if len(kept) != 2 || kept[0].Name != "match" || kept[1].Name != "densematch" {
		names := make([]string, len(kept))
		for i, sg := range kept {
			names[i] = sg.Name
		}
		t.Fatalf("kept %v, want [match densematch]", names)
	}
	// Empty ground truth keeps nothing (no pair can have positive weight).
	if got := filterNoMatchGraphs(in, dataset.NewGroundTruth(nil)); len(got) != 0 {
		t.Fatalf("empty GT kept %d graphs, want 0", len(got))
	}
}
