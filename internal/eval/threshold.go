package eval

import (
	"sort"

	"github.com/ccer-go/ccer/internal/graph"
)

// EstimateThreshold suggests a similarity threshold for a normalized
// graph without using any ground truth, operationalizing the paper's
// threshold analysis (Table 8): the optimal threshold depends more on
// the input — its weight distribution and normalized size — than on the
// matching algorithm.
//
// The estimator exploits the Clean-Clean structure: a 1-1 matching keeps
// at most k = min(|V1|, |V2|) edges, so the boundary between matching
// and non-matching weights must sit near rank k of the descending weight
// order. It searches the ranks around k for the widest weight gap (the
// "valley" between the match and non-match modes) and cuts there,
// falling back to the weight at rank k when no clear valley exists. The
// returned value is snapped to the paper's 0.05 grid and clamped to
// [0.05, 0.95].
func EstimateThreshold(g *graph.Bipartite) float64 {
	m := g.NumEdges()
	if m == 0 {
		return 0.5
	}
	ws := make([]float64, 0, m)
	for _, e := range g.Edges() {
		ws = append(ws, e.W)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(ws)))

	k := g.N1()
	if g.N2() < k {
		k = g.N2()
	}
	if k >= m {
		// Fewer edges than the matching capacity: keep almost
		// everything.
		return snapToGrid(ws[m-1])
	}

	// Search ranks [k/2, 3k] for the widest gap between consecutive
	// weights; cutting there separates the high-similarity cluster that
	// can plausibly be the matching from the bulk below it.
	lo := k / 2
	if lo < 1 {
		lo = 1
	}
	hi := 3 * k
	if hi > m-1 {
		hi = m - 1
	}
	bestGap, bestCut := 0.0, -1.0
	for i := lo; i < hi; i++ {
		if gap := ws[i-1] - ws[i]; gap > bestGap {
			bestGap = gap
			bestCut = (ws[i-1] + ws[i]) / 2
		}
	}
	if bestCut >= 0 && bestGap > 0.01 {
		return snapToGrid(bestCut)
	}
	// No usable valley (near-uniform weights, as semantic similarities
	// often produce): cut at the matching-capacity rank itself.
	return snapToGrid(ws[k-1])
}

// snapToGrid rounds to the paper's 0.05 threshold grid within
// [0.05, 0.95].
func snapToGrid(t float64) float64 {
	snapped := float64(int(t/0.05+0.5)) * 0.05
	if snapped < 0.05 {
		snapped = 0.05
	}
	if snapped > 0.95 {
		snapped = 0.95
	}
	return snapped
}
