// Package eval implements the paper's evaluation methodology (Section 5):
// precision, recall and F-measure of a bipartite matching against the
// ground truth; the similarity-threshold sweep from 0.05 to 1.00 in steps
// of 0.05, selecting the largest threshold that achieves the best
// F-measure; and run-time measurement averaged over repeated executions.
package eval

import (
	"time"

	"github.com/ccer-go/ccer/internal/core"
	"github.com/ccer-go/ccer/internal/dataset"
	"github.com/ccer-go/ccer/internal/graph"
)

// Metrics are the paper's three effectiveness measures. Precision is the
// portion of output pairs that are true matches; recall the portion of
// true matches that are output; F1 their harmonic mean.
type Metrics struct {
	Precision float64
	Recall    float64
	F1        float64
}

// Evaluate scores a matching against the ground truth. An empty output
// has zero precision by convention (the paper's clustering evaluation
// counts two-entity partitions only).
func Evaluate(pairs []core.Pair, gt *dataset.GroundTruth) Metrics {
	if gt.Len() == 0 {
		return Metrics{}
	}
	correct := 0
	for _, p := range pairs {
		if gt.IsMatch(p.U, p.V) {
			correct++
		}
	}
	var m Metrics
	if len(pairs) > 0 {
		m.Precision = float64(correct) / float64(len(pairs))
	}
	m.Recall = float64(correct) / float64(gt.Len())
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// Thresholds returns the paper's sweep grid: 0.05 to 1.00 in steps of
// 0.05.
func Thresholds() []float64 {
	out := make([]float64, 0, 20)
	for i := 1; i <= 20; i++ {
		out = append(out, float64(i)*0.05)
	}
	return out
}

// ThresholdPoint is the outcome of one sweep step.
type ThresholdPoint struct {
	T       float64
	Metrics Metrics
	Runtime time.Duration
}

// SweepResult is the outcome of tuning one algorithm on one similarity
// graph.
type SweepResult struct {
	Algorithm string
	// BestT is the largest threshold achieving the maximum F1, the
	// paper's optimal-threshold rule.
	BestT float64
	// Best holds the metrics at BestT.
	Best Metrics
	// Runtime is the mean run-time at BestT over the configured repeats.
	Runtime time.Duration
	// Points holds every sweep step in threshold order.
	Points []ThresholdPoint
}

// Sweep runs the matcher across the threshold grid and applies the
// paper's selection rule. repeats controls how many times the matching at
// each threshold is timed (the paper uses 10 for its run-time tables);
// values below 1 are treated as 1.
func Sweep(g *graph.Bipartite, gt *dataset.GroundTruth, m core.Matcher, repeats int) SweepResult {
	if repeats < 1 {
		repeats = 1
	}
	res := SweepResult{Algorithm: m.Name(), BestT: -1}
	for _, t := range Thresholds() {
		var pairs []core.Pair
		start := time.Now()
		for r := 0; r < repeats; r++ {
			pairs = m.Match(g, t)
		}
		elapsed := time.Since(start) / time.Duration(repeats)
		pt := ThresholdPoint{T: t, Metrics: Evaluate(pairs, gt), Runtime: elapsed}
		res.Points = append(res.Points, pt)
		// Largest threshold with the highest F1: >= keeps later (larger)
		// thresholds on ties.
		if res.BestT < 0 || pt.Metrics.F1 >= res.Best.F1 {
			res.BestT = pt.T
			res.Best = pt.Metrics
			res.Runtime = pt.Runtime
		}
	}
	return res
}

// SweepAll tunes every matcher on the graph and returns results in
// matcher order.
func SweepAll(g *graph.Bipartite, gt *dataset.GroundTruth, matchers []core.Matcher, repeats int) []SweepResult {
	out := make([]SweepResult, len(matchers))
	for i, m := range matchers {
		out[i] = Sweep(g, gt, m, repeats)
	}
	return out
}
