// Package eval implements the paper's evaluation methodology (Section 5):
// precision, recall and F-measure of a bipartite matching against the
// ground truth; the similarity-threshold sweep from 0.05 to 1.00 in steps
// of 0.05, selecting the largest threshold that achieves the best
// F-measure; and run-time measurement averaged over repeated executions.
package eval

import (
	"time"

	"github.com/ccer-go/ccer/internal/core"
	"github.com/ccer-go/ccer/internal/dataset"
	"github.com/ccer-go/ccer/internal/graph"
	"github.com/ccer-go/ccer/internal/par"
)

// Metrics are the paper's three effectiveness measures. Precision is the
// portion of output pairs that are true matches; recall the portion of
// true matches that are output; F1 their harmonic mean.
type Metrics struct {
	Precision float64
	Recall    float64
	F1        float64
}

// Evaluate scores a matching against the ground truth. Every division is
// guarded individually: precision is 0 for an empty output, recall is 0
// for an empty (or nil) ground truth, and F1 is 0 whenever precision and
// recall are both 0 — so no combination of empty inputs divides by zero
// or yields NaN.
func Evaluate(pairs []core.Pair, gt *dataset.GroundTruth) Metrics {
	correct := 0
	if gt != nil && gt.Len() > 0 {
		for _, p := range pairs {
			if gt.IsMatch(p.U, p.V) {
				correct++
			}
		}
	}
	var m Metrics
	if len(pairs) > 0 {
		m.Precision = float64(correct) / float64(len(pairs))
	}
	if gt != nil && gt.Len() > 0 {
		m.Recall = float64(correct) / float64(gt.Len())
	}
	if m.Precision+m.Recall > 0 {
		m.F1 = 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
	}
	return m
}

// Thresholds returns the paper's sweep grid: 0.05 to 1.00 in steps of
// 0.05.
func Thresholds() []float64 {
	out := make([]float64, 0, 20)
	for i := 1; i <= 20; i++ {
		out = append(out, float64(i)*0.05)
	}
	return out
}

// ThresholdPoint is the outcome of one sweep step.
type ThresholdPoint struct {
	T       float64
	Metrics Metrics
	Runtime time.Duration
}

// SweepResult is the outcome of tuning one algorithm on one similarity
// graph.
type SweepResult struct {
	Algorithm string
	// BestT is the largest threshold achieving the maximum F1, the
	// paper's optimal-threshold rule.
	BestT float64
	// Best holds the metrics at BestT.
	Best Metrics
	// Runtime is the mean run-time at BestT over the configured repeats.
	Runtime time.Duration
	// Points holds every sweep step in threshold order.
	Points []ThresholdPoint
}

// SweepOptions configures a threshold sweep.
type SweepOptions struct {
	// Repeats is how many times the matching at each threshold is timed
	// (the paper uses 10 for its run-time tables); values below 1 are
	// treated as 1. The repeat loop always runs sequentially inside one
	// worker, so Runtime stays a per-execution mean even under
	// parallelism.
	Repeats int
	// Parallelism is the number of worker goroutines evaluating sweep
	// points. 1 (or any negative value) runs serially; 0 means
	// runtime.NumCPU(). Effectiveness results are identical at any
	// parallelism, provided BAH's step cap binds before its wall-clock
	// cap (true for the defaults; a binding deadline makes BAH
	// timing-dependent even serially). Run-time measurements are subject
	// to scheduling noise from concurrent workers, so use Parallelism 1
	// when reproducing the paper's timing tables.
	Parallelism int
	// Stop, when non-nil, is polled between sweep points and between the
	// timed repeats inside a point; once it returns true no further
	// Match calls start (the in-flight one finishes). A sweep cut short
	// this way returns partial results — callers that cancel should
	// discard them. It bounds cancellation latency to one Match call
	// instead of a full 20-point, Repeats-deep sweep.
	Stop func() bool
}

func (o SweepOptions) repeats() int {
	if o.Repeats < 1 {
		return 1
	}
	return o.Repeats
}

// Sweep runs the matcher across the threshold grid serially and applies
// the paper's selection rule. repeats controls how many times the
// matching at each threshold is timed; values below 1 are treated as 1.
func Sweep(g *graph.Bipartite, gt *dataset.GroundTruth, m core.Matcher, repeats int) SweepResult {
	return SweepOpts(g, gt, m, SweepOptions{Repeats: repeats, Parallelism: 1})
}

// sweepPoint evaluates one threshold: repeats timed sequential runs, then
// effectiveness scoring of the final matching. stop (may be nil) is
// polled between repeats so a tripped cancellation wastes at most one
// Match call; the mean is taken over the runs that actually happened.
func sweepPoint(g *graph.Bipartite, gt *dataset.GroundTruth, m core.Matcher, t float64, repeats int, stop func() bool) ThresholdPoint {
	var pairs []core.Pair
	start := time.Now()
	done := 0
	for r := 0; r < repeats; r++ {
		pairs = m.Match(g, t)
		done++
		if stop != nil && stop() {
			break
		}
	}
	elapsed := time.Since(start) / time.Duration(done)
	return ThresholdPoint{T: t, Metrics: Evaluate(pairs, gt), Runtime: elapsed}
}

// selectBest applies the paper's selection rule over completed points:
// the largest threshold with the highest F1 (>= keeps later, larger
// thresholds on ties). Points must be in ascending threshold order.
func selectBest(algorithm string, points []ThresholdPoint) SweepResult {
	res := SweepResult{Algorithm: algorithm, BestT: -1, Points: points}
	for _, pt := range points {
		if res.BestT < 0 || pt.Metrics.F1 >= res.Best.F1 {
			res.BestT = pt.T
			res.Best = pt.Metrics
			res.Runtime = pt.Runtime
		}
	}
	return res
}

// SweepOpts runs the matcher across the threshold grid, fanning the sweep
// points over opts.Parallelism workers, and applies the paper's selection
// rule. Each worker gets its own clone of the matcher (core.Clone), and
// the result is identical to the serial sweep regardless of parallelism:
// points land in threshold order and the selection rule runs over the
// ordered slice.
func SweepOpts(g *graph.Bipartite, gt *dataset.GroundTruth, m core.Matcher, opts SweepOptions) SweepResult {
	ts := Thresholds()
	points := make([]ThresholdPoint, len(ts))
	repeats := opts.repeats()
	workers := par.Workers(opts.Parallelism)
	clones := core.NewCloneCache([]core.Matcher{m}, workers)
	par.For(len(ts), workers, opts.Stop, func(w, i int) {
		points[i] = sweepPoint(g, gt, clones.Get(w, 0), ts[i], repeats, opts.Stop)
	})
	return selectBest(m.Name(), points)
}

// SweepAll tunes every matcher on the graph serially and returns results
// in matcher order.
func SweepAll(g *graph.Bipartite, gt *dataset.GroundTruth, matchers []core.Matcher, repeats int) []SweepResult {
	return SweepAllOpts(g, gt, matchers, SweepOptions{Repeats: repeats, Parallelism: 1})
}

// SweepAllOpts tunes every matcher on the graph, fanning the full
// (matcher × threshold) grid over opts.Parallelism workers. Results come
// back in matcher order with points in threshold order, identical to the
// serial path.
func SweepAllOpts(g *graph.Bipartite, gt *dataset.GroundTruth, matchers []core.Matcher, opts SweepOptions) []SweepResult {
	out := make([]SweepResult, len(matchers))
	ts := Thresholds()
	repeats := opts.repeats()
	workers := par.Workers(opts.Parallelism)
	points := make([][]ThresholdPoint, len(matchers))
	for i := range points {
		points[i] = make([]ThresholdPoint, len(ts))
	}
	clones := core.NewCloneCache(matchers, workers)
	par.For(len(matchers)*len(ts), workers, opts.Stop, func(w, j int) {
		mi, ti := j/len(ts), j%len(ts)
		points[mi][ti] = sweepPoint(g, gt, clones.Get(w, mi), ts[ti], repeats, opts.Stop)
	})
	for i, m := range matchers {
		out[i] = selectBest(m.Name(), points[i])
	}
	return out
}
