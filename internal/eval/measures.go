package eval

// TopStats holds the paper's Table 5 effectiveness measures for one set
// of similarity graphs: for each algorithm, how often it achieves the
// highest F1 (#Top1), how often the second highest (#Top2), and the
// average margin Δ (in percentage points of F1) over the runner-up when
// it is the top performer. Ties increment the counters of every algorithm
// involved, as in the paper.
type TopStats struct {
	Top1  []int
	Top2  []int
	Delta []float64 // mean (best - second) * 100 over the graphs where the algorithm is top
}

// TopCounts computes TopStats from an F1 matrix with one row per
// similarity graph and one column per algorithm.
func TopCounts(f1 [][]float64) TopStats {
	if len(f1) == 0 {
		return TopStats{}
	}
	k := len(f1[0])
	ts := TopStats{
		Top1:  make([]int, k),
		Top2:  make([]int, k),
		Delta: make([]float64, k),
	}
	topTimes := make([]int, k)
	for _, row := range f1 {
		best, second := bestTwoDistinct(row)
		for j, v := range row {
			switch v {
			case best:
				ts.Top1[j]++
				topTimes[j]++
				if second >= 0 {
					ts.Delta[j] += (best - second) * 100
				}
			case second:
				ts.Top2[j]++
			}
		}
	}
	for j := range ts.Delta {
		if topTimes[j] > 0 {
			ts.Delta[j] /= float64(topTimes[j])
		}
	}
	return ts
}

// bestTwoDistinct returns the highest value and the highest strictly
// smaller value of the row, or -1 if all values are equal.
func bestTwoDistinct(row []float64) (best, second float64) {
	best, second = row[0], -1
	for _, v := range row[1:] {
		if v > best {
			second = best
			best = v
		} else if v < best && v > second {
			second = v
		}
	}
	return best, second
}
