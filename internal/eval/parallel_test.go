package eval

import (
	"math/rand"
	"testing"

	"github.com/ccer-go/ccer/internal/core"
	"github.com/ccer-go/ccer/internal/dataset"
	"github.com/ccer-go/ccer/internal/graph"
)

// randomSweepInput builds a reproducible random graph and diagonal ground
// truth for determinism tests.
func randomSweepInput(t *testing.T, seed int64) (*graph.Bipartite, *dataset.GroundTruth) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 60
	b := graph.NewBuilder(n, n)
	for i := 0; i < 900; i++ {
		b.Add(int32(rng.Intn(n)), int32(rng.Intn(n)), rng.Float64())
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pairs := make([][2]int32, n)
	for i := range pairs {
		pairs[i] = [2]int32{int32(i), int32(i)}
	}
	return g, dataset.NewGroundTruth(pairs)
}

// stripRuntimes zeroes the wall-clock fields, the only part of a sweep
// result that legitimately differs between runs.
func stripRuntimes(rs []SweepResult) []SweepResult {
	out := make([]SweepResult, len(rs))
	for i, r := range rs {
		r.Runtime = 0
		pts := make([]ThresholdPoint, len(r.Points))
		for j, p := range r.Points {
			p.Runtime = 0
			pts[j] = p
		}
		r.Points = pts
		out[i] = r
	}
	return out
}

func equalSweepResults(t *testing.T, serial, parallel []SweepResult) {
	t.Helper()
	s, p := stripRuntimes(serial), stripRuntimes(parallel)
	if len(s) != len(p) {
		t.Fatalf("result count: serial %d, parallel %d", len(s), len(p))
	}
	for i := range s {
		a, b := s[i], p[i]
		if a.Algorithm != b.Algorithm || a.BestT != b.BestT || a.Best != b.Best {
			t.Fatalf("%s: serial best (t=%v, %+v), parallel best (t=%v, %+v)",
				a.Algorithm, a.BestT, a.Best, b.BestT, b.Best)
		}
		for j := range a.Points {
			if a.Points[j] != b.Points[j] {
				t.Fatalf("%s point %d: serial %+v, parallel %+v",
					a.Algorithm, j, a.Points[j], b.Points[j])
			}
		}
	}
}

// TestSweepOptsParallelMatchesSerial asserts that the parallel sweep is
// indistinguishable from the serial one (modulo wall-clock), including
// for the stochastic BAH at a fixed seed.
func TestSweepOptsParallelMatchesSerial(t *testing.T) {
	g, gt := randomSweepInput(t, 11)
	for _, m := range []core.Matcher{core.UMC{}, core.KRC{}, core.NewBAH(7)} {
		serial := SweepOpts(g, gt, m, SweepOptions{Parallelism: 1})
		for _, workers := range []int{2, 4, 16} {
			parallel := SweepOpts(g, gt, m, SweepOptions{Parallelism: workers})
			equalSweepResults(t,
				[]SweepResult{serial}, []SweepResult{parallel})
		}
	}
}

// TestSweepAllOptsParallelMatchesSerial runs the full eight-algorithm
// grid serial vs parallel at a fixed seed.
func TestSweepAllOptsParallelMatchesSerial(t *testing.T) {
	g, gt := randomSweepInput(t, 23)
	matchers := core.All(42)
	serial := SweepAllOpts(g, gt, matchers, SweepOptions{Parallelism: 1})
	for _, workers := range []int{2, 8, 0} {
		parallel := SweepAllOpts(g, gt, matchers, SweepOptions{Parallelism: workers})
		equalSweepResults(t, serial, parallel)
	}
}

// countingMatcher counts Match calls so tests can observe how many sweep
// points actually ran.
type countingMatcher struct{ n *int }

func (countingMatcher) Name() string { return "CNT" }
func (c countingMatcher) Match(g *graph.Bipartite, t float64) []core.Pair {
	*c.n++
	return nil
}

// TestSweepOptsStop checks that a tripped Stop halts the sweep between
// points: cancellation latency is bounded by one Match call, not the
// full 20-point grid.
func TestSweepOptsStop(t *testing.T) {
	g, gt := randomSweepInput(t, 3)
	calls := 0
	SweepOpts(g, gt, countingMatcher{&calls}, SweepOptions{
		Parallelism: 1,
		Stop:        func() bool { return calls >= 2 },
	})
	if calls != 2 {
		t.Fatalf("sweep ran %d points after Stop tripped, want 2", calls)
	}
}

// TestSweepDefaultsDelegate pins that the legacy entry points are the
// serial special case of the options-based ones.
func TestSweepDefaultsDelegate(t *testing.T) {
	g, gt := randomSweepInput(t, 5)
	m := core.UMC{}
	equalSweepResults(t,
		[]SweepResult{Sweep(g, gt, m, 1)},
		[]SweepResult{SweepOpts(g, gt, m, SweepOptions{Parallelism: 1})})
	equalSweepResults(t,
		SweepAll(g, gt, []core.Matcher{m}, 1),
		SweepAllOpts(g, gt, []core.Matcher{m}, SweepOptions{Parallelism: 1}))
}
