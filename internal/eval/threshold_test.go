package eval

import (
	"math"
	"math/rand"
	"testing"

	"github.com/ccer-go/ccer/internal/core"
	"github.com/ccer-go/ccer/internal/datagen"
	"github.com/ccer-go/ccer/internal/graph"
	"github.com/ccer-go/ccer/internal/simgraph"
)

func TestEstimateThresholdBimodal(t *testing.T) {
	// Matches near 0.85, noise near 0.25: the estimate must land in the
	// valley between the two modes.
	rng := rand.New(rand.NewSource(1))
	b := graph.NewBuilder(50, 50)
	for i := 0; i < 50; i++ {
		b.Add(int32(i), int32(i), 0.8+0.1*rng.Float64())
	}
	for k := 0; k < 300; k++ {
		b.Add(int32(rng.Intn(50)), int32(rng.Intn(50)), 0.2+0.1*rng.Float64())
	}
	g := b.MustBuild()
	est := EstimateThreshold(g)
	if est <= 0.30 || est > 0.80 {
		t.Fatalf("estimate %v not in the valley (0.30, 0.80]", est)
	}
	// At the estimated threshold, UMC recovers the planted matching.
	pairs := core.UMC{}.Match(g, est)
	if len(pairs) != 50 {
		t.Fatalf("UMC at estimated threshold found %d pairs, want 50", len(pairs))
	}
}

func TestEstimateThresholdEdgeCases(t *testing.T) {
	empty := graph.NewBuilder(3, 3).MustBuild()
	if est := EstimateThreshold(empty); est != 0.5 {
		t.Fatalf("empty graph estimate = %v", est)
	}
	// Uniform weights: falls back to the density rule, stays on grid.
	rng := rand.New(rand.NewSource(2))
	b := graph.NewBuilder(20, 20)
	for i := 0; i < 200; i++ {
		b.Add(int32(rng.Intn(20)), int32(rng.Intn(20)), rng.Float64())
	}
	est := EstimateThreshold(b.MustBuild())
	if est < 0.05 || est > 0.95 {
		t.Fatalf("estimate %v out of range", est)
	}
	if r := math.Mod(est/0.05, 1); r > 1e-9 && r < 1-1e-9 {
		t.Fatalf("estimate %v not on the 0.05 grid", est)
	}
}

// On generated similarity graphs, matching at the estimated threshold
// must recover most of the F1 available at the swept optimum — the
// practical use of the Table 8 analysis.
func TestEstimateThresholdVsSweptOptimum(t *testing.T) {
	spec, err := datagen.SpecByID("D2")
	if err != nil {
		t.Fatal(err)
	}
	task := spec.Generate(9, 0.03)
	graphs := simgraph.Generate(task, spec.KeyAttrs, simgraph.Options{
		Families: []simgraph.Family{simgraph.SASyn},
	})
	if len(graphs) == 0 {
		t.Fatal("no graphs")
	}
	total, recovered := 0.0, 0.0
	for _, sg := range graphs {
		best := Sweep(sg.G, task.GT, core.UMC{}, 1).Best.F1
		est := EstimateThreshold(sg.G)
		got := Evaluate(core.UMC{}.Match(sg.G, est), task.GT).F1
		total += best
		recovered += got
	}
	if recovered < 0.75*total {
		t.Fatalf("estimated thresholds recover %.1f%% of swept F1, want >= 75%%",
			100*recovered/total)
	}
}
