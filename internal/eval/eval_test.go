package eval

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"github.com/ccer-go/ccer/internal/core"
	"github.com/ccer-go/ccer/internal/dataset"
	"github.com/ccer-go/ccer/internal/graph"
)

func approx(t *testing.T, got, want float64, name string) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("%s = %v, want %v", name, got, want)
	}
}

func TestEvaluate(t *testing.T) {
	gt := dataset.NewGroundTruth([][2]int32{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	pairs := []core.Pair{
		{U: 0, V: 0, W: 0.9}, // correct
		{U: 1, V: 1, W: 0.8}, // correct
		{U: 2, V: 5, W: 0.7}, // wrong
	}
	m := Evaluate(pairs, gt)
	approx(t, m.Precision, 2.0/3.0, "Precision")
	approx(t, m.Recall, 2.0/4.0, "Recall")
	approx(t, m.F1, 2*(2.0/3.0)*(0.5)/((2.0/3.0)+0.5), "F1")
}

// TestEvaluateDivisionGuards pins the division conventions: every ratio
// is individually guarded, so no combination of empty matchings and
// empty/nil ground truths divides by zero or produces NaN.
func TestEvaluateDivisionGuards(t *testing.T) {
	gt3 := dataset.NewGroundTruth([][2]int32{{0, 0}, {1, 1}, {2, 2}})
	cases := []struct {
		name  string
		pairs []core.Pair
		gt    *dataset.GroundTruth
		want  Metrics
	}{
		{"nil pairs, nil gt", nil, nil, Metrics{}},
		{"nil pairs, empty gt", nil, dataset.NewGroundTruth(nil), Metrics{}},
		{"nil pairs, real gt", nil, gt3, Metrics{}},
		{"pairs, nil gt", []core.Pair{{U: 0, V: 0}}, nil, Metrics{}},
		{"pairs, empty gt", []core.Pair{{U: 0, V: 0}}, dataset.NewGroundTruth(nil), Metrics{}},
		{"all wrong", []core.Pair{{U: 0, V: 2}, {U: 1, V: 0}}, gt3, Metrics{}},
		{"all correct, partial recall",
			[]core.Pair{{U: 0, V: 0}}, gt3,
			Metrics{Precision: 1, Recall: 1.0 / 3.0, F1: 0.5}},
		{"perfect",
			[]core.Pair{{U: 0, V: 0}, {U: 1, V: 1}, {U: 2, V: 2}}, gt3,
			Metrics{Precision: 1, Recall: 1, F1: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Evaluate(tc.pairs, tc.gt)
			if math.IsNaN(got.Precision) || math.IsNaN(got.Recall) || math.IsNaN(got.F1) {
				t.Fatalf("NaN metrics: %+v", got)
			}
			approx(t, got.Precision, tc.want.Precision, "Precision")
			approx(t, got.Recall, tc.want.Recall, "Recall")
			approx(t, got.F1, tc.want.F1, "F1")
		})
	}
}

func TestEvaluateEdgeCases(t *testing.T) {
	gt := dataset.NewGroundTruth([][2]int32{{0, 0}})
	empty := Evaluate(nil, gt)
	if empty.Precision != 0 || empty.Recall != 0 || empty.F1 != 0 {
		t.Fatalf("empty output metrics = %+v", empty)
	}
	none := Evaluate([]core.Pair{{U: 0, V: 0}}, dataset.NewGroundTruth(nil))
	if none.Precision != 0 || none.Recall != 0 {
		t.Fatalf("empty GT metrics = %+v", none)
	}
	perfect := Evaluate([]core.Pair{{U: 0, V: 0}}, gt)
	approx(t, perfect.F1, 1, "perfect F1")
}

func TestThresholds(t *testing.T) {
	ts := Thresholds()
	if len(ts) != 20 {
		t.Fatalf("thresholds: %d, want 20", len(ts))
	}
	approx(t, ts[0], 0.05, "first")
	approx(t, ts[19], 1.0, "last")
	for i := 1; i < len(ts); i++ {
		approx(t, ts[i]-ts[i-1], 0.05, "step")
	}
}

// sweepGraph has matches at weight 0.8 and noise edges at 0.4: any
// threshold in [0.4, 0.8) yields perfect F1, so the sweep must select the
// largest such grid point, 0.75.
func sweepFixture(t *testing.T) (*graph.Bipartite, *dataset.GroundTruth) {
	t.Helper()
	b := graph.NewBuilder(3, 3)
	b.Add(0, 0, 0.8)
	b.Add(1, 1, 0.8)
	b.Add(2, 2, 0.8)
	b.Add(0, 1, 0.4)
	b.Add(1, 0, 0.4)
	b.Add(2, 0, 0.4)
	b.Add(0, 2, 0.4)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g, dataset.NewGroundTruth([][2]int32{{0, 0}, {1, 1}, {2, 2}})
}

func TestSweepSelectsLargestBestThreshold(t *testing.T) {
	g, gt := sweepFixture(t)
	res := Sweep(g, gt, core.UMC{}, 1)
	approx(t, res.Best.F1, 1, "best F1")
	approx(t, res.BestT, 0.75, "best threshold")
	if len(res.Points) != 20 {
		t.Fatalf("points: %d, want 20", len(res.Points))
	}
	if res.Algorithm != "UMC" {
		t.Fatalf("algorithm = %q", res.Algorithm)
	}
	if res.Runtime < 0 {
		t.Fatal("negative runtime")
	}
}

func TestSweepAll(t *testing.T) {
	g, gt := sweepFixture(t)
	matchers := []core.Matcher{core.UMC{}, core.CNC{}, core.EXC{}}
	results := SweepAll(g, gt, matchers, 1)
	if len(results) != 3 {
		t.Fatalf("results: %d", len(results))
	}
	for i, r := range results {
		if r.Algorithm != matchers[i].Name() {
			t.Fatalf("result %d for %q, want %q", i, r.Algorithm, matchers[i].Name())
		}
		// This fixture is easy: every algorithm should reach F1=1 at
		// t=0.75 (noise edges pruned, matches mutually best).
		approx(t, r.Best.F1, 1, r.Algorithm+" F1")
		approx(t, r.BestT, 0.75, r.Algorithm+" threshold")
	}
}

func TestTopCounts(t *testing.T) {
	f1 := [][]float64{
		{0.9, 0.8, 0.7}, // A top, B second
		{0.9, 0.8, 0.7}, // same
		{0.5, 0.9, 0.7}, // B top, C second
		{0.6, 0.6, 0.2}, // A and B tie for top, C second
	}
	ts := TopCounts(f1)
	if !reflect.DeepEqual(ts.Top1, []int{3, 2, 0}) {
		t.Fatalf("Top1 = %v", ts.Top1)
	}
	if !reflect.DeepEqual(ts.Top2, []int{0, 2, 2}) {
		t.Fatalf("Top2 = %v", ts.Top2)
	}
	// A's deltas: 10, 10, 40 (tie row: best 0.6, second 0.2).
	approx(t, ts.Delta[0], (10.0+10.0+40.0)/3, "Delta A")
	// B's deltas: 20 (row 3), 40 (tie row).
	approx(t, ts.Delta[1], 30, "Delta B")
	approx(t, ts.Delta[2], 0, "Delta C")
}

func TestTopCountsAllTied(t *testing.T) {
	ts := TopCounts([][]float64{{0.5, 0.5}})
	if !reflect.DeepEqual(ts.Top1, []int{1, 1}) {
		t.Fatalf("Top1 = %v", ts.Top1)
	}
	if !reflect.DeepEqual(ts.Top2, []int{0, 0}) {
		t.Fatalf("Top2 = %v", ts.Top2)
	}
	approx(t, ts.Delta[0], 0, "Delta tied")
	empty := TopCounts(nil)
	if empty.Top1 != nil {
		t.Fatal("empty TopCounts not zero")
	}
}

// Precision and recall are always in [0,1] and F1 is their harmonic mean.
func TestPropertyEvaluateBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 1
		var gtPairs [][2]int32
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				gtPairs = append(gtPairs, [2]int32{int32(i), int32(i)})
			}
		}
		gt := dataset.NewGroundTruth(gtPairs)
		var pairs []core.Pair
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				pairs = append(pairs, core.Pair{U: int32(i), V: int32(rng.Intn(n))})
			}
		}
		m := Evaluate(pairs, gt)
		if m.Precision < 0 || m.Precision > 1 || m.Recall < 0 || m.Recall > 1 {
			return false
		}
		if m.Precision > 0 && m.Recall > 0 {
			want := 2 * m.Precision * m.Recall / (m.Precision + m.Recall)
			return math.Abs(m.F1-want) < 1e-12
		}
		return m.F1 == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// The sweep's Best is the max F1 over its points, at the largest such
// threshold.
func TestPropertySweepConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n1, n2 := rng.Intn(12)+3, rng.Intn(12)+3
		b := graph.NewBuilder(n1, n2)
		m := rng.Intn(60)
		for i := 0; i < m; i++ {
			b.Add(int32(rng.Intn(n1)), int32(rng.Intn(n2)), rng.Float64())
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		var gtPairs [][2]int32
		for i := 0; i < min(n1, n2); i++ {
			if rng.Intn(2) == 0 {
				gtPairs = append(gtPairs, [2]int32{int32(i), int32(i)})
			}
		}
		if len(gtPairs) == 0 {
			gtPairs = [][2]int32{{0, 0}}
		}
		gt := dataset.NewGroundTruth(gtPairs)
		res := Sweep(g, gt, core.UMC{}, 1)
		bestF1, bestT := -1.0, -1.0
		for _, p := range res.Points {
			if p.Metrics.F1 >= bestF1 {
				bestF1 = p.Metrics.F1
				bestT = p.T
			}
		}
		return math.Abs(res.Best.F1-bestF1) < 1e-12 && math.Abs(res.BestT-bestT) < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
