// Package par provides the tiny shared-counter parallel loop used by
// every concurrent entry point of the module: the threshold sweep
// (internal/eval), the experiment grid (internal/exp), and the public
// SweepAll/MatchConcurrent API.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a user-facing parallelism knob: 0 means
// runtime.NumCPU(), anything else below 1 means serial (1), and other
// values pass through. Callers size per-worker state with the returned
// count before handing it to For.
func Workers(n int) int {
	if n == 0 {
		return runtime.NumCPU()
	}
	if n < 1 {
		return 1
	}
	return n
}

// For runs fn(worker, i) exactly once for every i in [0, n), fanned over
// workers goroutines pulling indices from a shared counter. worker
// identifies the executing goroutine (0 <= worker < workers), letting
// callers keep per-worker state such as matcher clones. If stop is
// non-nil, goroutines cease pulling new indices once it returns true;
// already-started calls finish. For returns when all workers have
// drained. workers <= 1 (or n <= 1) runs everything inline on the
// calling goroutine.
//
// fn must confine its writes to per-i state (e.g. slot i of a
// preallocated slice): For provides no ordering between calls beyond the
// final synchronization at return.
func For(n, workers int, stop func() bool, fn func(worker, i int)) {
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if stop != nil && stop() {
				return
			}
			fn(0, i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for stop == nil || !stop() {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(worker, i)
			}
		}(w)
	}
	wg.Wait()
}
