package par

import (
	"sync/atomic"
	"testing"
)

// TestForCoversEveryIndexOnce checks each index runs exactly once at any
// worker count, including counts above n.
func TestForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 64} {
		const n = 37
		counts := make([]atomic.Int32, n)
		For(n, workers, nil, func(_, i int) { counts[i].Add(1) })
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

// TestForWorkerIDsInRange checks worker ids stay below the (clamped)
// worker count so per-worker state slices can be sized by `workers`.
func TestForWorkerIDsInRange(t *testing.T) {
	const n, workers = 100, 8
	var bad atomic.Int32
	For(n, workers, nil, func(w, _ int) {
		if w < 0 || w >= workers {
			bad.Add(1)
		}
	})
	if bad.Load() != 0 {
		t.Fatalf("%d calls saw an out-of-range worker id", bad.Load())
	}
}

// TestForStop checks a tripped stop prevents further indices from
// starting.
func TestForStop(t *testing.T) {
	var started atomic.Int32
	stopped := func() bool { return started.Load() >= 3 }
	For(1000, 1, stopped, func(_, i int) { started.Add(1) })
	if got := started.Load(); got != 3 {
		t.Fatalf("serial: %d indices ran after stop, want 3", got)
	}
	// Parallel: stop bounds the tail loosely (in-flight calls finish),
	// but the loop must terminate well short of n.
	started.Store(0)
	For(100000, 4, stopped, func(_, i int) { started.Add(1) })
	if got := started.Load(); got >= 100000 {
		t.Fatalf("parallel: stop ignored, all %d indices ran", got)
	}
}

// TestForEmpty checks n=0 is a no-op.
func TestForEmpty(t *testing.T) {
	For(0, 4, nil, func(_, _ int) { t.Fatal("fn called for n=0") })
}
