// Package algo is the single registry resolving algorithm names to
// matcher instances across every implementation package: the paper's
// eight and the exact Hungarian/auction baselines (internal/core) plus
// the future-work Q-learning matcher (internal/rl, which cannot live in
// core's own ByName without an import cycle). The public ccer.NewMatcher
// and the erserve service both resolve through this package, so the
// accepted name set cannot drift between the library and the service.
package algo

import (
	"fmt"

	"github.com/ccer-go/ccer/internal/core"
	"github.com/ccer-go/ccer/internal/rl"
)

// ByName returns the named matching algorithm with its default
// configuration. seed configures the stochastic BAH and QLM algorithms
// and is ignored by the others.
func ByName(name string, seed int64) (core.Matcher, error) {
	if name == "QLM" {
		return rl.NewQMatcher(seed), nil
	}
	if m := core.ByName(name, seed); m != nil {
		return m, nil
	}
	return nil, fmt.Errorf("unknown algorithm %q (have %v, HUN, AUC, QLM)",
		name, core.Names())
}

// AllByName resolves a list of names, failing on the first unknown one.
func AllByName(names []string, seed int64) ([]core.Matcher, error) {
	ms := make([]core.Matcher, len(names))
	for i, name := range names {
		m, err := ByName(name, seed)
		if err != nil {
			return nil, err
		}
		ms[i] = m
	}
	return ms, nil
}
