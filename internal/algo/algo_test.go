package algo

import (
	"strings"
	"testing"

	"github.com/ccer-go/ccer/internal/core"
)

func TestByNameCoversEveryImplementation(t *testing.T) {
	names := append(core.Names(), "HUN", "AUC", "QLM")
	for _, name := range names {
		m, err := ByName(name, 3)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if m.Name() != name {
			t.Fatalf("ByName(%q).Name() = %q", name, m.Name())
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	_, err := ByName("XXX", 1)
	if err == nil {
		t.Fatal("unknown name accepted")
	}
	// The error enumerates the full accepted set, including the names
	// that live outside core's own ByName.
	for _, want := range []string{"UMC", "HUN", "AUC", "QLM"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not list %s", err, want)
		}
	}
}

func TestAllByName(t *testing.T) {
	ms, err := AllByName([]string{"UMC", "QLM"}, 2)
	if err != nil || len(ms) != 2 {
		t.Fatalf("AllByName = %v, %v", ms, err)
	}
	if _, err := AllByName([]string{"UMC", "XXX"}, 2); err == nil {
		t.Fatal("list with unknown name accepted")
	}
}
