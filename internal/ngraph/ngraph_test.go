package ngraph

import (
	"math"
	"math/rand"
	"slices"
	"strings"
	"testing"
	"testing/quick"

	"github.com/ccer-go/ccer/internal/strsim"
	"github.com/ccer-go/ccer/internal/vector"
)

func approx(t *testing.T, got, want float64, name string) {
	t.Helper()
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("%s = %v, want %v", name, got, want)
	}
}

func charMode(n int) vector.Mode  { return vector.Mode{Char: true, N: n} }
func tokenMode(n int) vector.Mode { return vector.Mode{Char: false, N: n} }

func TestFromValueStructure(t *testing.T) {
	v := NewVocab()
	// "Joe Biden" has 7 character trigrams; with window 3 each gram
	// connects to up to 3 successors.
	g := FromValue(v, charMode(3), "Joe Biden")
	if g.NumEdges() == 0 {
		t.Fatal("no edges built")
	}
	ids := g.GramIDs()
	if len(ids) != 7 {
		t.Fatalf("gram nodes = %d, want 7", len(ids))
	}
	// Edge count: pairs (i, i+d), d in 1..3, i+d < 7 => 6+5+4 = 15
	// (all trigrams of "Joe Biden" are distinct).
	if g.NumEdges() != 15 {
		t.Fatalf("edges = %d, want 15", g.NumEdges())
	}
}

func TestFromValueEmpty(t *testing.T) {
	v := NewVocab()
	g := FromValue(v, charMode(3), "")
	if g.NumEdges() != 0 {
		t.Fatalf("empty value has %d edges", g.NumEdges())
	}
	approx(t, Containment(g, g), 1, "Containment empty-empty")
	g2 := FromValue(v, charMode(3), "something")
	approx(t, Containment(g, g2), 0, "Containment empty-nonempty")
	approx(t, Value(g, g2), 0, "Value empty-nonempty")
	approx(t, NormalizedValue(g, g2), 0, "NormalizedValue empty-nonempty")
}

func TestSimilaritiesIdentical(t *testing.T) {
	v := NewVocab()
	a := FromValue(v, charMode(3), "entity resolution")
	b := FromValue(v, charMode(3), "entity resolution")
	for _, m := range Measures() {
		approx(t, Sim(m, a, b), 1, m+" identical")
	}
}

func TestSimilaritiesDisjoint(t *testing.T) {
	v := NewVocab()
	a := FromValue(v, tokenMode(1), "alpha beta gamma")
	b := FromValue(v, tokenMode(1), "delta epsilon zeta")
	for _, m := range Measures() {
		approx(t, Sim(m, a, b), 0, m+" disjoint")
	}
}

func TestSimilarityOrdering(t *testing.T) {
	v := NewVocab()
	a := FromValue(v, charMode(3), "green apple pie")
	near := FromValue(v, charMode(3), "green apple tart")
	far := FromValue(v, charMode(3), "quantum flux device")
	for _, m := range Measures() {
		if Sim(m, a, near) <= Sim(m, a, far) {
			t.Fatalf("%s: near %v <= far %v", m, Sim(m, a, near), Sim(m, a, far))
		}
	}
}

func TestOrderSensitivity(t *testing.T) {
	// Bag models cannot tell these apart; graph models can, because edges
	// encode gram adjacency.
	v := NewVocab()
	// Note: a full reversal would keep the same undirected edges, so use
	// a proper shuffle.
	a := FromValue(v, tokenMode(1), "new york city hall")
	b := FromValue(v, tokenMode(1), "york hall new city")
	sim := Containment(a, b)
	if sim >= 1 {
		t.Fatalf("reordered tokens have containment %v, want < 1", sim)
	}
}

func TestMergeRunningAverage(t *testing.T) {
	v := NewVocab()
	// Same single edge in both graphs with weights 1 and 3: merged = 2.
	g1 := FromValue(v, tokenMode(1), "a b")
	g2 := &Graph{keys: append([]uint64(nil), g1.keys...), ws: []float64{3}}
	merged := Merge([]*Graph{g1, g2})
	if merged.NumEdges() != 1 {
		t.Fatalf("merged edges = %d, want 1", merged.NumEdges())
	}
	for _, w := range merged.ws {
		approx(t, w, 2, "merged weight")
	}
	// Merging with nil graphs is a no-op.
	merged2 := Merge([]*Graph{g1, nil})
	if merged2.NumEdges() != 1 {
		t.Fatalf("merge with nil: %d edges", merged2.NumEdges())
	}
}

func TestFromEntityMergesValues(t *testing.T) {
	v := NewVocab()
	g := FromEntity(v, tokenMode(1), []string{"john smith", "new york"})
	single := FromValue(v, tokenMode(1), "john smith")
	if Containment(single, g) != 1 {
		t.Fatalf("entity graph does not contain its value graph: %v",
			Containment(single, g))
	}
}

func TestValueVsNormalizedValue(t *testing.T) {
	v := NewVocab()
	small := FromValue(v, tokenMode(1), "alpha beta")
	big := FromValue(v, tokenMode(1), "alpha beta gamma delta epsilon zeta eta theta")
	vs := Value(small, big)
	ns := NormalizedValue(small, big)
	if ns < vs {
		t.Fatalf("NormalizedValue (%v) should be >= Value (%v) for imbalanced graphs", ns, vs)
	}
	approx(t, Overall(small, big), (Containment(small, big)+vs+ns)/3, "Overall")
}

// Similarities stay in [0,1], are symmetric, and self-similarity is 1 for
// non-empty graphs.
func TestPropertyGraphSimContracts(t *testing.T) {
	words := []string{"red", "green", "blue", "apple", "pie", "soup", "york"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		gen := func() string {
			n := rng.Intn(6) + 2
			parts := make([]string, n)
			for i := range parts {
				parts[i] = words[rng.Intn(len(words))]
			}
			return strings.Join(parts, " ")
		}
		v := NewVocab()
		modes := []vector.Mode{charMode(2), charMode(3), tokenMode(1), tokenMode(2)}
		mode := modes[rng.Intn(len(modes))]
		a := FromValue(v, mode, gen())
		b := FromValue(v, mode, gen())
		for _, m := range Measures() {
			sab, sba := Sim(m, a, b), Sim(m, b, a)
			if sab < 0 || sab > 1+1e-9 || math.IsNaN(sab) {
				return false
			}
			if math.Abs(sab-sba) > 1e-9 {
				return false
			}
		}
		if a.NumEdges() > 0 {
			for _, m := range Measures() {
				if math.Abs(Sim(m, a, a)-1) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// AllSims must agree with the individual measures.
func TestAllSimsConsistent(t *testing.T) {
	v := NewVocab()
	texts := []string{"green apple pie", "green apple tart", "", "quantum flux device"}
	for _, ta := range texts {
		for _, tb := range texts {
			a := FromValue(v, charMode(3), ta)
			b := FromValue(v, charMode(3), tb)
			all := AllSims(a, b)
			want := [4]float64{Containment(a, b), Value(a, b), NormalizedValue(a, b), Overall(a, b)}
			for i := range want {
				if math.Abs(all[i]-want[i]) > 1e-12 {
					t.Fatalf("AllSims[%d](%q,%q) = %v, want %v", i, ta, tb, all[i], want[i])
				}
			}
		}
	}
}

// refMerge is the earlier sort-based Merge, retained as the reference
// for the accumulator rewrite: sort all (key, graph-order, weight)
// triples, fold each key run with the incremental average in graph
// order.
func refMerge(graphs []*Graph) *Graph {
	live := graphs[:0:0]
	total := 0
	for _, g := range graphs {
		if g != nil && len(g.keys) > 0 {
			live = append(live, g)
			total += len(g.keys)
		}
	}
	if len(live) == 0 {
		return &Graph{}
	}
	if len(live) == 1 {
		return &Graph{keys: append([]uint64(nil), live[0].keys...),
			ws: append([]float64(nil), live[0].ws...)}
	}
	type kow struct {
		k   uint64
		ord int32
		w   float64
	}
	all := make([]kow, 0, total)
	for ord, g := range live {
		for i, k := range g.keys {
			all = append(all, kow{k, int32(ord), g.ws[i]})
		}
	}
	slices.SortFunc(all, func(a, b kow) int {
		switch {
		case a.k < b.k:
			return -1
		case a.k > b.k:
			return 1
		default:
			return int(a.ord) - int(b.ord)
		}
	})
	merged := &Graph{keys: make([]uint64, 0, total), ws: make([]float64, 0, total)}
	for i := 0; i < len(all); {
		j := i + 1
		w := all[i].w
		for ; j < len(all) && all[j].k == all[i].k; j++ {
			w += (all[j].w - w) / float64(j-i+1)
		}
		merged.keys = append(merged.keys, all[i].k)
		merged.ws = append(merged.ws, w)
		i = j
	}
	return merged
}

// TestMergeMatchesSortReference pins the accumulator Merge bit-for-bit
// against the sort-based reference on random per-value graphs.
func TestMergeMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 500; iter++ {
		n := rng.Intn(6)
		graphs := make([]*Graph, n)
		for gi := range graphs {
			if rng.Intn(5) == 0 {
				if rng.Intn(2) == 0 {
					graphs[gi] = nil
				} else {
					graphs[gi] = &Graph{}
				}
				continue
			}
			e := rng.Intn(12)
			keys := make([]uint64, 0, e)
			for k := 0; k < e; k++ {
				keys = append(keys, edgeKey(int32(rng.Intn(6)), int32(rng.Intn(6))))
			}
			// fromKeys sorts and RLEs; weights become run lengths.
			graphs[gi] = fromKeys(keys)
		}
		got := Merge(graphs)
		want := refMerge(graphs)
		if !slices.Equal(got.keys, want.keys) {
			t.Fatalf("iter %d: keys %v != %v", iter, got.keys, want.keys)
		}
		for i := range want.ws {
			if got.ws[i] != want.ws[i] {
				t.Fatalf("iter %d key %d: w %v != %v (bitwise)", iter, i, got.ws[i], want.ws[i])
			}
		}
	}
}

// TestGramIDsMatchesSortReference pins the merged-runs GramIDs against
// the full-sort reference.
func TestGramIDsMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 300; iter++ {
		e := rng.Intn(20)
		keys := make([]uint64, 0, e)
		for k := 0; k < e; k++ {
			keys = append(keys, edgeKey(int32(rng.Intn(9)), int32(rng.Intn(9))))
		}
		g := fromKeys(keys)
		got := g.GramIDs()
		ids := make([]int32, 0, 2*len(g.keys))
		for _, k := range g.keys {
			ids = append(ids, int32(k>>32), int32(uint32(k)))
		}
		slices.Sort(ids)
		var want []int32
		for _, id := range ids {
			if len(want) == 0 || want[len(want)-1] != id {
				want = append(want, id)
			}
		}
		if !slices.Equal(got, want) {
			t.Fatalf("iter %d: %v != %v", iter, got, want)
		}
	}
}

// TestFromValueFastPathMatchesStringPath pins the window/tuple interning
// against the string-gram path on a fresh vocabulary each.
func TestFromValueFastPathMatchesStringPath(t *testing.T) {
	values := []string{
		"golden dragon bistro", "", "a", "ab", "日本語 カフェ", "!!!",
		"repeat repeat", "Éclair café au lait", "a b c d e",
	}
	for _, mode := range vector.Modes() {
		fastVocab, strVocab := NewVocab(), NewVocab()
		for _, val := range values {
			fast := FromValue(fastVocab, mode, val)
			// String path: force the fallback by interning via ID.
			var grams []string
			if mode.Char {
				grams = vector.CharNGrams(val, mode.N)
			} else {
				grams = vector.TokenNGrams(strsim.Tokenize(val), mode.N)
			}
			ids := make([]int32, len(grams))
			for i, gram := range grams {
				ids[i] = strVocab.ID(gram)
			}
			var keys []uint64
			for i := range ids {
				for d := 1; d <= mode.N && i+d < len(ids); d++ {
					if ids[i] == ids[i+d] {
						continue
					}
					keys = append(keys, edgeKey(ids[i], ids[i+d]))
				}
			}
			want := fromKeys(keys)
			if !slices.Equal(fast.keys, want.keys) || !slices.Equal(fast.ws, want.ws) {
				t.Fatalf("%v %q: fast %v/%v != string %v/%v", mode, val, fast.keys, fast.ws, want.keys, want.ws)
			}
		}
		if fastVocab.Size() != strVocab.Size() {
			t.Fatalf("%v: vocab sizes diverge: %d != %d", mode, fastVocab.Size(), strVocab.Size())
		}
	}
}
