// Package ngraph implements the paper's schema-agnostic n-gram graph
// models (Appendix B.2.2): JInsect-style character and token n-gram
// graphs, where nodes are n-grams, undirected edges connect n-grams
// co-occurring within a window of size n, and edge weights record the
// co-occurrence frequency — so, unlike bag models, the order of n-grams is
// preserved.
//
// Per-value graphs are merged into one "entity graph" with the update
// operator (a running average of edge weights), and graphs are compared
// with the containment, value, normalized value and overall similarities
// of Giannakopoulos et al.
//
// Edges are stored as parallel key/weight slices sorted by edge key, so
// every comparison is an allocation-free merge join with a canonical
// (deterministic) summation order — the earlier map representation both
// hashed per probe and summed weight ratios in random iteration order.
package ngraph

import (
	"math"
	"slices"

	"github.com/ccer-go/ccer/internal/strsim"
	"github.com/ccer-go/ccer/internal/vector"
)

// Graph is an n-gram graph: an undirected weighted graph over gram ids.
// Edges are keyed by the ordered gram-id pair and held sorted by key.
type Graph struct {
	keys []uint64
	ws   []float64
}

// NumEdges returns the size |G| of the graph.
func (g *Graph) NumEdges() int {
	if g == nil {
		return 0
	}
	return len(g.keys)
}

func edgeKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// Vocab interns gram strings to dense ids shared by a set of graphs.
type Vocab struct {
	ids map[string]int32
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab { return &Vocab{ids: make(map[string]int32)} }

// ID interns the gram and returns its id.
func (v *Vocab) ID(gram string) int32 {
	id, ok := v.ids[gram]
	if !ok {
		id = int32(len(v.ids))
		v.ids[gram] = id
	}
	return id
}

// Size returns the number of interned grams.
func (v *Vocab) Size() int { return len(v.ids) }

// fromKeys finalizes a graph from an edge-key sequence with possibly
// repeated keys; each occurrence counts one co-occurrence, so the
// weight of an edge is its run length after sorting.
func fromKeys(keys []uint64) *Graph {
	if len(keys) == 0 {
		return &Graph{}
	}
	slices.Sort(keys)
	g := &Graph{keys: keys[:0], ws: make([]float64, 0, len(keys))}
	for i := 0; i < len(keys); {
		j := i + 1
		for j < len(keys) && keys[j] == keys[i] {
			j++
		}
		k := keys[i]
		g.keys = append(g.keys, k)
		g.ws = append(g.ws, float64(j-i))
		i = j
	}
	return g
}

// FromValue builds the n-gram graph of a single textual value under the
// given mode: nodes are the value's n-grams and every pair of grams whose
// window distance is at most n is connected, with the edge weight counting
// co-occurrences.
func FromValue(vocab *Vocab, mode vector.Mode, value string) *Graph {
	var grams []string
	if mode.Char {
		grams = vector.CharNGrams(value, mode.N)
	} else {
		grams = vector.TokenNGrams(strsim.Tokenize(value), mode.N)
	}
	ids := make([]int32, len(grams))
	for i, gram := range grams {
		ids[i] = vocab.ID(gram)
	}
	var keys []uint64
	for i := range ids {
		for d := 1; d <= mode.N && i+d < len(ids); d++ {
			if ids[i] == ids[i+d] {
				continue // no self loops
			}
			keys = append(keys, edgeKey(ids[i], ids[i+d]))
		}
	}
	return fromKeys(keys)
}

// Merge combines per-value graphs into a single entity graph using the
// update operator: the merged weight of an edge is the running average of
// its weights across the value graphs (treating absence as weight zero is
// deliberately not done — the operator averages over the graphs that
// contain the edge, following JInsect's incremental update with learning
// factor 1/i).
func Merge(graphs []*Graph) *Graph {
	live := graphs[:0:0]
	total := 0
	for _, g := range graphs {
		if g != nil && len(g.keys) > 0 {
			live = append(live, g)
			total += len(g.keys)
		}
	}
	if len(live) == 0 {
		return &Graph{}
	}
	if len(live) == 1 {
		return &Graph{keys: append([]uint64(nil), live[0].keys...),
			ws: append([]float64(nil), live[0].ws...)}
	}
	// Sort all (key, graph-order, weight) triples and fold each key run
	// with the incremental average in graph order — the same weight
	// sequence the per-graph walk sees, without a hash map.
	type kow struct {
		k   uint64
		ord int32
		w   float64
	}
	all := make([]kow, 0, total)
	for ord, g := range live {
		for i, k := range g.keys {
			all = append(all, kow{k, int32(ord), g.ws[i]})
		}
	}
	slices.SortFunc(all, func(a, b kow) int {
		switch {
		case a.k < b.k:
			return -1
		case a.k > b.k:
			return 1
		default:
			return int(a.ord) - int(b.ord)
		}
	})
	merged := &Graph{keys: make([]uint64, 0, total), ws: make([]float64, 0, total)}
	for i := 0; i < len(all); {
		j := i + 1
		w := all[i].w
		for ; j < len(all) && all[j].k == all[i].k; j++ {
			w += (all[j].w - w) / float64(j-i+1)
		}
		merged.keys = append(merged.keys, all[i].k)
		merged.ws = append(merged.ws, w)
		i = j
	}
	return merged
}

// FromEntity builds the entity graph of a set of attribute values.
func FromEntity(vocab *Vocab, mode vector.Mode, values []string) *Graph {
	graphs := make([]*Graph, len(values))
	for i, v := range values {
		graphs[i] = FromValue(vocab, mode, v)
	}
	return Merge(graphs)
}

// common walks the sorted edge lists of both graphs in one merge join,
// returning the number of shared edges and the Σ min(w)/max(w) weight
// ratio over them. The ascending-key order makes the float summation
// canonical.
func common(a, b *Graph) (int, float64) {
	i, j, n := 0, 0, 0
	ratio := 0.0
	for i < len(a.keys) && j < len(b.keys) {
		switch {
		case a.keys[i] < b.keys[j]:
			i++
		case a.keys[i] > b.keys[j]:
			j++
		default:
			n++
			ratio += math.Min(a.ws[i], b.ws[j]) / math.Max(a.ws[i], b.ws[j])
			i++
			j++
		}
	}
	return n, ratio
}

// Containment estimates the portion of common edges, ignoring weights:
// |Gi ∩ Gj| / min(|Gi|, |Gj|).
func Containment(a, b *Graph) float64 {
	if a.NumEdges() == 0 && b.NumEdges() == 0 {
		return 1
	}
	if a.NumEdges() == 0 || b.NumEdges() == 0 {
		return 0
	}
	n, _ := common(a, b)
	return float64(n) / float64(min2(a.NumEdges(), b.NumEdges()))
}

// Value extends containment with weights:
// Σ_{e∈Gi∩Gj} min(w)/max(w) / max(|Gi|,|Gj|).
func Value(a, b *Graph) float64 {
	if a.NumEdges() == 0 && b.NumEdges() == 0 {
		return 1
	}
	if a.NumEdges() == 0 || b.NumEdges() == 0 {
		return 0
	}
	_, ratio := common(a, b)
	return ratio / float64(max2(a.NumEdges(), b.NumEdges()))
}

// NormalizedValue mitigates size imbalance by dividing by the smaller
// graph: Σ_{e∈Gi∩Gj} min(w)/max(w) / min(|Gi|,|Gj|).
func NormalizedValue(a, b *Graph) float64 {
	if a.NumEdges() == 0 && b.NumEdges() == 0 {
		return 1
	}
	if a.NumEdges() == 0 || b.NumEdges() == 0 {
		return 0
	}
	_, ratio := common(a, b)
	return ratio / float64(min2(a.NumEdges(), b.NumEdges()))
}

// Overall is the average of containment, value and normalized value.
func Overall(a, b *Graph) float64 {
	return (Containment(a, b) + Value(a, b) + NormalizedValue(a, b)) / 3
}

// Measure names for graph models (Appendix B, category 3).
const (
	MeasureContainment     = "Containment"
	MeasureValue           = "Value"
	MeasureNormalizedValue = "NormalizedValue"
	MeasureOverall         = "Overall"
)

// Measures returns the four graph-model measure names in a stable order.
func Measures() []string {
	return []string{
		MeasureContainment, MeasureValue, MeasureNormalizedValue, MeasureOverall,
	}
}

// Sim computes the named graph similarity. It panics on an unknown
// measure name.
func Sim(measure string, a, b *Graph) float64 {
	switch measure {
	case MeasureContainment:
		return Containment(a, b)
	case MeasureValue:
		return Value(a, b)
	case MeasureNormalizedValue:
		return NormalizedValue(a, b)
	case MeasureOverall:
		return Overall(a, b)
	default:
		panic("ngraph: unknown measure " + measure)
	}
}

// AllSims computes all four graph measures in a single merge join over
// the sorted edge lists, returned in Measures() order: containment,
// value, normalized value, overall.
func AllSims(a, b *Graph) [4]float64 {
	if a.NumEdges() == 0 && b.NumEdges() == 0 {
		return [4]float64{1, 1, 1, 1}
	}
	if a.NumEdges() == 0 || b.NumEdges() == 0 {
		return [4]float64{}
	}
	n, ratio := common(a, b)
	small, large := a.NumEdges(), b.NumEdges()
	if small > large {
		small, large = large, small
	}
	cos := float64(n) / float64(small)
	vs := ratio / float64(large)
	ns := ratio / float64(small)
	return [4]float64{cos, vs, ns, (cos + vs + ns) / 3}
}

// GramIDs returns the sorted node ids of the graph's edges; used to build
// inverted indexes for candidate generation.
func (g *Graph) GramIDs() []int32 {
	if g.NumEdges() == 0 {
		return nil
	}
	ids := make([]int32, 0, 2*len(g.keys))
	for _, k := range g.keys {
		ids = append(ids, int32(k>>32), int32(uint32(k)))
	}
	slices.Sort(ids)
	out := ids[:1]
	for _, id := range ids[1:] {
		if id != out[len(out)-1] {
			out = append(out, id)
		}
	}
	return out
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
