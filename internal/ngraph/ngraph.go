// Package ngraph implements the paper's schema-agnostic n-gram graph
// models (Appendix B.2.2): JInsect-style character and token n-gram
// graphs, where nodes are n-grams, undirected edges connect n-grams
// co-occurring within a window of size n, and edge weights record the
// co-occurrence frequency — so, unlike bag models, the order of n-grams is
// preserved.
//
// Per-value graphs are merged into one "entity graph" with the update
// operator (a running average of edge weights), and graphs are compared
// with the containment, value, normalized value and overall similarities
// of Giannakopoulos et al.
package ngraph

import (
	"math"
	"sort"

	"github.com/ccer-go/ccer/internal/strsim"
	"github.com/ccer-go/ccer/internal/vector"
)

// Graph is an n-gram graph: an undirected weighted graph over gram ids.
// Edges are keyed by the ordered gram-id pair.
type Graph struct {
	edges map[uint64]float64
}

// NumEdges returns the size |G| of the graph.
func (g *Graph) NumEdges() int {
	if g == nil {
		return 0
	}
	return len(g.edges)
}

func edgeKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// Vocab interns gram strings to dense ids shared by a set of graphs.
type Vocab struct {
	ids map[string]int32
}

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab { return &Vocab{ids: make(map[string]int32)} }

// ID interns the gram and returns its id.
func (v *Vocab) ID(gram string) int32 {
	id, ok := v.ids[gram]
	if !ok {
		id = int32(len(v.ids))
		v.ids[gram] = id
	}
	return id
}

// Size returns the number of interned grams.
func (v *Vocab) Size() int { return len(v.ids) }

// FromValue builds the n-gram graph of a single textual value under the
// given mode: nodes are the value's n-grams and every pair of grams whose
// window distance is at most n is connected, with the edge weight counting
// co-occurrences.
func FromValue(vocab *Vocab, mode vector.Mode, value string) *Graph {
	var grams []string
	if mode.Char {
		grams = vector.CharNGrams(value, mode.N)
	} else {
		grams = vector.TokenNGrams(strsim.Tokenize(value), mode.N)
	}
	g := &Graph{edges: make(map[uint64]float64)}
	ids := make([]int32, len(grams))
	for i, gram := range grams {
		ids[i] = vocab.ID(gram)
	}
	for i := range ids {
		for d := 1; d <= mode.N && i+d < len(ids); d++ {
			if ids[i] == ids[i+d] {
				continue // no self loops
			}
			g.edges[edgeKey(ids[i], ids[i+d])]++
		}
	}
	return g
}

// Merge combines per-value graphs into a single entity graph using the
// update operator: the merged weight of an edge is the running average of
// its weights across the value graphs (treating absence as weight zero is
// deliberately not done — the operator averages over the graphs that
// contain the edge, following JInsect's incremental update with learning
// factor 1/i).
func Merge(graphs []*Graph) *Graph {
	merged := &Graph{edges: make(map[uint64]float64)}
	seen := make(map[uint64]int)
	for _, g := range graphs {
		if g == nil {
			continue
		}
		for k, w := range g.edges {
			seen[k]++
			old := merged.edges[k]
			merged.edges[k] = old + (w-old)/float64(seen[k])
		}
	}
	return merged
}

// FromEntity builds the entity graph of a set of attribute values.
func FromEntity(vocab *Vocab, mode vector.Mode, values []string) *Graph {
	graphs := make([]*Graph, len(values))
	for i, v := range values {
		graphs[i] = FromValue(vocab, mode, v)
	}
	return Merge(graphs)
}

// Containment estimates the portion of common edges, ignoring weights:
// |Gi ∩ Gj| / min(|Gi|, |Gj|).
func Containment(a, b *Graph) float64 {
	if a.NumEdges() == 0 && b.NumEdges() == 0 {
		return 1
	}
	if a.NumEdges() == 0 || b.NumEdges() == 0 {
		return 0
	}
	small, large := a, b
	if small.NumEdges() > large.NumEdges() {
		small, large = large, small
	}
	common := 0
	for k := range small.edges {
		if _, ok := large.edges[k]; ok {
			common++
		}
	}
	return float64(common) / float64(small.NumEdges())
}

// Value extends containment with weights:
// Σ_{e∈Gi∩Gj} min(w)/max(w) / max(|Gi|,|Gj|).
func Value(a, b *Graph) float64 {
	if a.NumEdges() == 0 && b.NumEdges() == 0 {
		return 1
	}
	if a.NumEdges() == 0 || b.NumEdges() == 0 {
		return 0
	}
	return weightRatioSum(a, b) / float64(max2(a.NumEdges(), b.NumEdges()))
}

// NormalizedValue mitigates size imbalance by dividing by the smaller
// graph: Σ_{e∈Gi∩Gj} min(w)/max(w) / min(|Gi|,|Gj|).
func NormalizedValue(a, b *Graph) float64 {
	if a.NumEdges() == 0 && b.NumEdges() == 0 {
		return 1
	}
	if a.NumEdges() == 0 || b.NumEdges() == 0 {
		return 0
	}
	return weightRatioSum(a, b) / float64(min2(a.NumEdges(), b.NumEdges()))
}

// Overall is the average of containment, value and normalized value.
func Overall(a, b *Graph) float64 {
	return (Containment(a, b) + Value(a, b) + NormalizedValue(a, b)) / 3
}

func weightRatioSum(a, b *Graph) float64 {
	small, large := a, b
	swap := small.NumEdges() > large.NumEdges()
	if swap {
		small, large = large, small
	}
	s := 0.0
	for k, ws := range small.edges {
		if wl, ok := large.edges[k]; ok {
			s += math.Min(ws, wl) / math.Max(ws, wl)
		}
	}
	return s
}

// Measure names for graph models (Appendix B, category 3).
const (
	MeasureContainment     = "Containment"
	MeasureValue           = "Value"
	MeasureNormalizedValue = "NormalizedValue"
	MeasureOverall         = "Overall"
)

// Measures returns the four graph-model measure names in a stable order.
func Measures() []string {
	return []string{
		MeasureContainment, MeasureValue, MeasureNormalizedValue, MeasureOverall,
	}
}

// Sim computes the named graph similarity. It panics on an unknown
// measure name.
func Sim(measure string, a, b *Graph) float64 {
	switch measure {
	case MeasureContainment:
		return Containment(a, b)
	case MeasureValue:
		return Value(a, b)
	case MeasureNormalizedValue:
		return NormalizedValue(a, b)
	case MeasureOverall:
		return Overall(a, b)
	default:
		panic("ngraph: unknown measure " + measure)
	}
}

// AllSims computes all four graph measures in a single pass over the
// smaller graph's edges, returned in Measures() order: containment,
// value, normalized value, overall.
func AllSims(a, b *Graph) [4]float64 {
	if a.NumEdges() == 0 && b.NumEdges() == 0 {
		return [4]float64{1, 1, 1, 1}
	}
	if a.NumEdges() == 0 || b.NumEdges() == 0 {
		return [4]float64{}
	}
	small, large := a, b
	if small.NumEdges() > large.NumEdges() {
		small, large = large, small
	}
	common := 0
	ratio := 0.0
	for k, ws := range small.edges {
		if wl, ok := large.edges[k]; ok {
			common++
			ratio += math.Min(ws, wl) / math.Max(ws, wl)
		}
	}
	cos := float64(common) / float64(small.NumEdges())
	vs := ratio / float64(large.NumEdges())
	ns := ratio / float64(small.NumEdges())
	return [4]float64{cos, vs, ns, (cos + vs + ns) / 3}
}

// GramIDs returns the sorted node ids of the graph's edges; used to build
// inverted indexes for candidate generation.
func (g *Graph) GramIDs() []int32 {
	seen := make(map[int32]bool)
	for k := range g.edges {
		seen[int32(k>>32)] = true
		seen[int32(uint32(k))] = true
	}
	ids := make([]int32, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
