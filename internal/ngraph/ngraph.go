// Package ngraph implements the paper's schema-agnostic n-gram graph
// models (Appendix B.2.2): JInsect-style character and token n-gram
// graphs, where nodes are n-grams, undirected edges connect n-grams
// co-occurring within a window of size n, and edge weights record the
// co-occurrence frequency — so, unlike bag models, the order of n-grams is
// preserved.
//
// Per-value graphs are merged into one "entity graph" with the update
// operator (a running average of edge weights), and graphs are compared
// with the containment, value, normalized value and overall similarities
// of Giannakopoulos et al.
//
// Edges are stored as parallel key/weight slices sorted by edge key, so
// every comparison is an allocation-free merge join with a canonical
// (deterministic) summation order — the earlier map representation both
// hashed per probe and summed weight ratios in random iteration order.
package ngraph

import (
	"slices"

	"github.com/ccer-go/ccer/internal/strsim"
	"github.com/ccer-go/ccer/internal/vector"
)

// Graph is an n-gram graph: an undirected weighted graph over gram ids.
// Edges are keyed by the ordered gram-id pair and held sorted by key.
type Graph struct {
	keys []uint64
	ws   []float64
}

// NumEdges returns the size |G| of the graph.
func (g *Graph) NumEdges() int {
	if g == nil {
		return 0
	}
	return len(g.keys)
}

func edgeKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}

// Vocab interns grams to dense ids shared by a set of graphs. Grams
// reach it either as strings (ID) or — on FromValue's allocation-free
// fast paths — as rune windows and token-id tuples; the key equivalences
// coincide with string equality of the gram strings, so ids are assigned
// in the same first-occurrence order either way. A single Vocab serves
// one representation mode (as the generation pipeline uses it); mixing
// the string path and a fast path for the same gram is not supported.
type Vocab struct {
	ids   map[string]int32
	char  map[[4]rune]int32 // char n-gram windows, n <= 4, noRune-padded
	tokID map[string]int32  // token -> token id for tuple keys
	tok   map[[3]int32]int32
	size  int
}

// noRune pads short gram-window keys; it never occurs in decoded text.
const noRune rune = -1

// NewVocab returns an empty vocabulary.
func NewVocab() *Vocab { return &Vocab{} }

// ID interns the gram and returns its id.
func (v *Vocab) ID(gram string) int32 {
	if v.ids == nil {
		v.ids = make(map[string]int32)
	}
	id, ok := v.ids[gram]
	if !ok {
		id = int32(v.size)
		v.ids[gram] = id
		v.size++
	}
	return id
}

func (v *Vocab) charID(key [4]rune) int32 {
	if v.char == nil {
		v.char = make(map[[4]rune]int32)
	}
	id, ok := v.char[key]
	if !ok {
		id = int32(v.size)
		v.char[key] = id
		v.size++
	}
	return id
}

func (v *Vocab) tokenID(tok string) int32 {
	if v.tokID == nil {
		v.tokID = make(map[string]int32)
	}
	id, ok := v.tokID[tok]
	if !ok {
		id = int32(len(v.tokID))
		v.tokID[tok] = id
	}
	return id
}

func (v *Vocab) tupleID(key [3]int32) int32 {
	if v.tok == nil {
		v.tok = make(map[[3]int32]int32)
	}
	id, ok := v.tok[key]
	if !ok {
		id = int32(v.size)
		v.tok[key] = id
		v.size++
	}
	return id
}

// Size returns the number of interned grams.
func (v *Vocab) Size() int { return v.size }

// fromKeys finalizes a graph from an edge-key sequence with possibly
// repeated keys; each occurrence counts one co-occurrence, so the
// weight of an edge is its run length after sorting.
func fromKeys(keys []uint64) *Graph {
	if len(keys) == 0 {
		return &Graph{}
	}
	slices.Sort(keys)
	g := &Graph{keys: keys[:0], ws: make([]float64, 0, len(keys))}
	for i := 0; i < len(keys); {
		j := i + 1
		for j < len(keys) && keys[j] == keys[i] {
			j++
		}
		k := keys[i]
		g.keys = append(g.keys, k)
		g.ws = append(g.ws, float64(j-i))
		i = j
	}
	return g
}

// FromValue builds the n-gram graph of a single textual value under the
// given mode: nodes are the value's n-grams and every pair of grams whose
// window distance is at most n is connected, with the edge weight counting
// co-occurrences.
func FromValue(vocab *Vocab, mode vector.Mode, value string) *Graph {
	return fromValueScratch(vocab, mode, value, nil).graph()
}

// valueScratch carries the reusable per-entity buffers of the FromValue
// hot path.
type valueScratch struct {
	ids  []int32
	tids []int32
	rs   []rune
	keys []uint64
}

func (s *valueScratch) graph() *Graph {
	return fromKeys(append([]uint64(nil), s.keys...))
}

// fromValueScratch extracts the value's gram ids into scratch without
// allocating gram strings where the mode allows it (char n <= 4, token
// n <= 3 — all of Modes()), then the co-occurrence edge keys. The gram
// id assignment matches the string path exactly (see Vocab).
func fromValueScratch(vocab *Vocab, mode vector.Mode, value string, s *valueScratch) *valueScratch {
	if s == nil {
		s = &valueScratch{}
	}
	s.ids = s.ids[:0]
	switch {
	case mode.Char && mode.N <= 4:
		s.rs = append(s.rs[:0], []rune(value)...)
		if len(s.rs) > 0 {
			key := [4]rune{noRune, noRune, noRune, noRune}
			if len(s.rs) <= mode.N {
				copy(key[:], s.rs)
				s.ids = append(s.ids, vocab.charID(key))
			} else {
				for i := 0; i+mode.N <= len(s.rs); i++ {
					copy(key[:], s.rs[i:i+mode.N])
					s.ids = append(s.ids, vocab.charID(key))
				}
			}
		}
	case !mode.Char && mode.N <= 3:
		toks := strsim.Tokenize(value)
		if len(toks) > 0 {
			s.tids = s.tids[:0]
			for _, tok := range toks {
				s.tids = append(s.tids, vocab.tokenID(tok))
			}
			key := [3]int32{-1, -1, -1}
			if len(s.tids) <= mode.N {
				copy(key[:], s.tids)
				s.ids = append(s.ids, vocab.tupleID(key))
			} else {
				for i := 0; i+mode.N <= len(s.tids); i++ {
					copy(key[:], s.tids[i:i+mode.N])
					s.ids = append(s.ids, vocab.tupleID(key))
				}
			}
		}
	default:
		var grams []string
		if mode.Char {
			grams = vector.CharNGrams(value, mode.N)
		} else {
			grams = vector.TokenNGrams(strsim.Tokenize(value), mode.N)
		}
		for _, gram := range grams {
			s.ids = append(s.ids, vocab.ID(gram))
		}
	}
	s.keys = s.keys[:0]
	for i := range s.ids {
		for d := 1; d <= mode.N && i+d < len(s.ids); d++ {
			if s.ids[i] == s.ids[i+d] {
				continue // no self loops
			}
			s.keys = append(s.keys, edgeKey(s.ids[i], s.ids[i+d]))
		}
	}
	return s
}

// Merge combines per-value graphs into a single entity graph using the
// update operator: the merged weight of an edge is the running average of
// its weights across the value graphs (treating absence as weight zero is
// deliberately not done — the operator averages over the graphs that
// contain the edge, following JInsect's incremental update with learning
// factor 1/i).
func Merge(graphs []*Graph) *Graph {
	live := graphs[:0:0]
	total := 0
	for _, g := range graphs {
		if g != nil && len(g.keys) > 0 {
			live = append(live, g)
			total += len(g.keys)
		}
	}
	if len(live) == 0 {
		return &Graph{}
	}
	if len(live) == 1 {
		return &Graph{keys: append([]uint64(nil), live[0].keys...),
			ws: append([]float64(nil), live[0].ws...)}
	}
	// Fold the (sorted) per-value graphs into a sorted accumulator in
	// graph order: each key carries its occurrence count, and a repeated
	// key updates the running average with the division sequence
	// w += (w_k - w)/k — exactly the fold the earlier sort-based merge
	// applied per key run, so the floats are bit-identical, without the
	// comparator sort over all triples.
	accK := append(make([]uint64, 0, total), live[0].keys...)
	accW := append(make([]float64, 0, total), live[0].ws...)
	accC := make([]int32, len(accK), total)
	for i := range accC {
		accC[i] = 1
	}
	nk := make([]uint64, 0, total)
	nw := make([]float64, 0, total)
	nc := make([]int32, 0, total)
	for _, g := range live[1:] {
		nk, nw, nc = nk[:0], nw[:0], nc[:0]
		i, j := 0, 0
		for i < len(accK) || j < len(g.keys) {
			switch {
			case j >= len(g.keys) || (i < len(accK) && accK[i] < g.keys[j]):
				nk = append(nk, accK[i])
				nw = append(nw, accW[i])
				nc = append(nc, accC[i])
				i++
			case i >= len(accK) || accK[i] > g.keys[j]:
				nk = append(nk, g.keys[j])
				nw = append(nw, g.ws[j])
				nc = append(nc, 1)
				j++
			default:
				c := accC[i] + 1
				nk = append(nk, accK[i])
				nw = append(nw, accW[i]+(g.ws[j]-accW[i])/float64(c))
				nc = append(nc, c)
				i++
				j++
			}
		}
		accK, nk = nk, accK
		accW, nw = nw, accW
		accC, nc = nc, accC
	}
	return &Graph{keys: accK, ws: accW}
}

// FromEntity builds the entity graph of a set of attribute values.
func FromEntity(vocab *Vocab, mode vector.Mode, values []string) *Graph {
	graphs := make([]*Graph, len(values))
	var scratch valueScratch
	for i, v := range values {
		graphs[i] = fromValueScratch(vocab, mode, v, &scratch).graph()
	}
	return Merge(graphs)
}

// common walks the sorted edge lists of both graphs in one merge join,
// returning the number of shared edges and the Σ min(w)/max(w) weight
// ratio over them. The ascending-key order makes the float summation
// canonical. Weights are strictly positive finite averages, so the
// branchy min/max selects the same operands math.Min/Max would (the
// NaN/±0 special cases cannot occur) and the ratio sum stays
// bit-identical while skipping the calls.
func common(a, b *Graph) (int, float64) {
	ak, bk := a.keys, b.keys
	aw, bw := a.ws, b.ws
	i, j, n := 0, 0, 0
	ratio := 0.0
	for i < len(ak) && j < len(bk) {
		switch {
		case ak[i] < bk[j]:
			i++
		case ak[i] > bk[j]:
			j++
		default:
			n++
			x, y := aw[i], bw[j]
			if x < y {
				ratio += x / y
			} else {
				ratio += y / x
			}
			i++
			j++
		}
	}
	return n, ratio
}

// Containment estimates the portion of common edges, ignoring weights:
// |Gi ∩ Gj| / min(|Gi|, |Gj|).
func Containment(a, b *Graph) float64 {
	if a.NumEdges() == 0 && b.NumEdges() == 0 {
		return 1
	}
	if a.NumEdges() == 0 || b.NumEdges() == 0 {
		return 0
	}
	n, _ := common(a, b)
	return float64(n) / float64(min2(a.NumEdges(), b.NumEdges()))
}

// Value extends containment with weights:
// Σ_{e∈Gi∩Gj} min(w)/max(w) / max(|Gi|,|Gj|).
func Value(a, b *Graph) float64 {
	if a.NumEdges() == 0 && b.NumEdges() == 0 {
		return 1
	}
	if a.NumEdges() == 0 || b.NumEdges() == 0 {
		return 0
	}
	_, ratio := common(a, b)
	return ratio / float64(max2(a.NumEdges(), b.NumEdges()))
}

// NormalizedValue mitigates size imbalance by dividing by the smaller
// graph: Σ_{e∈Gi∩Gj} min(w)/max(w) / min(|Gi|,|Gj|).
func NormalizedValue(a, b *Graph) float64 {
	if a.NumEdges() == 0 && b.NumEdges() == 0 {
		return 1
	}
	if a.NumEdges() == 0 || b.NumEdges() == 0 {
		return 0
	}
	_, ratio := common(a, b)
	return ratio / float64(min2(a.NumEdges(), b.NumEdges()))
}

// Overall is the average of containment, value and normalized value.
func Overall(a, b *Graph) float64 {
	return (Containment(a, b) + Value(a, b) + NormalizedValue(a, b)) / 3
}

// Measure names for graph models (Appendix B, category 3).
const (
	MeasureContainment     = "Containment"
	MeasureValue           = "Value"
	MeasureNormalizedValue = "NormalizedValue"
	MeasureOverall         = "Overall"
)

// Measures returns the four graph-model measure names in a stable order.
func Measures() []string {
	return []string{
		MeasureContainment, MeasureValue, MeasureNormalizedValue, MeasureOverall,
	}
}

// Sim computes the named graph similarity. It panics on an unknown
// measure name.
func Sim(measure string, a, b *Graph) float64 {
	switch measure {
	case MeasureContainment:
		return Containment(a, b)
	case MeasureValue:
		return Value(a, b)
	case MeasureNormalizedValue:
		return NormalizedValue(a, b)
	case MeasureOverall:
		return Overall(a, b)
	default:
		panic("ngraph: unknown measure " + measure)
	}
}

// AllSims computes all four graph measures in a single merge join over
// the sorted edge lists, returned in Measures() order: containment,
// value, normalized value, overall.
func AllSims(a, b *Graph) [4]float64 {
	if a.NumEdges() == 0 && b.NumEdges() == 0 {
		return [4]float64{1, 1, 1, 1}
	}
	if a.NumEdges() == 0 || b.NumEdges() == 0 {
		return [4]float64{}
	}
	n, ratio := common(a, b)
	small, large := a.NumEdges(), b.NumEdges()
	if small > large {
		small, large = large, small
	}
	cos := float64(n) / float64(small)
	vs := ratio / float64(large)
	ns := ratio / float64(small)
	return [4]float64{cos, vs, ns, (cos + vs + ns) / 3}
}

// GramIDs returns the sorted node ids of the graph's edges; used to build
// inverted indexes for candidate generation. The high halves of the
// sorted edge keys are already ascending, so only the low halves need a
// sort before the two deduplicated runs merge.
func (g *Graph) GramIDs() []int32 {
	if g.NumEdges() == 0 {
		return nil
	}
	his := make([]int32, 0, len(g.keys))
	los := make([]int32, 0, len(g.keys))
	for _, k := range g.keys {
		hi := int32(k >> 32)
		if len(his) == 0 || his[len(his)-1] != hi {
			his = append(his, hi)
		}
		los = append(los, int32(uint32(k)))
	}
	slices.Sort(los)
	lu := los[:1]
	for _, id := range los[1:] {
		if id != lu[len(lu)-1] {
			lu = append(lu, id)
		}
	}
	out := make([]int32, 0, len(his)+len(lu))
	i, j := 0, 0
	for i < len(his) || j < len(lu) {
		switch {
		case j >= len(lu) || (i < len(his) && his[i] < lu[j]):
			out = append(out, his[i])
			i++
		case i >= len(his) || his[i] > lu[j]:
			out = append(out, lu[j])
			j++
		default:
			out = append(out, his[i])
			i++
			j++
		}
	}
	return out
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
