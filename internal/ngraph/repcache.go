package ngraph

import (
	"github.com/ccer-go/ccer/internal/repcache"
	"github.com/ccer-go/ccer/internal/vector"
)

// EntityReps bundles the n-gram-graph representations of one
// Clean-Clean task under one mode: the per-entity merged graphs of both
// collections, their sorted gram-node id lists, and the CSR postings
// over collection 1's ids (the candidate index: a pair sharing no gram
// node shares no edge). Everything is immutable after construction and
// safe for concurrent readers.
type EntityReps struct {
	Graphs1, Graphs2 []*Graph
	IDs1, IDs2       [][]int32
	Post1Off         []int32
	Post1IDs         []int32
	VocabSize        int
}

// BuildEntityReps builds the representations from the per-entity value
// lists (dataset.Profile.Values order).
func BuildEntityReps(mode vector.Mode, values1, values2 [][]string) *EntityReps {
	vocab := NewVocab()
	r := &EntityReps{
		Graphs1: make([]*Graph, len(values1)),
		Graphs2: make([]*Graph, len(values2)),
		IDs1:    make([][]int32, len(values1)),
		IDs2:    make([][]int32, len(values2)),
	}
	for i, vals := range values1 {
		r.Graphs1[i] = FromEntity(vocab, mode, vals)
		r.IDs1[i] = r.Graphs1[i].GramIDs()
	}
	for j, vals := range values2 {
		r.Graphs2[j] = FromEntity(vocab, mode, vals)
		r.IDs2[j] = r.Graphs2[j].GramIDs()
	}
	r.VocabSize = vocab.Size()
	r.Post1Off, r.Post1IDs = vector.BuildPostings(r.IDs1, r.VocabSize)
	return r
}

// EntityCache is the cross-build n-gram-graph representation cache,
// keyed by content hash of the mode and both collections' value lists.
// A nil *EntityCache builds uncached.
type EntityCache struct {
	c *repcache.Cache[*EntityReps]
}

// NewEntityCache returns a cache bounded to maxEntries resident bundles.
func NewEntityCache(maxEntries int) *EntityCache {
	return &EntityCache{c: repcache.New[*EntityReps](maxEntries)}
}

// Get returns the representations of the task under the mode, building
// them on a miss.
func (c *EntityCache) Get(mode vector.Mode, values1, values2 [][]string) *EntityReps {
	if c == nil {
		return BuildEntityReps(mode, values1, values2)
	}
	h := repcache.NewHasher(0x96a9 ^ uint64(mode.N)<<16)
	if mode.Char {
		h.Uint64(1)
	} else {
		h.Uint64(2)
	}
	h.StringLists(values1)
	h.StringLists(values2)
	reps, _ := c.c.GetOrBuild(h.Key(), func() *EntityReps {
		return BuildEntityReps(mode, values1, values2)
	})
	return reps
}

// Stats returns cumulative hits, misses and evictions.
func (c *EntityCache) Stats() (hits, misses, evictions int64) {
	if c == nil {
		return 0, 0, 0
	}
	return c.c.Stats()
}

// Len returns the resident entry count.
func (c *EntityCache) Len() int {
	if c == nil {
		return 0
	}
	return c.c.Len()
}
