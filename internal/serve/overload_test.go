// Chaos/overload harness: a closed-loop load driver with fault-point
// latency/error injection that proves the resilience layer's promises —
// admitted requests succeed, shed requests say so machine-readably with
// a Retry-After, coalesced responses are byte-identical, queue depth and
// goroutine count stay bounded at any offered load, deadlines turn into
// 504s, and a degraded store keeps serving reads while refusing writes.
package serve_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/ccer-go/ccer/internal/durable/crashtest"
	"github.com/ccer-go/ccer/internal/resilience"
	"github.com/ccer-go/ccer/internal/serve"
)

// overloadMetrics is the slice of the JSON /metrics response the
// overload assertions read.
type overloadMetrics struct {
	AdmissionQueueDepth int              `json:"admission_queue_depth"`
	AdmissionInFlight   int              `json:"admission_inflight"`
	AdmittedTotal       int64            `json:"admitted_total"`
	ShedTotal           map[string]int64 `json:"shed_total"`
	CoalesceHitsTotal   int64            `json:"coalesce_hits_total"`
	RequestTimeoutTotal map[string]int64 `json:"request_timeout_total"`
}

func fetchOverloadMetrics(t *testing.T, base string) overloadMetrics {
	t.Helper()
	var m overloadMetrics
	if code := doJSON(t, http.MethodGet, base+"/metrics", nil, &m); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	return m
}

// postRaw fires one JSON POST and returns status, headers and the exact
// body bytes (the unit the byte-identity assertions compare).
func postRaw(url string, payload any) (int, http.Header, []byte, error) {
	raw, err := json.Marshal(payload)
	if err != nil {
		return 0, nil, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		return 0, nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header, body, err
}

// requireShedResponse asserts the 503 contract of satellite (b): a
// Retry-After header and a machine-readable reason from the known
// vocabulary.
func requireShedResponse(t *testing.T, hdr http.Header, body []byte, reasons ...string) {
	t.Helper()
	if hdr.Get("Retry-After") == "" {
		t.Errorf("503 without Retry-After header (body %s)", body)
	}
	var er struct {
		Error  string `json:"error"`
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(body, &er); err != nil {
		t.Errorf("unparseable 503 body %q: %v", body, err)
		return
	}
	for _, want := range reasons {
		if er.Reason == want {
			return
		}
	}
	t.Errorf("503 reason %q not in %v (error %q)", er.Reason, reasons, er.Error)
}

func percentileMS(durs []time.Duration, q float64) float64 {
	if len(durs) == 0 {
		return 0
	}
	idx := int(q * float64(len(durs)-1))
	return float64(durs[idx]) / float64(time.Millisecond)
}

// TestOverloadHarness is the acceptance test of the resilience tentpole.
// Phase A drives a stampede of identical match requests over three keys:
// coalescing must collapse them onto shared executions with byte-
// identical responses. Phase B drives unique-key requests at far more
// than the admission capacity: every response must be a success or a
// well-formed shed (never any other 5xx), with queue depth and goroutine
// count bounded throughout. The shed/coalesce/latency counters land in
// $OVERLOAD_REPORT when set (the CI artifact).
func TestOverloadHarness(t *testing.T) {
	faults := resilience.NewFaults()
	// Stretch every matching so queues and coalescing windows actually
	// form at test scale.
	faults.Set("match", 2*time.Millisecond, nil, -1)
	srv, ts := newTestServer(t, serve.Config{
		CacheSize:       -1, // every request computes: the resilience layer does the work
		AdmissionSlots:  2,
		AdmissionDepth:  4,
		AdmissionBudget: 100 * time.Millisecond,
		Faults:          faults,
	})
	_ = srv
	generateD2(t, ts.URL, "d2")

	matchURL := ts.URL + "/v1/match"
	type key struct {
		Alg string
		Thr float64
	}
	keys := []key{{"UMC", 0.5}, {"CNC", 0.5}, {"UMC", 0.35}}
	payloadOf := func(k key) map[string]any {
		return map[string]any{"graph": "d2", "algorithms": []string{k.Alg}, "threshold": k.Thr}
	}

	// Quiet-time reference bytes per key: deterministic matchings mean
	// every later response — coalesced or not — must equal these exactly.
	ref := make(map[key][]byte, len(keys))
	for _, k := range keys {
		status, _, body, err := postRaw(matchURL, payloadOf(k))
		if err != nil || status != http.StatusOK {
			t.Fatalf("reference match %v: status %d err %v", k, status, err)
		}
		ref[k] = body
	}

	const workers = 16
	baselineGoroutines := runtime.NumGoroutine()
	var maxDepth, maxGoroutines atomic.Int64
	sampleDone := make(chan struct{})
	var sampler sync.WaitGroup
	sampler.Add(1)
	go func() {
		defer sampler.Done()
		for {
			select {
			case <-sampleDone:
				return
			default:
			}
			m := fetchOverloadMetrics(t, ts.URL)
			if d := int64(m.AdmissionQueueDepth); d > maxDepth.Load() {
				maxDepth.Store(d)
			}
			if g := int64(runtime.NumGoroutine()); g > maxGoroutines.Load() {
				maxGoroutines.Store(g)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()

	// Phase A: identical keys — the coalescing stampede.
	var (
		mu        sync.Mutex
		latencies []time.Duration
		served    atomic.Int64
		shedCount atomic.Int64
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < 25; r++ {
				k := keys[(w+r)%len(keys)]
				t0 := time.Now()
				status, hdr, body, err := postRaw(matchURL, payloadOf(k))
				d := time.Since(t0)
				if err != nil {
					t.Errorf("phase A request: %v", err)
					return
				}
				mu.Lock()
				latencies = append(latencies, d)
				mu.Unlock()
				switch status {
				case http.StatusOK:
					served.Add(1)
					if !bytes.Equal(body, ref[k]) {
						t.Errorf("coalesced response for %v differs from the quiet-time reference", k)
					}
				case http.StatusServiceUnavailable:
					shedCount.Add(1)
					requireShedResponse(t, hdr, body,
						resilience.ReasonQueueFull, resilience.ReasonQueueTimeout)
				default:
					t.Errorf("phase A status %d (body %s)", status, body)
				}
			}
		}(w)
	}
	wg.Wait()
	afterA := fetchOverloadMetrics(t, ts.URL)
	if afterA.CoalesceHitsTotal == 0 {
		t.Error("identical-key stampede produced zero coalesce hits")
	}
	if served.Load() == 0 {
		t.Fatal("phase A served nothing")
	}

	// Phase B: unique keys — nothing coalesces, so offered load lands on
	// the admission queue directly. Slow the fault point further to make
	// overload certain, then require sheds to appear.
	faults.Set("match", 20*time.Millisecond, nil, -1)
	deadline := time.Now().Add(20 * time.Second)
	round := 0
	for {
		round++
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for r := 0; r < 5; r++ {
					// A unique threshold per request: no two flights share.
					thr := 0.1 + float64(w)*0.01 + float64(r)*0.001 + float64(round)*0.0001
					status, hdr, body, err := postRaw(matchURL, map[string]any{
						"graph": "d2", "algorithms": []string{"UMC"}, "threshold": thr,
					})
					if err != nil {
						t.Errorf("phase B request: %v", err)
						return
					}
					switch status {
					case http.StatusOK:
						served.Add(1)
					case http.StatusServiceUnavailable:
						shedCount.Add(1)
						requireShedResponse(t, hdr, body,
							resilience.ReasonQueueFull, resilience.ReasonQueueTimeout)
					default:
						t.Errorf("phase B status %d (body %s)", status, body)
					}
				}
			}(w)
		}
		wg.Wait()
		if shedCount.Load() > 0 || time.Now().After(deadline) {
			break
		}
	}
	close(sampleDone)
	sampler.Wait()

	if shedCount.Load() == 0 {
		t.Error("overload phase never shed: admission control is not biting")
	}
	// Queue depth must respect the configured bound (4 per priority
	// class, two classes).
	if d := maxDepth.Load(); d > 8 {
		t.Errorf("admission queue depth reached %d, above the configured bound", d)
	}
	// Goroutines must scale with workers, not with total requests
	// (thousands were processed).
	if g := maxGoroutines.Load(); g > int64(baselineGoroutines)+150 {
		t.Errorf("goroutines reached %d from a baseline of %d: per-request goroutine growth", g, baselineGoroutines)
	}

	final := fetchOverloadMetrics(t, ts.URL)
	var totalSheds int64
	for _, v := range final.ShedTotal {
		totalSheds += v
	}
	if totalSheds == 0 {
		t.Error("shed_total is zero after the overload phase")
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	report := map[string]any{
		"served":              served.Load(),
		"shed":                shedCount.Load(),
		"shed_total":          final.ShedTotal,
		"coalesce_hits_total": final.CoalesceHitsTotal,
		"admitted_total":      final.AdmittedTotal,
		"max_queue_depth":     maxDepth.Load(),
		"max_goroutines":      maxGoroutines.Load(),
		"p50_ms":              percentileMS(latencies, 0.50),
		"p95_ms":              percentileMS(latencies, 0.95),
		"p99_ms":              percentileMS(latencies, 0.99),
	}
	t.Logf("overload report: %+v", report)
	if path := os.Getenv("OVERLOAD_REPORT"); path != "" {
		raw, _ := json.MarshalIndent(report, "", "  ")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Errorf("write overload report: %v", err)
		}
	}
}

// TestMatchDeadline504: a matching that outruns MatchTimeout answers 504
// with reason "deadline", the per-route timeout counter advances in both
// /metrics views, and the abandoned flight is torn down (the goroutine
// check in newTestServer's cleanup would catch a leak).
func TestMatchDeadline504(t *testing.T) {
	faults := resilience.NewFaults()
	faults.Set("match", 300*time.Millisecond, nil, -1)
	_, ts := newTestServer(t, serve.Config{
		MatchTimeout: 25 * time.Millisecond,
		Faults:       faults,
	})
	generateD2(t, ts.URL, "d2")

	status, _, body, err := postRaw(ts.URL+"/v1/match", map[string]any{
		"graph": "d2", "algorithms": []string{"UMC"}, "threshold": 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusGatewayTimeout {
		t.Fatalf("overrunning match: status %d (body %s), want 504", status, body)
	}
	var er struct {
		Error  string `json:"error"`
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("504 body %q: %v", body, err)
	}
	if er.Reason != "deadline" {
		t.Fatalf("504 reason = %q, want deadline", er.Reason)
	}

	m := fetchOverloadMetrics(t, ts.URL)
	if m.RequestTimeoutTotal["POST /v1/match"] < 1 {
		t.Fatalf("request_timeout_total = %v, want POST /v1/match counted", m.RequestTimeoutTotal)
	}
	scrape := scrapeProm(t, ts.URL)
	fam := scrape.Families["ccer_request_timeout_total"]
	if fam == nil || len(fam.Samples) == 0 {
		t.Fatal("ccer_request_timeout_total missing from the Prometheus view after a 504")
	}
}

// TestDegradedModeMutationsFastFail: once the durable log latches
// failed, mutations shed up front (503, reason degraded, Retry-After)
// without burning compute, while reads and match computations keep
// serving — the serving half of the crash-safety story.
func TestDegradedModeMutationsFastFail(t *testing.T) {
	mem := crashtest.NewMemFS()
	faulty := crashtest.NewFaultFS(mem)
	_, ts := newTestServer(t, serve.Config{DataDir: "data", DataFS: faulty, JobWorkers: 1})
	generateD2(t, ts.URL, "d2")

	// Latch the failure: the put that trips the fsync fault is refused
	// with 500 and poisons the log.
	faulty.Inject(crashtest.Fault{Point: "sync:wal"})
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/graphs", map[string]any{
		"name": "lost", "dataset": "D2", "seed": 7, "scale": 0.02,
	}, nil); code != http.StatusInternalServerError {
		t.Fatalf("latching put: status %d, want 500", code)
	}

	// Mutations now fast-fail with the shed contract.
	status, hdr, body, err := postRaw(ts.URL+"/v1/graphs", map[string]any{
		"name": "more", "dataset": "D2", "seed": 8, "scale": 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusServiceUnavailable {
		t.Fatalf("degraded generate: status %d, want 503", status)
	}
	requireShedResponse(t, hdr, body, resilience.ReasonDegraded)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/graphs/d2", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	delBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded delete: status %d, want 503", resp.StatusCode)
	}
	requireShedResponse(t, resp.Header, delBody, resilience.ReasonDegraded)

	// Reads and cached/computed matches keep serving.
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/graphs/d2", nil, nil); code != http.StatusOK {
		t.Fatalf("degraded read: status %d, want 200", code)
	}
	var mr matchRespJSON
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/match", map[string]any{
		"graph": "d2", "algorithms": []string{"UMC"}, "threshold": 0.5,
	}, &mr); code != http.StatusOK {
		t.Fatalf("degraded match: status %d, want 200", code)
	}
	if len(mr.Results) != 1 || len(mr.Results[0].Pairs) == 0 {
		t.Fatalf("degraded match results = %+v", mr.Results)
	}

	m := fetchOverloadMetrics(t, ts.URL)
	if m.ShedTotal[resilience.ReasonDegraded] < 2 {
		t.Fatalf("shed_total = %v, want degraded >= 2", m.ShedTotal)
	}
}

// TestGenerateCoalescing: concurrent identical generation requests share
// one execution — one stored version, byte-identical 201 replies for
// every caller.
func TestGenerateCoalescing(t *testing.T) {
	faults := resilience.NewFaults()
	// Stretch the generation so every concurrent caller lands inside the
	// flight's window.
	faults.Set("generate", 400*time.Millisecond, nil, -1)
	_, ts := newTestServer(t, serve.Config{Faults: faults})

	const n = 6
	payload := map[string]any{"name": "g", "dataset": "D2", "seed": 5, "scale": 0.02}
	statuses := make([]int, n)
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, _, body, err := postRaw(ts.URL+"/v1/graphs", payload)
			if err != nil {
				t.Errorf("generate %d: %v", i, err)
				return
			}
			statuses[i], bodies[i] = status, body
		}(i)
	}
	wg.Wait()

	for i := 0; i < n; i++ {
		if statuses[i] != http.StatusCreated {
			t.Fatalf("caller %d: status %d (body %s)", i, statuses[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("caller %d body differs from caller 0:\n%s\nvs\n%s", i, bodies[i], bodies[0])
		}
	}
	// One execution means one store commit: the graph is at version 1.
	var info graphInfoJSON
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/graphs/g", nil, &info); code != http.StatusOK {
		t.Fatalf("get g: status %d", code)
	}
	if info.Version != 1 {
		t.Fatalf("graph version %d after coalesced generation, want 1 (single Put)", info.Version)
	}
	m := fetchOverloadMetrics(t, ts.URL)
	if m.CoalesceHitsTotal < 1 {
		t.Fatalf("coalesce_hits_total = %d, want >= 1", m.CoalesceHitsTotal)
	}
}

// TestInjectedComputeErrorDoesNotPoisonServer: an error-injecting fault
// fails the request it hits, and nothing else — no cached poison, no
// wedged flight; the identical retry succeeds.
func TestInjectedComputeErrorDoesNotPoisonServer(t *testing.T) {
	faults := resilience.NewFaults()
	boom := errors.New("injected chaos")
	faults.Set("match", 0, boom, 1)
	_, ts := newTestServer(t, serve.Config{Faults: faults})
	generateD2(t, ts.URL, "d2")

	payload := map[string]any{"graph": "d2", "algorithms": []string{"UMC"}, "threshold": 0.5}
	status, _, body, err := postRaw(ts.URL+"/v1/match", payload)
	if err != nil {
		t.Fatal(err)
	}
	if status < 400 || status >= 500 && status != http.StatusServiceUnavailable {
		t.Fatalf("fault-hit match: status %d (body %s), want a clean client-visible error", status, body)
	}

	var mr matchRespJSON
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/match", payload, &mr); code != http.StatusOK {
		t.Fatalf("retry after exhausted fault: status %d", code)
	}
	if len(mr.Results) != 1 || len(mr.Results[0].Pairs) == 0 {
		t.Fatalf("retry results = %+v", mr.Results)
	}
	if faults.Hits("match") != 1 {
		t.Fatalf("fault hits = %d, want 1", faults.Hits("match"))
	}
}
