package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"github.com/ccer-go/ccer/internal/eval"
)

// JobState is the lifecycle state of an async sweep job.
type JobState string

// Job lifecycle: queued -> running -> done | failed | cancelled.
// Cancellation can also strike while still queued.
const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// ErrQueueFull is returned by Submit when the job backlog is at capacity.
var ErrQueueFull = errors.New("serve: job queue full")

// ErrClosed is returned by Submit after the queue began shutting down.
var ErrClosed = errors.New("serve: job queue closed")

// SweepJob is one asynchronous threshold-sweep request. Mutable fields
// are guarded by the owning JobQueue's mutex; handlers read them through
// Get/List snapshots only.
type SweepJob struct {
	ID           string
	Graph        string
	GraphVersion int64
	Algorithms   []string
	Repeats      int
	Seed         int64

	State    JobState
	Error    string
	Results  []eval.SweepResult
	Created  time.Time
	Started  time.Time
	Finished time.Time

	ctx    context.Context
	cancel context.CancelFunc
}

// JobView is an immutable snapshot of a SweepJob for rendering.
type JobView struct {
	ID           string
	Graph        string
	GraphVersion int64
	Algorithms   []string
	Repeats      int
	Seed         int64
	State        JobState
	Error        string
	Results      []eval.SweepResult
	Created      time.Time
	Started      time.Time
	Finished     time.Time
}

// JobCounts aggregates job states for /metrics.
type JobCounts struct {
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
}

// Live returns the number of jobs not yet in a terminal state.
func (c JobCounts) Live() int { return c.Queued + c.Running }

// runFunc executes one job; ctx is cancelled by job cancellation and by
// queue shutdown.
type runFunc func(ctx context.Context, job *SweepJob) ([]eval.SweepResult, error)

// JobQueue runs sweep jobs on a fixed pool of worker goroutines with a
// bounded backlog. Every job gets a context derived from the queue's
// base context, so Close cancels queued and in-flight work in one step.
// Terminal jobs are retained for polling up to a history cap; the
// oldest ones are evicted beyond it, keeping the resident service's
// memory bounded.
type JobQueue struct {
	mu      sync.Mutex
	jobs    map[string]*SweepJob
	order   []string
	nextID  int64
	closed  bool
	history int

	backlog chan *SweepJob
	base    context.Context
	stop    context.CancelFunc
	wg      sync.WaitGroup
	run     runFunc
}

// NewJobQueue starts workers goroutines draining a backlog of up to
// depth queued jobs, executing each with run. history caps how many
// terminal (done/failed/cancelled) jobs stay retrievable; older ones
// are evicted oldest-first (negative retains none).
func NewJobQueue(workers, depth, history int, run runFunc) *JobQueue {
	if history < 0 {
		history = 0
	}
	base, stop := context.WithCancel(context.Background())
	q := &JobQueue{
		jobs:    make(map[string]*SweepJob),
		history: history,
		backlog: make(chan *SweepJob, depth),
		base:    base,
		stop:    stop,
		run:     run,
	}
	for i := 0; i < workers; i++ {
		q.wg.Add(1)
		go q.worker()
	}
	return q
}

// Submit enqueues the job, assigning its id ("sweep-1", "sweep-2", ...)
// and timestamps. It fails fast with ErrQueueFull when the backlog is at
// capacity rather than blocking an HTTP handler. The backlog send stays
// inside the critical section (it is non-blocking, so it cannot deadlock
// against the workers): reserving the slot and registering the job
// atomically keeps q.order and q.jobs consistent under concurrent
// Submits.
func (q *JobQueue) Submit(job *SweepJob) (*SweepJob, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return nil, ErrClosed
	}
	job.State = JobQueued
	job.ctx, job.cancel = context.WithCancel(q.base)
	select {
	case q.backlog <- job:
	default:
		job.cancel()
		return nil, ErrQueueFull
	}
	// A worker that already received the job blocks on q.mu in runJob
	// until we return, so the registration below is ordered before it.
	q.nextID++
	job.ID = fmt.Sprintf("sweep-%d", q.nextID)
	job.Created = time.Now()
	q.jobs[job.ID] = job
	q.order = append(q.order, job.ID)
	return job, nil
}

// Get returns a snapshot of the identified job.
func (q *JobQueue) Get(id string) (JobView, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	job, ok := q.jobs[id]
	if !ok {
		return JobView{}, false
	}
	return q.viewLocked(job), true
}

// List returns snapshots of all jobs in submission order.
func (q *JobQueue) List() []JobView {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]JobView, 0, len(q.order))
	for _, id := range q.order {
		out = append(out, q.viewLocked(q.jobs[id]))
	}
	return out
}

// Counts tallies job states.
func (q *JobQueue) Counts() JobCounts {
	q.mu.Lock()
	defer q.mu.Unlock()
	var c JobCounts
	for _, job := range q.jobs {
		switch job.State {
		case JobQueued:
			c.Queued++
		case JobRunning:
			c.Running++
		case JobDone:
			c.Done++
		case JobFailed:
			c.Failed++
		case JobCancelled:
			c.Cancelled++
		}
	}
	return c
}

// Cancel requests cancellation of the identified job. A queued job flips
// to cancelled immediately; a running job's context is cancelled and the
// worker marks it once its in-flight Match call returns. Terminal jobs
// are left untouched (reported as ok: the cancellation is already moot).
func (q *JobQueue) Cancel(id string) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	job, ok := q.jobs[id]
	if !ok {
		return false
	}
	switch job.State {
	case JobQueued:
		q.finishLocked(job, JobCancelled, context.Canceled.Error())
	case JobRunning:
		job.cancel()
	}
	return true
}

// Close stops accepting jobs, cancels every queued and running job, and
// waits for the workers to drain, up to ctx's deadline.
func (q *JobQueue) Close(ctx context.Context) error {
	q.mu.Lock()
	if !q.closed {
		q.closed = true
		q.stop() // cancels q.base and with it every job context
		// finishLocked prunes history, mutating q.order; iterate a copy.
		for _, id := range append([]string(nil), q.order...) {
			if job, ok := q.jobs[id]; ok && job.State == JobQueued {
				q.finishLocked(job, JobCancelled, "server shutting down")
			}
		}
	}
	q.mu.Unlock()

	done := make(chan struct{})
	go func() {
		q.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: job drain: %w", ctx.Err())
	}
}

func (q *JobQueue) worker() {
	defer q.wg.Done()
	for {
		select {
		case <-q.base.Done():
			return
		case job := <-q.backlog:
			q.runJob(job)
		}
	}
}

func (q *JobQueue) runJob(job *SweepJob) {
	q.mu.Lock()
	if job.State != JobQueued { // cancelled while still in the backlog
		q.mu.Unlock()
		return
	}
	job.State = JobRunning
	job.Started = time.Now()
	ctx := job.ctx
	q.mu.Unlock()

	results, err := q.run(ctx, job)

	q.mu.Lock()
	defer q.mu.Unlock()
	switch {
	case ctx.Err() != nil:
		// Partial sweep results are meaningless; drop them.
		q.finishLocked(job, JobCancelled, ctx.Err().Error())
	case err != nil:
		q.finishLocked(job, JobFailed, err.Error())
	default:
		job.Results = results
		q.finishLocked(job, JobDone, "")
	}
}

// finishLocked moves the job to a terminal state and prunes history.
// Callers hold q.mu.
func (q *JobQueue) finishLocked(job *SweepJob, state JobState, errMsg string) {
	job.State = state
	job.Error = errMsg
	job.Finished = time.Now()
	job.cancel()
	q.pruneLocked()
}

func isTerminal(s JobState) bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// pruneLocked evicts the oldest terminal jobs beyond the history cap.
// Callers hold q.mu.
func (q *JobQueue) pruneLocked() {
	terminal := 0
	for _, id := range q.order {
		if isTerminal(q.jobs[id].State) {
			terminal++
		}
	}
	if terminal <= q.history {
		return
	}
	keep := q.order[:0]
	for _, id := range q.order {
		if terminal > q.history && isTerminal(q.jobs[id].State) {
			delete(q.jobs, id)
			terminal--
			continue
		}
		keep = append(keep, id)
	}
	q.order = keep
}

func (q *JobQueue) viewLocked(job *SweepJob) JobView {
	return JobView{
		ID:           job.ID,
		Graph:        job.Graph,
		GraphVersion: job.GraphVersion,
		Algorithms:   append([]string(nil), job.Algorithms...),
		Repeats:      job.Repeats,
		Seed:         job.Seed,
		State:        job.State,
		Error:        job.Error,
		Results:      job.Results,
		Created:      job.Created,
		Started:      job.Started,
		Finished:     job.Finished,
	}
}
