package serve_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"github.com/ccer-go/ccer/internal/durable/crashtest"
	"github.com/ccer-go/ccer/internal/serve"
)

// durableMetricsJSON picks out the durability and cache counters of
// /metrics that the integration tests below assert on.
type durableMetricsJSON struct {
	GraphsStored          int   `json:"graphs_stored"`
	CacheSize             int   `json:"cache_size"`
	CacheEvictionsTotal   int64 `json:"cache_evictions_total"`
	JournalRecordsTotal   int64 `json:"journal_records_total"`
	RecoveryNS            int64 `json:"recovery_ns"`
	SnapshotBytes         int64 `json:"snapshot_bytes"`
	CompactionsTotal      int64 `json:"compactions_total"`
	RepCacheReloadedTotal int64 `json:"repcache_reloaded_total"`
}

// startDurable opens a server over the given FS without registering any
// cleanup, so tests can close and reopen it mid-test.
func startDurable(t *testing.T, fs *crashtest.MemFS) (*serve.Server, *httptest.Server) {
	t.Helper()
	srv, err := serve.New(serve.Config{
		DataDir:          "data",
		DataFS:           fs,
		JobWorkers:       1,
		RepCacheDatasets: 2,
	})
	if err != nil {
		t.Fatalf("open durable server: %v", err)
	}
	return srv, httptest.NewServer(srv.Handler())
}

func closeServer(t *testing.T, srv *serve.Server, ts *httptest.Server) {
	t.Helper()
	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatalf("server close: %v", err)
	}
}

// TestDurableRestartPreservesGraphs drives the full service loop through
// the durable store: generate (single and family mode), delete, restart
// on the same filesystem, and require the surviving state — names,
// versions, checksums, ground truth — to come back identically, with the
// representation cache rewarmed from its spill files.
func TestDurableRestartPreservesGraphs(t *testing.T) {
	mem := crashtest.NewMemFS()
	srv, ts := startDurable(t, mem)

	single := generateD2(t, ts.URL, "keep")
	doomed := generateD2(t, ts.URL, "doomed")
	var fam struct {
		Graphs []graphInfoJSON `json:"graphs"`
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/graphs", map[string]any{
		"name": "fam", "dataset": "D2", "seed": 7, "scale": 0.02, "family": "SB-SYN",
	}, &fam); code != http.StatusCreated {
		t.Fatalf("family generate: status %d", code)
	}
	if len(fam.Graphs) == 0 {
		t.Fatal("family generate stored no graphs")
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/graphs/"+doomed.Name, nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	want := map[string]graphInfoJSON{single.Name: single}
	for _, g := range fam.Graphs {
		want[g.Name] = g
	}
	g1 := fetchGraph(t, ts.URL, single.Name)
	var m0 durableMetricsJSON
	doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &m0)
	if m0.JournalRecordsTotal <= 0 {
		t.Fatalf("journal_records_total = %d after mutations, want > 0", m0.JournalRecordsTotal)
	}
	closeServer(t, srv, ts)

	srv2, ts2 := startDurable(t, mem)
	defer closeServer(t, srv2, ts2)

	var list struct {
		Graphs []graphInfoJSON `json:"graphs"`
	}
	doJSON(t, http.MethodGet, ts2.URL+"/v1/graphs", nil, &list)
	if len(list.Graphs) != len(want) {
		t.Fatalf("recovered %d graphs, want %d", len(list.Graphs), len(want))
	}
	for _, g := range list.Graphs {
		w, ok := want[g.Name]
		if !ok {
			t.Fatalf("recovered unexpected graph %q (deleted graph resurrected?)", g.Name)
		}
		if g.Checksum != w.Checksum || g.Version != w.Version {
			t.Fatalf("graph %q recovered as v%d/%s, want v%d/%s",
				g.Name, g.Version, g.Checksum, w.Version, w.Checksum)
		}
		if g.HasGroundTruth != w.HasGroundTruth {
			t.Fatalf("graph %q ground truth lost across restart", g.Name)
		}
	}
	// Byte-identical content, not just matching metadata.
	g2 := fetchGraph(t, ts2.URL, single.Name)
	if g1.Checksum() != g2.Checksum() {
		t.Fatalf("edge list changed across restart: %016x != %016x", g1.Checksum(), g2.Checksum())
	}
	// Matching the recovered graph still evaluates against ground truth.
	var mr matchRespJSON
	if code := doJSON(t, http.MethodPost, ts2.URL+"/v1/match", map[string]any{
		"graph": single.Name, "algorithms": []string{"CNC"},
	}, &mr); code != http.StatusOK {
		t.Fatalf("match on recovered graph: status %d", code)
	}
	if len(mr.Results) != 1 || mr.Results[0].Metrics == nil {
		t.Fatalf("recovered graph lost its ground truth: %+v", mr.Results)
	}

	var m durableMetricsJSON
	doJSON(t, http.MethodGet, ts2.URL+"/metrics", nil, &m)
	if m.RecoveryNS <= 0 {
		t.Fatalf("recovery_ns = %d, want > 0", m.RecoveryNS)
	}
	// Clean shutdown compacts the journal into the manifest, so the new
	// instance starts with zero journal records; the snapshot carries
	// the state instead.
	if m.SnapshotBytes <= 0 {
		t.Fatalf("snapshot_bytes = %d after recovery, want > 0", m.SnapshotBytes)
	}
	if m.RepCacheReloadedTotal < 1 {
		t.Fatalf("repcache_reloaded_total = %d after family generation + restart, want >= 1", m.RepCacheReloadedTotal)
	}
}

// TestDeleteEvictsCachedMatchings is the regression test for DELETE
// /v1/graphs/{name} leaving result-cache entries pinned: deleting a
// graph must eagerly drop its cached matchings, visible as cache_size
// falling back to zero on /metrics.
func TestDeleteEvictsCachedMatchings(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	info := generateD2(t, ts.URL, "g")

	var mr matchRespJSON
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/match", map[string]any{
		"graph": "g", "algorithms": []string{"CNC", "RSR"},
	}, &mr); code != http.StatusOK {
		t.Fatalf("match: status %d", code)
	}
	var before durableMetricsJSON
	doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &before)
	if before.CacheSize < 2 {
		t.Fatalf("cache_size = %d after matching 2 algorithms, want >= 2", before.CacheSize)
	}

	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/graphs/"+info.Name, nil, nil); code != http.StatusOK {
		t.Fatalf("delete: status %d", code)
	}
	var after durableMetricsJSON
	doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &after)
	if after.CacheSize != 0 {
		t.Fatalf("cache_size = %d after deleting the only graph, want 0 (entries pinned)", after.CacheSize)
	}
	if after.CacheEvictionsTotal <= before.CacheEvictionsTotal {
		t.Fatalf("cache_evictions_total did not grow on delete: %d -> %d",
			before.CacheEvictionsTotal, after.CacheEvictionsTotal)
	}
}
