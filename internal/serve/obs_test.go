// Observability tests: the Prometheus exposition (structure, coverage,
// monotonicity across scrapes), the per-algorithm match histograms, the
// trace endpoint, content negotiation on /metrics, the degraded health
// check, and the instrumentation-overhead benchmarks the CI job records.
package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/ccer-go/ccer"
	"github.com/ccer-go/ccer/internal/durable"
	"github.com/ccer-go/ccer/internal/durable/crashtest"
	"github.com/ccer-go/ccer/internal/obs"
	"github.com/ccer-go/ccer/internal/obs/promtest"
	"github.com/ccer-go/ccer/internal/serve"
)

// scrapeProm pulls /metrics in the Prometheus exposition format and runs
// it through the validating parser, so every test that scrapes also
// checks that each line parses and no family or series repeats.
func scrapeProm(t *testing.T, base string) *promtest.Scrape {
	t.Helper()
	resp, err := http.Get(base + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("prometheus scrape: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("prometheus scrape content type = %q, want %q", ct, obs.ContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	s, err := promtest.Parse(string(raw))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\npayload:\n%s", err, raw)
	}
	return s
}

// TestPrometheusScrape is the exposition acceptance test: after a
// generate + match workload on a durable server, the Prometheus view
// must parse cleanly, cover every counter the JSON /metrics reports,
// include the four required latency histograms, and stay monotonic
// between two scrapes.
func TestPrometheusScrape(t *testing.T) {
	mem := crashtest.NewMemFS()
	srv, ts := startDurable(t, mem)
	defer closeServer(t, srv, ts)
	generateD2(t, ts.URL, "d2")
	var mresp matchRespJSON
	doJSON(t, http.MethodPost, ts.URL+"/v1/match", map[string]any{
		"graph": "d2", "algorithms": []string{"UMC"}, "threshold": 0.5,
	}, &mresp)

	first := scrapeProm(t, ts.URL)

	// Every counter of the JSON /metrics response, plus the new
	// histograms, must be present under its ccer_ name.
	wantType := map[string]string{
		"ccer_requests_total":               "counter",
		"ccer_errors_total":                 "counter",
		"ccer_graphs_created_total":         "counter",
		"ccer_match_requests_total":         "counter",
		"ccer_matchings_run_total":          "counter",
		"ccer_uptime_seconds":               "gauge",
		"ccer_graphs_stored":                "gauge",
		"ccer_cache_hits_total":             "counter",
		"ccer_cache_misses_total":           "counter",
		"ccer_cache_evictions_total":        "counter",
		"ccer_jobs_queued":                  "gauge",
		"ccer_jobs_done_total":              "counter",
		"ccer_repcache_hits_total":          "counter",
		"ccer_journal_records_total":        "counter",
		"ccer_recovery_seconds":             "gauge",
		"ccer_snapshot_bytes":               "gauge",
		"ccer_generate_ns_total":            "counter",
		"ccer_generates_total":              "counter",
		"ccer_http_request_seconds":         "histogram",
		"ccer_match_seconds":                "histogram",
		"ccer_generate_seconds":             "histogram",
		"ccer_journal_fsync_seconds":        "histogram",
		"ccer_snapshot_write_seconds":       "histogram",
		"ccer_http_requests_by_class_total": "counter",
		"ccer_admission_queue_depth":        "gauge",
		"ccer_admission_inflight":           "gauge",
		"ccer_admitted_total":               "counter",
		"ccer_shed_total":                   "counter",
		"ccer_coalesce_hits_total":          "counter",
	}
	for name, typ := range wantType {
		fam := first.Families[name]
		if fam == nil {
			t.Errorf("family %s missing from exposition", name)
			continue
		}
		if fam.Type != typ {
			t.Errorf("family %s is %s, want %s", name, fam.Type, typ)
		}
		if len(fam.Samples) == 0 {
			t.Errorf("family %s has no samples", name)
		}
	}

	// The workload above must have landed in the required histograms.
	for _, name := range []string{
		"ccer_http_request_seconds", "ccer_match_seconds",
		"ccer_generate_seconds", "ccer_journal_fsync_seconds",
	} {
		if histCount(first, name) == 0 {
			t.Errorf("%s observed nothing after generate+match", name)
		}
	}

	// More traffic, then a second scrape: counters must not go back.
	generateD2(t, ts.URL, "d2b")
	doJSON(t, http.MethodPost, ts.URL+"/v1/match", map[string]any{
		"graph": "d2", "algorithms": []string{"CNC"}, "threshold": 0.5,
	}, &mresp)
	second := scrapeProm(t, ts.URL)
	if err := promtest.CheckMonotonic(first, second); err != nil {
		t.Fatal(err)
	}
	if a, b := counterValue(first, "ccer_requests_total"), counterValue(second, "ccer_requests_total"); b <= a {
		t.Fatalf("ccer_requests_total did not advance: %g -> %g", a, b)
	}
}

// histCount sums the _count samples of a histogram family.
func histCount(s *promtest.Scrape, family string) float64 {
	fam := s.Families[family]
	if fam == nil {
		return 0
	}
	var total float64
	for _, smp := range fam.Samples {
		if strings.HasSuffix(smp.Name, "_count") {
			total += smp.Value
		}
	}
	return total
}

// counterValue sums a counter family's samples across label sets.
func counterValue(s *promtest.Scrape, family string) float64 {
	fam := s.Families[family]
	if fam == nil {
		return 0
	}
	var total float64
	for _, smp := range fam.Samples {
		total += smp.Value
	}
	return total
}

// TestMatchHistogramsAllAlgorithms runs one batch over every algorithm
// and requires ccer_match_seconds to carry one observed series per
// algorithm label.
func TestMatchHistogramsAllAlgorithms(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	generateD2(t, ts.URL, "d2")
	var resp matchRespJSON
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/match", map[string]any{
		"graph": "d2", "algorithms": ccer.Algorithms(), "threshold": 0.5,
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("match: status %d", code)
	}

	scrape := scrapeProm(t, ts.URL)
	fam := scrape.Families["ccer_match_seconds"]
	if fam == nil {
		t.Fatal("ccer_match_seconds missing")
	}
	counts := map[string]float64{}
	for _, smp := range fam.Samples {
		if !strings.HasSuffix(smp.Name, "_count") {
			continue
		}
		for _, pair := range strings.Split(smp.Labels, ",") {
			if v, ok := strings.CutPrefix(pair, `algorithm="`); ok {
				counts[strings.TrimSuffix(v, `"`)] = smp.Value
			}
		}
	}
	for _, alg := range ccer.Algorithms() {
		if counts[alg] < 1 {
			t.Errorf("algorithm %s: match histogram count = %g, want >= 1", alg, counts[alg])
		}
	}
	if len(counts) != len(ccer.Algorithms()) {
		t.Errorf("got %d algorithm series %v, want %d", len(counts), counts, len(ccer.Algorithms()))
	}
}

// TestMetricsContentNegotiation: the default stays JSON (backward
// compatible), ?format=prometheus and Accept: text/plain switch to the
// exposition format, and ?format=json wins over the Accept header.
func TestMetricsContentNegotiation(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})

	get := func(url, accept string) (string, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.Header.Get("Content-Type"), string(raw)
	}

	if ct, body := get(ts.URL+"/metrics", ""); !strings.Contains(ct, "application/json") || !strings.Contains(body, `"requests_total"`) {
		t.Fatalf("default /metrics: content type %q, body %q", ct, body[:min(len(body), 80)])
	}
	if ct, body := get(ts.URL+"/metrics?format=prometheus", ""); ct != obs.ContentType || !strings.Contains(body, "# TYPE ccer_requests_total counter") {
		t.Fatalf("?format=prometheus: content type %q", ct)
	}
	if ct, _ := get(ts.URL+"/metrics", "text/plain"); ct != obs.ContentType {
		t.Fatalf("Accept: text/plain negotiated %q, want exposition", ct)
	}
	if ct, _ := get(ts.URL+"/metrics?format=json", "text/plain"); !strings.Contains(ct, "application/json") {
		t.Fatalf("?format=json must override Accept, got %q", ct)
	}
}

// TestHealthzDegraded: a latched journal failure (sticky ErrLogFailed)
// flips /healthz from 200 ok to 503 degraded while reads keep working.
func TestHealthzDegraded(t *testing.T) {
	mem := crashtest.NewMemFS()
	faulty := crashtest.NewFaultFS(mem)
	srv, err := serve.New(serve.Config{DataDir: "data", DataFS: faulty, JobWorkers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer closeServer(t, srv, ts)
	generateD2(t, ts.URL, "d2")

	var health map[string]any
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &health); code != http.StatusOK {
		t.Fatalf("healthy healthz: status %d", code)
	}
	if health["status"] != "ok" {
		t.Fatalf("healthy healthz: %+v", health)
	}

	// Fail the next journal fsync: the put is refused and the failure
	// latches.
	faulty.Inject(crashtest.Fault{Point: "sync:wal"})
	var errResp map[string]any
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/graphs", map[string]any{
		"name": "lost", "dataset": "D2", "seed": 7, "scale": 0.02,
	}, &errResp); code != http.StatusInternalServerError {
		t.Fatalf("put through failed fsync: status %d, want 500", code)
	}

	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &health); code != http.StatusServiceUnavailable {
		t.Fatalf("degraded healthz: status %d, want 503", code)
	}
	if health["status"] != "degraded" {
		t.Fatalf("degraded healthz: %+v", health)
	}
	if msg, _ := health["error"].(string); !strings.Contains(msg, durable.ErrLogFailed.Error()) {
		t.Fatalf("degraded healthz error = %q, want it to name the journal failure", msg)
	}

	// Reads stay up: the stored graph is still served.
	var info graphInfoJSON
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/graphs/d2", nil, &info); code != http.StatusOK {
		t.Fatalf("read during degradation: status %d", code)
	}
}

// TestTracesEndpoint: every request gets an X-Request-Id, and
// /v1/traces returns the recent ring most recent first with the match
// request's per-algorithm spans.
func TestTracesEndpoint(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{TraceRing: 8})
	generateD2(t, ts.URL, "d2")

	resp, err := http.Post(ts.URL+"/v1/match", "application/json",
		strings.NewReader(`{"graph":"d2","algorithms":["UMC","CNC"],"threshold":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.Header.Get("X-Request-Id") == "" {
		t.Fatal("match response carries no X-Request-Id")
	}

	var out struct {
		Traces []obs.TraceView `json:"traces"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/traces", nil, &out); code != http.StatusOK {
		t.Fatalf("/v1/traces: status %d", code)
	}
	if len(out.Traces) < 2 {
		t.Fatalf("got %d traces, want at least the generate and the match", len(out.Traces))
	}
	var match *obs.TraceView
	for i := range out.Traces {
		if out.Traces[i].Name == "POST /v1/match" {
			match = &out.Traces[i]
			break
		}
	}
	if match == nil {
		t.Fatalf("no POST /v1/match trace in %+v", out.Traces)
	}
	if match.ID == "" || match.DurNS <= 0 || match.Status != http.StatusOK {
		t.Fatalf("match trace = %+v", match)
	}
	spans := map[string]bool{}
	for _, sp := range match.Spans {
		spans[sp.Name] = true
	}
	for _, want := range []string{"match", "match/UMC", "match/CNC"} {
		if !spans[want] {
			t.Errorf("match trace misses span %q (have %v)", want, match.Spans)
		}
	}
}

// TestDisableObs: with observability off the service still works, the
// JSON /metrics stays available (zeroed request counters), and the
// Prometheus view reports 404 rather than an empty exposition.
func TestDisableObs(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{DisableObs: true})
	generateD2(t, ts.URL, "d2")
	var mresp matchRespJSON
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/match", map[string]any{
		"graph": "d2", "algorithms": []string{"UMC"}, "threshold": 0.5,
	}, &mresp); code != http.StatusOK {
		t.Fatalf("match with obs disabled: status %d", code)
	}
	var m metricsJSON
	if code := doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &m); code != http.StatusOK {
		t.Fatal("JSON /metrics must stay available with obs disabled")
	}
	if m.GraphsStored != 1 {
		t.Fatalf("graphs_stored = %d, want 1 (store-backed, not registry-backed)", m.GraphsStored)
	}
	resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("prometheus view with obs disabled: status %d, want 404", resp.StatusCode)
	}
}

// TestSlowRequestLog: with a zero-duration slow threshold every request
// is over it, so the handler must emit one structured JSON line carrying
// the request id and stage spans.
func TestSlowRequestLog(t *testing.T) {
	var buf bytes.Buffer
	logw := &syncWriter{w: &buf}
	_, ts := newTestServer(t, serve.Config{TraceSlow: time.Nanosecond, ObsLog: logw})
	generateD2(t, ts.URL, "d2")

	lines := strings.Split(strings.TrimSpace(logw.String()), "\n")
	if len(lines) == 0 || lines[0] == "" {
		t.Fatal("no slow-request log lines")
	}
	var entry struct {
		Level string `json:"level"`
		Msg   string `json:"msg"`
		obs.TraceView
	}
	if err := json.Unmarshal([]byte(lines[0]), &entry); err != nil {
		t.Fatalf("slow log line %q is not JSON: %v", lines[0], err)
	}
	if entry.Level != "warn" || entry.Msg != "slow request" || entry.ID == "" {
		t.Fatalf("slow log entry = %+v", entry)
	}
	if len(entry.Spans) == 0 {
		t.Fatalf("slow log entry carries no stage spans: %+v", entry)
	}
}

// syncWriter serializes writes: handler goroutines log concurrently with
// the test's reads.
type syncWriter struct {
	mu sync.Mutex
	w  *bytes.Buffer
}

func (s *syncWriter) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.Write(p)
}

func (s *syncWriter) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.String()
}

// benchMatch drives POST /v1/match through the full middleware +
// handler chain in-process (no sockets, so the numbers isolate the
// service code), with the cache disabled so every request runs all
// eight matchings — the instrumented hot path.
func benchMatch(b *testing.B, cfg serve.Config) {
	b.Helper()
	cfg.CacheSize = -1
	srv, err := serve.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Close(ctx)
	})
	handler := srv.Handler()
	do := func(method, path, body string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(method, path, strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		w := httptest.NewRecorder()
		handler.ServeHTTP(w, req)
		return w
	}
	if w := do(http.MethodPost, "/v1/graphs",
		`{"name":"d2","dataset":"D2","seed":42,"scale":0.02}`); w.Code != http.StatusCreated {
		b.Fatalf("generate: status %d", w.Code)
	}
	payload := fmt.Sprintf(`{"graph":"d2","algorithms":%s,"threshold":0.5}`,
		mustJSON(ccer.Algorithms()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if w := do(http.MethodPost, "/v1/match", payload); w.Code != http.StatusOK {
			b.Fatalf("match: status %d", w.Code)
		}
	}
}

func mustJSON(v any) string {
	raw, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return string(raw)
}

// BenchmarkMatchRequestObserved vs BenchmarkMatchRequestNoObs is the
// instrumentation-overhead pair the CI job records: the full POST
// /v1/match hot path (all eight algorithms, cache off) with the metrics
// registry + tracer on and with obs disabled entirely.
func BenchmarkMatchRequestObserved(b *testing.B) { benchMatch(b, serve.Config{}) }

func BenchmarkMatchRequestNoObs(b *testing.B) { benchMatch(b, serve.Config{DisableObs: true}) }
