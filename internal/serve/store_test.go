package serve

import (
	"errors"
	"testing"

	"github.com/ccer-go/ccer/internal/graph"
)

var errTestPersist = errors.New("injected persist failure")

func testGraph(t *testing.T, weights ...float64) *graph.Bipartite {
	t.Helper()
	b := graph.NewBuilder(len(weights), len(weights))
	for i, w := range weights {
		b.Add(int32(i), int32(i), w)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// mustPut inserts the entry, failing the test on a persister error
// (impossible for the persister-less stores these tests build).
func mustPut(t *testing.T, s *Store, e *GraphEntry) *GraphEntry {
	t.Helper()
	stored, err := s.Put(e)
	if err != nil {
		t.Fatalf("Put(%q): %v", e.Name, err)
	}
	return stored
}

func mustDelete(t *testing.T, s *Store, name string) bool {
	t.Helper()
	existed, err := s.Delete(name)
	if err != nil {
		t.Fatalf("Delete(%q): %v", name, err)
	}
	return existed
}

func TestStorePutGetDelete(t *testing.T) {
	s := NewStore()
	g := testGraph(t, 0.9, 0.8)
	e := mustPut(t, s, &GraphEntry{Name: "a", Graph: g, Checksum: g.Checksum(), Source: "upload"})
	if e.Version != 1 {
		t.Fatalf("first version = %d, want 1", e.Version)
	}
	if e.Created.IsZero() {
		t.Fatal("Created not stamped")
	}
	got, ok := s.Get("a")
	if !ok || got.Graph != g {
		t.Fatalf("Get(a) = %v, %v", got, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if !mustDelete(t, s, "a") {
		t.Fatal("Delete(a) = false")
	}
	if mustDelete(t, s, "a") {
		t.Fatal("second Delete(a) = true")
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("Get after Delete succeeded")
	}
}

func TestStoreOverwriteBumpsVersion(t *testing.T) {
	s := NewStore()
	e1 := mustPut(t, s, &GraphEntry{Name: "a", Graph: testGraph(t, 0.9)})
	e2 := mustPut(t, s, &GraphEntry{Name: "a", Graph: testGraph(t, 0.1)})
	if e2.Version <= e1.Version {
		t.Fatalf("overwrite version %d not above %d", e2.Version, e1.Version)
	}
	got, _ := s.Get("a")
	if got != e2 {
		t.Fatal("Get returned the stale entry")
	}
}

func TestStoreAutoNamesSkipTaken(t *testing.T) {
	s := NewStore()
	mustPut(t, s, &GraphEntry{Name: "g1", Graph: testGraph(t, 0.5)})
	e := mustPut(t, s, &GraphEntry{Graph: testGraph(t, 0.6)})
	if e.Name != "g2" {
		t.Fatalf("auto name = %q, want g2 (g1 taken)", e.Name)
	}
}

func TestStoreListSorted(t *testing.T) {
	s := NewStore()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		mustPut(t, s, &GraphEntry{Name: name, Graph: testGraph(t, 0.5)})
	}
	list := s.List()
	want := []string{"alpha", "mid", "zeta"}
	if len(list) != len(want) {
		t.Fatalf("List len = %d, want %d", len(list), len(want))
	}
	for i, e := range list {
		if e.Name != want[i] {
			t.Fatalf("List[%d] = %q, want %q", i, e.Name, want[i])
		}
	}
}

// TestStoreLoadResumesCounters checks that recovered entries fast-forward
// both the per-name version counters and the auto-name counter, so
// post-recovery mutations never collide with committed state.
func TestStoreLoadResumesCounters(t *testing.T) {
	s := NewStore()
	s.Load([]*GraphEntry{
		{Name: "g7", Version: 3, Graph: testGraph(t, 0.5)},
		{Name: "named", Version: 9, Graph: testGraph(t, 0.6)},
	})
	e := mustPut(t, s, &GraphEntry{Graph: testGraph(t, 0.7)})
	if e.Name != "g8" {
		t.Fatalf("auto name after load = %q, want g8", e.Name)
	}
	if e.Version != 1 {
		t.Fatalf("fresh name version after load = %d, want 1 (versions are per name)", e.Version)
	}
	e = mustPut(t, s, &GraphEntry{Name: "named", Graph: testGraph(t, 0.8)})
	if e.Version != 10 {
		t.Fatalf("overwrite of recovered name = version %d, want 10", e.Version)
	}
}

// TestStorePerNameVersionsAreReplicaDeterministic pins the property the
// cluster router depends on: a store's version for a name is a function
// of that name's own write sequence alone, so two replicas that applied
// the same writes to a name agree on its version even when they host
// different subsets of other names. The counter also survives Delete,
// so a recreated name never reuses a version within a process lifetime.
func TestStorePerNameVersionsAreReplicaDeterministic(t *testing.T) {
	a, b := NewStore(), NewStore()
	// Replica a hosts x and y; replica b hosts only y.
	mustPut(t, a, &GraphEntry{Name: "x", Graph: testGraph(t, 0.5)})
	ea := mustPut(t, a, &GraphEntry{Name: "y", Graph: testGraph(t, 0.6)})
	eb := mustPut(t, b, &GraphEntry{Name: "y", Graph: testGraph(t, 0.6)})
	if ea.Version != eb.Version {
		t.Fatalf("replicas disagree on y's version: %d vs %d", ea.Version, eb.Version)
	}
	// Delete + recreate keeps counting upward.
	mustDelete(t, a, "y")
	e := mustPut(t, a, &GraphEntry{Name: "y", Graph: testGraph(t, 0.7)})
	if e.Version != 2 {
		t.Fatalf("recreated name version = %d, want 2 (no reuse)", e.Version)
	}
}

// failingPersister fails every mutation, standing in for a broken disk.
type failingPersister struct{ err error }

func (p failingPersister) PersistPut(*GraphEntry) error { return p.err }
func (p failingPersister) PersistDelete(string) error   { return p.err }

// TestStorePersistFailureAbortsMutation checks the commit-before-
// visibility contract: when the persister refuses, Put leaves the store
// unchanged and Delete keeps the entry.
func TestStorePersistFailureAbortsMutation(t *testing.T) {
	s := NewStore()
	good := mustPut(t, s, &GraphEntry{Name: "a", Graph: testGraph(t, 0.9)})
	s.SetPersister(failingPersister{err: errTestPersist})
	if _, err := s.Put(&GraphEntry{Name: "b", Graph: testGraph(t, 0.1)}); err == nil {
		t.Fatal("Put with failing persister succeeded")
	}
	if _, ok := s.Get("b"); ok {
		t.Fatal("failed Put became visible")
	}
	if existed, err := s.Delete("a"); err == nil || !existed {
		t.Fatalf("Delete with failing persister = (%v, %v), want (true, error)", existed, err)
	}
	if got, ok := s.Get("a"); !ok || got != good {
		t.Fatal("failed Delete removed the entry")
	}
}

// syncEntry builds a sync-path entry with the checksum its graph would
// carry, as the repair client does from a streamed edge list.
func syncEntry(t *testing.T, name string, weights ...float64) *GraphEntry {
	t.Helper()
	g := testGraph(t, weights...)
	return &GraphEntry{Name: name, Graph: g, Checksum: g.Checksum(), Source: "repair"}
}

func TestStoreSyncPutPinsVersion(t *testing.T) {
	s := NewStore()
	e, applied, err := s.SyncPut(syncEntry(t, "x", 0.5), 7)
	if err != nil || !applied {
		t.Fatalf("SyncPut = (%v, %v, %v)", e, applied, err)
	}
	if e.Version != 7 {
		t.Fatalf("sync entry version = %d, want pinned 7", e.Version)
	}
	// The counter fast-forwarded: the next regular Put continues past it.
	next := mustPut(t, s, &GraphEntry{Name: "x", Graph: testGraph(t, 0.6)})
	if next.Version != 8 {
		t.Fatalf("Put after sync version = %d, want 8", next.Version)
	}
}

func TestStoreSyncPutDropsStaleAndDuplicate(t *testing.T) {
	s := NewStore()
	g1, g2 := testGraph(t, 0.9), testGraph(t, 0.8)
	mustPut(t, s, &GraphEntry{Name: "x", Graph: g1, Checksum: g1.Checksum()})
	live := mustPut(t, s, &GraphEntry{Name: "x", Graph: g2, Checksum: g2.Checksum()}) // version 2

	// Stale: a sync at version 1 loses to the local version-2 write.
	if got, applied, err := s.SyncPut(syncEntry(t, "x", 0.1), 1); err != nil || applied || got != live {
		t.Fatalf("stale SyncPut = (%v, %v, %v), want current entry kept", got, applied, err)
	}
	// Duplicate: same version, same checksum is a no-op.
	dup := &GraphEntry{Name: "x", Graph: live.Graph, Checksum: live.Graph.Checksum()}
	if _, applied, err := s.SyncPut(dup, 2); err != nil || applied {
		t.Fatalf("duplicate SyncPut applied=%v err=%v, want no-op", applied, err)
	}
	if got, _ := s.Get("x"); got != live {
		t.Fatal("no-op sync replaced the live entry")
	}
	if _, _, err := s.SyncPut(syncEntry(t, "x", 0.2), 0); err == nil {
		t.Fatal("SyncPut accepted version 0")
	}
}

// TestStoreSyncPutTombstoneTieLoses: when a name was deleted at version
// v, a peer's sync write of the version-v entry must not resurrect it —
// the delete happened after the write that v acknowledges.
func TestStoreSyncPutTombstoneTieLoses(t *testing.T) {
	s := NewStore()
	mustPut(t, s, &GraphEntry{Name: "x", Graph: testGraph(t, 0.9)}) // version 1
	mustDelete(t, s, "x")
	if e, applied, err := s.SyncPut(syncEntry(t, "x", 0.9), 1); err != nil || applied || e != nil {
		t.Fatalf("SyncPut at tombstone version = (%v, %v, %v), want dropped", e, applied, err)
	}
	if _, ok := s.Get("x"); ok {
		t.Fatal("tombstoned entry resurrected by tie-version sync")
	}
	// A strictly newer sync write wins over the tombstone...
	if _, applied, err := s.SyncPut(syncEntry(t, "x", 0.3), 2); err != nil || !applied {
		t.Fatalf("newer SyncPut over tombstone applied=%v err=%v", applied, err)
	}
	// ...and clears it from the listing.
	if ts := s.Tombstones(); len(ts) != 0 {
		t.Fatalf("tombstones after resurrecting write = %v, want none", ts)
	}
}

// TestStoreSyncPutBurntVersionApplies: a persist-failed local Put burns
// a version number without storing an entry. That burnt version must
// NOT masquerade as a tombstone — the peer that acked the same fanned
// write holds the durable copy, and repair must be able to install it.
func TestStoreSyncPutBurntVersionApplies(t *testing.T) {
	s := NewStore()
	s.SetPersister(failingPersister{err: errTestPersist})
	if _, err := s.Put(&GraphEntry{Name: "x", Graph: testGraph(t, 0.9)}); err == nil {
		t.Fatal("Put with failing persister succeeded")
	}
	s.SetPersister(nil)
	if ts := s.Tombstones(); len(ts) != 0 {
		t.Fatalf("burnt version shows as tombstone: %v", ts)
	}
	e, applied, err := s.SyncPut(syncEntry(t, "x", 0.9), 1)
	if err != nil || !applied || e == nil || e.Version != 1 {
		t.Fatalf("SyncPut onto burnt version = (%v, %v, %v), want applied at 1", e, applied, err)
	}
}

func TestStoreSyncDeleteConditional(t *testing.T) {
	s := NewStore()
	mustPut(t, s, &GraphEntry{Name: "x", Graph: testGraph(t, 0.9)})
	mustPut(t, s, &GraphEntry{Name: "x", Graph: testGraph(t, 0.8)}) // version 2

	// Stale: a tombstone at version 1 loses to the local version-2 write.
	if changed, err := s.SyncDelete("x", 1); err != nil || changed {
		t.Fatalf("stale SyncDelete = (%v, %v), want dropped", changed, err)
	}
	if _, ok := s.Get("x"); !ok {
		t.Fatal("stale SyncDelete removed a newer entry")
	}
	// At the entry's own version the delete wins the tie.
	if changed, err := s.SyncDelete("x", 2); err != nil || !changed {
		t.Fatalf("SyncDelete at entry version = (%v, %v), want applied", changed, err)
	}
	if _, ok := s.Get("x"); ok {
		t.Fatal("SyncDelete left the entry")
	}
	if ts := s.Tombstones(); ts["x"] != 2 {
		t.Fatalf("tombstones after SyncDelete = %v, want x@2", ts)
	}
	// Re-applying the same tombstone is a no-op: idempotent retries.
	if changed, err := s.SyncDelete("x", 2); err != nil || changed {
		t.Fatalf("duplicate SyncDelete = (%v, %v), want no-op", changed, err)
	}
	// A tombstone for a name never seen here still records, so this
	// replica's listing propagates the delete onward.
	if changed, err := s.SyncDelete("ghost", 3); err != nil || !changed {
		t.Fatalf("SyncDelete of unseen name = (%v, %v), want recorded", changed, err)
	}
	if ts := s.Tombstones(); ts["ghost"] != 3 {
		t.Fatalf("tombstones = %v, want ghost@3", ts)
	}
}

// TestStoreTombstonesOnlyRealDeletes: the sync listing's tombstone set
// reflects Delete calls, not version numbers burnt by failed Puts, and
// a recreate clears the name's tombstone.
func TestStoreTombstonesOnlyRealDeletes(t *testing.T) {
	s := NewStore()
	mustPut(t, s, &GraphEntry{Name: "a", Graph: testGraph(t, 0.9)})
	mustPut(t, s, &GraphEntry{Name: "b", Graph: testGraph(t, 0.8)})
	mustDelete(t, s, "a")
	mustDelete(t, s, "b")
	if ts := s.Tombstones(); len(ts) != 2 || ts["a"] != 1 || ts["b"] != 1 {
		t.Fatalf("tombstones = %v, want a@1 b@1", ts)
	}
	mustPut(t, s, &GraphEntry{Name: "a", Graph: testGraph(t, 0.7)})
	if ts := s.Tombstones(); len(ts) != 1 || ts["b"] != 1 {
		t.Fatalf("tombstones after recreate = %v, want only b@1", ts)
	}
}
