package serve

import (
	"testing"

	"github.com/ccer-go/ccer/internal/graph"
)

func testGraph(t *testing.T, weights ...float64) *graph.Bipartite {
	t.Helper()
	b := graph.NewBuilder(len(weights), len(weights))
	for i, w := range weights {
		b.Add(int32(i), int32(i), w)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestStorePutGetDelete(t *testing.T) {
	s := NewStore()
	g := testGraph(t, 0.9, 0.8)
	e := s.Put(&GraphEntry{Name: "a", Graph: g, Checksum: g.Checksum(), Source: "upload"})
	if e.Version != 1 {
		t.Fatalf("first version = %d, want 1", e.Version)
	}
	if e.Created.IsZero() {
		t.Fatal("Created not stamped")
	}
	got, ok := s.Get("a")
	if !ok || got.Graph != g {
		t.Fatalf("Get(a) = %v, %v", got, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if !s.Delete("a") {
		t.Fatal("Delete(a) = false")
	}
	if s.Delete("a") {
		t.Fatal("second Delete(a) = true")
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("Get after Delete succeeded")
	}
}

func TestStoreOverwriteBumpsVersion(t *testing.T) {
	s := NewStore()
	e1 := s.Put(&GraphEntry{Name: "a", Graph: testGraph(t, 0.9)})
	e2 := s.Put(&GraphEntry{Name: "a", Graph: testGraph(t, 0.1)})
	if e2.Version <= e1.Version {
		t.Fatalf("overwrite version %d not above %d", e2.Version, e1.Version)
	}
	got, _ := s.Get("a")
	if got != e2 {
		t.Fatal("Get returned the stale entry")
	}
}

func TestStoreAutoNamesSkipTaken(t *testing.T) {
	s := NewStore()
	s.Put(&GraphEntry{Name: "g1", Graph: testGraph(t, 0.5)})
	e := s.Put(&GraphEntry{Graph: testGraph(t, 0.6)})
	if e.Name != "g2" {
		t.Fatalf("auto name = %q, want g2 (g1 taken)", e.Name)
	}
}

func TestStoreListSorted(t *testing.T) {
	s := NewStore()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		s.Put(&GraphEntry{Name: name, Graph: testGraph(t, 0.5)})
	}
	list := s.List()
	want := []string{"alpha", "mid", "zeta"}
	if len(list) != len(want) {
		t.Fatalf("List len = %d, want %d", len(list), len(want))
	}
	for i, e := range list {
		if e.Name != want[i] {
			t.Fatalf("List[%d] = %q, want %q", i, e.Name, want[i])
		}
	}
}
