package serve

import (
	"errors"
	"testing"

	"github.com/ccer-go/ccer/internal/graph"
)

var errTestPersist = errors.New("injected persist failure")

func testGraph(t *testing.T, weights ...float64) *graph.Bipartite {
	t.Helper()
	b := graph.NewBuilder(len(weights), len(weights))
	for i, w := range weights {
		b.Add(int32(i), int32(i), w)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// mustPut inserts the entry, failing the test on a persister error
// (impossible for the persister-less stores these tests build).
func mustPut(t *testing.T, s *Store, e *GraphEntry) *GraphEntry {
	t.Helper()
	stored, err := s.Put(e)
	if err != nil {
		t.Fatalf("Put(%q): %v", e.Name, err)
	}
	return stored
}

func mustDelete(t *testing.T, s *Store, name string) bool {
	t.Helper()
	existed, err := s.Delete(name)
	if err != nil {
		t.Fatalf("Delete(%q): %v", name, err)
	}
	return existed
}

func TestStorePutGetDelete(t *testing.T) {
	s := NewStore()
	g := testGraph(t, 0.9, 0.8)
	e := mustPut(t, s, &GraphEntry{Name: "a", Graph: g, Checksum: g.Checksum(), Source: "upload"})
	if e.Version != 1 {
		t.Fatalf("first version = %d, want 1", e.Version)
	}
	if e.Created.IsZero() {
		t.Fatal("Created not stamped")
	}
	got, ok := s.Get("a")
	if !ok || got.Graph != g {
		t.Fatalf("Get(a) = %v, %v", got, ok)
	}
	if s.Len() != 1 {
		t.Fatalf("Len = %d, want 1", s.Len())
	}
	if !mustDelete(t, s, "a") {
		t.Fatal("Delete(a) = false")
	}
	if mustDelete(t, s, "a") {
		t.Fatal("second Delete(a) = true")
	}
	if _, ok := s.Get("a"); ok {
		t.Fatal("Get after Delete succeeded")
	}
}

func TestStoreOverwriteBumpsVersion(t *testing.T) {
	s := NewStore()
	e1 := mustPut(t, s, &GraphEntry{Name: "a", Graph: testGraph(t, 0.9)})
	e2 := mustPut(t, s, &GraphEntry{Name: "a", Graph: testGraph(t, 0.1)})
	if e2.Version <= e1.Version {
		t.Fatalf("overwrite version %d not above %d", e2.Version, e1.Version)
	}
	got, _ := s.Get("a")
	if got != e2 {
		t.Fatal("Get returned the stale entry")
	}
}

func TestStoreAutoNamesSkipTaken(t *testing.T) {
	s := NewStore()
	mustPut(t, s, &GraphEntry{Name: "g1", Graph: testGraph(t, 0.5)})
	e := mustPut(t, s, &GraphEntry{Graph: testGraph(t, 0.6)})
	if e.Name != "g2" {
		t.Fatalf("auto name = %q, want g2 (g1 taken)", e.Name)
	}
}

func TestStoreListSorted(t *testing.T) {
	s := NewStore()
	for _, name := range []string{"zeta", "alpha", "mid"} {
		mustPut(t, s, &GraphEntry{Name: name, Graph: testGraph(t, 0.5)})
	}
	list := s.List()
	want := []string{"alpha", "mid", "zeta"}
	if len(list) != len(want) {
		t.Fatalf("List len = %d, want %d", len(list), len(want))
	}
	for i, e := range list {
		if e.Name != want[i] {
			t.Fatalf("List[%d] = %q, want %q", i, e.Name, want[i])
		}
	}
}

// TestStoreLoadResumesCounters checks that recovered entries fast-forward
// both the per-name version counters and the auto-name counter, so
// post-recovery mutations never collide with committed state.
func TestStoreLoadResumesCounters(t *testing.T) {
	s := NewStore()
	s.Load([]*GraphEntry{
		{Name: "g7", Version: 3, Graph: testGraph(t, 0.5)},
		{Name: "named", Version: 9, Graph: testGraph(t, 0.6)},
	})
	e := mustPut(t, s, &GraphEntry{Graph: testGraph(t, 0.7)})
	if e.Name != "g8" {
		t.Fatalf("auto name after load = %q, want g8", e.Name)
	}
	if e.Version != 1 {
		t.Fatalf("fresh name version after load = %d, want 1 (versions are per name)", e.Version)
	}
	e = mustPut(t, s, &GraphEntry{Name: "named", Graph: testGraph(t, 0.8)})
	if e.Version != 10 {
		t.Fatalf("overwrite of recovered name = version %d, want 10", e.Version)
	}
}

// TestStorePerNameVersionsAreReplicaDeterministic pins the property the
// cluster router depends on: a store's version for a name is a function
// of that name's own write sequence alone, so two replicas that applied
// the same writes to a name agree on its version even when they host
// different subsets of other names. The counter also survives Delete,
// so a recreated name never reuses a version within a process lifetime.
func TestStorePerNameVersionsAreReplicaDeterministic(t *testing.T) {
	a, b := NewStore(), NewStore()
	// Replica a hosts x and y; replica b hosts only y.
	mustPut(t, a, &GraphEntry{Name: "x", Graph: testGraph(t, 0.5)})
	ea := mustPut(t, a, &GraphEntry{Name: "y", Graph: testGraph(t, 0.6)})
	eb := mustPut(t, b, &GraphEntry{Name: "y", Graph: testGraph(t, 0.6)})
	if ea.Version != eb.Version {
		t.Fatalf("replicas disagree on y's version: %d vs %d", ea.Version, eb.Version)
	}
	// Delete + recreate keeps counting upward.
	mustDelete(t, a, "y")
	e := mustPut(t, a, &GraphEntry{Name: "y", Graph: testGraph(t, 0.7)})
	if e.Version != 2 {
		t.Fatalf("recreated name version = %d, want 2 (no reuse)", e.Version)
	}
}

// failingPersister fails every mutation, standing in for a broken disk.
type failingPersister struct{ err error }

func (p failingPersister) PersistPut(*GraphEntry) error { return p.err }
func (p failingPersister) PersistDelete(string) error   { return p.err }

// TestStorePersistFailureAbortsMutation checks the commit-before-
// visibility contract: when the persister refuses, Put leaves the store
// unchanged and Delete keeps the entry.
func TestStorePersistFailureAbortsMutation(t *testing.T) {
	s := NewStore()
	good := mustPut(t, s, &GraphEntry{Name: "a", Graph: testGraph(t, 0.9)})
	s.SetPersister(failingPersister{err: errTestPersist})
	if _, err := s.Put(&GraphEntry{Name: "b", Graph: testGraph(t, 0.1)}); err == nil {
		t.Fatal("Put with failing persister succeeded")
	}
	if _, ok := s.Get("b"); ok {
		t.Fatal("failed Put became visible")
	}
	if existed, err := s.Delete("a"); err == nil || !existed {
		t.Fatalf("Delete with failing persister = (%v, %v), want (true, error)", existed, err)
	}
	if got, ok := s.Get("a"); !ok || got != good {
		t.Fatal("failed Delete removed the entry")
	}
}
