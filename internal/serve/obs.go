package serve

import (
	"time"

	"github.com/ccer-go/ccer/internal/obs"
)

// initObs builds the metrics registry and request tracer. Everything the
// JSON /metrics response reports is registered here, so the Prometheus
// exposition covers the same counter set: registry-owned instruments for
// the request path, reader funcs for the counters that live with their
// owners (result cache, job queue, representation caches, durable log,
// generation stats). The reader funcs capture s and read lazily at
// scrape time, so registration order against field initialization does
// not matter — every field is set before New returns.
//
// With Config.DisableObs the registry and tracer stay nil and every
// handle below is an inert no-op (the obs package's nil-receiver
// contract), which is the baseline side of the instrumentation-overhead
// benchmarks.
func (s *Server) initObs() {
	if s.cfg.DisableObs {
		return
	}
	r := obs.NewRegistry()
	s.obs = r

	s.requests = r.Counter("ccer_requests_total", "HTTP requests received.")
	s.errors = r.Counter("ccer_errors_total", "HTTP responses with status >= 400.")
	s.graphsCreated = r.Counter("ccer_graphs_created_total", "Graphs committed to the store.")
	s.matchRequests = r.Counter("ccer_match_requests_total", "POST /v1/match requests.")
	s.matchingsRun = r.Counter("ccer_matchings_run_total", "Matchings executed (cache misses).")
	s.sweepsCreated = r.Counter("ccer_sweeps_created_total", "Sweep jobs accepted.")
	s.classReqs = r.CounterVec("ccer_http_requests_by_class_total",
		"HTTP responses by status class.", "class")
	s.routeReqs = r.CounterVec("ccer_http_requests_by_route_total",
		"HTTP requests by mux route pattern.", "route")
	s.httpDur = r.Histogram("ccer_http_request_seconds", "HTTP request wall time.")
	s.matchDur = r.HistogramVec("ccer_match_seconds",
		"Latency of one matching run, by algorithm.", "algorithm")
	s.genDur = r.HistogramVec("ccer_generate_seconds",
		"Latency of one similarity-graph generation, by weight family.", "family")
	s.sweepDur = r.Histogram("ccer_sweep_seconds", "Latency of one sweep job execution.")
	s.timeoutsByRoute = r.CounterVec("ccer_request_timeout_total",
		"Requests that exceeded their deadline (HTTP 504), by route.", "route")
	s.disconnects = r.Counter("ccer_client_disconnects_total",
		"Requests answered 499: the client disconnected mid-request. Not a server error class.")

	r.GaugeFunc("ccer_admission_queue_depth", "Requests waiting in the admission queue.",
		func() float64 { return float64(s.limiter.Depth()) })
	r.GaugeFunc("ccer_admission_inflight", "Admission slots currently held.",
		func() float64 { return float64(s.limiter.InUse()) })
	r.CounterFunc("ccer_admitted_total", "Computations granted an admission slot.",
		func() int64 { return s.limiter.Admitted() })
	r.LabeledCounterFunc("ccer_shed_total",
		"Requests shed by the overload-protection layer, by machine-readable reason.", "reason",
		func() map[string]int64 { return s.shedCounts() })
	r.CounterFunc("ccer_coalesce_hits_total",
		"Requests served by attaching to an identical in-flight computation.",
		func() int64 { return s.coalesceHits() })

	r.GaugeFunc("ccer_uptime_seconds", "Seconds since the server started.",
		func() float64 { return r.Uptime().Seconds() })
	r.GaugeFunc("ccer_graphs_stored", "Graphs currently in the store.",
		func() float64 { return float64(s.store.Len()) })

	r.CounterFunc("ccer_cache_hits_total", "Match result cache hits.", func() int64 {
		hits, _, _ := s.cache.Stats()
		return hits
	})
	r.CounterFunc("ccer_cache_misses_total", "Match result cache misses.", func() int64 {
		_, misses, _ := s.cache.Stats()
		return misses
	})
	r.CounterFunc("ccer_cache_evictions_total", "Match result cache evictions.", func() int64 {
		_, _, evictions := s.cache.Stats()
		return evictions
	})
	r.GaugeFunc("ccer_cache_size", "Match result cache entries.",
		func() float64 { return float64(s.cache.Len()) })
	r.GaugeFunc("ccer_cache_capacity", "Match result cache capacity.",
		func() float64 { return float64(s.cache.Capacity()) })

	r.GaugeFunc("ccer_jobs_queued", "Sweep jobs waiting to run.",
		func() float64 { return float64(s.jobs.Counts().Queued) })
	r.GaugeFunc("ccer_jobs_running", "Sweep jobs currently executing.",
		func() float64 { return float64(s.jobs.Counts().Running) })
	r.CounterFunc("ccer_jobs_done_total", "Sweep jobs finished successfully.",
		func() int64 { return int64(s.jobs.Counts().Done) })
	r.CounterFunc("ccer_jobs_failed_total", "Sweep jobs finished with an error.",
		func() int64 { return int64(s.jobs.Counts().Failed) })
	r.CounterFunc("ccer_jobs_cancelled_total", "Sweep jobs cancelled.",
		func() int64 { return int64(s.jobs.Counts().Cancelled) })

	r.CounterFunc("ccer_repcache_hits_total", "Representation cache hits.",
		func() int64 { return s.reps.Stats().Hits })
	r.CounterFunc("ccer_repcache_misses_total", "Representation cache misses.",
		func() int64 { return s.reps.Stats().Misses })
	r.CounterFunc("ccer_repcache_evictions_total", "Representation cache evictions.",
		func() int64 { return s.reps.Stats().Evictions })
	r.GaugeFunc("ccer_repcache_entries", "Representation cache resident entries.",
		func() float64 { return float64(s.reps.Stats().Entries) })
	r.CounterFunc("ccer_repcache_reloaded_total",
		"Representation cache entries rewarmed from the durable spill at boot.",
		func() int64 { return s.repReloaded.Load() })

	r.CounterFunc("ccer_journal_records_total", "Journal records replayed at boot plus appended since.",
		func() int64 { return s.log.Metrics().JournalRecordsTotal })
	r.GaugeFunc("ccer_recovery_seconds", "Wall time of the boot-time recovery.",
		func() float64 { return float64(s.log.Metrics().RecoveryNS) / 1e9 })
	r.GaugeFunc("ccer_snapshot_bytes", "On-disk size of the committed snapshot state.",
		func() float64 { return float64(s.log.Metrics().SnapshotBytes) })
	r.CounterFunc("ccer_compactions_total", "Durable-store manifest rewrites.",
		func() int64 { return s.log.Metrics().CompactionsTotal })

	r.LabeledCounterFunc("ccer_generate_ns_total",
		"Cumulative similarity-graph generation nanoseconds, by weight family.", "family",
		func() map[string]int64 {
			_, _, famNanos, _, _, _ := s.gen.snapshot()
			return famNanos
		})
	r.LabeledCounterFunc("ccer_generates_total",
		"Similarity-graph generations, by weight family.", "family",
		func() map[string]int64 {
			_, _, _, famCount, _, _ := s.gen.snapshot()
			return famCount
		})
	r.LabeledCounterFunc("ccer_generate_dataset_ns_total",
		"Cumulative similarity-graph generation nanoseconds, by dataset.", "dataset",
		func() map[string]int64 {
			nanos, _, _, _, _, _ := s.gen.snapshot()
			return nanos
		})
	r.LabeledCounterFunc("ccer_generate_dataset_total",
		"Similarity-graph generations, by dataset.", "dataset",
		func() map[string]int64 {
			_, count, _, _, _, _ := s.gen.snapshot()
			return count
		})
	r.LabeledCounterFunc("ccer_generate_pairs_visited_total",
		"Kernel blocks computed during generation, by weight family.", "family",
		func() map[string]int64 {
			_, _, _, _, famVisited, _ := s.gen.snapshot()
			return famVisited
		})
	r.LabeledCounterFunc("ccer_generate_pairs_skipped_total",
		"Kernel blocks provably skipped by the lossless filters, by weight family.", "family",
		func() map[string]int64 {
			_, _, _, _, _, famSkipped := s.gen.snapshot()
			return famSkipped
		})

	tracer := obs.NewTracer(s.cfg.TraceRing)
	tracer.SlowThreshold = s.cfg.TraceSlow
	tracer.AccessLog = s.cfg.AccessLog
	tracer.Out = s.cfg.ObsLog
	s.tracer = tracer
}

// uptimeSeconds is the one uptime computation /healthz and /metrics
// share: the registry's start time when observability is on, the
// server's otherwise.
func (s *Server) uptimeSeconds() float64 {
	if s.obs != nil {
		return s.obs.Uptime().Seconds()
	}
	return time.Since(s.started).Seconds()
}
