// Package serve implements the erserve subsystem: a long-running
// Clean-Clean ER matching service exposing the module's matching engine
// over an HTTP JSON API. It keeps named similarity graphs resident in a
// versioned in-memory store, runs synchronous match batches through an
// LRU result cache, and executes threshold sweeps as asynchronous jobs
// on a bounded worker pool with context cancellation, so many requests
// amortize one graph build.
//
// The package is wired together by Server (see serve.go) and re-exported
// to library users through ccer.NewServer / ccer.ServeConfig.
package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/ccer-go/ccer/internal/dataset"
	"github.com/ccer-go/ccer/internal/graph"
)

// GraphEntry is one named, versioned graph resident in the store.
type GraphEntry struct {
	// Name is the store key.
	Name string
	// Version increases monotonically per name (1 for the first Put,
	// bumped on every overwrite; the counter survives Delete within a
	// process lifetime), so (Name, Version) identifies one immutable
	// graph even after a name is overwritten. Result-cache keys embed
	// it, which invalidates cached matchings the moment a name points
	// at new content. Per-name — rather than store-global — assignment
	// is what makes replicas deterministic: every node that applies the
	// same sequence of writes to a name reports the same version,
	// regardless of which other names it happens to host, so a
	// cluster router can serve byte-identical match responses from any
	// replica (see internal/cluster).
	Version int64
	// Checksum fingerprints the graph content via the edge-list codec
	// (graph.Bipartite.Checksum).
	Checksum uint64
	// Graph is the immutable similarity graph itself.
	Graph *graph.Bipartite
	// GT is the ground truth when the graph came from a generated task;
	// nil for uploaded edge lists. Sweeps and match metrics degrade to
	// zero scores without it.
	GT *dataset.GroundTruth
	// Source records provenance: "upload" or "generate".
	Source string
	// Dataset, Seed and Scale record the generation request for
	// generated graphs ("" / 0 / 0 for uploads).
	Dataset string
	Seed    int64
	Scale   float64
	// Created is the store-insertion time.
	Created time.Time
}

// Persister is the durability hook of the store (internal/durable
// behind an adapter). Both methods are called with the store mutex
// held, after the mutation is fully decided (name, version, timestamp
// assigned) and BEFORE it becomes visible: an error aborts the
// mutation, so the in-memory state never runs ahead of what a restart
// would recover — an acknowledged write is a recovered write, and a
// failed write is invisible.
type Persister interface {
	PersistPut(e *GraphEntry) error
	PersistDelete(name string) error
}

// Store is a goroutine-safe in-memory collection of named graphs,
// optionally backed by a Persister that makes every mutation durable
// before it becomes visible.
type Store struct {
	mu      sync.RWMutex
	entries map[string]*GraphEntry
	// versions holds the highest version ever assigned per name. It is
	// not pruned on Delete, so a deleted-and-recreated name keeps
	// counting upward and a sweep pinned to the dead version still
	// detects the replacement.
	versions map[string]int64
	nextAuto int64
	persist  Persister
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{entries: make(map[string]*GraphEntry), versions: make(map[string]int64)}
}

// SetPersister attaches the durability hook. Call before serving
// traffic; entries loaded through Load are not re-persisted.
func (s *Store) SetPersister(p Persister) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.persist = p
}

// Load preloads recovered entries without consulting the persister
// (they are, by definition, already durable) and fast-forwards each
// name's version counter so new mutations stay monotonic across
// restarts. The auto-name counter resumes past any recovered "g<n>"
// name. Counters of names deleted before the restart are not recovered
// (their entries are gone); those names restart at version 1, which is
// harmless because every version consumer — the result cache, sweep
// version pins — is in-memory state that did not survive the restart
// either.
func (s *Store) Load(entries []*GraphEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		s.entries[e.Name] = e
		var n int64
		if _, err := fmt.Sscanf(e.Name, "g%d", &n); err == nil && n > s.nextAuto {
			s.nextAuto = n
		}
		if e.Version > s.versions[e.Name] {
			s.versions[e.Name] = e.Version
		}
	}
}

// Put inserts the entry under e.Name, assigning the name's next
// version. An empty name is given an auto-generated "g1", "g2", ...
// name that is not already taken. Re-using a name replaces the previous
// entry; the fresh version keeps result-cache keys from resurrecting
// stale pairs. It returns the stored entry (with Name, Version and
// Created filled). With a persister attached the entry is made durable
// first; on error nothing becomes visible (the burnt version number is
// the only trace).
func (s *Store) Put(e *GraphEntry) (*GraphEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.Name == "" {
		for {
			s.nextAuto++
			name := fmt.Sprintf("g%d", s.nextAuto)
			if _, taken := s.entries[name]; !taken {
				e.Name = name
				break
			}
		}
	}
	e.Version = s.versions[e.Name] + 1
	s.versions[e.Name] = e.Version
	e.Created = time.Now()
	if s.persist != nil {
		if err := s.persist.PersistPut(e); err != nil {
			return nil, fmt.Errorf("serve: persist graph %q: %w", e.Name, err)
		}
	}
	s.entries[e.Name] = e
	return e, nil
}

// Get returns the entry under name.
func (s *Store) Get(name string) (*GraphEntry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[name]
	return e, ok
}

// Delete removes the entry under name, reporting whether it existed.
// With a persister attached the tombstone is made durable first; on
// error the entry stays.
func (s *Store) Delete(name string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.entries[name]; !ok {
		return false, nil
	}
	if s.persist != nil {
		if err := s.persist.PersistDelete(name); err != nil {
			return true, fmt.Errorf("serve: persist delete of %q: %w", name, err)
		}
	}
	delete(s.entries, name)
	return true, nil
}

// List returns the entries sorted by name.
func (s *Store) List() []*GraphEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*GraphEntry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Len returns the number of stored graphs.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}
