// Package serve implements the erserve subsystem: a long-running
// Clean-Clean ER matching service exposing the module's matching engine
// over an HTTP JSON API. It keeps named similarity graphs resident in a
// versioned in-memory store, runs synchronous match batches through an
// LRU result cache, and executes threshold sweeps as asynchronous jobs
// on a bounded worker pool with context cancellation, so many requests
// amortize one graph build.
//
// The package is wired together by Server (see serve.go) and re-exported
// to library users through ccer.NewServer / ccer.ServeConfig.
package serve

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/ccer-go/ccer/internal/dataset"
	"github.com/ccer-go/ccer/internal/graph"
)

// GraphEntry is one named, versioned graph resident in the store.
type GraphEntry struct {
	// Name is the store key.
	Name string
	// Version increases monotonically per name (1 for the first Put,
	// bumped on every overwrite; the counter survives Delete within a
	// process lifetime), so (Name, Version) identifies one immutable
	// graph even after a name is overwritten. Result-cache keys embed
	// it, which invalidates cached matchings the moment a name points
	// at new content. Per-name — rather than store-global — assignment
	// is what makes replicas deterministic: every node that applies the
	// same sequence of writes to a name reports the same version,
	// regardless of which other names it happens to host, so a
	// cluster router can serve byte-identical match responses from any
	// replica (see internal/cluster).
	Version int64
	// Checksum fingerprints the graph content via the edge-list codec
	// (graph.Bipartite.Checksum).
	Checksum uint64
	// Graph is the immutable similarity graph itself.
	Graph *graph.Bipartite
	// GT is the ground truth when the graph came from a generated task;
	// nil for uploaded edge lists. Sweeps and match metrics degrade to
	// zero scores without it.
	GT *dataset.GroundTruth
	// Source records provenance: "upload" or "generate".
	Source string
	// Dataset, Seed and Scale record the generation request for
	// generated graphs ("" / 0 / 0 for uploads).
	Dataset string
	Seed    int64
	Scale   float64
	// Created is the store-insertion time.
	Created time.Time
}

// Persister is the durability hook of the store (internal/durable
// behind an adapter). Both methods are called with the store mutex
// held, after the mutation is fully decided (name, version, timestamp
// assigned) and BEFORE it becomes visible: an error aborts the
// mutation, so the in-memory state never runs ahead of what a restart
// would recover — an acknowledged write is a recovered write, and a
// failed write is invisible.
type Persister interface {
	PersistPut(e *GraphEntry) error
	PersistDelete(name string) error
}

// Store is a goroutine-safe in-memory collection of named graphs,
// optionally backed by a Persister that makes every mutation durable
// before it becomes visible.
type Store struct {
	mu      sync.RWMutex
	entries map[string]*GraphEntry
	// versions holds the highest version ever assigned per name. It is
	// not pruned on Delete, so a deleted-and-recreated name keeps
	// counting upward and a sweep pinned to the dead version still
	// detects the replacement.
	versions map[string]int64
	// deleted records names removed by Delete, at the version the dead
	// entry held, until the name is recreated. Distinct from "versions
	// without an entry": a Put whose persistence failed burns a version
	// with no entry and no delete ever happened — treating that as a
	// tombstone would let an anti-entropy scan delete a peer's acked
	// copy.
	deleted  map[string]int64
	nextAuto int64
	persist  Persister
}

// NewStore returns an empty store.
func NewStore() *Store {
	return &Store{
		entries:  make(map[string]*GraphEntry),
		versions: make(map[string]int64),
		deleted:  make(map[string]int64),
	}
}

// SetPersister attaches the durability hook. Call before serving
// traffic; entries loaded through Load are not re-persisted.
func (s *Store) SetPersister(p Persister) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.persist = p
}

// Load preloads recovered entries without consulting the persister
// (they are, by definition, already durable) and fast-forwards each
// name's version counter so new mutations stay monotonic across
// restarts. The auto-name counter resumes past any recovered "g<n>"
// name. Counters of names deleted before the restart are not recovered
// (their entries are gone); those names restart at version 1, which is
// harmless because every version consumer — the result cache, sweep
// version pins — is in-memory state that did not survive the restart
// either.
func (s *Store) Load(entries []*GraphEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, e := range entries {
		s.entries[e.Name] = e
		var n int64
		if _, err := fmt.Sscanf(e.Name, "g%d", &n); err == nil && n > s.nextAuto {
			s.nextAuto = n
		}
		if e.Version > s.versions[e.Name] {
			s.versions[e.Name] = e.Version
		}
	}
}

// Put inserts the entry under e.Name, assigning the name's next
// version. An empty name is given an auto-generated "g1", "g2", ...
// name that is not already taken. Re-using a name replaces the previous
// entry; the fresh version keeps result-cache keys from resurrecting
// stale pairs. It returns the stored entry (with Name, Version and
// Created filled). With a persister attached the entry is made durable
// first; on error nothing becomes visible (the burnt version number is
// the only trace).
func (s *Store) Put(e *GraphEntry) (*GraphEntry, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.Name == "" {
		for {
			s.nextAuto++
			name := fmt.Sprintf("g%d", s.nextAuto)
			if _, taken := s.entries[name]; !taken {
				e.Name = name
				break
			}
		}
	}
	e.Version = s.versions[e.Name] + 1
	s.versions[e.Name] = e.Version
	e.Created = time.Now()
	if s.persist != nil {
		if err := s.persist.PersistPut(e); err != nil {
			return nil, fmt.Errorf("serve: persist graph %q: %w", e.Name, err)
		}
	}
	s.entries[e.Name] = e
	delete(s.deleted, e.Name)
	return e, nil
}

// SyncPut applies a replica-sync write: store e as exactly version — the
// anti-entropy ingest path (internal/cluster repair streams a peer's
// edge list with the peer's version pinned, so a repaired replica
// reports the same (version, checksum) as its source instead of a
// locally-bumped counter that would diverge again on the next write).
//
// The write is conditional, which makes it idempotent and safe against
// racing live traffic:
//
//   - current version > version: a newer write landed here since the
//     repair planner looked — the sync is stale and is dropped, so a
//     slow repair stream can never clobber fresher data;
//   - current version == version with an identical live checksum (or a
//     tombstone — the name was deleted AT that version, and the delete
//     wins the tie): a duplicate or lost race, dropped;
//   - otherwise the entry becomes visible as exactly version and the
//     name's counter fast-forwards, so subsequent regular Puts continue
//     monotonically past it.
//
// It returns the visible entry (nil when nothing applied and nothing is
// stored) and whether the write applied.
func (s *Store) SyncPut(e *GraphEntry, version int64) (*GraphEntry, bool, error) {
	if version < 1 {
		return nil, false, fmt.Errorf("serve: sync version %d < 1", version)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, exists := s.entries[e.Name]
	curVersion := s.versions[e.Name]
	if curVersion > version {
		return cur, false, nil
	}
	if curVersion == version {
		if exists && cur.Checksum == e.Checksum {
			return cur, false, nil
		}
		if !exists {
			if _, dead := s.deleted[e.Name]; dead {
				return nil, false, nil // deleted at this version; the delete wins the tie
			}
			// No entry and no tombstone at this version: a local Put
			// burnt the counter when persistence failed. The peer holds
			// the acked copy — apply it.
		}
	}
	e.Version = version
	e.Created = time.Now()
	if s.persist != nil {
		if err := s.persist.PersistPut(e); err != nil {
			return cur, false, fmt.Errorf("serve: persist sync of %q: %w", e.Name, err)
		}
	}
	s.versions[e.Name] = version
	s.entries[e.Name] = e
	delete(s.deleted, e.Name)
	return e, true, nil
}

// Get returns the entry under name.
func (s *Store) Get(name string) (*GraphEntry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.entries[name]
	return e, ok
}

// Delete removes the entry under name, reporting whether it existed.
// With a persister attached the tombstone is made durable first; on
// error the entry stays.
func (s *Store) Delete(name string) (bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.entries[name]
	if !ok {
		return false, nil
	}
	if s.persist != nil {
		if err := s.persist.PersistDelete(name); err != nil {
			return true, fmt.Errorf("serve: persist delete of %q: %w", name, err)
		}
	}
	delete(s.entries, name)
	// Tombstone at the dead entry's version — not at versions[name],
	// which may sit higher from a burnt (persist-failed) Put that a peer
	// committed; tombstoning there would let repair delete the peer's
	// acked copy.
	s.deleted[name] = cur.Version
	return true, nil
}

// SyncDelete applies a replica-sync delete: a peer's listing carries a
// tombstone for name at version, so the name was deleted there after the
// write this replica holds. It is conditional like SyncPut — dropped
// when a newer local write exists (current version counter > version),
// a no-op when nothing would change, and on apply it removes the entry
// (if any), fast-forwards the counter, and records the tombstone so this
// replica's own listing propagates the delete onward. Delete wins
// version ties, mirroring SyncPut. Reports whether state changed.
func (s *Store) SyncDelete(name string, version int64) (bool, error) {
	if version < 1 {
		return false, fmt.Errorf("serve: sync version %d < 1", version)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.versions[name] > version {
		return false, nil
	}
	_, exists := s.entries[name]
	if !exists && s.deleted[name] == version && s.versions[name] == version {
		return false, nil // duplicate
	}
	if exists && s.persist != nil {
		if err := s.persist.PersistDelete(name); err != nil {
			return false, fmt.Errorf("serve: persist sync delete of %q: %w", name, err)
		}
	}
	delete(s.entries, name)
	s.versions[name] = version
	s.deleted[name] = version
	return true, nil
}

// List returns the entries sorted by name.
func (s *Store) List() []*GraphEntry {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make([]*GraphEntry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Tombstones returns the names removed by Delete (and not since
// recreated), mapped to the version the dead entry held — the signal an
// anti-entropy scan needs to tell "replica A missed the create" (no
// tombstone anywhere) from "replica B missed the delete" (tombstone at
// or above B's entry version). Tombstones are in-memory only: a restart
// forgets them (deleted entries leave no trace for Load to recover),
// which bounds their cost and is why the cluster repair loop runs
// immediately on rejoin rather than waiting for the periodic scan.
func (s *Store) Tombstones() map[string]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int64, len(s.deleted))
	for name, v := range s.deleted {
		out[name] = v
	}
	return out
}

// Len returns the number of stored graphs.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.entries)
}
