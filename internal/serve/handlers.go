package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"

	"github.com/ccer-go/ccer/internal/algo"
	"github.com/ccer-go/ccer/internal/blocking"
	"github.com/ccer-go/ccer/internal/core"
	"github.com/ccer-go/ccer/internal/datagen"
	"github.com/ccer-go/ccer/internal/eval"
	"github.com/ccer-go/ccer/internal/graph"
	"github.com/ccer-go/ccer/internal/obs"
	"github.com/ccer-go/ccer/internal/par"
	"github.com/ccer-go/ccer/internal/resilience"
	"github.com/ccer-go/ccer/internal/simgraph"
	"github.com/ccer-go/ccer/internal/strsim"
)

func (s *Server) routes() {
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/traces", s.handleTraces)
	if s.cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	s.mux.HandleFunc("POST /v1/graphs", s.handleGraphCreate)
	s.mux.HandleFunc("GET /v1/graphs", s.handleGraphList)
	// {name...} (not {name}): family-mode generation stores graphs
	// under "<base>/<attr>/<measure>", so names span path segments.
	s.mux.HandleFunc("GET /v1/graphs/{name...}", s.handleGraphGet)
	s.mux.HandleFunc("DELETE /v1/graphs/{name...}", s.handleGraphDelete)
	s.mux.HandleFunc("POST /v1/match", s.handleMatch)
	s.mux.HandleFunc("POST /v1/sweeps", s.handleSweepCreate)
	s.mux.HandleFunc("GET /v1/sweeps", s.handleSweepList)
	s.mux.HandleFunc("GET /v1/sweeps/{id}", s.handleSweepGet)
	s.mux.HandleFunc("DELETE /v1/sweeps/{id}", s.handleSweepCancel)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // header is out; nothing useful left to do on error
}

// errorReply is the structured error schema every non-2xx JSON response
// follows: error is the human-readable message; reason, when present, is
// the machine-readable vocabulary clients and load balancers branch on —
// "queue_full", "queue_timeout", "sweep_backlog", "degraded" (all 503,
// with a Retry-After header), "deadline" (504), "shutting_down" (503).
type errorReply struct {
	Error  string `json:"error"`
	Reason string `json:"reason,omitempty"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorReply{Error: fmt.Sprintf(format, args...)})
}

// writeReason writes the structured error with a machine-readable reason.
func writeReason(w http.ResponseWriter, status int, reason, format string, args ...any) {
	writeJSON(w, status, errorReply{Error: fmt.Sprintf(format, args...), Reason: reason})
}

// writeShed is every 503 load-shedding response: a Retry-After header
// (whole seconds, at least 1) plus the machine-readable reason, so
// well-behaved clients back off instead of hammering an overloaded
// server.
func writeShed(w http.ResponseWriter, reason string, retryAfter time.Duration, format string, args ...any) {
	secs := int(math.Ceil(retryAfter.Seconds()))
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(secs))
	writeReason(w, http.StatusServiceUnavailable, reason, format, args...)
}

// writeComputeError maps an error out of the resilient compute path
// (matchBatch, a generation flight) onto the response schema: a shed
// becomes 503 with Retry-After, our own deadline 504, the client hanging
// up 499, and anything else — a bad algorithm name, an unknown dataset —
// stays 400. ctx is the deadline-bearing child of the request context.
func (s *Server) writeComputeError(w http.ResponseWriter, r *http.Request, ctx context.Context, err error) {
	var shed *resilience.ShedError
	switch {
	case errors.As(err, &shed):
		writeShed(w, shed.Reason, shed.RetryAfter, "%v", err)
	case r.Context().Err() != nil:
		writeError(w, 499, "%v", err) // client closed request
	case ctx.Err() != nil:
		writeReason(w, http.StatusGatewayTimeout, "deadline", "%v", err)
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
	}
}

// rejectIfDegraded fast-fails a mutation while the durable log is
// latched failed: the write cannot commit, so shed it up front instead
// of paying for a generation whose commit must be refused. Reads and
// cached matches keep serving throughout.
func (s *Server) rejectIfDegraded(w http.ResponseWriter) bool {
	err := s.log.Err()
	if err == nil {
		return false
	}
	s.shedDegraded.Add(1)
	writeShed(w, resilience.ReasonDegraded, 10*time.Second, "durable log failed, mutations refused: %v", err)
	return true
}

// decodeJSON strictly parses the request body into v.
func decodeJSON(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{
		"status":         "ok",
		"uptime_seconds": s.uptimeSeconds(),
	}
	status := http.StatusOK
	// A latched journal failure means every mutation is being refused
	// (reads still work); report degraded so orchestrators restart the
	// process, which rolls a fresh segment.
	if err := s.log.Err(); err != nil {
		resp["status"] = "degraded"
		resp["error"] = err.Error()
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// handleReadyz is the readiness probe, distinct from /healthz liveness:
// it answers 503 whenever the process should not receive new traffic —
// during graceful drain (BeginDrain flipped, connections finishing) and
// while the durable log is latched failed — but the process itself is
// alive and /healthz semantics are unchanged. Routers and load
// balancers poll this endpoint to take a backend out of rotation
// without killing it. Boot-time readiness (journal replay) is handled
// one layer up: cmd/erserve listens before constructing the Server and
// answers 503 from a stub until recovery completes, because this
// handler cannot exist before the Server does.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "draining",
			"ready":  false,
		})
		return
	}
	if err := s.log.Err(); err != nil {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{
			"status": "degraded",
			"ready":  false,
			"error":  err.Error(),
		})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ready",
		"ready":  true,
	})
}

// handleTraces serves the tracer's bounded ring of recent request
// traces, most recent first, each with its per-stage span timings.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	views := s.tracer.Recent()
	if views == nil {
		views = []obs.TraceView{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"traces": views})
}

// metricsResponse is the flat expvar-style counter set of /metrics.
type metricsResponse struct {
	UptimeSeconds       float64 `json:"uptime_seconds"`
	RequestsTotal       int64   `json:"requests_total"`
	ErrorsTotal         int64   `json:"errors_total"`
	GraphsStored        int     `json:"graphs_stored"`
	GraphsCreatedTotal  int64   `json:"graphs_created_total"`
	MatchRequestsTotal  int64   `json:"match_requests_total"`
	MatchingsRunTotal   int64   `json:"matchings_run_total"`
	SweepsCreatedTotal  int64   `json:"sweeps_created_total"`
	CacheHitsTotal      int64   `json:"cache_hits_total"`
	CacheMissesTotal    int64   `json:"cache_misses_total"`
	CacheEvictionsTotal int64   `json:"cache_evictions_total"`
	CacheSize           int     `json:"cache_size"`
	CacheCapacity       int     `json:"cache_capacity"`
	CacheHitRate        float64 `json:"cache_hit_rate"`
	JobsQueued          int     `json:"jobs_queued"`
	JobsRunning         int     `json:"jobs_running"`
	JobsLive            int     `json:"jobs_live"`
	JobsDone            int     `json:"jobs_done"`
	JobsFailed          int     `json:"jobs_failed"`
	JobsCancelled       int     `json:"jobs_cancelled"`
	// Similarity-graph generation timing: cumulative build nanoseconds
	// and build counts keyed by dataset and, separately, by weight
	// family (single-measure generation counts under SB-SYN, the family
	// its string measures belong to), so the corpus-build fast path's
	// throughput — and the character-kernel share inside SB-SYN — is
	// observable on the resident service.
	GenerateNSTotal       map[string]int64 `json:"generate_ns_total,omitempty"`
	GeneratesTotal        map[string]int64 `json:"generates_total,omitempty"`
	GenerateFamilyNSTotal map[string]int64 `json:"generate_family_ns_total,omitempty"`
	GeneratesFamilyTotal  map[string]int64 `json:"generates_family_total,omitempty"`
	// Candidate-filter counters per family: kernel blocks computed vs.
	// provably skipped by the lossless zero-score filters, and the
	// overall skip ratio skipped/(visited+skipped).
	GenPairsVisitedTotal map[string]int64 `json:"generate_pairs_visited_total,omitempty"`
	GenPairsSkippedTotal map[string]int64 `json:"generate_pairs_skipped_total,omitempty"`
	GenSkipRatio         float64          `json:"generate_skip_ratio"`
	// Cross-build representation cache (TF/TF-IDF spaces, n-gram
	// graphs, embeddings, attribute profiles) counters; zero when the
	// caches are disabled (RepCacheDatasets < 0).
	RepCacheHitsTotal      int64 `json:"repcache_hits_total"`
	RepCacheMissesTotal    int64 `json:"repcache_misses_total"`
	RepCacheEvictionsTotal int64 `json:"repcache_evictions_total"`
	RepCacheEntries        int   `json:"repcache_entries"`
	// Durable-store counters (internal/durable); all zero when the
	// service runs without a data directory.
	JournalRecordsTotal   int64 `json:"journal_records_total"`
	RecoveryNS            int64 `json:"recovery_ns"`
	SnapshotBytes         int64 `json:"snapshot_bytes"`
	CompactionsTotal      int64 `json:"compactions_total"`
	RepCacheReloadedTotal int64 `json:"repcache_reloaded_total"`
	// Per-status-class request counters and request-duration quantile
	// estimates (from the fixed-bucket latency histogram); absent when
	// observability is disabled.
	RequestsByClassTotal map[string]int64 `json:"requests_by_class_total,omitempty"`
	HTTPRequestP50MS     float64          `json:"http_request_p50_ms,omitempty"`
	HTTPRequestP95MS     float64          `json:"http_request_p95_ms,omitempty"`
	HTTPRequestP99MS     float64          `json:"http_request_p99_ms,omitempty"`
	// Overload-protection counters: admission queue state, sheds by
	// machine-readable reason (every reason always present, zero before
	// any shed), requests coalesced onto an identical in-flight
	// computation, and deadline (504) hits by route.
	AdmissionQueueDepth int              `json:"admission_queue_depth"`
	AdmissionInFlight   int              `json:"admission_inflight"`
	AdmittedTotal       int64            `json:"admitted_total"`
	ShedTotal           map[string]int64 `json:"shed_total"`
	CoalesceHitsTotal   int64            `json:"coalesce_hits_total"`
	RequestTimeoutTotal map[string]int64 `json:"request_timeout_total,omitempty"`
	// Requests answered 499 because the client went away mid-request.
	// Kept out of the 5xx error class so a cluster router's cancelled
	// hedges and abandoned retries do not read as backend failures.
	ClientDisconnectsTotal int64 `json:"client_disconnects_total"`
}

// wantsPrometheus decides the /metrics representation: an explicit
// ?format= wins, then Accept-header negotiation (a Prometheus scraper
// asks for text/plain or an openmetrics type; browsers and the existing
// JSON consumers do not). The default stays JSON for backward
// compatibility.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		if s.obs == nil {
			writeError(w, http.StatusNotFound, "metrics registry disabled")
			return
		}
		w.Header().Set("Content-Type", obs.ContentType)
		_ = s.obs.WritePrometheus(w)
		return
	}
	hits, misses, evictions := s.cache.Stats()
	hitRate := 0.0
	if hits+misses > 0 {
		hitRate = float64(hits) / float64(hits+misses)
	}
	genNanos, genCount, famNanos, famCount, famVisited, famSkipped := s.gen.snapshot()
	var visitedSum, skippedSum int64
	for _, v := range famVisited {
		visitedSum += v
	}
	for _, v := range famSkipped {
		skippedSum += v
	}
	skipRatio := 0.0
	if visitedSum+skippedSum > 0 {
		skipRatio = float64(skippedSum) / float64(visitedSum+skippedSum)
	}
	repStats := s.reps.Stats()
	durMetrics := s.log.Metrics()
	jobs := s.jobs.Counts()
	var httpP50, httpP95, httpP99 float64
	if hs := s.httpDur.Snapshot(); hs.Count > 0 {
		httpP50 = float64(hs.Quantile(0.50)) / 1e6
		httpP95 = float64(hs.Quantile(0.95)) / 1e6
		httpP99 = float64(hs.Quantile(0.99)) / 1e6
	}
	writeJSON(w, http.StatusOK, metricsResponse{
		RequestsByClassTotal:   s.classReqs.Snapshot(),
		HTTPRequestP50MS:       httpP50,
		HTTPRequestP95MS:       httpP95,
		HTTPRequestP99MS:       httpP99,
		AdmissionQueueDepth:    s.limiter.Depth(),
		AdmissionInFlight:      s.limiter.InUse(),
		AdmittedTotal:          s.limiter.Admitted(),
		ShedTotal:              s.shedCounts(),
		CoalesceHitsTotal:      s.coalesceHits(),
		RequestTimeoutTotal:    s.timeoutsByRoute.Snapshot(),
		ClientDisconnectsTotal: s.disconnects.Load(),
		JournalRecordsTotal:    durMetrics.JournalRecordsTotal,
		RecoveryNS:             durMetrics.RecoveryNS,
		SnapshotBytes:          durMetrics.SnapshotBytes,
		CompactionsTotal:       durMetrics.CompactionsTotal,
		RepCacheReloadedTotal:  s.repReloaded.Load(),
		GenerateNSTotal:        genNanos,
		GeneratesTotal:         genCount,
		GenerateFamilyNSTotal:  famNanos,
		GeneratesFamilyTotal:   famCount,
		GenPairsVisitedTotal:   famVisited,
		GenPairsSkippedTotal:   famSkipped,
		GenSkipRatio:           skipRatio,
		RepCacheHitsTotal:      repStats.Hits,
		RepCacheMissesTotal:    repStats.Misses,
		RepCacheEvictionsTotal: repStats.Evictions,
		RepCacheEntries:        repStats.Entries,
		UptimeSeconds:          s.uptimeSeconds(),
		RequestsTotal:          s.requests.Load(),
		ErrorsTotal:            s.errors.Load(),
		GraphsStored:           s.store.Len(),
		GraphsCreatedTotal:     s.graphsCreated.Load(),
		MatchRequestsTotal:     s.matchRequests.Load(),
		MatchingsRunTotal:      s.matchingsRun.Load(),
		SweepsCreatedTotal:     s.sweepsCreated.Load(),
		CacheHitsTotal:         hits,
		CacheMissesTotal:       misses,
		CacheEvictionsTotal:    evictions,
		CacheSize:              s.cache.Len(),
		CacheCapacity:          s.cache.Capacity(),
		CacheHitRate:           hitRate,
		JobsQueued:             jobs.Queued,
		JobsRunning:            jobs.Running,
		JobsLive:               jobs.Live(),
		JobsDone:               jobs.Done,
		JobsFailed:             jobs.Failed,
		JobsCancelled:          jobs.Cancelled,
	})
}

// graphInfo is the JSON view of a stored graph.
type graphInfo struct {
	Name           string    `json:"name"`
	Version        int64     `json:"version"`
	Checksum       string    `json:"checksum"`
	N1             int       `json:"n1"`
	N2             int       `json:"n2"`
	Edges          int       `json:"edges"`
	Density        float64   `json:"density"`
	HasGroundTruth bool      `json:"has_ground_truth"`
	Source         string    `json:"source"`
	Dataset        string    `json:"dataset,omitempty"`
	Seed           int64     `json:"seed,omitempty"`
	Scale          float64   `json:"scale,omitempty"`
	Created        time.Time `json:"created"`
}

func infoOf(e *GraphEntry) graphInfo {
	return graphInfo{
		Name:           e.Name,
		Version:        e.Version,
		Checksum:       fmt.Sprintf("%016x", e.Checksum),
		N1:             e.Graph.N1(),
		N2:             e.Graph.N2(),
		Edges:          e.Graph.NumEdges(),
		Density:        e.Graph.Density(),
		HasGroundTruth: e.GT != nil && e.GT.Len() > 0,
		Source:         e.Source,
		Dataset:        e.Dataset,
		Seed:           e.Seed,
		Scale:          e.Scale,
		Created:        e.Created,
	}
}

// generateRequest asks the server to generate a similarity graph from a
// synthetic dataset analog, the JSON mode of POST /v1/graphs.
type generateRequest struct {
	// Name keys the graph in the store; empty means auto-assigned.
	Name string `json:"name"`
	// Dataset is one of the paper's analogs, "D1".."D10".
	Dataset string `json:"dataset"`
	// Seed drives dataset generation; 0 means 1.
	Seed int64 `json:"seed"`
	// Scale is the dataset size relative to the paper's Table 2 sizes;
	// 0 means 0.02 (the erbench default).
	Scale float64 `json:"scale"`
	// Measure is the string similarity measure; "" means "Jaccard".
	// Mutually exclusive with Family.
	Measure string `json:"measure"`
	// Family, when set (one of "SB-SYN", "SA-SYN", "SB-SEM", "SA-SEM"),
	// generates the ENTIRE weight family of the paper's taxonomy via
	// the similarity-graph corpus kernels and stores every graph under
	// "<name>/<function>". The response lists all stored graphs.
	Family string `json:"family"`
	// Attrs are the attributes compared (schema-based similarity);
	// empty means the dataset's key attributes.
	Attrs []string `json:"attrs"`
	// MinSim drops edges with similarity <= MinSim before min-max
	// normalization; 0 keeps every positive-similarity pair. Ignored in
	// family mode (the corpus kernels keep every positive pair).
	MinSim float64 `json:"min_sim"`
}

func (s *Server) handleGraphCreate(w http.ResponseWriter, r *http.Request) {
	if s.rejectIfDegraded(w) {
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	ct := r.Header.Get("Content-Type")
	if strings.HasPrefix(ct, "application/json") {
		var req generateRequest
		if err := decodeJSON(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, "bad generate request: %v", err)
			return
		}
		s.serveGenerate(w, r, req)
		return
	}
	// Anything else is the graph.WriteEdgeList wire format. Uploads are
	// parse-bound, not compute-bound, so they skip the admission queue
	// and coalescing.
	g, err := graph.ReadEdgeListMax(r.Body, s.cfg.MaxGraphNodes)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad edge list: %v", err)
		return
	}
	if sv := r.URL.Query().Get("sync_version"); sv != "" {
		s.serveSyncUpload(w, r, g, sv)
		return
	}
	entry, err := s.store.Put(&GraphEntry{
		Name:     r.URL.Query().Get("name"),
		Graph:    g,
		Checksum: g.Checksum(),
		Source:   "upload",
	})
	if err != nil {
		// The graph did not commit; acknowledging it would promise a
		// durability the restart cannot honor.
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	s.persistWarmReps()
	s.graphsCreated.Inc()
	writeJSON(w, http.StatusCreated, infoOf(entry))
}

// serveSyncUpload is the replica-sync mode of the edge-list upload
// (?name=X&sync_version=V): the anti-entropy ingest path. The graph is
// stored at exactly version V via Store.SyncPut — conditional, so a
// duplicate or stale sync is a 200 no-op ("applied": false) instead of a
// conflicting write, which makes repair streams idempotent and safe to
// retry. 201 with the stored info means the sync applied.
func (s *Server) serveSyncUpload(w http.ResponseWriter, r *http.Request, g *graph.Bipartite, sv string) {
	name := r.URL.Query().Get("name")
	if name == "" {
		writeError(w, http.StatusBadRequest, "sync_version requires an explicit name")
		return
	}
	version, err := strconv.ParseInt(sv, 10, 64)
	if err != nil || version < 1 {
		writeError(w, http.StatusBadRequest, "bad sync_version %q", sv)
		return
	}
	entry, applied, err := s.store.SyncPut(&GraphEntry{
		Name:     name,
		Graph:    g,
		Checksum: g.Checksum(),
		Source:   "repair",
	}, version)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if !applied {
		resp := map[string]any{"applied": false, "name": name}
		if entry != nil {
			resp["version"] = entry.Version
			resp["checksum"] = fmt.Sprintf("%016x", entry.Checksum)
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.graphsCreated.Inc()
	writeJSON(w, http.StatusCreated, infoOf(entry))
}

// genReply is a fully rendered generation response — status plus body —
// the unit the generation singleflight shares: coalesced callers replay
// the leader's exact bytes, so a coalesced response is byte-identical to
// having run the (deterministic) generation yourself.
type genReply struct {
	status int
	body   []byte
}

// renderJSON renders v exactly as writeJSON would, into a shareable
// reply.
func renderJSON(status int, v any) *genReply {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
	return &genReply{status: status, body: buf.Bytes()}
}

func (rp *genReply) write(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(rp.status)
	_, _ = w.Write(rp.body)
}

// serveGenerate executes the JSON mode of POST /v1/graphs under the
// resilience layer: a generation deadline, an admission slot in the bulk
// class, and singleflight coalescing — identical concurrent requests
// (same name, dataset, seed, scale, and measure or family) share one
// generation and receive byte-identical replies. The flight's context
// outlives any single caller, so one client timing out does not abort
// the generation for the rest; when every caller is gone, it is
// cancelled.
func (s *Server) serveGenerate(w http.ResponseWriter, r *http.Request, req generateRequest) {
	// Normalize the defaulted fields before keying, so requests that
	// differ only in spelling the default (seed 0 vs 1, scale 0 vs 0.02)
	// coalesce onto the same flight.
	req.Seed = normSeed(req.Seed)
	if req.Scale == 0 {
		req.Scale = 0.02
	}
	if req.Family == "" && req.Measure == "" {
		req.Measure = "Jaccard"
	}
	key := strings.Join([]string{
		req.Name, req.Dataset, strconv.FormatInt(req.Seed, 10),
		strconv.FormatFloat(req.Scale, 'g', -1, 64), req.Measure, req.Family,
		strconv.FormatFloat(req.MinSim, 'g', -1, 64), strings.Join(req.Attrs, "\x1f"),
	}, "\x1e")

	ctx, cancel := withTimeout(r.Context(), s.cfg.GenerateTimeout)
	defer cancel()
	trace := obs.FromContext(r.Context())
	reply, _, err := s.genFlights.Do(ctx, key, func(fctx context.Context) (*genReply, error) {
		if err := s.limiter.Acquire(fctx, resilience.Bulk, s.cfg.AdmissionBudget); err != nil {
			return nil, err
		}
		defer s.limiter.Release()
		if err := s.cfg.Faults.Inject(fctx, "generate"); err != nil {
			return nil, err
		}
		if req.Family != "" {
			return s.generateFamilyReply(fctx, trace, req)
		}
		return s.generateMeasureReply(fctx, trace, req)
	})
	if err != nil {
		s.writeComputeError(w, r, ctx, err)
		return
	}
	reply.write(w)
}

// generateMeasureReply runs single-measure generation and renders the
// reply the flight shares. Business errors (unknown measure, scale over
// the cap) are rendered replies — shared with coalesced callers like any
// other result — while cancellation surfaces as an error.
func (s *Server) generateMeasureReply(ctx context.Context, trace *obs.Trace, req generateRequest) (*genReply, error) {
	endGen := trace.StartSpan("generate/" + string(simgraph.SBSyn))
	start := time.Now()
	e, visited, skipped, err := generateGraph(ctx, req, s.cfg.MaxGraphNodes, s.cfg.Parallelism)
	endGen()
	if err != nil {
		if ctx.Err() != nil {
			return nil, err // deadline or abandonment, not a bad request
		}
		return renderJSON(http.StatusBadRequest, errorReply{Error: err.Error()}), nil
	}
	// Every single-measure string similarity is a schema-based
	// syntactic weight, the paper's SB-SYN family; its prefilter
	// counters feed the same skip-ratio metrics as family mode.
	elapsed := time.Since(start)
	s.gen.recordStats(e.Dataset, string(simgraph.SBSyn), elapsed, visited, skipped)
	s.genDur.With(string(simgraph.SBSyn)).Observe(elapsed)
	entry, err := s.store.Put(e)
	if err != nil {
		// The graph did not commit; acknowledging it would promise a
		// durability the restart cannot honor.
		return renderJSON(http.StatusInternalServerError, errorReply{Error: err.Error()}), nil
	}
	s.persistWarmReps()
	s.graphsCreated.Inc()
	return renderJSON(http.StatusCreated, infoOf(entry)), nil
}

// generateFamilyReply is the family mode of POST /v1/graphs: one
// synthetic task, every similarity graph of one weight family via the
// corpus generation kernels (internal/simgraph), each stored as a
// versioned entry with the task's ground truth attached — so the full
// taxonomy-driven workload of the paper can be served and matched
// without leaving the service. Generation time is recorded under the
// family, which is where the bit-parallel kernel win shows on /metrics.
func (s *Server) generateFamilyReply(ctx context.Context, trace *obs.Trace, req generateRequest) (*genReply, error) {
	if req.Measure != "" {
		return renderJSON(http.StatusBadRequest,
			errorReply{Error: "measure and family are mutually exclusive"}), nil
	}
	var family simgraph.Family
	for _, f := range simgraph.Families() {
		if string(f) == req.Family {
			family = f
		}
	}
	if family == "" {
		return renderJSON(http.StatusBadRequest, errorReply{
			Error: fmt.Sprintf("unknown family %q; have %v", req.Family, simgraph.Families())}), nil
	}
	spec, err := datagen.SpecByID(req.Dataset)
	if err != nil {
		return renderJSON(http.StatusBadRequest, errorReply{Error: err.Error()}), nil
	}
	seed, scale := req.Seed, req.Scale
	if scale < 0 {
		return renderJSON(http.StatusBadRequest,
			errorReply{Error: fmt.Sprintf("negative scale %g", scale)}), nil
	}
	if n1, n2 := spec.ScaledSizes(scale); s.cfg.MaxGraphNodes > 0 && n1+n2 > s.cfg.MaxGraphNodes {
		return renderJSON(http.StatusBadRequest, errorReply{Error: fmt.Sprintf(
			"scale %g yields %d entities, above the cap of %d", scale, n1+n2, s.cfg.MaxGraphNodes)}), nil
	}
	attrs := req.Attrs
	if len(attrs) == 0 {
		attrs = spec.KeyAttrs
	}
	base := req.Name
	if base == "" {
		base = spec.ID + "-" + string(family)
	}

	endTask := trace.StartSpan("dataset/" + spec.ID)
	task := spec.Generate(seed, scale)
	endTask()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	start := time.Now()
	graphs, genStats := simgraph.GenerateStats(task, attrs, simgraph.Options{
		Families:          []simgraph.Family{family},
		KeepNoMatchGraphs: true,
		Parallelism:       s.cfg.Parallelism,
		Caches:            s.reps,
		Trace:             trace,
	})
	// The family kernels have no mid-grid stop hook; the deadline is
	// honored between stages, and an abandoned flight stops here rather
	// than committing graphs nobody asked to keep waiting for.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	fs := genStats.Of(family)
	elapsed := time.Since(start)
	s.gen.recordStats(spec.ID, string(family), elapsed, fs.Visited, fs.Skipped)
	s.genDur.With(string(family)).Observe(elapsed)

	infos := make([]graphInfo, 0, len(graphs))
	for _, sg := range graphs {
		e, err := s.store.Put(&GraphEntry{
			Name:     base + "/" + sg.Name,
			Graph:    sg.G,
			GT:       task.GT,
			Checksum: sg.G.Checksum(),
			Source:   "generate",
			Dataset:  spec.ID,
			Seed:     seed,
			Scale:    scale,
		})
		if err != nil {
			// Earlier graphs of the family committed and stay visible;
			// this one (and, with a sticky journal failure, the rest)
			// did not. Report what is actually durable.
			return renderJSON(http.StatusInternalServerError, errorReply{Error: fmt.Sprintf(
				"stored %d of %d family graphs: %v", len(infos), len(graphs), err)}), nil
		}
		infos = append(infos, infoOf(e))
	}
	s.persistWarmReps()
	s.graphsCreated.Add(int64(len(infos)))
	return renderJSON(http.StatusCreated, map[string]any{"family": string(family), "graphs": infos}), nil
}

// generateGraph builds a stored graph entry from a generation request:
// synthetic task -> schema-based texts -> string similarity graph,
// min-max normalized, with the task's ground truth attached. maxNodes
// caps the generated collection sizes (<= 0 means no cap). The pairwise
// similarity loop fans its rows over parallelism workers (par.Workers
// semantics) with slot-ordered assembly, so the graph is identical at
// any setting; ctx cancellation trips the pool's stop hook between rows
// and the partial build is discarded.
func generateGraph(ctx context.Context, req generateRequest, maxNodes, parallelism int) (entry *GraphEntry, visited, skipped int64, err error) {
	spec, err := datagen.SpecByID(req.Dataset)
	if err != nil {
		return nil, 0, 0, err
	}
	seed := normSeed(req.Seed)
	scale := req.Scale
	if scale == 0 {
		scale = 0.02
	}
	if scale < 0 {
		return nil, 0, 0, fmt.Errorf("negative scale %g", scale)
	}
	measureName := req.Measure
	if measureName == "" {
		measureName = "Jaccard"
	}
	sim, ok := strsim.AllMeasures()[measureName]
	if !ok {
		names := make([]string, 0, 16)
		for n := range strsim.AllMeasures() {
			names = append(names, n)
		}
		sort.Strings(names)
		return nil, 0, 0, fmt.Errorf("unknown measure %q; have %v", measureName, names)
	}
	attrs := req.Attrs
	if len(attrs) == 0 {
		attrs = spec.KeyAttrs
	}

	// Enforce the node cap on the predicted sizes, before Generate
	// materializes (and pays for) the dataset.
	if n1, n2 := spec.ScaledSizes(scale); maxNodes > 0 && n1+n2 > maxNodes {
		return nil, 0, 0, fmt.Errorf("scale %g yields %d entities, above the cap of %d", scale, n1+n2, maxNodes)
	}
	task := spec.Generate(seed, scale)
	texts1 := task.V1.AttrTexts(attrs...)
	texts2 := task.V2.AttrTexts(attrs...)
	type edge struct {
		j int32
		w float64
	}
	// Lossless prefilters from internal/blocking: character signatures
	// skip pairs that provably score 0 on the measure (disjoint
	// alphabets — sound for every char measure except Needleman-Wunsch,
	// and unsound for token measures, whose both-token-less case is
	// defined as 1), and the length bound skips pairs whose edit
	// similarity cannot exceed a positive MinSim. Both only ever remove
	// edges the w > MinSim && w > 0 cut would drop anyway.
	sigZero := false
	for _, name := range blocking.SigZeroMeasures() {
		if name == measureName {
			sigZero = true
		}
	}
	lenBounded := measureName == "Levenshtein" || measureName == "DamerauLevenshtein"
	var sigs1, sigs2 []blocking.Sig128
	var lens1, lens2 []int
	if sigZero {
		sigs1, sigs2 = blocking.Sig128All(texts1), blocking.Sig128All(texts2)
	}
	if lenBounded && req.MinSim > 0 {
		runeLens := func(texts []string) []int {
			out := make([]int, len(texts))
			for i, t := range texts {
				out[i] = len([]rune(t))
			}
			return out
		}
		lens1, lens2 = runeLens(texts1), runeLens(texts2)
	}
	rows := make([][]edge, len(texts1))
	workers := par.Workers(parallelism)
	visitedW := make([]int64, workers)
	skippedW := make([]int64, workers)
	par.For(len(texts1), workers, stopFunc(ctx), func(w, i int) {
		t1 := texts1[i]
		if t1 == "" {
			return
		}
		var row []edge
		for j, t2 := range texts2 {
			if t2 == "" {
				continue
			}
			if sigZero && !sigs1[i].Intersects(sigs2[j]) {
				skippedW[w]++
				continue // provably sim == 0
			}
			if lens1 != nil && blocking.LengthBound(lens1[i], lens2[j]) <= req.MinSim {
				skippedW[w]++
				continue // provably sim <= MinSim
			}
			visitedW[w]++
			if v := sim(t1, t2); v > req.MinSim && v > 0 {
				row = append(row, edge{int32(j), v})
			}
		}
		rows[i] = row
	})
	for w := 0; w < workers; w++ {
		visited += visitedW[w]
		skipped += skippedW[w]
	}
	if ctx != nil && ctx.Err() != nil {
		return nil, 0, 0, ctx.Err()
	}
	b := graph.NewBuilder(len(texts1), len(texts2))
	for i, row := range rows {
		for _, e := range row {
			b.Add(int32(i), e.j, e.w)
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, 0, 0, err
	}
	g = g.NormalizeMinMax()
	return &GraphEntry{
		Name:     req.Name,
		Graph:    g,
		GT:       task.GT,
		Checksum: g.Checksum(),
		Source:   "generate",
		Dataset:  spec.ID,
		Seed:     seed,
		Scale:    scale,
	}, visited, skipped, nil
}

// syncInfo is the cheap per-name sync view of ?fields=sync: just the
// replica-comparison key (version + checksum), no graph stats — computing
// infoOf's density/edge counts for every entry on every anti-entropy scan
// would make the scan's cost scale with graph size instead of graph count.
type syncInfo struct {
	Name     string `json:"name"`
	Version  int64  `json:"version"`
	Checksum string `json:"checksum,omitempty"`
}

func (s *Server) handleGraphList(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("fields") == "sync" {
		entries := s.store.List()
		graphs := make([]syncInfo, len(entries))
		for i, e := range entries {
			graphs[i] = syncInfo{Name: e.Name, Version: e.Version, Checksum: fmt.Sprintf("%016x", e.Checksum)}
		}
		dead := s.store.Tombstones()
		tombs := make([]syncInfo, 0, len(dead))
		for name, v := range dead {
			tombs = append(tombs, syncInfo{Name: name, Version: v})
		}
		sort.Slice(tombs, func(i, j int) bool { return tombs[i].Name < tombs[j].Name })
		writeJSON(w, http.StatusOK, map[string]any{"graphs": graphs, "tombstones": tombs})
		return
	}
	entries := s.store.List()
	infos := make([]graphInfo, len(entries))
	for i, e := range entries {
		infos[i] = infoOf(e)
	}
	writeJSON(w, http.StatusOK, map[string]any{"graphs": infos})
}

func (s *Server) handleGraphGet(w http.ResponseWriter, r *http.Request) {
	e, ok := s.store.Get(r.PathValue("name"))
	if !ok {
		writeError(w, http.StatusNotFound, "no graph %q", r.PathValue("name"))
		return
	}
	if r.URL.Query().Get("format") == "edgelist" {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if err := e.Graph.WriteEdgeList(w); err != nil {
			// Headers are gone; the broken connection is the signal.
			return
		}
		return
	}
	writeJSON(w, http.StatusOK, infoOf(e))
}

func (s *Server) handleGraphDelete(w http.ResponseWriter, r *http.Request) {
	if s.rejectIfDegraded(w) {
		return
	}
	name := r.PathValue("name")
	if sv := r.URL.Query().Get("sync_version"); sv != "" {
		// Replica-sync delete: propagate a peer's tombstone at its
		// version. Conditional like the sync upload — never 404s, since
		// "already gone" is sync success, not an error.
		version, perr := strconv.ParseInt(sv, 10, 64)
		if perr != nil || version < 1 {
			writeError(w, http.StatusBadRequest, "bad sync_version %q", sv)
			return
		}
		changed, serr := s.store.SyncDelete(name, version)
		if serr != nil {
			writeError(w, http.StatusInternalServerError, "%v", serr)
			return
		}
		if changed {
			s.cache.InvalidateGraph(name)
		}
		writeJSON(w, http.StatusOK, map[string]any{"applied": changed, "name": name})
		return
	}
	existed, err := s.store.Delete(name)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if !existed {
		writeError(w, http.StatusNotFound, "no graph %q", name)
		return
	}
	// Eagerly drop the dead versions' cached matchings; their keys can
	// never hit again, so without this they pin capacity until LRU
	// pressure reaches them.
	s.cache.InvalidateGraph(name)
	writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
}

// matchRequest is the body of POST /v1/match.
type matchRequest struct {
	// Graph names a stored graph.
	Graph string `json:"graph"`
	// Algorithms lists matcher names; empty means the paper's eight.
	Algorithms []string `json:"algorithms"`
	// Threshold is the similarity threshold (edges with weight > t are
	// kept); absent means 0.5.
	Threshold *float64 `json:"threshold"`
	// Seed configures the stochastic BAH/QLM matchers; 0 means 1,
	// matching ccer.Match.
	Seed int64 `json:"seed"`
}

type pairJSON struct {
	U int32   `json:"u"`
	V int32   `json:"v"`
	W float64 `json:"w"`
}

type metricsJSON struct {
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
}

type algoResultJSON struct {
	Algorithm string       `json:"algorithm"`
	Cached    bool         `json:"cached"`
	Pairs     []pairJSON   `json:"pairs"`
	Metrics   *metricsJSON `json:"metrics,omitempty"`
}

type matchResponse struct {
	Graph     string           `json:"graph"`
	Version   int64            `json:"version"`
	Threshold float64          `json:"threshold"`
	Seed      int64            `json:"seed"`
	Results   []algoResultJSON `json:"results"`
}

func (s *Server) handleMatch(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req matchRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad match request: %v", err)
		return
	}
	e, ok := s.store.Get(req.Graph)
	if !ok {
		writeError(w, http.StatusNotFound, "no graph %q", req.Graph)
		return
	}
	threshold := 0.5
	if req.Threshold != nil {
		threshold = *req.Threshold
	}
	if threshold < 0 || threshold >= 1 {
		writeError(w, http.StatusBadRequest, "threshold %g outside [0,1)", threshold)
		return
	}
	algorithms := req.Algorithms
	if len(algorithms) == 0 {
		algorithms = core.Names()
	}
	s.matchRequests.Inc()
	ctx, cancel := withTimeout(r.Context(), s.cfg.MatchTimeout)
	defer cancel()
	endMatch := obs.FromContext(r.Context()).StartSpan("match")
	outcomes, err := s.matchBatch(ctx, e, algorithms, threshold, req.Seed)
	endMatch()
	if err != nil {
		s.writeComputeError(w, r, ctx, err)
		return
	}
	resp := matchResponse{
		Graph:     e.Name,
		Version:   e.Version,
		Threshold: threshold,
		Seed:      normSeed(req.Seed),
		Results:   make([]algoResultJSON, len(outcomes)),
	}
	for i, o := range outcomes {
		ar := algoResultJSON{
			Algorithm: o.Algorithm,
			Cached:    o.Cached,
			Pairs:     make([]pairJSON, len(o.Pairs)),
		}
		for k, p := range o.Pairs {
			ar.Pairs[k] = pairJSON{U: p.U, V: p.V, W: p.W}
		}
		if e.GT != nil && e.GT.Len() > 0 {
			m := eval.Evaluate(o.Pairs, e.GT)
			ar.Metrics = &metricsJSON{Precision: m.Precision, Recall: m.Recall, F1: m.F1}
		}
		resp.Results[i] = ar
	}
	writeJSON(w, http.StatusOK, resp)
}

// sweepRequest is the body of POST /v1/sweeps.
type sweepRequest struct {
	// Graph names a stored graph; the sweep is pinned to its current
	// version and fails if the graph is replaced before it runs.
	Graph string `json:"graph"`
	// Algorithms lists matcher names; empty means the paper's eight.
	Algorithms []string `json:"algorithms"`
	// Repeats is the timed executions per threshold; <1 means 1.
	Repeats int `json:"repeats"`
	// Seed configures the stochastic matchers; 0 means 1.
	Seed int64 `json:"seed"`
}

type sweepResultJSON struct {
	Algorithm string  `json:"algorithm"`
	BestT     float64 `json:"best_t"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	F1        float64 `json:"f1"`
	RuntimeMS float64 `json:"runtime_ms"`
}

type sweepJSON struct {
	ID           string            `json:"id"`
	Graph        string            `json:"graph"`
	GraphVersion int64             `json:"graph_version"`
	Algorithms   []string          `json:"algorithms"`
	Repeats      int               `json:"repeats"`
	Seed         int64             `json:"seed"`
	State        JobState          `json:"state"`
	Error        string            `json:"error,omitempty"`
	Created      time.Time         `json:"created"`
	Started      *time.Time        `json:"started,omitempty"`
	Finished     *time.Time        `json:"finished,omitempty"`
	Results      []sweepResultJSON `json:"results,omitempty"`
}

func sweepViewJSON(v JobView) sweepJSON {
	out := sweepJSON{
		ID:           v.ID,
		Graph:        v.Graph,
		GraphVersion: v.GraphVersion,
		Algorithms:   v.Algorithms,
		Repeats:      v.Repeats,
		Seed:         v.Seed,
		State:        v.State,
		Error:        v.Error,
		Created:      v.Created,
	}
	if !v.Started.IsZero() {
		t := v.Started
		out.Started = &t
	}
	if !v.Finished.IsZero() {
		t := v.Finished
		out.Finished = &t
	}
	for _, res := range v.Results {
		out.Results = append(out.Results, sweepResultJSON{
			Algorithm: res.Algorithm,
			BestT:     res.BestT,
			Precision: res.Best.Precision,
			Recall:    res.Best.Recall,
			F1:        res.Best.F1,
			RuntimeMS: float64(res.Runtime) / float64(time.Millisecond),
		})
	}
	return out
}

func (s *Server) handleSweepCreate(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req sweepRequest
	if err := decodeJSON(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad sweep request: %v", err)
		return
	}
	e, ok := s.store.Get(req.Graph)
	if !ok {
		writeError(w, http.StatusNotFound, "no graph %q", req.Graph)
		return
	}
	algorithms := req.Algorithms
	if len(algorithms) == 0 {
		algorithms = core.Names()
	}
	// Resolve eagerly so a typo fails the request, not the job.
	if _, err := algo.AllByName(algorithms, normSeed(req.Seed)); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	repeats := req.Repeats
	if repeats < 1 {
		repeats = 1
	}
	job, err := s.jobs.Submit(&SweepJob{
		Graph:        e.Name,
		GraphVersion: e.Version,
		Algorithms:   algorithms,
		Repeats:      repeats,
		Seed:         normSeed(req.Seed),
	})
	if err != nil {
		if errors.Is(err, ErrQueueFull) {
			s.shedBacklog.Add(1)
			writeShed(w, resilience.ReasonBacklog, time.Second, "%v", err)
			return
		}
		writeShed(w, "shutting_down", time.Second, "%v", err)
		return
	}
	s.sweepsCreated.Inc()
	view, _ := s.jobs.Get(job.ID)
	writeJSON(w, http.StatusAccepted, sweepViewJSON(view))
}

func (s *Server) handleSweepList(w http.ResponseWriter, r *http.Request) {
	views := s.jobs.List()
	out := make([]sweepJSON, len(views))
	for i, v := range views {
		out[i] = sweepViewJSON(v)
	}
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": out})
}

func (s *Server) handleSweepGet(w http.ResponseWriter, r *http.Request) {
	view, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "no sweep %q", r.PathValue("id"))
		return
	}
	writeJSON(w, http.StatusOK, sweepViewJSON(view))
}

func (s *Server) handleSweepCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if !s.jobs.Cancel(id) {
		writeError(w, http.StatusNotFound, "no sweep %q", id)
		return
	}
	view, _ := s.jobs.Get(id)
	writeJSON(w, http.StatusOK, sweepViewJSON(view))
}
