package serve

import (
	"fmt"
	"testing"

	"github.com/ccer-go/ccer/internal/core"
)

func key(graph string, version int64, algo string, t float64, seed int64) CacheKey {
	return CacheKey{Graph: graph, Version: version, Algorithm: algo, Threshold: t, Seed: seed}
}

func pairs(us ...int32) []core.Pair {
	out := make([]core.Pair, len(us))
	for i, u := range us {
		out[i] = core.Pair{U: u, V: u, W: 1}
	}
	return out
}

func TestCacheHitMissAndStats(t *testing.T) {
	c := NewResultCache(4)
	k := key("g", 1, "UMC", 0.5, 1)
	if _, ok := c.Get(k); ok {
		t.Fatal("empty cache hit")
	}
	c.Put(k, pairs(1, 2))
	got, ok := c.Get(k)
	if !ok || len(got) != 2 {
		t.Fatalf("Get = %v, %v", got, ok)
	}
	hits, misses, evictions := c.Stats()
	if hits != 1 || misses != 1 || evictions != 0 {
		t.Fatalf("stats = %d/%d/%d, want 1/1/0", hits, misses, evictions)
	}
}

func TestCacheKeyFields(t *testing.T) {
	c := NewResultCache(16)
	base := key("g", 1, "UMC", 0.5, 1)
	c.Put(base, pairs(1))
	for _, k := range []CacheKey{
		key("h", 1, "UMC", 0.5, 1),  // other graph
		key("g", 2, "UMC", 0.5, 1),  // other version
		key("g", 1, "CNC", 0.5, 1),  // other algorithm
		key("g", 1, "UMC", 0.55, 1), // other threshold
		key("g", 1, "UMC", 0.5, 7),  // other seed
	} {
		if _, ok := c.Get(k); ok {
			t.Fatalf("key %+v unexpectedly hit", k)
		}
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewResultCache(2)
	k1, k2, k3 := key("g", 1, "A", 0, 1), key("g", 1, "B", 0, 1), key("g", 1, "C", 0, 1)
	c.Put(k1, pairs(1))
	c.Put(k2, pairs(2))
	if _, ok := c.Get(k1); !ok { // refresh k1: k2 becomes LRU
		t.Fatal("k1 missing")
	}
	c.Put(k3, pairs(3))
	if _, ok := c.Get(k2); ok {
		t.Fatal("LRU entry k2 survived eviction")
	}
	for _, k := range []CacheKey{k1, k3} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("entry %+v evicted, want kept", k)
		}
	}
	if _, _, evictions := c.Stats(); evictions != 1 {
		t.Fatalf("evictions = %d, want 1", evictions)
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
}

func TestCachePutRefreshesValue(t *testing.T) {
	c := NewResultCache(2)
	k := key("g", 1, "A", 0, 1)
	c.Put(k, pairs(1))
	c.Put(k, pairs(1, 2, 3))
	got, ok := c.Get(k)
	if !ok || len(got) != 3 {
		t.Fatalf("refreshed Get = %v, %v", got, ok)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after double Put of one key", c.Len())
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewResultCache(-1)
	k := key("g", 1, "A", 0, 1)
	c.Put(k, pairs(1))
	if _, ok := c.Get(k); ok {
		t.Fatal("disabled cache returned a hit")
	}
	if c.Len() != 0 {
		t.Fatalf("disabled cache Len = %d", c.Len())
	}
}

func TestCacheManyKeysStayBounded(t *testing.T) {
	c := NewResultCache(8)
	for i := 0; i < 100; i++ {
		c.Put(key("g", 1, fmt.Sprintf("A%d", i), 0, 1), pairs(int32(i)))
	}
	if c.Len() != 8 {
		t.Fatalf("Len = %d, want capacity 8", c.Len())
	}
}
