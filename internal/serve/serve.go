package serve

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ccer-go/ccer/internal/algo"
	"github.com/ccer-go/ccer/internal/core"
	"github.com/ccer-go/ccer/internal/durable"
	"github.com/ccer-go/ccer/internal/eval"
	"github.com/ccer-go/ccer/internal/par"
	"github.com/ccer-go/ccer/internal/simgraph"
)

// Config tunes a Server. The zero value is a working configuration; every
// field has a serviceable default.
type Config struct {
	// CacheSize is the capacity of the match result cache in matchings
	// (one per (graph version, algorithm, threshold, seed)). 0 means 256;
	// negative disables caching.
	CacheSize int
	// JobWorkers is the number of goroutines executing async sweep jobs.
	// 0 means 2.
	JobWorkers int
	// JobQueueDepth is the backlog of queued sweep jobs before POST
	// /v1/sweeps starts returning 503. 0 means 64.
	JobQueueDepth int
	// JobHistory caps how many finished (done/failed/cancelled) sweep
	// jobs stay retrievable via GET /v1/sweeps/{id}; the oldest are
	// evicted beyond it so a resident server's memory stays bounded.
	// 0 means 256; negative retains none.
	JobHistory int
	// MaxGraphNodes caps the node count (|V1|+|V2|) a single graph may
	// declare, whether uploaded (the edge-list header is untrusted
	// input: a few bytes can demand gigabytes of adjacency arrays) or
	// generated. 0 means 1<<21; negative means no cap.
	MaxGraphNodes int
	// Parallelism is the worker count inside one match batch or sweep
	// grid, forwarded to the internal/par pool (0 means all CPUs, 1
	// serial). Responses are deterministic at any setting.
	Parallelism int
	// MaxBodyBytes caps request bodies (edge-list uploads dominate).
	// 0 means 32 MiB.
	MaxBodyBytes int64
	// EnablePprof mounts the net/http/pprof endpoints under
	// /debug/pprof/. Off by default: the profiles expose internals and
	// cost CPU while sampling, so production deployments should gate
	// them behind operator intent (a flag on cmd/erserve).
	EnablePprof bool
	// RepCacheDatasets sizes the cross-build representation caches
	// (TF/TF-IDF spaces, n-gram graphs, embeddings, attribute profiles)
	// in resident datasets: repeated generation for an already-seen
	// (dataset, seed, scale) reuses the per-entity representations with
	// byte-identical output. 0 means 2; negative disables the caches.
	RepCacheDatasets int
	// DataDir, when set, makes the graph store durable: every commit is
	// journaled (fsync'd, CRC-framed) over content-addressed snapshots
	// in this directory, and a restart recovers every committed graph —
	// verified against its stored checksum — plus the spilled
	// representation-cache warm set. Empty keeps today's purely
	// in-memory behavior.
	DataDir string
	// CompactEvery is the background snapshot/compaction period of the
	// durable store (see durable.Config); only meaningful with DataDir.
	CompactEvery time.Duration
	// DataFS overrides the durable store's filesystem; nil means the
	// real one. The crash-injection tests substitute an in-memory
	// filesystem with fault points.
	DataFS durable.FS
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 2
	}
	if c.JobQueueDepth <= 0 {
		c.JobQueueDepth = 64
	}
	if c.JobHistory == 0 {
		c.JobHistory = 256
	}
	if c.MaxGraphNodes == 0 {
		c.MaxGraphNodes = 1 << 21
	}
	if c.MaxGraphNodes < 0 {
		c.MaxGraphNodes = 0 // no cap, the ReadEdgeListMax convention
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.RepCacheDatasets == 0 {
		c.RepCacheDatasets = 2
	}
	return c
}

// counters are the monotonically increasing request-level metrics
// surfaced by /metrics (cache and job counters live with their owners).
type counters struct {
	requests      atomic.Int64
	errors        atomic.Int64
	graphsCreated atomic.Int64
	matchRequests atomic.Int64
	matchingsRun  atomic.Int64
	sweepsCreated atomic.Int64
}

// genStats accumulates similarity-graph generation timing per dataset
// AND per weight family (SB-SYN / SA-SYN / SB-SEM / SA-SEM), plus the
// candidate-filter counters (pairs visited vs. provably skipped by the
// lossless zero-score filters), so the corpus-build fast path's effect
// — and the pruning's skip ratio — is observable on /metrics of a
// resident service.
type genStats struct {
	mu         sync.Mutex
	nanos      map[string]int64
	count      map[string]int64
	famNanos   map[string]int64
	famCount   map[string]int64
	famVisited map[string]int64
	famSkipped map[string]int64
}

func (s *genStats) record(dataset, family string, d time.Duration) {
	s.recordStats(dataset, family, d, 0, 0)
}

func (s *genStats) recordStats(dataset, family string, d time.Duration, visited, skipped int64) {
	s.mu.Lock()
	if s.nanos == nil {
		s.nanos = map[string]int64{}
		s.count = map[string]int64{}
		s.famNanos = map[string]int64{}
		s.famCount = map[string]int64{}
		s.famVisited = map[string]int64{}
		s.famSkipped = map[string]int64{}
	}
	s.nanos[dataset] += int64(d)
	s.count[dataset]++
	s.famNanos[family] += int64(d)
	s.famCount[family]++
	s.famVisited[family] += visited
	s.famSkipped[family] += skipped
	s.mu.Unlock()
}

// snapshot returns copies of the cumulative nanoseconds, build counts
// and candidate counters, keyed by dataset and by family.
func (s *genStats) snapshot() (nanos, count, famNanos, famCount, famVisited, famSkipped map[string]int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	copyMap := func(m map[string]int64) map[string]int64 {
		out := make(map[string]int64, len(m))
		for k, v := range m {
			out[k] = v
		}
		return out
	}
	return copyMap(s.nanos), copyMap(s.count), copyMap(s.famNanos), copyMap(s.famCount),
		copyMap(s.famVisited), copyMap(s.famSkipped)
}

// Server is the resident ER matching service: a graph store, a result
// cache and a sweep job queue behind an HTTP JSON API. Create one with
// New, mount Handler on an http.Server, and Close it on shutdown.
type Server struct {
	cfg     Config
	store   *Store
	cache   *ResultCache
	jobs    *JobQueue
	mux     *http.ServeMux
	stats   counters
	gen     genStats
	reps    *simgraph.RepCaches // nil when disabled
	log     *durable.Log        // nil when DataDir is unset
	started time.Time

	// repReloaded counts representation-cache entries rewarmed from the
	// durable spill at boot.
	repReloaded atomic.Int64
}

// New returns a started server (its job workers are running). The
// caller owns shutdown via Close. With Config.DataDir set, New first
// recovers the committed state from the data directory; a recovery
// error (unreadable directory, snapshot failing its checksum) refuses
// to start rather than serving a silently incomplete store.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		store:   NewStore(),
		cache:   NewResultCache(cfg.CacheSize),
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	if cfg.RepCacheDatasets > 0 {
		s.reps = simgraph.NewRepCaches(cfg.RepCacheDatasets)
	}
	if cfg.DataDir != "" {
		if err := s.openDurable(); err != nil {
			return nil, err
		}
	}
	s.jobs = NewJobQueue(cfg.JobWorkers, cfg.JobQueueDepth, cfg.JobHistory, s.runSweep)
	s.routes()
	return s, nil
}

// Handler returns the root handler: the v1 API plus /healthz and
// /metrics, wrapped with request/error counting.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.stats.requests.Add(1)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		s.mux.ServeHTTP(rec, r)
		if rec.status >= 400 {
			s.stats.errors.Add(1)
		}
	})
}

// Close drains the service: no new jobs are accepted, queued and running
// sweeps are cancelled through their contexts, and the job workers are
// awaited up to ctx's deadline. The durable log, when one is attached,
// is closed last (final manifest, journal segment released) — though
// every acknowledged mutation is already on disk regardless: Close is
// about tidiness, not durability. It does not stop an http.Server
// mounted on Handler; shut that down first (see cmd/erserve).
func (s *Server) Close(ctx context.Context) error {
	err := s.jobs.Close(ctx)
	if cerr := s.log.Close(); err == nil {
		err = cerr
	}
	return err
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// normSeed mirrors ccer.Options: seed 0 means 1, the same default the
// one-shot ccer.Match applies, so cache keys and matchings line up with
// the library's serial path.
func normSeed(seed int64) int64 {
	if seed == 0 {
		return 1
	}
	return seed
}

// stopFunc adapts a context to the polling Stop hook used by the
// internal/par pool and the sweep engine.
func stopFunc(ctx context.Context) func() bool {
	if ctx == nil {
		return nil
	}
	return func() bool { return ctx.Err() != nil }
}

// matchOutcome is one algorithm's matching within a batch.
type matchOutcome struct {
	Algorithm string
	Pairs     []core.Pair
	Cached    bool
}

// matchBatch runs the named algorithms on the stored graph at the
// threshold, serving individual matchings from the result cache where
// possible and fanning the misses over the par pool (the same shape as
// ccer.MatchConcurrent, so pairs are identical to sequential ccer.Match
// calls at the same seed). Fresh matchings are inserted into the cache
// before returning.
func (s *Server) matchBatch(ctx context.Context, e *GraphEntry, algorithms []string, threshold float64, seed int64) ([]matchOutcome, error) {
	seed = normSeed(seed)
	ms, err := algo.AllByName(algorithms, seed)
	if err != nil {
		return nil, err
	}
	out := make([]matchOutcome, len(algorithms))
	todo := make([]int, 0, len(algorithms))
	for i, name := range algorithms {
		key := CacheKey{Graph: e.Name, Version: e.Version, Algorithm: name, Threshold: threshold, Seed: seed}
		if pairs, ok := s.cache.Get(key); ok {
			out[i] = matchOutcome{Algorithm: name, Pairs: pairs, Cached: true}
			continue
		}
		todo = append(todo, i)
	}
	if len(todo) > 0 {
		// Each todo index runs on exactly one worker and every matcher in
		// the module keeps its mutable state local to a Match call, so no
		// cloning is needed (the ccer.MatchConcurrent invariant).
		par.For(len(todo), par.Workers(s.cfg.Parallelism), stopFunc(ctx), func(_, k int) {
			i := todo[k]
			out[i] = matchOutcome{Algorithm: algorithms[i], Pairs: ms[i].Match(e.Graph, threshold)}
		})
		if ctx != nil && ctx.Err() != nil {
			return nil, ctx.Err()
		}
		s.stats.matchingsRun.Add(int64(len(todo)))
		for _, i := range todo {
			key := CacheKey{Graph: e.Name, Version: e.Version, Algorithm: algorithms[i], Threshold: threshold, Seed: seed}
			s.cache.Put(key, out[i].Pairs)
		}
	}
	return out, nil
}

// runSweep executes one queued sweep job on the par pool; ctx cancellation
// (job cancel or server shutdown) trips the sweep's Stop hook between
// Match calls.
func (s *Server) runSweep(ctx context.Context, job *SweepJob) ([]eval.SweepResult, error) {
	e, ok := s.store.Get(job.Graph)
	if !ok {
		return nil, fmt.Errorf("graph %q no longer in store", job.Graph)
	}
	if e.Version != job.GraphVersion {
		return nil, fmt.Errorf("graph %q was replaced (version %d, job wants %d)",
			job.Graph, e.Version, job.GraphVersion)
	}
	ms, err := algo.AllByName(job.Algorithms, normSeed(job.Seed))
	if err != nil {
		return nil, err
	}
	return eval.SweepAllOpts(e.Graph, e.GT, ms, eval.SweepOptions{
		Repeats:     job.Repeats,
		Parallelism: s.cfg.Parallelism,
		Stop:        stopFunc(ctx),
	}), nil
}
