package serve

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ccer-go/ccer/internal/algo"
	"github.com/ccer-go/ccer/internal/core"
	"github.com/ccer-go/ccer/internal/durable"
	"github.com/ccer-go/ccer/internal/eval"
	"github.com/ccer-go/ccer/internal/obs"
	"github.com/ccer-go/ccer/internal/par"
	"github.com/ccer-go/ccer/internal/resilience"
	"github.com/ccer-go/ccer/internal/simgraph"
)

// Config tunes a Server. The zero value is a working configuration; every
// field has a serviceable default.
type Config struct {
	// CacheSize is the capacity of the match result cache in matchings
	// (one per (graph version, algorithm, threshold, seed)). 0 means 256;
	// negative disables caching.
	CacheSize int
	// JobWorkers is the number of goroutines executing async sweep jobs.
	// 0 means 2.
	JobWorkers int
	// JobQueueDepth is the backlog of queued sweep jobs before POST
	// /v1/sweeps starts returning 503. 0 means 64.
	JobQueueDepth int
	// JobHistory caps how many finished (done/failed/cancelled) sweep
	// jobs stay retrievable via GET /v1/sweeps/{id}; the oldest are
	// evicted beyond it so a resident server's memory stays bounded.
	// 0 means 256; negative retains none.
	JobHistory int
	// MaxGraphNodes caps the node count (|V1|+|V2|) a single graph may
	// declare, whether uploaded (the edge-list header is untrusted
	// input: a few bytes can demand gigabytes of adjacency arrays) or
	// generated. 0 means 1<<21; negative means no cap.
	MaxGraphNodes int
	// Parallelism is the worker count inside one match batch or sweep
	// grid, forwarded to the internal/par pool (0 means all CPUs, 1
	// serial). Responses are deterministic at any setting.
	Parallelism int
	// MaxBodyBytes caps request bodies (edge-list uploads dominate).
	// 0 means 32 MiB.
	MaxBodyBytes int64
	// EnablePprof mounts the net/http/pprof endpoints under
	// /debug/pprof/. Off by default: the profiles expose internals and
	// cost CPU while sampling, so production deployments should gate
	// them behind operator intent (a flag on cmd/erserve).
	EnablePprof bool
	// RepCacheDatasets sizes the cross-build representation caches
	// (TF/TF-IDF spaces, n-gram graphs, embeddings, attribute profiles)
	// in resident datasets: repeated generation for an already-seen
	// (dataset, seed, scale) reuses the per-entity representations with
	// byte-identical output. 0 means 2; negative disables the caches.
	RepCacheDatasets int
	// DataDir, when set, makes the graph store durable: every commit is
	// journaled (fsync'd, CRC-framed) over content-addressed snapshots
	// in this directory, and a restart recovers every committed graph —
	// verified against its stored checksum — plus the spilled
	// representation-cache warm set. Empty keeps today's purely
	// in-memory behavior.
	DataDir string
	// CompactEvery is the background snapshot/compaction period of the
	// durable store (see durable.Config); only meaningful with DataDir.
	CompactEvery time.Duration
	// DataFS overrides the durable store's filesystem; nil means the
	// real one. The crash-injection tests substitute an in-memory
	// filesystem with fault points.
	DataFS durable.FS
	// TraceSlow is the duration above which a finished request is logged
	// as a structured JSON line with its per-stage span timings. 0
	// disables slow-request logging.
	TraceSlow time.Duration
	// AccessLog emits one structured JSON line per finished request
	// (without span details; those stay in the trace ring).
	AccessLog bool
	// TraceRing is how many recent request traces GET /v1/traces serves.
	// 0 means 64; negative retains none.
	TraceRing int
	// ObsLog receives the slow-request and access log lines; nil means
	// os.Stderr.
	ObsLog io.Writer
	// DisableObs turns the metrics registry and request tracer off
	// entirely (every instrument becomes a nil no-op). It exists to
	// measure instrumentation overhead; a disabled server still serves
	// /metrics, but with zeroed request counters and no Prometheus view.
	DisableObs bool
	// MatchTimeout bounds one POST /v1/match request end to end: the
	// handler derives a context.WithTimeout child and the compute layer
	// honors it, so an overrunning matching answers 504 (reason
	// "deadline") instead of holding the connection forever. 0 means
	// 30s; negative disables the deadline.
	MatchTimeout time.Duration
	// GenerateTimeout bounds one POST /v1/graphs generation the same
	// way. 0 means 2m; negative disables.
	GenerateTimeout time.Duration
	// SweepTimeout bounds one async sweep job execution; an overrunning
	// sweep fails with deadline exceeded rather than pinning a worker
	// forever. 0 means 10m; negative disables.
	SweepTimeout time.Duration
	// AdmissionSlots caps how many heavy computations (match leads,
	// generations, sweep executions) run at once. Excess requests wait
	// in a bounded two-priority queue — interactive match traffic is
	// granted freed slots before bulk generation/sweep work — and are
	// shed with 503 beyond its bounds. 0 means GOMAXPROCS; negative
	// disables admission control entirely.
	AdmissionSlots int
	// AdmissionDepth is the per-priority-class queue depth beyond which
	// requests are shed immediately (503, reason "queue_full").
	// 0 or negative means 128.
	AdmissionDepth int
	// AdmissionBudget is the longest a synchronous request waits in the
	// admission queue before being shed (503, reason "queue_timeout");
	// async sweep jobs wait on their context alone. 0 or negative means
	// 2s.
	AdmissionBudget time.Duration
	// Faults is the chaos-test fault-point registry consulted around
	// the heavy computations (points "match", "generate", "sweep").
	// nil — the production configuration — injects nothing.
	Faults *resilience.Faults
}

func (c Config) withDefaults() Config {
	if c.CacheSize == 0 {
		c.CacheSize = 256
	}
	if c.JobWorkers <= 0 {
		c.JobWorkers = 2
	}
	if c.JobQueueDepth <= 0 {
		c.JobQueueDepth = 64
	}
	if c.JobHistory == 0 {
		c.JobHistory = 256
	}
	if c.MaxGraphNodes == 0 {
		c.MaxGraphNodes = 1 << 21
	}
	if c.MaxGraphNodes < 0 {
		c.MaxGraphNodes = 0 // no cap, the ReadEdgeListMax convention
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.RepCacheDatasets == 0 {
		c.RepCacheDatasets = 2
	}
	if c.TraceRing == 0 {
		c.TraceRing = 64
	}
	if c.MatchTimeout == 0 {
		c.MatchTimeout = 30 * time.Second
	}
	if c.GenerateTimeout == 0 {
		c.GenerateTimeout = 2 * time.Minute
	}
	if c.SweepTimeout == 0 {
		c.SweepTimeout = 10 * time.Minute
	}
	if c.AdmissionSlots == 0 {
		c.AdmissionSlots = runtime.GOMAXPROCS(0)
	}
	if c.AdmissionDepth <= 0 {
		c.AdmissionDepth = 128
	}
	if c.AdmissionBudget <= 0 {
		c.AdmissionBudget = 2 * time.Second
	}
	return c
}

// genStats accumulates similarity-graph generation timing per dataset
// AND per weight family (SB-SYN / SA-SYN / SB-SEM / SA-SEM), plus the
// candidate-filter counters (pairs visited vs. provably skipped by the
// lossless zero-score filters), so the corpus-build fast path's effect
// — and the pruning's skip ratio — is observable on /metrics of a
// resident service.
type genStats struct {
	mu         sync.Mutex
	nanos      map[string]int64
	count      map[string]int64
	famNanos   map[string]int64
	famCount   map[string]int64
	famVisited map[string]int64
	famSkipped map[string]int64
}

func (s *genStats) record(dataset, family string, d time.Duration) {
	s.recordStats(dataset, family, d, 0, 0)
}

func (s *genStats) recordStats(dataset, family string, d time.Duration, visited, skipped int64) {
	s.mu.Lock()
	if s.nanos == nil {
		s.nanos = map[string]int64{}
		s.count = map[string]int64{}
		s.famNanos = map[string]int64{}
		s.famCount = map[string]int64{}
		s.famVisited = map[string]int64{}
		s.famSkipped = map[string]int64{}
	}
	s.nanos[dataset] += int64(d)
	s.count[dataset]++
	s.famNanos[family] += int64(d)
	s.famCount[family]++
	s.famVisited[family] += visited
	s.famSkipped[family] += skipped
	s.mu.Unlock()
}

// snapshot returns copies of the cumulative nanoseconds, build counts
// and candidate counters, keyed by dataset and by family.
func (s *genStats) snapshot() (nanos, count, famNanos, famCount, famVisited, famSkipped map[string]int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	copyMap := func(m map[string]int64) map[string]int64 {
		out := make(map[string]int64, len(m))
		for k, v := range m {
			out[k] = v
		}
		return out
	}
	return copyMap(s.nanos), copyMap(s.count), copyMap(s.famNanos), copyMap(s.famCount),
		copyMap(s.famVisited), copyMap(s.famSkipped)
}

// Server is the resident ER matching service: a graph store, a result
// cache and a sweep job queue behind an HTTP JSON API. Create one with
// New, mount Handler on an http.Server, and Close it on shutdown.
type Server struct {
	cfg     Config
	store   *Store
	cache   *ResultCache
	jobs    *JobQueue
	mux     *http.ServeMux
	gen     genStats
	reps    *simgraph.RepCaches // nil when disabled
	log     *durable.Log        // nil when DataDir is unset
	started time.Time

	// obs is the metrics registry behind both /metrics views; nil (with
	// Config.DisableObs) makes every handle below an inert no-op. tracer
	// mints per-request traces for GET /v1/traces and the slow-request
	// log.
	obs    *obs.Registry
	tracer *obs.Tracer

	// Request-level counters and latency histograms (registry-owned;
	// cache, job, durable and generation counters stay with their owners
	// and reach the registry through reader funcs — see initObs).
	requests      *obs.Counter
	errors        *obs.Counter
	graphsCreated *obs.Counter
	matchRequests *obs.Counter
	matchingsRun  *obs.Counter
	sweepsCreated *obs.Counter
	classReqs     *obs.CounterVec   // by status class (2xx/3xx/4xx/5xx)
	routeReqs     *obs.CounterVec   // by mux route pattern
	httpDur       *obs.Histogram    // request wall time
	matchDur      *obs.HistogramVec // one Match call, by algorithm
	genDur        *obs.HistogramVec // one generation, by family
	sweepDur      *obs.Histogram    // one sweep job execution

	// repReloaded counts representation-cache entries rewarmed from the
	// durable spill at boot.
	repReloaded atomic.Int64

	// The overload-protection layer (internal/resilience): a bounded
	// two-priority admission queue over the heavy computations, plus
	// singleflight coalescing of identical in-flight matchings and
	// generations. limiter is nil when admission is disabled
	// (AdmissionSlots < 0) — the nil limiter admits everything.
	limiter      *resilience.Limiter
	matchFlights resilience.Group[CacheKey, []core.Pair]
	genFlights   resilience.Group[string, *genReply]

	// timeoutsByRoute counts requests that hit their deadline (504),
	// by mux route.
	timeoutsByRoute *obs.CounterVec

	// shedDegraded and shedBacklog count serving-layer sheds the
	// limiter never sees: mutations refused while the durable log is
	// latched failed, and sweep submissions refused at backlog
	// capacity.
	shedDegraded atomic.Int64
	shedBacklog  atomic.Int64

	// draining flips on BeginDrain: /readyz answers 503 from then on so
	// routers and load balancers stop sending traffic, while in-flight
	// and keep-alive requests keep being served until the HTTP server's
	// graceful shutdown completes. (/healthz stays liveness-only.)
	draining atomic.Bool

	// disconnects counts requests answered 499 — the client hung up
	// mid-request. Kept separate from the 4xx/5xx classes so a router
	// cancelling its hedged duplicate (which lands here) never pollutes
	// this backend's error rates or trips upstream circuit breakers.
	disconnects *obs.Counter
}

// New returns a started server (its job workers are running). The
// caller owns shutdown via Close. With Config.DataDir set, New first
// recovers the committed state from the data directory; a recovery
// error (unreadable directory, snapshot failing its checksum) refuses
// to start rather than serving a silently incomplete store.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		store:   NewStore(),
		cache:   NewResultCache(cfg.CacheSize),
		mux:     http.NewServeMux(),
		started: time.Now(),
	}
	if cfg.RepCacheDatasets > 0 {
		s.reps = simgraph.NewRepCaches(cfg.RepCacheDatasets)
	}
	if cfg.AdmissionSlots > 0 {
		s.limiter = resilience.NewLimiter(cfg.AdmissionSlots, cfg.AdmissionDepth)
	}
	s.initObs()
	if cfg.DataDir != "" {
		if err := s.openDurable(); err != nil {
			return nil, err
		}
	}
	s.jobs = NewJobQueue(cfg.JobWorkers, cfg.JobQueueDepth, cfg.JobHistory, s.runSweep)
	s.routes()
	return s, nil
}

// Handler returns the root handler: the v1 API plus /healthz and
// /metrics, wrapped with request counting, per-route/status-class
// counters, the request-duration histogram, and tracing (each request
// gets an X-Request-Id and a span trace carried in its context).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.requests.Inc()
		start := time.Now()
		// Resolve the route pattern before dispatch: the middleware sits
		// outside the mux, so r.Pattern is not yet populated here.
		route := "unmatched"
		if _, pattern := s.mux.Handler(r); pattern != "" {
			route = pattern
		}
		trace := s.tracer.Start(r.Method + " " + r.URL.Path)
		if trace != nil {
			w.Header().Set("X-Request-Id", trace.ID())
			r = r.WithContext(obs.NewContext(r.Context(), trace))
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		s.mux.ServeHTTP(rec, r)
		if rec.status >= 400 {
			s.errors.Inc()
		}
		if rec.status == 499 {
			s.disconnects.Inc()
		}
		if rec.status == http.StatusGatewayTimeout {
			s.timeoutsByRoute.With(route).Inc()
		}
		s.routeReqs.With(route).Inc()
		s.classReqs.With(statusClass(rec.status)).Inc()
		s.httpDur.Since(start)
		s.tracer.Finish(trace, rec.status)
	})
}

// statusClass buckets an HTTP status for the per-class counters.
func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	default:
		return "2xx"
	}
}

// BeginDrain marks the server not-ready: GET /readyz answers 503 with
// reason "draining" from now on, so health-checking routers and load
// balancers take the node out of rotation while the HTTP server's
// graceful shutdown lets in-flight requests finish. Call it when the
// shutdown signal arrives, before http.Server.Shutdown (see
// cmd/erserve). Liveness (/healthz) is unaffected.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
}

// Draining reports whether BeginDrain was called.
func (s *Server) Draining() bool {
	return s.draining.Load()
}

// Close drains the service: no new jobs are accepted, queued and running
// sweeps are cancelled through their contexts, and the job workers are
// awaited up to ctx's deadline. The durable log, when one is attached,
// is closed last (final manifest, journal segment released) — though
// every acknowledged mutation is already on disk regardless: Close is
// about tidiness, not durability. It does not stop an http.Server
// mounted on Handler; shut that down first (see cmd/erserve).
func (s *Server) Close(ctx context.Context) error {
	err := s.jobs.Close(ctx)
	if cerr := s.log.Close(); err == nil {
		err = cerr
	}
	return err
}

type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// normSeed mirrors ccer.Options: seed 0 means 1, the same default the
// one-shot ccer.Match applies, so cache keys and matchings line up with
// the library's serial path.
func normSeed(seed int64) int64 {
	if seed == 0 {
		return 1
	}
	return seed
}

// stopFunc adapts a context to the polling Stop hook used by the
// internal/par pool and the sweep engine.
func stopFunc(ctx context.Context) func() bool {
	if ctx == nil {
		return nil
	}
	return func() bool { return ctx.Err() != nil }
}

// withTimeout derives the per-request deadline context; d <= 0 adds no
// deadline beyond what ctx already carries.
func withTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return ctx, func() {}
	}
	return context.WithTimeout(ctx, d)
}

// shedCounts merges the limiter's shed counters with the serving-layer
// reasons it never sees. Every reason is always present (zero before any
// shed), so the shed_total series exist from the first scrape.
func (s *Server) shedCounts() map[string]int64 {
	m := s.limiter.ShedCounts()
	m[resilience.ReasonDegraded] = s.shedDegraded.Load()
	m[resilience.ReasonBacklog] = s.shedBacklog.Load()
	return m
}

// coalesceHits is the total number of requests served by attaching to an
// identical in-flight computation instead of running their own.
func (s *Server) coalesceHits() int64 {
	return s.matchFlights.Hits() + s.genFlights.Hits()
}

// matchOutcome is one algorithm's matching within a batch.
type matchOutcome struct {
	Algorithm string
	Pairs     []core.Pair
	Cached    bool
}

// matchBatch runs the named algorithms on the stored graph at the
// threshold, serving individual matchings from the result cache where
// possible and fanning the misses over the par pool (the same shape as
// ccer.MatchConcurrent, so pairs are identical to sequential ccer.Match
// calls at the same seed). Fresh matchings are inserted into the cache
// before returning.
func (s *Server) matchBatch(ctx context.Context, e *GraphEntry, algorithms []string, threshold float64, seed int64) ([]matchOutcome, error) {
	seed = normSeed(seed)
	ms, err := algo.AllByName(algorithms, seed)
	if err != nil {
		return nil, err
	}
	out := make([]matchOutcome, len(algorithms))
	todo := make([]int, 0, len(algorithms))
	for i, name := range algorithms {
		key := CacheKey{Graph: e.Name, Version: e.Version, Algorithm: name, Threshold: threshold, Seed: seed}
		if pairs, ok := s.cache.Get(key); ok {
			out[i] = matchOutcome{Algorithm: name, Pairs: pairs, Cached: true}
			continue
		}
		todo = append(todo, i)
	}
	if len(todo) > 0 {
		if ctx == nil {
			ctx = context.Background()
		}
		trace := obs.FromContext(ctx)
		errs := make([]error, len(todo))
		// Each todo index runs on exactly one worker and every matcher in
		// the module keeps its mutable state local to a Match call, so no
		// cloning is needed (the ccer.MatchConcurrent invariant). Every
		// miss goes through the singleflight group: identical concurrent
		// requests — same (graph version, algorithm, threshold, seed) —
		// share one execution, and only the flight leader occupies an
		// admission slot. Matchings are deterministic at a fixed seed,
		// which is what makes sharing byte-safe.
		par.For(len(todo), par.Workers(s.cfg.Parallelism), stopFunc(ctx), func(_, k int) {
			i := todo[k]
			name := algorithms[i]
			key := CacheKey{Graph: e.Name, Version: e.Version, Algorithm: name, Threshold: threshold, Seed: seed}
			pairs, _, err := s.matchFlights.Do(ctx, key, func(fctx context.Context) ([]core.Pair, error) {
				// fctx is the flight's context, not this request's: it
				// stays live while any coalesced caller still wants the
				// answer, so one caller timing out does not abort the
				// computation for the rest.
				if err := s.limiter.Acquire(fctx, resilience.Interactive, s.cfg.AdmissionBudget); err != nil {
					return nil, err
				}
				defer s.limiter.Release()
				if err := s.cfg.Faults.Inject(fctx, "match"); err != nil {
					return nil, err
				}
				endSpan := trace.StartSpanUnder("match", "match/"+name)
				t0 := time.Now()
				pairs := ms[i].Match(e.Graph, threshold)
				s.matchDur.With(name).Since(t0)
				endSpan()
				s.matchingsRun.Inc()
				s.cache.Put(key, pairs)
				return pairs, nil
			})
			if err != nil {
				errs[k] = err
				return
			}
			out[i] = matchOutcome{Algorithm: name, Pairs: pairs}
		})
		if err := firstComputeErr(errs); err != nil {
			return nil, err
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
	}
	return out, nil
}

// firstComputeErr picks the error a partially failed batch reports: a
// shed wins (its 503 tells the client to back off and retry — the
// already-computed matchings are cached, so the retry is cheap), then
// whatever failure came first.
func firstComputeErr(errs []error) error {
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		var shed *resilience.ShedError
		if errors.As(err, &shed) {
			return err
		}
		if first == nil {
			first = err
		}
	}
	return first
}

// runSweep executes one queued sweep job on the par pool; ctx cancellation
// (job cancel or server shutdown) trips the sweep's Stop hook between
// Match calls, and SweepTimeout bounds the execution the same way.
func (s *Server) runSweep(ctx context.Context, job *SweepJob) ([]eval.SweepResult, error) {
	ctx, cancel := withTimeout(ctx, s.cfg.SweepTimeout)
	defer cancel()
	e, ok := s.store.Get(job.Graph)
	if !ok {
		return nil, fmt.Errorf("graph %q no longer in store", job.Graph)
	}
	if e.Version != job.GraphVersion {
		return nil, fmt.Errorf("graph %q was replaced (version %d, job wants %d)",
			job.Graph, e.Version, job.GraphVersion)
	}
	ms, err := algo.AllByName(job.Algorithms, normSeed(job.Seed))
	if err != nil {
		return nil, err
	}
	// Sweeps are bulk-class work and wait patiently (no queue budget —
	// the backlog is already bounded by JobQueueDepth), yielding freed
	// slots to interactive match traffic.
	if err := s.limiter.Acquire(ctx, resilience.Bulk, 0); err != nil {
		return nil, err
	}
	defer s.limiter.Release()
	if err := s.cfg.Faults.Inject(ctx, "sweep"); err != nil {
		return nil, err
	}
	start := time.Now()
	results := eval.SweepAllOpts(e.Graph, e.GT, ms, eval.SweepOptions{
		Repeats:     job.Repeats,
		Parallelism: s.cfg.Parallelism,
		Stop:        stopFunc(ctx),
	})
	s.sweepDur.Since(start)
	if err := ctx.Err(); err != nil {
		// The Stop hook tripped mid-grid; partial results would be
		// indistinguishable from a finished sweep, so fail the job.
		return nil, err
	}
	return results, nil
}
