package serve

import (
	"container/list"
	"sync"

	"github.com/ccer-go/ccer/internal/core"
)

// CacheKey identifies one cached matching. Version (not just the graph
// name) is part of the key so overwriting a name silently invalidates
// all of its cached results, and Seed distinguishes runs of the
// stochastic matchers (BAH, QLM).
type CacheKey struct {
	Graph     string
	Version   int64
	Algorithm string
	Threshold float64
	Seed      int64
}

// ResultCache is a goroutine-safe LRU cache of matchings. A capacity
// below 1 disables caching (every Get misses, Put is a no-op), which
// keeps the handler code free of nil checks.
type ResultCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	items    map[CacheKey]*list.Element

	hits, misses, evictions int64
}

type cacheItem struct {
	key   CacheKey
	pairs []core.Pair
}

// NewResultCache returns a cache holding up to capacity matchings.
func NewResultCache(capacity int) *ResultCache {
	return &ResultCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[CacheKey]*list.Element),
	}
}

// Get returns the cached pairs for k, marking them most recently used.
// Callers must not modify the returned slice.
func (c *ResultCache) Get(k CacheKey) ([]core.Pair, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[k]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheItem).pairs, true
}

// Put stores the pairs under k, evicting the least recently used entry
// when the cache is full. Storing an existing key refreshes its value
// and recency.
func (c *ResultCache) Put(k CacheKey, pairs []core.Pair) {
	if c.capacity < 1 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[k]; ok {
		el.Value.(*cacheItem).pairs = pairs
		c.order.MoveToFront(el)
		return
	}
	for len(c.items) >= c.capacity {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.items, last.Value.(*cacheItem).key)
		c.evictions++
	}
	c.items[k] = c.order.PushFront(&cacheItem{key: k, pairs: pairs})
}

// InvalidateGraph eagerly drops every cached matching of the named
// graph, whatever version it was computed against, returning how many
// entries were evicted. DELETE /v1/graphs calls it so the matchings of
// dead versions stop pinning cache capacity until LRU pressure happens
// to reach them (their keys can never be requested again: the version
// embedded in the key is retired with the graph).
func (c *ResultCache) InvalidateGraph(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for k, el := range c.items {
		if k.Graph == name {
			c.order.Remove(el)
			delete(c.items, k)
			c.evictions++
			n++
		}
	}
	return n
}

// Len returns the number of cached matchings.
func (c *ResultCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Capacity returns the configured maximum size.
func (c *ResultCache) Capacity() int { return c.capacity }

// Stats returns the lifetime hit, miss and eviction counts.
func (c *ResultCache) Stats() (hits, misses, evictions int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.evictions
}
