package serve

import (
	"fmt"

	"github.com/ccer-go/ccer/internal/durable"
	"github.com/ccer-go/ccer/internal/simgraph"
)

// logPersister adapts the durable log to the Store's Persister hook:
// every store mutation commits to the journal (snapshot files first)
// before it becomes visible.
type logPersister struct{ log *durable.Log }

func (p logPersister) PersistPut(e *GraphEntry) error {
	return p.log.PutGraph(durable.GraphRecord{
		Name:     e.Name,
		Version:  e.Version,
		Checksum: e.Checksum,
		Source:   e.Source,
		Dataset:  e.Dataset,
		Seed:     e.Seed,
		Scale:    e.Scale,
		Created:  e.Created,
	}, e.Graph, e.GT)
}

func (p logPersister) PersistDelete(name string) error {
	return p.log.DeleteGraph(name)
}

// openDurable mounts the data directory, preloads the store with the
// recovered committed state (every graph already verified against its
// record checksum by durable.Open), rewarms the representation caches
// from the spilled inputs, and attaches the persister so subsequent
// mutations are journaled.
func (s *Server) openDurable() error {
	log, rec, err := durable.Open(durable.Config{
		Dir:          s.cfg.DataDir,
		FS:           s.cfg.DataFS,
		CompactEvery: s.cfg.CompactEvery,
		Obs:          s.obs,
	})
	if err != nil {
		return fmt.Errorf("serve: open data dir %s: %v", s.cfg.DataDir, err)
	}
	entries := make([]*GraphEntry, 0, len(rec.Graphs))
	for _, rg := range rec.Graphs {
		entries = append(entries, &GraphEntry{
			Name:     rg.Record.Name,
			Version:  rg.Record.Version,
			Checksum: rg.Record.Checksum,
			Graph:    rg.Graph,
			GT:       rg.GT,
			Source:   rg.Record.Source,
			Dataset:  rg.Record.Dataset,
			Seed:     rg.Record.Seed,
			Scale:    rg.Record.Scale,
			Created:  rg.Record.Created,
		})
	}
	s.store.Load(entries)
	if s.reps != nil {
		for _, rp := range rec.Reps {
			// The spilled inputs are content-addressed: a key mismatch
			// means the file does not hold what the record promised, and
			// a cache entry rebuilt from it would be wrong, not just
			// cold. Skip it.
			if simgraph.AttrKey(rp.Texts1, rp.Texts2) != rp.Key {
				continue
			}
			if s.reps.WarmAttrs(rp.Texts1, rp.Texts2) {
				s.repReloaded.Add(1)
			}
		}
	}
	s.store.SetPersister(logPersister{log: log})
	s.log = log
	return nil
}

// persistWarmReps spills representation-cache entries that became warm
// during a generation request. Spill keys already journaled are
// deduplicated by the log. Best-effort: the graphs themselves committed
// through the store's persister; losing cache warmth on a failure here
// costs rebuild time after the next restart, not correctness — so a
// generation response is never failed over it.
func (s *Server) persistWarmReps() {
	if s.log == nil || s.reps == nil {
		return
	}
	for _, w := range s.reps.WarmAttrEntries() {
		_ = s.log.WarmRep(w.Key, w.Texts1, w.Texts2)
	}
}
