// Handler tests live in an external test package so they can exercise
// the service against the public ccer API (the root package imports
// internal/serve, so the internal package itself must not import it
// back; an external test package breaks the cycle).
package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"github.com/ccer-go/ccer"
	"github.com/ccer-go/ccer/internal/graph"
	"github.com/ccer-go/ccer/internal/serve"
)

func newTestServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server) {
	t.Helper()
	baseline := runtime.NumGoroutine()
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Close(ctx); err != nil {
			t.Errorf("server close: %v", err)
		}
		checkGoroutines(t, baseline)
	})
	return srv, ts
}

// checkGoroutines is the goroutine-leak regression check that runs after
// every handler test: once the server and its job workers are down, the
// goroutine count must return to (about) where it started. Anything
// still running — a leaked flight leader, a parked admission waiter, a
// worker that missed its cancel — fails the test. The small slack covers
// runtime helpers and the http client's idle-connection reaper.
func checkGoroutines(t *testing.T, baseline int) {
	t.Helper()
	http.DefaultClient.CloseIdleConnections()
	deadline := time.Now().Add(5 * time.Second)
	var n int
	for {
		n = runtime.NumGoroutine()
		if n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	t.Errorf("goroutine leak: %d running, baseline %d\n%s", n, baseline, buf)
}

// doJSON posts body (marshalled) to url and decodes the response into out.
func doJSON(t *testing.T, method, url string, body, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(raw)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %s %s response %q: %v", method, url, raw, err)
		}
	}
	return resp.StatusCode
}

type graphInfoJSON struct {
	Name           string  `json:"name"`
	Version        int64   `json:"version"`
	Checksum       string  `json:"checksum"`
	N1             int     `json:"n1"`
	N2             int     `json:"n2"`
	Edges          int     `json:"edges"`
	HasGroundTruth bool    `json:"has_ground_truth"`
	Source         string  `json:"source"`
	Dataset        string  `json:"dataset"`
	Seed           int64   `json:"seed"`
	Scale          float64 `json:"scale"`
}

type matchRespJSON struct {
	Graph     string  `json:"graph"`
	Version   int64   `json:"version"`
	Threshold float64 `json:"threshold"`
	Seed      int64   `json:"seed"`
	Results   []struct {
		Algorithm string `json:"algorithm"`
		Cached    bool   `json:"cached"`
		Pairs     []struct {
			U int32   `json:"u"`
			V int32   `json:"v"`
			W float64 `json:"w"`
		} `json:"pairs"`
		Metrics *struct {
			Precision float64 `json:"precision"`
			Recall    float64 `json:"recall"`
			F1        float64 `json:"f1"`
		} `json:"metrics"`
	} `json:"results"`
}

type sweepRespJSON struct {
	ID      string `json:"id"`
	State   string `json:"state"`
	Error   string `json:"error"`
	Results []struct {
		Algorithm string  `json:"algorithm"`
		BestT     float64 `json:"best_t"`
		F1        float64 `json:"f1"`
	} `json:"results"`
}

type metricsJSON struct {
	RequestsTotal      int64            `json:"requests_total"`
	GraphsStored       int              `json:"graphs_stored"`
	MatchRequestsTotal int64            `json:"match_requests_total"`
	CacheHitsTotal     int64            `json:"cache_hits_total"`
	CacheMissesTotal   int64            `json:"cache_misses_total"`
	CacheHitRate       float64          `json:"cache_hit_rate"`
	JobsLive           int              `json:"jobs_live"`
	JobsDone           int              `json:"jobs_done"`
	GenerateNSTotal    map[string]int64 `json:"generate_ns_total"`
	GeneratesTotal     map[string]int64 `json:"generates_total"`
}

// generateD2 stores the reference D2 graph under the given name.
func generateD2(t *testing.T, base, name string) graphInfoJSON {
	t.Helper()
	var info graphInfoJSON
	code := doJSON(t, http.MethodPost, base+"/v1/graphs", map[string]any{
		"name": name, "dataset": "D2", "seed": 42, "scale": 0.02,
	}, &info)
	if code != http.StatusCreated {
		t.Fatalf("generate: status %d", code)
	}
	if info.Edges == 0 || !info.HasGroundTruth || info.Source != "generate" {
		t.Fatalf("generate info = %+v", info)
	}
	return info
}

// fetchGraph pulls the stored graph back through the edge-list endpoint,
// yielding the exact *graph.Bipartite the server matches on.
func fetchGraph(t *testing.T, base, name string) *graph.Bipartite {
	t.Helper()
	resp, err := http.Get(base + "/v1/graphs/" + name + "?format=edgelist")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("edgelist fetch: status %d", resp.StatusCode)
	}
	g, err := graph.ReadEdgeList(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestMatchBatchIdenticalToSerial is the acceptance criterion: a POST
// /v1/match batch over all eight algorithms on a generated D2 graph
// returns exactly the pairs of serial ccer.Match at the same seed.
func TestMatchBatchIdenticalToSerial(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	generateD2(t, ts.URL, "d2")
	g := fetchGraph(t, ts.URL, "d2")

	const threshold = 0.5
	var resp matchRespJSON
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/match", map[string]any{
		"graph": "d2", "algorithms": ccer.Algorithms(), "threshold": threshold,
	}, &resp)
	if code != http.StatusOK {
		t.Fatalf("match: status %d", code)
	}
	if len(resp.Results) != len(ccer.Algorithms()) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(ccer.Algorithms()))
	}
	for i, alg := range ccer.Algorithms() {
		want, err := ccer.Match(g, alg, threshold)
		if err != nil {
			t.Fatal(err)
		}
		got := resp.Results[i]
		if got.Algorithm != alg {
			t.Fatalf("result %d is %s, want %s", i, got.Algorithm, alg)
		}
		if len(got.Pairs) != len(want) {
			t.Fatalf("%s: %d pairs, want %d", alg, len(got.Pairs), len(want))
		}
		for k, p := range want {
			q := got.Pairs[k]
			if q.U != p.U || q.V != p.V || q.W != p.W {
				t.Fatalf("%s pair %d = (%d,%d,%v), want (%d,%d,%v)",
					alg, k, q.U, q.V, q.W, p.U, p.V, p.W)
			}
		}
		if got.Metrics == nil {
			t.Fatalf("%s: no metrics despite ground truth", alg)
		}
	}
}

func TestMatchCacheHitAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	generateD2(t, ts.URL, "d2")
	req := map[string]any{"graph": "d2", "algorithms": []string{"UMC", "CNC"}, "threshold": 0.5}

	var first, second matchRespJSON
	doJSON(t, http.MethodPost, ts.URL+"/v1/match", req, &first)
	doJSON(t, http.MethodPost, ts.URL+"/v1/match", req, &second)
	for i := range first.Results {
		if first.Results[i].Cached {
			t.Fatalf("first request already cached: %+v", first.Results[i])
		}
		if !second.Results[i].Cached {
			t.Fatalf("repeat request not cached: %+v", second.Results[i])
		}
		if len(first.Results[i].Pairs) != len(second.Results[i].Pairs) {
			t.Fatal("cached pairs differ from computed pairs")
		}
	}

	var m metricsJSON
	doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &m)
	if m.CacheHitsTotal != 2 || m.CacheMissesTotal != 2 {
		t.Fatalf("cache counters = %d hits / %d misses, want 2/2", m.CacheHitsTotal, m.CacheMissesTotal)
	}
	if m.CacheHitRate != 0.5 {
		t.Fatalf("hit rate = %v, want 0.5", m.CacheHitRate)
	}
	if m.GraphsStored != 1 || m.MatchRequestsTotal != 2 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestGraphOverwriteInvalidatesCache(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	generateD2(t, ts.URL, "d2")
	req := map[string]any{"graph": "d2", "algorithms": []string{"UMC"}, "threshold": 0.5}
	var resp matchRespJSON
	doJSON(t, http.MethodPost, ts.URL+"/v1/match", req, &resp)

	// Same name, new content: the version bump must miss the cache.
	var info graphInfoJSON
	doJSON(t, http.MethodPost, ts.URL+"/v1/graphs", map[string]any{
		"name": "d2", "dataset": "D2", "seed": 7, "scale": 0.02,
	}, &info)
	doJSON(t, http.MethodPost, ts.URL+"/v1/match", req, &resp)
	if resp.Results[0].Cached {
		t.Fatal("match on replaced graph served from stale cache")
	}
	if resp.Version != info.Version {
		t.Fatalf("match version %d, want %d", resp.Version, info.Version)
	}
}

func TestSweepJobLifecycle(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	generateD2(t, ts.URL, "d2")
	g := fetchGraph(t, ts.URL, "d2")

	var sweep sweepRespJSON
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", map[string]any{
		"graph": "d2", "algorithms": []string{"UMC", "CNC"},
	}, &sweep)
	if code != http.StatusAccepted {
		t.Fatalf("sweep create: status %d", code)
	}
	if sweep.ID == "" {
		t.Fatal("no job id")
	}

	deadline := time.Now().Add(30 * time.Second)
	for sweep.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("sweep stuck in %q (%s)", sweep.State, sweep.Error)
		}
		time.Sleep(5 * time.Millisecond)
		if code := doJSON(t, http.MethodGet, ts.URL+"/v1/sweeps/"+sweep.ID, nil, &sweep); code != http.StatusOK {
			t.Fatalf("sweep get: status %d", code)
		}
	}

	// The async job must agree with the serial library sweep. The server
	// generated the task at (D2, seed 42, scale 0.02); regenerating it
	// client-side recovers the same ground truth.
	task, err := ccer.GenerateDataset("D2", 42, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ccer.SweepAll(g, task.GT, []string{"UMC", "CNC"}, ccer.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Results) != 2 {
		t.Fatalf("results = %+v", sweep.Results)
	}
	for i, res := range want {
		got := sweep.Results[i]
		if got.Algorithm != res.Algorithm || got.BestT != res.BestT || got.F1 != res.Best.F1 {
			t.Fatalf("job result %d = %+v, want %s best_t=%v f1=%v",
				i, got, res.Algorithm, res.BestT, res.Best.F1)
		}
	}

	var again sweepRespJSON
	doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", map[string]any{
		"graph": "d2", "algorithms": []string{"UMC", "CNC"},
	}, &again)
	for again.State != "done" {
		if time.Now().After(deadline) {
			t.Fatalf("second sweep stuck in %q", again.State)
		}
		time.Sleep(5 * time.Millisecond)
		doJSON(t, http.MethodGet, ts.URL+"/v1/sweeps/"+again.ID, nil, &again)
	}
	for i := range sweep.Results {
		if sweep.Results[i].BestT != again.Results[i].BestT || sweep.Results[i].F1 != again.Results[i].F1 {
			t.Fatalf("sweep results not deterministic: %+v vs %+v", sweep.Results[i], again.Results[i])
		}
	}

	var m metricsJSON
	doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &m)
	if m.JobsDone != 2 || m.JobsLive != 0 {
		t.Fatalf("job metrics = %+v", m)
	}
}

func TestSweepCancelQueuedJob(t *testing.T) {
	// One worker: the first (heavy) job occupies it, so the second stays
	// queued and cancels instantly.
	_, ts := newTestServer(t, serve.Config{JobWorkers: 1, Parallelism: 1})
	generateD2(t, ts.URL, "d2")

	// The repeat count keeps the heavy sweep on the worker for seconds
	// even with the fast-path matchers, so the victim is reliably still
	// queued when the cancel lands (both jobs are cancelled before the
	// test returns, so no test actually waits that long).
	var heavy, victim sweepRespJSON
	doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", map[string]any{
		"graph": "d2", "repeats": 5000,
	}, &heavy)
	doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", map[string]any{"graph": "d2"}, &victim)

	code := doJSON(t, http.MethodDelete, ts.URL+"/v1/sweeps/"+victim.ID, nil, &victim)
	if code != http.StatusOK {
		t.Fatalf("cancel: status %d", code)
	}
	if victim.State != "cancelled" {
		t.Fatalf("victim state = %q, want cancelled", victim.State)
	}
	// Cancel the heavy one too so Cleanup's Close drains fast.
	doJSON(t, http.MethodDelete, ts.URL+"/v1/sweeps/"+heavy.ID, nil, &heavy)
}

func TestServerCloseCancelsInFlightJobs(t *testing.T) {
	srv, err := serve.New(serve.Config{JobWorkers: 1, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	generateD2(t, ts.URL, "d2")
	var job sweepRespJSON
	doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", map[string]any{
		"graph": "d2", "repeats": 200,
	}, &job)

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Close(ctx); err != nil {
		t.Fatalf("close with in-flight job: %v", err)
	}
	doJSON(t, http.MethodGet, ts.URL+"/v1/sweeps/"+job.ID, nil, &job)
	if job.State != "cancelled" && job.State != "done" {
		t.Fatalf("job state after close = %q", job.State)
	}
	// A 200-repeat full sweep takes far longer than Close took; it must
	// have been cut short, not completed.
	if job.State != "cancelled" {
		t.Fatalf("job completed despite shutdown cancellation")
	}
}

func TestGraphUploadRoundTrip(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	b := graph.NewBuilder(3, 3)
	b.Add(0, 0, 0.9)
	b.Add(1, 2, 0.7)
	b.Add(2, 1, 0.4)
	g := b.MustBuild()
	var wire bytes.Buffer
	if err := g.WriteEdgeList(&wire); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/v1/graphs?name=up", "text/plain", bytes.NewReader(wire.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var info graphInfoJSON
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload: status %d", resp.StatusCode)
	}
	if info.Name != "up" || info.N1 != 3 || info.Edges != 3 || info.HasGroundTruth || info.Source != "upload" {
		t.Fatalf("upload info = %+v", info)
	}
	if info.Checksum != fmt.Sprintf("%016x", g.Checksum()) {
		t.Fatalf("checksum %s, want %016x", info.Checksum, g.Checksum())
	}

	back := fetchGraph(t, ts.URL, "up")
	if back.NumEdges() != 3 || back.N1() != 3 || back.N2() != 3 {
		t.Fatalf("round-tripped graph %d/%d/%d", back.N1(), back.N2(), back.NumEdges())
	}

	// Matching an uploaded graph works, just without metrics.
	var mr matchRespJSON
	doJSON(t, http.MethodPost, ts.URL+"/v1/match", map[string]any{
		"graph": "up", "algorithms": []string{"UMC"}, "threshold": 0.3,
	}, &mr)
	if len(mr.Results) != 1 || len(mr.Results[0].Pairs) == 0 {
		t.Fatalf("match on upload = %+v", mr.Results)
	}
	if mr.Results[0].Metrics != nil {
		t.Fatal("metrics reported without ground truth")
	}
}

func TestGraphListAndDelete(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	generateD2(t, ts.URL, "a")
	generateD2(t, ts.URL, "b")
	var list struct {
		Graphs []graphInfoJSON `json:"graphs"`
	}
	doJSON(t, http.MethodGet, ts.URL+"/v1/graphs", nil, &list)
	if len(list.Graphs) != 2 || list.Graphs[0].Name != "a" || list.Graphs[1].Name != "b" {
		t.Fatalf("list = %+v", list.Graphs)
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/graphs/a", nil, nil); code != http.StatusOK {
		t.Fatalf("delete: %d", code)
	}
	doJSON(t, http.MethodGet, ts.URL+"/v1/graphs", nil, &list)
	if len(list.Graphs) != 1 {
		t.Fatalf("list after delete = %+v", list.Graphs)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	var h struct {
		Status string `json:"status"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, &h); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthz = %d %+v", code, h)
	}
}

func TestErrorResponses(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	generateD2(t, ts.URL, "d2")
	cases := []struct {
		name   string
		method string
		path   string
		body   any
		want   int
	}{
		{"match unknown graph", http.MethodPost, "/v1/match", map[string]any{"graph": "nope"}, http.StatusNotFound},
		{"match unknown algorithm", http.MethodPost, "/v1/match", map[string]any{"graph": "d2", "algorithms": []string{"XXX"}}, http.StatusBadRequest},
		{"match bad threshold", http.MethodPost, "/v1/match", map[string]any{"graph": "d2", "threshold": 1.5}, http.StatusBadRequest},
		{"match unknown field", http.MethodPost, "/v1/match", map[string]any{"graph": "d2", "bogus": 1}, http.StatusBadRequest},
		{"sweep unknown graph", http.MethodPost, "/v1/sweeps", map[string]any{"graph": "nope"}, http.StatusNotFound},
		{"sweep unknown algorithm", http.MethodPost, "/v1/sweeps", map[string]any{"graph": "d2", "algorithms": []string{"XXX"}}, http.StatusBadRequest},
		{"sweep get unknown", http.MethodGet, "/v1/sweeps/sweep-99", nil, http.StatusNotFound},
		{"sweep cancel unknown", http.MethodDelete, "/v1/sweeps/sweep-99", nil, http.StatusNotFound},
		{"graph get unknown", http.MethodGet, "/v1/graphs/nope", nil, http.StatusNotFound},
		{"graph delete unknown", http.MethodDelete, "/v1/graphs/nope", nil, http.StatusNotFound},
		{"generate unknown dataset", http.MethodPost, "/v1/graphs", map[string]any{"dataset": "D99"}, http.StatusBadRequest},
		{"generate unknown measure", http.MethodPost, "/v1/graphs", map[string]any{"dataset": "D1", "measure": "Nope"}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if code := doJSON(t, tc.method, ts.URL+tc.path, tc.body, nil); code != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, code, tc.want)
		}
	}

	// A malformed edge-list upload is a 400, not a panic.
	resp, err := http.Post(ts.URL+"/v1/graphs", "text/plain", strings.NewReader("not a header\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad upload: status %d", resp.StatusCode)
	}
}

// TestUploadHeaderNodeCap pins the hostile-header guard: a few bytes
// declaring billions of nodes must be rejected before allocation.
func TestUploadHeaderNodeCap(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{MaxGraphNodes: 100})
	resp, err := http.Post(ts.URL+"/v1/graphs", "text/plain",
		strings.NewReader("2000000000 2000000000\n"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("huge header: status %d (%s)", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), "cap") {
		t.Fatalf("huge header error = %s", body)
	}

	// Within the cap still works.
	resp, err = http.Post(ts.URL+"/v1/graphs", "text/plain",
		strings.NewReader("2 2\n0 0 0.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("small upload under cap: status %d", resp.StatusCode)
	}
}

func TestGenerateScaleNodeCap(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{MaxGraphNodes: 10})
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/graphs", map[string]any{
		"dataset": "D2", "scale": 0.02,
	}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("over-cap generation: status %d, want 400", code)
	}
}

func TestBodyLimit(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{MaxBodyBytes: 64})
	big := strings.Repeat("x", 1024)
	resp, err := http.Post(ts.URL+"/v1/graphs", "text/plain", strings.NewReader("2 2\n#"+big+"\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized upload: status %d, want 400", resp.StatusCode)
	}
}

func TestGenerationMetrics(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	generateD2(t, ts.URL, "a")
	generateD2(t, ts.URL, "b")

	var m metricsJSON
	doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &m)
	if m.GeneratesTotal["D2"] != 2 {
		t.Fatalf("generates_total[D2] = %d, want 2", m.GeneratesTotal["D2"])
	}
	if m.GenerateNSTotal["D2"] <= 0 {
		t.Fatalf("generate_ns_total[D2] = %d, want > 0", m.GenerateNSTotal["D2"])
	}
}

func TestPprofDisabledByDefault(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof reachable without EnablePprof: status %d", resp.StatusCode)
	}
}

func TestPprofEnabled(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{EnablePprof: true})
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index does not list profiles")
	}
}

// The row-parallel generation path must emit a graph byte-identical to
// the serial one.
func TestGenerateParallelChecksumIdentical(t *testing.T) {
	_, serial := newTestServer(t, serve.Config{Parallelism: 1})
	_, parallel := newTestServer(t, serve.Config{Parallelism: 8})
	a := generateD2(t, serial.URL, "g")
	b := generateD2(t, parallel.URL, "g")
	if a.Checksum != b.Checksum {
		t.Fatalf("checksums differ: serial %s vs parallel %s", a.Checksum, b.Checksum)
	}
}

// Family-mode generation: POST /v1/graphs with "family" builds every
// graph of one taxonomy family through the corpus kernels, stores each
// versioned with ground truth, and records per-family timing.
func TestFamilyGeneration(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	var resp struct {
		Family string          `json:"family"`
		Graphs []graphInfoJSON `json:"graphs"`
	}
	code := doJSON(t, http.MethodPost, ts.URL+"/v1/graphs", map[string]any{
		"name": "corp", "dataset": "D2", "seed": 3, "scale": 0.02, "family": "SB-SYN",
	}, &resp)
	if code != http.StatusCreated {
		t.Fatalf("family generate: status %d", code)
	}
	if resp.Family != "SB-SYN" {
		t.Fatalf("family = %q", resp.Family)
	}
	// 16 schema-based string measures per key attribute (D2 has one).
	if len(resp.Graphs) != 16 {
		t.Fatalf("graphs = %d, want 16", len(resp.Graphs))
	}
	for _, g := range resp.Graphs {
		if !strings.HasPrefix(g.Name, "corp/") || !g.HasGroundTruth || g.Dataset != "D2" {
			t.Fatalf("family graph info = %+v", g)
		}
	}
	// Every stored graph is individually retrievable and matchable.
	var info graphInfoJSON
	if code := doJSON(t, http.MethodGet, ts.URL+"/v1/graphs/"+resp.Graphs[0].Name, nil, &info); code != http.StatusOK {
		t.Fatalf("get family graph: status %d", code)
	}
	var mresp matchRespJSON
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/match", map[string]any{
		"graph": resp.Graphs[0].Name, "algorithms": []string{"UMC"},
	}, &mresp); code != http.StatusOK {
		t.Fatalf("match family graph: status %d", code)
	}

	var m struct {
		GenerateFamilyNSTotal map[string]int64 `json:"generate_family_ns_total"`
		GeneratesFamilyTotal  map[string]int64 `json:"generates_family_total"`
	}
	doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &m)
	if m.GeneratesFamilyTotal["SB-SYN"] != 1 {
		t.Fatalf("generates_family_total[SB-SYN] = %d, want 1", m.GeneratesFamilyTotal["SB-SYN"])
	}
	if m.GenerateFamilyNSTotal["SB-SYN"] <= 0 {
		t.Fatalf("generate_family_ns_total[SB-SYN] = %d, want > 0", m.GenerateFamilyNSTotal["SB-SYN"])
	}
}

func TestFamilyGenerationErrors(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/graphs", map[string]any{
		"dataset": "D2", "family": "NOPE",
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown family: status %d, want 400", code)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/graphs", map[string]any{
		"dataset": "D2", "family": "SB-SYN", "measure": "Jaccard",
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("family+measure: status %d, want 400", code)
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/graphs", map[string]any{
		"dataset": "D99", "family": "SB-SYN",
	}, nil); code != http.StatusBadRequest {
		t.Fatalf("unknown dataset: status %d, want 400", code)
	}
}

// Single-measure generation is an SB-SYN workload; its timing must land
// in the family split alongside the dataset split.
func TestSingleMeasureFamilyMetrics(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	generateD2(t, ts.URL, "one")
	var m struct {
		GenerateFamilyNSTotal map[string]int64 `json:"generate_family_ns_total"`
		GeneratesFamilyTotal  map[string]int64 `json:"generates_family_total"`
	}
	doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &m)
	if m.GeneratesFamilyTotal["SB-SYN"] != 1 {
		t.Fatalf("generates_family_total[SB-SYN] = %d, want 1", m.GeneratesFamilyTotal["SB-SYN"])
	}
}

// Repeated same-dataset family generation must be served from the
// cross-build representation caches — byte-identical graphs, RepCache
// hits visible on /metrics, and the candidate skip-ratio counters
// populated.
func TestFamilyGenerationRepCacheHits(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	var first, second struct {
		Family string          `json:"family"`
		Graphs []graphInfoJSON `json:"graphs"`
	}
	body := map[string]any{
		"name": "r1", "dataset": "D2", "seed": 3, "scale": 0.02, "family": "SA-SYN",
	}
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/graphs", body, &first); code != http.StatusCreated {
		t.Fatalf("first family generate: status %d", code)
	}
	body["name"] = "r2"
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/graphs", body, &second); code != http.StatusCreated {
		t.Fatalf("second family generate: status %d", code)
	}
	if len(first.Graphs) == 0 || len(first.Graphs) != len(second.Graphs) {
		t.Fatalf("graph counts: %d vs %d", len(first.Graphs), len(second.Graphs))
	}
	for i := range first.Graphs {
		if first.Graphs[i].Checksum != second.Graphs[i].Checksum {
			t.Fatalf("graph %d: cached rebuild changed checksum %s -> %s",
				i, first.Graphs[i].Checksum, second.Graphs[i].Checksum)
		}
	}
	var metrics struct {
		RepCacheHits    int64            `json:"repcache_hits_total"`
		RepCacheMisses  int64            `json:"repcache_misses_total"`
		RepCacheEntries int              `json:"repcache_entries"`
		Visited         map[string]int64 `json:"generate_pairs_visited_total"`
		Skipped         map[string]int64 `json:"generate_pairs_skipped_total"`
		SkipRatio       float64          `json:"generate_skip_ratio"`
	}
	if code := doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &metrics); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if metrics.RepCacheHits == 0 {
		t.Fatal("second generation produced no repcache hits")
	}
	if metrics.RepCacheMisses == 0 || metrics.RepCacheEntries == 0 {
		t.Fatalf("repcache counters implausible: %+v", metrics)
	}
	if metrics.Visited["SA-SYN"] == 0 {
		t.Fatalf("no visited pairs recorded: %+v", metrics)
	}
	if metrics.Skipped["SA-SYN"] == 0 || metrics.SkipRatio <= 0 {
		t.Fatalf("candidate cut recorded no skips: %+v", metrics)
	}
}

// The single-measure generation prefilters (character signatures, and
// the length bound under min_sim) are lossless: a server with the
// representation caches enabled and one with them disabled must emit
// byte-identical graphs for filtered char measures, thresholded
// Levenshtein, and (unfiltered) token measures alike.
func TestGenerateMeasurePrefiltersLossless(t *testing.T) {
	_, a := newTestServer(t, serve.Config{})
	_, b := newTestServer(t, serve.Config{RepCacheDatasets: -1})
	for _, req := range []map[string]any{
		{"name": "g", "dataset": "D2", "seed": 5, "scale": 0.02, "measure": "Levenshtein", "min_sim": 0.4},
		{"name": "g2", "dataset": "D2", "seed": 5, "scale": 0.02, "measure": "Jaro"},
		{"name": "g3", "dataset": "D2", "seed": 5, "scale": 0.02, "measure": "Jaccard"},
	} {
		var ra, rb graphInfoJSON
		if code := doJSON(t, http.MethodPost, a.URL+"/v1/graphs", req, &ra); code != http.StatusCreated {
			t.Fatalf("server a: status %d for %v", code, req)
		}
		if code := doJSON(t, http.MethodPost, b.URL+"/v1/graphs", req, &rb); code != http.StatusCreated {
			t.Fatalf("server b: status %d for %v", code, req)
		}
		if ra.Checksum != rb.Checksum || ra.Edges != rb.Edges {
			t.Fatalf("%v: checksum/edges diverge: %s/%d vs %s/%d",
				req, ra.Checksum, ra.Edges, rb.Checksum, rb.Edges)
		}
	}
	// The single-measure path feeds the same skip-ratio counters as
	// family mode (visited always; skipped whenever a prefilter fires).
	var metrics struct {
		Visited map[string]int64 `json:"generate_pairs_visited_total"`
	}
	if code := doJSON(t, http.MethodGet, a.URL+"/metrics", nil, &metrics); code != http.StatusOK {
		t.Fatalf("metrics: status %d", code)
	}
	if metrics.Visited["SB-SYN"] == 0 {
		t.Fatalf("single-measure generation recorded no visited pairs: %+v", metrics)
	}
}

// syncListingJSON mirrors the ?fields=sync response: the cheap per-name
// replica-comparison view an anti-entropy scan pulls.
type syncListingJSON struct {
	Graphs []struct {
		Name     string `json:"name"`
		Version  int64  `json:"version"`
		Checksum string `json:"checksum"`
	} `json:"graphs"`
	Tombstones []struct {
		Name    string `json:"name"`
		Version int64  `json:"version"`
	} `json:"tombstones"`
}

// TestGraphSyncProtocol drives the full HTTP surface the cluster repair
// loop speaks: the ?fields=sync listing (versions, checksums,
// tombstones), the version-pinned conditional sync upload, and the
// conditional sync delete.
func TestGraphSyncProtocol(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{})
	info := generateD2(t, ts.URL, "d2")
	wire := new(bytes.Buffer)
	if err := fetchGraph(t, ts.URL, "d2").WriteEdgeList(wire); err != nil {
		t.Fatal(err)
	}

	var listing syncListingJSON
	doJSON(t, http.MethodGet, ts.URL+"/v1/graphs?fields=sync", nil, &listing)
	if len(listing.Graphs) != 1 || len(listing.Tombstones) != 0 {
		t.Fatalf("sync listing = %+v", listing)
	}
	if g := listing.Graphs[0]; g.Name != "d2" || g.Version != info.Version || g.Checksum != info.Checksum {
		t.Fatalf("sync listing entry = %+v, want %s@%d %s", g, "d2", info.Version, info.Checksum)
	}

	// Sync upload pinned at a higher version applies and reports 201
	// with the pinned version, so a repaired replica lists identically
	// to its source.
	resp, err := http.Post(ts.URL+"/v1/graphs?name=copy&sync_version=9", "text/plain", bytes.NewReader(wire.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var created graphInfoJSON
	if err := json.NewDecoder(resp.Body).Decode(&created); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated || created.Version != 9 || created.Checksum != info.Checksum || created.Source != "repair" {
		t.Fatalf("sync upload: status %d info %+v", resp.StatusCode, created)
	}

	// Replaying the same stream is a 200 no-op, not a conflict: repair
	// retries are idempotent.
	resp, err = http.Post(ts.URL+"/v1/graphs?name=copy&sync_version=9", "text/plain", bytes.NewReader(wire.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var noop struct {
		Applied bool  `json:"applied"`
		Version int64 `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&noop); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || noop.Applied || noop.Version != 9 {
		t.Fatalf("duplicate sync upload: status %d body %+v", resp.StatusCode, noop)
	}

	// A sync upload without an explicit name is meaningless.
	resp, err = http.Post(ts.URL+"/v1/graphs?sync_version=3", "text/plain", bytes.NewReader(wire.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("nameless sync upload: status %d, want 400", resp.StatusCode)
	}

	// Sync delete at the entry's version applies (delete wins the tie),
	// records a tombstone in the listing, and never 404s on replay.
	var del struct {
		Applied bool `json:"applied"`
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/graphs/copy?sync_version=9", nil, &del); code != http.StatusOK || !del.Applied {
		t.Fatalf("sync delete: code %d applied %v", code, del.Applied)
	}
	if code := doJSON(t, http.MethodDelete, ts.URL+"/v1/graphs/copy?sync_version=9", nil, &del); code != http.StatusOK || del.Applied {
		t.Fatalf("replayed sync delete: code %d applied %v, want 200 no-op", code, del.Applied)
	}
	doJSON(t, http.MethodGet, ts.URL+"/v1/graphs?fields=sync", nil, &listing)
	if len(listing.Tombstones) != 1 || listing.Tombstones[0].Name != "copy" || listing.Tombstones[0].Version != 9 {
		t.Fatalf("tombstones after sync delete = %+v, want copy@9", listing.Tombstones)
	}
}
