package serve_test

import (
	"fmt"
	"net/http"
	"sync"
	"testing"

	"github.com/ccer-go/ccer/internal/serve"
)

// TestConcurrentClients hammers every endpoint from parallel clients.
// It asserts nothing about individual responses beyond "a sane status";
// its job is to let the race detector see the store, cache, job queue
// and counters under real contention (CI runs this package with -race).
func TestConcurrentClients(t *testing.T) {
	_, ts := newTestServer(t, serve.Config{CacheSize: 8, JobWorkers: 2})
	generateD2(t, ts.URL, "shared")

	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			own := fmt.Sprintf("own-%d", c)
			for round := 0; round < 3; round++ {
				// Overwrite a private graph and the shared one to churn
				// versions under concurrent matches.
				code := doJSON(t, http.MethodPost, ts.URL+"/v1/graphs", map[string]any{
					"name": own, "dataset": "D1", "seed": c + 1, "scale": 0.01,
				}, nil)
				if code != http.StatusCreated {
					t.Errorf("client %d: generate status %d", c, code)
					return
				}
				for _, g := range []string{own, "shared"} {
					code = doJSON(t, http.MethodPost, ts.URL+"/v1/match", map[string]any{
						"graph": g, "algorithms": []string{"UMC", "CNC", "KRC"},
						"threshold": 0.5,
					}, nil)
					if code != http.StatusOK {
						t.Errorf("client %d: match status %d", c, code)
						return
					}
				}
				var sweep sweepRespJSON
				code = doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", map[string]any{
					"graph": own, "algorithms": []string{"UMC"},
				}, &sweep)
				// 503 (backlog full) is a legitimate answer under load.
				if code != http.StatusAccepted && code != http.StatusServiceUnavailable {
					t.Errorf("client %d: sweep status %d", c, code)
					return
				}
				if code == http.StatusAccepted && round == 1 {
					doJSON(t, http.MethodDelete, ts.URL+"/v1/sweeps/"+sweep.ID, nil, nil)
				}
				doJSON(t, http.MethodGet, ts.URL+"/v1/graphs", nil, nil)
				doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, nil)
				doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, nil)
			}
			doJSON(t, http.MethodDelete, ts.URL+"/v1/graphs/"+own, nil, nil)
		}(c)
	}
	wg.Wait()
}
