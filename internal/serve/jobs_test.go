package serve

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/ccer-go/ccer/internal/eval"
)

// waitState polls until the job reaches state or the deadline passes.
func waitState(t *testing.T, q *JobQueue, id string, want JobState) JobView {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		v, ok := q.Get(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		if v.State == want {
			return v
		}
		time.Sleep(time.Millisecond)
	}
	v, _ := q.Get(id)
	t.Fatalf("job %s stuck in %s, want %s", id, v.State, want)
	return JobView{}
}

func TestJobQueueRunsToDone(t *testing.T) {
	q := NewJobQueue(2, 8, 256, func(ctx context.Context, job *SweepJob) ([]eval.SweepResult, error) {
		return []eval.SweepResult{{Algorithm: "UMC", BestT: 0.4}}, nil
	})
	defer q.Close(context.Background())
	job, err := q.Submit(&SweepJob{Graph: "g", Algorithms: []string{"UMC"}})
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != "sweep-1" {
		t.Fatalf("first job id = %q", job.ID)
	}
	v := waitState(t, q, job.ID, JobDone)
	if len(v.Results) != 1 || v.Results[0].BestT != 0.4 {
		t.Fatalf("results = %+v", v.Results)
	}
	if v.Finished.IsZero() || v.Started.IsZero() {
		t.Fatal("timestamps not stamped")
	}
}

func TestJobQueueFailedJob(t *testing.T) {
	q := NewJobQueue(1, 8, 256, func(ctx context.Context, job *SweepJob) ([]eval.SweepResult, error) {
		return nil, errors.New("graph gone")
	})
	defer q.Close(context.Background())
	job, err := q.Submit(&SweepJob{Graph: "g"})
	if err != nil {
		t.Fatal(err)
	}
	v := waitState(t, q, job.ID, JobFailed)
	if v.Error != "graph gone" {
		t.Fatalf("error = %q", v.Error)
	}
}

// blockingQueue returns a queue whose jobs block until their context is
// cancelled or the returned release channel is closed.
func blockingQueue(workers, depth int) (*JobQueue, chan struct{}, chan string) {
	release := make(chan struct{})
	started := make(chan string, depth+workers)
	q := NewJobQueue(workers, depth, 256, func(ctx context.Context, job *SweepJob) ([]eval.SweepResult, error) {
		started <- job.ID
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-release:
			return []eval.SweepResult{}, nil
		}
	})
	return q, release, started
}

func TestJobQueueCancelQueuedAndRunning(t *testing.T) {
	q, release, started := blockingQueue(1, 8)
	defer q.Close(context.Background())
	running, err := q.Submit(&SweepJob{Graph: "g"})
	if err != nil {
		t.Fatal(err)
	}
	<-started // the single worker is now blocked inside job 1
	queued, err := q.Submit(&SweepJob{Graph: "g"})
	if err != nil {
		t.Fatal(err)
	}

	if !q.Cancel(queued.ID) {
		t.Fatal("Cancel(queued) = false")
	}
	v, _ := q.Get(queued.ID)
	if v.State != JobCancelled {
		t.Fatalf("queued job state = %s, want cancelled immediately", v.State)
	}

	if !q.Cancel(running.ID) {
		t.Fatal("Cancel(running) = false")
	}
	waitState(t, q, running.ID, JobCancelled)
	if q.Cancel("sweep-999") {
		t.Fatal("Cancel of unknown id = true")
	}
	close(release)
}

func TestJobQueueBacklogFull(t *testing.T) {
	q, release, started := blockingQueue(1, 1)
	defer q.Close(context.Background())
	if _, err := q.Submit(&SweepJob{}); err != nil { // runs
		t.Fatal(err)
	}
	<-started
	if _, err := q.Submit(&SweepJob{}); err != nil { // fills the backlog
		t.Fatal(err)
	}
	_, err := q.Submit(&SweepJob{})
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit err = %v, want ErrQueueFull", err)
	}
	// The rejected job must not linger in listings.
	if n := len(q.List()); n != 2 {
		t.Fatalf("List len = %d, want 2", n)
	}
	close(release)
}

func TestJobQueueCloseCancelsEverything(t *testing.T) {
	q, _, started := blockingQueue(1, 8)
	running, _ := q.Submit(&SweepJob{})
	<-started
	queued, _ := q.Submit(&SweepJob{})

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := q.Close(ctx); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{running.ID, queued.ID} {
		v, _ := q.Get(id)
		if v.State != JobCancelled {
			t.Fatalf("job %s state after Close = %s, want cancelled", id, v.State)
		}
	}
	if _, err := q.Submit(&SweepJob{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Submit after Close err = %v, want ErrClosed", err)
	}
}

func TestJobQueueCloseTimesOutOnStuckJob(t *testing.T) {
	stuck := make(chan struct{})
	defer close(stuck)
	started := make(chan struct{})
	q := NewJobQueue(1, 1, 256, func(ctx context.Context, job *SweepJob) ([]eval.SweepResult, error) {
		close(started)
		<-stuck // ignores ctx: simulates a wedged worker
		return nil, nil
	})
	if _, err := q.Submit(&SweepJob{}); err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := q.Close(ctx); err == nil {
		t.Fatal("Close returned nil with a wedged worker")
	}
}

func TestJobQueueHistoryPruning(t *testing.T) {
	q := NewJobQueue(1, 16, 2, func(ctx context.Context, job *SweepJob) ([]eval.SweepResult, error) {
		return nil, nil
	})
	defer q.Close(context.Background())
	var last string
	for i := 0; i < 6; i++ {
		job, err := q.Submit(&SweepJob{})
		if err != nil {
			t.Fatal(err)
		}
		last = job.ID
		waitState(t, q, job.ID, JobDone)
	}
	if n := len(q.List()); n != 2 {
		t.Fatalf("retained %d terminal jobs, want history cap 2", n)
	}
	if _, ok := q.Get("sweep-1"); ok {
		t.Fatal("oldest job survived pruning")
	}
	if _, ok := q.Get(last); !ok {
		t.Fatal("newest job was pruned")
	}
	if c := q.Counts(); c.Done != 2 {
		t.Fatalf("Counts.Done = %d over retained jobs, want 2", c.Done)
	}
}

func TestJobQueueHistoryKeepsLiveJobs(t *testing.T) {
	// history 0: terminal jobs vanish immediately, live jobs never do.
	q, release, started := blockingQueue(1, 8)
	q.history = 0
	defer q.Close(context.Background())
	running, err := q.Submit(&SweepJob{})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	queued, err := q.Submit(&SweepJob{})
	if err != nil {
		t.Fatal(err)
	}
	q.Cancel(queued.ID) // terminal -> pruned at once
	if _, ok := q.Get(queued.ID); ok {
		t.Fatal("terminal job retained with zero history")
	}
	if _, ok := q.Get(running.ID); !ok {
		t.Fatal("running job pruned")
	}
	close(release)
}

func TestJobQueueListOrder(t *testing.T) {
	q := NewJobQueue(1, 16, 256, func(ctx context.Context, job *SweepJob) ([]eval.SweepResult, error) {
		return nil, nil
	})
	defer q.Close(context.Background())
	for i := 0; i < 5; i++ {
		if _, err := q.Submit(&SweepJob{Graph: fmt.Sprintf("g%d", i)}); err != nil {
			t.Fatal(err)
		}
	}
	list := q.List()
	if len(list) != 5 {
		t.Fatalf("List len = %d", len(list))
	}
	for i, v := range list {
		if want := fmt.Sprintf("sweep-%d", i+1); v.ID != want {
			t.Fatalf("List[%d] = %s, want %s", i, v.ID, want)
		}
	}
}
