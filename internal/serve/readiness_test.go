// Readiness, shed-contract and disconnect-accounting tests: the serve-
// side half of the cluster contract. A router believes /readyz, expects
// every 503 to carry a Retry-After, and must not see its own cancelled
// hedges reflected back as backend errors — each promise is fenced here.
package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/ccer-go/ccer/internal/durable/crashtest"
	"github.com/ccer-go/ccer/internal/resilience"
	"github.com/ccer-go/ccer/internal/serve"
)

// getReadyz fetches /readyz and returns status plus the decoded body.
func getReadyz(t *testing.T, base string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(base + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("readyz body: %v", err)
	}
	return resp.StatusCode, body
}

// TestReadyzDrainSplitsFromHealthz: readiness and liveness are separate
// signals. BeginDrain flips /readyz to 503 ("take me out of rotation")
// while /healthz stays 200 ("do not restart me") and the data plane
// keeps serving in-flight work.
func TestReadyzDrainSplitsFromHealthz(t *testing.T) {
	srv, ts := newTestServer(t, serve.Config{})
	generateD2(t, ts.URL, "d2")

	if status, body := getReadyz(t, ts.URL); status != http.StatusOK || body["ready"] != true {
		t.Fatalf("fresh server readyz = %d %v, want 200 ready", status, body)
	}

	srv.BeginDrain()
	status, body := getReadyz(t, ts.URL)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("draining readyz = %d, want 503", status)
	}
	if body["status"] != "draining" || body["ready"] != false {
		t.Fatalf("draining readyz body = %v", body)
	}
	if !srv.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}

	// Liveness is unaffected and the data plane still answers: a drain
	// is about new traffic, not about killing what is already here.
	if code := doJSON(t, http.MethodGet, ts.URL+"/healthz", nil, nil); code != http.StatusOK {
		t.Fatalf("healthz during drain = %d, want 200", code)
	}
	var mr matchRespJSON
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/match", map[string]any{
		"graph": "d2", "algorithms": []string{"UMC"}, "threshold": 0.5,
	}, &mr); code != http.StatusOK {
		t.Fatalf("match during drain = %d, want 200", code)
	}
}

// TestReadyzDegradedJournal: a latched durable-log failure makes the
// node not-ready (it is refusing every mutation), so a health-checking
// router stops routing writes to it.
func TestReadyzDegradedJournal(t *testing.T) {
	faulty := crashtest.NewFaultFS(crashtest.NewMemFS())
	_, ts := newTestServer(t, serve.Config{DataDir: "data", DataFS: faulty, JobWorkers: 1})
	generateD2(t, ts.URL, "d2")

	if status, _ := getReadyz(t, ts.URL); status != http.StatusOK {
		t.Fatalf("pre-fault readyz = %d, want 200", status)
	}
	faulty.Inject(crashtest.Fault{Point: "sync:wal"})
	if code := doJSON(t, http.MethodPost, ts.URL+"/v1/graphs", map[string]any{
		"name": "lost", "dataset": "D2", "seed": 7, "scale": 0.02,
	}, nil); code != http.StatusInternalServerError {
		t.Fatalf("latching put: status %d, want 500", code)
	}
	status, body := getReadyz(t, ts.URL)
	if status != http.StatusServiceUnavailable || body["status"] != "degraded" {
		t.Fatalf("degraded readyz = %d %v, want 503 degraded", status, body)
	}
}

// TestEvery503ShedPathEmitsRetryAfter is the regression fence on the
// shed contract: every path that answers 503 — admission queue full,
// admission budget exhausted, degraded log, sweep backlog, job queue
// shut down — must carry a Retry-After header and a machine-readable
// reason. A cluster client schedules its retry off that header; a 503
// without it would silently fall back to computed backoff.
func TestEvery503ShedPathEmitsRetryAfter(t *testing.T) {
	t.Run("queue_full_and_timeout", func(t *testing.T) {
		faults := resilience.NewFaults()
		faults.Set("match", time.Second, nil, -1)
		_, ts := newTestServer(t, serve.Config{
			CacheSize:       -1,
			AdmissionSlots:  1,
			AdmissionDepth:  1,
			AdmissionBudget: 150 * time.Millisecond,
			Faults:          faults,
		})
		generateD2(t, ts.URL, "d2")

		// Leader occupies the single slot for ~1s; the next unique match
		// waits in the queue until its 150ms budget expires
		// (queue_timeout); with the queue occupied, a third is refused on
		// arrival (queue_full).
		var wg sync.WaitGroup
		launch := func(thr float64, wantReason string) {
			wg.Add(1)
			go func() {
				defer wg.Done()
				status, hdr, body, err := postRaw(ts.URL+"/v1/match", map[string]any{
					"graph": "d2", "algorithms": []string{"UMC"}, "threshold": thr,
				})
				if err != nil {
					t.Errorf("match %g: %v", thr, err)
					return
				}
				if wantReason == "" {
					if status != http.StatusOK {
						t.Errorf("leader match: status %d (body %s)", status, body)
					}
					return
				}
				if status != http.StatusServiceUnavailable {
					t.Errorf("match %g: status %d (body %s), want 503 %s", thr, status, body, wantReason)
					return
				}
				requireShedResponse(t, hdr, body, wantReason)
			}()
		}
		launch(0.50, "") // leader: holds the slot
		time.Sleep(100 * time.Millisecond)
		launch(0.51, resilience.ReasonQueueTimeout) // queued, budget expires
		time.Sleep(50 * time.Millisecond)
		launch(0.52, resilience.ReasonQueueFull) // queue occupied: refused
		wg.Wait()
	})

	t.Run("degraded", func(t *testing.T) {
		faulty := crashtest.NewFaultFS(crashtest.NewMemFS())
		_, ts := newTestServer(t, serve.Config{DataDir: "data", DataFS: faulty, JobWorkers: 1})
		generateD2(t, ts.URL, "d2")
		faulty.Inject(crashtest.Fault{Point: "sync:wal"})
		doJSON(t, http.MethodPost, ts.URL+"/v1/graphs", map[string]any{
			"name": "lost", "dataset": "D2", "seed": 7, "scale": 0.02,
		}, nil)
		status, hdr, body, err := postRaw(ts.URL+"/v1/graphs", map[string]any{
			"name": "more", "dataset": "D2", "seed": 8, "scale": 0.02,
		})
		if err != nil || status != http.StatusServiceUnavailable {
			t.Fatalf("degraded generate: status %d err %v", status, err)
		}
		requireShedResponse(t, hdr, body, resilience.ReasonDegraded)
	})

	t.Run("sweep_backlog", func(t *testing.T) {
		faults := resilience.NewFaults()
		faults.Set("sweep", 5*time.Second, nil, -1)
		_, ts := newTestServer(t, serve.Config{
			JobWorkers:    1,
			JobQueueDepth: 1,
			Faults:        faults,
		})
		generateD2(t, ts.URL, "d2")
		payload := map[string]any{"graph": "d2", "algorithms": []string{"UMC"}}
		// First sweep runs (parked on the fault), second fills the queue.
		for i := 0; i < 2; i++ {
			if code := doJSON(t, http.MethodPost, ts.URL+"/v1/sweeps", payload, nil); code != http.StatusAccepted {
				t.Fatalf("sweep %d: status %d, want 202", i, code)
			}
		}
		// Give the worker a moment to dequeue the first so depth is
		// deterministic, then overflow.
		deadline := time.Now().Add(2 * time.Second)
		for {
			status, hdr, body, err := postRaw(ts.URL+"/v1/sweeps", payload)
			if err != nil {
				t.Fatal(err)
			}
			if status == http.StatusServiceUnavailable {
				requireShedResponse(t, hdr, body, resilience.ReasonBacklog)
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("sweep overflow: status %d (body %s), want 503", status, body)
			}
			time.Sleep(10 * time.Millisecond)
		}
	})

	t.Run("shutting_down", func(t *testing.T) {
		// Manual lifecycle: the job queue is closed mid-test, so the
		// shared helper's deferred Close would double-close it.
		srv, err := serve.New(serve.Config{})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		generateD2(t, ts.URL, "d2")
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Close(ctx); err != nil {
			t.Fatal(err)
		}
		status, hdr, body, err := postRaw(ts.URL+"/v1/sweeps", map[string]any{
			"graph": "d2", "algorithms": []string{"UMC"},
		})
		if err != nil || status != http.StatusServiceUnavailable {
			t.Fatalf("post-close sweep: status %d err %v (body %s)", status, err, body)
		}
		requireShedResponse(t, hdr, body, "shutting_down")
	})
}

// TestClientDisconnectCountsAs499: a client that hangs up mid-request
// is accounted as 499 — visible in the JSON and Prometheus metrics as
// client_disconnects_total, and NOT as a 5xx. This is what keeps a
// router's cancelled hedges and abandoned retries from reading as
// backend failures and tripping circuit breakers.
func TestClientDisconnectCountsAs499(t *testing.T) {
	faults := resilience.NewFaults()
	faults.Set("match", 500*time.Millisecond, nil, -1)
	_, ts := newTestServer(t, serve.Config{Faults: faults})
	generateD2(t, ts.URL, "d2")

	raw, _ := json.Marshal(map[string]any{
		"graph": "d2", "algorithms": []string{"UMC"}, "threshold": 0.5,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/match", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
		t.Fatalf("disconnecting client got a response: status %d", resp.StatusCode)
	}

	// The handler finishes asynchronously after the client is gone; poll
	// until the 499 lands in the JSON metrics.
	var m struct {
		ClientDisconnectsTotal int64            `json:"client_disconnects_total"`
		RequestsByClassTotal   map[string]int64 `json:"requests_by_class_total"`
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if code := doJSON(t, http.MethodGet, ts.URL+"/metrics", nil, &m); code != http.StatusOK {
			t.Fatalf("metrics: status %d", code)
		}
		if m.ClientDisconnectsTotal >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("client_disconnects_total = %d, want >= 1", m.ClientDisconnectsTotal)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if n := m.RequestsByClassTotal["5xx"]; n != 0 {
		t.Fatalf("disconnect polluted the 5xx class: requests_by_class_total = %v", m.RequestsByClassTotal)
	}

	scrape := scrapeProm(t, ts.URL)
	fam := scrape.Families["ccer_client_disconnects_total"]
	if fam == nil || len(fam.Samples) == 0 || fam.Samples[0].Value < 1 {
		t.Fatalf("ccer_client_disconnects_total missing or zero in the Prometheus view: %+v", fam)
	}
}
