// Package stats provides the statistical machinery of the paper's
// analysis: descriptive statistics (mean, standard deviation, quartiles),
// Pearson correlation, the Friedman test over paired samples, and the
// post-hoc Nemenyi test with its critical distance — the basis of the
// paper's Figure 2 (and Figures 7-8) critical difference diagrams.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Descriptive summarizes a sample the way the paper's Table 8 does.
type Descriptive struct {
	N                    int
	Mean, Std            float64
	Min, Q1, Q2, Q3, Max float64
}

// Describe computes descriptive statistics. It returns a zero value for
// an empty sample. Std is the population standard deviation.
func Describe(xs []float64) Descriptive {
	if len(xs) == 0 {
		return Descriptive{}
	}
	d := Descriptive{N: len(xs)}
	for _, x := range xs {
		d.Mean += x
	}
	d.Mean /= float64(len(xs))
	for _, x := range xs {
		d.Std += (x - d.Mean) * (x - d.Mean)
	}
	d.Std = math.Sqrt(d.Std / float64(len(xs)))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	d.Min, d.Max = sorted[0], sorted[len(sorted)-1]
	d.Q1 = Quantile(sorted, 0.25)
	d.Q2 = Quantile(sorted, 0.50)
	d.Q3 = Quantile(sorted, 0.75)
	return d
}

// Quantile returns the q-quantile of a sorted sample by linear
// interpolation.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation.
func Std(xs []float64) float64 { return Describe(xs).Std }

// Pearson returns the Pearson correlation coefficient of two equal-length
// samples, or 0 if either sample is constant or empty.
func Pearson(xs, ys []float64) float64 {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Ranks assigns ranks 1..k to one observation row, giving tied values
// their average rank — the ranking used by the Friedman test. Lower
// values receive better (smaller) ranks when lowerIsBetter, which for
// F-measure comparisons should be false (higher F1 → rank 1).
func Ranks(row []float64, lowerIsBetter bool) []float64 {
	k := len(row)
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		if lowerIsBetter {
			return row[idx[a]] < row[idx[b]]
		}
		return row[idx[a]] > row[idx[b]]
	})
	ranks := make([]float64, k)
	for pos := 0; pos < k; {
		end := pos
		for end+1 < k && row[idx[end+1]] == row[idx[pos]] {
			end++
		}
		avg := float64(pos+end)/2 + 1
		for i := pos; i <= end; i++ {
			ranks[idx[i]] = avg
		}
		pos = end + 1
	}
	return ranks
}

// FriedmanResult reports the Friedman test over N paired samples of k
// treatments.
type FriedmanResult struct {
	N, K      int
	MeanRanks []float64
	ChiSq     float64
	PValue    float64
}

// Friedman runs the Friedman test on a matrix with one row per sample
// (similarity graph) and one column per treatment (algorithm). Higher
// values are better (F-measure convention). It returns an error for
// degenerate input.
func Friedman(matrix [][]float64) (FriedmanResult, error) {
	n := len(matrix)
	if n == 0 {
		return FriedmanResult{}, fmt.Errorf("stats: empty matrix")
	}
	k := len(matrix[0])
	if k < 2 {
		return FriedmanResult{}, fmt.Errorf("stats: need at least two treatments, got %d", k)
	}
	sums := make([]float64, k)
	for _, row := range matrix {
		if len(row) != k {
			return FriedmanResult{}, fmt.Errorf("stats: ragged matrix")
		}
		for j, r := range Ranks(row, false) {
			sums[j] += r
		}
	}
	res := FriedmanResult{N: n, K: k, MeanRanks: make([]float64, k)}
	for j := range sums {
		res.MeanRanks[j] = sums[j] / float64(n)
	}
	// χ²_F = 12N/(k(k+1)) · Σ_j (R̄_j − (k+1)/2)²
	center := float64(k+1) / 2
	s := 0.0
	for _, r := range res.MeanRanks {
		s += (r - center) * (r - center)
	}
	res.ChiSq = 12 * float64(n) / (float64(k) * float64(k+1)) * s
	res.PValue = 1 - chiSquareCDF(res.ChiSq, float64(k-1))
	return res, nil
}

// nemenyiQ are the critical values q_0.05 of the studentized range
// statistic divided by sqrt(2), at infinite degrees of freedom, for
// k = 2..10 treatments (Demsar 2006, Table 5).
var nemenyiQ = map[int]float64{
	2: 1.960, 3: 2.343, 4: 2.569, 5: 2.728, 6: 2.850,
	7: 2.949, 8: 3.031, 9: 3.102, 10: 3.164,
}

// NemenyiCD returns the critical distance of the post-hoc Nemenyi test at
// α=0.05 for k treatments and n samples: CD = q_α · sqrt(k(k+1)/(6N)).
// For the paper's setting (k=8, N=739) this gives ≈0.37.
func NemenyiCD(k, n int) (float64, error) {
	q, ok := nemenyiQ[k]
	if !ok {
		return 0, fmt.Errorf("stats: no Nemenyi critical value for k=%d", k)
	}
	if n <= 0 {
		return 0, fmt.Errorf("stats: need n > 0, got %d", n)
	}
	return q * math.Sqrt(float64(k*(k+1))/(6*float64(n))), nil
}

// chiSquareCDF returns P(X <= x) for a chi-square distribution with df
// degrees of freedom, via the regularized lower incomplete gamma
// function.
func chiSquareCDF(x, df float64) float64 {
	if x <= 0 {
		return 0
	}
	return lowerGammaRegularized(df/2, x/2)
}

// lowerGammaRegularized computes P(a, x) using the series expansion for
// x < a+1 and the continued fraction for the complement otherwise
// (Numerical Recipes style).
func lowerGammaRegularized(a, x float64) float64 {
	if x <= 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

func gammaSeries(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	lg, _ := math.Lgamma(a)
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
