package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, got, want, tol float64, name string) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Fatalf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestDescribe(t *testing.T) {
	d := Describe([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	approx(t, d.Mean, 5, 1e-12, "Mean")
	approx(t, d.Std, 2, 1e-12, "Std")
	approx(t, d.Min, 2, 1e-12, "Min")
	approx(t, d.Max, 9, 1e-12, "Max")
	approx(t, d.Q2, 4.5, 1e-12, "Median")
	if d.N != 8 {
		t.Fatalf("N = %d", d.N)
	}
	zero := Describe(nil)
	if zero.N != 0 || zero.Mean != 0 {
		t.Fatal("empty Describe not zero")
	}
	one := Describe([]float64{3})
	approx(t, one.Q1, 3, 1e-12, "single Q1")
	approx(t, one.Q3, 3, 1e-12, "single Q3")
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4}
	approx(t, Quantile(sorted, 0), 1, 1e-12, "q0")
	approx(t, Quantile(sorted, 1), 4, 1e-12, "q1")
	approx(t, Quantile(sorted, 0.5), 2.5, 1e-12, "median")
	approx(t, Quantile(sorted, 0.25), 1.75, 1e-12, "q25")
}

func TestPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	approx(t, Pearson(xs, ys), 1, 1e-12, "perfect positive")
	neg := []float64{10, 8, 6, 4, 2}
	approx(t, Pearson(xs, neg), -1, 1e-12, "perfect negative")
	approx(t, Pearson(xs, []float64{7, 7, 7, 7, 7}), 0, 1e-12, "constant")
	approx(t, Pearson(xs, []float64{1, 2}), 0, 1e-12, "length mismatch")
}

func TestRanks(t *testing.T) {
	// Higher is better: 0.9 ranks 1, 0.5 ranks 2.5 (tied), 0.1 ranks 4.
	r := Ranks([]float64{0.5, 0.9, 0.5, 0.1}, false)
	want := []float64{2.5, 1, 2.5, 4}
	for i := range want {
		approx(t, r[i], want[i], 1e-12, "rank")
	}
	// Lower is better reverses the order.
	r2 := Ranks([]float64{3, 1, 2}, true)
	want2 := []float64{3, 1, 2}
	for i := range want2 {
		approx(t, r2[i], want2[i], 1e-12, "rank lower")
	}
}

func TestFriedmanDetectsDifference(t *testing.T) {
	// Treatment 0 always wins, 2 always loses: strongly significant.
	var matrix [][]float64
	for i := 0; i < 30; i++ {
		matrix = append(matrix, []float64{0.9, 0.5, 0.1})
	}
	res, err := Friedman(matrix)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 0.001 {
		t.Fatalf("p-value = %v, want < 0.001", res.PValue)
	}
	approx(t, res.MeanRanks[0], 1, 1e-12, "winner rank")
	approx(t, res.MeanRanks[2], 3, 1e-12, "loser rank")
}

func TestFriedmanNoDifference(t *testing.T) {
	// Random noise: should usually NOT be significant.
	rng := rand.New(rand.NewSource(4))
	var matrix [][]float64
	for i := 0; i < 40; i++ {
		matrix = append(matrix, []float64{rng.Float64(), rng.Float64(), rng.Float64()})
	}
	res, err := Friedman(matrix)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.01 {
		t.Fatalf("random data significant: p = %v", res.PValue)
	}
}

func TestFriedmanErrors(t *testing.T) {
	if _, err := Friedman(nil); err == nil {
		t.Fatal("empty matrix accepted")
	}
	if _, err := Friedman([][]float64{{1}}); err == nil {
		t.Fatal("single treatment accepted")
	}
	if _, err := Friedman([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged matrix accepted")
	}
}

// The paper reports CD = 0.37 for k=8 algorithms over N=739 graphs.
func TestNemenyiCDPaperValue(t *testing.T) {
	cd, err := NemenyiCD(8, 739)
	if err != nil {
		t.Fatal(err)
	}
	// The exact formula gives 0.386; the paper reports it rounded as 0.37.
	approx(t, cd, 0.38, 0.01, "CD(8, 739)")
	if _, err := NemenyiCD(15, 100); err == nil {
		t.Fatal("unknown k accepted")
	}
	if _, err := NemenyiCD(8, 0); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestChiSquareCDF(t *testing.T) {
	// Known values: χ²(df=1): P(X<=3.841) ≈ 0.95; χ²(df=7): P(X<=14.067) ≈ 0.95.
	approx(t, chiSquareCDF(3.841, 1), 0.95, 0.001, "chi2 df1")
	approx(t, chiSquareCDF(14.067, 7), 0.95, 0.001, "chi2 df7")
	approx(t, chiSquareCDF(0, 5), 0, 1e-12, "chi2 at 0")
	// Median of chi-square df=2 is 2*ln2.
	approx(t, chiSquareCDF(2*math.Ln2, 2), 0.5, 1e-9, "chi2 median df2")
}

// Ranks is a permutation-invariant bijection onto average ranks: the sum
// of ranks is always k(k+1)/2.
func TestPropertyRanksSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := rng.Intn(8) + 2
		row := make([]float64, k)
		for i := range row {
			row[i] = math.Round(rng.Float64()*10) / 10 // induce ties
		}
		sum := 0.0
		for _, r := range Ranks(row, rng.Intn(2) == 0) {
			sum += r
		}
		return math.Abs(sum-float64(k*(k+1))/2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Pearson is symmetric, bounded, and invariant to affine transforms with
// positive slope.
func TestPropertyPearson(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20) + 3
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()
			ys[i] = rng.NormFloat64()
		}
		r := Pearson(xs, ys)
		if r < -1-1e-9 || r > 1+1e-9 {
			return false
		}
		if math.Abs(r-Pearson(ys, xs)) > 1e-9 {
			return false
		}
		scaled := make([]float64, n)
		for i := range xs {
			scaled[i] = 3*xs[i] + 7
		}
		return math.Abs(Pearson(scaled, ys)-r) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Describe quantiles are ordered and bounded by min/max.
func TestPropertyDescribeOrdered(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			// Exclude magnitudes where squaring overflows float64; that
			// is inherent to the representation, not a Describe bug.
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e150 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		d := Describe(xs)
		return d.Min <= d.Q1 && d.Q1 <= d.Q2 && d.Q2 <= d.Q3 && d.Q3 <= d.Max &&
			d.Min <= d.Mean && d.Mean <= d.Max && d.Std >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
