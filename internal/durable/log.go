package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/ccer-go/ccer/internal/dataset"
	"github.com/ccer-go/ccer/internal/graph"
	"github.com/ccer-go/ccer/internal/obs"
	"github.com/ccer-go/ccer/internal/repcache"
)

// Config tunes a Log. Only Dir is required.
type Config struct {
	// Dir is the data directory; it is created when absent.
	Dir string
	// FS is the filesystem implementation; nil means OSFS (the
	// crash-injection harness substitutes its own).
	FS FS
	// CompactEvery is the period of the background snapshot/compaction
	// goroutine. 0 means 60s; negative disables background compaction
	// (Compact can still be called explicitly).
	CompactEvery time.Duration
	// CompactRecords triggers a compaction once this many journal
	// records accumulated since the last manifest, independent of the
	// timer. 0 means 4096.
	CompactRecords int
	// Obs receives journal fsync and snapshot-write latency histograms;
	// nil disables them (counters in Metrics are always maintained).
	Obs *obs.Registry
}

func (c Config) withDefaults() Config {
	if c.FS == nil {
		c.FS = OSFS{}
	}
	if c.CompactEvery == 0 {
		c.CompactEvery = time.Minute
	}
	if c.CompactRecords <= 0 {
		c.CompactRecords = 4096
	}
	return c
}

// ErrLogFailed wraps the first journal append/fsync error; every later
// mutation fails with it. After a failed append the tail of the active
// segment may hold a half-written frame, and replay stops at the first
// invalid frame — so appending further records would silently lose them
// on recovery. Failing every subsequent commit keeps the acknowledged
// and recoverable states identical; the operator restarts the process,
// which rolls to a fresh segment.
var ErrLogFailed = errors.New("durable: journal failed; restart to roll a new segment")

// RecoveredGraph is one committed graph restored at boot, its content
// re-read through the edge-list codec and verified against the checksum
// stored in its record.
type RecoveredGraph struct {
	Record GraphRecord
	Graph  *graph.Bipartite
	GT     *dataset.GroundTruth // nil when the record has none
}

// RecoveredRep is one spilled representation-cache entry: the attribute
// text columns the warm bundle was derived from, keyed by the cache's
// 128-bit content hash.
type RecoveredRep struct {
	Key            repcache.Key
	Texts1, Texts2 []string
}

// Recovered is the committed state replayed at Open.
type Recovered struct {
	// Graphs holds every live graph, sorted by ascending version.
	Graphs []RecoveredGraph
	// Reps holds the reloadable representation-cache spill entries.
	Reps []RecoveredRep
	// NextVersion is the highest version ever committed (including
	// deleted and overwritten entries); the store resumes from it so
	// versions stay monotonic across restarts.
	NextVersion int64
	// JournalRecords counts the records replayed over the manifest.
	JournalRecords int64
	// TornSegments counts segments whose tail was discarded as torn.
	TornSegments int
	// RepsSkipped counts spill entries dropped as unreadable (a cache
	// loses nothing but warmth).
	RepsSkipped int
}

// Metrics is the counter set surfaced on /metrics.
type Metrics struct {
	// JournalRecordsTotal counts records replayed at boot plus records
	// appended since.
	JournalRecordsTotal int64
	// RecoveryNS is the wall time of the boot-time recovery.
	RecoveryNS int64
	// SnapshotBytes is the on-disk size of the content files and
	// manifest referenced by the committed state, refreshed at open and
	// after each compaction.
	SnapshotBytes int64
	// CompactionsTotal counts manifest rewrites.
	CompactionsTotal int64
	// RecoveryManifestNS, RecoveryReplayNS and RecoveryLoadNS break
	// RecoveryNS into its phases: manifest read, journal replay, and
	// snapshot load+verify.
	RecoveryManifestNS int64
	RecoveryReplayNS   int64
	RecoveryLoadNS     int64
}

// Log is the durable store: an fsync'd journal of mutations over
// content-addressed snapshot files. All mutations serialize on one
// mutex; the fsync per commit dominates anyway. A Log tracks the
// committed state (records, not graph content) so compaction can write
// a manifest without asking the in-memory store.
type Log struct {
	cfg Config
	fs  FS
	dir string

	mu          sync.Mutex
	err         error // sticky journal failure (ErrLogFailed cause)
	closed      bool
	live        map[string]GraphRecord
	reps        map[repcache.Key]bool
	nextVersion int64
	seg         File  // active journal segment
	segSeq      int64 // its sequence number
	manifestSeq int64 // last written manifest sequence
	since       int64 // records since the last manifest

	journalRecords     atomic.Int64
	recoveryNS         atomic.Int64
	recoveryManifestNS atomic.Int64
	recoveryReplayNS   atomic.Int64
	recoveryLoadNS     atomic.Int64
	snapshotBytes      atomic.Int64
	compactions        atomic.Int64

	// fsyncHist and snapshotHist are nil-safe histograms (nil when
	// Config.Obs is nil); observing on them is then a no-op.
	fsyncHist    *obs.Histogram
	snapshotHist *obs.Histogram

	compactCh chan struct{}
	done      chan struct{}
	wg        sync.WaitGroup
}

func (l *Log) walDir() string    { return filepath.Join(l.dir, "wal") }
func (l *Log) graphsDir() string { return filepath.Join(l.dir, "graphs") }
func (l *Log) gtsDir() string    { return filepath.Join(l.dir, "gts") }
func (l *Log) repsDir() string   { return filepath.Join(l.dir, "reps") }

func graphFileName(checksum uint64) string { return fmt.Sprintf("%016x.edges", checksum) }
func keyFileName(k repcache.Key, ext string) string {
	return fmt.Sprintf("%016x%016x%s", k.Hi, k.Lo, ext)
}
func segFileName(seq int64) string      { return fmt.Sprintf("wal-%010d.log", seq) }
func manifestFileName(seq int64) string { return fmt.Sprintf("MANIFEST-%010d", seq) }

// manifestJSON is the on-disk snapshot of the committed state. Scale
// round-trips exactly: encoding/json emits the shortest representation
// that parses back to the same float64.
type manifestJSON struct {
	Seq         int64           `json:"seq"`
	NextVersion int64           `json:"next_version"`
	WalFloor    int64           `json:"wal_floor"`
	Graphs      []manifestGraph `json:"graphs"`
	Reps        []string        `json:"reps,omitempty"`
}

type manifestGraph struct {
	Name      string  `json:"name"`
	Version   int64   `json:"version"`
	Checksum  string  `json:"checksum"` // 16 hex digits: JSON numbers lose uint64 precision
	Source    string  `json:"source"`
	Dataset   string  `json:"dataset,omitempty"`
	Seed      int64   `json:"seed,omitempty"`
	Scale     float64 `json:"scale,omitempty"`
	CreatedNS int64   `json:"created_ns"`
	GT        string  `json:"gt,omitempty"` // 32 hex digits
}

func parseHexKey(s string) (repcache.Key, error) {
	var k repcache.Key
	if len(s) != 32 {
		return k, fmt.Errorf("durable: bad content key %q", s)
	}
	if _, err := fmt.Sscanf(s[:16], "%016x", &k.Hi); err != nil {
		return k, err
	}
	if _, err := fmt.Sscanf(s[16:], "%016x", &k.Lo); err != nil {
		return k, err
	}
	return k, nil
}

// Open mounts (creating when absent) the data directory, replays the
// journal over the latest manifest, verifies every live graph snapshot
// against its record checksum, and begins a fresh journal segment. The
// returned Recovered carries the committed state for the store to
// preload; mutations on the Log are accepted immediately.
func Open(cfg Config) (*Log, *Recovered, error) {
	start := time.Now()
	cfg = cfg.withDefaults()
	l := &Log{
		cfg:       cfg,
		fs:        cfg.FS,
		dir:       cfg.Dir,
		live:      map[string]GraphRecord{},
		reps:      map[repcache.Key]bool{},
		compactCh: make(chan struct{}, 1),
		done:      make(chan struct{}),
	}
	l.fsyncHist = cfg.Obs.Histogram("ccer_journal_fsync_seconds",
		"Latency of one journal record append+fsync.")
	l.snapshotHist = cfg.Obs.Histogram("ccer_snapshot_write_seconds",
		"Latency of one durable content-file write (tmp, fsync, rename, dir sync).")
	for _, d := range []string{l.dir, l.walDir(), l.graphsDir(), l.gtsDir(), l.repsDir()} {
		if err := l.fs.MkdirAll(d); err != nil {
			return nil, nil, fmt.Errorf("durable: mkdir %s: %w", d, err)
		}
	}
	l.removeStrayTmp()

	rec := &Recovered{}
	phase := time.Now()
	manifest, err := l.readCurrentManifest()
	if err != nil {
		return nil, nil, err
	}
	var walFloor int64
	if manifest != nil {
		l.manifestSeq = manifest.Seq
		l.nextVersion = manifest.NextVersion
		walFloor = manifest.WalFloor
		for _, mg := range manifest.Graphs {
			gr := GraphRecord{
				Name:    mg.Name,
				Version: mg.Version,
				Source:  mg.Source,
				Dataset: mg.Dataset,
				Seed:    mg.Seed,
				Scale:   mg.Scale,
				Created: time.Unix(0, mg.CreatedNS),
			}
			if _, err := fmt.Sscanf(mg.Checksum, "%016x", &gr.Checksum); err != nil {
				return nil, nil, fmt.Errorf("durable: manifest graph %q: bad checksum %q", mg.Name, mg.Checksum)
			}
			if mg.GT != "" {
				gr.GTRef, err = parseHexKey(mg.GT)
				if err != nil {
					return nil, nil, fmt.Errorf("durable: manifest graph %q: %w", mg.Name, err)
				}
				gr.HasGT = true
			}
			l.live[gr.Name] = gr
		}
		for _, rk := range manifest.Reps {
			k, err := parseHexKey(rk)
			if err != nil {
				return nil, nil, fmt.Errorf("durable: manifest rep: %w", err)
			}
			l.reps[k] = true
		}
	}

	l.recoveryManifestNS.Store(time.Since(phase).Nanoseconds())
	phase = time.Now()

	// Replay journal segments at or above the manifest's floor, in
	// sequence order, stopping inside each segment at the first invalid
	// frame (the torn tail a crash leaves behind).
	segs, maxSeq, err := l.listSegments()
	if err != nil {
		return nil, nil, err
	}
	for _, seq := range segs {
		if seq < walFloor {
			continue
		}
		data, err := l.readFile(filepath.Join(l.walDir(), segFileName(seq)))
		if err != nil {
			return nil, nil, fmt.Errorf("durable: read journal segment %d: %w", seq, err)
		}
		recs, torn := replayRecords(data)
		if torn {
			rec.TornSegments++
		}
		for _, r := range recs {
			l.applyLocked(r)
		}
		rec.JournalRecords += int64(len(recs))
	}
	l.recoveryReplayNS.Store(time.Since(phase).Nanoseconds())
	phase = time.Now()

	// Load and verify every live graph, plus the ground truths and
	// representation spill they reference.
	gts := map[repcache.Key]*dataset.GroundTruth{}
	for _, gr := range l.sortedLive() {
		g, err := l.loadGraph(gr)
		if err != nil {
			return nil, nil, err
		}
		rg := RecoveredGraph{Record: gr, Graph: g}
		if gr.HasGT {
			gt, ok := gts[gr.GTRef]
			if !ok {
				gt, err = l.loadGT(gr.GTRef)
				if err != nil {
					return nil, nil, fmt.Errorf("durable: graph %q: %w", gr.Name, err)
				}
				gts[gr.GTRef] = gt
			}
			rg.GT = gt
		}
		rec.Graphs = append(rec.Graphs, rg)
	}
	for _, k := range l.sortedRepKeys() {
		texts1, texts2, err := l.loadRep(k)
		if err != nil {
			// A spill entry is pure cache: drop it rather than refuse
			// to boot, but forget it so compaction stops referencing it.
			delete(l.reps, k)
			rec.RepsSkipped++
			continue
		}
		rec.Reps = append(rec.Reps, RecoveredRep{Key: k, Texts1: texts1, Texts2: texts2})
	}
	rec.NextVersion = l.nextVersion
	l.recoveryLoadNS.Store(time.Since(phase).Nanoseconds())

	// Begin a fresh segment strictly after everything on disk, so a
	// torn tail in an old segment is never appended to.
	l.segSeq = maxSeq + 1
	if l.segSeq <= walFloor {
		l.segSeq = walFloor + 1
	}
	seg, err := l.fs.Append(filepath.Join(l.walDir(), segFileName(l.segSeq)))
	if err != nil {
		return nil, nil, fmt.Errorf("durable: open journal segment: %w", err)
	}
	if err := l.fs.SyncDir(l.walDir()); err != nil {
		seg.Close()
		return nil, nil, err
	}
	l.seg = seg
	l.since = rec.JournalRecords // replayed records compact away at the next manifest
	l.journalRecords.Store(rec.JournalRecords)
	l.refreshSnapshotBytes()
	l.recoveryNS.Store(time.Since(start).Nanoseconds())

	if cfg.CompactEvery > 0 {
		l.wg.Add(1)
		go l.compactor()
	}
	return l, rec, nil
}

// applyLocked folds one journal record into the committed-state view.
func (l *Log) applyLocked(r record) {
	switch r.kind {
	case recPut:
		l.live[r.graph.Name] = r.graph
		if r.graph.Version > l.nextVersion {
			l.nextVersion = r.graph.Version
		}
	case recDelete:
		delete(l.live, r.name)
	case recRepWarm:
		l.reps[r.key] = true
	}
}

func (l *Log) sortedLive() []GraphRecord {
	out := make([]GraphRecord, 0, len(l.live))
	for _, gr := range l.live {
		out = append(out, gr)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Version < out[j].Version })
	return out
}

func (l *Log) sortedRepKeys() []repcache.Key {
	out := make([]repcache.Key, 0, len(l.reps))
	for k := range l.reps {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Hi != out[j].Hi {
			return out[i].Hi < out[j].Hi
		}
		return out[i].Lo < out[j].Lo
	})
	return out
}

// PutGraph commits one graph under rec.Name: its snapshot (and ground
// truth, when present) are made durable first, then the journal record
// is appended and fsync'd. Only after PutGraph returns nil may the
// caller make the entry visible.
func (l *Log) PutGraph(rec GraphRecord, g *graph.Bipartite, gt *dataset.GroundTruth) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return err
	}
	if err := l.ensureGraphFile(rec.Checksum, g); err != nil {
		return err
	}
	rec.HasGT = false
	rec.GTRef = repcache.Key{}
	if gt != nil && len(gt.Pairs) > 0 {
		key := gtKey(gt)
		if err := l.ensureGTFile(key, gt); err != nil {
			return err
		}
		rec.GTRef, rec.HasGT = key, true
	}
	if err := l.appendLocked(record{kind: recPut, graph: rec}); err != nil {
		return err
	}
	l.applyLocked(record{kind: recPut, graph: rec})
	return nil
}

// DeleteGraph commits the removal of name. Deleting an absent name is a
// durable no-op.
func (l *Log) DeleteGraph(name string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return err
	}
	if _, ok := l.live[name]; !ok {
		return nil
	}
	if err := l.appendLocked(record{kind: recDelete, name: name}); err != nil {
		return err
	}
	l.applyLocked(record{kind: recDelete, name: name})
	return nil
}

// WarmRep spills one representation-cache entry: the input text columns
// are written content-addressed under key, then the key is journaled.
// Re-spilling a live key is a no-op.
func (l *Log) WarmRep(key repcache.Key, texts1, texts2 []string) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return err
	}
	if l.reps[key] {
		return nil
	}
	if err := l.ensureRepFile(key, texts1, texts2); err != nil {
		return err
	}
	if err := l.appendLocked(record{kind: recRepWarm, key: key}); err != nil {
		return err
	}
	l.applyLocked(record{kind: recRepWarm, key: key})
	return nil
}

func (l *Log) usableLocked() error {
	if l.closed {
		return errors.New("durable: log closed")
	}
	if l.err != nil {
		return fmt.Errorf("%w: %w", ErrLogFailed, l.err)
	}
	return nil
}

// appendLocked frames, writes and fsyncs one record. Any error is
// sticky: the segment tail may hold a partial frame, and records
// appended after it would be unreachable to replay.
func (l *Log) appendLocked(r record) error {
	start := time.Now()
	if err := appendFrame(l.seg, encodeRecord(r)); err != nil {
		l.err = err
		return fmt.Errorf("%w: %w", ErrLogFailed, err)
	}
	if err := l.seg.Sync(); err != nil {
		l.err = err
		return fmt.Errorf("%w: %w", ErrLogFailed, err)
	}
	l.fsyncHist.Since(start)
	l.journalRecords.Add(1)
	l.since++
	if l.since >= int64(l.cfg.CompactRecords) {
		select {
		case l.compactCh <- struct{}{}:
		default:
		}
	}
	return nil
}

// writeContentFile writes a content-addressed file durably: temp file,
// fsync, rename into place, fsync the directory. Existing files are
// left alone (same name means same content).
func (l *Log) writeContentFile(dir, name string, write func(io.Writer) error) error {
	if _, err := l.fs.Stat(filepath.Join(dir, name)); err == nil {
		return nil
	}
	return l.writeFileAtomic(dir, name, write)
}

// writeFileAtomic writes a file durably (temp file, fsync, rename,
// fsync the directory), UNCONDITIONALLY replacing any existing file of
// that name. Manifests must go through here, never writeContentFile: a
// manifest's name is a sequence number, not a content address, so an
// existing MANIFEST-<seq> may be a stale leftover from a previous
// process life that crashed after renaming it into place but before
// flipping CURRENT. Treating that leftover as already-written and then
// pointing CURRENT at it would resurrect the dead life's state — and
// the GC that follows would delete the journal segments holding every
// record committed since, losing acknowledged writes.
func (l *Log) writeFileAtomic(dir, name string, write func(io.Writer) error) error {
	final := filepath.Join(dir, name)
	start := time.Now()
	tmp := filepath.Join(dir, "tmp-"+name)
	f, err := l.fs.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := l.fs.Rename(tmp, final); err != nil {
		return err
	}
	if err := l.fs.SyncDir(dir); err != nil {
		return err
	}
	l.snapshotHist.Since(start)
	return nil
}

func (l *Log) ensureGraphFile(checksum uint64, g *graph.Bipartite) error {
	return l.writeContentFile(l.graphsDir(), graphFileName(checksum), g.WriteEdgeList)
}

// gtKey content-hashes a ground truth's pair set.
func gtKey(gt *dataset.GroundTruth) repcache.Key {
	h := repcache.NewHasher(0x617)
	h.Uint64(uint64(len(gt.Pairs)))
	for _, p := range gt.Pairs {
		h.Uint64(uint64(uint32(p[0]))<<32 | uint64(uint32(p[1])))
	}
	return h.Key()
}

func (l *Log) ensureGTFile(key repcache.Key, gt *dataset.GroundTruth) error {
	return l.writeContentFile(l.gtsDir(), keyFileName(key, ".json"), func(w io.Writer) error {
		return json.NewEncoder(w).Encode(struct {
			Pairs [][2]int32 `json:"pairs"`
		}{Pairs: gt.Pairs})
	})
}

func (l *Log) ensureRepFile(key repcache.Key, texts1, texts2 []string) error {
	return l.writeContentFile(l.repsDir(), keyFileName(key, ".reps"), func(w io.Writer) error {
		var bw byteWriter
		bw.u64(uint64(len(texts1)))
		for _, s := range texts1 {
			bw.str(s)
		}
		bw.u64(uint64(len(texts2)))
		for _, s := range texts2 {
			bw.str(s)
		}
		_, err := w.Write(bw.b)
		return err
	})
}

func (l *Log) readFile(path string) ([]byte, error) {
	f, err := l.fs.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}

func (l *Log) loadGraph(gr GraphRecord) (*graph.Bipartite, error) {
	path := filepath.Join(l.graphsDir(), graphFileName(gr.Checksum))
	f, err := l.fs.Open(path)
	if err != nil {
		return nil, fmt.Errorf("durable: graph %q (version %d): snapshot missing: %w", gr.Name, gr.Version, err)
	}
	g, err := graph.ReadEdgeList(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("durable: graph %q (version %d): corrupt snapshot: %w", gr.Name, gr.Version, err)
	}
	if sum := g.Checksum(); sum != gr.Checksum {
		return nil, fmt.Errorf("durable: graph %q (version %d): snapshot checksum %016x, record says %016x",
			gr.Name, gr.Version, sum, gr.Checksum)
	}
	return g, nil
}

func (l *Log) loadGT(key repcache.Key) (*dataset.GroundTruth, error) {
	data, err := l.readFile(filepath.Join(l.gtsDir(), keyFileName(key, ".json")))
	if err != nil {
		return nil, fmt.Errorf("ground truth %s missing: %w", keyFileName(key, ".json"), err)
	}
	var parsed struct {
		Pairs [][2]int32 `json:"pairs"`
	}
	if err := json.Unmarshal(data, &parsed); err != nil {
		return nil, fmt.Errorf("ground truth %s corrupt: %w", keyFileName(key, ".json"), err)
	}
	gt := dataset.NewGroundTruth(parsed.Pairs)
	if got := gtKey(gt); got != key {
		return nil, fmt.Errorf("ground truth %s fails its content hash", keyFileName(key, ".json"))
	}
	return gt, nil
}

func (l *Log) loadRep(key repcache.Key) (texts1, texts2 []string, err error) {
	data, err := l.readFile(filepath.Join(l.repsDir(), keyFileName(key, ".reps")))
	if err != nil {
		return nil, nil, err
	}
	r := byteReader{b: data}
	read := func() []string {
		n := r.u64()
		if r.bad || n > uint64(len(r.b)) {
			r.bad = true
			return nil
		}
		out := make([]string, 0, n)
		for i := uint64(0); i < n; i++ {
			out = append(out, r.str())
		}
		return out
	}
	texts1 = read()
	texts2 = read()
	if !r.done() {
		return nil, nil, fmt.Errorf("durable: rep spill %s corrupt", keyFileName(key, ".reps"))
	}
	return texts1, texts2, nil
}

func (l *Log) readCurrentManifest() (*manifestJSON, error) {
	data, err := l.readFile(filepath.Join(l.dir, "CURRENT"))
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil // fresh directory
	}
	if err != nil {
		return nil, fmt.Errorf("durable: read CURRENT: %w", err)
	}
	name := strings.TrimSpace(string(data))
	if !strings.HasPrefix(name, "MANIFEST-") {
		return nil, fmt.Errorf("durable: CURRENT names %q, not a manifest", name)
	}
	raw, err := l.readFile(filepath.Join(l.dir, name))
	if err != nil {
		return nil, fmt.Errorf("durable: manifest %s: %w", name, err)
	}
	var m manifestJSON
	if err := json.Unmarshal(raw, &m); err != nil {
		return nil, fmt.Errorf("durable: manifest %s corrupt: %w", name, err)
	}
	return &m, nil
}

func (l *Log) listSegments() (seqs []int64, max int64, err error) {
	names, err := l.fs.ReadDir(l.walDir())
	if err != nil {
		return nil, 0, err
	}
	for _, n := range names {
		var seq int64
		if _, err := fmt.Sscanf(n, "wal-%d.log", &seq); err == nil {
			seqs = append(seqs, seq)
			if seq > max {
				max = seq
			}
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, max, nil
}

// removeStrayTmp deletes half-written temp files a crash left behind.
func (l *Log) removeStrayTmp() {
	for _, d := range []string{l.dir, l.graphsDir(), l.gtsDir(), l.repsDir()} {
		names, err := l.fs.ReadDir(d)
		if err != nil {
			continue
		}
		for _, n := range names {
			if strings.HasPrefix(n, "tmp-") {
				_ = l.fs.Remove(filepath.Join(d, n))
			}
		}
	}
}

// Compact writes a fresh manifest of the committed state, rolls the
// journal to a new segment, and garbage-collects segments and content
// files the manifest no longer references.
func (l *Log) Compact() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.usableLocked(); err != nil {
		return err
	}
	return l.compactLocked()
}

func (l *Log) compactLocked() error {
	// Roll the segment first: records committed after the state below
	// is snapshotted land in the new segment, which stays above the
	// manifest's floor (replaying a record already in the manifest is
	// idempotent, losing one is not). The mutex is held throughout, so
	// in fact nothing interleaves; the ordering keeps the invariant
	// obvious.
	if err := l.seg.Close(); err != nil {
		l.err = err
		return fmt.Errorf("%w: %w", ErrLogFailed, err)
	}
	l.segSeq++
	seg, err := l.fs.Append(filepath.Join(l.walDir(), segFileName(l.segSeq)))
	if err != nil {
		l.err = err
		return fmt.Errorf("%w: %w", ErrLogFailed, err)
	}
	if err := l.fs.SyncDir(l.walDir()); err != nil {
		seg.Close()
		l.err = err
		return fmt.Errorf("%w: %w", ErrLogFailed, err)
	}
	l.seg = seg

	m := manifestJSON{
		Seq:         l.manifestSeq + 1,
		NextVersion: l.nextVersion,
		WalFloor:    l.segSeq,
	}
	for _, gr := range l.sortedLive() {
		mg := manifestGraph{
			Name:      gr.Name,
			Version:   gr.Version,
			Checksum:  fmt.Sprintf("%016x", gr.Checksum),
			Source:    gr.Source,
			Dataset:   gr.Dataset,
			Seed:      gr.Seed,
			Scale:     gr.Scale,
			CreatedNS: gr.Created.UnixNano(),
		}
		if gr.HasGT {
			mg.GT = fmt.Sprintf("%016x%016x", gr.GTRef.Hi, gr.GTRef.Lo)
		}
		m.Graphs = append(m.Graphs, mg)
	}
	for _, k := range l.sortedRepKeys() {
		m.Reps = append(m.Reps, fmt.Sprintf("%016x%016x", k.Hi, k.Lo))
	}
	raw, err := json.MarshalIndent(&m, "", " ")
	if err != nil {
		return err
	}
	name := manifestFileName(m.Seq)
	writeRaw := func(w io.Writer) error { _, err := w.Write(raw); return err }
	if err := l.writeFileAtomic(l.dir, name, writeRaw); err != nil {
		// The old manifest and floor still describe a consistent state;
		// nothing was acknowledged against this one. Not sticky.
		return err
	}
	current := func(w io.Writer) error { _, err := io.WriteString(w, name+"\n"); return err }
	tmp := filepath.Join(l.dir, "tmp-CURRENT")
	f, err := l.fs.Create(tmp)
	if err != nil {
		return err
	}
	if err := current(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := l.fs.Rename(tmp, filepath.Join(l.dir, "CURRENT")); err != nil {
		return err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		return err
	}
	l.manifestSeq = m.Seq
	l.since = 0
	l.compactions.Add(1)
	l.gcLocked()
	l.refreshSnapshotBytes()
	return nil
}

// gcLocked removes journal segments below the floor, superseded
// manifests, and content files no live record references. Errors are
// ignored: everything here is garbage already and retried next time.
func (l *Log) gcLocked() {
	segs, _, err := l.listSegments()
	if err == nil {
		for _, seq := range segs {
			if seq < l.segSeq {
				_ = l.fs.Remove(filepath.Join(l.walDir(), segFileName(seq)))
			}
		}
	}
	if names, err := l.fs.ReadDir(l.dir); err == nil {
		for _, n := range names {
			var seq int64
			if _, err := fmt.Sscanf(n, "MANIFEST-%d", &seq); err == nil && seq != l.manifestSeq {
				_ = l.fs.Remove(filepath.Join(l.dir, n))
			}
		}
	}
	keep := map[string]bool{}
	for _, gr := range l.live {
		keep[graphFileName(gr.Checksum)] = true
		if gr.HasGT {
			keep[keyFileName(gr.GTRef, ".json")] = true
		}
	}
	for k := range l.reps {
		keep[keyFileName(k, ".reps")] = true
	}
	for _, d := range []string{l.graphsDir(), l.gtsDir(), l.repsDir()} {
		names, err := l.fs.ReadDir(d)
		if err != nil {
			continue
		}
		for _, n := range names {
			if !keep[n] {
				_ = l.fs.Remove(filepath.Join(d, n))
			}
		}
	}
}

// refreshSnapshotBytes sums the sizes of the content files the
// committed state references, plus the current manifest.
func (l *Log) refreshSnapshotBytes() {
	var total int64
	add := func(path string) {
		if n, err := l.fs.Stat(path); err == nil {
			total += n
		}
	}
	seenGT := map[repcache.Key]bool{}
	for _, gr := range l.live {
		add(filepath.Join(l.graphsDir(), graphFileName(gr.Checksum)))
		if gr.HasGT && !seenGT[gr.GTRef] {
			seenGT[gr.GTRef] = true
			add(filepath.Join(l.gtsDir(), keyFileName(gr.GTRef, ".json")))
		}
	}
	for k := range l.reps {
		add(filepath.Join(l.repsDir(), keyFileName(k, ".reps")))
	}
	if l.manifestSeq > 0 {
		add(filepath.Join(l.dir, manifestFileName(l.manifestSeq)))
	}
	l.snapshotBytes.Store(total)
}

// compactor is the background snapshot goroutine: it compacts on a
// timer and when the record-count threshold nudges it.
func (l *Log) compactor() {
	defer l.wg.Done()
	ticker := time.NewTicker(l.cfg.CompactEvery)
	defer ticker.Stop()
	for {
		select {
		case <-l.done:
			return
		case <-ticker.C:
		case <-l.compactCh:
		}
		l.mu.Lock()
		if !l.closed && l.err == nil && l.since > 0 {
			_ = l.compactLocked() // kept state is still consistent on error
		}
		l.mu.Unlock()
	}
}

// Metrics returns the counter snapshot. A nil Log reports zeros so the
// serve layer needs no branches.
func (l *Log) Metrics() Metrics {
	if l == nil {
		return Metrics{}
	}
	return Metrics{
		JournalRecordsTotal: l.journalRecords.Load(),
		RecoveryNS:          l.recoveryNS.Load(),
		SnapshotBytes:       l.snapshotBytes.Load(),
		CompactionsTotal:    l.compactions.Load(),
		RecoveryManifestNS:  l.recoveryManifestNS.Load(),
		RecoveryReplayNS:    l.recoveryReplayNS.Load(),
		RecoveryLoadNS:      l.recoveryLoadNS.Load(),
	}
}

// Err reports the sticky journal failure, or nil while the log is
// healthy. A nil or closed-but-healthy Log reports nil; once an append
// or fsync has failed every future mutation fails, so health checks
// use this to flag the process as degraded.
func (l *Log) Err() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrLogFailed, l.err)
}

// Close stops the compactor, writes a final manifest when records
// accumulated since the last one, and closes the active segment. A nil
// Log is a no-op.
func (l *Log) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	close(l.done)
	l.mu.Unlock()
	l.wg.Wait()

	l.mu.Lock()
	defer l.mu.Unlock()
	var err error
	if l.err == nil && l.since > 0 {
		err = l.compactLocked()
	}
	l.closed = true
	if cerr := l.seg.Close(); err == nil && l.err == nil {
		err = cerr
	}
	return err
}
