package durable

import (
	"bytes"
	"math"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"github.com/ccer-go/ccer/internal/repcache"
)

func frameOf(t testing.TB, rec record) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := appendFrame(&buf, encodeRecord(rec)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func putRec(name string, version int64, checksum uint64) record {
	return record{kind: recPut, graph: GraphRecord{
		Name:     name,
		Version:  version,
		Checksum: checksum,
		Source:   "generate",
		Dataset:  "D2",
		Seed:     7,
		Scale:    0.02,
		Created:  time.Unix(0, 1234567890),
	}}
}

func TestRecordRoundTrip(t *testing.T) {
	recs := []record{
		putRec("a", 1, 0xdeadbeef),
		{kind: recPut, graph: GraphRecord{
			Name: "gt-bearing", Version: 9, Checksum: 42, Source: "generate",
			Created: time.Unix(0, 5), HasGT: true,
			GTRef: repcache.Key{Hi: 0x1122, Lo: 0x3344},
		}},
		{kind: recDelete, name: "a"},
		{kind: recRepWarm, key: repcache.Key{Hi: 1, Lo: 2}},
	}
	for _, want := range recs {
		got, err := decodeRecord(encodeRecord(want))
		if err != nil {
			t.Fatalf("decode(encode(%+v)): %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("round trip:\n got %+v\nwant %+v", got, want)
		}
	}
}

func TestDecodeRejectsMalformed(t *testing.T) {
	cases := map[string][]byte{
		"empty":          {},
		"unknown kind":   {99},
		"empty put name": encodeRecord(putRec("", 1, 2)),
		"empty delete":   encodeRecord(record{kind: recDelete}),
		"truncated put":  encodeRecord(putRec("a", 1, 2))[:10],
		"trailing bytes": append(encodeRecord(record{kind: recDelete, name: "x"}), 0),
		"nan scale":      encodeRecord(record{kind: recPut, graph: GraphRecord{Name: "a", Scale: math.NaN()}}),
		"inf scale":      encodeRecord(record{kind: recPut, graph: GraphRecord{Name: "a", Scale: math.Inf(1)}}),
		"repwarm short":  encodeRecord(record{kind: recRepWarm})[:9],
		"repwarm tail":   append(encodeRecord(record{kind: recRepWarm}), 1, 2, 3),
	}
	for name, payload := range cases {
		if _, err := decodeRecord(payload); err == nil {
			t.Errorf("%s: decodeRecord accepted %x", name, payload)
		}
	}
}

// TestReplayStopsAtTornTail pins the torn-tail contract on hand-built
// segment images: everything before the first invalid frame replays,
// nothing after it does — even when whole valid frames follow the tear.
func TestReplayStopsAtTornTail(t *testing.T) {
	a := frameOf(t, putRec("a", 1, 10))
	b := frameOf(t, putRec("b", 2, 20))
	c := frameOf(t, record{kind: recDelete, name: "a"})

	join := func(parts ...[]byte) []byte {
		var out []byte
		for _, p := range parts {
			out = append(out, p...)
		}
		return out
	}
	cases := []struct {
		name string
		data []byte
		want int
		torn bool
	}{
		{"empty", nil, 0, false},
		{"clean", join(a, b, c), 3, false},
		{"truncated header", join(a, b[:3]), 1, true},
		{"truncated payload", join(a, b[:len(b)-2]), 1, true},
		{"flipped payload bit", join(a, flip(b, len(b)-1), c), 1, true},
		{"flipped length field", join(flip(a, 0), b), 0, true},
		{"valid frame, bad record", join(a, frameOfRaw(t, []byte{77}), b), 1, true},
		{"garbage only", []byte("not a journal"), 0, true},
	}
	for _, tc := range cases {
		recs, torn := replayRecords(tc.data)
		if len(recs) != tc.want || torn != tc.torn {
			t.Errorf("%s: replay = %d records, torn=%v; want %d, torn=%v",
				tc.name, len(recs), torn, tc.want, tc.torn)
		}
	}
}

func flip(b []byte, i int) []byte {
	out := append([]byte(nil), b...)
	out[i] ^= 0x40
	return out
}

// frameOfRaw frames an arbitrary payload (even one that is not a valid
// record), for attacking the record decoder through a CRC-valid frame.
func frameOfRaw(t testing.TB, payload []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := appendFrame(&buf, payload); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzJournalReplay feeds arbitrary bytes to the segment decoder and
// checks its safety contract: it never panics, it is deterministic, it
// stops dead at the first invalid frame (bytes after a tear can never
// resurrect a record), and on a clean image a subsequently appended
// record is replayed — i.e. the decoder finds exactly the committed
// prefix.
func FuzzJournalReplay(f *testing.F) {
	a := frameOf(f, putRec("a", 1, 10))
	b := frameOf(f, record{kind: recDelete, name: "a"})
	w := frameOf(f, record{kind: recRepWarm, key: repcache.Key{Hi: 3, Lo: 4}})
	f.Add([]byte{})
	f.Add(a)
	f.Add(append(append([]byte(nil), a...), b...))
	f.Add(append(append([]byte(nil), a...), w[:5]...))
	f.Add([]byte("garbage garbage garbage"))
	f.Add(frameOfRaw(f, []byte{99, 1, 2, 3}))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, torn := replayRecords(data)
		recs2, torn2 := replayRecords(data)
		if len(recs) != len(recs2) || torn != torn2 {
			t.Fatalf("nondeterministic replay: (%d,%v) vs (%d,%v)", len(recs), torn, len(recs2), torn2)
		}
		// Every replayed record survives an encode/decode round trip:
		// only well-formed records come out of the decoder.
		for _, r := range recs {
			if _, err := decodeRecord(encodeRecord(r)); err != nil {
				t.Fatalf("replayed record does not re-encode: %+v: %v", r, err)
			}
		}
		extra := frameOf(t, putRec("appended", 99, 999))
		extended, extTorn := replayRecords(append(append([]byte(nil), data...), extra...))
		if torn {
			// Uncommitted tail: appending a valid frame after the tear
			// must not resurrect anything.
			if len(extended) != len(recs) || !extTorn {
				t.Fatalf("bytes after a torn tail replayed: %d -> %d records", len(recs), len(extended))
			}
		} else {
			// Clean image: an appended commit is found, exactly once.
			if len(extended) != len(recs)+1 || extTorn {
				t.Fatalf("append to clean image: %d -> %d records (torn=%v)", len(recs), len(extended), extTorn)
			}
		}
	})
}

// TestReplayEquivalentToState is the satellite property test: folding a
// journal (generated from a random mutation sequence) over an empty
// state reproduces the reference in-memory state — live set, versions,
// deletion tombstones and warm-rep keys — via testing/quick over random
// operation sequences.
func TestReplayEquivalentToState(t *testing.T) {
	type op struct {
		Kind uint8
		Name uint8 // small namespace so deletes and overwrites hit
		Ver  int64
		Sum  uint64
	}
	names := []string{"a", "b", "c", "d"}
	prop := func(ops []op) bool {
		// Reference state, maintained directly.
		live := map[string]GraphRecord{}
		reps := map[repcache.Key]bool{}
		var maxVer int64
		var image []byte

		var buf bytes.Buffer
		nextVer := int64(0)
		for _, o := range ops {
			name := names[int(o.Name)%len(names)]
			switch o.Kind % 3 {
			case 0: // put
				nextVer++
				r := putRec(name, nextVer, o.Sum)
				buf.Reset()
				if err := appendFrame(&buf, encodeRecord(r)); err != nil {
					t.Fatal(err)
				}
				image = append(image, buf.Bytes()...)
				live[name] = r.graph
				if nextVer > maxVer {
					maxVer = nextVer
				}
			case 1: // delete (tombstone; deleting absent names journals too)
				r := record{kind: recDelete, name: name}
				buf.Reset()
				if err := appendFrame(&buf, encodeRecord(r)); err != nil {
					t.Fatal(err)
				}
				image = append(image, buf.Bytes()...)
				delete(live, name)
			case 2: // warm rep
				k := repcache.Key{Hi: o.Sum, Lo: uint64(o.Ver)}
				r := record{kind: recRepWarm, key: k}
				buf.Reset()
				if err := appendFrame(&buf, encodeRecord(r)); err != nil {
					t.Fatal(err)
				}
				image = append(image, buf.Bytes()...)
				reps[k] = true
			}
		}

		// Replay the image the way Open does.
		recs, torn := replayRecords(image)
		if torn || len(recs) != len(ops) {
			return false
		}
		l := &Log{live: map[string]GraphRecord{}, reps: map[repcache.Key]bool{}}
		for _, r := range recs {
			l.applyLocked(r)
		}
		if l.nextVersion != maxVer {
			return false
		}
		if !reflect.DeepEqual(l.live, live) {
			return false
		}
		return reflect.DeepEqual(l.reps, reps)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
