// Package durable is the persistence layer behind the erserve graph
// store (internal/serve): an append-only, CRC-framed journal of store
// mutations plus content-addressed snapshot files, replayed at boot
// into exactly the committed in-memory state.
//
// Layout of a data directory:
//
//	CURRENT               names the live manifest ("MANIFEST-<seq>")
//	MANIFEST-<seq>        JSON snapshot of the committed store state
//	wal/wal-<seq>.log     journal segments (length-prefixed CRC frames)
//	graphs/<sum>.edges    graph snapshots (edge-list codec), named by
//	                      their graph.Checksum fingerprint
//	gts/<key>.json        ground-truth pair sets, content-hash named
//	reps/<key>.reps       representation-cache spill (the attribute
//	                      text columns a warm attrReps bundle was built
//	                      from), named by the 128-bit repcache key
//
// Every mutation commits by first making its content-addressed files
// durable (write temp, fsync, rename, fsync dir), then appending one
// journal record and fsyncing the segment. A crash at any point leaves
// either no trace of the mutation or the whole of it: recovery replays
// whole, CRC-valid frames only, discards torn tails, and verifies every
// referenced graph snapshot against the checksum stored in its record.
//
// All file access goes through the FS interface so the crash-injection
// harness (internal/durable/crashtest) can substitute an in-memory
// filesystem with fault points and a simulated power cut.
package durable

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is the handle surface the durable layer needs: sequential reads
// or writes plus an explicit fsync.
type File interface {
	io.Reader
	io.Writer
	io.Closer
	// Sync flushes the file content to stable storage; a commit is not
	// acknowledged before it returns.
	Sync() error
}

// FS abstracts the filesystem operations of the durable layer. OSFS is
// the real implementation; the crashtest package provides an in-memory
// one with fault injection and a simulated crash. Paths are slash-joined
// by the callers; implementations may treat them as opaque keys.
type FS interface {
	// MkdirAll creates the directory and its parents.
	MkdirAll(path string) error
	// Create opens path for writing, truncating an existing file.
	Create(path string) (File, error)
	// Append opens path for appending, creating it when absent.
	Append(path string) (File, error)
	// Open opens path for reading.
	Open(path string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(path string) error
	// ReadDir lists the file names inside path, in no particular order.
	// A missing directory returns an empty list, not an error.
	ReadDir(path string) ([]string, error)
	// Stat returns the size of the file at path. A missing file returns
	// an error satisfying os.IsNotExist semantics (errors.Is fs.ErrNotExist).
	Stat(path string) (int64, error)
	// SyncDir fsyncs the directory itself, making renames and creates
	// inside it durable.
	SyncDir(path string) error
}

// OSFS is the production FS over the real filesystem.
type OSFS struct{}

func (OSFS) MkdirAll(path string) error { return os.MkdirAll(path, 0o755) }

func (OSFS) Create(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
}

func (OSFS) Append(path string) (File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
}

func (OSFS) Open(path string) (File, error) { return os.Open(path) }

func (OSFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OSFS) Remove(path string) error { return os.Remove(path) }

func (OSFS) ReadDir(path string) ([]string, error) {
	ents, err := os.ReadDir(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names, nil
}

func (OSFS) Stat(path string) (int64, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return 0, err
	}
	return fi.Size(), nil
}

func (OSFS) SyncDir(path string) error {
	d, err := os.Open(filepath.Clean(path))
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
