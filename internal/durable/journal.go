package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"time"

	"github.com/ccer-go/ccer/internal/repcache"
)

// Journal wire format. Each record is one frame:
//
//	[u32 payload length][u32 CRC-32C of payload][payload]
//
// little-endian, fsync'd after every append. The decoder accepts a
// stream of whole frames and stops cleanly at the first frame that is
// truncated, overlong, or fails its CRC — the torn tail a crash
// mid-append leaves behind. Nothing after the first invalid frame is
// ever replayed, so a record that never finished committing cannot be
// resurrected by the bytes that happen to follow it.

// maxFrame bounds a payload so a corrupted length field cannot demand
// an arbitrary allocation. Journal payloads are metadata (names and
// fixed-width fields); the large blobs live in content-addressed files.
const maxFrame = 1 << 24

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// errTorn reports the end of the decodable prefix of a journal segment.
var errTorn = errors.New("durable: torn or invalid journal frame")

// appendFrame writes one framed payload to w.
func appendFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("durable: journal payload of %d bytes exceeds frame cap", len(payload))
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// frameReader decodes framed payloads from an in-memory segment image.
type frameReader struct {
	data []byte
	off  int
}

// next returns the next whole, CRC-valid payload, io.EOF at a clean end
// of input, or errTorn at a truncated/corrupt frame.
func (r *frameReader) next() ([]byte, error) {
	if r.off == len(r.data) {
		return nil, io.EOF
	}
	if len(r.data)-r.off < 8 {
		return nil, errTorn
	}
	n := int(binary.LittleEndian.Uint32(r.data[r.off : r.off+4]))
	sum := binary.LittleEndian.Uint32(r.data[r.off+4 : r.off+8])
	if n > maxFrame || len(r.data)-r.off-8 < n {
		return nil, errTorn
	}
	payload := r.data[r.off+8 : r.off+8+n]
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, errTorn
	}
	r.off += 8 + n
	return payload, nil
}

// Record kinds.
const (
	recPut     = byte(1) // a graph became (or replaced) the value of a name
	recDelete  = byte(2) // a name was removed
	recRepWarm = byte(3) // a representation-cache entry became warm
)

// GraphRecord is the durable metadata of one committed graph: everything
// a serve.GraphEntry carries except the graph and ground truth
// themselves, which live in content-addressed files named by Checksum
// and GTRef.
type GraphRecord struct {
	Name     string
	Version  int64
	Checksum uint64
	Source   string
	Dataset  string
	Seed     int64
	Scale    float64
	Created  time.Time
	// GTRef is the content key of the ground-truth file, zero when the
	// graph has none (uploads).
	GTRef repcache.Key
	// HasGT distinguishes "no ground truth" from a zero key.
	HasGT bool
}

// record is one decoded journal record.
type record struct {
	kind  byte
	graph GraphRecord  // recPut
	name  string       // recDelete
	key   repcache.Key // recRepWarm
}

// byteWriter builds a record payload.
type byteWriter struct{ b []byte }

func (w *byteWriter) u8(v byte) { w.b = append(w.b, v) }

func (w *byteWriter) u64(v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	w.b = append(w.b, buf[:]...)
}

func (w *byteWriter) str(s string) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(len(s)))
	w.b = append(w.b, buf[:]...)
	w.b = append(w.b, s...)
}

// byteReader parses a record payload with bounds checks; any overrun
// marks the record invalid instead of panicking.
type byteReader struct {
	b   []byte
	off int
	bad bool
}

func (r *byteReader) u8() byte {
	if r.bad || len(r.b)-r.off < 1 {
		r.bad = true
		return 0
	}
	v := r.b[r.off]
	r.off++
	return v
}

func (r *byteReader) u64() uint64 {
	if r.bad || len(r.b)-r.off < 8 {
		r.bad = true
		return 0
	}
	v := binary.LittleEndian.Uint64(r.b[r.off : r.off+8])
	r.off += 8
	return v
}

func (r *byteReader) str() string {
	if r.bad || len(r.b)-r.off < 4 {
		r.bad = true
		return ""
	}
	n := int(binary.LittleEndian.Uint32(r.b[r.off : r.off+4]))
	r.off += 4
	if n < 0 || len(r.b)-r.off < n {
		r.bad = true
		return ""
	}
	s := string(r.b[r.off : r.off+n])
	r.off += n
	return s
}

// done reports a fully-consumed, well-formed payload.
func (r *byteReader) done() bool { return !r.bad && r.off == len(r.b) }

func encodeRecord(rec record) []byte {
	var w byteWriter
	w.u8(rec.kind)
	switch rec.kind {
	case recPut:
		g := rec.graph
		w.u64(uint64(g.Version))
		w.u64(g.Checksum)
		w.u64(uint64(g.Seed))
		w.u64(math.Float64bits(g.Scale))
		w.u64(uint64(g.Created.UnixNano()))
		if g.HasGT {
			w.u8(1)
			w.u64(g.GTRef.Hi)
			w.u64(g.GTRef.Lo)
		} else {
			w.u8(0)
		}
		w.str(g.Name)
		w.str(g.Source)
		w.str(g.Dataset)
	case recDelete:
		w.str(rec.name)
	case recRepWarm:
		w.u64(rec.key.Hi)
		w.u64(rec.key.Lo)
	}
	return w.b
}

// decodeRecord parses a payload. Unknown kinds and malformed payloads
// return an error; the caller treats the frame as invalid and stops.
func decodeRecord(payload []byte) (record, error) {
	r := byteReader{b: payload}
	var rec record
	rec.kind = r.u8()
	switch rec.kind {
	case recPut:
		g := &rec.graph
		g.Version = int64(r.u64())
		g.Checksum = r.u64()
		g.Seed = int64(r.u64())
		g.Scale = math.Float64frombits(r.u64())
		g.Created = time.Unix(0, int64(r.u64()))
		if r.u8() != 0 {
			g.HasGT = true
			g.GTRef.Hi = r.u64()
			g.GTRef.Lo = r.u64()
		}
		g.Name = r.str()
		g.Source = r.str()
		g.Dataset = r.str()
		if g.Name == "" {
			r.bad = true
		}
		if math.IsNaN(g.Scale) || math.IsInf(g.Scale, 0) {
			r.bad = true
		}
	case recDelete:
		rec.name = r.str()
		if rec.name == "" {
			r.bad = true
		}
	case recRepWarm:
		rec.key.Hi = r.u64()
		rec.key.Lo = r.u64()
	default:
		return record{}, fmt.Errorf("durable: unknown record kind %d", rec.kind)
	}
	if !r.done() {
		return record{}, fmt.Errorf("durable: malformed record payload (kind %d)", rec.kind)
	}
	return rec, nil
}

// replayRecords decodes the valid prefix of one journal segment image,
// returning the records before the first invalid frame and whether a
// torn/invalid tail was discarded.
func replayRecords(data []byte) (recs []record, torn bool) {
	r := frameReader{data: data}
	for {
		payload, err := r.next()
		if err == io.EOF {
			return recs, false
		}
		if err != nil {
			return recs, true
		}
		rec, err := decodeRecord(payload)
		if err != nil {
			return recs, true
		}
		recs = append(recs, rec)
	}
}
