package durable_test

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"github.com/ccer-go/ccer/internal/dataset"
	"github.com/ccer-go/ccer/internal/durable"
	"github.com/ccer-go/ccer/internal/durable/crashtest"
	"github.com/ccer-go/ccer/internal/graph"
	"github.com/ccer-go/ccer/internal/repcache"
)

// testGraph builds a tiny bipartite graph whose content (and so its
// checksum) is determined by the weights.
func testGraph(t testing.TB, weights ...float64) *graph.Bipartite {
	t.Helper()
	b := graph.NewBuilder(len(weights), len(weights))
	for i, w := range weights {
		b.Add(int32(i), int32(i), w)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func openLog(t testing.TB, fs durable.FS) (*durable.Log, *durable.Recovered) {
	t.Helper()
	l, rec, err := durable.Open(durable.Config{Dir: "data", FS: fs, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	return l, rec
}

func put(t testing.TB, l *durable.Log, name string, version int64, g *graph.Bipartite, gt *dataset.GroundTruth) durable.GraphRecord {
	t.Helper()
	rec := durable.GraphRecord{
		Name:     name,
		Version:  version,
		Checksum: g.Checksum(),
		Source:   "generate",
		Dataset:  "D2",
		Seed:     1,
		Scale:    0.02,
		Created:  time.Unix(0, version*1000),
	}
	if err := l.PutGraph(rec, g, gt); err != nil {
		t.Fatalf("PutGraph(%s): %v", name, err)
	}
	return rec
}

func TestLogPutReopenRecovers(t *testing.T) {
	mem := crashtest.NewMemFS()
	l, rec := openLog(t, mem)
	if len(rec.Graphs) != 0 || rec.NextVersion != 0 {
		t.Fatalf("fresh dir recovered %d graphs, next version %d", len(rec.Graphs), rec.NextVersion)
	}
	g1 := testGraph(t, 0.9, 0.8)
	g2 := testGraph(t, 0.7)
	g3 := testGraph(t, 0.6, 0.5, 0.4)
	gt := dataset.NewGroundTruth([][2]int32{{0, 0}, {1, 1}})
	put(t, l, "a", 1, g1, nil)
	put(t, l, "b", 2, g2, gt)
	put(t, l, "gone", 3, g3, nil)
	if err := l.DeleteGraph("gone"); err != nil {
		t.Fatal(err)
	}
	put(t, l, "a", 4, g3, nil) // overwrite: name a now holds g3
	if err := l.WarmRep(keyOf(17), []string{"alpha", "beta"}, []string{"gamma"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec2 := openLog(t, mem)
	if rec2.NextVersion != 4 {
		t.Fatalf("NextVersion = %d, want 4 (deleted version still counts)", rec2.NextVersion)
	}
	byName := map[string]durable.RecoveredGraph{}
	for _, rg := range rec2.Graphs {
		byName[rg.Record.Name] = rg
	}
	if len(byName) != 2 {
		t.Fatalf("recovered %d graphs, want 2 (a, b): %v", len(byName), rec2.Graphs)
	}
	if got := byName["a"]; got.Record.Version != 4 || got.Graph.Checksum() != g3.Checksum() {
		t.Fatalf("a recovered as version %d checksum %x; want 4 / %x",
			got.Record.Version, got.Graph.Checksum(), g3.Checksum())
	}
	if got := byName["b"]; got.GT == nil || got.GT.Len() != 2 {
		t.Fatalf("b lost its ground truth: %+v", got.GT)
	}
	if _, dead := byName["gone"]; dead {
		t.Fatal("deleted graph resurrected")
	}
	if len(rec2.Reps) != 1 || rec2.Reps[0].Texts1[0] != "alpha" || rec2.Reps[0].Texts2[0] != "gamma" {
		t.Fatalf("rep spill did not round-trip: %+v", rec2.Reps)
	}
}

func keyOf(seed uint64) repcache.Key {
	return repcache.Key{Hi: seed * 0x9e3779b97f4a7c15, Lo: seed ^ 0xabcdef}
}

// TestLogTornTailDiscarded appends garbage (synced, so it survives the
// crash model) to the active segment and checks recovery stops at the
// tear, recovers everything before it, and never appends to the torn
// segment again.
func TestLogTornTailDiscarded(t *testing.T) {
	mem := crashtest.NewMemFS()
	l, _ := openLog(t, mem)
	put(t, l, "a", 1, testGraph(t, 0.9), nil)
	put(t, l, "b", 2, testGraph(t, 0.8), nil)
	// A torn frame: half a header, fsync'd to stable storage.
	seg, err := mem.Append("data/wal/wal-0000000001.log")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seg.Write([]byte{0xff, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	if err := seg.Sync(); err != nil {
		t.Fatal(err)
	}
	seg.Close()

	crashed := mem.Clone()
	l2, rec := openLog(t, crashed)
	if len(rec.Graphs) != 2 {
		t.Fatalf("recovered %d graphs, want 2", len(rec.Graphs))
	}
	if rec.TornSegments != 1 {
		t.Fatalf("TornSegments = %d, want 1", rec.TornSegments)
	}
	// The next commit must land in a fresh segment, not after the tear —
	// a second recovery sees all three graphs despite the lingering junk.
	put(t, l2, "c", 3, testGraph(t, 0.7), nil)
	_, rec2 := openLog(t, crashed.Clone())
	if len(rec2.Graphs) != 3 {
		t.Fatalf("after post-tear put: recovered %d graphs, want 3", len(rec2.Graphs))
	}
}

// TestLogStickyJournalFailure checks that after one failed journal
// append every later mutation fails too (a half-written frame would
// orphan them at replay), while the state before the failure stays
// recoverable.
func TestLogStickyJournalFailure(t *testing.T) {
	mem := crashtest.NewMemFS()
	faulty := crashtest.NewFaultFS(mem)
	l, _, err := durable.Open(durable.Config{Dir: "data", FS: faulty, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t, 0.9)
	if err := l.PutGraph(recOf("ok", 1, g), g, nil); err != nil {
		t.Fatal(err)
	}
	faulty.Inject(crashtest.Fault{Point: "sync:wal"})
	g2 := testGraph(t, 0.8)
	if err := l.PutGraph(recOf("lost", 2, g2), g2, nil); !errors.Is(err, durable.ErrLogFailed) {
		t.Fatalf("put through failed fsync = %v, want ErrLogFailed", err)
	}
	// The fault was single-shot; the journal must refuse anyway.
	g3 := testGraph(t, 0.7)
	if err := l.PutGraph(recOf("after", 3, g3), g3, nil); !errors.Is(err, durable.ErrLogFailed) {
		t.Fatalf("put after sticky failure = %v, want ErrLogFailed", err)
	}
	if err := l.DeleteGraph("ok"); !errors.Is(err, durable.ErrLogFailed) {
		t.Fatalf("delete after sticky failure = %v, want ErrLogFailed", err)
	}

	_, rec := openLog(t, mem.Clone())
	if len(rec.Graphs) != 1 || rec.Graphs[0].Record.Name != "ok" {
		t.Fatalf("recovered %+v, want exactly the pre-failure graph", rec.Graphs)
	}
}

func recOf(name string, version int64, g *graph.Bipartite) durable.GraphRecord {
	return durable.GraphRecord{
		Name: name, Version: version, Checksum: g.Checksum(),
		Source: "generate", Created: time.Unix(0, version),
	}
}

// TestLogContentFileFailureNotSticky: a failure while writing a snapshot
// file aborts that put but no journal bytes moved, so the log keeps
// accepting mutations.
func TestLogContentFileFailureNotSticky(t *testing.T) {
	mem := crashtest.NewMemFS()
	faulty := crashtest.NewFaultFS(mem)
	l, _, err := durable.Open(durable.Config{Dir: "data", FS: faulty, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	faulty.Inject(crashtest.Fault{Point: "create:graphs"})
	g := testGraph(t, 0.9)
	perr := l.PutGraph(recOf("a", 1, g), g, nil)
	if !errors.Is(perr, crashtest.ErrInjected) {
		t.Fatalf("put through failed snapshot = %v, want ErrInjected", perr)
	}
	if errors.Is(perr, durable.ErrLogFailed) {
		t.Fatal("snapshot failure must not latch the journal")
	}
	if err := l.PutGraph(recOf("a", 2, g), g, nil); err != nil {
		t.Fatalf("retry after snapshot failure: %v", err)
	}
	_, rec := openLog(t, mem.Clone())
	if len(rec.Graphs) != 1 || rec.Graphs[0].Record.Version != 2 {
		t.Fatalf("recovered %+v, want the retried put only", rec.Graphs)
	}
}

// TestLogCompactionTruncatesJournal: after Compact the journal records
// live in the manifest, old segments and unreferenced content files are
// gone, and recovery replays zero records.
func TestLogCompactionTruncatesJournal(t *testing.T) {
	mem := crashtest.NewMemFS()
	l, _ := openLog(t, mem)
	gone := testGraph(t, 0.5)
	put(t, l, "keep", 1, testGraph(t, 0.9), nil)
	put(t, l, "gone", 2, gone, nil)
	if err := l.DeleteGraph("gone"); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(); err != nil {
		t.Fatal(err)
	}
	m := l.Metrics()
	if m.CompactionsTotal != 1 {
		t.Fatalf("CompactionsTotal = %d, want 1", m.CompactionsTotal)
	}
	if m.SnapshotBytes <= 0 {
		t.Fatal("SnapshotBytes not tracked")
	}
	// The deleted graph's snapshot is unreferenced -> collected.
	if _, err := mem.Stat(fmt.Sprintf("data/graphs/%016x.edges", gone.Checksum())); err == nil {
		t.Fatal("unreferenced snapshot survived GC")
	}
	// Only the fresh (post-roll) segment remains.
	segs, err := mem.ReadDir("data/wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("wal segments after compact = %v, want exactly the active one", segs)
	}

	_, rec := openLog(t, mem.Clone())
	if rec.JournalRecords != 0 {
		t.Fatalf("replayed %d journal records after compaction, want 0", rec.JournalRecords)
	}
	if len(rec.Graphs) != 1 || rec.Graphs[0].Record.Name != "keep" {
		t.Fatalf("recovered %+v, want keep only", rec.Graphs)
	}
	if rec.NextVersion != 2 {
		t.Fatalf("NextVersion through manifest = %d, want 2", rec.NextVersion)
	}
}

// TestLogCorruptSnapshotRefusesOpen: a graph snapshot whose bytes no
// longer match the committed checksum must fail recovery loudly, not
// serve wrong data.
func TestLogCorruptSnapshotRefusesOpen(t *testing.T) {
	mem := crashtest.NewMemFS()
	l, _ := openLog(t, mem)
	g := testGraph(t, 0.9)
	put(t, l, "a", 1, g, nil)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Overwrite the snapshot with a parseable edge list of different
	// content (bit rot that still decodes).
	other := testGraph(t, 0.1)
	f, err := mem.Create(fmt.Sprintf("data/graphs/%016x.edges", g.Checksum()))
	if err != nil {
		t.Fatal(err)
	}
	if err := other.WriteEdgeList(f); err != nil {
		t.Fatal(err)
	}
	f.Sync()
	f.Close()

	_, _, err = durable.Open(durable.Config{Dir: "data", FS: mem, CompactEvery: -1})
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("open over corrupt snapshot = %v, want checksum error", err)
	}
}

// TestLogCorruptRepSpillSkipped: a corrupt representation spill is pure
// cache — recovery drops it and boots.
func TestLogCorruptRepSpillSkipped(t *testing.T) {
	mem := crashtest.NewMemFS()
	l, _ := openLog(t, mem)
	put(t, l, "a", 1, testGraph(t, 0.9), nil)
	k := keyOf(3)
	if err := l.WarmRep(k, []string{"x"}, []string{"y"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := mem.Create(fmt.Sprintf("data/reps/%016x%016x.reps", k.Hi, k.Lo))
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("rot"))
	f.Sync()
	f.Close()

	_, rec := openLog(t, mem)
	if len(rec.Graphs) != 1 {
		t.Fatalf("graph lost alongside rep spill: %+v", rec.Graphs)
	}
	if rec.RepsSkipped != 1 || len(rec.Reps) != 0 {
		t.Fatalf("RepsSkipped = %d, Reps = %+v; want 1 skipped, none loaded", rec.RepsSkipped, rec.Reps)
	}
}

// TestLogRandomOpsRecoverExactly is the Log-level property test: a
// random mutation sequence (puts, deletes, overwrites, warm-reps, and
// mid-stream compactions) applied through the Log recovers, from a
// crash-image clone of the filesystem, to exactly the reference model —
// names, versions, checksums, tombstones, next-version counter.
func TestLogRandomOpsRecoverExactly(t *testing.T) {
	graphs := []*graph.Bipartite{
		testGraph(t, 0.1), testGraph(t, 0.2), testGraph(t, 0.3),
		testGraph(t, 0.4, 0.5), testGraph(t, 0.6, 0.7, 0.8),
	}
	names := []string{"a", "b", "c"}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mem := crashtest.NewMemFS()
		l, _ := openLog(t, mem)
		model := map[string]durable.GraphRecord{}
		var nextVersion int64
		ops := 5 + rng.Intn(25)
		for i := 0; i < ops; i++ {
			switch rng.Intn(5) {
			case 0, 1, 2: // put (overwrites included via the small namespace)
				name := names[rng.Intn(len(names))]
				g := graphs[rng.Intn(len(graphs))]
				nextVersion++
				var gt *dataset.GroundTruth
				if rng.Intn(2) == 0 {
					gt = dataset.NewGroundTruth([][2]int32{{0, int32(rng.Intn(3))}})
				}
				rec := durable.GraphRecord{
					Name: name, Version: nextVersion, Checksum: g.Checksum(),
					Source: "generate", Created: time.Unix(0, nextVersion),
				}
				if err := l.PutGraph(rec, g, gt); err != nil {
					t.Fatal(err)
				}
				model[name] = rec
			case 3: // delete (often of an absent name)
				name := names[rng.Intn(len(names))]
				if err := l.DeleteGraph(name); err != nil {
					t.Fatal(err)
				}
				delete(model, name)
			case 4: // compaction at an arbitrary point
				if err := l.Compact(); err != nil {
					t.Fatal(err)
				}
			}
		}
		// Recover from the crash image (unsynced data discarded) — every
		// acknowledged mutation above must still be there.
		_, rec := openLog(t, mem.Clone())
		if rec.NextVersion != nextVersion {
			t.Logf("seed %d: NextVersion %d, want %d", seed, rec.NextVersion, nextVersion)
			return false
		}
		if len(rec.Graphs) != len(model) {
			t.Logf("seed %d: recovered %d graphs, want %d", seed, len(rec.Graphs), len(model))
			return false
		}
		for _, rg := range rec.Graphs {
			want, ok := model[rg.Record.Name]
			if !ok || rg.Record.Version != want.Version || rg.Graph.Checksum() != want.Checksum {
				t.Logf("seed %d: graph %q diverged: got v%d/%x want v%d/%x", seed,
					rg.Record.Name, rg.Record.Version, rg.Graph.Checksum(), want.Version, want.Checksum)
				return false
			}
		}
		l.Close()
		return true
	}
	cfg := &quick.Config{MaxCount: 30}
	if testing.Short() {
		cfg.MaxCount = 8
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestLogStaleManifestNotReused: a crash after MANIFEST-<seq> is
// renamed into place but before CURRENT flips to it leaves a stale
// manifest file whose name the next life's first compaction wants.
// That compaction must overwrite the leftover with the current state:
// reusing the dead life's file would point CURRENT at a stale snapshot
// while GC deletes the journal segments carrying every record
// committed since — losing acknowledged writes. (Found by the serve
// overload harness: the kill -9 test lost acked graphs whenever the
// SIGKILL landed inside this window of a 25ms-period compactor.)
func TestLogStaleManifestNotReused(t *testing.T) {
	mem := crashtest.NewMemFS()
	faulty := crashtest.NewFaultFS(mem)
	l, _, err := durable.Open(durable.Config{Dir: "data", FS: faulty, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	ga := testGraph(t, 0.9)
	put(t, l, "a", 1, ga, nil)
	// Die between the manifest rename and the CURRENT flip: MANIFEST-1
	// is fully on disk, CURRENT does not name it.
	faulty.Inject(crashtest.Fault{Point: "create:tmp-CURRENT"})
	if err := l.Compact(); !errors.Is(err, crashtest.ErrInjected) {
		t.Fatalf("compact with CURRENT fault = %v, want ErrInjected", err)
	}
	if _, err := mem.Stat("data/MANIFEST-0000000001"); err != nil {
		t.Fatalf("stale manifest missing from the crash image: %v", err)
	}

	// Next life: recovery replays the journal (CURRENT never moved), a
	// new graph is acknowledged, and compaction wants the very manifest
	// name the dead life left behind.
	img := mem.Clone()
	l2, rec := openLog(t, img)
	if len(rec.Graphs) != 1 || rec.Graphs[0].Record.Name != "a" {
		t.Fatalf("second life recovered %+v, want graph a", rec.Graphs)
	}
	gb := testGraph(t, 0.8)
	put(t, l2, "b", 2, gb, nil)
	if err := l2.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}

	// Third life: both acknowledged graphs must survive the compaction.
	_, rec3 := openLog(t, img)
	names := map[string]uint64{}
	for _, rg := range rec3.Graphs {
		names[rg.Record.Name] = rg.Record.Checksum
	}
	if names["a"] != ga.Checksum() || names["b"] != gb.Checksum() {
		t.Fatalf("recovered %v; the stale MANIFEST-1 swallowed an acked graph", names)
	}
}
