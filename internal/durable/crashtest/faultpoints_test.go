package crashtest_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/ccer-go/ccer/internal/dataset"
	"github.com/ccer-go/ccer/internal/durable"
	"github.com/ccer-go/ccer/internal/durable/crashtest"
	"github.com/ccer-go/ccer/internal/graph"
	"github.com/ccer-go/ccer/internal/repcache"
)

func testGraph(t testing.TB, weights ...float64) *graph.Bipartite {
	t.Helper()
	b := graph.NewBuilder(len(weights), len(weights))
	for i, w := range weights {
		b.Add(int32(i), int32(i), w)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func recOf(name string, version int64, g *graph.Bipartite) durable.GraphRecord {
	return durable.GraphRecord{
		Name: name, Version: version, Checksum: g.Checksum(),
		Source: "generate", Created: time.Unix(0, version),
	}
}

// ackedState tracks what the workload was acknowledged: the reference
// the recovered state must match exactly.
type ackedState struct {
	live       map[string]durable.GraphRecord
	maxAckedVn int64
}

func newAcked() *ackedState {
	return &ackedState{live: map[string]durable.GraphRecord{}}
}

// workload drives a fixed mutation sequence against the log, updating
// acked only for mutations that returned nil. Errors are expected (the
// armed fault fires somewhere in the middle) and stop nothing: later
// ops run too, modeling an application that keeps trying.
func workload(t testing.TB, l *durable.Log, acked *ackedState) {
	t.Helper()
	g1 := testGraph(t, 0.9, 0.8)
	g2 := testGraph(t, 0.7)
	g3 := testGraph(t, 0.6, 0.5)
	gt := dataset.NewGroundTruth([][2]int32{{0, 0}})
	step := func(rec durable.GraphRecord, g *graph.Bipartite, gt *dataset.GroundTruth) {
		if err := l.PutGraph(rec, g, gt); err == nil {
			acked.live[rec.Name] = rec
			if rec.Version > acked.maxAckedVn {
				acked.maxAckedVn = rec.Version
			}
		}
	}
	step(recOf("a", 1, g1), g1, nil)
	// Reps are pure cache: spilled best-effort, not part of the
	// exactness invariant, but their fs traffic adds crash points.
	_ = l.WarmRep(repcache.Key{Hi: 11, Lo: 22}, []string{"x"}, []string{"y"})
	step(recOf("b", 2, g2), g2, gt)
	if err := l.DeleteGraph("a"); err == nil {
		delete(acked.live, "a")
	}
	_ = l.Compact()
	step(recOf("a", 3, g3), g3, nil)
	step(recOf("c", 4, g1), g1, gt)
}

// runWorkload opens a log over a fresh fault-wrapped MemFS, arms the
// given fault after Open (recovery of an empty directory is not under
// attack here), runs the workload, and returns the filesystem and the
// acked reference.
func runWorkload(t testing.TB, arm func(*crashtest.FaultFS, *crashtest.MemFS)) (*crashtest.MemFS, *crashtest.FaultFS, *ackedState) {
	t.Helper()
	mem := crashtest.NewMemFS()
	faulty := crashtest.NewFaultFS(mem)
	l, _, err := durable.Open(durable.Config{Dir: "data", FS: faulty, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if arm != nil {
		arm(faulty, mem)
	}
	acked := newAcked()
	workload(t, l, acked)
	return mem, faulty, acked
}

// verifyRecovery opens the post-crash image and checks the central
// durability invariant: the recovered live set is EXACTLY the acked set
// (same names, versions, bit-identical graph content by checksum), and
// the version counter never runs behind an acknowledged commit.
func verifyRecovery(t testing.TB, image *crashtest.MemFS, acked *ackedState, label string) {
	t.Helper()
	_, rec, err := durable.Open(durable.Config{Dir: "data", FS: image, CompactEvery: -1})
	if err != nil {
		t.Fatalf("%s: recovery failed: %v", label, err)
	}
	got := map[string]durable.RecoveredGraph{}
	for _, rg := range rec.Graphs {
		got[rg.Record.Name] = rg
	}
	if len(got) != len(acked.live) {
		t.Fatalf("%s: recovered %d graphs, acked %d (%v vs %v)", label, len(got), len(acked.live), names(got), ackedNames(acked))
	}
	for name, want := range acked.live {
		rg, ok := got[name]
		if !ok {
			t.Fatalf("%s: acked graph %q lost", label, name)
		}
		if rg.Record.Version != want.Version {
			t.Fatalf("%s: graph %q recovered at version %d, acked %d", label, name, rg.Record.Version, want.Version)
		}
		if sum := rg.Graph.Checksum(); sum != want.Checksum {
			t.Fatalf("%s: graph %q content %016x, acked %016x", label, name, sum, want.Checksum)
		}
	}
	if rec.NextVersion < acked.maxAckedVn {
		t.Fatalf("%s: NextVersion %d behind acked %d", label, rec.NextVersion, acked.maxAckedVn)
	}
}

func names(m map[string]durable.RecoveredGraph) []string {
	out := make([]string, 0, len(m))
	for n := range m {
		out = append(out, n)
	}
	return out
}

func ackedNames(a *ackedState) []string {
	out := make([]string, 0, len(a.live))
	for n := range a.live {
		out = append(out, n)
	}
	return out
}

// TestCrashPointEnumeration simulates a power cut at EVERY filesystem
// operation of the workload, one run per (operation kind, index):
// the fault crashes the MemFS (open handles die, unsynced bytes are
// doomed), the op returns an error, and recovery from the crash image
// must reproduce exactly what was acknowledged — unacknowledged
// mutations must be invisible, acknowledged ones intact.
func TestCrashPointEnumeration(t *testing.T) {
	// Count the ops of a fault-free run to know the crash points.
	_, counter, _ := runWorkload(t, nil)
	ops := []string{"write", "sync", "syncdir", "rename", "create", "append", "remove"}
	points := 0
	for _, op := range ops {
		n := counter.OpCount(op)
		if op == "write" && n == 0 {
			t.Fatal("workload performed no writes; harness is not exercising anything")
		}
		for k := 0; k < n; k++ {
			points++
			label := fmt.Sprintf("%s#%d", op, k)
			mem, _, acked := runWorkload(t, func(f *crashtest.FaultFS, m *crashtest.MemFS) {
				f.Inject(crashtest.Fault{Point: op, After: k, Crash: m.Crash})
			})
			// Clone() yields the on-disk state as a crash leaves it:
			// synced prefixes only.
			verifyRecovery(t, mem.Clone(), acked, label)
		}
	}
	if points < 25 {
		t.Fatalf("only %d crash points enumerated; the workload is too small to mean anything", points)
	}
	t.Logf("verified %d crash points", points)
}

// TestErrorInjectionKeepsAckedState: the fault returns an error but no
// crash fires. An errored mutation is refused (never acked), its
// journal bytes — if any landed — stay unsynced behind the sticky
// failure, so the durable image (synced prefixes) still matches the
// acked set exactly.
func TestErrorInjectionKeepsAckedState(t *testing.T) {
	_, counter, _ := runWorkload(t, nil)
	for _, op := range []string{"write", "sync", "create", "rename", "syncdir"} {
		n := counter.OpCount(op)
		for k := 0; k < n; k++ {
			label := fmt.Sprintf("err:%s#%d", op, k)
			mem, _, acked := runWorkload(t, func(f *crashtest.FaultFS, m *crashtest.MemFS) {
				f.Inject(crashtest.Fault{Point: op, After: k})
			})
			verifyRecovery(t, mem.Clone(), acked, label)
		}
	}
}

// TestShortWriteTearsFrame: a torn journal write (prefix lands, call
// fails) latches the log and is discarded as a torn tail at recovery.
func TestShortWriteTearsFrame(t *testing.T) {
	mem := crashtest.NewMemFS()
	faulty := crashtest.NewFaultFS(mem)
	l, _, err := durable.Open(durable.Config{Dir: "data", FS: faulty, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t, 0.9)
	if err := l.PutGraph(recOf("ok", 1, g), g, nil); err != nil {
		t.Fatal(err)
	}
	faulty.Inject(crashtest.Fault{Point: "write:wal", Short: 3})
	g2 := testGraph(t, 0.8)
	if err := l.PutGraph(recOf("torn", 2, g2), g2, nil); !errors.Is(err, durable.ErrLogFailed) {
		t.Fatalf("torn write = %v, want ErrLogFailed", err)
	}
	// Restart without a power cut: the 3 stray bytes are on disk.
	_, rec, err := durable.Open(durable.Config{Dir: "data", FS: mem, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rec.TornSegments != 1 {
		t.Fatalf("TornSegments = %d, want 1", rec.TornSegments)
	}
	if len(rec.Graphs) != 1 || rec.Graphs[0].Record.Name != "ok" {
		t.Fatalf("recovered %+v, want the pre-tear graph only", rec.Graphs)
	}
}

// TestDroppedFsyncLosesData documents why the fsync is load-bearing: a
// storage stack that lies about fsync (DropSync) breaks the durability
// guarantee — the acked commit vanishes in the crash image. The test
// asserts the HARNESS exposes this: if it ever stops failing, the
// fault injection itself has rotted.
func TestDroppedFsyncLosesData(t *testing.T) {
	mem := crashtest.NewMemFS()
	faulty := crashtest.NewFaultFS(mem)
	l, _, err := durable.Open(durable.Config{Dir: "data", FS: faulty, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	faulty.Inject(crashtest.Fault{Point: "sync:wal", DropSync: true, Persistent: true})
	g := testGraph(t, 0.9)
	if err := l.PutGraph(recOf("acked-but-doomed", 1, g), g, nil); err != nil {
		t.Fatalf("put with lying fsync should appear to succeed: %v", err)
	}
	_, rec, err := durable.Open(durable.Config{Dir: "data", FS: mem.Clone(), CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Graphs) != 0 {
		t.Fatalf("crash image kept %d graphs despite dropped fsyncs; DropSync injection is broken", len(rec.Graphs))
	}
}

// TestOrphanSnapshotCollected: a crash between the content-file write
// and the journal append leaves an orphan snapshot; recovery must not
// surface it, and the next compaction sweeps it.
func TestOrphanSnapshotCollected(t *testing.T) {
	mem := crashtest.NewMemFS()
	faulty := crashtest.NewFaultFS(mem)
	l, _, err := durable.Open(durable.Config{Dir: "data", FS: faulty, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	g := testGraph(t, 0.9)
	if err := l.PutGraph(recOf("keep", 1, g), g, nil); err != nil {
		t.Fatal(err)
	}
	// Crash on the first wal write after arming: the orphan's snapshot
	// is durable (content files commit before the journal), its record
	// is not.
	orphan := testGraph(t, 0.123)
	faulty.Inject(crashtest.Fault{Point: "write:wal", Crash: mem.Crash})
	_ = l.PutGraph(recOf("orphan", 2, orphan), orphan, nil)

	image := mem.Clone()
	l2, rec, err := durable.Open(durable.Config{Dir: "data", FS: image, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Graphs) != 1 || rec.Graphs[0].Record.Name != "keep" {
		t.Fatalf("recovered %+v, want keep only (orphan must stay invisible)", rec.Graphs)
	}
	if err := l2.Compact(); err != nil {
		t.Fatal(err)
	}
	orphanPath := fmt.Sprintf("data/graphs/%016x.edges", orphan.Checksum())
	if _, err := image.Stat(orphanPath); err == nil {
		t.Fatal("orphan snapshot survived compaction GC")
	}
	keepPath := fmt.Sprintf("data/graphs/%016x.edges", g.Checksum())
	if _, err := image.Stat(keepPath); err != nil {
		t.Fatalf("live snapshot collected: %v", err)
	}
}
