// Package crashtest is the fault-injection harness behind the
// durability guarantees of internal/durable. It provides
//
//   - MemFS: an in-memory durable.FS that tracks which bytes have been
//     fsync'd and can simulate a power cut (Crash), discarding every
//     unsynced write — the way a kernel page cache loses data when the
//     machine dies;
//   - FaultFS: a wrapper over any durable.FS that injects errors, short
//     writes, dropped fsyncs, and simulated crashes at named fault
//     points ("write:wal", "rename:graphs", ...);
//
// plus, in the package's tests, a re-exec based kill -9 harness that
// SIGKILLs a real erserve child at randomized points mid-commit and
// asserts bit-identical recovery.
package crashtest

import (
	"errors"
	"fmt"
	"io"
	"io/fs"
	"path"
	"sort"
	"strings"
	"sync"

	"github.com/ccer-go/ccer/internal/durable"
)

// ErrInjected is the default error returned by a fired fault.
var ErrInjected = errors.New("crashtest: injected fault")

// ErrCrashed is returned by every operation on a MemFS handle that
// survived a Crash, mirroring how file descriptors of a dead process
// cannot be used again.
var ErrCrashed = errors.New("crashtest: filesystem crashed")

// memFile is one file's content: data is what readers see (the page
// cache), synced is the prefix that survives a crash (stable storage).
type memFile struct {
	data   []byte
	synced int
}

// MemFS is an in-memory filesystem with fsync-accurate crash semantics
// for file CONTENT: bytes written after the last Sync are lost by
// Crash. Metadata operations (create, rename, remove) are treated as
// immediately durable — a simplification that leaves the journal
// commit path (append + fsync) carrying the torn-tail burden, which is
// the path the tests attack.
type MemFS struct {
	mu    sync.Mutex
	files map[string]*memFile
	dirs  map[string]bool
	epoch int
}

// NewMemFS returns an empty filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: map[string]*memFile{}, dirs: map[string]bool{"": true}}
}

// Crash simulates a power cut: every file's unsynced suffix is
// discarded and every open handle goes dead.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, f := range m.files {
		f.data = f.data[:f.synced]
	}
	m.epoch++
}

// Clone returns a deep copy of the filesystem as it would be found
// after a crash right now (unsynced data discarded), for branching one
// history into many recovery attempts.
func (m *MemFS) Clone() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := NewMemFS()
	for p, f := range m.files {
		c.files[p] = &memFile{data: append([]byte(nil), f.data[:f.synced]...), synced: f.synced}
	}
	for d := range m.dirs {
		c.dirs[d] = true
	}
	return c
}

// SyncedBytes reports the durable size of path, for assertions.
func (m *MemFS) SyncedBytes(p string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if f, ok := m.files[path.Clean(p)]; ok {
		return f.synced
	}
	return 0
}

func (m *MemFS) MkdirAll(p string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p = path.Clean(p)
	for p != "." && p != "/" && p != "" {
		m.dirs[p] = true
		p = path.Dir(p)
	}
	return nil
}

type memHandle struct {
	fs    *MemFS
	f     *memFile
	epoch int
	rd    io.Reader // non-nil for read handles
}

func (h *memHandle) dead() bool {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	return h.epoch != h.fs.epoch
}

func (h *memHandle) Read(p []byte) (int, error) {
	if h.dead() {
		return 0, ErrCrashed
	}
	if h.rd == nil {
		return 0, errors.New("crashtest: file not open for reading")
	}
	return h.rd.Read(p)
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.epoch != h.fs.epoch {
		return 0, ErrCrashed
	}
	if h.rd != nil {
		return 0, errors.New("crashtest: file not open for writing")
	}
	h.f.data = append(h.f.data, p...)
	return len(p), nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.epoch != h.fs.epoch {
		return ErrCrashed
	}
	h.f.synced = len(h.f.data)
	return nil
}

func (h *memHandle) Close() error {
	if h.dead() {
		return ErrCrashed
	}
	return nil
}

func (m *MemFS) open(p string, truncate, create bool) (durable.File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p = path.Clean(p)
	f, ok := m.files[p]
	if !ok {
		if !create {
			return nil, fmt.Errorf("crashtest: open %s: %w", p, fs.ErrNotExist)
		}
		f = &memFile{}
		m.files[p] = f
	} else if truncate {
		f.data = f.data[:0]
		f.synced = 0
	}
	return &memHandle{fs: m, f: f, epoch: m.epoch}, nil
}

func (m *MemFS) Create(p string) (durable.File, error) { return m.open(p, true, true) }
func (m *MemFS) Append(p string) (durable.File, error) { return m.open(p, false, true) }

func (m *MemFS) Open(p string) (durable.File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p = path.Clean(p)
	f, ok := m.files[p]
	if !ok {
		return nil, fmt.Errorf("crashtest: open %s: %w", p, fs.ErrNotExist)
	}
	// Snapshot: readers see the page cache as of the open.
	snap := append([]byte(nil), f.data...)
	return &memHandle{fs: m, f: f, epoch: m.epoch, rd: strings.NewReader(string(snap))}, nil
}

func (m *MemFS) Rename(oldp, newp string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	oldp, newp = path.Clean(oldp), path.Clean(newp)
	f, ok := m.files[oldp]
	if !ok {
		return fmt.Errorf("crashtest: rename %s: %w", oldp, fs.ErrNotExist)
	}
	delete(m.files, oldp)
	m.files[newp] = f
	return nil
}

func (m *MemFS) Remove(p string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p = path.Clean(p)
	if _, ok := m.files[p]; !ok {
		return fmt.Errorf("crashtest: remove %s: %w", p, fs.ErrNotExist)
	}
	delete(m.files, p)
	return nil
}

func (m *MemFS) ReadDir(p string) ([]string, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p = path.Clean(p)
	var names []string
	for fp := range m.files {
		if path.Dir(fp) == p {
			names = append(names, path.Base(fp))
		}
	}
	sort.Strings(names)
	return names, nil
}

func (m *MemFS) Stat(p string) (int64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p = path.Clean(p)
	f, ok := m.files[p]
	if !ok {
		return 0, fmt.Errorf("crashtest: stat %s: %w", p, fs.ErrNotExist)
	}
	return int64(len(f.data)), nil
}

func (m *MemFS) SyncDir(string) error { return nil } // metadata is modeled durable

// Fault is one armed fault point.
type Fault struct {
	// Point selects the operation, optionally narrowed to paths
	// containing a substring after a colon: "sync", "write:wal",
	// "rename:graphs". Operations: create, append, open, rename,
	// remove, readdir, stat, syncdir, write, sync, close.
	Point string
	// After skips that many matching calls before firing.
	After int
	// Persistent keeps the fault armed after it fires (default: fire
	// once).
	Persistent bool
	// Err is returned when the fault fires; nil means ErrInjected
	// (except DropSync, which silently succeeds).
	Err error
	// Short, for write faults, forwards only Short bytes of the write
	// before failing — a torn write.
	Short int
	// DropSync, for sync faults, silently skips the fsync and reports
	// success: the no-fsync lie a broken storage stack tells.
	DropSync bool
	// Crash, when set, is invoked as the fault fires (typically
	// MemFS.Crash), simulating the process dying at exactly this point.
	Crash func()
}

func (f *Fault) matches(op, p string) bool {
	want, suffix, has := strings.Cut(f.Point, ":")
	if want != op {
		return false
	}
	return !has || strings.Contains(p, suffix)
}

// FaultFS wraps an FS with fault points. Arm faults with Inject; every
// operation consults them in order and the first match decides.
type FaultFS struct {
	Inner durable.FS

	mu     sync.Mutex
	faults []*Fault
	counts map[string]int
}

// NewFaultFS wraps inner.
func NewFaultFS(inner durable.FS) *FaultFS {
	return &FaultFS{Inner: inner, counts: map[string]int{}}
}

// Inject arms a fault point.
func (f *FaultFS) Inject(fault Fault) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = append(f.faults, &fault)
}

// Reset disarms every fault.
func (f *FaultFS) Reset() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = nil
}

// OpCount reports how many calls of op have been seen (fired or not),
// so tests can enumerate crash points exhaustively.
func (f *FaultFS) OpCount(op string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[op]
}

// check consults the armed faults for op on path. It returns the fault
// that fired, if any.
func (f *FaultFS) check(op, p string) *Fault {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[op]++
	for i, fl := range f.faults {
		if !fl.matches(op, p) {
			continue
		}
		if fl.After > 0 {
			fl.After--
			return nil
		}
		if !fl.Persistent {
			f.faults = append(f.faults[:i], f.faults[i+1:]...)
		}
		return fl
	}
	return nil
}

func (f *Fault) err() error {
	if f.Err != nil {
		return f.Err
	}
	return ErrInjected
}

func (f *FaultFS) MkdirAll(p string) error { return f.Inner.MkdirAll(p) }

func (f *FaultFS) Create(p string) (durable.File, error) {
	if fl := f.check("create", p); fl != nil {
		if fl.Crash != nil {
			fl.Crash()
		}
		return nil, fl.err()
	}
	h, err := f.Inner.Create(p)
	if err != nil {
		return nil, err
	}
	return &faultHandle{fs: f, inner: h, path: p}, nil
}

func (f *FaultFS) Append(p string) (durable.File, error) {
	if fl := f.check("append", p); fl != nil {
		if fl.Crash != nil {
			fl.Crash()
		}
		return nil, fl.err()
	}
	h, err := f.Inner.Append(p)
	if err != nil {
		return nil, err
	}
	return &faultHandle{fs: f, inner: h, path: p}, nil
}

func (f *FaultFS) Open(p string) (durable.File, error) {
	if fl := f.check("open", p); fl != nil {
		if fl.Crash != nil {
			fl.Crash()
		}
		return nil, fl.err()
	}
	return f.Inner.Open(p) // reads pass through unwrapped
}

func (f *FaultFS) Rename(oldp, newp string) error {
	if fl := f.check("rename", newp); fl != nil {
		if fl.Crash != nil {
			fl.Crash()
		}
		return fl.err()
	}
	return f.Inner.Rename(oldp, newp)
}

func (f *FaultFS) Remove(p string) error {
	if fl := f.check("remove", p); fl != nil {
		if fl.Crash != nil {
			fl.Crash()
		}
		return fl.err()
	}
	return f.Inner.Remove(p)
}

func (f *FaultFS) ReadDir(p string) ([]string, error) {
	if fl := f.check("readdir", p); fl != nil {
		return nil, fl.err()
	}
	return f.Inner.ReadDir(p)
}

func (f *FaultFS) Stat(p string) (int64, error) {
	if fl := f.check("stat", p); fl != nil {
		return 0, fl.err()
	}
	return f.Inner.Stat(p)
}

func (f *FaultFS) SyncDir(p string) error {
	if fl := f.check("syncdir", p); fl != nil {
		if fl.Crash != nil {
			fl.Crash()
		}
		if fl.DropSync {
			return nil
		}
		return fl.err()
	}
	return f.Inner.SyncDir(p)
}

type faultHandle struct {
	fs    *FaultFS
	inner durable.File
	path  string
}

func (h *faultHandle) Read(p []byte) (int, error) { return h.inner.Read(p) }

func (h *faultHandle) Write(p []byte) (int, error) {
	if fl := h.fs.check("write", h.path); fl != nil {
		n := 0
		if fl.Short > 0 && fl.Short < len(p) {
			n, _ = h.inner.Write(p[:fl.Short]) // torn write: a prefix lands
		}
		if fl.Crash != nil {
			fl.Crash()
		}
		return n, fl.err()
	}
	return h.inner.Write(p)
}

func (h *faultHandle) Sync() error {
	if fl := h.fs.check("sync", h.path); fl != nil {
		if fl.Crash != nil {
			fl.Crash()
		}
		if fl.DropSync {
			return nil
		}
		return fl.err()
	}
	return h.inner.Sync()
}

func (h *faultHandle) Close() error {
	if fl := h.fs.check("close", h.path); fl != nil {
		if fl.Crash != nil {
			fl.Crash()
		}
		return fl.err()
	}
	return h.inner.Close()
}
