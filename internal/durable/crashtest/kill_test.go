package crashtest_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net"
	"net/http"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"

	"github.com/ccer-go/ccer/internal/graph"
	"github.com/ccer-go/ccer/internal/serve"
)

// The kill -9 harness re-execs this test binary as a child that runs a
// real erserve service (serve.New over OSFS) on a data directory, then
// SIGKILLs it at randomized points while generation requests are in
// flight, restarts it, and checks the recovered store against what the
// child acknowledged before dying: acked graphs are back byte-identically
// (checksum and version), and nothing is recovered that was never sent.

const (
	childEnv = "ERSERVE_CRASH_CHILD"
	dirEnv   = "ERSERVE_CRASH_DIR"
)

func TestMain(m *testing.M) {
	if os.Getenv(childEnv) == "1" {
		runChild()
		return
	}
	os.Exit(m.Run())
}

// runChild is the re-exec'd server process: it mounts the data dir,
// prints the listen address on stdout, and serves until killed.
func runChild() {
	srv, err := serve.New(serve.Config{
		DataDir:          os.Getenv(dirEnv),
		JobWorkers:       1,
		Parallelism:      1,
		RepCacheDatasets: 2,
		// An aggressive compaction period so SIGKILL lands inside
		// manifest rewrites and journal rolls too, not only appends.
		CompactEvery: 25 * time.Millisecond,
	})
	if err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
	fmt.Println("ADDR", ln.Addr().String())
	if err := http.Serve(ln, srv.Handler()); err != nil {
		fmt.Println("ERR", err)
		os.Exit(1)
	}
}

// child is one running server process.
type child struct {
	cmd    *exec.Cmd
	addr   string
	stderr *bytes.Buffer
}

func startChild(t *testing.T, dir string) *child {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	// -test.run=^$ keeps the child from recursing into the tests if the
	// env guard were ever lost.
	cmd := exec.Command(exe, "-test.run=^$")
	cmd.Env = append(os.Environ(), childEnv+"=1", dirEnv+"="+dir)
	var errBuf bytes.Buffer
	cmd.Stderr = &errBuf
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	c := &child{cmd: cmd, stderr: &errBuf}
	t.Cleanup(func() { _ = cmd.Process.Kill(); _, _ = cmd.Process.Wait() })

	lines := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			lines <- sc.Text()
			return
		}
		close(lines)
	}()
	select {
	case line, ok := <-lines:
		if !ok || !strings.HasPrefix(line, "ADDR ") {
			t.Fatalf("child did not announce an address: %q (stderr: %s)", line, errBuf.String())
		}
		c.addr = strings.TrimPrefix(line, "ADDR ")
	case <-time.After(30 * time.Second):
		t.Fatalf("child never started (stderr: %s)", errBuf.String())
	}
	// Drain the rest of stdout so the child never blocks on a full pipe.
	go func() {
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
		}
	}()
	return c
}

func (c *child) kill(t *testing.T) {
	t.Helper()
	if err := c.cmd.Process.Kill(); err != nil { // SIGKILL: no shutdown path runs
		t.Fatal(err)
	}
	_ = c.cmd.Wait() // an error is expected: the child was killed
}

// ackedGraph is one acknowledged commit: the child's 201 response bound
// this name to this exact content (checksum) at this version.
type ackedGraph struct {
	Version  int64
	Checksum string
}

type infoJSON struct {
	Name     string `json:"name"`
	Version  int64  `json:"version"`
	Checksum string `json:"checksum"`
}

func listGraphs(t *testing.T, addr string) map[string]infoJSON {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/v1/graphs")
	if err != nil {
		t.Fatalf("list graphs: %v", err)
	}
	defer resp.Body.Close()
	var parsed struct {
		Graphs []infoJSON `json:"graphs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&parsed); err != nil {
		t.Fatal(err)
	}
	out := map[string]infoJSON{}
	for _, g := range parsed.Graphs {
		out[g.Name] = g
	}
	return out
}

func metricsOf(t *testing.T, addr string) map[string]json.Number {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := map[string]json.Number{}
	dec := json.NewDecoder(resp.Body)
	dec.UseNumber()
	var raw map[string]any
	if err := dec.Decode(&raw); err != nil {
		t.Fatal(err)
	}
	for k, v := range raw {
		if n, ok := v.(json.Number); ok {
			out[k] = n
		}
	}
	return out
}

// verifyAgainstAcked asserts the durability contract on a freshly
// restarted child: every acknowledged graph is present, byte-identical
// (same checksum) at the same version; every present graph corresponds
// to a request this test actually sent (nothing invented); in-flight
// unacknowledged mutations are never partially visible.
func verifyAgainstAcked(t *testing.T, addr string, acked map[string]ackedGraph, attempted func(string) bool) {
	t.Helper()
	got := listGraphs(t, addr)
	for name, want := range acked {
		g, ok := got[name]
		if !ok {
			t.Fatalf("acked graph %q lost across kill -9", name)
		}
		if g.Checksum != want.Checksum || g.Version != want.Version {
			t.Fatalf("graph %q recovered as v%d/%s, acked v%d/%s",
				name, g.Version, g.Checksum, want.Version, want.Checksum)
		}
	}
	for name := range got {
		if !attempted(name) {
			t.Fatalf("recovered graph %q was never requested", name)
		}
	}
}

func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	// Post-mortem hook: point CRASHTEST_DIR at a directory to keep the
	// store's on-disk state after a failure instead of losing it with
	// the TempDir (the manifest-reuse bug was diagnosed from one).
	if d := os.Getenv("CRASHTEST_DIR"); d != "" {
		dir = d
	}
	rng := rand.New(rand.NewSource(0x5EED))
	iterations := 25
	if testing.Short() {
		iterations = 8
	}

	acked := map[string]ackedGraph{}
	var counter int
	attempted := func(name string) bool {
		var n int
		if _, err := fmt.Sscanf(name, "g%d", &n); err == nil && n <= counter {
			return true
		}
		// Family-mode graphs land under "f<n>/<attr>/<measure>".
		if _, err := fmt.Sscanf(name, "f%d/", &n); err == nil && n <= counter {
			return true
		}
		return false
	}

	type report struct {
		Iteration  int   `json:"iteration"`
		RecoveryNS int64 `json:"recovery_ns"`
		Graphs     int   `json:"graphs_recovered"`
	}
	var reports []report

	for iter := 0; iter < iterations; iter++ {
		c := startChild(t, dir)
		// The restart IS the verification: recovered state must match
		// the acked ledger of every previous iteration.
		verifyAgainstAcked(t, c.addr, acked, attempted)
		if m := metricsOf(t, c.addr); iter > 0 {
			rec, _ := m["recovery_ns"].Int64()
			n, _ := m["graphs_stored"].Int64()
			reports = append(reports, report{Iteration: iter, RecoveryNS: rec, Graphs: int(n)})
			if rec <= 0 {
				t.Fatalf("iteration %d: recovery_ns = %d, want > 0", iter, rec)
			}
		}

		// Fire mutations until the kill lands. Responses that complete
		// before the SIGKILL are acked; everything else is in-flight
		// and must be invisible-or-complete after restart.
		done := make(chan struct{})
		go func() {
			defer close(done)
			for {
				counter++
				var body string
				name := fmt.Sprintf("g%d", counter)
				if counter%5 == 0 {
					// Family mode exercises the representation-cache
					// spill (the attrs cache only warms through it).
					name = fmt.Sprintf("f%d", counter)
					body = fmt.Sprintf(`{"name":%q,"dataset":"D2","seed":%d,"scale":0.02,"family":"SB-SYN"}`, name, counter)
				} else {
					body = fmt.Sprintf(`{"name":%q,"dataset":"D2","seed":%d,"scale":0.02,"measure":"Jaccard"}`, name, counter)
				}
				resp, err := http.Post("http://"+c.addr+"/v1/graphs", "application/json", strings.NewReader(body))
				if err != nil {
					return // the kill landed mid-request
				}
				if resp.StatusCode != http.StatusCreated {
					resp.Body.Close()
					return
				}
				if strings.HasPrefix(name, "f") {
					var parsed struct {
						Graphs []infoJSON `json:"graphs"`
					}
					if json.NewDecoder(resp.Body).Decode(&parsed) == nil {
						for _, g := range parsed.Graphs {
							acked[g.Name] = ackedGraph{Version: g.Version, Checksum: g.Checksum}
						}
					}
				} else {
					var info infoJSON
					if json.NewDecoder(resp.Body).Decode(&info) == nil {
						acked[info.Name] = ackedGraph{Version: info.Version, Checksum: info.Checksum}
					}
				}
				resp.Body.Close()
			}
		}()
		// Randomized crash point: somewhere inside the request stream.
		time.Sleep(time.Duration(2+rng.Intn(120)) * time.Millisecond)
		c.kill(t)
		<-done
	}

	// Final phase: a quiet (kill-free) family generation, then one last
	// kill and restart, to pin the representation-cache reload counter
	// and byte-identical content end to end.
	c := startChild(t, dir)
	verifyAgainstAcked(t, c.addr, acked, attempted)
	counter++
	finalName := fmt.Sprintf("f%d", counter)
	body := fmt.Sprintf(`{"name":%q,"dataset":"D2","seed":9999,"scale":0.02,"family":"SB-SYN"}`, finalName)
	resp, err := http.Post("http://"+c.addr+"/v1/graphs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Graphs []infoJSON `json:"graphs"`
	}
	if resp.StatusCode != http.StatusCreated {
		raw := new(bytes.Buffer)
		raw.ReadFrom(resp.Body)
		resp.Body.Close()
		t.Fatalf("final family generate: %d %s", resp.StatusCode, raw.String())
	}
	if err := json.NewDecoder(resp.Body).Decode(&parsed); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, g := range parsed.Graphs {
		acked[g.Name] = ackedGraph{Version: g.Version, Checksum: g.Checksum}
	}
	c.kill(t)

	c = startChild(t, dir)
	verifyAgainstAcked(t, c.addr, acked, attempted)
	m := metricsOf(t, c.addr)
	if rec, _ := m["recovery_ns"].Int64(); rec <= 0 {
		t.Fatal("final restart reports no recovery time")
	}
	if n, _ := m["journal_records_total"].Int64(); n <= 0 {
		// All records may have compacted into the manifest; accept 0
		// only when compactions happened.
		if comp, _ := m["compactions_total"].Int64(); comp <= 0 {
			t.Fatal("no journal records and no compactions: the durable path did not run")
		}
	}
	if reloaded, _ := m["repcache_reloaded_total"].Int64(); reloaded < 1 {
		t.Fatalf("repcache_reloaded_total = %d after family generation + restart, want >= 1", reloaded)
	}
	// Byte-identical recovery, verified client-side: download one acked
	// family graph and recompute its checksum locally.
	one := parsed.Graphs[0]
	el, err := http.Get("http://" + c.addr + "/v1/graphs/" + one.Name + "?format=edgelist")
	if err != nil {
		t.Fatal(err)
	}
	g, err := graph.ReadEdgeList(el.Body)
	el.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := fmt.Sprintf("%016x", g.Checksum()); got != one.Checksum {
		t.Fatalf("client-side checksum %s != acked %s", got, one.Checksum)
	}

	if rep, _ := m["recovery_ns"].Int64(); rep > 0 {
		reports = append(reports, report{Iteration: iterations, RecoveryNS: rep, Graphs: len(listGraphs(t, c.addr))})
	}
	if path := os.Getenv("DURABILITY_REPORT"); path != "" {
		var buf bytes.Buffer
		for _, r := range reports {
			raw, _ := json.Marshal(r)
			buf.Write(raw)
			buf.WriteByte('\n')
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Logf("writing durability report: %v", err)
		}
	}
	t.Logf("kill -9 survived %d iterations, %d graphs acked and recovered", iterations, len(acked))
}
