package graph

import (
	"strings"
	"testing"
)

// FuzzReadEdgeList hardens the edge-list parser: arbitrary input must
// either fail with an error or produce a structurally valid graph that
// round-trips.
func FuzzReadEdgeList(f *testing.F) {
	f.Add("2 2\n0 0 0.5\n1 1 0.75\n")
	f.Add("3 1\n# comment\n\n0 0 1\n")
	f.Add("0 0\n")
	f.Add("x")
	f.Add("2 2\n0 0 NaN\n")
	f.Add("2 2\n-1 0 0.5\n")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := ReadEdgeList(strings.NewReader(input))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("parsed graph invalid: %v", err)
		}
		var buf strings.Builder
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		back, err := ReadEdgeList(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if back.NumEdges() != g.NumEdges() || back.N1() != g.N1() || back.N2() != g.N2() {
			t.Fatal("round trip changed the graph")
		}
	})
}
