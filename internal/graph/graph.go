// Package graph provides the bipartite similarity graph that is the input
// to every Clean-Clean ER bipartite matching algorithm.
//
// A Bipartite graph connects two clean (duplicate-free) entity collections
// V1 and V2. Nodes are dense integer indices local to their side: V1 nodes
// are 0..N1-1 and V2 nodes are 0..N2-1. Every edge crosses sides and
// carries a similarity weight, normally in [0,1] (see NormalizeMinMax).
//
// Graphs are immutable once built. Construction goes through a Builder so
// that adjacency lists can be laid out contiguously (CSR-style) and sorted
// by descending weight exactly once; the matching algorithms in
// internal/core rely on that ordering for their best-match scans.
package graph

import (
	"errors"
	"fmt"
	"math"
	"slices"
	"sync"
	"sync/atomic"
)

// NodeID identifies a node within one side of a bipartite graph.
type NodeID = int32

// Edge is a weighted edge between node U of V1 and node V of V2.
type Edge struct {
	U NodeID  // index in V1
	V NodeID  // index in V2
	W float64 // similarity weight
}

// Builder accumulates edges for a Bipartite graph.
// The zero value is not usable; call NewBuilder.
type Builder struct {
	n1, n2 int
	edges  []Edge
	err    error
}

// NewBuilder returns a Builder for a graph with n1 nodes on the V1 side
// and n2 nodes on the V2 side.
func NewBuilder(n1, n2 int) *Builder {
	b := &Builder{n1: n1, n2: n2}
	if n1 < 0 || n2 < 0 {
		b.err = fmt.Errorf("graph: negative side size (%d, %d)", n1, n2)
	}
	return b
}

// Add records an edge between u in V1 and v in V2 with weight w.
// Errors are deferred and reported by Build.
func (b *Builder) Add(u, v NodeID, w float64) {
	if b.err != nil {
		return
	}
	switch {
	case u < 0 || int(u) >= b.n1:
		b.err = fmt.Errorf("graph: node %d out of range for V1 of size %d", u, b.n1)
	case v < 0 || int(v) >= b.n2:
		b.err = fmt.Errorf("graph: node %d out of range for V2 of size %d", v, b.n2)
	case math.IsNaN(w) || math.IsInf(w, 0):
		b.err = fmt.Errorf("graph: non-finite weight %v for edge (%d,%d)", w, u, v)
	default:
		b.edges = append(b.edges, Edge{U: u, V: v, W: w})
	}
}

// Reserve ensures capacity for n further Add calls, for callers that
// know the edge count up front.
func (b *Builder) Reserve(n int) {
	if b.err != nil || cap(b.edges)-len(b.edges) >= n {
		return
	}
	es := make([]Edge, len(b.edges), len(b.edges)+n)
	copy(es, b.edges)
	b.edges = es
}

// Grow extends the node ranges so that u fits in V1 and v fits in V2.
// It is a convenience for callers that discover node counts while streaming
// edges.
func (b *Builder) Grow(u, v NodeID) {
	if int(u) >= b.n1 {
		b.n1 = int(u) + 1
	}
	if int(v) >= b.n2 {
		b.n2 = int(v) + 1
	}
}

// Build finalizes the graph. Duplicate (u,v) edges are merged keeping the
// maximum weight, matching how the paper's pipeline treats repeated
// candidate pairs.
func (b *Builder) Build() (*Bipartite, error) {
	if b.err != nil {
		return nil, b.err
	}
	edges := dedupeMax(b.edges, b.n1)
	return newBipartite(b.n1, b.n2, edges), nil
}

// MustBuild is Build that panics on error, for tests and literals.
func (b *Builder) MustBuild() *Bipartite {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// BuildNormalized is Build followed by NormalizeMinMax, fused: the
// min-max rescale is applied to the deduplicated edge list BEFORE the
// graph is assembled, so the CSR adjacency and the by-weight permutation
// are computed once instead of built, verified and rebuilt. The result
// is bit-identical to Build().NormalizeMinMax(): the rescale maps each
// weight through the same expression, and the by-weight comparator
// (W descending, U, V ascending) is total, so whichever route computes
// the permutation arrives at the same order. Like Build, it takes
// ownership of the accumulated edges; the builder must not be reused.
func (b *Builder) BuildNormalized() (*Bipartite, error) {
	if b.err != nil {
		return nil, b.err
	}
	edges := dedupeMax(b.edges, b.n1)
	minW, maxW := math.Inf(1), math.Inf(-1)
	for _, e := range edges {
		if e.W < minW {
			minW = e.W
		}
		if e.W > maxW {
			maxW = e.W
		}
	}
	span := maxW - minW
	for i := range edges {
		w := 1.0
		if span > 0 {
			w = (edges[i].W - minW) / span
		}
		edges[i].W = w
	}
	return newBipartite(b.n1, b.n2, edges), nil
}

func dedupeMax(edges []Edge, n1 int) []Edge {
	if len(edges) < 2 {
		return edges
	}
	// The schema-based and semantic generation kernels emit edges
	// already strictly (U,V)-ordered (U-rows in order, V ascending, no
	// duplicates); detecting that skips the copy, the sort and the
	// dedupe scan. The bag and n-gram-graph kernels assemble V-major
	// (strictly (V,U)-ordered), which a stable counting transpose turns
	// into the same canonical order in O(|E|+n1) instead of a
	// comparison sort. Anything else takes the generic sort+dedupe over
	// a copy, exactly as a from-scratch build would.
	if isSortedUV(edges) {
		return edges
	}
	if out, ok := transposeVMajor(edges, n1); ok {
		return out
	}
	es := append([]Edge(nil), edges...)
	slices.SortFunc(es, func(a, b Edge) int {
		switch {
		case a.U != b.U:
			return int(a.U) - int(b.U)
		case a.V != b.V:
			return int(a.V) - int(b.V)
		case a.W > b.W:
			return -1
		case a.W < b.W:
			return 1
		default:
			return 0
		}
	})
	out := es[:1]
	for _, e := range es[1:] {
		last := &out[len(out)-1]
		if e.U == last.U && e.V == last.V {
			continue // keep the max weight, which sorted first
		}
		out = append(out, e)
	}
	return out
}

// isSortedUV reports whether edges are strictly (U,V)-ascending (which
// also implies no duplicate pairs), the canonical edge-list order.
func isSortedUV(es []Edge) bool {
	for i := 1; i < len(es); i++ {
		if es[i-1].U > es[i].U ||
			(es[i-1].U == es[i].U && es[i-1].V >= es[i].V) {
			return false
		}
	}
	return true
}

// transposeVMajor converts a strictly (V,U)-ascending edge list (the
// assembly order of the V-major row kernels) into canonical (U,V)
// order with a stable counting sort on U. Strict (V,U) order rules out
// duplicate pairs, and stability keeps V ascending within each U, so
// the result is exactly what the generic sort+dedupe would produce.
// Returns ok=false when the input is not strictly V-major.
func transposeVMajor(es []Edge, n1 int) ([]Edge, bool) {
	for i := 1; i < len(es); i++ {
		if es[i-1].V > es[i].V ||
			(es[i-1].V == es[i].V && es[i-1].U >= es[i].U) {
			return nil, false
		}
	}
	next := make([]int32, n1+1)
	for _, e := range es {
		next[e.U+1]++
	}
	for u := 0; u < n1; u++ {
		next[u+1] += next[u]
	}
	out := make([]Edge, len(es))
	for _, e := range es {
		out[next[e.U]] = e
		next[e.U]++
	}
	return out, true
}

// Bipartite is an immutable weighted bipartite similarity graph.
type Bipartite struct {
	n1, n2 int
	edges  []Edge

	// The matching indexes — the by-weight permutation and the CSR
	// adjacency — are built lazily on first use (indexOnce): similarity-
	// graph generation produces hundreds of graphs whose only consumers
	// may be checksumming, serialization or the cleaning filter, none of
	// which need them, while the matchers that do pay the build exactly
	// once per (immutable) graph. indexBuilt flips after the arrays are
	// fully written, so lock-free observers (indexed) never see a
	// half-visible index.
	indexOnce  sync.Once
	indexBuilt atomic.Bool

	// CSR adjacency. adj1[off1[u]:off1[u+1]] are indices into edges for
	// node u of V1, sorted by descending weight (ties broken by opposite
	// node id, ascending, for determinism). Same for the V2 side.
	off1, off2 []int32
	adj1, adj2 []int32

	// byWeight is the edge index permutation in descending weight order.
	byWeight []int32

	minW, maxW float64

	// pair is the lazily built constant-time (u,v) -> weight index,
	// shared by every Match call on this graph (graphs are immutable, so
	// it is built at most once).
	pairOnce sync.Once
	pair     *PairLookup

	// Adjacency-ordered weight / opposite-node arrays (aligned with
	// adj1/adj2), lazily built once and shared by the matchers' repeated
	// threshold-prefix scans: a 20-point sweep walks each adjacency list
	// dozens of times, and the contiguous layout replaces a random edge
	// lookup per visit.
	adjCacheOnce     sync.Once
	adjW1, adjW2     []float64
	adjOpp1, adjOpp2 []int32
}

func newBipartite(n1, n2 int, edges []Edge) *Bipartite {
	g := &Bipartite{n1: n1, n2: n2, edges: edges}
	g.minW, g.maxW = math.Inf(1), math.Inf(-1)
	for _, e := range edges {
		if e.W < g.minW {
			g.minW = e.W
		}
		if e.W > g.maxW {
			g.maxW = e.W
		}
	}
	if len(edges) == 0 {
		g.minW, g.maxW = 0, 0
	}
	return g
}

// ensureIndex materializes the by-weight permutation and the CSR
// adjacency, at most once per graph.
func (g *Bipartite) ensureIndex() {
	g.indexOnce.Do(g.buildIndex)
}

// setIndex installs prebuilt index arrays (the NormalizeMinMax reuse
// path), consuming the once so they are never rebuilt.
func (g *Bipartite) setIndex(off1, off2, adj1, adj2, byWeight []int32) {
	g.indexOnce.Do(func() {
		g.off1, g.off2 = off1, off2
		g.adj1, g.adj2 = adj1, adj2
		g.byWeight = byWeight
		g.indexBuilt.Store(true)
	})
}

func (g *Bipartite) buildIndex() {
	edges := g.edges
	n1, n2 := g.n1, g.n2
	g.byWeight = make([]int32, len(edges))
	for i := range g.byWeight {
		g.byWeight[i] = int32(i)
	}
	// The permutation's comparator is (W descending, then U, V
	// ascending). Edge lists from Build/Threshold/NormalizeMinMax are
	// already (U,V)-ascending, so the identity permutation realizes the
	// tie-break and any STABLE descending-weight sort produces exactly
	// the comparator's order — which lets large graphs use an LSD radix
	// sort over the weight bits instead of an O(E log E) comparison
	// sort with a closure per compare.
	if len(edges) >= radixMinEdges && isSortedUV(edges) {
		radixSortByWeightDesc(edges, g.byWeight)
	} else {
		slices.SortFunc(g.byWeight, func(x, y int32) int {
			ei, ej := edges[x], edges[y]
			switch {
			case ei.W > ej.W:
				return -1
			case ei.W < ej.W:
				return 1
			case ei.U != ej.U:
				return int(ei.U) - int(ej.U)
			default:
				return int(ei.V) - int(ej.V)
			}
		})
	}

	g.off1 = make([]int32, n1+1)
	g.off2 = make([]int32, n2+1)
	for _, e := range edges {
		g.off1[e.U+1]++
		g.off2[e.V+1]++
	}
	for i := 0; i < n1; i++ {
		g.off1[i+1] += g.off1[i]
	}
	for i := 0; i < n2; i++ {
		g.off2[i+1] += g.off2[i]
	}
	g.adj1 = make([]int32, len(edges))
	g.adj2 = make([]int32, len(edges))
	next1 := append([]int32(nil), g.off1[:n1]...)
	next2 := append([]int32(nil), g.off2[:n2]...)
	// Appending in global descending-weight order keeps every per-node
	// adjacency list sorted by descending weight.
	for _, ei := range g.byWeight {
		e := edges[ei]
		g.adj1[next1[e.U]] = ei
		next1[e.U]++
		g.adj2[next2[e.V]] = ei
		next2[e.V]++
	}
	g.indexBuilt.Store(true)
}

// radixMinEdges is the edge count above which the by-weight permutation
// uses the radix sort; below it the per-pass histogram overhead loses to
// the comparison sort.
const radixMinEdges = 256

// radixSortByWeightDesc stably sorts idx (the identity permutation over
// edges) by strictly descending edge weight: 8 LSD counting passes over
// a monotone uint64 transform of the weight bits, skipping passes whose
// byte is constant (common: similarity weights share sign and most
// exponent bits). Stability plus (U,V)-ascending input order reproduces
// the full (W desc, U asc, V asc) comparator order bit for bit; -0 is
// mapped onto +0 so the two compare equal, as the comparator says.
func radixSortByWeightDesc(edges []Edge, idx []int32) {
	keys := make([]uint64, len(edges))
	var counts [8][256]int32
	for i, e := range edges {
		w := e.W
		if w == 0 {
			w = 0 // collapses -0 onto +0
		}
		b := math.Float64bits(w)
		if b>>63 != 0 {
			b = ^b
		} else {
			b |= 1 << 63
		}
		k := ^b // ascending key order == descending weight order
		keys[i] = k
		counts[0][k&0xff]++
		counts[1][k>>8&0xff]++
		counts[2][k>>16&0xff]++
		counts[3][k>>24&0xff]++
		counts[4][k>>32&0xff]++
		counts[5][k>>40&0xff]++
		counts[6][k>>48&0xff]++
		counts[7][k>>56&0xff]++
	}
	n := int32(len(edges))
	src, dst := idx, make([]int32, len(idx))
	for p := 0; p < 8; p++ {
		c := &counts[p]
		shift := uint(8 * p)
		constant := false
		sum := int32(0)
		for b := 0; b < 256; b++ {
			if c[b] == n {
				constant = true
				break
			}
			cnt := c[b]
			c[b] = sum
			sum += cnt
		}
		if constant {
			continue // every key shares this byte; the pass is a no-op
		}
		for _, i := range src {
			b := keys[i] >> shift & 0xff
			dst[c[b]] = i
			c[b]++
		}
		src, dst = dst, src
	}
	if &src[0] != &idx[0] {
		copy(idx, src)
	}
}

// N1 returns the number of nodes in the first collection.
func (g *Bipartite) N1() int { return g.n1 }

// N2 returns the number of nodes in the second collection.
func (g *Bipartite) N2() int { return g.n2 }

// NumNodes returns |V1|+|V2|.
func (g *Bipartite) NumNodes() int { return g.n1 + g.n2 }

// NumEdges returns the number of edges.
func (g *Bipartite) NumEdges() int { return len(g.edges) }

// Edge returns the edge with index i.
func (g *Bipartite) Edge(i int32) Edge { return g.edges[i] }

// Edges returns the underlying edge slice. Callers must not modify it.
func (g *Bipartite) Edges() []Edge { return g.edges }

// EdgesByWeight returns edge indices in descending weight order,
// building the index on first use. Callers must not modify the
// returned slice.
func (g *Bipartite) EdgesByWeight() []int32 {
	g.ensureIndex()
	return g.byWeight
}

// buildAdjCache materializes the adjacency-ordered weight and
// opposite-node arrays.
func (g *Bipartite) buildAdjCache() {
	g.ensureIndex()
	g.adjCacheOnce.Do(func() {
		g.adjW1 = make([]float64, len(g.adj1))
		g.adjOpp1 = make([]int32, len(g.adj1))
		for k, ei := range g.adj1 {
			g.adjW1[k] = g.edges[ei].W
			g.adjOpp1[k] = g.edges[ei].V
		}
		g.adjW2 = make([]float64, len(g.adj2))
		g.adjOpp2 = make([]int32, len(g.adj2))
		for k, ei := range g.adj2 {
			g.adjW2[k] = g.edges[ei].W
			g.adjOpp2[k] = g.edges[ei].U
		}
	})
}

// AdjList1 returns node u of V1's neighbors and edge weights in
// descending weight order (the Adj1 ordering), as two aligned
// contiguous slices. Built once per graph; callers must not modify
// them.
func (g *Bipartite) AdjList1(u NodeID) (opp []int32, ws []float64) {
	g.buildAdjCache()
	return g.adjOpp1[g.off1[u]:g.off1[u+1]], g.adjW1[g.off1[u]:g.off1[u+1]]
}

// AdjList2 is AdjList1 for the V2 side.
func (g *Bipartite) AdjList2(v NodeID) (opp []int32, ws []float64) {
	g.buildAdjCache()
	return g.adjOpp2[g.off2[v]:g.off2[v+1]], g.adjW2[g.off2[v]:g.off2[v+1]]
}

// Adj1 returns the edge indices incident to node u of V1 in descending
// weight order. Callers must not modify the returned slice.
func (g *Bipartite) Adj1(u NodeID) []int32 {
	g.ensureIndex()
	return g.adj1[g.off1[u]:g.off1[u+1]]
}

// Adj2 returns the edge indices incident to node v of V2 in descending
// weight order. Callers must not modify the returned slice.
func (g *Bipartite) Adj2(v NodeID) []int32 {
	g.ensureIndex()
	return g.adj2[g.off2[v]:g.off2[v+1]]
}

// Degree1 returns the degree of node u of V1.
func (g *Bipartite) Degree1(u NodeID) int {
	g.ensureIndex()
	return int(g.off1[u+1] - g.off1[u])
}

// Degree2 returns the degree of node v of V2.
func (g *Bipartite) Degree2(v NodeID) int {
	g.ensureIndex()
	return int(g.off2[v+1] - g.off2[v])
}

// MinWeight returns the smallest edge weight (0 for an empty graph).
func (g *Bipartite) MinWeight() float64 { return g.minW }

// MaxWeight returns the largest edge weight (0 for an empty graph).
func (g *Bipartite) MaxWeight() float64 { return g.maxW }

// Weight returns the weight of edge (u,v) and whether it exists.
// It scans the shorter of the two adjacency lists.
func (g *Bipartite) Weight(u, v NodeID) (float64, bool) {
	if g.Degree1(u) <= g.Degree2(v) {
		for _, ei := range g.Adj1(u) {
			if g.edges[ei].V == v {
				return g.edges[ei].W, true
			}
		}
		return 0, false
	}
	for _, ei := range g.Adj2(v) {
		if g.edges[ei].U == u {
			return g.edges[ei].W, true
		}
	}
	return 0, false
}

// denseLookupEntries caps the n1*n2 product for which PairWeights uses a
// dense weight matrix (8 bytes per cell plus one existence bit): above it
// the lookup falls back to a hash map, keeping the resident memory of
// very large stored graphs bounded.
const denseLookupEntries = 1 << 20

// PairLookup is a constant-time (u,v) -> weight index over a graph's
// edges. Small graphs use a dense matrix with an existence bitset (a
// probe is two array loads, no hashing); large ones fall back to a map.
type PairLookup struct {
	n2    int
	dense []float64 // weight at u*n2+v; nil for the map representation
	bits  []uint64  // edge-existence bitset for dense
	m     map[int64]float64
}

// Weight reports the weight of edge (u,v) and whether it exists.
func (l *PairLookup) Weight(u, v NodeID) (float64, bool) {
	if l.dense != nil {
		idx := int(u)*l.n2 + int(v)
		if l.bits[idx>>6]&(1<<(uint(idx)&63)) == 0 {
			return 0, false
		}
		return l.dense[idx], true
	}
	w, ok := l.m[pairKey(u, v)]
	return w, ok
}

// WeightOrZero returns the weight of edge (u,v), or 0 when the edge is
// absent, without reporting existence — the single-load fast path for
// probe loops (like BAH's) that already treat zero-weight and missing
// edges identically.
func (l *PairLookup) WeightOrZero(u, v NodeID) float64 {
	if l.dense != nil {
		return l.dense[int(u)*l.n2+int(v)]
	}
	return l.m[pairKey(u, v)]
}

// DenseMatrix exposes the dense weight matrix (row-major over V1, row
// stride N2, absent edges 0) when this lookup is dense-backed, else nil.
// Probe loops hot enough to care index it directly. Callers must not
// modify it.
func (l *PairLookup) DenseMatrix() ([]float64, int) {
	return l.dense, l.n2
}

// PairWeights returns the graph's constant-time pair index, building it
// on first use. The index is cached on the (immutable) graph, so
// repeated Match calls — e.g. a 20-point BAH threshold sweep — share one
// build instead of paying O(|E|) each.
func (g *Bipartite) PairWeights() *PairLookup {
	g.pairOnce.Do(func() {
		l := &PairLookup{n2: g.n2}
		if cells := g.n1 * g.n2; cells > 0 && cells <= denseLookupEntries {
			l.dense = make([]float64, cells)
			l.bits = make([]uint64, (cells+63)/64)
			for _, e := range g.edges {
				idx := int(e.U)*g.n2 + int(e.V)
				l.dense[idx] = e.W
				l.bits[idx>>6] |= 1 << (uint(idx) & 63)
			}
		} else {
			l.m = make(map[int64]float64, len(g.edges))
			for _, e := range g.edges {
				l.m[pairKey(e.U, e.V)] = e.W
			}
		}
		g.pair = l
	})
	return g.pair
}

// WeightLookup returns a constant-time weight lookup table for graphs
// where repeated random-pair probes are needed. The backing index is
// built once per graph and shared across calls. It is the functional
// convenience form of PairWeights, which hot loops (like BAH's) use
// directly to avoid the closure call.
func (g *Bipartite) WeightLookup() WeightFunc {
	return g.PairWeights().Weight
}

// WeightFunc reports the weight of a (u,v) pair and whether the edge exists.
type WeightFunc func(u, v NodeID) (float64, bool)

func pairKey(u, v NodeID) int64 { return int64(u)<<32 | int64(uint32(v)) }

// Threshold returns a new graph that keeps only the edges with weight
// strictly greater than t, matching the pruning step "e.sim > t" used by
// the paper's algorithm listings. Node counts are preserved.
func (g *Bipartite) Threshold(t float64) *Bipartite {
	kept := make([]Edge, 0, len(g.edges))
	for _, e := range g.edges {
		if e.W > t {
			kept = append(kept, e)
		}
	}
	return newBipartite(g.n1, g.n2, kept)
}

// NormalizeMinMax returns a new graph with weights rescaled to [0,1] by
// min-max normalization, as applied to every similarity graph in the
// paper's experimental setup (Section 5). If all weights are equal, they
// all become 1.
//
// The rescaling is strictly monotonic, so the descending-weight
// permutation (and with it the CSR adjacency) carries over from g
// unchanged and the rebuild sort is skipped. Rounding can collapse two
// distinct weights onto the same normalized value, which would make the
// inherited permutation disagree with a from-scratch sort on its
// (U,V) tie-break; the exact comparator is therefore re-verified over
// the transformed weights, falling back to a full rebuild on the first
// violation.
func (g *Bipartite) NormalizeMinMax() *Bipartite {
	edges := make([]Edge, len(g.edges))
	span := g.maxW - g.minW
	for i, e := range g.edges {
		w := 1.0
		if span > 0 {
			w = (e.W - g.minW) / span
		}
		edges[i] = Edge{U: e.U, V: e.V, W: w}
	}
	if g.indexed() {
		// The source graph's index is already built: verify it orders
		// the transformed weights exactly as the comparator would and
		// inherit it; rebuild from scratch on the first violation.
		if !sortedByWeight(edges, g.byWeight) {
			return newBipartite(g.n1, g.n2, edges)
		}
		out := newBipartite(g.n1, g.n2, edges)
		out.setIndex(g.off1, g.off2, g.adj1, g.adj2, g.byWeight)
		return out
	}
	return newBipartite(g.n1, g.n2, edges)
}

// indexed reports whether the matching indexes have been materialized,
// without building them. The atomic flag is stored only after every
// index array is fully written, so a true here (followed by the
// release/acquire pair of the atomic) guarantees the arrays are safe to
// read even when another goroutine raced the build.
func (g *Bipartite) indexed() bool { return g.indexBuilt.Load() }

// sortedByWeight reports whether perm orders edges exactly as
// newBipartite's byWeight comparator would: descending weight with
// (U,V)-ascending tie-breaks.
func sortedByWeight(edges []Edge, perm []int32) bool {
	for k := 1; k < len(perm); k++ {
		prev, cur := edges[perm[k-1]], edges[perm[k]]
		switch {
		case prev.W > cur.W:
		case prev.W < cur.W:
			return false
		case prev.U < cur.U:
		case prev.U > cur.U:
			return false
		default:
			if prev.V >= cur.V {
				return false
			}
		}
	}
	return true
}

// AvgAdjWeight1 returns the average weight of edges incident to node u of
// V1, or 0 if u is isolated. RSR seeds nodes in this order.
func (g *Bipartite) AvgAdjWeight1(u NodeID) float64 {
	return avgWeight(g.edges, g.Adj1(u))
}

// AvgAdjWeight2 is AvgAdjWeight1 for the V2 side.
func (g *Bipartite) AvgAdjWeight2(v NodeID) float64 {
	return avgWeight(g.edges, g.Adj2(v))
}

func avgWeight(edges []Edge, adj []int32) float64 {
	if len(adj) == 0 {
		return 0
	}
	s := 0.0
	for _, ei := range adj {
		s += edges[ei].W
	}
	return s / float64(len(adj))
}

// TotalWeight returns the sum of all edge weights.
func (g *Bipartite) TotalWeight() float64 {
	s := 0.0
	for _, e := range g.edges {
		s += e.W
	}
	return s
}

// Density returns |E| / (|V1|*|V2|), the normalized graph size used by the
// paper's threshold analysis (Table 8).
func (g *Bipartite) Density() float64 {
	if g.n1 == 0 || g.n2 == 0 {
		return 0
	}
	return float64(len(g.edges)) / (float64(g.n1) * float64(g.n2))
}

// Validate checks structural invariants. It is used by property tests and
// returns nil on a well-formed graph.
func (g *Bipartite) Validate() error {
	g.ensureIndex()
	if len(g.adj1) != len(g.edges) || len(g.adj2) != len(g.edges) {
		return errors.New("graph: adjacency size mismatch")
	}
	for u := 0; u < g.n1; u++ {
		adj := g.Adj1(NodeID(u))
		for i, ei := range adj {
			e := g.edges[ei]
			if e.U != NodeID(u) {
				return fmt.Errorf("graph: adj1[%d] points at edge of node %d", u, e.U)
			}
			if i > 0 && g.edges[adj[i-1]].W < e.W {
				return fmt.Errorf("graph: adj1[%d] not sorted by descending weight", u)
			}
		}
	}
	for v := 0; v < g.n2; v++ {
		adj := g.Adj2(NodeID(v))
		for i, ei := range adj {
			e := g.edges[ei]
			if e.V != NodeID(v) {
				return fmt.Errorf("graph: adj2[%d] points at edge of node %d", v, e.V)
			}
			if i > 0 && g.edges[adj[i-1]].W < e.W {
				return fmt.Errorf("graph: adj2[%d] not sorted by descending weight", v)
			}
		}
	}
	seen := make(map[int64]bool, len(g.edges))
	for _, e := range g.edges {
		k := pairKey(e.U, e.V)
		if seen[k] {
			return fmt.Errorf("graph: duplicate edge (%d,%d)", e.U, e.V)
		}
		seen[k] = true
	}
	return nil
}
