package graph

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList serializes the graph in a plain text format:
//
//	n1 n2
//	u v w
//	...
//
// one edge per line, weights with full float64 round-trip precision.
func (g *Bipartite) WriteEdgeList(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%d %d\n", g.n1, g.n2); err != nil {
		return err
	}
	for _, e := range g.edges {
		if _, err := fmt.Fprintf(bw, "%d %d %s\n", e.U, e.V,
			strconv.FormatFloat(e.W, 'g', -1, 64)); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Checksum fingerprints the graph content as the FNV-1a hash of its
// edge-list serialization. Two graphs with the same side sizes and the
// same edge set (weights at full float64 precision) have the same
// checksum. The erserve graph store uses it to tag versioned entries.
func (g *Bipartite) Checksum() uint64 {
	h := fnv.New64a()
	_ = g.WriteEdgeList(h) // writes to a hasher cannot fail
	return h.Sum64()
}

// ReadEdgeList parses the format written by WriteEdgeList.
func ReadEdgeList(r io.Reader) (*Bipartite, error) { return ReadEdgeListMax(r, 0) }

// ReadEdgeListMax is ReadEdgeList with a cap on the declared node
// counts: a header whose side sizes sum beyond maxNodes is rejected
// before any allocation. maxNodes <= 0 means no cap. Callers parsing
// untrusted input use it so a few header bytes cannot demand gigabytes
// of adjacency arrays.
func ReadEdgeListMax(r io.Reader, maxNodes int) (*Bipartite, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("graph: empty edge list input")
	}
	var n1, n2 int
	if _, err := fmt.Sscanf(strings.TrimSpace(sc.Text()), "%d %d", &n1, &n2); err != nil {
		return nil, fmt.Errorf("graph: bad header %q: %w", sc.Text(), err)
	}
	// Per-side comparisons avoid n1+n2 overflowing on hostile headers.
	if maxNodes > 0 && (n1 > maxNodes || n2 > maxNodes || n1+n2 > maxNodes) {
		return nil, fmt.Errorf("graph: header declares %d+%d nodes, above the cap of %d", n1, n2, maxNodes)
	}
	b := NewBuilder(n1, n2)
	line := 1
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) != 3 {
			return nil, fmt.Errorf("graph: line %d: want 'u v w', got %q", line, text)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
		w, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
		b.Add(NodeID(u), NodeID(v), w)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build()
}
