package graph

import (
	"math"
	"math/rand"
	"reflect"
	"slices"
	"strings"
	"testing"
	"testing/quick"
)

func mustGraph(t *testing.T, n1, n2 int, edges []Edge) *Bipartite {
	t.Helper()
	b := NewBuilder(n1, n2)
	for _, e := range edges {
		b.Add(e.U, e.V, e.W)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return g
}

// paperGraph reproduces Figure 1(a) of the paper: A1..A5 vs B1..B4.
func paperGraph(t *testing.T) *Bipartite {
	return mustGraph(t, 5, 4, []Edge{
		{0, 0, 0.6}, // A1-B1
		{4, 0, 0.9}, // A5-B1
		{4, 2, 0.6}, // A5-B3
		{1, 1, 0.7}, // A2-B2
		{2, 3, 0.3}, // A3-B4
	})
}

func TestBuilderBasics(t *testing.T) {
	g := paperGraph(t)
	if g.N1() != 5 || g.N2() != 4 {
		t.Fatalf("sides = (%d,%d), want (5,4)", g.N1(), g.N2())
	}
	if g.NumEdges() != 5 {
		t.Fatalf("NumEdges = %d, want 5", g.NumEdges())
	}
	if g.NumNodes() != 9 {
		t.Fatalf("NumNodes = %d, want 9", g.NumNodes())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name string
		f    func(b *Builder)
	}{
		{"u out of range", func(b *Builder) { b.Add(5, 0, 0.5) }},
		{"v out of range", func(b *Builder) { b.Add(0, 9, 0.5) }},
		{"negative u", func(b *Builder) { b.Add(-1, 0, 0.5) }},
		{"NaN weight", func(b *Builder) { b.Add(0, 0, math.NaN()) }},
		{"Inf weight", func(b *Builder) { b.Add(0, 0, math.Inf(1)) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := NewBuilder(3, 3)
			tc.f(b)
			if _, err := b.Build(); err == nil {
				t.Fatalf("Build succeeded, want error")
			}
		})
	}
	if _, err := NewBuilder(-1, 2).Build(); err == nil {
		t.Fatal("negative side accepted")
	}
}

func TestBuilderErrorSticky(t *testing.T) {
	b := NewBuilder(2, 2)
	b.Add(9, 0, 0.5) // invalid
	b.Add(0, 0, 0.5) // valid, but must not clear the error
	if _, err := b.Build(); err == nil {
		t.Fatal("error was not sticky")
	}
}

func TestBuilderGrow(t *testing.T) {
	b := NewBuilder(0, 0)
	b.Grow(4, 7)
	b.Add(4, 7, 0.5)
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if g.N1() != 5 || g.N2() != 8 {
		t.Fatalf("sides = (%d,%d), want (5,8)", g.N1(), g.N2())
	}
}

func TestDuplicateEdgesKeepMax(t *testing.T) {
	g := mustGraph(t, 2, 2, []Edge{{0, 0, 0.3}, {0, 0, 0.8}, {0, 0, 0.5}})
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
	if w, ok := g.Weight(0, 0); !ok || w != 0.8 {
		t.Fatalf("Weight(0,0) = %v,%v, want 0.8,true", w, ok)
	}
}

func TestAdjacencySortedDesc(t *testing.T) {
	g := paperGraph(t)
	adj := g.Adj2(0) // B1: edges to A5 (0.9) and A1 (0.6)
	if len(adj) != 2 {
		t.Fatalf("deg(B1) = %d, want 2", len(adj))
	}
	if g.Edge(adj[0]).U != 4 || g.Edge(adj[1]).U != 0 {
		t.Fatalf("B1 adjacency not weight-sorted: %v %v", g.Edge(adj[0]), g.Edge(adj[1]))
	}
}

func TestEdgesByWeight(t *testing.T) {
	g := paperGraph(t)
	order := g.EdgesByWeight()
	prev := math.Inf(1)
	for _, ei := range order {
		w := g.Edge(ei).W
		if w > prev {
			t.Fatalf("EdgesByWeight not descending: %v after %v", w, prev)
		}
		prev = w
	}
	if g.Edge(order[0]).W != 0.9 {
		t.Fatalf("top edge weight = %v, want 0.9", g.Edge(order[0]).W)
	}
}

func TestWeightLookup(t *testing.T) {
	g := paperGraph(t)
	lookup := g.WeightLookup()
	if w, ok := lookup(4, 0); !ok || w != 0.9 {
		t.Fatalf("lookup(A5,B1) = %v,%v", w, ok)
	}
	if _, ok := lookup(0, 3); ok {
		t.Fatal("lookup found a non-existent edge")
	}
	// Agreement with scanning Weight.
	for u := NodeID(0); int(u) < g.N1(); u++ {
		for v := NodeID(0); int(v) < g.N2(); v++ {
			w1, ok1 := g.Weight(u, v)
			w2, ok2 := lookup(u, v)
			if w1 != w2 || ok1 != ok2 {
				t.Fatalf("Weight(%d,%d) = %v,%v but lookup = %v,%v", u, v, w1, ok1, w2, ok2)
			}
		}
	}
}

func TestThreshold(t *testing.T) {
	g := paperGraph(t)
	pruned := g.Threshold(0.5)
	if pruned.NumEdges() != 4 {
		t.Fatalf("edges after t=0.5: %d, want 4", pruned.NumEdges())
	}
	if pruned.N1() != g.N1() || pruned.N2() != g.N2() {
		t.Fatal("Threshold changed node counts")
	}
	// Strictly greater: an edge exactly at t is pruned.
	if pruned.Threshold(0.6).NumEdges() != 2 {
		t.Fatalf("edges after t=0.6: %d, want 2", pruned.Threshold(0.6).NumEdges())
	}
	if g.Threshold(1.0).NumEdges() != 0 {
		t.Fatal("t=1.0 should prune everything")
	}
}

func TestNormalizeMinMax(t *testing.T) {
	g := mustGraph(t, 2, 2, []Edge{{0, 0, 2}, {0, 1, 4}, {1, 1, 6}})
	n := g.NormalizeMinMax()
	want := map[[2]NodeID]float64{{0, 0}: 0, {0, 1}: 0.5, {1, 1}: 1}
	for k, ww := range want {
		if w, _ := n.Weight(k[0], k[1]); math.Abs(w-ww) > 1e-12 {
			t.Fatalf("normalized weight(%v) = %v, want %v", k, w, ww)
		}
	}
	// Constant weights all become 1.
	c := mustGraph(t, 1, 2, []Edge{{0, 0, 7}, {0, 1, 7}}).NormalizeMinMax()
	for _, e := range c.Edges() {
		if e.W != 1 {
			t.Fatalf("constant graph normalized to %v, want 1", e.W)
		}
	}
}

func TestAvgAdjWeight(t *testing.T) {
	g := paperGraph(t)
	if got := g.AvgAdjWeight2(0); math.Abs(got-0.75) > 1e-12 { // B1: (0.9+0.6)/2
		t.Fatalf("AvgAdjWeight2(B1) = %v, want 0.75", got)
	}
	if got := g.AvgAdjWeight1(3); got != 0 { // A4 isolated
		t.Fatalf("AvgAdjWeight1(A4) = %v, want 0", got)
	}
}

func TestDensityAndTotals(t *testing.T) {
	g := paperGraph(t)
	if got, want := g.Density(), 5.0/20.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Density = %v, want %v", got, want)
	}
	if got, want := g.TotalWeight(), 0.6+0.9+0.6+0.7+0.3; math.Abs(got-want) > 1e-12 {
		t.Fatalf("TotalWeight = %v, want %v", got, want)
	}
	empty := mustGraph(t, 0, 0, nil)
	if empty.Density() != 0 || empty.MinWeight() != 0 || empty.MaxWeight() != 0 {
		t.Fatal("empty graph stats not zero")
	}
}

func TestConnectedComponents(t *testing.T) {
	g := paperGraph(t).Threshold(0.5)
	comps := g.ConnectedComponents()
	// Components: {A1,A5,B1,B3}, {A2,B2}, {A3}, {A4}, {B4}.
	sizes := map[int]int{}
	for _, c := range comps {
		sizes[c.Size()]++
	}
	if !reflect.DeepEqual(sizes, map[int]int{4: 1, 2: 1, 1: 3}) {
		t.Fatalf("component size histogram = %v", sizes)
	}
	total := 0
	for _, c := range comps {
		total += c.Size()
	}
	if total != g.NumNodes() {
		t.Fatalf("components cover %d nodes, want %d", total, g.NumNodes())
	}
}

func TestConnectedComponentsEmpty(t *testing.T) {
	g := mustGraph(t, 3, 2, nil)
	comps := g.ConnectedComponents()
	if len(comps) != 5 {
		t.Fatalf("singleton components = %d, want 5", len(comps))
	}
	for _, c := range comps {
		if c.Size() != 1 {
			t.Fatalf("component %v not a singleton", c)
		}
	}
}

// randomGraph builds a random bipartite graph for property tests.
func randomGraph(rng *rand.Rand, maxSide, maxEdges int) *Bipartite {
	n1 := rng.Intn(maxSide) + 1
	n2 := rng.Intn(maxSide) + 1
	b := NewBuilder(n1, n2)
	m := rng.Intn(maxEdges + 1)
	for i := 0; i < m; i++ {
		b.Add(NodeID(rng.Intn(n1)), NodeID(rng.Intn(n2)), rng.Float64())
	}
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

func TestPropertyValidateRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 30, 200)
		return g.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyThresholdMonotone(t *testing.T) {
	f := func(seed int64, a, bq float64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 20, 100)
		t1 := math.Mod(math.Abs(a), 1)
		t2 := math.Mod(math.Abs(bq), 1)
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		g1, g2 := g.Threshold(t1), g.Threshold(t2)
		if g2.NumEdges() > g1.NumEdges() {
			return false
		}
		for _, e := range g2.Edges() {
			if e.W <= t2 {
				return false
			}
			if _, ok := g1.Weight(e.U, e.V); !ok {
				return false // higher threshold kept an edge the lower one dropped
			}
		}
		return g1.Validate() == nil && g2.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyNormalizeRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := randomGraph(rng, 20, 100).NormalizeMinMax()
		for _, e := range n.Edges() {
			if e.W < 0 || e.W > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyComponentsPartition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 25, 120)
		seen1 := make([]bool, g.N1())
		seen2 := make([]bool, g.N2())
		for _, c := range g.ConnectedComponents() {
			for _, u := range c.V1 {
				if seen1[u] {
					return false
				}
				seen1[u] = true
			}
			for _, v := range c.V2 {
				if seen2[v] {
					return false
				}
				seen2[v] = true
			}
		}
		for _, s := range seen1 {
			if !s {
				return false
			}
		}
		for _, s := range seen2 {
			if !s {
				return false
			}
		}
		// Every edge's endpoints are in the same component.
		comp := make(map[[2]int32]int)
		for ci, c := range g.ConnectedComponents() {
			for _, u := range c.V1 {
				comp[[2]int32{1, u}] = ci
			}
			for _, v := range c.V2 {
				comp[[2]int32{2, v}] = ci
			}
		}
		for _, e := range g.Edges() {
			if comp[[2]int32{1, e.U}] != comp[[2]int32{2, e.V}] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := paperGraph(t)
	var buf strings.Builder
	if err := g.WriteEdgeList(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadEdgeList(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.N1() != g.N1() || back.N2() != g.N2() || back.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed shape")
	}
	for _, e := range g.Edges() {
		if w, ok := back.Weight(e.U, e.V); !ok || w != e.W {
			t.Fatalf("edge (%d,%d) weight %v -> %v,%v", e.U, e.V, e.W, w, ok)
		}
	}
}

func TestReadEdgeListErrors(t *testing.T) {
	cases := []struct{ name, input string }{
		{"empty", ""},
		{"bad header", "x y\n"},
		{"bad edge", "2 2\n0 0\n"},
		{"bad weight", "2 2\n0 0 abc\n"},
		{"out of range", "2 2\n5 0 0.5\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ReadEdgeList(strings.NewReader(tc.input)); err == nil {
				t.Fatal("bad input accepted")
			}
		})
	}
	// Comments and blank lines are tolerated.
	g, err := ReadEdgeList(strings.NewReader("2 2\n# comment\n\n0 1 0.5\n"))
	if err != nil || g.NumEdges() != 1 {
		t.Fatalf("comment handling broken: %v %v", g, err)
	}
}

func TestPropertyEdgeListRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(rng, 15, 80)
		var buf strings.Builder
		if err := g.WriteEdgeList(&buf); err != nil {
			return false
		}
		back, err := ReadEdgeList(strings.NewReader(buf.String()))
		if err != nil {
			return false
		}
		if back.NumEdges() != g.NumEdges() {
			return false
		}
		for _, e := range g.Edges() {
			if w, ok := back.Weight(e.U, e.V); !ok || w != e.W {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// randomTestGraph builds a random graph, optionally with duplicate adds
// and equal weights, for exercising the caches.
func randomTestGraph(seed int64, n1, n2, edges int) *Bipartite {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n1, n2)
	for k := 0; k < edges; k++ {
		w := rng.Float64()
		if k%7 == 0 {
			w = 0.5 // exercise weight ties
		}
		b.Add(int32(rng.Intn(n1)), int32(rng.Intn(n2)), w)
	}
	return b.MustBuild()
}

// PairWeights must agree with Weight on every cell, in both the dense
// and the map representation.
func TestPairLookupMatchesWeight(t *testing.T) {
	dense := randomTestGraph(3, 20, 30, 150)
	big := randomTestGraph(4, 1<<11, 1<<10, 500) // n1*n2 > denseLookupEntries -> map
	for name, g := range map[string]*Bipartite{"dense": dense, "map": big} {
		l := g.PairWeights()
		if name == "dense" && l.dense == nil {
			t.Fatalf("small graph did not get a dense lookup")
		}
		if name == "map" && l.dense != nil {
			t.Fatalf("big graph got a dense lookup")
		}
		for _, e := range g.Edges() {
			w, ok := l.Weight(e.U, e.V)
			if !ok || w != e.W {
				t.Fatalf("%s: Weight(%d,%d) = %v,%v, want %v,true", name, e.U, e.V, w, ok, e.W)
			}
			if wz := l.WeightOrZero(e.U, e.V); wz != e.W {
				t.Fatalf("%s: WeightOrZero(%d,%d) = %v, want %v", name, e.U, e.V, wz, e.W)
			}
		}
		// Probe some absent pairs.
		for u := NodeID(0); u < 5; u++ {
			for v := NodeID(0); v < 5; v++ {
				want, wantOK := g.Weight(u, v)
				got, ok := l.Weight(u, v)
				if got != want || ok != wantOK {
					t.Fatalf("%s: Weight(%d,%d) = %v,%v, want %v,%v", name, u, v, got, ok, want, wantOK)
				}
			}
		}
		if l2 := g.PairWeights(); l2 != l {
			t.Fatalf("%s: PairWeights not cached", name)
		}
	}
}

// The structural-reuse NormalizeMinMax must equal a from-scratch rebuild
// of the rescaled edges, including adjacency order and byWeight ties.
func TestNormalizeMinMaxMatchesRebuild(t *testing.T) {
	cases := []*Bipartite{
		randomTestGraph(5, 15, 25, 120),
		NewBuilder(3, 3).MustBuild(), // empty
		func() *Bipartite { // all weights equal: everything becomes 1
			b := NewBuilder(4, 4)
			b.Add(0, 1, 0.3)
			b.Add(2, 3, 0.3)
			b.Add(1, 0, 0.3)
			return b.MustBuild()
		}(),
		func() *Bipartite { // negative weights
			b := NewBuilder(3, 3)
			b.Add(0, 0, -2)
			b.Add(1, 1, 0)
			b.Add(2, 2, 2)
			return b.MustBuild()
		}(),
	}
	for i, g := range cases {
		fast := g.NormalizeMinMax()
		span := g.MaxWeight() - g.MinWeight()
		rb := NewBuilder(g.N1(), g.N2())
		for _, e := range g.Edges() {
			w := 1.0
			if span > 0 {
				w = (e.W - g.MinWeight()) / span
			}
			rb.Add(e.U, e.V, w)
		}
		want := rb.MustBuild()
		if fast.Checksum() != want.Checksum() {
			t.Fatalf("case %d: normalized checksum differs from rebuild", i)
		}
		for u := 0; u < g.N1(); u++ {
			fa, wa := fast.AdjList1(NodeID(u))
			ga, gw := want.AdjList1(NodeID(u))
			if len(fa) != len(ga) {
				t.Fatalf("case %d: adjacency length differs at node %d", i, u)
			}
			for k := range fa {
				if fa[k] != ga[k] || wa[k] != gw[k] {
					t.Fatalf("case %d: adjacency differs at node %d entry %d", i, u, k)
				}
			}
		}
		if err := fast.Validate(); err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
	}
}

// AdjList must mirror Adj exactly.
func TestAdjListsMatchAdjacency(t *testing.T) {
	g := randomTestGraph(6, 30, 20, 200)
	for u := 0; u < g.N1(); u++ {
		opp, ws := g.AdjList1(NodeID(u))
		adj := g.Adj1(NodeID(u))
		if len(opp) != len(adj) {
			t.Fatalf("node %d: AdjList1 has %d entries, Adj1 %d", u, len(opp), len(adj))
		}
		for k, ei := range adj {
			if e := g.Edge(ei); opp[k] != e.V || ws[k] != e.W {
				t.Fatalf("node %d entry %d: (%d,%v), want (%d,%v)", u, k, opp[k], ws[k], e.V, e.W)
			}
		}
	}
	for v := 0; v < g.N2(); v++ {
		opp, ws := g.AdjList2(NodeID(v))
		adj := g.Adj2(NodeID(v))
		for k, ei := range adj {
			if e := g.Edge(ei); opp[k] != e.U || ws[k] != e.W {
				t.Fatalf("node %d entry %d: (%d,%v), want (%d,%v)", v, k, opp[k], ws[k], e.U, e.W)
			}
		}
	}
}

func TestBuilderReserve(t *testing.T) {
	b := NewBuilder(10, 10)
	b.Reserve(64)
	for i := 0; i < 10; i++ {
		b.Add(int32(i), int32(9-i), float64(i+1))
	}
	g := b.MustBuild()
	if g.NumEdges() != 10 {
		t.Fatalf("edges = %d, want 10", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// comparatorByWeight is the reference (W desc, U asc, V asc) permutation
// sort the radix path must reproduce bit for bit.
func comparatorByWeight(edges []Edge) []int32 {
	idx := make([]int32, len(edges))
	for i := range idx {
		idx[i] = int32(i)
	}
	slices.SortFunc(idx, func(x, y int32) int {
		ei, ej := edges[x], edges[y]
		switch {
		case ei.W > ej.W:
			return -1
		case ei.W < ej.W:
			return 1
		case ei.U != ej.U:
			return int(ei.U) - int(ej.U)
		default:
			return int(ei.V) - int(ej.V)
		}
	})
	return idx
}

func TestRadixByWeightMatchesComparator(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 256 + rng.Intn(2000)
		// (U,V)-ascending unique pairs with heavy weight ties (quantized
		// weights) plus exact duplicates of magnitude classes.
		edges := make([]Edge, 0, n)
		u, v := int32(0), int32(0)
		for len(edges) < n {
			v += int32(1 + rng.Intn(3))
			if v > 1000 {
				u++
				v = int32(rng.Intn(3))
			}
			w := float64(rng.Intn(16)) / 15
			if rng.Intn(10) == 0 {
				w = 0 // exercise the -0/+0 collapse alongside zeros
			}
			edges = append(edges, Edge{U: u, V: v, W: w})
		}
		if !isSortedUV(edges) {
			t.Fatal("test construction broken: edges not (U,V)-sorted")
		}
		want := comparatorByWeight(edges)
		got := make([]int32, len(edges))
		for i := range got {
			got[i] = int32(i)
		}
		radixSortByWeightDesc(edges, got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: permutation diverges at %d: %d vs %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestRadixByWeightNegativeZero(t *testing.T) {
	negZero := math.Copysign(0, -1)
	edges := make([]Edge, 0, 300)
	for i := 0; i < 300; i++ {
		w := 0.0
		if i%2 == 0 {
			w = negZero
		}
		edges = append(edges, Edge{U: int32(i / 10), V: int32(i % 10), W: w})
	}
	want := comparatorByWeight(edges)
	got := make([]int32, len(edges))
	for i := range got {
		got[i] = int32(i)
	}
	radixSortByWeightDesc(edges, got)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("-0/+0 tie-break diverges at %d: %d vs %d", i, got[i], want[i])
		}
	}
}

// V-major assembled builders (the bag/gram kernels' order) must produce
// graphs byte-identical to the same edges added in arbitrary order.
func TestBuildVMajorMatchesGeneric(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 20; trial++ {
		n1, n2 := 1+rng.Intn(40), 1+rng.Intn(40)
		type pair struct{ u, v int32 }
		seen := map[pair]float64{}
		for k := 0; k < rng.Intn(200); k++ {
			seen[pair{int32(rng.Intn(n1)), int32(rng.Intn(n2))}] = rng.Float64()
		}
		// V-major order.
		bv := NewBuilder(n1, n2)
		for v := 0; v < n2; v++ {
			for u := 0; u < n1; u++ {
				if w, ok := seen[pair{int32(u), int32(v)}]; ok {
					bv.Add(int32(u), int32(v), w)
				}
			}
		}
		// Shuffled order (generic sort path).
		type triple struct {
			u, v int32
			w    float64
		}
		var ts []triple
		for p, w := range seen {
			ts = append(ts, triple{p.u, p.v, w})
		}
		rng.Shuffle(len(ts), func(i, j int) { ts[i], ts[j] = ts[j], ts[i] })
		bs := NewBuilder(n1, n2)
		for _, e := range ts {
			bs.Add(e.u, e.v, e.w)
		}
		gv, gs := bv.MustBuild(), bs.MustBuild()
		if gv.Checksum() != gs.Checksum() {
			t.Fatalf("trial %d: V-major build checksum %016x != generic %016x",
				trial, gv.Checksum(), gs.Checksum())
		}
		if err := gv.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestBuildNormalizedMatchesTwoStep pins the fused build+normalize
// against Build().NormalizeMinMax() on random edge sets (duplicates,
// ties, single-weight graphs, empty graphs): identical checksums,
// by-weight order and adjacency.
func TestBuildNormalizedMatchesTwoStep(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 200; iter++ {
		n1, n2 := rng.Intn(8)+1, rng.Intn(8)+1
		e := rng.Intn(30)
		ba, bb := NewBuilder(n1, n2), NewBuilder(n1, n2)
		for k := 0; k < e; k++ {
			u, v := int32(rng.Intn(n1)), int32(rng.Intn(n2))
			w := float64(rng.Intn(5)) / 4 // ties and repeated weights
			if rng.Intn(4) == 0 {
				w = 0.5 // constant-weight graphs exercise the span==0 path
			}
			ba.Add(u, v, w)
			bb.Add(u, v, w)
		}
		fused, err := ba.BuildNormalized()
		if err != nil {
			t.Fatal(err)
		}
		twoStep := bb.MustBuild().NormalizeMinMax()
		if fused.Checksum() != twoStep.Checksum() {
			t.Fatalf("iter %d: checksum %016x != %016x", iter, fused.Checksum(), twoStep.Checksum())
		}
		fw, tw := fused.EdgesByWeight(), twoStep.EdgesByWeight()
		for k := range tw {
			if fused.Edge(fw[k]) != twoStep.Edge(tw[k]) {
				t.Fatalf("iter %d: by-weight order diverges at %d", iter, k)
			}
		}
		if err := fused.Validate(); err != nil {
			t.Fatal(err)
		}
	}
}
