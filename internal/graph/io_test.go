package graph

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

// randomIOGraph builds a deterministic pseudo-random graph with awkward
// weights (full-precision floats, extremes of the [0,1] range).
func randomIOGraph(t *testing.T, seed int64, n1, n2, edges int) *Bipartite {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(n1, n2)
	for k := 0; k < edges; k++ {
		w := rng.Float64()
		switch k % 7 {
		case 0:
			w = 0
		case 1:
			w = 1
		case 2:
			w = math.SmallestNonzeroFloat64
		case 3:
			w = 1 - 1e-16
		}
		b.Add(int32(rng.Intn(n1)), int32(rng.Intn(n2)), w)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestEdgeListRoundTripProperty is the codec property: build -> write ->
// read reproduces the side sizes, the exact edge set (weights at full
// float64 precision) and the content checksum.
func TestEdgeListRoundTripProperty(t *testing.T) {
	cases := []struct {
		seed          int64
		n1, n2, edges int
	}{
		{1, 1, 1, 1},
		{2, 5, 3, 10},
		{3, 40, 60, 500},
		{4, 7, 7, 0}, // no edges, header only
		{5, 100, 1, 80},
	}
	for _, tc := range cases {
		g := randomIOGraph(t, tc.seed, tc.n1, tc.n2, tc.edges)
		var buf bytes.Buffer
		if err := g.WriteEdgeList(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := ReadEdgeList(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: read back: %v", tc.seed, err)
		}
		if back.N1() != g.N1() || back.N2() != g.N2() {
			t.Fatalf("seed %d: sides %d/%d, want %d/%d", tc.seed, back.N1(), back.N2(), g.N1(), g.N2())
		}
		if back.NumEdges() != g.NumEdges() {
			t.Fatalf("seed %d: %d edges, want %d", tc.seed, back.NumEdges(), g.NumEdges())
		}
		for i, e := range g.Edges() {
			r := back.Edges()[i]
			if r != e {
				t.Fatalf("seed %d: edge %d = %+v, want %+v", tc.seed, i, r, e)
			}
		}
		if back.Checksum() != g.Checksum() {
			t.Fatalf("seed %d: checksum changed across round-trip", tc.seed)
		}
		if err := back.Validate(); err != nil {
			t.Fatalf("seed %d: round-tripped graph invalid: %v", tc.seed, err)
		}
	}
}

func TestReadEdgeListToleratesCommentsAndBlanks(t *testing.T) {
	input := strings.Join([]string{
		"  3 4  ", // padded header
		"",
		"# a comment",
		"0 1 0.5",
		"   ", // whitespace-only line
		"\t2 3 0.25\t",
		"# trailing comment",
		"",
	}, "\n") + "\n"
	g, err := ReadEdgeList(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.N1() != 3 || g.N2() != 4 || g.NumEdges() != 2 {
		t.Fatalf("parsed %d/%d with %d edges", g.N1(), g.N2(), g.NumEdges())
	}
	if w, ok := g.Weight(2, 3); !ok || w != 0.25 {
		t.Fatalf("edge (2,3) = %v, %v", w, ok)
	}
}

// TestReadEdgeListLongLines exercises the scanner's growable buffer (the
// 16 MiB cap): single lines far beyond the 64 KiB initial buffer must
// parse, both as comments and as heavily padded edge lines.
func TestReadEdgeListLongLines(t *testing.T) {
	pad := strings.Repeat(" ", 1<<20) // 1 MiB of spaces on one line
	input := "2 2\n" +
		"#" + strings.Repeat("c", 1<<20) + "\n" + // 1 MiB comment
		"0 0 0.75" + pad + "\n" +
		pad + "1 1 0.5\n"
	g, err := ReadEdgeList(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("%d edges, want 2", g.NumEdges())
	}
	if w, ok := g.Weight(0, 0); !ok || w != 0.75 {
		t.Fatalf("edge (0,0) = %v, %v", w, ok)
	}
}

// TestReadEdgeListLineTooLong pins the other side of the buffer cap: a
// line beyond 16 MiB is an error, not a hang or a silent truncation.
func TestReadEdgeListLineTooLong(t *testing.T) {
	if testing.Short() {
		t.Skip("allocates ~17 MiB")
	}
	input := "2 2\n#" + strings.Repeat("c", 17<<20) + "\n0 0 0.5\n"
	if _, err := ReadEdgeList(strings.NewReader(input)); err == nil {
		t.Fatal("17 MiB line accepted")
	}
}

func TestReadEdgeListMaxNodeCap(t *testing.T) {
	huge := "2000000000 2000000000\n"
	if _, err := ReadEdgeListMax(strings.NewReader(huge), 1000); err == nil {
		t.Fatal("hostile header accepted under cap")
	}
	if g, err := ReadEdgeListMax(strings.NewReader("3 4\n0 0 0.5\n"), 1000); err != nil || g.N1() != 3 {
		t.Fatalf("in-cap graph rejected: %v", err)
	}
	// The exact boundary is allowed.
	if _, err := ReadEdgeListMax(strings.NewReader("3 4\n"), 7); err != nil {
		t.Fatalf("boundary graph rejected: %v", err)
	}
	if _, err := ReadEdgeListMax(strings.NewReader("4 4\n"), 7); err == nil {
		t.Fatal("above-boundary graph accepted")
	}
	// maxNodes 0 preserves the uncapped ReadEdgeList behavior.
	if _, err := ReadEdgeListMax(strings.NewReader("3 4\n"), 0); err != nil {
		t.Fatalf("uncapped read failed: %v", err)
	}
}

func TestChecksumSensitivity(t *testing.T) {
	base := NewBuilder(2, 2)
	base.Add(0, 0, 0.5)
	g1 := base.MustBuild()

	sameB := NewBuilder(2, 2)
	sameB.Add(0, 0, 0.5)
	g2 := sameB.MustBuild()
	if g1.Checksum() != g2.Checksum() {
		t.Fatal("identical graphs, different checksums")
	}

	for name, build := range map[string]func() *Bipartite{
		"weight": func() *Bipartite {
			b := NewBuilder(2, 2)
			b.Add(0, 0, 0.5000000001)
			return b.MustBuild()
		},
		"endpoint": func() *Bipartite {
			b := NewBuilder(2, 2)
			b.Add(0, 1, 0.5)
			return b.MustBuild()
		},
		"sides": func() *Bipartite {
			b := NewBuilder(3, 2)
			b.Add(0, 0, 0.5)
			return b.MustBuild()
		},
		"extra edge": func() *Bipartite {
			b := NewBuilder(2, 2)
			b.Add(0, 0, 0.5)
			b.Add(1, 1, 0.5)
			return b.MustBuild()
		},
	} {
		if build().Checksum() == g1.Checksum() {
			t.Errorf("%s change left checksum unchanged", name)
		}
	}
}
