package graph

// Node identifies a node of either side of a bipartite graph.
type Node struct {
	Side int    // 1 for V1, 2 for V2
	ID   NodeID // index within the side
}

// Component is a connected component of a bipartite graph, listing its
// member nodes from both sides.
type Component struct {
	V1 []NodeID
	V2 []NodeID
}

// Size returns the total number of nodes in the component.
func (c Component) Size() int { return len(c.V1) + len(c.V2) }

// ConnectedComponents computes the connected components of the graph using
// union-find with path halving and union by size. Isolated nodes form
// singleton components. The result is ordered by the smallest global node
// index of each component, so it is deterministic.
func (g *Bipartite) ConnectedComponents() []Component {
	n := g.n1 + g.n2
	parent := make([]int32, n)
	size := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
		size[i] = 1
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, b int32) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		if size[ra] < size[rb] {
			ra, rb = rb, ra
		}
		parent[rb] = ra
		size[ra] += size[rb]
	}
	for _, e := range g.edges {
		union(int32(e.U), int32(g.n1)+int32(e.V))
	}

	index := make(map[int32]int)
	var comps []Component
	for i := int32(0); i < int32(n); i++ {
		r := find(i)
		ci, ok := index[r]
		if !ok {
			ci = len(comps)
			index[r] = ci
			comps = append(comps, Component{})
		}
		if int(i) < g.n1 {
			comps[ci].V1 = append(comps[ci].V1, i)
		} else {
			comps[ci].V2 = append(comps[ci].V2, i-int32(g.n1))
		}
	}
	return comps
}
