package strsim

import (
	"math"
	"strings"
	"testing"
)

// Native fuzz targets: the similarity measures are exposed to arbitrary
// attribute values, so they must never panic, never leave [0,1], and
// respect their metric-like contracts on any input.

func clip(s string) string {
	s = strings.ToValidUTF8(s, "")
	if len(s) > 64 {
		s = s[:64] // DP measures are quadratic
	}
	return s
}

func FuzzAllMeasures(f *testing.F) {
	f.Add("golden dragon", "golden dragon bistro")
	f.Add("", "x")
	f.Add("ab", "ba")
	f.Add("café au lait", "cafe du monde")
	f.Add("\xff\xfe", "ok")
	measures := AllMeasures()
	f.Fuzz(func(t *testing.T, a, b string) {
		a, b = clip(a), clip(b)
		for name, m := range measures {
			s := m(a, b)
			if math.IsNaN(s) || s < -1e-9 || s > 1+1e-9 {
				t.Fatalf("%s(%q,%q) = %v", name, a, b, s)
			}
			if self := m(a, a); math.Abs(self-1) > 1e-9 {
				t.Fatalf("%s(%q,%q) = %v, want 1", name, a, a, self)
			}
		}
	})
}

func FuzzLevenshteinMetric(f *testing.F) {
	f.Add("kitten", "sitting", "mitten")
	f.Add("", "", "")
	f.Fuzz(func(t *testing.T, a, b, c string) {
		a, b, c = clip(a), clip(b), clip(c)
		ab := LevenshteinDistance(a, b)
		ba := LevenshteinDistance(b, a)
		if ab != ba {
			t.Fatalf("not symmetric: %d vs %d", ab, ba)
		}
		if ab < 0 {
			t.Fatalf("negative distance %d", ab)
		}
		if (ab == 0) != (a == b) {
			t.Fatalf("identity of indiscernibles broken for %q,%q", a, b)
		}
		if ac, bc := LevenshteinDistance(a, c), LevenshteinDistance(b, c); ac > ab+bc {
			t.Fatalf("triangle inequality broken: %d > %d + %d", ac, ab, bc)
		}
	})
}

// clipLong keeps fuzz inputs valid UTF-8 but allows them well past the
// 64-rune machine-word boundary, so the multi-word bit-parallel kernels
// and the Damerau scalar fallback are fuzzed too (quadratic cost is
// bounded by the 256-byte cap).
func clipLong(s string) string {
	s = strings.ToValidUTF8(s, "")
	if len(s) > 256 {
		s = s[:256]
		s = strings.ToValidUTF8(s, "")
	}
	return s
}

// FuzzBitparVsScalar pins every bit-parallel / automaton / scratch
// kernel against the retained scalar DP references on arbitrary unicode
// input, including empty strings and patterns crossing the 64-rune
// word boundary.
func FuzzBitparVsScalar(f *testing.F) {
	f.Add("golden dragon", "golden dragon bistro")
	f.Add("", "")
	f.Add("", "x")
	f.Add("ab", "ba")
	f.Add("café au lait", "cafe du monde")
	f.Add(strings.Repeat("abcdefg", 12), strings.Repeat("abcdfeg", 12)) // > 64 runes both sides
	f.Add(strings.Repeat("日本語", 30), "日本")
	f.Add("\xff\xfe", "ok")
	f.Fuzz(func(t *testing.T, a, b string) {
		a, b = clipLong(a), clipLong(b)
		ra, rb := []rune(a), []rune(b)
		p := NewCharProfile(a)
		scratch := NewCharScratch()
		if got, want := p.LevenshteinDistance(rb, scratch), LevenshteinDistanceSeq(ra, rb); got != want {
			t.Fatalf("LevenshteinDistance(%q,%q) = %d, scalar %d", a, b, got, want)
		}
		if got, want := p.DamerauLevenshteinDistance(rb, scratch), DamerauLevenshteinDistanceSeq(ra, rb); got != want {
			t.Fatalf("DamerauLevenshteinDistance(%q,%q) = %d, scalar %d", a, b, got, want)
		}
		if got, want := p.LongestCommonSubsequence(rb, scratch), LongestCommonSubsequenceSeq(ra, rb); got != want {
			t.Fatalf("LongestCommonSubsequence(%q,%q) = %v, scalar %v", a, b, got, want)
		}
		if got, want := p.LongestCommonSubstring(rb), LongestCommonSubstringSeq(ra, rb); got != want {
			t.Fatalf("LongestCommonSubstring(%q,%q) = %v, scalar %v", a, b, got, want)
		}
		if got, want := JaroSeqScratch(ra, rb, scratch), JaroSeq(ra, rb); got != want {
			t.Fatalf("JaroSeqScratch(%q,%q) = %v, scalar %v", a, b, got, want)
		}
		if got, want := NeedlemanWunschSeqScratch(ra, rb, scratch), NeedlemanWunschSeq(ra, rb); got != want {
			t.Fatalf("NeedlemanWunschSeqScratch(%q,%q) = %v, scalar %v", a, b, got, want)
		}
		if got, want := SmithWatermanSeqScratch(ra, rb, scratch), SmithWatermanSeq(ra, rb); got != want {
			t.Fatalf("SmithWatermanSeqScratch(%q,%q) = %v, scalar %v", a, b, got, want)
		}
		if got, want := p.NeedlemanWunsch(rb, scratch), NeedlemanWunschSeq(ra, rb); got != want {
			t.Fatalf("bitpar NeedlemanWunsch(%q,%q) = %v, scalar %v", a, b, got, want)
		}
		if got, want := JaroSeqBitpar(ra, rb, NewJaroTable(rb), scratch), JaroSeq(ra, rb); got != want {
			t.Fatalf("JaroSeqBitpar(%q,%q) = %v, scalar %v", a, b, got, want)
		}
	})
}

func FuzzTokenize(f *testing.F) {
	f.Add("Hello, World! 42")
	f.Add("\x00\xff mixed\tbytes")
	f.Fuzz(func(t *testing.T, s string) {
		for _, tok := range Tokenize(s) {
			if tok == "" {
				t.Fatal("empty token")
			}
			if tok != strings.ToLower(tok) {
				t.Fatalf("token %q not lower-cased", tok)
			}
		}
	})
}
