// Package strsim implements the schema-based syntactic similarity measures
// of the paper's Appendix B: seven character-level measures applied to raw
// strings and nine token-level measures applied to word multisets. They
// follow the definitions (and, where the paper defers to it, the
// normalizations) of the Simmetrics package the paper used.
//
// All exported similarity functions return values in [0,1], where 1 means
// identical inputs. Distances are exposed separately where they are useful
// on their own. Strings are compared as sequences of runes, so multi-byte
// text behaves correctly.
package strsim

import "unicode/utf8"

// Func is a normalized string similarity in [0,1].
type Func func(a, b string) float64

// Levenshtein returns the normalized Levenshtein similarity:
// 1 - dist/max(|a|,|b|).
func Levenshtein(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	return normDist(LevenshteinDistance(a, b), len(ra), len(rb))
}

// LevenshteinDistance returns the minimum number of insertions, deletions
// and substitutions transforming a into b.
func LevenshteinDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// DamerauLevenshtein returns the normalized Damerau-Levenshtein
// similarity, which additionally allows transpositions of adjacent
// characters (restricted edit distance).
func DamerauLevenshtein(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	return normDist(DamerauLevenshteinDistance(a, b), len(ra), len(rb))
}

// DamerauLevenshteinDistance returns the restricted Damerau-Levenshtein
// edit distance (insert, delete, substitute, transpose adjacent).
func DamerauLevenshteinDistance(a, b string) int {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 {
		return len(rb)
	}
	if len(rb) == 0 {
		return len(ra)
	}
	width := len(rb) + 1
	two := make([]int, width)  // row i-2
	prev := make([]int, width) // row i-1
	cur := make([]int, width)  // row i
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = i
		for j := 1; j <= len(rb); j++ {
			cost := 1
			if ra[i-1] == rb[j-1] {
				cost = 0
			}
			cur[j] = min3(prev[j]+1, cur[j-1]+1, prev[j-1]+cost)
			if i > 1 && j > 1 && ra[i-1] == rb[j-2] && ra[i-2] == rb[j-1] {
				if v := two[j-2] + 1; v < cur[j] {
					cur[j] = v
				}
			}
		}
		two, prev, cur = prev, cur, two
	}
	return prev[len(rb)]
}

// Jaro returns the Jaro similarity of a and b.
func Jaro(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	window := max2(len(ra), len(rb))/2 - 1
	if window < 0 {
		window = 0
	}
	matchA := make([]bool, len(ra))
	matchB := make([]bool, len(rb))
	matches := 0
	for i := range ra {
		lo := max2(0, i-window)
		hi := min2(len(rb)-1, i+window)
		for j := lo; j <= hi; j++ {
			if !matchB[j] && ra[i] == rb[j] {
				matchA[i], matchB[j] = true, true
				matches++
				break
			}
		}
	}
	if matches == 0 {
		return 0
	}
	// Count transpositions among matched characters.
	transpositions := 0
	j := 0
	for i := range ra {
		if !matchA[i] {
			continue
		}
		for !matchB[j] {
			j++
		}
		if ra[i] != rb[j] {
			transpositions++
		}
		j++
	}
	m := float64(matches)
	t := float64(transpositions) / 2
	return (m/float64(len(ra)) + m/float64(len(rb)) + (m-t)/m) / 3
}

// Needleman-Wunsch scoring used by the paper (and Simmetrics):
// match 0, mismatch -1, gap -2.
const (
	nwMatch    = 0.0
	nwMismatch = -1.0
	nwGap      = -2.0
)

// NeedlemanWunsch returns the normalized Needleman-Wunsch similarity with
// the paper's scores (match 0, mismatch -1, gap -2): the alignment score
// is rescaled by the worst possible score for the input lengths, giving
// 1 for identical strings and 0 for a worst-case alignment.
func NeedlemanWunsch(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	maxLen := max2(len(ra), len(rb))
	if maxLen == 0 {
		return 1
	}
	// nwScore is the (non-positive) maximum alignment score; its negation
	// is the minimum alignment cost, which never exceeds 2*maxLen because
	// mismatching everything costs at most that. This is Simmetrics'
	// normalization: 1 - cost / (maxLen * |gap|).
	return 1 + nwScore(ra, rb)/(-nwGap*float64(maxLen))
}

func nwScore(ra, rb []rune) float64 {
	prev := make([]float64, len(rb)+1)
	cur := make([]float64, len(rb)+1)
	for j := 1; j <= len(rb); j++ {
		prev[j] = float64(j) * nwGap
	}
	for i := 1; i <= len(ra); i++ {
		cur[0] = float64(i) * nwGap
		for j := 1; j <= len(rb); j++ {
			sub := nwMismatch
			if ra[i-1] == rb[j-1] {
				sub = nwMatch
			}
			best := prev[j-1] + sub
			if v := prev[j] + nwGap; v > best {
				best = v
			}
			if v := cur[j-1] + nwGap; v > best {
				best = v
			}
			cur[j] = best
		}
		prev, cur = cur, prev
	}
	return prev[len(rb)]
}

// QGramsDistance returns the q-grams similarity: block (L1) distance over
// padded trigram profiles, normalized by the total number of trigrams
// (1 - dist/total). This is Simmetrics' QGramsDistance with q=3 and
// boundary padding.
func QGramsDistance(a, b string) float64 {
	pa := qgramProfile(a, 3)
	pb := qgramProfile(b, 3)
	total := 0
	dist := 0
	for g, ca := range pa {
		cb := pb[g]
		dist += abs(ca - cb)
		total += ca + cb
	}
	for g, cb := range pb {
		if _, seen := pa[g]; !seen {
			dist += cb
			total += cb
		}
	}
	if total == 0 {
		return 1
	}
	return 1 - float64(dist)/float64(total)
}

// qgramProfile counts the padded character q-grams of s.
func qgramProfile(s string, q int) map[string]int {
	if s == "" {
		return nil
	}
	pad := ""
	for i := 0; i < q-1; i++ {
		pad += "#"
	}
	padded := []rune(pad + s + pad)
	profile := make(map[string]int)
	for i := 0; i+q <= len(padded); i++ {
		profile[string(padded[i:i+q])]++
	}
	return profile
}

// LongestCommonSubstring returns |lcsstr(a,b)| / max(|a|,|b|).
func LongestCommonSubstring(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	best := 0
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			if ra[i-1] == rb[j-1] {
				cur[j] = prev[j-1] + 1
				if cur[j] > best {
					best = cur[j]
				}
			} else {
				cur[j] = 0
			}
		}
		prev, cur = cur, prev
	}
	return float64(best) / float64(max2(len(ra), len(rb)))
}

// LongestCommonSubsequence returns |lcsseq(a,b)| / max(|a|,|b|).
func LongestCommonSubsequence(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	prev := make([]int, len(rb)+1)
	cur := make([]int, len(rb)+1)
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			if ra[i-1] == rb[j-1] {
				cur[j] = prev[j-1] + 1
			} else if prev[j] >= cur[j-1] {
				cur[j] = prev[j]
			} else {
				cur[j] = cur[j-1]
			}
		}
		prev, cur = cur, prev
	}
	return float64(prev[len(rb)]) / float64(max2(len(ra), len(rb)))
}

// Smith-Waterman scoring used as the Monge-Elkan secondary measure
// (Simmetrics defaults): match +1, mismatch -2, gap -0.5.
const (
	swMatch    = 1.0
	swMismatch = -2.0
	swGap      = -0.5
)

// SmithWaterman returns the normalized Smith-Waterman local alignment
// similarity: best local alignment score divided by min(|a|,|b|) (the
// maximum achievable score).
func SmithWaterman(a, b string) float64 {
	ra, rb := []rune(a), []rune(b)
	if len(ra) == 0 && len(rb) == 0 {
		return 1
	}
	if len(ra) == 0 || len(rb) == 0 {
		return 0
	}
	prev := make([]float64, len(rb)+1)
	cur := make([]float64, len(rb)+1)
	best := 0.0
	for i := 1; i <= len(ra); i++ {
		for j := 1; j <= len(rb); j++ {
			sub := swMismatch
			if ra[i-1] == rb[j-1] {
				sub = swMatch
			}
			v := prev[j-1] + sub
			if w := prev[j] + swGap; w > v {
				v = w
			}
			if w := cur[j-1] + swGap; w > v {
				v = w
			}
			if v < 0 {
				v = 0
			}
			cur[j] = v
			if v > best {
				best = v
			}
		}
		prev, cur = cur, prev
	}
	return best / float64(min2(len(ra), len(rb))) / swMatch
}

// RuneLen returns the number of runes in s.
func RuneLen(s string) int { return utf8.RuneCountInString(s) }

func normDist(dist, la, lb int) float64 {
	m := max2(la, lb)
	if m == 0 {
		return 1
	}
	return 1 - float64(dist)/float64(m)
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min3(a, b, c int) int { return min2(min2(a, b), c) }

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
