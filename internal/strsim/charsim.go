// Package strsim implements the schema-based syntactic similarity measures
// of the paper's Appendix B: seven character-level measures applied to raw
// strings and nine token-level measures applied to word multisets. They
// follow the definitions (and, where the paper defers to it, the
// normalizations) of the Simmetrics package the paper used.
//
// All exported similarity functions return values in [0,1], where 1 means
// identical inputs. Distances are exposed separately where they are useful
// on their own. Strings are compared as sequences of runes, so multi-byte
// text behaves correctly. The string functions are thin wrappers over the
// *Seq rune-slice variants in charseq.go; pairwise kernels precompute the
// rune slices (RunesAll) and call those directly.
package strsim

import "unicode/utf8"

// Func is a normalized string similarity in [0,1].
type Func func(a, b string) float64

// Levenshtein returns the normalized Levenshtein similarity:
// 1 - dist/max(|a|,|b|).
func Levenshtein(a, b string) float64 {
	return LevenshteinSeq([]rune(a), []rune(b))
}

// LevenshteinDistance returns the minimum number of insertions, deletions
// and substitutions transforming a into b.
func LevenshteinDistance(a, b string) int {
	return LevenshteinDistanceSeq([]rune(a), []rune(b))
}

// DamerauLevenshtein returns the normalized Damerau-Levenshtein
// similarity, which additionally allows transpositions of adjacent
// characters (restricted edit distance).
func DamerauLevenshtein(a, b string) float64 {
	return DamerauLevenshteinSeq([]rune(a), []rune(b))
}

// DamerauLevenshteinDistance returns the restricted Damerau-Levenshtein
// edit distance (insert, delete, substitute, transpose adjacent).
func DamerauLevenshteinDistance(a, b string) int {
	return DamerauLevenshteinDistanceSeq([]rune(a), []rune(b))
}

// Jaro returns the Jaro similarity of a and b.
func Jaro(a, b string) float64 {
	return JaroSeq([]rune(a), []rune(b))
}

// Needleman-Wunsch scoring used by the paper (and Simmetrics):
// match 0, mismatch -1, gap -2.
const (
	nwMatch    = 0.0
	nwMismatch = -1.0
	nwGap      = -2.0
)

// NeedlemanWunsch returns the normalized Needleman-Wunsch similarity with
// the paper's scores (match 0, mismatch -1, gap -2): the alignment score
// is rescaled by the worst possible score for the input lengths, giving
// 1 for identical strings and 0 for a worst-case alignment.
func NeedlemanWunsch(a, b string) float64 {
	return NeedlemanWunschSeq([]rune(a), []rune(b))
}

// QGramsDistance returns the q-grams similarity: block (L1) distance over
// padded trigram profiles, normalized by the total number of trigrams
// (1 - dist/total). This is Simmetrics' QGramsDistance with q=3 and
// boundary padding. It is a thin wrapper over QGramProfile; callers that
// compare one string against many should precompute the profiles.
func QGramsDistance(a, b string) float64 {
	return NewQGramProfile(a, 3).Distance(NewQGramProfile(b, 3))
}

// LongestCommonSubstring returns |lcsstr(a,b)| / max(|a|,|b|).
func LongestCommonSubstring(a, b string) float64 {
	return LongestCommonSubstringSeq([]rune(a), []rune(b))
}

// LongestCommonSubsequence returns |lcsseq(a,b)| / max(|a|,|b|).
func LongestCommonSubsequence(a, b string) float64 {
	return LongestCommonSubsequenceSeq([]rune(a), []rune(b))
}

// Smith-Waterman scoring used as the Monge-Elkan secondary measure
// (Simmetrics defaults): match +1, mismatch -2, gap -0.5.
const (
	swMatch    = 1.0
	swMismatch = -2.0
	swGap      = -0.5
)

// SmithWaterman returns the normalized Smith-Waterman local alignment
// similarity: best local alignment score divided by min(|a|,|b|) (the
// maximum achievable score).
func SmithWaterman(a, b string) float64 {
	return SmithWatermanSeq([]rune(a), []rune(b))
}

// RuneLen returns the number of runes in s.
func RuneLen(s string) int { return utf8.RuneCountInString(s) }

func normDist(dist, la, lb int) float64 {
	m := max2(la, lb)
	if m == 0 {
		return 1
	}
	return 1 - float64(dist)/float64(m)
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min3(a, b, c int) int { return min2(min2(a, b), c) }
