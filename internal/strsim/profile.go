package strsim

import (
	"math"
	"slices"
	"sort"
)

// TokenProfile is a precomputed multiset view of a token sequence: the
// unique tokens in sorted order with their counts, plus the aggregate
// lengths and norms every token measure needs. Building the profile once
// per entity lets all nine token measures run as allocation-free merge
// joins over two sorted profiles instead of rebuilding a map[string]int
// per pair, while producing bit-identical similarities (every
// accumulator a measure folds over is integer-valued, so the summation
// reorder is exact).
//
// The token slice passed to NewTokenProfile is retained (for the
// occurrence-ordered Monge-Elkan walk) and must not be mutated
// afterwards.
type TokenProfile struct {
	raw    []string // original tokens in occurrence order
	rawIdx []int32  // unique-token index of each occurrence
	tokens []string // unique tokens, sorted
	counts []int32  // count per unique token
	sumSq  int64    // Σ count², the squared L2 norm of the count vector
}

// NewTokenProfile builds the profile of a token sequence.
func NewTokenProfile(tokens []string) *TokenProfile {
	p := &TokenProfile{raw: tokens}
	if len(tokens) == 0 {
		return p
	}
	sorted := append([]string(nil), tokens...)
	sort.Strings(sorted)
	p.tokens = sorted[:0]
	p.counts = make([]int32, 0, len(sorted))
	for i := 0; i < len(sorted); {
		j := i + 1
		for j < len(sorted) && sorted[j] == sorted[i] {
			j++
		}
		p.tokens = append(p.tokens, sorted[i])
		c := int64(j - i)
		p.counts = append(p.counts, int32(c))
		p.sumSq += c * c
		i = j
	}
	p.rawIdx = make([]int32, len(tokens))
	for i, t := range tokens {
		p.rawIdx[i] = int32(sort.SearchStrings(p.tokens, t))
	}
	return p
}

// ProfileAll builds one profile per token sequence.
func ProfileAll(tokenLists [][]string) []*TokenProfile {
	out := make([]*TokenProfile, len(tokenLists))
	for i, ts := range tokenLists {
		out[i] = NewTokenProfile(ts)
	}
	return out
}

// Len returns the number of token occurrences (|a| of the measures).
func (p *TokenProfile) Len() int { return len(p.raw) }

// Unique returns the number of distinct tokens.
func (p *TokenProfile) Unique() int { return len(p.tokens) }

// tokenStats are the integer accumulators of one merge join over two
// profiles; every token measure except Monge-Elkan derives from them.
type tokenStats struct {
	inter    int   // distinct shared tokens
	interMin int64 // Σ min(count_a, count_b)
	maxSum   int64 // Σ max(count_a, count_b)
	l1       int64 // Σ |count_a - count_b|
	sq       int64 // Σ (count_a - count_b)²
	dot      int64 // Σ count_a · count_b
}

func (a *TokenProfile) merge(b *TokenProfile) tokenStats {
	var s tokenStats
	i, j := 0, 0
	for i < len(a.tokens) || j < len(b.tokens) {
		var cmp int
		switch {
		case j >= len(b.tokens):
			cmp = -1
		case i >= len(a.tokens):
			cmp = 1
		case a.tokens[i] < b.tokens[j]:
			cmp = -1
		case a.tokens[i] > b.tokens[j]:
			cmp = 1
		}
		switch cmp {
		case -1:
			x := int64(a.counts[i])
			s.maxSum += x
			s.l1 += x
			s.sq += x * x
			i++
		case 1:
			y := int64(b.counts[j])
			s.maxSum += y
			s.l1 += y
			s.sq += y * y
			j++
		default:
			x, y := int64(a.counts[i]), int64(b.counts[j])
			s.inter++
			s.dot += x * y
			if x < y {
				s.interMin += x
				s.maxSum += y
			} else {
				s.interMin += y
				s.maxSum += x
			}
			d := x - y
			if d < 0 {
				d = -d
			}
			s.l1 += d
			s.sq += d * d
			i++
			j++
		}
	}
	return s
}

// The measure formulas below are shared by the standalone methods and
// the single-merge TokenSims, so the two call paths cannot drift. Each
// takes the merge-join accumulators plus the two profiles; the
// both-empty case (every measure returns 1) is handled by the callers
// before merging.

func cosineFrom(s tokenStats, a, b *TokenProfile) float64 {
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	return float64(s.dot) / (math.Sqrt(float64(a.sumSq)) * math.Sqrt(float64(b.sumSq)))
}

func blockDistanceFrom(s tokenStats, a, b *TokenProfile) float64 {
	return 1 - float64(s.l1)/float64(a.Len()+b.Len())
}

func euclideanFrom(s tokenStats, a, b *TokenProfile) float64 {
	maxD := math.Sqrt(float64(a.sumSq + b.sumSq))
	if maxD == 0 {
		return 1
	}
	return 1 - math.Sqrt(float64(s.sq))/maxD
}

func jaccardFrom(s tokenStats, a, b *TokenProfile) float64 {
	union := a.Unique() + b.Unique() - s.inter
	if union == 0 {
		return 1
	}
	return float64(s.inter) / float64(union)
}

func generalizedJaccardFrom(s tokenStats, _, _ *TokenProfile) float64 {
	if s.maxSum == 0 {
		return 1
	}
	return float64(s.interMin) / float64(s.maxSum)
}

func diceFrom(s tokenStats, a, b *TokenProfile) float64 {
	den := a.Unique() + b.Unique()
	if den == 0 {
		return 1
	}
	return 2 * float64(s.inter) / float64(den)
}

func simonWhiteFrom(s tokenStats, a, b *TokenProfile) float64 {
	den := a.Len() + b.Len()
	if den == 0 {
		return 1
	}
	return 2 * float64(s.interMin) / float64(den)
}

func overlapFrom(s tokenStats, a, b *TokenProfile) float64 {
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	return float64(s.inter) / float64(min2(a.Unique(), b.Unique()))
}

// bothEmpty reports the degenerate case every measure defines as 1.
func bothEmpty(a, b *TokenProfile) bool { return a.Len() == 0 && b.Len() == 0 }

// Cosine is CosineTokens over profiles.
func (a *TokenProfile) Cosine(b *TokenProfile) float64 {
	if bothEmpty(a, b) {
		return 1
	}
	return cosineFrom(a.merge(b), a, b)
}

// BlockDistance is BlockDistance over profiles.
func (a *TokenProfile) BlockDistance(b *TokenProfile) float64 {
	if bothEmpty(a, b) {
		return 1
	}
	return blockDistanceFrom(a.merge(b), a, b)
}

// Euclidean is EuclideanTokens over profiles.
func (a *TokenProfile) Euclidean(b *TokenProfile) float64 {
	if bothEmpty(a, b) {
		return 1
	}
	return euclideanFrom(a.merge(b), a, b)
}

// Jaccard is Jaccard over profiles.
func (a *TokenProfile) Jaccard(b *TokenProfile) float64 {
	if bothEmpty(a, b) {
		return 1
	}
	return jaccardFrom(a.merge(b), a, b)
}

// GeneralizedJaccard is GeneralizedJaccard over profiles.
func (a *TokenProfile) GeneralizedJaccard(b *TokenProfile) float64 {
	if bothEmpty(a, b) {
		return 1
	}
	return generalizedJaccardFrom(a.merge(b), a, b)
}

// Dice is Dice over profiles.
func (a *TokenProfile) Dice(b *TokenProfile) float64 {
	if bothEmpty(a, b) {
		return 1
	}
	return diceFrom(a.merge(b), a, b)
}

// SimonWhite is SimonWhite over profiles.
func (a *TokenProfile) SimonWhite(b *TokenProfile) float64 {
	if bothEmpty(a, b) {
		return 1
	}
	return simonWhiteFrom(a.merge(b), a, b)
}

// OverlapCoefficient is OverlapCoefficient over profiles.
func (a *TokenProfile) OverlapCoefficient(b *TokenProfile) float64 {
	if bothEmpty(a, b) {
		return 1
	}
	return overlapFrom(a.merge(b), a, b)
}

// SWCache memoizes Smith-Waterman similarities by token pair. Monge-Elkan
// recomputes the same token-pair alignments across many entity pairs, so
// sharing one cache per (attribute, worker) removes most of its DP cost.
// A nil *SWCache is valid and disables memoization. Not safe for
// concurrent use; give each worker its own cache.
type SWCache struct {
	m       map[[2]string]float64
	scratch *CharScratch
}

// NewSWCache returns an empty Smith-Waterman memo table.
func NewSWCache() *SWCache {
	return &SWCache{m: make(map[[2]string]float64), scratch: NewCharScratch()}
}

func (c *SWCache) sim(a, b string) float64 {
	if c == nil {
		return SmithWaterman(a, b)
	}
	k := [2]string{a, b}
	if s, ok := c.m[k]; ok {
		return s
	}
	// The integer-scaled scratch kernel is bit-identical to
	// SmithWaterman (pinned by the fuzz suite), so memoized and
	// uncached calls cannot drift.
	s := SmithWatermanSeqScratch([]rune(a), []rune(b), c.scratch)
	c.m[k] = s
	return s
}

// MongeElkan is MongeElkan over profiles, memoizing token-pair
// Smith-Waterman scores through cache (which may be nil). The summation
// walks the original token occurrences in order, so the result is
// bit-identical to the string-slice implementation.
func (a *TokenProfile) MongeElkan(b *TokenProfile, cache *SWCache) float64 {
	if a.Len() == 0 && b.Len() == 0 {
		return 1
	}
	if a.Len() == 0 || b.Len() == 0 {
		return 0
	}
	// Best match per unique token of a, computed on demand.
	best := make([]float64, len(a.tokens))
	for i := range best {
		best[i] = -1
	}
	sum := 0.0
	for _, ui := range a.rawIdx {
		if best[ui] < 0 {
			wa := a.tokens[ui]
			v := 0.0
			for _, wb := range b.tokens {
				if s := cache.sim(wa, wb); s > v {
					v = s
				}
			}
			best[ui] = v
		}
		sum += best[ui]
	}
	return sum / float64(a.Len())
}

// TokenSims computes all nine token measures for one profile pair in a
// single merge join, in the order used by the similarity-graph corpus:
// Cosine, BlockDistance, Dice, SimonWhite, OverlapCoefficient,
// Euclidean, Jaccard, GeneralizedJaccard, MongeElkan. Each value is
// bit-identical to the corresponding standalone measure.
func TokenSims(a, b *TokenProfile, cache *SWCache) [9]float64 {
	var out [9]float64
	if bothEmpty(a, b) {
		for k := range out {
			out[k] = 1
		}
		return out
	}
	s := a.merge(b)
	out[0] = cosineFrom(s, a, b)
	out[1] = blockDistanceFrom(s, a, b)
	out[2] = diceFrom(s, a, b)
	out[3] = simonWhiteFrom(s, a, b)
	out[4] = overlapFrom(s, a, b)
	out[5] = euclideanFrom(s, a, b)
	out[6] = jaccardFrom(s, a, b)
	out[7] = generalizedJaccardFrom(s, a, b)
	out[8] = a.MongeElkan(b, cache)
	return out
}

// QGramProfile is a precomputed padded character q-gram multiset, the
// per-entity representation behind QGramsDistance: sorted grams with
// counts, so the distance is a merge join instead of two map builds per
// pair.
type QGramProfile struct {
	grams  []string
	counts []int32
	total  int64 // Σ counts
}

// NewQGramProfile builds the padded q-gram profile of s (q=3 with "#"
// boundary padding is the QGramsDistance configuration).
func NewQGramProfile(s string, q int) *QGramProfile {
	p := &QGramProfile{}
	if s == "" {
		return p
	}
	pad := ""
	for i := 0; i < q-1; i++ {
		pad += "#"
	}
	padded := []rune(pad + s + pad)
	grams := make([]string, 0, len(padded)-q+1)
	for i := 0; i+q <= len(padded); i++ {
		grams = append(grams, string(padded[i:i+q]))
	}
	sort.Strings(grams)
	p.grams = grams[:0]
	p.counts = make([]int32, 0, len(grams))
	for i := 0; i < len(grams); {
		j := i + 1
		for j < len(grams) && grams[j] == grams[i] {
			j++
		}
		p.grams = append(p.grams, grams[i])
		p.counts = append(p.counts, int32(j-i))
		p.total += int64(j - i)
		i = j
	}
	return p
}

// Distance returns the q-grams similarity of two profiles, bit-identical
// to QGramsDistance on the underlying strings.
func (a *QGramProfile) Distance(b *QGramProfile) float64 {
	var dist, total int64
	i, j := 0, 0
	for i < len(a.grams) || j < len(b.grams) {
		var cmp int
		switch {
		case j >= len(b.grams):
			cmp = -1
		case i >= len(a.grams):
			cmp = 1
		case a.grams[i] < b.grams[j]:
			cmp = -1
		case a.grams[i] > b.grams[j]:
			cmp = 1
		}
		switch cmp {
		case -1:
			dist += int64(a.counts[i])
			i++
		case 1:
			dist += int64(b.counts[j])
			j++
		default:
			d := int64(a.counts[i]) - int64(b.counts[j])
			if d < 0 {
				d = -d
			}
			dist += d
			i++
			j++
		}
	}
	total = a.total + b.total
	if total == 0 {
		return 1
	}
	return 1 - float64(dist)/float64(total)
}

// QGramVocab interns padded q-grams (q <= 4) to dense ids by rune
// window, so profiles compare by integer merge join instead of string
// compares. Interning is not safe for concurrent use; built profiles
// are. Every accumulator of the distance is an integer, so the id-order
// reordering of the merge join is exact and QGramIDProfile.Distance is
// bit-identical to QGramProfile.Distance on the same strings.
type QGramVocab struct {
	ids map[[4]rune]int32
}

// NewQGramVocab returns an empty q-gram vocabulary.
func NewQGramVocab() *QGramVocab {
	return &QGramVocab{ids: make(map[[4]rune]int32)}
}

func (v *QGramVocab) id(key [4]rune) int32 {
	id, ok := v.ids[key]
	if !ok {
		id = int32(len(v.ids))
		v.ids[key] = id
	}
	return id
}

// QGramIDProfile is QGramProfile with interned gram ids: sorted id
// slice with counts and the total gram count.
type QGramIDProfile struct {
	ids    []int32
	counts []int32
	total  int64
}

// Profile builds the padded q-gram id profile of s (q <= 4; the
// QGramsDistance configuration is q=3 with "#" padding).
func (v *QGramVocab) Profile(s string, q int) *QGramIDProfile {
	p := &QGramIDProfile{}
	if s == "" {
		return p
	}
	r := make([]rune, 0, len(s)+2*(q-1))
	for i := 0; i < q-1; i++ {
		r = append(r, '#')
	}
	r = append(r, []rune(s)...)
	for i := 0; i < q-1; i++ {
		r = append(r, '#')
	}
	ids := make([]int32, 0, len(r)-q+1)
	key := [4]rune{-1, -1, -1, -1}
	for i := 0; i+q <= len(r); i++ {
		copy(key[:q], r[i:i+q])
		ids = append(ids, v.id(key))
	}
	slices.Sort(ids)
	for i := 0; i < len(ids); {
		j := i + 1
		for j < len(ids) && ids[j] == ids[i] {
			j++
		}
		p.ids = append(p.ids, ids[i])
		p.counts = append(p.counts, int32(j-i))
		p.total += int64(j - i)
		i = j
	}
	return p
}

// Distance returns the q-grams similarity of two id profiles,
// bit-identical to QGramProfile.Distance on the underlying strings.
func (a *QGramIDProfile) Distance(b *QGramIDProfile) float64 {
	var dist int64
	i, j := 0, 0
	for i < len(a.ids) && j < len(b.ids) {
		switch {
		case a.ids[i] < b.ids[j]:
			dist += int64(a.counts[i])
			i++
		case a.ids[i] > b.ids[j]:
			dist += int64(b.counts[j])
			j++
		default:
			d := int64(a.counts[i]) - int64(b.counts[j])
			if d < 0 {
				d = -d
			}
			dist += d
			i++
			j++
		}
	}
	for ; i < len(a.ids); i++ {
		dist += int64(a.counts[i])
	}
	for ; j < len(b.ids); j++ {
		dist += int64(b.counts[j])
	}
	total := a.total + b.total
	if total == 0 {
		return 1
	}
	return 1 - float64(dist)/float64(total)
}
