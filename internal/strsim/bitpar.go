package strsim

// Bit-parallel character-measure kernels. These compute the same integer
// results as the scalar dynamic programs in charseq.go — Levenshtein
// distance (Myers' bit-vector algorithm), restricted Damerau-Levenshtein
// distance (Hyyrö's transposition extension) and LCS length (the
// Allison-Dix / Crochemore bit-vector recurrence) — in O(⌈m/64⌉·n) word
// operations instead of O(m·n) cell updates. Because the measures'
// normalizations divide an integer by a length, equal integers mean
// bit-identical similarities; the scalar DPs remain in charseq.go as the
// reference implementations (and as the Damerau fallback for patterns
// longer than 64 runes), and the fuzz/property suite pins the two
// implementations against each other.
//
// All kernels are one-vs-many: the pattern-side state (the PEQ match
// bitmasks, built by CharProfile) is constructed once per left entity
// and every right string streams through it, which is where the row
// kernels in internal/simgraph get their amortization.

import "math/bits"

// peqSingle is the match-bitmask table of a pattern of at most 64 runes:
// bit i of peq(c) is set iff pattern[i] == c. ASCII runes index a flat
// array; anything else falls back to a (usually tiny) map.
type peqSingle struct {
	ascii [128]uint64
	ext   map[rune]uint64 // nil when the pattern is pure ASCII
}

func newPeqSingle(pattern []rune) *peqSingle {
	p := &peqSingle{}
	for i, c := range pattern {
		bit := uint64(1) << uint(i)
		if c >= 0 && c < 128 {
			p.ascii[c] |= bit
		} else {
			if p.ext == nil {
				p.ext = make(map[rune]uint64)
			}
			p.ext[c] |= bit
		}
	}
	return p
}

func (p *peqSingle) eq(c rune) uint64 {
	if c >= 0 && c < 128 {
		return p.ascii[c]
	}
	return p.ext[c] // nil map yields 0
}

// peqBlocks is peqSingle for patterns longer than 64 runes: w =
// ⌈m/64⌉ words per rune, ASCII flattened into one slice.
type peqBlocks struct {
	w     int
	ascii []uint64 // 128*w words, rune c at [c*w : c*w+w]
	ext   map[rune][]uint64
	zero  []uint64 // shared all-zero row for runes absent from the pattern
}

func newPeqBlocks(pattern []rune, w int) *peqBlocks {
	p := &peqBlocks{w: w, ascii: make([]uint64, 128*w), zero: make([]uint64, w)}
	for i, c := range pattern {
		word, bit := i/64, uint64(1)<<uint(i%64)
		if c >= 0 && c < 128 {
			p.ascii[int(c)*w+word] |= bit
		} else {
			if p.ext == nil {
				p.ext = make(map[rune][]uint64)
			}
			row := p.ext[c]
			if row == nil {
				row = make([]uint64, w)
				p.ext[c] = row
			}
			row[word] |= bit
		}
	}
	return p
}

func (p *peqBlocks) eq(c rune) []uint64 {
	if c >= 0 && c < 128 {
		return p.ascii[int(c)*p.w : int(c)*p.w+p.w]
	}
	if row := p.ext[c]; row != nil {
		return row
	}
	return p.zero
}

// levDistSingle is Myers' bit-vector Levenshtein distance for a pattern
// of m ≤ 64 runes against an arbitrary-length text. Bits at positions
// ≥ m never influence bits below them (carries and shifts only move
// upward), so the vectors run at full word width and only the score bit
// at position m-1 is read.
func levDistSingle(peq *peqSingle, m int, text []rune) int {
	pv, mv := ^uint64(0), uint64(0)
	score := m
	top := uint64(1) << uint(m-1)
	for _, c := range text {
		eq := peq.eq(c)
		xv := eq | mv
		xh := (((eq & pv) + pv) ^ pv) | eq
		ph := mv | ^(xh | pv)
		mh := pv & xh
		if ph&top != 0 {
			score++
		} else if mh&top != 0 {
			score--
		}
		ph = ph<<1 | 1
		mh <<= 1
		pv = mh | ^(xv | ph)
		mv = ph & xv
	}
	return score
}

// advanceBlock runs one Myers column step on one 64-bit block of the
// pattern. hin is the horizontal delta entering the block from below
// (+1, 0 or -1); the returned hout is the delta leaving its top bit.
func advanceBlock(pv, mv, eq uint64, hin int) (pvOut, mvOut uint64, hout int) {
	xv := eq | mv
	if hin < 0 {
		eq |= 1
	}
	xh := (((eq & pv) + pv) ^ pv) | eq
	ph := mv | ^(xh | pv)
	mh := pv & xh
	switch {
	case ph>>63 != 0:
		hout = 1
	case mh>>63 != 0:
		hout = -1
	}
	ph <<= 1
	mh <<= 1
	if hin > 0 {
		ph |= 1
	} else if hin < 0 {
		mh |= 1
	}
	pvOut = mh | ^(xv | ph)
	mvOut = ph & xv
	return pvOut, mvOut, hout
}

// levDistBlocks is the multi-word Myers kernel for patterns longer than
// 64 runes. pv and mv are caller-provided scratch of ⌈m/64⌉ words each.
func levDistBlocks(peq *peqBlocks, m int, text []rune, pv, mv []uint64) int {
	w := peq.w
	for b := 0; b < w; b++ {
		pv[b] = ^uint64(0)
		mv[b] = 0
	}
	score := m
	last := w - 1
	top := uint64(1) << uint((m-1)%64)
	for _, c := range text {
		eq := peq.eq(c)
		hin := 1 // D[0][j] = j: a +1 delta enters the bottom block
		for b := 0; b < last; b++ {
			pv[b], mv[b], hin = advanceBlock(pv[b], mv[b], eq[b], hin)
		}
		// Last block: the score lives at bit (m-1)%64, not at bit 63,
		// so the delta is read there instead of chaining further up.
		pvb, mvb := pv[last], mv[last]
		eqb := eq[last]
		xv := eqb | mvb
		if hin < 0 {
			eqb |= 1
		}
		xh := (((eqb & pvb) + pvb) ^ pvb) | eqb
		ph := mvb | ^(xh | pvb)
		mh := pvb & xh
		if ph&top != 0 {
			score++
		} else if mh&top != 0 {
			score--
		}
		ph <<= 1
		mh <<= 1
		if hin > 0 {
			ph |= 1
		} else if hin < 0 {
			mh |= 1
		}
		pv[last] = mh | ^(xv | ph)
		mv[last] = ph & xv
	}
	return score
}

// damerauDistSingle is Hyyrö's bit-vector restricted Damerau-Levenshtein
// distance for a pattern of m ≤ 64 runes: Myers' recurrence extended
// with a transposition term that matches pattern[i-1..i] against
// text[j] text[j-1] where the previous column's diagonal step was free.
func damerauDistSingle(peq *peqSingle, m int, text []rune) int {
	pv, mv := ^uint64(0), uint64(0)
	var d0, pmPrev uint64
	score := m
	top := uint64(1) << uint(m-1)
	for _, c := range text {
		pm := peq.eq(c)
		d0 = (((^d0) & pm) << 1) & pmPrev
		d0 |= (((pm & pv) + pv) ^ pv) | pm | mv
		ph := mv | ^(d0 | pv)
		mh := pv & d0
		if ph&top != 0 {
			score++
		} else if mh&top != 0 {
			score--
		}
		ph = ph<<1 | 1
		mh <<= 1
		pv = mh | ^(d0 | ph)
		mv = ph & d0
		pmPrev = pm
	}
	return score
}

// lcsLenSingle is the bit-vector LCS length for a pattern of m ≤ 64
// runes: ones in v mark rows whose LCS value did not increase; each text
// rune clears at most one new bit per run of matches.
func lcsLenSingle(peq *peqSingle, m int, text []rune) int {
	v := ^uint64(0)
	for _, c := range text {
		match := peq.eq(c)
		u := v & match
		v = (v + u) | (v &^ match)
	}
	mask := ^uint64(0)
	if m < 64 {
		mask = (uint64(1) << uint(m)) - 1
	}
	return m - bits.OnesCount64(v&mask)
}

// lcsLenBlocks is lcsLenSingle for patterns longer than 64 runes; the
// addition's carry chains across blocks. v is caller scratch of
// ⌈m/64⌉ words.
func lcsLenBlocks(peq *peqBlocks, m int, text []rune, v []uint64) int {
	w := peq.w
	for b := 0; b < w; b++ {
		v[b] = ^uint64(0)
	}
	for _, c := range text {
		match := peq.eq(c)
		var carry uint64
		for b := 0; b < w; b++ {
			vb := v[b]
			sum, c1 := bits.Add64(vb, vb&match[b], carry)
			carry = c1
			v[b] = sum | (vb &^ match[b])
		}
	}
	zeros := 0
	for b := 0; b < w-1; b++ {
		zeros += 64 - bits.OnesCount64(v[b])
	}
	rem := m - (w-1)*64
	mask := ^uint64(0)
	if rem < 64 {
		mask = (uint64(1) << uint(rem)) - 1
	}
	zeros += rem - bits.OnesCount64(v[w-1]&mask)
	return zeros
}
